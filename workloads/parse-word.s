# parse-word — the paper's Fig. 5 program.
#
# Reads one 32-bit word x of symbolic input and checks two assertions:
#
#   if (x == 1)  assert(x << 31 != 0);   // id 4: holds for every x == 1
#   else         assert(x << 31 == 0);   // id 6: violated by any odd x != 1
#
# Assertion failures branch into the report_fail stub (they are ordinary
# branches, not engine hooks), so translation bugs show up purely as path
# differences. Under angr lifter bug #4 the I-type shift amount 31 is
# sign-extended to -1 and the saturating shift yields 0: the id-4 assert
# then "fails" on x == 1 (false positive) while the id-6 violation becomes
# unreachable (false negative) — exactly the paper's Fig. 5 outcome.

        .data
buf:    .space  4

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 4
        call    sym_input
        la      t0, buf
        lw      t1, 0(t0)              # x
        li      t2, 1
        beq     t1, t2, x_is_one       # symbolic

        # x != 1: assert(x << 31 == 0), i.e. x must be even.
        slli    t3, t1, 31
        beqz    t3, done               # symbolic
        li      a0, 6
        call    report_fail
        j       done

x_is_one:
        # x == 1: assert(x << 31 != 0) — can only fail under lifter bug #4.
        slli    t3, t1, 31
        bnez    t3, done               # symbolic
        li      a0, 4
        call    report_fail

done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        li      a0, 0
        ret
