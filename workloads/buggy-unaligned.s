# buggy-unaligned — detection-campaign workload: tainted misaligned access.
#
# Looks up a calibration word by a tainted table offset. The offset is
# masked as a *byte* offset (0..7) where a word index shifted by 2 was
# meant, so six of the eight reachable addresses are misaligned word
# loads. The all-zero seed reads offset 0 (aligned), so only the unaligned
# oracle's solver candidate exposes the bug. The access itself always
# stays inside the 3-word table — the out-of-bounds candidate at the same
# load is checked and correctly found infeasible.
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { unaligned @ the `lw` below }, depth 1.
# Paths: 1 (no symbolic branches).

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 1
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)              # table offset (tainted)

        andi    t1, t1, 7              # BUG: byte offset; meant `& 1` << 2
        la      t2, words
        add     t2, t2, t1
        lw      t3, 0(t2)              # misaligned for offsets 1,2,3,5,6,7

        li      a0, 0
        lw      ra, 12(sp)
        addi    sp, sp, 16
        ret

        .data
words:  .word   0x11111111, 0x22222222, 0x33333333
buf:    .space  1
