# buggy-assert — detection-campaign workload: the user property syscalls.
#
# Computes a "clamped" sum of two tainted bytes and states two properties
# through the runtime's property stubs (runtime.s):
#
#   assert_true(sum <= 400, 1) — the clamp only bounds the *first* byte
#                                (a < 200), so sum reaches 199 + 255 = 454
#                                and the assertion is violatable;
#   reach(7)                   — an error handler for the "impossible"
#                                internal value sum == 444, which is in
#                                fact reachable (a' = 199, b = 245).
#
# The assert condition deliberately stays symbolic through the syscall
# (kSysAssert never concretizes a0), so the solver finds the violating
# input even though every explored seed passes the assert concretely.
# Both detections happen inside the stubs, i.e. at call depth 2.
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { assert-fail @ the stub ecall, depth 2; reach @ the stub ecall, depth 2 }.
# Paths: 6 (clamp arm x handler arm, minus infeasible combinations).

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 2
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)              # a
        lbu     t2, 1(t0)              # b

        li      t3, 200
        bltu    t1, t3, small          # BUG: clamp checks a, forgets b
        li      t1, 199
small:
        add     t4, t1, t2             # sum = a' + b  (<= 454, not <= 400)

        # "Unreachable" diagnostics handler for an impossible sum.
        li      t5, 444
        bne     t4, t5, no_handler
        li      a0, 7
        call    reach
no_handler:

        # Property: the clamped sum fits the 400-entry table.
        li      t5, 400
        sltu    t6, t5, t4             # t6 = sum > 400
        xori    t6, t6, 1              # t6 = sum <= 400
        mv      a0, t6
        li      a1, 1
        call    assert_true

        li      a0, 0
        lw      ra, 12(sp)
        addi    sp, sp, 16
        ret

        .data
buf:    .space  2
