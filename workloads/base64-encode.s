# base64-encode — Table I workload: encode 4 symbolic bytes as base64.
#
# 4 input bytes form six 6-bit groups (the last group carries only the two
# low bits of byte 3, shifted up) followed by "==" padding — 8 output
# characters total. Each full-range group is mapped to its alphabet
# character by a 5-way comparison chain (A-Z / a-z / 0-9 / '+' / '/');
# the last group only reaches the A-Z and a-z arms. Feasible paths:
# 5*5*5*5*5*2 = 6250, the paper's Table I count.
#
# Groups 1, 5 and 6 extract their bits with wide shift pairs (left shift
# to the top of the word, logical right shift back down) — bit-identical
# to the masked forms for a correct engine, but every shift amount has
# bit 4 set, so under the angr lifter's signed-shift-amount bug (#4) the
# saturating shift collapses these groups to 0 and only the 'A' arm stays
# feasible. Groups 2-4 mask after small shifts and survive all five bugs.
# Buggy path count: 1*5*5*5*1*1 = 125 — exactly the paper's angr column.

        .data
buf:    .space  4

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)
        sw      s0, 8(sp)

        la      a0, buf
        li      a1, 4
        call    sym_input
        la      s0, buf

        # group 1: b0 >> 2, via (b0 << 22) >> 24
        lbu     t0, 0(s0)
        slli    t0, t0, 22
        srli    a0, t0, 24
        call    b64_char
        # group 2: ((b0 & 3) << 4) | ((b1 >> 4) & 15)
        lbu     t0, 0(s0)
        lbu     t1, 1(s0)
        andi    t0, t0, 3
        slli    t0, t0, 4
        srli    t1, t1, 4
        andi    t1, t1, 15
        or      a0, t0, t1
        call    b64_char
        # group 3: ((b1 & 15) << 2) | ((b2 >> 6) & 3)
        lbu     t0, 1(s0)
        lbu     t1, 2(s0)
        andi    t0, t0, 15
        slli    t0, t0, 2
        srli    t1, t1, 6
        andi    t1, t1, 3
        or      a0, t0, t1
        call    b64_char
        # group 4: b2 & 63
        lbu     t0, 2(s0)
        andi    a0, t0, 63
        call    b64_char
        # group 5: b3 >> 2, via (b3 << 22) >> 24
        lbu     t0, 3(s0)
        slli    t0, t0, 22
        srli    a0, t0, 24
        call    b64_char
        # group 6: (b3 & 3) << 4, via (b3 << 30) >> 26
        # (only 0/16/32/48 -> two feasible arms on a correct engine)
        lbu     t0, 3(s0)
        slli    t0, t0, 30
        srli    a0, t0, 26
        call    b64_char

        li      a0, '='
        call    putchar
        li      a0, '='
        call    putchar

        lw      ra, 12(sp)
        lw      s0, 8(sp)
        addi    sp, sp, 16
        li      a0, 0
        ret

# b64_char(a0 = group value): emit the base64 alphabet character.
# Tail-calls into the putchar syscall; clobbers t5 and a0/a7.
b64_char:
        li      t5, 26
        bltu    a0, t5, is_upper       # symbolic
        li      t5, 52
        bltu    a0, t5, is_lower       # symbolic
        li      t5, 62
        bltu    a0, t5, is_digit       # symbolic
        beq     a0, t5, is_plus        # symbolic (t5 still 62)
        li      a0, '/'
        j       emit
is_upper:
        addi    a0, a0, 'A'
        j       emit
is_lower:
        addi    a0, a0, 'a'-26
        j       emit
is_digit:
        addi    a0, a0, '0'-52
        j       emit
is_plus:
        li      a0, '+'
emit:
        li      a7, 1
        ecall
        ret
