# buggy-div — detection-campaign workload: division by a tainted divisor.
#
# Averages two data bytes over a tainted bucket count. The guard rejects
# the sentinel 0xff instead of zero, so a zero divisor reaches the divu.
# RV32M defines the result (all-ones) rather than trapping, which is
# exactly why the program keeps running on garbage and only the
# div-by-zero oracle notices: the spec's divisor-is-zero guard forks, the
# explorer enumerates the zero arm as its own path, and the oracle flags
# the taken guard there.
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { div-by-zero @ the `divu` below }, depth 1.
# Paths: 3 (bail on 0xff, divisor nonzero, divisor zero).

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 3
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)              # data[0]
        lbu     t2, 1(t0)              # data[1]
        lbu     t3, 2(t0)              # bucket count (tainted divisor)

        add     t4, t1, t2             # sum
        li      t5, 0xff
        beq     t3, t5, bail           # BUG: guards the sentinel, not zero
        divu    t6, t4, t3             # div-by-zero when buf[2] == 0
        li      a0, 0
        j       done
bail:
        li      a0, 1
done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        ret

        .data
buf:    .space  3
