# buggy-stack-smash — detection-campaign workload: saved-ra overwrite.
#
# Fills a 7-word stack buffer with a tainted payload word, with the count
# taken from a tainted length byte. The mask clamps the count correctly —
# but the loop writes `count + 1` words ("and a terminator"), the classic
# off-by-one: at the maximum count the extra word lands exactly on the
# saved return address at 28(sp). The stack-smash oracle's shadow call
# stack catches the corrupted `ret` concretely on that path (the payload
# seed is zero, so the smashed return heads to unmapped 0x0 and the path
# dies on a bad fetch right after the detection).
#
# Every store stays inside the engine-tracked stack region, so the
# out-of-bounds oracles correctly stay silent.
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { stack-smash @ the `ret` below }, depth 1.
# Paths: 8 (count + 1 takes the values 1..8).

        .text
        .global main
main:
        addi    sp, sp, -32
        sw      ra, 28(sp)

        la      a0, buf
        li      a1, 1
        call    sym_input
        la      a0, payload
        li      a1, 4
        call    sym_input

        la      t0, buf
        lbu     t1, 0(t0)              # requested word count (tainted)
        andi    t1, t1, 7              # clamp to the 7-word buffer...
        addi    t1, t1, 1              # BUG: ...then write count+1 words
        la      t0, payload
        lw      t2, 0(t0)              # payload word (tainted)

        mv      t3, sp                 # dst = buffer at 0(sp)
        li      t4, 0                  # i
fill:
        bge     t4, t1, fill_done
        sw      t2, 0(t3)              # i == 7 writes the saved ra slot
        addi    t3, t3, 4
        addi    t4, t4, 1
        j       fill
fill_done:

        li      a0, 0
        lw      ra, 28(sp)
        addi    sp, sp, 32
        ret                            # smashed when count+1 == 8

        .data
buf:    .space  1
        .align  2
payload:
        .space  4
