# buggy-jump-table — detection-campaign workload: attacker-controlled pc.
#
# Dispatches an opcode byte through a computed handler address. The mask
# keeps 8 slots but only 3 handlers exist — and, worse, the target is
# *derived from the tainted byte* at all, so the jalr's destination is
# attacker-controlled. The bad-jump oracle flags the symbolic target on
# the very first path; no solver work is needed.
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { bad-jump @ the `jalr` below }, depth 1.
# Paths: 1 (no symbolic branches; the target is concretized, not forked).

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 1
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)              # opcode byte (tainted)

        andi    t1, t1, 0x1c           # BUG: 8 slots masked, 3 handlers real
        la      t2, handlers
        add     t2, t2, t1
        jalr    t2                     # attacker-controlled call target

        li      a0, 0
        lw      ra, 12(sp)
        addi    sp, sp, 16
        ret

        # Each handler is one aligned 4-byte slot (a bare ret).
handlers:
h_nop:  ret
h_inc:  ret
h_dec:  ret

        .data
buf:    .space  1
