# bubble-sort — Table I workload: sort 6 symbolic bytes.
#
# Classic bubble sort with a shrinking inner bound and no early exit: every
# run performs exactly 5+4+3+2+1 = 15 symbolic comparisons, and the feasible
# comparison-outcome sequences are exactly the 6! = 720 relative orderings
# of the input bytes (ties behave like the corresponding stable strict
# order), which is the paper's Table I path count.

        .data
buf:    .space  6

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 6
        call    sym_input

        li      t1, 5                  # outer bound: compare a[0..t1-1] with successor
outer:
        blez    t1, done               # concrete loop branch
        li      t2, 0                  # j = 0
        la      t3, buf                # &a[j]
inner:
        bge     t2, t1, outer_dec      # concrete loop branch
        lbu     t4, 0(t3)              # a[j]
        lbu     t5, 1(t3)              # a[j+1]
        bleu    t4, t5, no_swap        # symbolic: swap iff a[j] > a[j+1]
        sb      t5, 0(t3)
        sb      t4, 1(t3)
no_swap:
        addi    t2, t2, 1
        addi    t3, t3, 1
        j       inner
outer_dec:
        addi    t1, t1, -1
        j       outer

done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        li      a0, 0
        ret
