# buggy-overflow — detection-campaign workload: tainted signed overflow.
#
# Parses a 32-bit record length from four input bytes and scales it to a
# byte size (12 bytes per record) *before* range-checking it — the classic
# allocation-size bug: `len * 12` wraps for large lengths, so the later
# bound check validates the wrapped value. No explored seed needs to wrap
# concretely; the overflow oracle's solver candidate at the `mul` finds a
# wrapping length on the very first path.
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { overflow @ the `mul` below }, depth 1.
# Paths: 2 (length accepted / rejected).

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 4
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)
        lbu     t2, 1(t0)
        lbu     t3, 2(t0)
        lbu     t4, 3(t0)
        slli    t2, t2, 8
        slli    t3, t3, 16
        slli    t4, t4, 24
        or      t1, t1, t2
        or      t1, t1, t3
        or      t1, t1, t4             # len: tainted 32-bit record count

        li      t5, 12
        mul     t6, t1, t5             # BUG: size = len * 12 before the check
        li      t5, 0x10000
        bltu    t1, t5, ok             # range check comes too late
        li      a0, 1
        j       done
ok:
        li      a0, 0
done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        ret

        .data
buf:    .space  4
