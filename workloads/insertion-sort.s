# insertion-sort — Table I workload: sort 7 symbolic bytes.
#
# Textbook insertion sort. The inner while-loop compares the key against
# a[j-1] (symbolic) and stops either on the comparison or on the concrete
# j == 0 bound; the feasible outcome sequences are the 7! = 5040 relative
# orderings of the inputs — the paper's Table I path count.

        .data
buf:    .space  7

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 7
        call    sym_input

        la      t6, buf
        li      t0, 1                  # i = 1
outer:
        li      t1, 7
        bge     t0, t1, done           # concrete loop branch
        add     t2, t6, t0
        lbu     t3, 0(t2)              # key = a[i]
        mv      t4, t0                 # j = i
inner:
        beqz    t4, place              # concrete: hit the front
        add     t2, t6, t4
        lbu     t5, -1(t2)             # a[j-1]
        bleu    t5, t3, place          # symbolic: a[j-1] <= key -> stop
        sb      t5, 0(t2)              # a[j] = a[j-1]
        addi    t4, t4, -1
        j       inner
place:
        add     t2, t6, t4
        sb      t3, 0(t2)              # a[j] = key
        addi    t0, t0, 1
        j       outer

done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        li      a0, 0
        ret
