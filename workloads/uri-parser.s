# uri-parser — Table I workload: validate 5 symbolic characters of a URI
# prefix.
#
# Position-by-position validation with early rejection: each position
# accepts its expected scheme/delimiter characters via an equality chain
# and bails out on anything else. A rejected first character is further
# triaged: a few more punctuation probes, then a *signed* comparison
# against 'a' routes control characters and digits into a 45-entry
# reserved-byte scan. Feasible paths on a correct engine:
#
#   accepted:          4 * 6 * 10 * 3 * 10  = 7200
#   bails (pos 1..4):  4 + 24 + 240 + 720   =  988
#   pos-0 triage:      5 + (45 + 1) + 1     =   52
#                                     total = 8240 — the Table I count.
#
# Under the angr lifter's signed-comparison bug (#5) the bltz takes its
# "not below" arm for every input, the reserved-byte scan becomes
# unreachable, and its 46 paths collapse into the plain-reject path:
# 8240 - 46 = 8194 — exactly the paper's angr column.

        .data
buf:    .space  5
        # Reserved low bytes probed by the pos-0 triage scan (45 entries).
rsvd:   .byte   0, 1, 2, 3, 4, 5, 6, 7, 8, 9
        .byte   10, 11, 12, 13, 14, 15, 16, 17, 18, 19
        .byte   20, 21, 22, 23, 24, 25, 26, 27, 28, 29
        .byte   30, 31, 32, 33, 34, 35, 36, 37, 38, 39
        .byte   40, 41, 42, 43, 44

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)
        sw      s0, 8(sp)

        la      a0, buf
        li      a1, 5
        call    sym_input
        la      s0, buf

        # pos 0: scheme initial (http, ftp, mailto, ws).
        lbu     t0, 0(s0)
        li      t1, 'h'
        beq     t0, t1, p1
        li      t1, 'f'
        beq     t0, t1, p1
        li      t1, 'm'
        beq     t0, t1, p1
        li      t1, 'w'
        beq     t0, t1, p1
        # Rejected: triage the offending character. First some other
        # common scheme initials we recognize but do not handle...
        li      a0, 2
        li      t1, 'g'                # gopher
        beq     t0, t1, bail
        li      t1, 's'                # ssh
        beq     t0, t1, bail
        li      t1, 'd'                # data
        beq     t0, t1, bail
        li      t1, 'i'                # irc
        beq     t0, t1, bail
        li      t1, 't'                # telnet
        beq     t0, t1, bail
        # ... then split off the sub-'a' range (punctuation, digits,
        # control characters) with a signed comparison and scan it
        # against the reserved-byte table.
        addi    t2, t0, -'a'
        bltz    t2, low_scan           # symbolic, signed (lifter bug #5 target)
        li      a0, 3
        j       bail
low_scan:
        la      t3, rsvd
        li      t4, 45
        li      t5, 0
scan:
        bge     t5, t4, scan_miss      # concrete loop branch
        lbu     t1, 0(t3)              # concrete table byte
        beq     t0, t1, scan_hit       # symbolic
        addi    t3, t3, 1
        addi    t5, t5, 1
        j       scan
scan_hit:
        li      a0, 4
        j       bail
scan_miss:
        li      a0, 5
        j       bail

        # pos 1: second scheme character.
p1:
        lbu     t0, 1(s0)
        li      t1, 't'
        beq     t0, t1, p2
        li      t1, 'e'
        beq     t0, t1, p2
        li      t1, 'a'
        beq     t0, t1, p2
        li      t1, 's'
        beq     t0, t1, p2
        li      t1, 'i'
        beq     t0, t1, p2
        li      t1, 'o'
        beq     t0, t1, p2
        li      a0, 6
        j       bail

        # pos 2: third scheme character.
p2:
        lbu     t0, 2(s0)
        li      t1, 't'
        beq     t0, t1, p3
        li      t1, 'p'
        beq     t0, t1, p3
        li      t1, 'i'
        beq     t0, t1, p3
        li      t1, 'l'
        beq     t0, t1, p3
        li      t1, 'c'
        beq     t0, t1, p3
        li      t1, 's'
        beq     t0, t1, p3
        li      t1, 'a'
        beq     t0, t1, p3
        li      t1, 'e'
        beq     t0, t1, p3
        li      t1, 'o'
        beq     t0, t1, p3
        li      t1, 'u'
        beq     t0, t1, p3
        li      a0, 7
        j       bail

        # pos 3: end of a short scheme or its continuation.
p3:
        lbu     t0, 3(s0)
        li      t1, ':'
        beq     t0, t1, p4
        li      t1, 'p'
        beq     t0, t1, p4
        li      t1, 's'
        beq     t0, t1, p4
        li      a0, 8
        j       bail

        # pos 4: delimiter or authority start.
p4:
        lbu     t0, 4(s0)
        li      t1, ':'
        beq     t0, t1, accept
        li      t1, '/'
        beq     t0, t1, accept
        li      t1, 'a'
        beq     t0, t1, accept
        li      t1, 'e'
        beq     t0, t1, accept
        li      t1, 'o'
        beq     t0, t1, accept
        li      t1, 's'
        beq     t0, t1, accept
        li      t1, 't'
        beq     t0, t1, accept
        li      t1, 'p'
        beq     t0, t1, accept
        li      t1, 'i'
        beq     t0, t1, accept
        li      t1, 'n'
        beq     t0, t1, accept
        li      a0, 9
        j       bail

accept:
        li      a0, 0
bail:
        lw      ra, 12(sp)
        lw      s0, 8(sp)
        addi    sp, sp, 16
        ret
