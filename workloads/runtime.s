# runtime.s — shared startup and engine-syscall stubs.
#
# load_workload() prepends this file to every workload source. The runtime
# keeps all of its own control flow concrete so it contributes no symbolic
# branches: path counts are determined entirely by the workload.
#
# Syscall ABI (src/core/syscalls.hpp): number in a7, arguments in a0/a1.

        .text
        .global _start
_start:
        call    main
        # Fall through into exit(a0): main's return value is the exit code.
exit:                           # exit(a0 = code): stop this path
        li      a7, 93
        ecall
halt:                           # not reached (kSysExit stops the machine)
        j       halt

        .global sym_input
sym_input:                      # sym_input(a0 = buf, a1 = len)
        li      a7, 2
        ecall
        ret

        .global putchar
putchar:                        # putchar(a0 = byte)
        li      a7, 1
        ecall
        ret

        .global report_fail
report_fail:                    # report_fail(a0 = failure id)
        li      a7, 3
        ecall
        ret

        .global assert_true
assert_true:                    # assert_true(a0 = condition, a1 = assert id)
        li      a7, 4           # property oracle: a0 == 0 is a violation;
        ecall                   # a0 stays symbolic so the solver can search
        ret                     # for a violating input (docs/ORACLES.md)

        .global reach
reach:                          # reach(a0 = marker id): report this point
        li      a7, 5           # was reached ("should be unreachable")
        ecall
        ret
