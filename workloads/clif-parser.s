# clif-parser — Table I workload: classify 6 symbolic characters of a
# Cranelift-IR-style instruction line.
#
# Each of the six positions is matched against its expected token
# characters by an equality chain (recognized characters vs. fall-through),
# and the parser tallies how many positions matched. The chains never
# abort, so the feasible paths are the product of the per-position
# outcomes:
#
#   pos0: 16 instruction initials + other = 17
#   pos1:  6 operand lead-ins      + other =  7
#   pos2:  3 type-prefix chars     + other =  4
#   pos3:  3 type-width chars      + other =  4
#   pos4:  2 separators            + other =  3
#   pos5:  1 terminator            + other =  2
#
#   17 * 7 * 4 * 4 * 3 * 2 = 11424 — the paper's Table I count.

        .data
buf:    .space  6

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)
        sw      s0, 8(sp)
        sw      s1, 4(sp)

        la      a0, buf
        li      a1, 6
        call    sym_input
        la      s0, buf
        li      s1, 0                  # matched-position tally

        # pos 0: instruction mnemonic initial (iadd, call, fcmp, ...).
        lbu     t0, 0(s0)
        li      t1, 'i'
        beq     t0, t1, p0_hit
        li      t1, 'c'
        beq     t0, t1, p0_hit
        li      t1, 'f'
        beq     t0, t1, p0_hit
        li      t1, 'b'
        beq     t0, t1, p0_hit
        li      t1, 'v'
        beq     t0, t1, p0_hit
        li      t1, 's'
        beq     t0, t1, p0_hit
        li      t1, 'u'
        beq     t0, t1, p0_hit
        li      t1, 'l'
        beq     t0, t1, p0_hit
        li      t1, 'j'
        beq     t0, t1, p0_hit
        li      t1, 'r'
        beq     t0, t1, p0_hit
        li      t1, 't'
        beq     t0, t1, p0_hit
        li      t1, 'g'
        beq     t0, t1, p0_hit
        li      t1, 'h'
        beq     t0, t1, p0_hit
        li      t1, 'p'
        beq     t0, t1, p0_hit
        li      t1, 'd'
        beq     t0, t1, p0_hit
        li      t1, 'm'
        beq     t0, t1, p0_hit
        j       p1
p0_hit:
        addi    s1, s1, 1

        # pos 1: operand lead-in (value, immediate, fn ref, ...).
p1:
        lbu     t0, 1(s0)
        li      t1, 'v'
        beq     t0, t1, p1_hit
        li      t1, 'i'
        beq     t0, t1, p1_hit
        li      t1, 'f'
        beq     t0, t1, p1_hit
        li      t1, 'b'
        beq     t0, t1, p1_hit
        li      t1, 's'
        beq     t0, t1, p1_hit
        li      t1, '%'
        beq     t0, t1, p1_hit
        j       p2
p1_hit:
        addi    s1, s1, 1

        # pos 2: type prefix ('.', or the leading digit of i32/i64).
p2:
        lbu     t0, 2(s0)
        li      t1, '.'
        beq     t0, t1, p2_hit
        li      t1, '3'
        beq     t0, t1, p2_hit
        li      t1, '6'
        beq     t0, t1, p2_hit
        j       p3
p2_hit:
        addi    s1, s1, 1

        # pos 3: type width digit.
p3:
        lbu     t0, 3(s0)
        li      t1, '2'
        beq     t0, t1, p3_hit
        li      t1, '4'
        beq     t0, t1, p3_hit
        li      t1, '8'
        beq     t0, t1, p3_hit
        j       p4
p3_hit:
        addi    s1, s1, 1

        # pos 4: operand separator.
p4:
        lbu     t0, 4(s0)
        li      t1, ' '
        beq     t0, t1, p4_hit
        li      t1, ','
        beq     t0, t1, p4_hit
        j       p5
p4_hit:
        addi    s1, s1, 1

        # pos 5: line terminator.
p5:
        lbu     t0, 5(s0)
        li      t1, '\n'
        beq     t0, t1, p5_hit
        j       done
p5_hit:
        addi    s1, s1, 1

done:
        mv      a0, s1                 # exit code = number of matches
        lw      ra, 12(sp)
        lw      s0, 8(sp)
        lw      s1, 4(sp)
        addi    sp, sp, 16
        ret
