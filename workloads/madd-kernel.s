# madd-kernel — the Sect. IV custom-instruction case study.
#
# Uses the custom MADD instruction (rd = rs1*rs2 + rs3, registered at
# runtime from the Fig. 3 encoding + Fig. 4 semantics) on one symbolic
# byte x and branches on x*x + x == 30. Exactly one byte satisfies it
# (x == 5), so exploration yields 2 paths and the solver must invert the
# madd semantics to find the magic input. Requires the extended opcode
# table: a plain RV32IM engine traps with an illegal instruction here.

        .data
buf:    .space  1

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 1
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)              # x (zero-extended byte)
        madd    t2, t1, t1, t1         # t2 = x*x + x
        li      t3, 30
        bne     t2, t3, done           # symbolic
        li      a0, '!'
        call    putchar
done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        li      a0, 0
        ret
