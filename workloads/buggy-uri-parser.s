# buggy-uri-parser — detection-campaign workload: two memory-safety bugs.
#
# A trimmed cousin of uri-parser that classifies a 2-byte input (scheme
# initial + normalization slot). Both bugs are index-validation failures on
# tainted bytes; neither ever faults under the all-zero seed, so only the
# out-of-bounds oracles' solver candidates can expose them:
#
#   bug 1 (oob-load):  the reject path probes the 45-entry reserved table
#                      at rsvd[c] with the *unchecked* rejected byte c
#                      (0..255 — up to 210 bytes past the table);
#   bug 2 (oob-store): the accept path records the scheme class at
#                      out[l & 0x3f], but `out` holds only 16 bytes (the
#                      mask keeps indices up to 63).
#
# Known bug set (pinned by tests/test_oracles.cpp):
#   { oob-load @ the `lbu` below, oob-store @ the `sb` below }, depth 1.
# Paths: 3 (c == 'h', c == 'f', reject).

        .text
        .global main
main:
        addi    sp, sp, -16
        sw      ra, 12(sp)

        la      a0, buf
        li      a1, 2
        call    sym_input
        la      t0, buf
        lbu     t1, 0(t0)              # c: scheme initial
        lbu     t2, 1(t0)              # l: normalization slot

        li      t3, 'h'
        beq     t1, t3, accept
        li      t3, 'f'
        beq     t1, t3, accept

        # Reject: triage c against the reserved table — index unchecked.
        la      t3, rsvd
        add     t3, t3, t1
        lbu     t4, 0(t3)              # BUG 1: rsvd[c], c in 0..255
        li      a0, 2
        j       done

accept:
        # Record the scheme class; the mask is wider than the buffer.
        andi    t4, t2, 0x3f
        la      t5, out
        add     t5, t5, t4
        sb      t1, 0(t5)              # BUG 2: out[l & 0x3f], out[16]
        li      a0, 0
done:
        lw      ra, 12(sp)
        addi    sp, sp, 16
        ret

        .data
buf:    .space  2
rsvd:   .byte   0, 1, 2, 3, 4, 5, 6, 7, 8, 9
        .byte   10, 11, 12, 13, 14, 15, 16, 17, 18, 19
        .byte   20, 21, 22, 23, 24, 25, 26, 27, 28, 29
        .byte   30, 31, 32, 33, 34, 35, 36, 37, 38, 39
        .byte   40, 41, 42, 43, 44
out:    .space  16
