// Findings serialization and witness replay plumbing for the detection
// campaign: the `explore --findings-dir` artifact (a findings.json index
// plus one raw witness input file per finding) and the helper that turns a
// witness back into an engine seed for concrete replay.
//
// The artifact layout:
//
//   <dir>/findings.json    — {"target", "engine", "findings": [...]}; each
//                            finding carries oracle, pc, call_depth,
//                            detail, the faulting expression (SMT-LIB),
//                            the input bytes, and its witness file name
//   <dir>/witness-NNN.bin  — the finding's input bytes, raw, in sym_input
//                            creation order (replayable: explore --replay)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/finding.hpp"
#include "smt/context.hpp"
#include "smt/eval.hpp"

namespace binsym::oracles {

/// Witness file name of finding `index` ("witness-000.bin", ...).
std::string witness_file_name(size_t index);

/// Build the engine seed that assigns the run's symbolic input bytes — in
/// sym_input creation order ("in_0", "in_1", ...) — from `bytes`. Running
/// any executor over `ctx` under this seed replays the witness concretely.
smt::Assignment witness_seed(smt::Context& ctx,
                             std::span<const uint8_t> bytes);

/// Write findings.json and the witness corpus into `dir` (which must
/// exist). Returns false and sets `*error` on I/O failure.
bool write_findings_dir(const std::string& dir, const std::string& target,
                        const std::string& engine,
                        const std::vector<core::Finding>& findings,
                        std::string* error);

/// One-line human rendering ("finding oob-load pc=0x... depth=1 ...").
std::string finding_to_line(const core::Finding& finding);

}  // namespace binsym::oracles
