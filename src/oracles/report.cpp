#include "oracles/report.hpp"

#include <fstream>

#include "support/format.hpp"

namespace binsym::oracles {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string witness_file_name(size_t index) {
  return strprintf("witness-%03zu.bin", index);
}

smt::Assignment witness_seed(smt::Context& ctx,
                             std::span<const uint8_t> bytes) {
  smt::Assignment seed;
  for (size_t i = 0; i < bytes.size(); ++i) {
    // var() interns by name: this either creates "in_i" ahead of the run
    // or resolves the id the previous runs already assigned.
    smt::ExprRef var = ctx.var("in_" + std::to_string(i), 8);
    seed.set(var->var_id, bytes[i]);
  }
  return seed;
}

std::string finding_to_line(const core::Finding& finding) {
  if (finding.origin == core::FindingOrigin::kStatic) {
    // Static lint findings carry a rule and no witness: proven from the
    // load-time fixpoint alone, there is no input to replay.
    return strprintf("lint %s [%s] pc=%s depth=%u: %s",
                     core::oracle_kind_name(finding.oracle),
                     finding.rule.c_str(), hex32(finding.pc).c_str(),
                     finding.call_depth, finding.detail.c_str());
  }
  std::string line = strprintf(
      "finding %s pc=%s depth=%u path=%llu: %s; witness:",
      core::oracle_kind_name(finding.oracle), hex32(finding.pc).c_str(),
      finding.call_depth, static_cast<unsigned long long>(finding.path_index),
      finding.detail.c_str());
  if (finding.input.empty()) line += " (no symbolic input)";
  for (uint8_t byte : finding.input) line += strprintf(" %02x", byte);
  return line;
}

bool write_findings_dir(const std::string& dir, const std::string& target,
                        const std::string& engine,
                        const std::vector<core::Finding>& findings,
                        std::string* error) {
  for (size_t i = 0; i < findings.size(); ++i) {
    std::string path = dir + "/" + witness_file_name(i);
    std::ofstream witness(path, std::ios::binary);
    witness.write(reinterpret_cast<const char*>(findings[i].input.data()),
                  static_cast<std::streamsize>(findings[i].input.size()));
    if (!witness) {
      if (error) *error = "cannot write " + path;
      return false;
    }
  }

  std::string path = dir + "/findings.json";
  std::ofstream json(path);
  json << "{\n  \"target\": \"" << json_escape(target) << "\",\n"
       << "  \"engine\": \"" << json_escape(engine) << "\",\n"
       << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const core::Finding& f = findings[i];
    json << (i ? ",\n" : "\n");
    json << "    {\n"
         << "      \"oracle\": \"" << core::oracle_kind_name(f.oracle)
         << "\",\n"
         << "      \"pc\": \"" << hex32(f.pc) << "\",\n"
         << "      \"call_depth\": " << f.call_depth << ",\n"
         << "      \"path\": " << f.path_index << ",\n"
         << "      \"detail\": \"" << json_escape(f.detail) << "\",\n"
         << "      \"expr\": \"" << json_escape(f.expr_text) << "\",\n"
         << "      \"witness\": \"" << witness_file_name(i) << "\",\n"
         << "      \"input\": [";
    for (size_t j = 0; j < f.input.size(); ++j)
      json << (j ? ", " : "") << static_cast<unsigned>(f.input[j]);
    json << "]\n    }";
  }
  json << "\n  ]\n}\n";
  if (!json) {
    if (error) *error = "cannot write " + path;
    return false;
  }
  return true;
}

}  // namespace binsym::oracles
