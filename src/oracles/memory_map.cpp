#include "oracles/memory_map.hpp"

namespace binsym::oracles {

MemoryMap MemoryMap::for_program(const core::Program& program,
                                 uint32_t stack_top, uint32_t stack_reserve) {
  MemoryMap map;
  map.regions_ = program.regions;
  if (stack_reserve > 0 && stack_reserve <= stack_top)
    map.regions_.push_back(core::MemRegion{stack_top - stack_reserve,
                                           stack_top});
  return map;
}

bool MemoryMap::contains(uint32_t addr, unsigned bytes) const {
  for (const core::MemRegion& region : regions_)
    if (region.contains(addr, bytes)) return true;
  return false;
}

smt::ExprRef MemoryMap::out_of_bounds(smt::Context& ctx, smt::ExprRef addr,
                                      unsigned bytes) const {
  // In-bounds for one region: lo <= addr <= hi - bytes, with constant
  // hi - bytes (so an addr + bytes wrap-around can never sneak in-bounds).
  // Out of bounds = in no region.
  smt::ExprRef oob = ctx.bool_const(true);
  for (const core::MemRegion& region : regions_) {
    uint32_t span = region.hi - region.lo;
    if (bytes > span) continue;  // region too small for this access
    smt::ExprRef in_region =
        ctx.and_(ctx.uge(addr, ctx.constant(region.lo, 32)),
                 ctx.ule(addr, ctx.constant(region.hi - bytes, 32)));
    oob = ctx.and_(oob, ctx.not_(in_region));
  }
  return oob;
}

}  // namespace binsym::oracles
