// The concrete detectors, one class per OracleKind. See docs/ORACLES.md
// for what each one detects, its caveats, and how to enable it; the doc is
// cross-checked against oracle_kind_name() by tools/check_docs.py.
//
// Shared shape: every event is judged twice. If the violation already
// happened under the run's concrete shadows, it is a hit (the seed is the
// witness). Otherwise, if the faulting value is symbolic ("tainted":
// derived from sym_input bytes), the detector emits the violation as a
// width-1 candidate condition for the engine's solver — that is what lets
// the property checker find bugs no explored seed concretely triggers.
#pragma once

#include "oracles/oracle.hpp"

namespace binsym::oracles {

/// Out-of-bounds load: the address escapes every MemoryMap region.
class OobLoadOracle final : public Oracle {
 public:
  core::OracleKind kind() const override { return core::OracleKind::kOobLoad; }
  void on_mem(const MemEvent& event, OracleManager& m) override;
};

/// Out-of-bounds store (same bounds, write side).
class OobStoreOracle final : public Oracle {
 public:
  core::OracleKind kind() const override { return core::OracleKind::kOobStore; }
  void on_mem(const MemEvent& event, OracleManager& m) override;
};

/// Division/remainder whose divisor is (feasibly) zero. Two detection
/// routes: the RV32M semantics guard the zero case with an explicit
/// runIfElse, so the taken guard of a div/rem instruction *is* the event
/// (exploration enumerates the zero arm as its own path); raw DSL
/// udiv/urem/sdiv/srem in custom semantics are judged at the operator.
class DivByZeroOracle final : public Oracle {
 public:
  core::OracleKind kind() const override {
    return core::OracleKind::kDivByZero;
  }
  void on_guard(const interp::SymValue& cond, bool taken,
                OracleManager& m) override;
  void on_binop(dsl::ExprOp op, const interp::SymValue& a,
                const interp::SymValue& b, OracleManager& m) override;
};

/// Signed 32-bit overflow in add/sub/mul over tainted operands.
class OverflowOracle final : public Oracle {
 public:
  core::OracleKind kind() const override { return core::OracleKind::kOverflow; }
  void on_binop(dsl::ExprOp op, const interp::SymValue& a,
                const interp::SymValue& b, OracleManager& m) override;
};

/// 2/4-byte access at a (feasibly) misaligned address.
class UnalignedOracle final : public Oracle {
 public:
  core::OracleKind kind() const override {
    return core::OracleKind::kUnaligned;
  }
  void on_mem(const MemEvent& event, OracleManager& m) override;
};

/// Indirect jump (jalr) with a symbolic target — attacker-controlled pc —
/// or a concrete target outside every mapped region.
class BadJumpOracle final : public Oracle {
 public:
  core::OracleKind kind() const override { return core::OracleKind::kBadJump; }
  void on_indirect_jump(const JumpEvent& event, OracleManager& m) override;
};

/// Return to an address other than the link value the matching call pushed
/// onto the shadow stack (a smashed saved return address).
class StackSmashOracle final : public Oracle {
 public:
  core::OracleKind kind() const override {
    return core::OracleKind::kStackSmash;
  }
  void on_return(const JumpEvent& event, OracleManager& m) override;
};

/// User assert(cond, id) syscall with a (feasibly) false condition.
class AssertOracle final : public Oracle {
 public:
  core::OracleKind kind() const override {
    return core::OracleKind::kAssertFail;
  }
  void on_assert(const interp::SymValue& cond, uint32_t id,
                 OracleManager& m) override;
};

/// User reach(id) syscall marker executed at all.
class ReachOracle final : public Oracle {
 public:
  core::OracleKind kind() const override { return core::OracleKind::kReach; }
  void on_reach(uint32_t id, OracleManager& m) override;
};

}  // namespace binsym::oracles
