// The Oracle interface: one detector per OracleKind.
//
// Oracles are passive observers. The OracleManager (manager.hpp) receives
// the raw ExecObserver events from the executor, enriches them with the
// run context the detectors share (current pc, shadow call stack,
// classified control transfers), and dispatches the typed events below to
// every enabled oracle. Detectors never mutate machine state; their only
// output is manager.hit() / manager.candidate() (finding.hpp):
//
//   hit        — the violation concretely happened on this run;
//   candidate  — the violation is possible iff the attached width-1
//                condition is satisfiable under this path's constraints
//                (decided later by the engine's solver).
//
// Thread-safety: an oracle lives inside one worker's OracleManager; no
// locking anywhere in this layer.
#pragma once

#include <cstdint>
#include <memory>

#include "core/finding.hpp"
#include "dsl/ast.hpp"
#include "interp/value.hpp"

namespace binsym::oracles {

class OracleManager;

/// A data memory access, observed before address concretization:
/// `addr.sym` (when set) is the unpinned address expression.
struct MemEvent {
  bool store = false;
  const interp::SymValue& addr;
  unsigned bytes = 0;
  const interp::SymValue* value = nullptr;  // stores only
};

/// An indirect control transfer (jalr), observed before target
/// concretization and already classified by the manager's shadow call
/// stack. `expected_return` is only meaningful for returns with
/// `have_expected` set (the link value the matching call pushed).
struct JumpEvent {
  const interp::SymValue& target;
  uint32_t expected_return = 0;
  bool have_expected = false;
};

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// The (single) finding kind this detector raises; its name is the
  /// detector's enable-flag spelling (`explore --oracles <name>,...`).
  virtual core::OracleKind kind() const = 0;

  // Typed events; default no-ops so each detector implements only what it
  // watches.
  virtual void on_mem(const MemEvent& event, OracleManager& m) {
    (void)event, (void)m;
  }
  /// A jalr that is not a return (calls and computed jumps).
  virtual void on_indirect_jump(const JumpEvent& event, OracleManager& m) {
    (void)event, (void)m;
  }
  /// A return (`jalr x0, ra, 0`).
  virtual void on_return(const JumpEvent& event, OracleManager& m) {
    (void)event, (void)m;
  }
  /// add/sub/mul/udiv/urem/sdiv/srem only (see ExecObserver::on_binop).
  virtual void on_binop(dsl::ExprOp op, const interp::SymValue& a,
                        const interp::SymValue& b, OracleManager& m) {
    (void)op, (void)a, (void)b, (void)m;
  }
  /// A runIfElse guard decided inside the current instruction's semantics
  /// (the manager exposes the instruction's opcode id).
  virtual void on_guard(const interp::SymValue& cond, bool taken,
                        OracleManager& m) {
    (void)cond, (void)taken, (void)m;
  }
  virtual void on_assert(const interp::SymValue& cond, uint32_t id,
                         OracleManager& m) {
    (void)cond, (void)id, (void)m;
  }
  virtual void on_reach(uint32_t id, OracleManager& m) { (void)id, (void)m; }
};

/// Construct the detector for `kind`; null for kNumOracleKinds.
std::unique_ptr<Oracle> make_oracle(core::OracleKind kind);

}  // namespace binsym::oracles
