#include "oracles/detectors.hpp"

#include "oracles/manager.hpp"
#include "support/format.hpp"

namespace binsym::oracles {

namespace {

/// Judge one memory access against the bounds map; shared by the load and
/// store detectors (they differ only in direction and finding kind).
void check_bounds(core::OracleKind kind, const MemEvent& event,
                  OracleManager& m) {
  const char* verb = event.store ? "store" : "load";
  uint32_t conc = static_cast<uint32_t>(event.addr.conc);
  if (!m.map().contains(conc, event.bytes)) {
    m.hit(kind, event.addr.sym,
          strprintf("%u-byte %s at %s outside every mapped region", event.bytes,
                    verb, hex32(conc).c_str()));
    return;
  }
  if (!event.addr.symbolic()) return;
  m.candidate(kind, m.map().out_of_bounds(m.context(), event.addr.sym,
                                          event.bytes),
              event.addr.sym,
              strprintf("%u-byte %s through tainted address (concretely %s) "
                        "can escape every mapped region",
                        event.bytes, verb, hex32(conc).c_str()));
}

bool is_division(dsl::ExprOp op) {
  return op == dsl::ExprOp::kUDiv || op == dsl::ExprOp::kURem ||
         op == dsl::ExprOp::kSDiv || op == dsl::ExprOp::kSRem;
}

}  // namespace

void OobLoadOracle::on_mem(const MemEvent& event, OracleManager& m) {
  if (!event.store) check_bounds(kind(), event, m);
}

void OobStoreOracle::on_mem(const MemEvent& event, OracleManager& m) {
  if (event.store) check_bounds(kind(), event, m);
}

void DivByZeroOracle::on_guard(const interp::SymValue& cond, bool taken,
                               OracleManager& m) {
  // The RV32M div/rem semantics fork on `rs2 == 0`; the taken arm is the
  // division by zero (defined to return -1 / the dividend — the program
  // keeps running on garbage, which is exactly why it needs an oracle).
  if (!taken) return;
  isa::OpcodeId id = m.instruction();
  if (id != isa::kDIV && id != isa::kDIVU && id != isa::kREM &&
      id != isa::kREMU)
    return;
  m.hit(kind(), cond.sym, "division by zero (divisor-is-zero guard taken)");
}

void DivByZeroOracle::on_binop(dsl::ExprOp op, const interp::SymValue& a,
                               const interp::SymValue& b, OracleManager& m) {
  (void)a;
  if (!is_division(op)) return;
  // The guarded RV32M divisions are on_guard()'s business: their division
  // operator only ever executes under ¬(rs2 == 0), so a divisor==0
  // candidate here would be structurally unsat — pure solver waste.
  isa::OpcodeId id = m.instruction();
  if (id == isa::kDIV || id == isa::kDIVU || id == isa::kREM ||
      id == isa::kREMU)
    return;
  if (b.conc == 0) {
    // Raw DSL division (custom semantics without the RV32M-style guard):
    // SMT-LIB division is total, so the machine does not trap — the
    // detector is the only thing that notices.
    m.hit(kind(), b.sym,
          strprintf("%s with divisor concretely zero",
                    dsl::expr_op_name(op)));
    return;
  }
  if (!b.symbolic()) return;
  smt::Context& ctx = m.context();
  m.candidate(kind(), ctx.eq(b.sym, ctx.constant(0, b.width)), b.sym,
              strprintf("%s with tainted divisor can divide by zero",
                        dsl::expr_op_name(op)));
}

void OverflowOracle::on_binop(dsl::ExprOp op, const interp::SymValue& a,
                              const interp::SymValue& b, OracleManager& m) {
  if (op != dsl::ExprOp::kAdd && op != dsl::ExprOp::kSub &&
      op != dsl::ExprOp::kMul)
    return;
  // Tainted operands at machine word width only: untainted wrap-around is
  // routine codegen (large constants, stack adjustment), not a finding.
  if (a.width != 32 || b.width != 32) return;
  if (!a.symbolic() && !b.symbolic()) return;

  const int64_t sa = static_cast<int32_t>(a.conc);
  const int64_t sb = static_cast<int32_t>(b.conc);
  const int64_t exact = op == dsl::ExprOp::kAdd   ? sa + sb
                        : op == dsl::ExprOp::kSub ? sa - sb
                                                  : sa * sb;
  const bool concretely = exact != static_cast<int32_t>(exact);

  smt::Context& ctx = m.context();
  smt::ExprRef ax = interp::to_expr(ctx, a);
  smt::ExprRef bx = interp::to_expr(ctx, b);
  smt::ExprRef narrow, wide;
  if (op == dsl::ExprOp::kMul) {
    narrow = ctx.sext(ctx.mul(ax, bx), 64);
    wide = ctx.mul(ctx.sext(ax, 64), ctx.sext(bx, 64));
  } else {
    smt::ExprRef r32 =
        op == dsl::ExprOp::kAdd ? ctx.add(ax, bx) : ctx.sub(ax, bx);
    narrow = ctx.sext(r32, 33);
    wide = op == dsl::ExprOp::kAdd ? ctx.add(ctx.sext(ax, 33), ctx.sext(bx, 33))
                                   : ctx.sub(ctx.sext(ax, 33), ctx.sext(bx, 33));
  }
  if (concretely) {
    m.hit(kind(), ctx.ne(narrow, wide),
          strprintf("signed 32-bit %s overflow on tainted operands "
                    "(concretely %lld)",
                    dsl::expr_op_name(op), static_cast<long long>(exact)));
    return;
  }
  m.candidate(kind(), ctx.ne(narrow, wide), nullptr,
              strprintf("signed 32-bit %s on tainted operands can overflow",
                        dsl::expr_op_name(op)));
}

void UnalignedOracle::on_mem(const MemEvent& event, OracleManager& m) {
  unsigned bytes = event.bytes;
  if (bytes < 2 || (bytes & (bytes - 1)) != 0) return;
  const char* verb = event.store ? "store" : "load";
  uint32_t conc = static_cast<uint32_t>(event.addr.conc);
  if (conc & (bytes - 1)) {
    m.hit(kind(), event.addr.sym,
          strprintf("misaligned %u-byte %s at %s", bytes, verb,
                    hex32(conc).c_str()));
    return;
  }
  if (!event.addr.symbolic()) return;
  smt::Context& ctx = m.context();
  smt::ExprRef misaligned =
      ctx.ne(ctx.and_(event.addr.sym, ctx.constant(bytes - 1, 32)),
             ctx.constant(0, 32));
  m.candidate(kind(), misaligned, event.addr.sym,
              strprintf("%u-byte %s through tainted address can be misaligned",
                        bytes, verb));
}

void BadJumpOracle::on_indirect_jump(const JumpEvent& event, OracleManager& m) {
  uint32_t conc = static_cast<uint32_t>(event.target.conc);
  if (event.target.symbolic()) {
    m.hit(kind(), event.target.sym,
          strprintf("indirect jump with attacker-controlled target "
                    "(concretely %s)",
                    hex32(conc).c_str()));
    return;
  }
  // Smallest encodable instruction = 2 bytes (compressed).
  if (!m.map().contains(conc, 2)) {
    m.hit(kind(), nullptr,
          strprintf("indirect jump to unmapped %s", hex32(conc).c_str()));
  }
}

void StackSmashOracle::on_return(const JumpEvent& event, OracleManager& m) {
  if (!event.have_expected) return;  // no matching call observed
  uint32_t conc = static_cast<uint32_t>(event.target.conc);
  if (conc != event.expected_return) {
    m.hit(kind(), event.target.sym,
          strprintf("return to %s but the caller pushed %s "
                    "(saved return address overwritten)",
                    hex32(conc).c_str(),
                    hex32(event.expected_return).c_str()));
    return;
  }
  if (!event.target.symbolic()) return;
  smt::Context& ctx = m.context();
  m.candidate(kind(),
              ctx.ne(event.target.sym,
                     ctx.constant(event.expected_return, 32)),
              event.target.sym,
              "tainted return address can diverge from the caller's link "
              "value");
}

void AssertOracle::on_assert(const interp::SymValue& cond, uint32_t id,
                             OracleManager& m) {
  if (cond.conc == 0) {
    m.hit(kind(), cond.sym,
          strprintf("assert %u concretely violated", id));
    return;
  }
  if (!cond.symbolic()) return;
  smt::Context& ctx = m.context();
  m.candidate(kind(), ctx.eq(cond.sym, ctx.constant(0, cond.width)), cond.sym,
              strprintf("assert %u can be violated", id));
}

void ReachOracle::on_reach(uint32_t id, OracleManager& m) {
  m.hit(kind(), nullptr, strprintf("reach marker %u executed", id));
}

std::unique_ptr<Oracle> make_oracle(core::OracleKind kind) {
  switch (kind) {
    case core::OracleKind::kOobLoad:
      return std::make_unique<OobLoadOracle>();
    case core::OracleKind::kOobStore:
      return std::make_unique<OobStoreOracle>();
    case core::OracleKind::kDivByZero:
      return std::make_unique<DivByZeroOracle>();
    case core::OracleKind::kOverflow:
      return std::make_unique<OverflowOracle>();
    case core::OracleKind::kUnaligned:
      return std::make_unique<UnalignedOracle>();
    case core::OracleKind::kBadJump:
      return std::make_unique<BadJumpOracle>();
    case core::OracleKind::kStackSmash:
      return std::make_unique<StackSmashOracle>();
    case core::OracleKind::kAssertFail:
      return std::make_unique<AssertOracle>();
    case core::OracleKind::kReach:
      return std::make_unique<ReachOracle>();
    case core::OracleKind::kNumOracleKinds:
      break;
  }
  return nullptr;
}

}  // namespace binsym::oracles
