#include "oracles/manager.hpp"

namespace binsym::oracles {

void OracleManager::add(std::unique_ptr<Oracle> oracle) {
  oracles_.push_back(std::move(oracle));
}

bool OracleManager::parse_spec(const std::string& spec,
                               std::vector<core::OracleKind>* kinds,
                               std::string* error) {
  kinds->clear();
  if (spec == "all") {
    for (uint8_t k = 0;
         k < static_cast<uint8_t>(core::OracleKind::kNumOracleKinds); ++k)
      kinds->push_back(static_cast<core::OracleKind>(k));
    return true;
  }
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string name = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!name.empty()) {
      core::OracleKind kind = core::oracle_kind_from_name(name);
      if (kind == core::OracleKind::kNumOracleKinds) {
        if (error) *error = "unknown oracle '" + name + "'";
        return false;
      }
      kinds->push_back(kind);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (kinds->empty()) {
    if (error) *error = "empty oracle list";
    return false;
  }
  return true;
}

std::unique_ptr<OracleManager> OracleManager::make(smt::Context& ctx,
                                                   MemoryMap map,
                                                   const std::string& spec,
                                                   std::string* error) {
  std::vector<core::OracleKind> kinds;
  if (!parse_spec(spec, &kinds, error)) return nullptr;
  auto manager = std::make_unique<OracleManager>(ctx, std::move(map));
  for (core::OracleKind kind : kinds) manager->add(make_oracle(kind));
  return manager;
}

void OracleManager::hit(core::OracleKind kind, smt::ExprRef expr,
                        std::string detail) {
  if (!trace_) return;
  uint64_t key = core::finding_key(kind, pc_, call_depth());
  if (!run_.seen_hits.insert(key).second) return;  // loop iterations collapse
  trace_->oracle_hits.push_back(
      core::OracleHit{kind, pc_, call_depth(), expr, std::move(detail)});
}

void OracleManager::candidate(core::OracleKind kind, smt::ExprRef cond,
                              smt::ExprRef expr, std::string detail) {
  if (!trace_ || !cond) return;
  if (cond->is_false()) return;  // builder already refuted it
  if (!run_.seen_cands
           .insert({core::finding_key(kind, pc_, call_depth()), cond->id})
           .second)
    return;
  trace_->oracle_candidates.push_back(core::OracleCandidate{
      kind, pc_, call_depth(), cond, expr, trace_->branches.size(),
      trace_->assumptions.size(), std::move(detail)});
}

void OracleManager::begin_run(core::PathTrace& trace) {
  trace_ = &trace;
  run_ = RunState{};
}

void OracleManager::resume_run(core::PathTrace& trace,
                               const std::shared_ptr<const void>& state) {
  trace_ = &trace;
  run_ = state ? *static_cast<const RunState*>(state.get()) : RunState{};
}

std::shared_ptr<const void> OracleManager::capture_state() const {
  return std::make_shared<RunState>(run_);
}

void OracleManager::on_instruction(uint32_t pc, const isa::Decoded& decoded) {
  pc_ = pc;
  size_ = decoded.size;
  id_ = decoded.id();
  // Operand fields are format-checked; read only what the classified
  // opcodes define.
  if (id_ == isa::kJAL) {
    rd_ = decoded.rd();
    rs1_ = 0;
    imm_ = 0;
  } else if (id_ == isa::kJALR) {
    rd_ = decoded.rd();
    rs1_ = decoded.rs1();
    imm_ = static_cast<int32_t>(decoded.immediate());
  }
}

void OracleManager::on_load(const interp::SymValue& addr, unsigned bytes) {
  MemEvent event{/*store=*/false, addr, bytes, nullptr};
  for (auto& oracle : oracles_) oracle->on_mem(event, *this);
}

void OracleManager::on_store(const interp::SymValue& addr, unsigned bytes,
                             const interp::SymValue& value) {
  MemEvent event{/*store=*/true, addr, bytes, &value};
  for (auto& oracle : oracles_) oracle->on_mem(event, *this);
}

void OracleManager::on_jump(const interp::SymValue& target) {
  // WritePC fires for every non-fallthrough transfer; classify by the
  // executing instruction. Taken branches and direct jumps have concrete,
  // link-time targets — only jal maintains the shadow stack, only jalr
  // reaches the jump oracles.
  if (id_ == isa::kJAL) {
    if (rd_ == 1) run_.shadow.push_back(pc_ + size_);
    return;
  }
  if (id_ != isa::kJALR) return;

  const bool is_return = rd_ == 0 && rs1_ == 1 && imm_ == 0;
  if (is_return) {
    JumpEvent event{target, 0, false};
    if (!run_.shadow.empty()) {
      event.expected_return = run_.shadow.back();
      event.have_expected = true;
    }
    // call_depth() during dispatch is the callee's depth (pre-pop), so a
    // smashed return dedups against re-detections of the same frame.
    for (auto& oracle : oracles_) oracle->on_return(event, *this);
    if (!run_.shadow.empty()) run_.shadow.pop_back();
    return;
  }

  JumpEvent event{target, 0, false};
  for (auto& oracle : oracles_) oracle->on_indirect_jump(event, *this);
  if (rd_ == 1) run_.shadow.push_back(pc_ + size_);  // indirect call
}

void OracleManager::on_branch(const interp::SymValue& cond, bool taken) {
  for (auto& oracle : oracles_) oracle->on_guard(cond, taken, *this);
}

void OracleManager::on_binop(dsl::ExprOp op, const interp::SymValue& a,
                             const interp::SymValue& b) {
  for (auto& oracle : oracles_) oracle->on_binop(op, a, b, *this);
}

void OracleManager::on_assert(const interp::SymValue& cond, uint32_t id) {
  for (auto& oracle : oracles_) oracle->on_assert(cond, id, *this);
}

void OracleManager::on_reach(uint32_t id) {
  for (auto& oracle : oracles_) oracle->on_reach(id, *this);
}

}  // namespace binsym::oracles
