// Shadow bounds for the out-of-bounds oracles.
//
// A MemoryMap is the oracle-side model of which guest addresses a data
// access may legally touch: the byte-exact extents of the program's loaded
// ELF segments, the engine-tracked stack region below the initial stack
// pointer, and any extra windows a platform registers (the VP's MMIO
// devices, a heap region if a workload models one). Anything outside the
// union is out of bounds.
//
// The map answers the same question in two forms: concretely (contains())
// for accesses that already happened, and symbolically (out_of_bounds())
// as a width-1 feasibility condition over an unpinned address expression
// for the engine's solver.
//
// Thread-safety: immutable after construction; share freely across workers
// only by value (the expression builder needs the worker's own context).
#pragma once

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "smt/context.hpp"

namespace binsym::oracles {

class MemoryMap {
 public:
  /// Stack bytes below MachineConfig::stack_top treated as valid.
  static constexpr uint32_t kDefaultStackReserve = 64 * 1024;

  /// Bounds for `program`: its loaded segment extents plus the stack region
  /// [stack_top - stack_reserve, stack_top).
  static MemoryMap for_program(const core::Program& program,
                               uint32_t stack_top,
                               uint32_t stack_reserve = kDefaultStackReserve);

  void add_region(core::MemRegion region) { regions_.push_back(region); }

  const std::vector<core::MemRegion>& regions() const { return regions_; }

  /// True when [addr, addr + bytes) lies entirely inside some region.
  bool contains(uint32_t addr, unsigned bytes) const;

  /// Width-1 condition "the `bytes`-byte access at `addr` escapes every
  /// region" over a 32-bit address expression. Wrap-around accesses
  /// (addr + bytes overflowing 2^32) count as out of bounds.
  smt::ExprRef out_of_bounds(smt::Context& ctx, smt::ExprRef addr,
                             unsigned bytes) const;

 private:
  std::vector<core::MemRegion> regions_;
};

}  // namespace binsym::oracles
