// OracleManager: the bridge between the executor's raw ExecObserver events
// and the typed Oracle detectors.
//
// One manager per engine worker (it holds per-context ExprRefs and per-run
// state, both of which are worker-confined). Responsibilities:
//
//   * event routing — forwards memory/arith/assert/reach events to every
//     enabled oracle, and classifies WritePC events into calls, returns
//     and computed jumps using the current instruction;
//   * shadow call stack — pushes the link value at every `jal ra` /
//     `jalr ra` and exposes its depth as the findings' call_depth (the
//     third component of the dedup key); the top entry is the expected
//     return address the stack-smash oracle checks;
//   * per-run dedup — identical detections from one run (loops!) collapse
//     before they reach the trace; the global cross-path dedup lives in
//     core::FindingLog;
//   * snapshot support — capture_state()/resume_run() checkpoint the
//     shadow stack and dedup sets so snapshot-resumed runs raise
//     bit-identical detections to full replays.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/observer.hpp"
#include "core/path.hpp"
#include "oracles/memory_map.hpp"
#include "oracles/oracle.hpp"

namespace binsym::oracles {

class OracleManager final : public core::ExecObserver {
 public:
  OracleManager(smt::Context& ctx, MemoryMap map)
      : ctx_(ctx), map_(std::move(map)) {}

  /// Enable one detector. Adding the same kind twice raises duplicate
  /// events; don't.
  void add(std::unique_ptr<Oracle> oracle);

  /// Build a manager with the detectors named in `spec`: "all", or a
  /// comma-separated list of oracle_kind_name() spellings. Returns null
  /// and sets `*error` for an unknown name or an empty list.
  static std::unique_ptr<OracleManager> make(smt::Context& ctx, MemoryMap map,
                                             const std::string& spec,
                                             std::string* error);

  /// Parse an --oracles spec into kinds (helper for make(), exposed so
  /// CLIs can validate before building workers).
  static bool parse_spec(const std::string& spec,
                         std::vector<core::OracleKind>* kinds,
                         std::string* error);

  // -- Context the detectors read. -------------------------------------------

  smt::Context& context() { return ctx_; }
  const MemoryMap& map() const { return map_; }
  /// pc of the instruction currently executing (the event site).
  uint32_t pc() const { return pc_; }
  /// Opcode id of the instruction currently executing.
  isa::OpcodeId instruction() const { return id_; }
  /// Shadow-call-stack depth at the event.
  uint32_t call_depth() const {
    return static_cast<uint32_t>(run_.shadow.size());
  }

  // -- Detection sinks (called by oracles). ----------------------------------

  /// Record a concretely-observed violation at the current pc/call depth.
  void hit(core::OracleKind kind, smt::ExprRef expr, std::string detail);

  /// Record a feasibility condition for the engine to solve. Candidates
  /// with an identical (kind, pc, depth, cond) were already recorded this
  /// run are dropped — the earliest event point has the weakest (most
  /// feasible) constraint prefix.
  void candidate(core::OracleKind kind, smt::ExprRef cond, smt::ExprRef expr,
                 std::string detail);

  // -- core::ExecObserver. ---------------------------------------------------

  void begin_run(core::PathTrace& trace) override;
  void resume_run(core::PathTrace& trace,
                  const std::shared_ptr<const void>& state) override;
  std::shared_ptr<const void> capture_state() const override;
  void on_instruction(uint32_t pc, const isa::Decoded& decoded) override;
  void on_load(const interp::SymValue& addr, unsigned bytes) override;
  void on_store(const interp::SymValue& addr, unsigned bytes,
                const interp::SymValue& value) override;
  void on_jump(const interp::SymValue& target) override;
  void on_branch(const interp::SymValue& cond, bool taken) override;
  void on_binop(dsl::ExprOp op, const interp::SymValue& a,
                const interp::SymValue& b) override;
  void on_assert(const interp::SymValue& cond, uint32_t id) override;
  void on_reach(uint32_t id) override;

 private:
  /// Everything per-run, in checkpointable form.
  struct RunState {
    std::vector<uint32_t> shadow;            // expected return addresses
    std::unordered_set<uint64_t> seen_hits;  // finding_key()
    // (finding_key(), cond node id) — an exact pair, not a packed hash:
    // dropping a candidate to a key collision would be a silent miss.
    std::set<std::pair<uint64_t, uint32_t>> seen_cands;
  };

  smt::Context& ctx_;
  MemoryMap map_;
  std::vector<std::unique_ptr<Oracle>> oracles_;
  core::PathTrace* trace_ = nullptr;
  RunState run_;
  // Current instruction (set by on_instruction; classifies jump events).
  uint32_t pc_ = 0;
  unsigned size_ = 4;
  isa::OpcodeId id_ = isa::kNumBuiltinOps;
  uint32_t rd_ = 0, rs1_ = 0;
  int32_t imm_ = 0;
};

}  // namespace binsym::oracles
