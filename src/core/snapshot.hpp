// Snapshot/fork execution: copy-on-write state checkpoints.
//
// Every scheduled branch flip used to re-execute its trace from the program
// entry point. A Snapshot captures the complete concolic machine state at
// an instruction boundary — register file, CSRs, the copy-on-write memory
// fork, and the partial PathTrace up to that point — so exploration can
// resume a flip from the deepest reusable checkpoint instead. Capturing is
// O(dirty pages + symbolic bytes + trace prefix); the guest image is never
// copied (memory.hpp).
//
// Resuming under a *different* input seed is sound because everything
// seed-dependent in the state is re-derivable: symbolic values carry their
// defining expression, so restore() re-evaluates every symbolic shadow
// (registers, CSRs, memory bytes) under the new seed, while pure-concrete
// values are seed-independent along a shared branch prefix (the flip query
// pins the prefix branches and every address-concretization assumption made
// up to the flip point). The resumed run is therefore bit-identical to a
// full replay under the same seed — the engine's determinism tests pin this.
//
// Thread-safety: snapshots are strictly per-worker. They hold ExprRefs,
// which are only meaningful in the owning worker's smt::Context, so a
// FlipJob that migrates to another worker must fall back to full replay
// (the job stores the owning worker's index next to the handle). Jobs hold
// weak handles; the per-worker SnapshotPool holds the owning references,
// so evicting from the pool is what actually frees checkpoint memory —
// an evicted handle simply expires and the flip replays from the entry.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/memory.hpp"
#include "core/path.hpp"
#include "interp/value.hpp"

namespace binsym::support {
class FaultPlan;
}

namespace binsym::core {

/// One checkpoint: machine state at an instruction boundary plus the trace
/// prefix that led there. Immutable once captured (shared between the pool
/// and any number of pending FlipJobs).
struct Snapshot {
  // -- Machine state (SymMachine::capture / SymMachine::restore). -----------
  std::array<interp::SymValue, 32> regs;
  std::unordered_map<uint32_t, interp::SymValue> csrs;
  ConcreteMemory memory;  // copy-on-write fork of the concrete store
  std::unordered_map<uint32_t, smt::ExprRef> symbolic;  // symbolic shadow
  uint32_t pc = 0;
  uint32_t next_pc = 0;
  unsigned input_counter = 0;

  // -- Trace prefix at the capture point. -----------------------------------
  std::vector<BranchRecord> branches;
  std::vector<Assumption> assumptions;
  std::vector<Failure> failures;
  std::vector<uint32_t> input_vars;
  std::string output;
  std::vector<OracleHit> oracle_hits;            // oracle detections in the
  std::vector<OracleCandidate> oracle_candidates;  // prefix (finding.hpp)
  uint64_t steps = 0;

  /// Executor-specific extra state (e.g. the VP's quantum keeper). Captured
  /// and interpreted only by the executor type that produced the snapshot.
  std::shared_ptr<const void> extra;

  /// Per-run state of the attached ExecObserver (shadow call stack, per-run
  /// dedup set) at the capture point; null when none was attached. Restored
  /// via ExecObserver::resume_run so resumed runs raise bit-identical
  /// detections to full replays.
  std::shared_ptr<const void> observer_state;

  /// Branch depth of the checkpoint: number of branch records in the
  /// prefix. A snapshot can serve any flip of branch index >= depth().
  size_t depth() const { return branches.size(); }
};

/// Capture request handed to a snapshot-capable Executor::run. The executor
/// appends checkpoints (in strictly increasing depth order) to `sink`
/// whenever the trace has grown by at least `interval` branch records since
/// the previous capture.
struct SnapshotPlan {
  std::vector<std::shared_ptr<const Snapshot>>* sink = nullptr;
  uint64_t interval = 4;  // min branch records between captures (>= 1)
  /// Fault injection (support/fault.hpp): at each capture site the
  /// executor fires kAlloc (throws std::bad_alloc, as a real allocation
  /// failure would) then kSnapshot (the capture is silently skipped — the
  /// affected flips degrade to replay). Null disables both.
  support::FaultPlan* faults = nullptr;
};

/// The deepest snapshot with depth() <= `depth` among `captures`, which
/// must be sorted by ascending depth (the order executors emit them in);
/// null when none qualifies.
std::shared_ptr<const Snapshot> deepest_at_most(
    std::span<const std::shared_ptr<const Snapshot>> captures, size_t depth);

/// Bounded per-worker keep-alive store for snapshots referenced by pending
/// FlipJobs. Eviction is scored LRU: the victim is the entry with the
/// lowest depth×reuse score ((depth+1) * (times re-inserted + 1)), oldest
/// first on ties — shallow, rarely shared checkpoints go first, since
/// replaying them is cheap and they back the fewest jobs.
///
/// Not thread-safe; each engine worker owns one.
class SnapshotPool {
 public:
  /// `budget` is the maximum number of live snapshots (>= 1 to be useful;
  /// 0 keeps nothing, turning every handle into an immediate miss).
  explicit SnapshotPool(size_t budget) : budget_(budget) {}

  /// Keep `snap` alive. Re-inserting a pooled snapshot bumps its reuse
  /// score instead of duplicating it; inserting past the budget evicts.
  void insert(const std::shared_ptr<const Snapshot>& snap);

  size_t size() const { return entries_.size(); }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::shared_ptr<const Snapshot> snap;
    uint64_t reuses = 0;    // times insert() saw this snapshot again
    uint64_t last_use = 0;  // LRU tie-break (monotonic insert tick)
  };

  size_t budget_;
  uint64_t tick_ = 0;
  uint64_t evictions_ = 0;
  std::vector<Entry> entries_;  // budget-bounded; linear scans are fine
};

}  // namespace binsym::core
