#include "core/frontier.hpp"

#include <algorithm>

namespace binsym::core {

void Frontier::push(FlipJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.seq = next_seq_++;
    strategy_->push(std::move(job));
    peak_ = std::max(peak_, strategy_->size());
  }
  work_available_.notify_one();
}

bool Frontier::pop(FlipJob* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (stopped_.load(std::memory_order_relaxed)) return false;
    if (!strategy_->empty()) {
      *out = strategy_->pop();
      ++active_;
      return true;
    }
    if (active_ == 0) return false;  // drained: nobody can produce more work
    work_available_.wait(lock);
  }
}

void Frontier::job_done() {
  bool drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained = --active_ == 0 && strategy_->empty();
  }
  // Waking everyone lets blocked workers observe termination; when new work
  // was pushed instead, push() already notified.
  if (drained) work_available_.notify_all();
}

void Frontier::observe(const PathTrace& trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  strategy_->observe(trace);
}

void Frontier::stop() {
  {
    // The mutex is still taken so the store cannot slip between a blocked
    // worker's predicate check and its wait().
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_.store(true, std::memory_order_release);
  }
  work_available_.notify_all();
}

size_t Frontier::peak_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

}  // namespace binsym::core
