#include "core/snapshot.hpp"

#include <algorithm>

namespace binsym::core {

std::shared_ptr<const Snapshot> deepest_at_most(
    std::span<const std::shared_ptr<const Snapshot>> captures, size_t depth) {
  auto it = std::upper_bound(
      captures.begin(), captures.end(), depth,
      [](size_t d, const std::shared_ptr<const Snapshot>& s) {
        return d < s->depth();
      });
  if (it == captures.begin()) return nullptr;
  return *std::prev(it);
}

void SnapshotPool::insert(const std::shared_ptr<const Snapshot>& snap) {
  if (budget_ == 0 || !snap) return;
  for (Entry& entry : entries_) {
    if (entry.snap == snap) {
      ++entry.reuses;
      entry.last_use = ++tick_;
      return;
    }
  }
  if (entries_.size() == budget_) {
    auto score = [](const Entry& e) {
      return (static_cast<uint64_t>(e.snap->depth()) + 1) * (e.reuses + 1);
    };
    auto victim = std::min_element(
        entries_.begin(), entries_.end(), [&](const Entry& a, const Entry& b) {
          uint64_t sa = score(a), sb = score(b);
          return sa != sb ? sa < sb : a.last_use < b.last_use;
        });
    *victim = std::move(entries_.back());
    entries_.pop_back();
    ++evictions_;
  }
  entries_.push_back(Entry{snap, 0, ++tick_});
}

}  // namespace binsym::core
