// The concolic RISC-V machine: symbolic register file, CSR file and memory,
// plus the primitive implementations the modular interpreter needs.
//
// This is BinSym's "symbolic interpreter" state (paper Sect. III-B): the
// register file and memory are the generic LibRISCV components instantiated
// over symbolic values. The same object also serves the baseline IR
// executors, which keeps the engine comparison about *translation*, not
// state handling.
//
// Thread-safety: a SymMachine is confined to one engine worker, like the
// smt::Context it builds expressions in and the PathTrace it fills;
// nothing here locks. The attached ExecObserver (observer.hpp) shares
// that confinement.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "core/memory.hpp"
#include "core/observer.hpp"
#include "core/path.hpp"
#include "core/syscalls.hpp"
#include "dsl/ast.hpp"
#include "interp/uop.hpp"
#include "interp/value.hpp"
#include "smt/eval.hpp"

namespace binsym::core {

struct Snapshot;

class SymMachine {
 public:
  using Value = interp::SymValue;

  SymMachine(smt::Context& ctx) : ctx_(ctx), memory_(ctx) {}

  /// Start a new path: restore the memory image, zero the registers, seed
  /// the stack pointer, and attach the run's trace + input seed.
  void reset(const ConcreteMemory& image, uint32_t entry, uint32_t stack_top,
             const smt::Assignment& seed, PathTrace& trace);

  /// Capture the complete machine state plus the attached trace's prefix
  /// into `out` (snapshot.hpp). Must be called at an instruction boundary.
  /// O(dirty pages + symbolic bytes + trace prefix); the memory pages
  /// themselves are shared copy-on-write, not copied.
  void capture(Snapshot* out) const;

  /// Start a new path from `snap` instead of the entry point: restore the
  /// captured state, copy the trace prefix into `trace`, attach the run's
  /// seed, and re-evaluate every symbolic concrete shadow (registers, CSRs,
  /// memory bytes) under the new seed. Sound whenever `seed` satisfies the
  /// snapshot's branch-prefix constraints and assumptions — which the
  /// engine's flip queries guarantee by construction.
  void restore(const Snapshot& snap, const smt::Assignment& seed,
               PathTrace& trace);

  // -- Machine stepping support (used by executors). ---------------------------

  /// Address of the instruction currently executing (always concrete in a
  /// concolic engine; see write_pc).
  uint32_t pc() const { return pc_; }
  /// Set the default fall-through successor (pc + size); the executor
  /// calls this before running the semantics, and WritePC overrides it.
  void set_next_pc(uint32_t next_pc) { next_pc_ = next_pc; }
  /// Commit next-pc as the new pc (end of one fetch/execute step).
  void advance() { pc_ = next_pc_; }
  /// False once any stop() reason is recorded on the attached trace.
  bool running() const { return trace_->exit == ExitReason::kRunning; }
  /// End the current run, recording why (and an optional payload such as
  /// the exit code or the offending syscall number) on the trace.
  void stop(ExitReason reason, uint32_t code = 0) {
    trace_->exit = reason;
    trace_->exit_code = code;
  }
  /// Concrete 32-bit instruction fetch at pc (fetch never consults the
  /// symbolic shadow — code is not self-modifying under symbolic data).
  uint32_t fetch_word() const { return static_cast<uint32_t>(memory_.read_concrete(pc_, 4)); }
  /// Whether pc lies on a mapped page (guards fetch_word; an unmapped pc
  /// ends the run with ExitReason::kBadFetch).
  bool fetch_mapped() const { return memory_.mapped(pc_); }
  /// The run artifacts being filled; valid between reset()/restore() and
  /// the end of the run.
  PathTrace& trace() { return *trace_; }
  ConcolicMemory& memory() { return memory_; }
  const ConcolicMemory& memory() const { return memory_; }
  /// The expression context every symbolic value of this machine lives in.
  smt::Context& context() { return ctx_; }

  /// Attach a bug-finding observer (src/oracles), or null to detach. The
  /// observer must outlive every subsequent run; it receives begin_run /
  /// resume_run from reset()/restore() and the per-event hooks below.
  /// Null (the default) keeps the hot paths free of observer work.
  void set_observer(ExecObserver* observer) { observer_ = observer; }

  /// Total global symbolic input bytes created so far (stable naming).
  unsigned input_counter() const { return input_counter_; }

  /// Attach a guest-store watch (the executor's BlockCache), or null. Every
  /// byte-range the guest writes — spec-path stores, fast-path stores,
  /// sym_input bindings — is reported, which is what keeps cached micro-op
  /// blocks sound against self-modifying code.
  void set_store_watch(interp::GuestStoreWatch* watch) { store_watch_ = watch; }

  // -- Micro-op fast-path support (executor.cpp's concolic policy). -------------

  /// Concrete view of register `index` if it holds no symbolic expression;
  /// returns false (a fast-path guard bail) otherwise.
  bool reg_concrete(unsigned index, uint32_t* out) const {
    if (index == 0) {
      *out = 0;
      return true;
    }
    const Value& v = regs_[index];
    if (v.symbolic()) return false;
    *out = static_cast<uint32_t>(v.conc);
    return true;
  }

  /// Fast-path register write: a plain 32-bit concrete value.
  void set_reg_concrete(unsigned index, uint32_t value) {
    if (index != 0) regs_[index] = interp::sval(value, 32);
  }

  // -- Primitives (interp::Evaluator interface). --------------------------------

  Value constant(uint64_t value, unsigned width) {
    return interp::sval(value, width);
  }

  Value read_register(unsigned index) {
    return index == 0 ? interp::sval(0, 32) : regs_[index];
  }

  void write_register(unsigned index, const Value& value) {
    if (index != 0) regs_[index] = value;
  }

  Value read_csr(uint32_t csr) {
    auto it = csrs_.find(csr);
    return it == csrs_.end() ? interp::sval(0, 32) : it->second;
  }

  void write_csr(uint32_t csr, const Value& value) { csrs_[csr] = value; }

  Value pc_value() { return interp::sval(pc_, 32); }

  /// WritePC: control flow must be concrete in a concolic engine — a
  /// symbolic target is concretized with an assumption, the standard
  /// address-concretization strategy (paper Sect. III-B). The observer sees
  /// the unconcretized target (bad-jump / stack-smash oracles).
  void write_pc(const Value& target) {
    if (observer_) observer_->on_jump(target);
    next_pc_ = static_cast<uint32_t>(concretize(target));
  }

  Value load(unsigned bytes, const Value& addr) {
    if (observer_) observer_->on_load(addr, bytes);
    uint32_t a = static_cast<uint32_t>(concretize(addr));
    return memory_.load(a, bytes);
  }

  void store(unsigned bytes, const Value& addr, const Value& value) {
    if (observer_) observer_->on_store(addr, bytes, value);
    uint32_t a = static_cast<uint32_t>(concretize(addr));
    memory_.store(a, bytes, value);
    if (store_watch_) store_watch_->on_guest_store(a, bytes);
  }

  Value apply_un(dsl::ExprOp op, const Value& a, unsigned aux0, unsigned aux1) {
    return interp::s_un(ctx_, op, a, aux0, aux1);
  }

  Value apply_bin(dsl::ExprOp op, const Value& a, const Value& b) {
    if (observer_) notify_binop(op, a, b);
    return interp::s_bin(ctx_, op, a, b);
  }

  Value apply_ite(const Value& cond, const Value& a, const Value& b) {
    return interp::s_ite(ctx_, cond, a, b);
  }

  /// runIfElse: concolic branch — follow the concrete shadow and record the
  /// symbolic condition for the DFS driver to flip later.
  bool choose(const Value& cond) {
    bool taken = cond.conc != 0;
    if (observer_) observer_->on_branch(cond, taken);
    if (cond.symbolic())
      trace_->branches.push_back(BranchRecord{cond.sym, taken, pc_});
    return taken;
  }

  void ecall();
  void ebreak() { stop(ExitReason::kEbreak); }
  void fence() {}

  /// Mint `bytes` fresh symbolic input bytes (globally numbered, concrete
  /// shadows from the seed) and return them as one little-endian value.
  /// Backs both the sym_input syscall and MMIO input peripherals.
  Value fresh_input(unsigned bytes);

 protected:
  /// Force a concrete view of `value`; symbolic values contribute an
  /// `expr == concrete` assumption so later flips stay consistent.
  uint64_t concretize(const Value& value);

  /// The attached observer, for derived machines that shadow the data-path
  /// primitives (VpMachine re-fires on_load/on_store around the bus).
  ExecObserver* observer() const { return observer_; }

 private:
  /// Forward `op` to the observer iff it is one of the watched arithmetic
  /// operators (overflow / division-by-zero oracles).
  void notify_binop(dsl::ExprOp op, const Value& a, const Value& b);

  smt::Context& ctx_;
  std::array<Value, 32> regs_{};
  std::unordered_map<uint32_t, Value> csrs_;
  ConcolicMemory memory_;
  uint32_t pc_ = 0;
  uint32_t next_pc_ = 0;
  unsigned input_counter_ = 0;
  const smt::Assignment* seed_ = nullptr;
  PathTrace* trace_ = nullptr;
  ExecObserver* observer_ = nullptr;
  interp::GuestStoreWatch* store_watch_ = nullptr;
};

}  // namespace binsym::core
