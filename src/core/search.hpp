// Path-selection strategies for the DSE engine.
//
// The paper's BinSym hard-codes depth-first selection; here selection is a
// pluggable SearchStrategy consuming FlipJobs — pending branch-flip work
// items produced whenever a feasible flip is found. Jobs carry their seed in
// a *portable* form (variable name + width + value, not context node ids) so
// a job produced by one worker's smt::Context can be consumed by another
// worker's: input variables are identified by name ("in_<N>"), which is
// stable across contexts, while node ids are not.
//
// Strategies are intentionally lock-free: the Frontier (frontier.hpp) owns
// one strategy and serializes every call under its own mutex, so strategy
// implementations stay simple single-threaded containers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/path.hpp"
#include "smt/context.hpp"
#include "smt/eval.hpp"

namespace binsym::core {

/// Which SearchStrategy implementation to instantiate.
enum class SearchKind : uint8_t {
  kDepthFirst,      // the paper's selection: deepest pending flip first
  kBreadthFirst,    // shallowest first (worklist grows wide, finds short paths)
  kRandomPath,      // uniform over pending flips (seeded, reproducible)
  kCoverageGuided,  // fewest-visited flip pc first (novelty-seeking)
};

const char* search_kind_name(SearchKind kind);

/// Parse a --search flag value ("dfs", "bfs", "random", "coverage").
std::optional<SearchKind> parse_search_kind(std::string_view name);

/// All implemented kinds, in declaration order (ablation/test sweeps).
const std::vector<SearchKind>& all_search_kinds();

/// One seed variable in context-independent form.
struct SeedEntry {
  std::string name;
  unsigned width = 8;
  uint64_t value = 0;
};

struct Snapshot;

/// A pending branch-flip work item: execute the program under `seed` and
/// schedule flips only for branches with index >= `bound` (everything below
/// is pinned prefix, already explored elsewhere).
struct FlipJob {
  std::vector<SeedEntry> seed;
  size_t bound = 0;     // first flippable branch index on this run
  uint32_t flip_pc = 0; // pc of the branch whose flip produced this job
  uint64_t seq = 0;     // global insertion order, assigned by the Frontier
  uint32_t retries = 0; // times this job errored and was requeued (the
                        // engine drops it past EngineOptions::max_job_retries)

  /// Deepest reusable checkpoint for this flip (snapshot.hpp), weak so the
  /// owning worker's SnapshotPool controls lifetime: an evicted handle
  /// expires and the job falls back to full replay. Snapshots hold
  /// per-context ExprRefs, so only the worker whose index matches
  /// `snapshot_worker` may lock and use the handle; on any other worker the
  /// job replays from the entry point.
  std::weak_ptr<const Snapshot> snapshot;
  static constexpr uint32_t kNoSnapshot = ~0u;
  uint32_t snapshot_worker = kNoSnapshot;  // owning worker, kNoSnapshot = none
};

/// Convert an engine-side Assignment (context var ids) into portable form.
FlipJob make_flip_job(const smt::Context& ctx, const smt::Assignment& seed,
                      size_t bound, uint32_t flip_pc);

/// Rebind a portable job onto `ctx`, interning variables as needed.
smt::Assignment seed_from_job(smt::Context& ctx, const FlipJob& job);

/// Static CFG shape for coverage-guided scoring, produced by the analysis
/// layer (analysis::StaticAnalysis::make_hints). Core must not depend on
/// src/analysis, so this is a plain POD: block ids are dense indices,
/// `preds` is the reverse block adjacency (the direction the uncovered-
/// distance BFS walks), and `block_of_pc` maps every statically reached
/// instruction to its block. Immutable once built; shared across workers.
struct CfgHints {
  std::unordered_map<uint32_t, uint32_t> block_of_pc;
  std::vector<std::vector<uint32_t>> preds;

  size_t num_blocks() const { return preds.size(); }
};

/// Path-selection policy over pending FlipJobs. Not thread-safe by itself;
/// the Frontier serializes every call under its own mutex, so
/// implementations stay simple single-threaded containers.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  /// Short policy name for reports ("dfs", "bfs", ...).
  virtual const char* name() const = 0;
  /// Accept a pending flip (the Frontier has already stamped `job.seq`).
  virtual void push(FlipJob job) = 0;
  /// Remove and return the next job. Precondition: !empty().
  virtual FlipJob pop() = 0;
  /// True when no job is pending.
  virtual bool empty() const = 0;
  /// Number of pending jobs (worklist-footprint statistics).
  virtual size_t size() const = 0;
  /// Observe a finished path (coverage-guided priorities); default no-op.
  virtual void observe(const PathTrace& trace) { (void)trace; }
};

/// Instantiate a strategy. `rng_seed` only affects kRandomPath; `hints`
/// only affects kCoverageGuided (static distance-to-uncovered-block
/// scoring instead of visit counts; null keeps the classic behavior).
std::unique_ptr<SearchStrategy> make_search_strategy(
    SearchKind kind, uint64_t rng_seed = 0,
    std::shared_ptr<const CfgHints> hints = nullptr);

}  // namespace binsym::core
