// Execution observer: the hook surface the bug-finding oracles attach to.
//
// An ExecObserver sees every retired instruction, every data memory access
// (before address concretization, so the symbolic address expression is
// still inspectable), every indirect control transfer, the arithmetic
// operations the detectors care about, and the user assert/reach syscalls.
// The concolic machine and the executors invoke the hooks; src/oracles
// implements them. Keeping the interface in core avoids a layering
// inversion: core never links against the oracle implementations.
//
// Lifecycle: begin_run() opens every fresh run (SymMachine::reset);
// resume_run() opens a run restored from a Snapshot, handing back the state
// object capture_state() produced at the checkpoint — observers carry
// per-run state (e.g. a shadow call stack), and snapshot/fork execution
// must restore it for resumed runs to stay bit-identical to full replays.
//
// Thread-safety: an observer instance is confined to one engine worker
// (like the executor and smt::Context it observes); nothing here locks.
#pragma once

#include <cstdint>
#include <memory>

#include "dsl/ast.hpp"
#include "interp/value.hpp"
#include "isa/decoder.hpp"

namespace binsym::core {

struct PathTrace;

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  // -- Run lifecycle. --------------------------------------------------------

  /// A fresh run starts from the entry point; reset all per-run state.
  /// `trace` is where hits/candidates for this run are recorded and stays
  /// valid until the run ends.
  virtual void begin_run(PathTrace& trace) = 0;

  /// A run resumes from a snapshot whose capture_state() result is `state`
  /// (null if the checkpoint was captured without an observer attached —
  /// treat as a fresh run's state).
  virtual void resume_run(PathTrace& trace,
                          const std::shared_ptr<const void>& state) = 0;

  /// Snapshot the observer's per-run state (called at instruction
  /// boundaries by SymMachine::capture). The result is opaque to the
  /// engine and only ever handed back to the same observer type.
  virtual std::shared_ptr<const void> capture_state() const = 0;

  // -- Events. ---------------------------------------------------------------

  /// One instruction is about to execute (after decode, before semantics).
  virtual void on_instruction(uint32_t pc, const isa::Decoded& decoded) {
    (void)pc, (void)decoded;
  }

  /// Data load/store of `bytes` bytes. Fires before the address is
  /// concretized: `addr.sym` (when set) is the unpinned address expression,
  /// `addr.conc` the concrete shadow the access will use.
  virtual void on_load(const interp::SymValue& addr, unsigned bytes) {
    (void)addr, (void)bytes;
  }
  virtual void on_store(const interp::SymValue& addr, unsigned bytes,
                        const interp::SymValue& value) {
    (void)addr, (void)bytes, (void)value;
  }

  /// WritePC with a non-fallthrough target (jal/jalr/taken branches),
  /// before the target is concretized.
  virtual void on_jump(const interp::SymValue& target) { (void)target; }

  /// A runIfElse decision (before it is recorded on the trace). Several
  /// instruction semantics guard undefined-ish cases with an explicit
  /// fork — division by zero most prominently — so "the guard of the
  /// current div instruction was taken" *is* the division-by-zero event.
  virtual void on_branch(const interp::SymValue& cond, bool taken) {
    (void)cond, (void)taken;
  }

  /// Arithmetic the detectors watch: add/sub/mul (overflow) and
  /// udiv/urem/sdiv/srem (division by zero). Other operators never reach
  /// the observer.
  virtual void on_binop(dsl::ExprOp op, const interp::SymValue& a,
                        const interp::SymValue& b) {
    (void)op, (void)a, (void)b;
  }

  /// User assert(cond, id) syscall. `cond` is deliberately *not*
  /// concretized — a symbolic condition stays flippable by the solver.
  virtual void on_assert(const interp::SymValue& cond, uint32_t id) {
    (void)cond, (void)id;
  }

  /// User reach(id) syscall marker was executed.
  virtual void on_reach(uint32_t id) { (void)id; }
};

}  // namespace binsym::core
