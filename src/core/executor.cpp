#include "core/executor.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

#include "core/snapshot.hpp"
#include "interp/uop_run.hpp"
#include "support/fault.hpp"
#include "support/format.hpp"

namespace binsym::core {

namespace {

/// run_block policy over SymMachine: guards fail on any symbolic consumed
/// operand (register or shadowed memory page), so the fast path only ever
/// runs through fully-concrete dataflow. That is why it adds no branch
/// records and no assumptions — exactly what the spec path computes for the
/// same concrete values.
struct ConcolicPolicy {
  SymMachine& m;
  interp::BlockCache& cache;

  bool reg(unsigned index, uint32_t* out) { return m.reg_concrete(index, out); }
  void set_reg(unsigned index, uint32_t value) {
    m.set_reg_concrete(index, value);
  }
  bool load(uint32_t addr, unsigned bytes, uint32_t* out) {
    const ConcolicMemory& mem = m.memory();
    if (!mem.range_concrete(addr, bytes)) return false;
    *out = static_cast<uint32_t>(mem.read_concrete(addr, bytes));
    return true;
  }
  void store(uint32_t addr, unsigned bytes, uint32_t value, bool* exit_block) {
    m.memory().store_concrete(addr, bytes, value);
    if (cache.on_guest_store(addr, bytes)) *exit_block = true;
  }
};

}  // namespace

namespace {

/// Loader hardening, shared by both raw loaders: a payload whose end would
/// wrap the 32-bit address space would alias low memory (and record a
/// region with hi < lo, which `contains` can never match).
void check_load_extent(const char* loader, uint32_t addr, size_t size) {
  if (static_cast<uint64_t>(addr) + size > 0x100000000ull)
    throw std::runtime_error(strprintf(
        "%s: load of %llu byte(s) at 0x%x wraps the 32-bit address space",
        loader, static_cast<unsigned long long>(size), addr));
}

}  // namespace

void Program::load_words(uint32_t addr, const std::vector<uint32_t>& words,
                         uint32_t flags) {
  check_load_extent("load_words", addr, 4 * words.size());
  for (size_t i = 0; i < words.size(); ++i)
    image.write(addr + static_cast<uint32_t>(4 * i), 4, words[i]);
  if (!words.empty())
    regions.push_back(
        MemRegion{addr, addr + static_cast<uint32_t>(4 * words.size()), flags});
}

void Program::load_bytes(uint32_t addr, const std::vector<uint8_t>& bytes,
                         uint32_t flags) {
  check_load_extent("load_bytes", addr, bytes.size());
  image.load_image(addr, bytes);
  if (!bytes.empty())
    regions.push_back(
        MemRegion{addr, addr + static_cast<uint32_t>(bytes.size()), flags});
}

BinSymExecutor::BinSymExecutor(smt::Context& ctx, const isa::Decoder& decoder,
                               const spec::Registry& registry,
                               const Program& program, MachineConfig config)
    : ctx_(ctx),
      decoder_(decoder),
      registry_(registry),
      program_(program),
      config_(config),
      machine_(ctx),
      cache_(config.uop_cache_blocks) {
  if (config_.uop_fastpath) machine_.set_store_watch(&cache_);
}

void BinSymExecutor::run(const smt::Assignment& seed, PathTrace& trace) {
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);
  loop(nullptr, 0);
}

void BinSymExecutor::run_with_snapshots(const smt::Assignment& seed,
                                        PathTrace& trace,
                                        const SnapshotPlan& plan) {
  if (!plan.sink) return run(seed, trace);
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);
  loop(&plan, std::max<uint64_t>(1, plan.interval));
}

bool BinSymExecutor::resume(const Snapshot& snap, const smt::Assignment& seed,
                            PathTrace& trace, const SnapshotPlan& plan) {
  trace.clear();
  machine_.restore(snap, seed, trace);
  if (plan.sink) {
    loop(&plan, snap.depth() + std::max<uint64_t>(1, plan.interval));
  } else {
    loop(nullptr, 0);
  }
  return true;
}

uint64_t BinSymExecutor::pages_copied() const {
  return machine_.memory().concrete().pages_copied();
}

const interp::BlockCache::Block* BinSymExecutor::lookup_or_compile(
    uint32_t pc) {
  if (cache_.page_poisoned(pc)) return nullptr;
  if (const interp::BlockCache::Block* block = cache_.lookup(pc)) return block;
  // Lowering fetch mirrors the slow loop: only the leader byte's page must
  // be mapped (reads zero-fill past it), and fetch never consults the
  // symbolic shadow (like fetch_word). Poisoned pages are refused for the
  // whole word so a block never covers a page that has been stored to.
  auto fetch = [this](uint32_t p, uint32_t* word) {
    if (!machine_.memory().mapped(p)) return false;
    if (cache_.page_poisoned(p) || cache_.page_poisoned(p + 3)) return false;
    *word = static_cast<uint32_t>(machine_.memory().read_concrete(p, 4));
    return true;
  };
  interp::Uop* buffer = cache_.begin_compile();
  uint32_t bytes = 0;
  unsigned count =
      lower_block(decoder_, registry_, fetch, pc, buffer,
                  interp::BlockCache::kMaxBlockUops, &bytes);
  return cache_.finish_compile(pc, count, bytes);
}

void BinSymExecutor::loop(const SnapshotPlan* plan, uint64_t next_capture) {
  PathTrace& trace = machine_.trace();
  // The fast path never fires the per-instruction hooks, so it must stay
  // off while any are attached. It is safe across capture points: a block
  // adds no branch records (symbolic conditions bail), so the capture
  // condition below cannot become true at an intra-block boundary.
  const bool fast = config_.uop_fastpath && !trace_hook_ && !observer_;
  ConcolicPolicy policy{machine_, cache_};
  while (machine_.running()) {
    if (plan && trace.branches.size() >= next_capture) {
      // Fault sites (SnapshotPlan::faults): an injected allocation failure
      // propagates like a real one; an injected capture fault just drops
      // this checkpoint (the affected flips replay from the entry point).
      if (plan->faults && plan->faults->fire(support::FaultSite::kAlloc))
        throw std::bad_alloc();
      if (!plan->faults ||
          !plan->faults->fire(support::FaultSite::kSnapshot)) {
        auto snap = std::make_shared<Snapshot>();
        machine_.capture(snap.get());
        plan->sink->push_back(std::move(snap));
      }
      next_capture = trace.branches.size() + plan->interval;
    }
    if (trace.steps >= config_.max_steps) {
      machine_.stop(ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.fetch_mapped()) {
      machine_.stop(ExitReason::kBadFetch);
      break;
    }
    if (fast) {
      const interp::BlockCache::Block* block =
          lookup_or_compile(machine_.pc());
      if (block && block->count) {
        interp::UopRun r = interp::run_block(
            block->uops, block->count, config_.max_steps - trace.steps,
            policy);
        trace.steps += r.steps;
        retired_ += r.steps;
        if (r.exit != interp::UopExit::kBail) {
          machine_.set_next_pc(r.next_pc);
          machine_.advance();
          continue;  // kStepLimit re-enters the budget check above
        }
        // Re-execute the bailing instruction on the spec path in this same
        // iteration (continuing would re-enter the block and bail forever).
        machine_.set_next_pc(r.bail_pc);
        machine_.advance();
        ++guard_bails_;
      }
    }
    uint32_t word = machine_.fetch_word();

    const isa::Decoded* decoded;
    if (auto it = decode_cache_.find(word); it != decode_cache_.end()) {
      decoded = &it->second;
    } else {
      auto result = decoder_.decode(word);
      if (!result) {
        machine_.stop(ExitReason::kIllegalInstr);
        break;
      }
      decoded = &decode_cache_.emplace(word, *result).first->second;
    }

    const dsl::Semantics* semantics = registry_.get(decoded->id());
    if (!semantics) {
      machine_.stop(ExitReason::kIllegalInstr);
      break;
    }

    if (trace_hook_) trace_hook_(machine_.pc(), *decoded);
    if (observer_) observer_->on_instruction(machine_.pc(), *decoded);
    machine_.set_next_pc(machine_.pc() + decoded->size);
    evaluator_.execute(*semantics, *decoded, machine_);
    machine_.advance();
    ++trace.steps;
    ++retired_;
  }
}

}  // namespace binsym::core
