#include "core/executor.hpp"

#include <algorithm>

#include "core/snapshot.hpp"

namespace binsym::core {

void Program::load_words(uint32_t addr, const std::vector<uint32_t>& words,
                         uint32_t flags) {
  for (size_t i = 0; i < words.size(); ++i)
    image.write(addr + static_cast<uint32_t>(4 * i), 4, words[i]);
  if (!words.empty())
    regions.push_back(
        MemRegion{addr, addr + static_cast<uint32_t>(4 * words.size()), flags});
}

void Program::load_bytes(uint32_t addr, const std::vector<uint8_t>& bytes,
                         uint32_t flags) {
  image.load_image(addr, bytes);
  if (!bytes.empty())
    regions.push_back(
        MemRegion{addr, addr + static_cast<uint32_t>(bytes.size()), flags});
}

BinSymExecutor::BinSymExecutor(smt::Context& ctx, const isa::Decoder& decoder,
                               const spec::Registry& registry,
                               const Program& program, MachineConfig config)
    : ctx_(ctx),
      decoder_(decoder),
      registry_(registry),
      program_(program),
      config_(config),
      machine_(ctx) {}

void BinSymExecutor::run(const smt::Assignment& seed, PathTrace& trace) {
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);
  loop(nullptr, 0);
}

void BinSymExecutor::run_with_snapshots(const smt::Assignment& seed,
                                        PathTrace& trace,
                                        const SnapshotPlan& plan) {
  if (!plan.sink) return run(seed, trace);
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);
  loop(&plan, std::max<uint64_t>(1, plan.interval));
}

bool BinSymExecutor::resume(const Snapshot& snap, const smt::Assignment& seed,
                            PathTrace& trace, const SnapshotPlan& plan) {
  trace.clear();
  machine_.restore(snap, seed, trace);
  if (plan.sink) {
    loop(&plan, snap.depth() + std::max<uint64_t>(1, plan.interval));
  } else {
    loop(nullptr, 0);
  }
  return true;
}

uint64_t BinSymExecutor::pages_copied() const {
  return machine_.memory().concrete().pages_copied();
}

void BinSymExecutor::loop(const SnapshotPlan* plan, uint64_t next_capture) {
  PathTrace& trace = machine_.trace();
  while (machine_.running()) {
    if (plan && trace.branches.size() >= next_capture) {
      auto snap = std::make_shared<Snapshot>();
      machine_.capture(snap.get());
      plan->sink->push_back(std::move(snap));
      next_capture = trace.branches.size() + plan->interval;
    }
    if (trace.steps >= config_.max_steps) {
      machine_.stop(ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.fetch_mapped()) {
      machine_.stop(ExitReason::kBadFetch);
      break;
    }
    uint32_t word = machine_.fetch_word();

    const isa::Decoded* decoded;
    if (auto it = decode_cache_.find(word); it != decode_cache_.end()) {
      decoded = &it->second;
    } else {
      auto result = decoder_.decode(word);
      if (!result) {
        machine_.stop(ExitReason::kIllegalInstr);
        break;
      }
      decoded = &decode_cache_.emplace(word, *result).first->second;
    }

    const dsl::Semantics* semantics = registry_.get(decoded->id());
    if (!semantics) {
      machine_.stop(ExitReason::kIllegalInstr);
      break;
    }

    if (trace_hook_) trace_hook_(machine_.pc(), *decoded);
    if (observer_) observer_->on_instruction(machine_.pc(), *decoded);
    machine_.set_next_pc(machine_.pc() + decoded->size);
    evaluator_.execute(*semantics, *decoded, machine_);
    machine_.advance();
    ++trace.steps;
    ++retired_;
  }
}

}  // namespace binsym::core
