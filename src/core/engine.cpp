#include "core/engine.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <fstream>
#include <mutex>
#include <new>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>

#include "core/snapshot.hpp"
#include "smt/slice.hpp"
#include "smt/smtlib.hpp"
#include "support/fault.hpp"
#include "support/format.hpp"
#include "support/resource.hpp"

namespace binsym::core {

namespace {

void dump_query(const std::string& dir, uint64_t index, smt::Context& ctx,
                const std::vector<smt::ExprRef>& query) {
  std::ofstream file(dir + strprintf("/query-%06llu.smt2",
                                     static_cast<unsigned long long>(index)));
  if (file) smt::print_query(file, ctx, query);
}

/// Bounded pool of recently returned sat models (per worker, so no locking
/// and no TSan traffic). Each entry keeps a CachingEvaluator whose memo
/// persists across flips: the recurring prefix constraints of one trace
/// evaluate once per pooled model, not once per flip.
class ModelPool {
 public:
  explicit ModelPool(size_t capacity) : capacity_(capacity) {}

  void add(const smt::Assignment& model) {
    if (capacity_ == 0) return;
    if (entries_.size() == capacity_) entries_.pop_front();
    entries_.emplace_back(model);
  }

  /// The most recently added model satisfying every constraint of `query`,
  /// or nullptr.
  const smt::Assignment* find_satisfying(
      std::span<const smt::ExprRef> query) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      bool satisfied = true;
      for (smt::ExprRef constraint : query) {
        if (it->eval.evaluate(constraint) != 1) {
          satisfied = false;
          break;
        }
      }
      if (satisfied) return &it->model;
    }
    return nullptr;
  }

 private:
  struct Entry {
    smt::Assignment model;
    smt::CachingEvaluator eval;
    explicit Entry(const smt::Assignment& m) : model(m), eval(model) {}
    // eval references this entry's own `model`; copying or moving would
    // rebind it to the source's. The deque below never relocates entries.
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;
  };

  size_t capacity_;
  std::deque<Entry> entries_;  // deque: entries never relocate, so the
                               // evaluator's reference into `model` is stable
};

/// Assemble the final Finding record for a detection on `trace`: dedup-key
/// fields, SMT-LIB rendering of the faulting expression, and the witness
/// input bytes (in sym_input creation order) under `witness`.
Finding finalize_finding(const smt::Context& ctx, OracleKind oracle,
                         uint32_t pc, uint32_t call_depth,
                         const std::string& detail, smt::ExprRef expr,
                         const PathTrace& trace,
                         const smt::Assignment& witness, uint64_t index) {
  Finding f;
  f.oracle = oracle;
  f.pc = pc;
  f.call_depth = call_depth;
  f.detail = detail;
  if (expr) f.expr_text = smt::to_smtlib(ctx, expr);
  f.path_index = index;
  f.input.reserve(trace.input_vars.size());
  for (uint32_t var : trace.input_vars)
    f.input.push_back(static_cast<uint8_t>(witness.get(var)));
  return f;
}

/// Balances a Solver::push() on every exit path of a trace's flip loop.
class SolverScope {
 public:
  explicit SolverScope(smt::Solver& solver) : solver_(solver) {
    solver_.push();
  }
  ~SolverScope() { solver_.pop(); }
  SolverScope(const SolverScope&) = delete;
  SolverScope& operator=(const SolverScope&) = delete;

 private:
  smt::Solver& solver_;
};

}  // namespace

void EngineStats::merge(const EngineStats& other) {
  paths += other.paths;
  flip_attempts += other.flip_attempts;
  feasible_flips += other.feasible_flips;
  infeasible_flips += other.infeasible_flips;
  divergences += other.divergences;
  failures += other.failures;
  max_branch_depth = std::max(max_branch_depth, other.max_branch_depth);
  instructions += other.instructions;
  presolve_hits += other.presolve_hits;
  presolve_misses += other.presolve_misses;
  store_hits += other.store_hits;
  store_misses += other.store_misses;
  store_entries += other.store_entries;
  sliced_constraints += other.sliced_constraints;
  query_nodes_total += other.query_nodes_total;
  query_nodes_max = std::max(query_nodes_max, other.query_nodes_max);
  snapshot_hits += other.snapshot_hits;
  snapshot_misses += other.snapshot_misses;
  snapshot_captures += other.snapshot_captures;
  snapshot_evictions += other.snapshot_evictions;
  snapshot_pages_copied += other.snapshot_pages_copied;
  findings += other.findings;
  finding_dupes += other.finding_dupes;
  candidates_checked += other.candidates_checked;
  candidates_feasible += other.candidates_feasible;
  static_proved += other.static_proved;
  static_unknown += other.static_unknown;
  static_mismatches += other.static_mismatches;
  uop_blocks_compiled += other.uop_blocks_compiled;
  uop_cache_hits += other.uop_cache_hits;
  uop_guard_bails += other.uop_guard_bails;
  uop_invalidations += other.uop_invalidations;
  pages_clean_skipped += other.pages_clean_skipped;
  exprs_interned += other.exprs_interned;
  intern_hits += other.intern_hits;
  arena_bytes += other.arena_bytes;
  queries_unknown += other.queries_unknown;
  flips_skipped_unknown += other.flips_skipped_unknown;
  worker_errors += other.worker_errors;
  jobs_requeued += other.jobs_requeued;
  jobs_poisoned += other.jobs_poisoned;
  if (other.incomplete) {
    incomplete = true;
    if (incomplete_reason.empty()) incomplete_reason = other.incomplete_reason;
  }
  solver.merge(other.solver);
}

std::vector<smt::ExprRef> flip_query(smt::Context& ctx, const PathTrace& trace,
                                     size_t flip_index) {
  std::vector<smt::ExprRef> constraints;
  constraints.reserve(flip_index + trace.assumptions.size() + 1);
  // Branch prefix, in as-taken form.
  for (size_t j = 0; j < flip_index; ++j) {
    const BranchRecord& branch = trace.branches[j];
    constraints.push_back(branch.taken ? branch.cond : ctx.not_(branch.cond));
  }
  // Assumptions made before the flip point (address concretizations).
  for (const Assumption& assumption : trace.assumptions) {
    if (assumption.branch_index <= flip_index)
      constraints.push_back(assumption.expr);
  }
  // The negated branch.
  const BranchRecord& flip = trace.branches[flip_index];
  constraints.push_back(flip.taken ? ctx.not_(flip.cond) : flip.cond);
  return constraints;
}

/// Exploration-wide state every worker touches. The frontier has its own
/// lock; the path/dump counters are atomics; callback invocation and stats
/// merging serialize on `sink_mutex`.
struct DseEngine::Shared {
  Frontier frontier;
  const EngineOptions& options;
  const PathCallback& on_path;
  FindingLog& findings;  // internally locked (finding.hpp)
  std::atomic<uint64_t> path_counter{0};
  std::atomic<uint64_t> dump_counter{0};
  std::mutex sink_mutex;
  EngineStats totals;
  // Resource budgets (worker_loop polls both between jobs).
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;

  Shared(std::unique_ptr<SearchStrategy> strategy, const EngineOptions& opts,
         const PathCallback& callback, FindingLog& log)
      : frontier(std::move(strategy)),
        options(opts),
        on_path(callback),
        findings(log) {}

  /// Flag the exploration as partial; the first reason wins.
  void mark_incomplete(std::string reason) {
    std::lock_guard<std::mutex> lock(sink_mutex);
    totals.incomplete = true;
    if (totals.incomplete_reason.empty())
      totals.incomplete_reason = std::move(reason);
  }
};

DseEngine::DseEngine(Executor& executor, std::unique_ptr<smt::Solver> solver,
                     EngineOptions options)
    : executor_(&executor), options_(options) {
  solver_ = wrap_solver(std::move(solver));
}

DseEngine::DseEngine(WorkerFactory factory, EngineOptions options)
    : factory_(std::move(factory)), options_(options) {
  if (!factory_)
    throw std::invalid_argument("DseEngine: null worker factory");
}

DseEngine::~DseEngine() = default;

smt::Solver& DseEngine::solver() {
  if (!solver_)
    throw std::logic_error(
        "DseEngine::solver(): workers own their solvers in the "
        "worker-factory form");
  return *solver_;
}

std::unique_ptr<smt::Solver> DseEngine::wrap_solver(
    std::unique_ptr<smt::Solver> raw) {
  if (options_.validate_models)
    raw = std::make_unique<smt::ValidatingSolver>(std::move(raw));
  // Fault injection wraps innermost-facing: injected kUnknown/throws reach
  // the worker loop exactly as a real backend failure would (through any
  // validating wrapper above).
  if (options_.fault_plan)
    raw = std::make_unique<smt::FaultInjectingSolver>(std::move(raw),
                                                      options_.fault_plan);
  // Query caching is managed by the worker loop itself (not a CachingSolver
  // wrapper): the engine keys the cache by the *effective* query — the
  // sliced one when slicing is on — and serves hits before the scoped
  // incremental path, which a solver-level wrapper cannot do for it.
  return raw;
}

void DseEngine::worker_loop(Executor& executor, smt::Solver& solver,
                            Shared& shared, unsigned worker_index) {
  smt::Context& ctx = executor.context();
  EngineStats local;
  PathTrace trace;
  const uint64_t instructions_before = executor.instructions_retired();
  const uint64_t pages_copied_before = executor.pages_copied();
  const interp::UopCounters uop_before = executor.uop_counters();
  const uint64_t nodes_before = ctx.num_nodes();
  const uint64_t intern_hits_before = ctx.intern_hits();

  // Per-worker solver-pipeline state (workers never share any of it; the
  // cache keys are structural content hashes, so sharing across workers
  // would be sound — it is kept per-worker for lock-free locality).
  const EngineOptions& opts = shared.options;
  const bool incremental = opts.incremental_solving;
  smt::QuerySlicer slicer;
  ModelPool pool(opts.presolve_models ? opts.presolve_pool : 0);
  std::optional<smt::QueryCache> cache;
  if (opts.cache_queries) cache.emplace(/*shards=*/1);
  smt::SolverStore* const store = opts.solver_store.get();
  uint64_t cache_hits_sat = 0, cache_hits_unsat = 0, cache_misses = 0;
  uint64_t store_hits_sat = 0, store_hits_unsat = 0;
  std::vector<smt::ExprRef> prefix;      // as-taken prefix ∧ assumptions
  std::vector<smt::ExprRef> full_query;  // scratch for the unsliced paths

  // Snapshot/fork state (also strictly per-worker: snapshots hold
  // per-context ExprRefs, so handles never cross workers — a migrated job
  // replays from the entry point instead).
  const bool use_snapshots = opts.snapshots && opts.snapshot_budget > 0 &&
                             executor.supports_snapshots();
  SnapshotPool snapshot_pool(use_snapshots ? opts.snapshot_budget : 0);
  std::vector<std::shared_ptr<const Snapshot>> captures;
  const SnapshotPlan plan{use_snapshots ? &captures : nullptr,
                          std::max(1u, opts.snapshot_interval),
                          opts.fault_plan.get()};

  // Per-job crash isolation: a job whose processing threw is recorded and
  // requeued (snapshot handle dropped — re-execution from the entry point
  // avoids whatever state the failure left behind) until its retry budget
  // is spent, then dropped as poisonous. Either way the run continues and
  // the merged result is marked incomplete.
  FlipJob job;
  auto on_job_error = [&](const char* what) {
    ++local.worker_errors;
    shared.mark_incomplete(std::string("worker error: ") + what);
    if (job.retries < opts.max_job_retries) {
      FlipJob retry;
      retry.seed = job.seed;
      retry.bound = job.bound;
      retry.flip_pc = job.flip_pc;
      retry.retries = job.retries + 1;
      ++local.jobs_requeued;
      shared.frontier.push(std::move(retry));
    } else {
      ++local.jobs_poisoned;
    }
  };

  while (shared.frontier.pop(&job)) {
    // Cooperative resource budgets, polled between jobs (the granularity
    // every stop already has: a path run is never interrupted mid-flight).
    if (shared.has_deadline &&
        std::chrono::steady_clock::now() >= shared.deadline) {
      shared.mark_incomplete("wall-clock deadline (--deadline-secs) reached");
      shared.frontier.stop();
      break;
    }
    if (opts.memory_budget_mb > 0) {
      const uint64_t rss = support::current_rss_bytes();
      if (rss > opts.memory_budget_mb * 1024 * 1024) {
        shared.mark_incomplete(strprintf(
            "memory budget exceeded: rss %llu MiB > --memory-budget-mb %llu",
            static_cast<unsigned long long>(rss >> 20),
            static_cast<unsigned long long>(opts.memory_budget_mb)));
        shared.frontier.stop();
        break;
      }
    }

    // Claim a slot in the path budget before running; the first claim past
    // the budget ends the whole exploration.
    const uint64_t index = shared.path_counter.fetch_add(1);
    if (index >= shared.options.max_paths) {
      shared.frontier.stop();
      break;
    }

    try {
    smt::Assignment seed = seed_from_job(ctx, job);

    // Resume from the job's checkpoint when it is still alive and owned by
    // this worker; otherwise replay from the entry point. Either way the
    // run captures fresh checkpoints for the flips it is about to schedule.
    captures.clear();
    bool resumed = false;
    if (use_snapshots) {
      std::shared_ptr<const Snapshot> snap;
      if (job.snapshot_worker == worker_index) snap = job.snapshot.lock();
      if (snap && executor.resume(*snap, seed, trace, plan)) {
        resumed = true;
        ++local.snapshot_hits;
        // The checkpoint this run grew from is valid for its children too
        // (they share the prefix up to its depth); make it the shallowest
        // capture so near-bound flips get a handle without re-capturing.
        captures.insert(captures.begin(), std::move(snap));
      } else if (job.snapshot_worker != FlipJob::kNoSnapshot) {
        ++local.snapshot_misses;
      }
    }
    if (!resumed) {
      if (use_snapshots) {
        executor.run_with_snapshots(seed, trace, plan);
      } else {
        executor.run(seed, trace);
      }
    }
    local.snapshot_captures += captures.size() - (resumed ? 1 : 0);
    ++local.paths;
    local.failures += trace.failures.size();
    local.max_branch_depth =
        std::max<uint64_t>(local.max_branch_depth, trace.branches.size());

    // A rerun must at least reach the branch it was scheduled to flip;
    // otherwise the program diverged from the predicted prefix.
    if (job.bound > 0 && trace.branches.size() < job.bound)
      ++local.divergences;

    if (shared.on_path) {
      std::lock_guard<std::mutex> lock(shared.sink_mutex);
      shared.on_path(PathResult{trace, seed, index});
    }
    shared.frontier.observe(trace);

    // Finalize this run's oracle detections (finding.hpp). Concrete hits
    // carry the run's seed as their witness; candidates ask the solver
    // whether the violation is feasible under the constraints that held at
    // the event point, and a sat model (merged over the seed) becomes the
    // witness. Runs before the flip loop opens its solver scope — the
    // stateless check() requires no scopes open.
    for (const OracleHit& hit : trace.oracle_hits) {
      Finding f = finalize_finding(ctx, hit.oracle, hit.pc, hit.call_depth,
                                   hit.detail, hit.expr, trace, seed, index);
      if (shared.findings.insert(std::move(f))) {
        ++local.findings;
      } else {
        ++local.finding_dupes;
      }
    }
    for (const OracleCandidate& c : trace.oracle_candidates) {
      // Already proven by some other path: skip the solver work. A racing
      // insert below still dedups correctly — this is only a fast path.
      if (shared.findings.contains(c.oracle, c.pc, c.call_depth)) continue;
      // Static pre-prover (EngineOptions::candidate_prune): a candidate
      // proven unsat never reaches the solver. In differential mode it
      // does anyway, and a sat answer is counted as a soundness mismatch
      // (the finding is still recorded, so behavior matches prune-off).
      bool statically_proved = false;
      if (shared.options.candidate_prune) {
        statically_proved = shared.options.candidate_prune(c);
        if (statically_proved) {
          ++local.static_proved;
          if (!shared.options.static_differential) continue;
        } else {
          ++local.static_unknown;
        }
      }
      ++local.candidates_checked;
      full_query.clear();
      for (size_t j = 0; j < c.branch_depth; ++j) {
        const BranchRecord& b = trace.branches[j];
        full_query.push_back(b.taken ? b.cond : ctx.not_(b.cond));
      }
      for (size_t j = 0; j < c.assumption_count; ++j)
        full_query.push_back(trace.assumptions[j].expr);
      full_query.push_back(c.cond);
      smt::Assignment model;
      const smt::CheckResult cres = solver.check(full_query, &model);
      if (cres == smt::CheckResult::kUnknown) ++local.queries_unknown;
      if (cres != smt::CheckResult::kSat) continue;
      if (statically_proved) ++local.static_mismatches;
      ++local.candidates_feasible;
      smt::Assignment witness = seed;
      for (const auto& [var, value] : model.values) witness.set(var, value);
      Finding f = finalize_finding(ctx, c.oracle, c.pc, c.call_depth,
                                   c.detail, c.expr, trace, witness, index);
      if (shared.findings.insert(std::move(f))) {
        ++local.findings;
      } else {
        ++local.finding_dupes;
      }
    }

    // Schedule flips. Under DFS, pushing shallow flips first leaves the
    // deepest flip on top of the stack: the paper's selection order.
    //
    // Every flip of this trace shares the prefix conjunction with its
    // successors (flip i+1's prefix is flip i's plus one constraint), so
    // the prefix is grown once, incrementally — appended to `prefix` for
    // slicing/pre-checking, and asserted into the solver's scope so each
    // check only ships the negated branch as an assumption.
    prefix.clear();
    size_t next_branch = 0;      // prefix branches appended so far
    size_t next_assumption = 0;  // trace assumptions appended so far
    std::optional<SolverScope> scope;
    if (incremental && job.bound < trace.branches.size())
      scope.emplace(solver);

    for (size_t i = job.bound; i < trace.branches.size(); ++i) {
      // Once the exploration is stopped (budget hit, worker error) the
      // remaining flips of this trace would only feed a dead frontier;
      // wind down instead of spending solver time on them.
      if (shared.frontier.stopped()) break;

      // Extend the shared prefix to flip point i: branches [0, i) in
      // as-taken form plus the assumptions made up to the flip point.
      while (next_branch < i) {
        const BranchRecord& b = trace.branches[next_branch++];
        smt::ExprRef constraint = b.taken ? b.cond : ctx.not_(b.cond);
        prefix.push_back(constraint);
        if (incremental) solver.assert_(constraint);
      }
      while (next_assumption < trace.assumptions.size() &&
             trace.assumptions[next_assumption].branch_index <= i) {
        smt::ExprRef constraint = trace.assumptions[next_assumption++].expr;
        prefix.push_back(constraint);
        if (incremental) solver.assert_(constraint);
      }
      const BranchRecord& flip = trace.branches[i];
      smt::ExprRef negated = flip.taken ? ctx.not_(flip.cond) : flip.cond;
      ++local.flip_attempts;

      // The effective query: the negated branch's variable-connected
      // component(s) of the prefix when slicing, the whole conjunction
      // otherwise. The unsliced vector is only materialized when something
      // consumes it (stateless check, cache key, pre-check, dump,
      // measurement); pure incremental solving needs no query vector.
      smt::QuerySlicer::Result sliced;
      const std::vector<smt::ExprRef>* query = nullptr;
      if (opts.slice_queries) {
        sliced = slicer.slice(prefix, negated);
        local.sliced_constraints += sliced.dropped;
        query = &sliced.query;
      } else if (!incremental || opts.presolve_models || opts.cache_queries ||
                 store || opts.measure_query_nodes ||
                 !shared.options.smtlib_dump_dir.empty()) {
        full_query.assign(prefix.begin(), prefix.end());
        full_query.push_back(negated);
        query = &full_query;
      }
      if (opts.measure_query_nodes && query) {
        uint64_t nodes = smt::node_count(std::span<const smt::ExprRef>(*query));
        local.query_nodes_total += nodes;
        local.query_nodes_max = std::max(local.query_nodes_max, nodes);
      }
      if (!shared.options.smtlib_dump_dir.empty() && query)
        dump_query(shared.options.smtlib_dump_dir,
                   shared.dump_counter.fetch_add(1) + 1, ctx, *query);

      // Answer the flip, cheapest source first:
      //   1. query cache, keyed by the effective (sliced) query — sibling
      //      flips over disjoint constraint groups collapse onto one key;
      //   2. the persistent store (same key — content hashes survive the
      //      process boundary), its name-keyed model translated back
      //      through this context's variable table — but only after the
      //      entry survives the collision checks below;
      //   3. model-reuse pre-check against recently returned models;
      //   4. the solver — through the scoped incremental API when enabled.
      smt::Assignment model;
      smt::CheckResult result = smt::CheckResult::kUnknown;
      smt::QueryCache::Key key;
      bool answered = false;
      bool from_solver = false;
      bool from_store = false;
      if (cache || store) key = smt::QueryCache::key_for(*query);
      // The query's distinct variables, for the store's collision
      // discriminator (lookup and insert both record it).
      std::vector<uint32_t> store_vars_storage;
      const std::vector<uint32_t>* store_vars = nullptr;
      if (store) {
        if (opts.slice_queries) {
          store_vars = &sliced.vars;
        } else {
          store_vars_storage = smt::collect_vars(*query);
          store_vars = &store_vars_storage;
        }
      }
      if (cache) {
        smt::QueryCache::Entry entry;
        if (cache->lookup(key, &entry)) {
          result = entry.result;
          if (result == smt::CheckResult::kSat) {
            model = std::move(entry.model);
            ++cache_hits_sat;
          } else {
            ++cache_hits_unsat;
          }
          answered = true;
        } else {
          ++cache_misses;
        }
      }
      if (!answered && store) {
        // The key is a content hash, and a persisted keyspace shared across
        // targets and runs widens the collision exposure, so a hit is never
        // trusted blindly: the lookup itself rejects entries whose recorded
        // variable count differs, and a kSat entry's translated model must
        // satisfy the query under concrete evaluation. Either mismatch is a
        // colliding key from a different query — treated as a miss, the
        // solver decides (a wrong unsat would silently prune feasible
        // paths; a wrong model would corrupt the child seed).
        smt::SolverStore::Entry stored;
        bool hit = store->lookup(
            key, static_cast<uint32_t>(store_vars->size()), &stored);
        if (hit && stored.verdict == smt::CheckResult::kSat) {
          // Stored models are name-keyed; every variable of a query is
          // declared in this context by the time the query exists, so the
          // translation back to var_ids is total for a genuine hit (an
          // unknown name can only come from a colliding key, which the
          // evaluation below rejects).
          for (const auto& [name, value] : stored.model)
            if (smt::ExprRef var = ctx.lookup_var(name))
              model.set(var->var_id, value);
          for (smt::ExprRef assertion : *query) {
            if (smt::evaluate(assertion, model) != 1) {
              hit = false;
              model.values.clear();
              break;
            }
          }
        }
        if (hit) {
          result = stored.verdict;
          if (result == smt::CheckResult::kSat) {
            ++store_hits_sat;
          } else {
            ++store_hits_unsat;
          }
          // Promote into the session cache so sibling flips re-answer
          // without the store's lock.
          if (cache)
            cache->insert(key, smt::QueryCache::Entry{result, model});
          answered = true;
          from_store = true;
          ++local.store_hits;
        } else {
          ++local.store_misses;
        }
      }
      if (!answered && opts.presolve_models) {
        if (const smt::Assignment* reused = pool.find_satisfying(*query)) {
          // The verdict evaluated variables the pooled model does not
          // assign as zero (Assignment::get's completion); materialize a
          // value for *every* query variable so the next_seed merge below
          // reproduces exactly the assignment the pre-check judged — a
          // parent-seed value surviving for a missing variable could
          // invalidate it.
          const std::vector<uint32_t> qvars =
              opts.slice_queries ? sliced.vars : smt::collect_vars(*query);
          for (uint32_t var : qvars) model.set(var, reused->get(var));
          result = smt::CheckResult::kSat;
          answered = true;
          ++local.presolve_hits;
        } else {
          ++local.presolve_misses;
        }
      }
      if (!answered) {
        const auto solve_start = std::chrono::steady_clock::now();
        result = incremental
                     ? solver.check_assuming(std::span(&negated, 1), &model)
                     : solver.check(*query, &model);
        from_solver = true;
        if (result == smt::CheckResult::kUnknown) ++local.queries_unknown;
        if (cache && result != smt::CheckResult::kUnknown)
          cache->insert(key, smt::QueryCache::Entry{result, model});
        // Record the definitive verdict for future *processes* (kUnknown is
        // rejected both here and inside the store — a weak answer is never
        // worth persisting). Models go in by variable name; var_ids are
        // meaningless outside this context.
        if (store && result != smt::CheckResult::kUnknown) {
          smt::SolverStore::Entry persisted;
          persisted.verdict = result;
          persisted.backend = solver.last_backend();
          persisted.var_count = static_cast<uint32_t>(store_vars->size());
          persisted.solve_seconds = std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() -
                                        solve_start)
                                        .count();
          if (result == smt::CheckResult::kSat) {
            persisted.model.reserve(model.values.size());
            for (const auto& [var, value] : model.values)
              persisted.model.emplace_back(ctx.var_info(var).name, value);
          }
          store->insert(key, std::move(persisted));
        }
      }
      // An unknown verdict (deadline expiry, exhausted failover) is *not*
      // infeasible: the flip is skipped explicitly, never cached, and
      // counted so a timeout cannot silently masquerade as unsat.
      if (result == smt::CheckResult::kUnknown) {
        ++local.flips_skipped_unknown;
        continue;
      }
      if (result != smt::CheckResult::kSat) {
        ++local.infeasible_flips;
        continue;
      }
      ++local.feasible_flips;
      // Store hits feed the model pool like fresh solver models: a prior
      // run's models pre-answer this run's sibling flips.
      if (from_solver || from_store) pool.add(model);
      // With slicing the model must not leak values for sliced-out
      // variables: those constraints were never sent (or, pre-checked
      // against a model of some other query), and the parent seed is the
      // witness that satisfies them.
      if (opts.slice_queries) smt::restrict_to_vars(&model, sliced.vars);
      // New seed: parent values, overridden by the model. With slicing the
      // model covers exactly the effective query's variables, so everything
      // sliced out keeps its parent value; an unsliced solver model may
      // additionally carry completion values for other known variables
      // (all unconstrained at this flip point either way).
      smt::Assignment next_seed = seed;
      for (const auto& [var, value] : model.values) next_seed.set(var, value);
      // Fault site: building the child job is the allocation-heaviest step
      // of the flip loop (portable seed copy), so the kAlloc site fires
      // here as well as at snapshot captures.
      if (opts.fault_plan &&
          opts.fault_plan->fire(support::FaultSite::kAlloc))
        throw std::bad_alloc();
      FlipJob child = make_flip_job(ctx, next_seed, i + 1,
                                    trace.branches[i].pc);
      // Hand the child the deepest checkpoint at or above its flip point
      // (the branch being flipped must itself re-execute, so depth <= i)
      // and pin it in the pool so the handle survives until the job runs.
      if (use_snapshots) {
        if (std::shared_ptr<const Snapshot> snap =
                deepest_at_most(captures, i)) {
          child.snapshot = snap;
          child.snapshot_worker = worker_index;
          snapshot_pool.insert(snap);
        }
      }
      shared.frontier.push(std::move(child));
    }
    scope.reset();
    } catch (const std::exception& e) {
      on_job_error(e.what());
    } catch (...) {
      on_job_error("unknown exception");
    }
    shared.frontier.job_done();
  }

  local.snapshot_evictions = snapshot_pool.evictions();
  local.snapshot_pages_copied = executor.pages_copied() - pages_copied_before;
  local.instructions = executor.instructions_retired() - instructions_before;
  const interp::UopCounters uop_after = executor.uop_counters();
  local.uop_blocks_compiled = uop_after.blocks_compiled - uop_before.blocks_compiled;
  local.uop_cache_hits = uop_after.cache_hits - uop_before.cache_hits;
  local.uop_guard_bails = uop_after.guard_bails - uop_before.guard_bails;
  local.uop_invalidations = uop_after.invalidations - uop_before.invalidations;
  local.pages_clean_skipped =
      uop_after.pages_clean_skipped - uop_before.pages_clean_skipped;
  local.exprs_interned = ctx.num_nodes() - nodes_before;
  local.intern_hits = ctx.intern_hits() - intern_hits_before;
  local.arena_bytes = ctx.arena_bytes();
  local.solver = solver.stats();
  // Queries answered from the cache (or the persistent store — a cache
  // whose hits crossed a process boundary) count as logical queries,
  // exactly as the CachingSolver wrapper reports them in standalone use.
  local.solver.queries +=
      cache_hits_sat + cache_hits_unsat + store_hits_sat + store_hits_unsat;
  local.solver.sat += cache_hits_sat + store_hits_sat;
  local.solver.unsat += cache_hits_unsat + store_hits_unsat;
  local.solver.cache_hits = cache_hits_sat + cache_hits_unsat;
  local.solver.cache_misses = cache_misses;
  std::lock_guard<std::mutex> lock(shared.sink_mutex);
  shared.totals.merge(local);
}

EngineStats DseEngine::explore(const PathCallback& on_path) {
  const auto start = std::chrono::steady_clock::now();
  const unsigned jobs = std::max(1u, options_.jobs);
  if (jobs > 1 && !factory_)
    throw std::invalid_argument(
        "DseEngine: jobs > 1 requires the worker-factory constructor (each "
        "worker needs its own executor and context)");

  findings_.clear();
  Shared shared(make_search_strategy(options_.search, options_.rng_seed,
                                     options_.cfg_hints),
                options_, on_path, findings_);
  // The root job: all-zero input seed (every sym_input byte defaults to 0
  // under Assignment::get), nothing pinned.
  shared.frontier.push(FlipJob{});
  if (options_.deadline_secs > 0) {
    shared.has_deadline = true;
    shared.deadline = start + std::chrono::seconds(options_.deadline_secs);
  }

  // Crash isolation, outer ring: worker_loop already isolates per-job
  // failures, so anything escaping it is infrastructure-level (executor
  // construction state, frontier corruption, bad_alloc outside a job).
  // The run degrades to a partial report instead of rethrowing.
  auto guarded_loop = [this, &shared](Executor& executor, smt::Solver& solver,
                                      unsigned worker_index) {
    try {
      worker_loop(executor, solver, shared, worker_index);
    } catch (const std::exception& e) {
      shared.mark_incomplete(std::string("worker died: ") + e.what());
      {
        std::lock_guard<std::mutex> lock(shared.sink_mutex);
        ++shared.totals.worker_errors;
      }
      shared.frontier.stop();
    } catch (...) {
      shared.mark_incomplete("worker died: unknown exception");
      {
        std::lock_guard<std::mutex> lock(shared.sink_mutex);
        ++shared.totals.worker_errors;
      }
      shared.frontier.stop();
    }
  };

  std::string solver_name;
  if (jobs == 1) {
    // Sequential fast path: the same loop, inline on the calling thread —
    // single-thread behavior is identical to the classic offline engine.
    if (factory_) {
      WorkerResources res = factory_(0);
      std::unique_ptr<smt::Solver> solver = wrap_solver(std::move(res.solver));
      solver_name = solver->name();
      guarded_loop(*res.executor, *solver, 0);
    } else {
      solver_name = solver_->name();
      guarded_loop(*executor_, *solver_, 0);
    }
  } else {
    // Build every worker's resources up front (the factory need not be
    // thread-safe), then let the pool drain the frontier.
    struct Worker {
      WorkerResources res;
      std::unique_ptr<smt::Solver> solver;
    };
    std::vector<Worker> workers;
    workers.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) {
      Worker w;
      w.res = factory_(i);
      w.solver = wrap_solver(std::move(w.res.solver));
      workers.push_back(std::move(w));
    }
    solver_name = workers.front().solver->name();

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) {
      Worker& w = workers[i];
      pool.emplace_back([&guarded_loop, &w, i] {
        guarded_loop(*w.res.executor, *w.solver, i);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // The engine-managed query cache is part of the effective solver stack;
  // reports keep the wrapper-style suffix.
  if (options_.cache_queries) solver_name += "+cache";
  if (options_.solver_store) solver_name += "+store";

  EngineStats stats = std::move(shared.totals);
  if (options_.solver_store) {
    // One atomic flush at the end of the exploration (partial runs flush
    // too: their verdicts are just as definitive). A failed write keeps
    // the in-memory store and the previous file intact.
    options_.solver_store->flush();
    stats.store_entries = options_.solver_store->size();
  }
  stats.workers = jobs;
  stats.peak_frontier = shared.frontier.peak_size();
  stats.solver_name = std::move(solver_name);
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace binsym::core
