#include "core/engine.hpp"

#include <chrono>
#include <deque>
#include <fstream>

#include "smt/smtlib.hpp"
#include "support/format.hpp"

namespace binsym::core {

namespace {

void dump_query(const std::string& dir, uint64_t index, smt::Context& ctx,
                const std::vector<smt::ExprRef>& query) {
  std::ofstream file(dir + strprintf("/query-%06llu.smt2",
                                     static_cast<unsigned long long>(index)));
  if (file) smt::print_query(file, ctx, query);
}

}  // namespace

DseEngine::DseEngine(Executor& executor, std::unique_ptr<smt::Solver> solver,
                     EngineOptions options)
    : executor_(executor), options_(options) {
  if (options_.validate_models)
    solver = std::make_unique<smt::ValidatingSolver>(std::move(solver));
  if (options_.cache_queries)
    solver = std::make_unique<smt::CachingSolver>(std::move(solver));
  solver_ = std::move(solver);
}

std::vector<smt::ExprRef> DseEngine::flip_query(const PathTrace& trace,
                                                size_t flip_index) {
  smt::Context& ctx = executor_.context();
  std::vector<smt::ExprRef> constraints;
  constraints.reserve(flip_index + trace.assumptions.size() + 1);
  // Branch prefix, in as-taken form.
  for (size_t j = 0; j < flip_index; ++j) {
    const BranchRecord& branch = trace.branches[j];
    constraints.push_back(branch.taken ? branch.cond : ctx.not_(branch.cond));
  }
  // Assumptions made before the flip point (address concretizations).
  for (const Assumption& assumption : trace.assumptions) {
    if (assumption.branch_index <= flip_index)
      constraints.push_back(assumption.expr);
  }
  // The negated branch.
  const BranchRecord& flip = trace.branches[flip_index];
  constraints.push_back(flip.taken ? ctx.not_(flip.cond) : flip.cond);
  return constraints;
}

EngineStats DseEngine::explore(const PathCallback& on_path) {
  auto start = std::chrono::steady_clock::now();
  EngineStats stats;

  struct WorkItem {
    smt::Assignment seed;
    size_t bound;  // flip only branches with index >= bound on this run
  };

  // Worklist; the initial seed is all-zeros (every sym_input byte defaults
  // to 0 under Assignment::get). Depth-first pops from the back,
  // breadth-first from the front.
  std::deque<WorkItem> worklist;
  worklist.push_back(WorkItem{smt::Assignment{}, 0});
  const bool dfs = options_.search_order == SearchOrder::kDepthFirst;

  PathTrace trace;
  uint64_t instructions_before = executor_.instructions_retired();

  while (!worklist.empty() && stats.paths < options_.max_paths) {
    WorkItem item = dfs ? std::move(worklist.back()) : std::move(worklist.front());
    if (dfs) {
      worklist.pop_back();
    } else {
      worklist.pop_front();
    }

    executor_.run(item.seed, trace);
    ++stats.paths;
    stats.failures += trace.failures.size();
    stats.max_branch_depth =
        std::max<uint64_t>(stats.max_branch_depth, trace.branches.size());
    if (on_path) on_path(PathResult{trace, item.seed, stats.paths - 1});

    // A rerun must at least reach the branch it was scheduled to flip;
    // otherwise the program diverged from the predicted prefix.
    if (item.bound > 0 && trace.branches.size() < item.bound)
      ++stats.divergences;

    // Schedule flips. Pushing shallow flips first leaves the deepest flip
    // on top of the stack: depth-first order.
    for (size_t i = item.bound; i < trace.branches.size(); ++i) {
      std::vector<smt::ExprRef> query = flip_query(trace, i);
      ++stats.flip_attempts;
      if (!options_.smtlib_dump_dir.empty())
        dump_query(options_.smtlib_dump_dir, stats.flip_attempts,
                   executor_.context(), query);
      smt::Assignment model;
      smt::CheckResult result = solver_->check(query, &model);
      if (result != smt::CheckResult::kSat) {
        ++stats.infeasible_flips;
        continue;
      }
      ++stats.feasible_flips;
      // New seed: parent values, overridden by the model, so variables the
      // query does not mention keep their previous values.
      smt::Assignment next_seed = item.seed;
      for (const auto& [var, value] : model.values) next_seed.set(var, value);
      worklist.push_back(WorkItem{std::move(next_seed), i + 1});
    }
  }

  stats.instructions = executor_.instructions_retired() - instructions_before;
  stats.solver = solver_->stats();
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace binsym::core
