#include "core/engine.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "smt/smtlib.hpp"
#include "support/format.hpp"

namespace binsym::core {

namespace {

void dump_query(const std::string& dir, uint64_t index, smt::Context& ctx,
                const std::vector<smt::ExprRef>& query) {
  std::ofstream file(dir + strprintf("/query-%06llu.smt2",
                                     static_cast<unsigned long long>(index)));
  if (file) smt::print_query(file, ctx, query);
}

}  // namespace

void EngineStats::merge(const EngineStats& other) {
  paths += other.paths;
  flip_attempts += other.flip_attempts;
  feasible_flips += other.feasible_flips;
  infeasible_flips += other.infeasible_flips;
  divergences += other.divergences;
  failures += other.failures;
  max_branch_depth = std::max(max_branch_depth, other.max_branch_depth);
  instructions += other.instructions;
  solver.merge(other.solver);
}

std::vector<smt::ExprRef> flip_query(smt::Context& ctx, const PathTrace& trace,
                                     size_t flip_index) {
  std::vector<smt::ExprRef> constraints;
  constraints.reserve(flip_index + trace.assumptions.size() + 1);
  // Branch prefix, in as-taken form.
  for (size_t j = 0; j < flip_index; ++j) {
    const BranchRecord& branch = trace.branches[j];
    constraints.push_back(branch.taken ? branch.cond : ctx.not_(branch.cond));
  }
  // Assumptions made before the flip point (address concretizations).
  for (const Assumption& assumption : trace.assumptions) {
    if (assumption.branch_index <= flip_index)
      constraints.push_back(assumption.expr);
  }
  // The negated branch.
  const BranchRecord& flip = trace.branches[flip_index];
  constraints.push_back(flip.taken ? ctx.not_(flip.cond) : flip.cond);
  return constraints;
}

/// Exploration-wide state every worker touches. The frontier has its own
/// lock; the path/dump counters are atomics; callback invocation and stats
/// merging serialize on `sink_mutex`.
struct DseEngine::Shared {
  Frontier frontier;
  const EngineOptions& options;
  const PathCallback& on_path;
  std::atomic<uint64_t> path_counter{0};
  std::atomic<uint64_t> dump_counter{0};
  std::mutex sink_mutex;
  EngineStats totals;
  std::exception_ptr first_error;

  Shared(std::unique_ptr<SearchStrategy> strategy, const EngineOptions& opts,
         const PathCallback& callback)
      : frontier(std::move(strategy)), options(opts), on_path(callback) {}
};

DseEngine::DseEngine(Executor& executor, std::unique_ptr<smt::Solver> solver,
                     EngineOptions options)
    : executor_(&executor), options_(options) {
  solver_ = wrap_solver(std::move(solver));
}

DseEngine::DseEngine(WorkerFactory factory, EngineOptions options)
    : factory_(std::move(factory)), options_(options) {
  if (!factory_)
    throw std::invalid_argument("DseEngine: null worker factory");
}

DseEngine::~DseEngine() = default;

smt::Solver& DseEngine::solver() {
  if (!solver_)
    throw std::logic_error(
        "DseEngine::solver(): workers own their solvers in the "
        "worker-factory form");
  return *solver_;
}

std::unique_ptr<smt::Solver> DseEngine::wrap_solver(
    std::unique_ptr<smt::Solver> raw) {
  if (options_.validate_models)
    raw = std::make_unique<smt::ValidatingSolver>(std::move(raw));
  if (options_.cache_queries)
    raw = std::make_unique<smt::CachingSolver>(std::move(raw));
  return raw;
}

void DseEngine::worker_loop(Executor& executor, smt::Solver& solver,
                            Shared& shared) {
  smt::Context& ctx = executor.context();
  EngineStats local;
  PathTrace trace;
  const uint64_t instructions_before = executor.instructions_retired();

  FlipJob job;
  while (shared.frontier.pop(&job)) {
    // Claim a slot in the path budget before running; the first claim past
    // the budget ends the whole exploration.
    const uint64_t index = shared.path_counter.fetch_add(1);
    if (index >= shared.options.max_paths) {
      shared.frontier.stop();
      break;
    }

    smt::Assignment seed = seed_from_job(ctx, job);
    executor.run(seed, trace);
    ++local.paths;
    local.failures += trace.failures.size();
    local.max_branch_depth =
        std::max<uint64_t>(local.max_branch_depth, trace.branches.size());

    // A rerun must at least reach the branch it was scheduled to flip;
    // otherwise the program diverged from the predicted prefix.
    if (job.bound > 0 && trace.branches.size() < job.bound)
      ++local.divergences;

    if (shared.on_path) {
      std::lock_guard<std::mutex> lock(shared.sink_mutex);
      shared.on_path(PathResult{trace, seed, index});
    }
    shared.frontier.observe(trace);

    // Schedule flips. Under DFS, pushing shallow flips first leaves the
    // deepest flip on top of the stack: the paper's selection order.
    for (size_t i = job.bound; i < trace.branches.size(); ++i) {
      // Once the exploration is stopped (budget hit, worker error) the
      // remaining flips of this trace would only feed a dead frontier;
      // wind down instead of spending solver time on them.
      if (shared.frontier.stopped()) break;
      std::vector<smt::ExprRef> query = flip_query(ctx, trace, i);
      ++local.flip_attempts;
      if (!shared.options.smtlib_dump_dir.empty())
        dump_query(shared.options.smtlib_dump_dir,
                   shared.dump_counter.fetch_add(1) + 1, ctx, query);
      smt::Assignment model;
      smt::CheckResult result = solver.check(query, &model);
      if (result != smt::CheckResult::kSat) {
        ++local.infeasible_flips;
        continue;
      }
      ++local.feasible_flips;
      // New seed: parent values, overridden by the model, so variables the
      // query does not mention keep their previous values.
      smt::Assignment next_seed = seed;
      for (const auto& [var, value] : model.values) next_seed.set(var, value);
      shared.frontier.push(
          make_flip_job(ctx, next_seed, i + 1, trace.branches[i].pc));
    }
    shared.frontier.job_done();
  }

  local.instructions = executor.instructions_retired() - instructions_before;
  local.solver = solver.stats();
  std::lock_guard<std::mutex> lock(shared.sink_mutex);
  shared.totals.merge(local);
}

EngineStats DseEngine::explore(const PathCallback& on_path) {
  const auto start = std::chrono::steady_clock::now();
  const unsigned jobs = std::max(1u, options_.jobs);
  if (jobs > 1 && !factory_)
    throw std::invalid_argument(
        "DseEngine: jobs > 1 requires the worker-factory constructor (each "
        "worker needs its own executor and context)");

  Shared shared(make_search_strategy(options_.search, options_.rng_seed),
                options_, on_path);
  // The root job: all-zero input seed (every sym_input byte defaults to 0
  // under Assignment::get), nothing pinned.
  shared.frontier.push(FlipJob{});

  std::string solver_name;
  if (jobs == 1) {
    // Sequential fast path: the same loop, inline on the calling thread —
    // single-thread behavior is identical to the classic offline engine.
    if (factory_) {
      WorkerResources res = factory_(0);
      std::unique_ptr<smt::Solver> solver = wrap_solver(std::move(res.solver));
      solver_name = solver->name();
      worker_loop(*res.executor, *solver, shared);
    } else {
      solver_name = solver_->name();
      worker_loop(*executor_, *solver_, shared);
    }
  } else {
    // Build every worker's resources up front (the factory need not be
    // thread-safe), then let the pool drain the frontier.
    struct Worker {
      WorkerResources res;
      std::unique_ptr<smt::Solver> solver;
    };
    std::vector<Worker> workers;
    workers.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) {
      Worker w;
      w.res = factory_(i);
      w.solver = wrap_solver(std::move(w.res.solver));
      workers.push_back(std::move(w));
    }
    solver_name = workers.front().solver->name();

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) {
      Worker& w = workers[i];
      pool.emplace_back([this, &w, &shared] {
        try {
          worker_loop(*w.res.executor, *w.solver, shared);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(shared.sink_mutex);
            if (!shared.first_error)
              shared.first_error = std::current_exception();
          }
          shared.frontier.stop();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (shared.first_error) std::rethrow_exception(shared.first_error);
  }

  EngineStats stats = std::move(shared.totals);
  stats.workers = jobs;
  stats.peak_frontier = shared.frontier.peak_size();
  stats.solver_name = std::move(solver_name);
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace binsym::core
