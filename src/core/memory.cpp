#include "core/memory.hpp"

#include <cassert>

#include "smt/eval.hpp"
#include "support/bits.hpp"

namespace binsym::core {

uint64_t ConcreteMemory::read(uint32_t addr, unsigned bytes) const {
  assert(bytes >= 1 && bytes <= 8);
  uint64_t value = 0;
  for (unsigned i = 0; i < bytes; ++i)
    value |= static_cast<uint64_t>(read8(addr + i)) << (8 * i);
  return value;
}

void ConcreteMemory::write(uint32_t addr, unsigned bytes, uint64_t value) {
  assert(bytes >= 1 && bytes <= 8);
  for (unsigned i = 0; i < bytes; ++i)
    write8(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void ConcreteMemory::load_image(uint32_t addr,
                                const std::vector<uint8_t>& bytes) {
  for (size_t i = 0; i < bytes.size(); ++i)
    write8(addr + static_cast<uint32_t>(i), bytes[i]);
}

interp::SymValue ConcolicMemory::load(uint32_t addr, unsigned bytes) const {
  uint64_t conc = concrete_.read(addr, bytes);

  // Clean-page summary first (one lookup per page), per-byte check only on
  // dirty pages.
  if (range_concrete(addr, bytes)) return interp::sval(conc, bytes * 8);
  bool any_symbolic = false;
  for (unsigned i = 0; i < bytes && !any_symbolic; ++i)
    any_symbolic = symbolic_.count(addr + i) != 0;
  if (!any_symbolic) return interp::sval(conc, bytes * 8);

  // Reassemble: byte at the lowest address is the least significant
  // (little-endian), so build the concat from the highest byte down.
  smt::ExprRef expr = nullptr;
  for (unsigned i = 0; i < bytes; ++i) {
    unsigned byte_index = bytes - 1 - i;
    uint32_t byte_addr = addr + byte_index;
    smt::ExprRef byte_expr;
    if (auto it = symbolic_.find(byte_addr); it != symbolic_.end()) {
      byte_expr = it->second;
    } else {
      byte_expr = ctx_.constant(concrete_.read8(byte_addr), 8);
    }
    expr = expr ? ctx_.concat(expr, byte_expr) : byte_expr;
  }
  return interp::sval_expr(expr, conc);
}

void ConcolicMemory::store(uint32_t addr, unsigned bytes,
                           const interp::SymValue& value) {
  assert(value.width == bytes * 8);
  if (!value.symbolic()) {
    store_concrete(addr, bytes, value.conc);
    return;
  }
  concrete_.write(addr, bytes, value.conc);
  for (unsigned i = 0; i < bytes; ++i) {
    smt::ExprRef byte_expr = ctx_.extract(value.sym, 8 * i + 7, 8 * i);
    if (byte_expr->is_const()) {
      erase_symbolic_byte(addr + i);
    } else {
      set_symbolic_byte(addr + i, byte_expr);
    }
  }
}

void ConcolicMemory::store_concrete(uint32_t addr, unsigned bytes,
                                    uint64_t value) {
  concrete_.write(addr, bytes, value);
  if (range_concrete(addr, bytes)) return;  // clean pages: no shadow to clear
  for (unsigned i = 0; i < bytes; ++i) erase_symbolic_byte(addr + i);
}

void ConcolicMemory::reshadow(smt::CachingEvaluator& eval) {
  for (const auto& [addr, expr] : symbolic_) {
    uint8_t value = static_cast<uint8_t>(eval.evaluate(expr));
    if (concrete_.read8(addr) != value) concrete_.write8(addr, value);
  }
}

void ConcolicMemory::poke_symbolic(uint32_t addr, smt::ExprRef byte_expr,
                                   uint8_t conc) {
  concrete_.write8(addr, conc);
  if (byte_expr->is_const()) {
    erase_symbolic_byte(addr);
  } else {
    set_symbolic_byte(addr, byte_expr);
  }
}

}  // namespace binsym::core
