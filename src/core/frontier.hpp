// Thread-safe exploration frontier.
//
// The Frontier is the hand-off point between path selection and path
// execution: workers pop pending FlipJobs, execute them, and push the
// feasible child flips back. It wraps a single (single-threaded)
// SearchStrategy behind one mutex and adds the two things a worker pool
// needs on top of a queue:
//
//   * blocking pop with distributed-termination detection: an empty queue
//     does not mean "done" while any worker still holds a popped job (it may
//     yet push children), so pop blocks until either work arrives or every
//     in-flight job has completed (`job_done`), at which point all blocked
//     workers drain with `false`;
//   * cooperative shutdown (`stop`) for path budgets and error exits.
//
// With one worker the same code runs the classic sequential loop: pop never
// blocks, because between the worker's own `job_done` and the next pop the
// queue is either non-empty or exploration is finished.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/search.hpp"

namespace binsym::core {

/// Thread-safety: every method is safe to call from any worker thread
/// concurrently; the wrapped SearchStrategy is only ever touched under the
/// internal mutex. `stopped()` is a lock-free read for hot loops.
class Frontier {
 public:
  /// Takes ownership of the (single-threaded) strategy that defines pop
  /// order. Must be non-null.
  explicit Frontier(std::unique_ptr<SearchStrategy> strategy)
      : strategy_(std::move(strategy)) {}

  Frontier(const Frontier&) = delete;
  Frontier& operator=(const Frontier&) = delete;

  /// Enqueue a job (stamps the global insertion sequence number).
  void push(FlipJob job);

  /// Dequeue the next job per the strategy. Blocks while the queue is empty
  /// but other workers are still expanding jobs. Returns false when the
  /// exploration is over: stopped, or no jobs pending anywhere.
  bool pop(FlipJob* out);

  /// Balance a successful pop once the job's expansion (execution + child
  /// pushes) is finished.
  void job_done();

  /// Feed a finished path to the strategy (coverage-guided priorities).
  void observe(const PathTrace& trace);

  /// Abort: wake every blocked worker; all subsequent pops return false.
  void stop();

  /// Lock-free (workers poll this in their flip-scheduling hot loop).
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }
  /// High-water mark of pending jobs (worklist-footprint statistics).
  size_t peak_size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::unique_ptr<SearchStrategy> strategy_;
  uint64_t next_seq_ = 0;
  size_t active_ = 0;  // jobs popped but not yet job_done()'d
  size_t peak_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace binsym::core
