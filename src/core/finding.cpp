#include "core/finding.hpp"

namespace binsym::core {

const char* oracle_kind_name(OracleKind kind) {
  switch (kind) {
    case OracleKind::kOobLoad:    return "oob-load";
    case OracleKind::kOobStore:   return "oob-store";
    case OracleKind::kDivByZero:  return "div-by-zero";
    case OracleKind::kOverflow:   return "overflow";
    case OracleKind::kUnaligned:  return "unaligned";
    case OracleKind::kBadJump:    return "bad-jump";
    case OracleKind::kStackSmash: return "stack-smash";
    case OracleKind::kAssertFail: return "assert-fail";
    case OracleKind::kReach:      return "reach";
    case OracleKind::kNumOracleKinds: break;
  }
  return "?";
}

OracleKind oracle_kind_from_name(const std::string& name) {
  for (uint8_t k = 0; k < static_cast<uint8_t>(OracleKind::kNumOracleKinds);
       ++k) {
    OracleKind kind = static_cast<OracleKind>(k);
    if (name == oracle_kind_name(kind)) return kind;
  }
  return OracleKind::kNumOracleKinds;
}

bool FindingLog::contains(OracleKind oracle, uint32_t pc,
                          uint32_t call_depth) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return keys_.count(finding_key(oracle, pc, call_depth)) != 0;
}

bool FindingLog::insert(Finding finding) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!keys_.insert(finding_key(finding.oracle, finding.pc,
                                finding.call_depth)).second)
    return false;
  findings_.push_back(std::move(finding));
  return true;
}

std::vector<Finding> FindingLog::findings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return findings_;
}

size_t FindingLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return findings_.size();
}

void FindingLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  keys_.clear();
  findings_.clear();
}

}  // namespace binsym::core
