// Bug-finding oracle records.
//
// The detection layer (src/oracles) turns the path explorer into a property
// checker: oracles observe the concolic execution through core::ExecObserver
// and classify suspicious events into two shapes, both stored on the
// PathTrace the run fills in:
//
//   * OracleHit       — a violation that concretely *happened* on this run
//                       (the run's input seed is already a witness);
//   * OracleCandidate — a violation that is *possible* under this path's
//                       constraints (a width-1 feasibility condition the
//                       engine hands to the solver; a sat model yields the
//                       witness input).
//
// The engine finalizes both into Finding records, deduplicated globally by
// (oracle, pc, call_depth) in a FindingLog shared by all workers.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "smt/expr.hpp"

namespace binsym::core {

/// Identity of the detector that raised a finding. Stable values: the
/// dedup key and the findings JSON encode them.
enum class OracleKind : uint8_t {
  kOobLoad,     // load outside every valid memory region
  kOobStore,    // store outside every valid memory region
  kDivByZero,   // division/remainder with a (feasibly) zero divisor
  kOverflow,    // signed overflow in add/sub/mul over tainted operands
  kUnaligned,   // 2/4-byte access at a (feasibly) misaligned address
  kBadJump,     // indirect jump with a symbolic or unmapped target
  kStackSmash,  // return to an address that is not the pushed link value
  kAssertFail,  // user assert(cond) syscall with a (feasibly) false cond
  kReach,       // user reach(id) syscall marker was executed
  kNumOracleKinds,
};

/// Canonical lower-case name ("oob-load", ...). tools/check_docs.py
/// cross-checks these against docs/ORACLES.md through `explore
/// --list-oracles`, so every kind must have a doc section.
const char* oracle_kind_name(OracleKind kind);

/// Inverse of oracle_kind_name; returns kNumOracleKinds for unknown names.
OracleKind oracle_kind_from_name(const std::string& name);

/// A violation observed concretely during a run, recorded in trace order.
/// The seed the run executed under is a replay witness by construction.
struct OracleHit {
  OracleKind oracle = OracleKind::kNumOracleKinds;
  uint32_t pc = 0;          // address of the faulting instruction
  uint32_t call_depth = 0;  // shadow-call-stack depth at the event
  smt::ExprRef expr = nullptr;  // faulting expression (address, divisor,
                                // jump target, assert condition); null when
                                // the faulting value was pure concrete
  std::string detail;           // human-readable one-liner
};

/// A violation that did not happen concretely but may be feasible under the
/// path condition at the event point. The engine checks
///   branches[0, branch_depth) ∧ assumptions[0, assumption_count) ∧ cond
/// and promotes a sat result to a Finding whose witness is the model merged
/// over the run's seed.
struct OracleCandidate {
  OracleKind oracle = OracleKind::kNumOracleKinds;
  uint32_t pc = 0;
  uint32_t call_depth = 0;
  smt::ExprRef cond = nullptr;  // width-1: "the violation occurs"
  smt::ExprRef expr = nullptr;  // faulting expression, for the report
  size_t branch_depth = 0;      // trace.branches.size() at the event
  size_t assumption_count = 0;  // trace.assumptions.size() at the event
  std::string detail;
};

/// Where a finding came from: the dynamic exploration (an executed or
/// solver-confirmed violation, with a witness input) or the static lint
/// tier (src/analysis/lint.hpp — proven from the load-time fixpoint alone,
/// before a single instruction executes; carries a `rule` instead of a
/// witness). Static findings are reported separately and never enter the
/// engine's FindingLog, so dynamic finding sets are invariant under them.
enum class FindingOrigin : uint8_t { kDynamic, kStatic };

/// A finalized, deduplicated detection: what engine_stats_report counts,
/// explore prints, and --findings-dir serializes (one JSON record plus one
/// replayable witness input file per finding).
struct Finding {
  OracleKind oracle = OracleKind::kNumOracleKinds;
  uint32_t pc = 0;
  uint32_t call_depth = 0;
  std::string detail;
  std::string expr_text;      // faulting expression, SMT-LIB rendering
  uint64_t path_index = 0;    // global index of the path that raised it
  std::vector<uint8_t> input; // witness input bytes, in sym_input order;
                              // replaying them reproduces the violation
                              // concretely (pinned by tests/test_oracles.cpp)
  FindingOrigin origin = FindingOrigin::kDynamic;
  std::string rule;           // static lint rule name, empty when dynamic
};

/// Packed dedup key: oracle × pc × call-depth.
inline uint64_t finding_key(OracleKind oracle, uint32_t pc,
                            uint32_t call_depth) {
  return (static_cast<uint64_t>(static_cast<uint8_t>(oracle)) << 56) |
         (static_cast<uint64_t>(call_depth & 0xffffff) << 32) | pc;
}

/// Exploration-wide finding collector. Thread-safety: every method locks;
/// workers insert concurrently, the engine reads the result after the pool
/// joins (findings() copies under the lock, so mid-exploration reads are
/// also safe).
class FindingLog {
 public:
  /// True if a finding with this dedup key was already inserted. Used by
  /// workers to skip solver work for already-proven candidates — a miss
  /// here is only a hint (insert() re-checks atomically).
  bool contains(OracleKind oracle, uint32_t pc, uint32_t call_depth) const;

  /// Insert if the key is new; returns false (and drops `finding`) for a
  /// duplicate.
  bool insert(Finding finding);

  std::vector<Finding> findings() const;
  size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_set<uint64_t> keys_;
  std::vector<Finding> findings_;
};

}  // namespace binsym::core
