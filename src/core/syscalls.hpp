// The engine <-> software-under-test interface.
//
// Workloads communicate with the SE engine through ECALL with the call
// number in a7 and arguments in a0/a1, mirroring how SymEx-VP exposes
// symbolic inputs to firmware. Crucially, assertions are *not* a syscall:
// workloads branch to a stub that reports failure and exits, so false
// positives/negatives manifest purely as path differences (paper Fig. 5).
#pragma once

#include <cstdint>

namespace binsym::core {

enum Syscall : uint32_t {
  /// a0 = character to append to the path's output log.
  kSysPutChar = 1,
  /// a0 = buffer address, a1 = length: mark `length` bytes as fresh symbolic
  /// input. Concrete shadow values come from the engine's current seed;
  /// bytes are numbered globally in call order ("in_0", "in_1", ...), which
  /// keeps variable identities stable across re-executions.
  kSysSymInput = 2,
  /// a0 = failure id: record an assertion/fault report on this path.
  kSysReportFail = 3,
  /// a0 = condition (zero = violated), a1 = assertion id. The property
  /// interface of the bug-finding oracles: unlike kSysReportFail, the
  /// condition is *not* concretized, so the solver can search for a
  /// violating input even when the concrete run passes. A no-op when no
  /// observer is attached.
  kSysAssert = 4,
  /// a0 = marker id: report that this program point was reached (the
  /// "should be unreachable" oracle). A no-op when no observer is attached.
  kSysReach = 5,
  /// a0 = exit code: stop this path.
  kSysExit = 93,
};

}  // namespace binsym::core
