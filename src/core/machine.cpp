#include "core/machine.hpp"

#include <string>

#include "core/snapshot.hpp"

namespace binsym::core {

const char* exit_reason_name(ExitReason reason) {
  switch (reason) {
    case ExitReason::kRunning:         return "running";
    case ExitReason::kExit:            return "exit";
    case ExitReason::kEbreak:          return "ebreak";
    case ExitReason::kMaxSteps:        return "max-steps";
    case ExitReason::kBadFetch:        return "bad-fetch";
    case ExitReason::kIllegalInstr:    return "illegal-instruction";
    case ExitReason::kBadSyscall:      return "bad-syscall";
    case ExitReason::kSymbolicControl: return "symbolic-control";
  }
  return "?";
}

void SymMachine::reset(const ConcreteMemory& image, uint32_t entry,
                       uint32_t stack_top, const smt::Assignment& seed,
                       PathTrace& trace) {
  regs_.fill(interp::sval(0, 32));
  regs_[2] = interp::sval(stack_top, 32);  // sp
  csrs_.clear();
  memory_.reset(image);
  pc_ = entry;
  next_pc_ = entry;
  input_counter_ = 0;
  seed_ = &seed;
  trace_ = &trace;
  if (observer_) observer_->begin_run(trace);
}

void SymMachine::capture(Snapshot* out) const {
  out->regs = regs_;
  out->csrs = csrs_;
  out->memory = memory_.concrete();  // CoW: shares pages, copies the table
  out->symbolic = memory_.symbolic_bytes();
  out->pc = pc_;
  out->next_pc = next_pc_;
  out->input_counter = input_counter_;
  out->branches = trace_->branches;
  out->assumptions = trace_->assumptions;
  out->failures = trace_->failures;
  out->input_vars = trace_->input_vars;
  out->output = trace_->output;
  out->oracle_hits = trace_->oracle_hits;
  out->oracle_candidates = trace_->oracle_candidates;
  out->steps = trace_->steps;
  out->observer_state = observer_ ? observer_->capture_state() : nullptr;
}

void SymMachine::restore(const Snapshot& snap, const smt::Assignment& seed,
                         PathTrace& trace) {
  regs_ = snap.regs;
  csrs_ = snap.csrs;
  memory_.restore(snap.memory, snap.symbolic);
  pc_ = snap.pc;
  next_pc_ = snap.next_pc;
  input_counter_ = snap.input_counter;
  seed_ = &seed;
  trace_ = &trace;
  trace.branches = snap.branches;
  trace.assumptions = snap.assumptions;
  trace.failures = snap.failures;
  trace.input_vars = snap.input_vars;
  trace.output = snap.output;
  trace.oracle_hits = snap.oracle_hits;
  trace.oracle_candidates = snap.oracle_candidates;
  trace.steps = snap.steps;
  trace.exit = ExitReason::kRunning;
  trace.exit_code = 0;
  if (observer_) observer_->resume_run(trace, snap.observer_state);

  // Re-shadow: the captured concrete values of *symbolic* state are those
  // of the snapshotting run's seed; re-evaluate them under the new one.
  // One memoizing evaluator across all roots — symbolic registers and
  // memory bytes share most of their sub-DAGs.
  smt::CachingEvaluator eval(seed);
  for (Value& reg : regs_) {
    if (reg.symbolic()) reg.conc = eval.evaluate(reg.sym);
  }
  for (auto& [csr, value] : csrs_) {
    if (value.symbolic()) value.conc = eval.evaluate(value.sym);
  }
  memory_.reshadow(eval);
}

uint64_t SymMachine::concretize(const Value& value) {
  if (!value.symbolic()) return value.conc;
  smt::ExprRef pin =
      ctx_.eq(value.sym, ctx_.constant(value.conc, value.width));
  trace_->assumptions.push_back(
      Assumption{trace_->branches.size(), pin});
  return value.conc;
}

SymMachine::Value SymMachine::fresh_input(unsigned bytes) {
  smt::ExprRef expr = nullptr;
  uint64_t conc = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    std::string name = "in_" + std::to_string(input_counter_++);
    smt::ExprRef var = ctx_.var(name, 8);
    uint8_t byte = static_cast<uint8_t>(seed_->get(var->var_id));
    trace_->input_vars.push_back(var->var_id);
    conc |= static_cast<uint64_t>(byte) << (8 * i);
    expr = expr ? ctx_.concat(var, expr) : var;  // little-endian assembly
  }
  return interp::SymValue{conc, static_cast<uint8_t>(bytes * 8), expr};
}

void SymMachine::notify_binop(dsl::ExprOp op, const Value& a, const Value& b) {
  switch (op) {
    case dsl::ExprOp::kAdd:
    case dsl::ExprOp::kSub:
    case dsl::ExprOp::kMul:
    case dsl::ExprOp::kUDiv:
    case dsl::ExprOp::kURem:
    case dsl::ExprOp::kSDiv:
    case dsl::ExprOp::kSRem:
      observer_->on_binop(op, a, b);
      break;
    default:
      break;
  }
}

void SymMachine::ecall() {
  // The syscall ABI registers must be concrete; symbolic numbers/pointers
  // are pinned like any other control-state concretization.
  uint32_t number = static_cast<uint32_t>(concretize(read_register(17)));  // a7

  // The oracle syscalls come first: kSysAssert's condition (a0) must *not*
  // be concretized — pinning it to the seed's value would make the
  // violated arm unreachable for the solver. Both are no-ops without an
  // observer, so workloads using them still run on every engine.
  if (number == kSysAssert) {
    Value cond = read_register(10);
    uint32_t id = static_cast<uint32_t>(concretize(read_register(11)));
    if (observer_) observer_->on_assert(cond, id);
    return;
  }
  if (number == kSysReach) {
    uint32_t id = static_cast<uint32_t>(concretize(read_register(10)));
    if (observer_) observer_->on_reach(id);
    return;
  }

  uint32_t a0 = static_cast<uint32_t>(concretize(read_register(10)));
  uint32_t a1 = static_cast<uint32_t>(concretize(read_register(11)));

  switch (number) {
    case kSysExit:
      stop(ExitReason::kExit, a0);
      break;
    case kSysPutChar:
      trace_->output.push_back(static_cast<char>(a0 & 0xff));
      break;
    case kSysReportFail:
      trace_->failures.push_back(Failure{a0, pc_});
      break;
    case kSysSymInput: {
      for (uint32_t i = 0; i < a1; ++i) {
        std::string name = "in_" + std::to_string(input_counter_++);
        smt::ExprRef var = ctx_.var(name, 8);
        uint8_t conc = static_cast<uint8_t>(seed_->get(var->var_id));
        memory_.poke_symbolic(a0 + i, var, conc);
        trace_->input_vars.push_back(var->var_id);
      }
      // Guest-visible memory write like any store: cached code under the
      // input buffer must be dropped.
      if (store_watch_ && a1 != 0) store_watch_->on_guest_store(a0, a1);
      break;
    }
    default:
      stop(ExitReason::kBadSyscall, number);
      break;
  }
}

}  // namespace binsym::core
