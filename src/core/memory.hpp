// Guest memory.
//
// ConcreteMemory is a sparse paged byte store with copy-on-write value
// semantics: pages are immutable shared buffers, copying a memory (or
// rebinding it to a program image) copies only the page *table*, and a page
// is physically duplicated the first time a writer that shares it stores a
// byte. This is what makes both the classic reset-per-run and the snapshot
// subsystem (snapshot.hpp) O(dirty pages) instead of O(image).
//
// ConcolicMemory layers a symbolic shadow over it: any byte may
// additionally carry an 8-bit expression; loads reassemble wide values from
// the shadow, stores scatter them. Unwritten, unmapped bytes read as zero —
// the deterministic initial-state convention shared by all engines here.
//
// Thread-safety: a ConcreteMemory instance is single-threaded, but its
// pages may be shared across threads *read-only* (each worker rebinds its
// machine memory to the one shared Program image). That is safe: the
// copy-on-write break only needs to distinguish "uniquely owned" from
// "shared", and a page reachable from a live image can never appear
// uniquely owned to a worker (the image itself always holds a reference),
// so cross-thread writes always copy first.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "interp/value.hpp"
#include "smt/context.hpp"

namespace binsym::smt {
class CachingEvaluator;
}

namespace binsym::core {

class ConcreteMemory {
 public:
  static constexpr uint32_t kPageBits = 12;
  static constexpr uint32_t kPageSize = 1u << kPageBits;
  using Page = std::array<uint8_t, kPageSize>;

  /// Single-byte read; unmapped addresses read as zero (the shared
  /// deterministic initial-state convention).
  uint8_t read8(uint32_t addr) const {
    auto it = pages_.find(addr >> kPageBits);
    if (it == pages_.end()) return 0;
    return (*it->second)[addr & (kPageSize - 1)];
  }

  /// Single-byte write; maps a fresh zero page or breaks copy-on-write
  /// sharing as needed (see writable_page).
  void write8(uint32_t addr, uint8_t value) {
    writable_page(addr)[addr & (kPageSize - 1)] = value;
  }

  /// Little-endian multi-byte read (bytes in [1, 8]).
  uint64_t read(uint32_t addr, unsigned bytes) const;

  /// Little-endian multi-byte write.
  void write(uint32_t addr, unsigned bytes, uint64_t value);

  /// True if the page containing `addr` has ever been written/loaded.
  bool mapped(uint32_t addr) const {
    return pages_.count(addr >> kPageBits) != 0;
  }

  /// Bulk byte copy at `addr` (program loading); same mapping/CoW rules
  /// as write8.
  void load_image(uint32_t addr, const std::vector<uint8_t>& bytes);

  /// Share `other`'s pages without copying any of them — O(page table).
  /// This is the reset-per-run / snapshot-restore primitive: subsequent
  /// writes copy-on-write the affected page only. Unlike plain assignment
  /// it preserves this instance's pages_copied() counter, which tracks
  /// physical copy work across the instance's lifetime.
  void rebind(const ConcreteMemory& other) { pages_ = other.pages_; }

  /// Mapped (ever-touched) pages — a size metric, not a bounds check:
  /// the bug-finding oracles use byte-exact Program::regions instead.
  size_t num_pages() const { return pages_.size(); }

  /// Pages physically duplicated by copy-on-write breaks over this
  /// instance's lifetime (fresh zero pages are not counted). Survives
  /// rebind(); plain copies inherit the source's count.
  uint64_t pages_copied() const { return pages_copied_; }

 private:
  Page& writable_page(uint32_t addr) {
    auto [it, inserted] = pages_.try_emplace(addr >> kPageBits);
    if (inserted) {
      it->second = std::make_shared<Page>();
      it->second->fill(0);
    } else if (it->second.use_count() > 1) {
      // Copy-on-write break: someone else (an image, a snapshot, a sibling
      // fork) still references this page.
      it->second = std::make_shared<Page>(*it->second);
      ++pages_copied_;
    }
    return *it->second;
  }

  std::unordered_map<uint32_t, std::shared_ptr<Page>> pages_;
  uint64_t pages_copied_ = 0;
};

class ConcolicMemory {
 public:
  explicit ConcolicMemory(smt::Context& ctx) : ctx_(ctx) {}

  /// Reset to a concrete image (start of a new path). O(page table): the
  /// image's pages are shared copy-on-write, never copied here.
  void reset(const ConcreteMemory& image) {
    concrete_.rebind(image);
    symbolic_.clear();
    symbolic_page_counts_.clear();
  }

  const ConcreteMemory& concrete() const { return concrete_; }

  /// Concrete n-byte load of the shadow (used for instruction fetch).
  uint64_t read_concrete(uint32_t addr, unsigned bytes) const {
    return concrete_.read(addr, bytes);
  }

  bool mapped(uint32_t addr) const { return concrete_.mapped(addr); }

  /// Load `bytes` bytes at a concrete address, reassembling symbolic bytes
  /// into a (bytes*8)-wide value.
  interp::SymValue load(uint32_t addr, unsigned bytes) const;

  /// Store a (bytes*8)-wide value at a concrete address.
  void store(uint32_t addr, unsigned bytes, const interp::SymValue& value);

  /// Fully-concrete store: writes the concrete bytes and clears any shadow
  /// under them. The micro-op fast path's store primitive.
  void store_concrete(uint32_t addr, unsigned bytes, uint64_t value);

  /// True when no byte of [addr, addr+bytes) carries a symbolic expression,
  /// decided from per-page symbolic-byte counts alone — the clean-page
  /// summary that lets hot loads/stores skip per-byte shadow lookups.
  /// Conservative: a dirty page makes it return false even if the specific
  /// bytes are concrete. Counts every positive answer in
  /// pages_clean_skipped().
  bool range_concrete(uint32_t addr, unsigned bytes) const {
    if (!symbolic_page_counts_.empty()) {
      uint32_t first = addr >> ConcreteMemory::kPageBits;
      uint32_t last = (addr + bytes - 1) >> ConcreteMemory::kPageBits;
      if (last < first) return false;  // address-space wrap: stay byte-exact
      for (uint32_t page = first; page <= last; ++page)
        if (symbolic_page_counts_.count(page) != 0) return false;
    }
    ++pages_clean_skipped_;
    return true;
  }

  /// Accesses answered by the clean-page summary (skipped per-byte lookups).
  uint64_t pages_clean_skipped() const { return pages_clean_skipped_; }

  /// Bind one byte to a symbolic expression with concrete shadow `conc`
  /// (used by sym_input).
  void poke_symbolic(uint32_t addr, smt::ExprRef byte_expr, uint8_t conc);

  /// The symbolic shadow: byte address -> 8-bit expression. Exposed for the
  /// snapshot subsystem (capture copies it, restore rebinds it).
  const std::unordered_map<uint32_t, smt::ExprRef>& symbolic_bytes() const {
    return symbolic_;
  }

  /// Snapshot-restore primitive: rebind the concrete store to `concrete`
  /// (copy-on-write, like reset) and replace the symbolic shadow.
  void restore(const ConcreteMemory& concrete,
               const std::unordered_map<uint32_t, smt::ExprRef>& symbolic) {
    concrete_.rebind(concrete);
    symbolic_ = symbolic;
    rebuild_page_counts();
  }

  /// Recompute the concrete shadow of every symbolic byte under `eval`'s
  /// assignment (snapshot resume under a new input seed). Bytes whose value
  /// is unchanged are left alone so they do not break page sharing.
  void reshadow(smt::CachingEvaluator& eval);

  size_t num_symbolic_bytes() const { return symbolic_.size(); }

 private:
  // All shadow mutation funnels through these two so the per-page counts
  // can never drift from symbolic_.
  void set_symbolic_byte(uint32_t addr, smt::ExprRef expr) {
    auto [it, inserted] = symbolic_.insert_or_assign(addr, std::move(expr));
    (void)it;
    if (inserted)
      ++symbolic_page_counts_[addr >> ConcreteMemory::kPageBits];
  }

  void erase_symbolic_byte(uint32_t addr) {
    if (symbolic_.erase(addr) == 0) return;
    auto it = symbolic_page_counts_.find(addr >> ConcreteMemory::kPageBits);
    if (--it->second == 0) symbolic_page_counts_.erase(it);
  }

  void rebuild_page_counts() {
    symbolic_page_counts_.clear();
    for (const auto& [addr, expr] : symbolic_) {
      (void)expr;
      ++symbolic_page_counts_[addr >> ConcreteMemory::kPageBits];
    }
  }

  smt::Context& ctx_;
  ConcreteMemory concrete_;
  std::unordered_map<uint32_t, smt::ExprRef> symbolic_;
  // page -> number of symbolic bytes on it; absent = clean page.
  std::unordered_map<uint32_t, uint32_t> symbolic_page_counts_;
  mutable uint64_t pages_clean_skipped_ = 0;
};

}  // namespace binsym::core
