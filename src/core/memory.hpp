// Guest memory.
//
// ConcreteMemory is a sparse paged byte store with value semantics (cheap
// reset-per-run by copying the loaded image). ConcolicMemory layers a
// symbolic shadow over it: any byte may additionally carry an 8-bit
// expression; loads reassemble wide values from the shadow, stores scatter
// them. Unwritten, unmapped bytes read as zero — the deterministic
// initial-state convention shared by all engines here.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "interp/value.hpp"
#include "smt/context.hpp"

namespace binsym::core {

class ConcreteMemory {
 public:
  static constexpr uint32_t kPageBits = 12;
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  uint8_t read8(uint32_t addr) const {
    auto it = pages_.find(addr >> kPageBits);
    if (it == pages_.end()) return 0;
    return it->second[addr & (kPageSize - 1)];
  }

  void write8(uint32_t addr, uint8_t value) {
    page(addr)[addr & (kPageSize - 1)] = value;
  }

  /// Little-endian multi-byte read (bytes in [1, 8]).
  uint64_t read(uint32_t addr, unsigned bytes) const;

  /// Little-endian multi-byte write.
  void write(uint32_t addr, unsigned bytes, uint64_t value);

  /// True if the page containing `addr` has ever been written/loaded.
  bool mapped(uint32_t addr) const {
    return pages_.count(addr >> kPageBits) != 0;
  }

  void load_image(uint32_t addr, const std::vector<uint8_t>& bytes);

  size_t num_pages() const { return pages_.size(); }

 private:
  std::array<uint8_t, kPageSize>& page(uint32_t addr) {
    auto [it, inserted] = pages_.try_emplace(addr >> kPageBits);
    if (inserted) it->second.fill(0);
    return it->second;
  }

  std::unordered_map<uint32_t, std::array<uint8_t, kPageSize>> pages_;
};

class ConcolicMemory {
 public:
  explicit ConcolicMemory(smt::Context& ctx) : ctx_(ctx) {}

  /// Reset to a concrete image (start of a new path).
  void reset(const ConcreteMemory& image) {
    concrete_ = image;
    symbolic_.clear();
  }

  const ConcreteMemory& concrete() const { return concrete_; }

  /// Concrete n-byte load of the shadow (used for instruction fetch).
  uint64_t read_concrete(uint32_t addr, unsigned bytes) const {
    return concrete_.read(addr, bytes);
  }

  bool mapped(uint32_t addr) const { return concrete_.mapped(addr); }

  /// Load `bytes` bytes at a concrete address, reassembling symbolic bytes
  /// into a (bytes*8)-wide value.
  interp::SymValue load(uint32_t addr, unsigned bytes) const;

  /// Store a (bytes*8)-wide value at a concrete address.
  void store(uint32_t addr, unsigned bytes, const interp::SymValue& value);

  /// Bind one byte to a symbolic expression with concrete shadow `conc`
  /// (used by sym_input).
  void poke_symbolic(uint32_t addr, smt::ExprRef byte_expr, uint8_t conc);

  size_t num_symbolic_bytes() const { return symbolic_.size(); }

 private:
  smt::Context& ctx_;
  ConcreteMemory concrete_;
  std::unordered_map<uint32_t, smt::ExprRef> symbolic_;
};

}  // namespace binsym::core
