// Exploration-level analysis helpers built on PathTrace streams: branch
// coverage accounting and a per-branch-site summary. SE tools report these
// to users ("which branches were only ever taken one way?"), and the
// coverage map doubles as a regression oracle in tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/engine.hpp"
#include "core/path.hpp"

namespace binsym::core {

/// Multi-line human-readable exploration report: paths, flips, worker
/// count, and the solver section including query-cache hits/misses.
std::string engine_stats_report(const EngineStats& stats);

/// Accumulates branch-direction coverage across explored paths, keyed by
/// the branch site's pc.
class BranchCoverage {
 public:
  void record(const PathTrace& trace) {
    for (const BranchRecord& branch : trace.branches) {
      Entry& entry = sites_[branch.pc];
      if (branch.taken) {
        ++entry.taken;
      } else {
        ++entry.not_taken;
      }
    }
  }

  struct Entry {
    uint64_t taken = 0;
    uint64_t not_taken = 0;
    bool both_directions() const { return taken > 0 && not_taken > 0; }
  };

  const std::map<uint32_t, Entry>& sites() const { return sites_; }

  size_t num_sites() const { return sites_.size(); }

  size_t num_fully_covered() const {
    size_t n = 0;
    for (const auto& [pc, entry] : sites_) n += entry.both_directions();
    return n;
  }

  /// Branch sites that only ever resolved one way — where exploration (or
  /// the program) leaves dead arms.
  std::vector<uint32_t> one_sided_sites() const {
    std::vector<uint32_t> out;
    for (const auto& [pc, entry] : sites_)
      if (!entry.both_directions()) out.push_back(pc);
    return out;
  }

  /// Human-readable summary table.
  std::string report() const;

 private:
  std::map<uint32_t, Entry> sites_;
};

}  // namespace binsym::core
