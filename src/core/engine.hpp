// The DSE engine: offline executor with depth-first search path selection.
//
// Implements exactly the algorithm the paper attributes to BinSym
// (Sect. III-B): "an offline executor, which continuously restarts execution
// of the SUT with input values obtained for branch points from the solver
// ... dynamic symbolic execution with depth-first search path selection and
// address concretization".
//
// The driver is generic over Executor, so all four engines of the
// evaluation share one search strategy; only the instruction->SMT
// translation differs, which is the comparison the paper makes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/path.hpp"
#include "smt/cache.hpp"
#include "smt/solver.hpp"

namespace binsym::core {

/// Path selection order. The paper's BinSym uses depth-first selection;
/// breadth-first is provided as an ablation — on fully-explorable programs
/// both enumerate the same paths (tested), they only differ in discovery
/// order and worklist footprint.
enum class SearchOrder : uint8_t { kDepthFirst, kBreadthFirst };

struct EngineOptions {
  uint64_t max_paths = UINT64_MAX;
  SearchOrder search_order = SearchOrder::kDepthFirst;
  /// Wrap the backend in the query cache (identical prefix queries recur).
  bool cache_queries = true;
  /// Validate every sat model by concrete evaluation (testing aid).
  bool validate_models = false;
  /// When non-empty: write every branch-flip query as a standalone SMT-LIB
  /// file (query-000001.smt2, ...) into this directory — a reproducibility
  /// artifact (any SMT-LIB solver can replay the exploration's queries).
  std::string smtlib_dump_dir;
};

struct EngineStats {
  uint64_t paths = 0;            // completed runs == explored paths
  uint64_t flip_attempts = 0;    // solver queries issued for branch flips
  uint64_t feasible_flips = 0;
  uint64_t infeasible_flips = 0;
  uint64_t divergences = 0;      // reruns that did not reach the flip depth
  uint64_t failures = 0;         // report_fail events across all paths
  uint64_t max_branch_depth = 0;
  uint64_t instructions = 0;
  double seconds = 0;            // wall-clock for the whole exploration
  smt::SolverStats solver;
};

/// One finished path, handed to the per-path callback.
struct PathResult {
  const PathTrace& trace;
  const smt::Assignment& seed;
  uint64_t index;
};

class DseEngine {
 public:
  using PathCallback = std::function<void(const PathResult&)>;

  /// `solver` is the raw backend (e.g. from smt::make_z3_solver);
  /// ownership is taken so the engine can layer cache/validation wrappers.
  DseEngine(Executor& executor, std::unique_ptr<smt::Solver> solver,
            EngineOptions options = {});

  /// Run the exploration to completion (or `max_paths`) starting from the
  /// all-zero input seed.
  EngineStats explore(const PathCallback& on_path = nullptr);

  smt::Solver& solver() { return *solver_; }

 private:
  /// Build the constraint set that pins branches [0, flip_index) as
  /// executed, includes assumptions made up to the flip point, and negates
  /// branch `flip_index`.
  std::vector<smt::ExprRef> flip_query(const PathTrace& trace,
                                       size_t flip_index);

  Executor& executor_;
  std::unique_ptr<smt::Solver> solver_;
  EngineOptions options_;
};

}  // namespace binsym::core
