// The DSE engine: offline executor with pluggable path selection and an
// optional worker pool.
//
// Implements the algorithm the paper attributes to BinSym (Sect. III-B):
// "an offline executor, which continuously restarts execution of the SUT
// with input values obtained for branch points from the solver ... dynamic
// symbolic execution with depth-first search path selection and address
// concretization" — generalized into three cooperating components:
//
//   SearchStrategy (search.hpp)  — which pending branch flip to take next;
//   Frontier       (frontier.hpp)— thread-safe work queue of FlipJobs;
//   worker pool    (this file)   — each worker owns an Executor +
//                                  smt::Context + solver backend and drains
//                                  the frontier.
//
// The driver stays generic over Executor, so all four engines of the
// evaluation share one search implementation; only the instruction->SMT
// translation differs, which is the comparison the paper makes. With
// jobs == 1 the same worker loop runs inline on the calling thread and
// reproduces the classic sequential exploration exactly (same path order,
// same counts, same queries).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/finding.hpp"
#include "core/frontier.hpp"
#include "core/path.hpp"
#include "core/search.hpp"
#include "smt/cache.hpp"
#include "smt/solver.hpp"
#include "smt/store.hpp"

namespace binsym::core {

/// Exploration configuration. Plain data, set once before explore();
/// shared read-only across all workers afterwards.
struct EngineOptions {
  /// Stop after this many completed runs (the claim is made before a run
  /// starts, so the count is exact even under parallelism).
  uint64_t max_paths = UINT64_MAX;
  /// Path selection policy (see search.hpp). The paper's BinSym uses DFS.
  SearchKind search = SearchKind::kDepthFirst;
  /// Worker count. 1 = sequential on the calling thread (no threads
  /// spawned); > 1 requires the worker-factory constructor.
  unsigned jobs = 1;
  /// Seed for SearchKind::kRandomPath (reproducible schedules).
  uint64_t rng_seed = 1;
  /// Keep a per-worker query cache keyed by the effective (sliced) flip
  /// query — identical queries recur across sibling flips.
  bool cache_queries = true;
  /// Hash-cons expression nodes in each worker's Context (the default).
  /// Off preserves the legacy fresh-node-per-call allocator for the
  /// differential test harness; the explored path set is invariant.
  /// Takes effect where worker contexts are built (the worker factory) —
  /// the single-executor constructor inherits its caller's Context as-is.
  /// CLI: --no-intern.
  bool intern_exprs = true;
  /// Validate every sat model by concrete evaluation (testing aid).
  bool validate_models = false;
  // -- Solver-pipeline optimizations (independently toggleable; the path
  // set an exploration discovers is invariant under all of them, so the
  // ablation bench can isolate each one's cost effect).
  /// Assert a trace's branch-prefix constraints once per trace via the
  /// solver's scoped API and check each flip as an assumption, instead of
  /// re-sending the whole conjunction per flip.
  bool incremental_solving = true;
  /// Constraint-independence slicing: send only the prefix constraints
  /// variable-connected to the negated branch (see smt/slice.hpp).
  bool slice_queries = true;
  /// Model-reuse pre-check: evaluate each flip query under recently
  /// returned models first; a satisfying one answers sat with no solver
  /// round trip.
  bool presolve_models = true;
  /// Per-worker recent-model pool size for the pre-check (0 disables).
  unsigned presolve_pool = 8;
  /// Persistent content-addressed query/model store (smt/store.hpp),
  /// shared across workers (internally locked) and across *processes*:
  /// flip queries answer from it before reaching a solver, definitive
  /// solver verdicts are recorded into it, and explore() flushes it to its
  /// backing file at the end — so a warm rerun of the same target replays
  /// prior solver work instead of redoing it. Like the cache, it can only
  /// change cost, never the explored path set. Null disables.
  /// CLI: --solver-store DIR.
  std::shared_ptr<smt::SolverStore> solver_store;
  // -- Snapshot/fork execution (snapshot.hpp). Like the solver-pipeline
  // optimizations, snapshots may change only cost, never the explored path
  // set — resumed runs are bit-identical to full replays.
  /// Resume each scheduled flip from the deepest reusable copy-on-write
  /// checkpoint instead of re-executing from the entry point. Requires an
  /// executor with supports_snapshots(); silently degrades to full replay
  /// otherwise. CLI: --no-snapshot.
  bool snapshots = true;
  /// Per-worker SnapshotPool capacity: live checkpoints kept for pending
  /// flips (scored LRU eviction; evicted handles fall back to replay).
  /// 0 disables snapshotting like `snapshots = false`. CLI: --snapshot-budget.
  unsigned snapshot_budget = 128;
  /// Minimum branch records between two captures within one run. Smaller =
  /// denser checkpoints = less re-execution per resume but more capture
  /// work and pool pressure. CLI: --snapshot-interval.
  unsigned snapshot_interval = 4;
  /// Measure the effective (post-slicing) flip queries: distinct DAG nodes
  /// per query, accumulated into EngineStats. Costs one DAG walk per flip;
  /// meant for the SMT ablation bench, off in production explorations.
  bool measure_query_nodes = false;
  /// When non-empty: write every branch-flip query as a standalone SMT-LIB
  /// file (query-000001.smt2, ...) into this directory — a reproducibility
  /// artifact (any SMT-LIB solver can replay the exploration's queries).
  /// Numbering is a global claim order across workers.
  std::string smtlib_dump_dir;
  // -- Static analysis consumers (src/analysis). Like the solver-pipeline
  // optimizations, pruning may change only cost, never behavior: candidates
  // it skips are proven unsat, so path sets and finding sets are invariant
  // (pinned by tests/test_analysis.cpp).
  /// Oracle-candidate pre-prover: return true when the candidate is
  /// statically proven unsat, and the worker skips its solver query.
  /// Must be thread-safe (called concurrently from all workers). Leave
  /// empty to disable; never set it for the vp engine (MMIO loads return
  /// device values outside the static memory model).
  std::function<bool(const OracleCandidate&)> candidate_prune;
  /// Soundness-testing aid: solve statically-proven candidates anyway and
  /// count any sat answer in EngineStats::static_mismatches (which the
  /// differential tests then require to be zero).
  bool static_differential = false;
  /// Static CFG shape for coverage-guided search: score flips by distance
  /// to the nearest statically-uncovered block instead of raw visit
  /// counts. Independent of candidate_prune so schedules stay identical
  /// across prune on/off. Null = visit-count scoring.
  std::shared_ptr<const CfgHints> cfg_hints;
  // -- Robustness (docs/ROBUSTNESS.md). Hardening changes only how an
  // exploration *degrades*; a fault-free run within budget explores a
  // bit-identical path set with these at their defaults or not.
  /// Wall-clock budget for the whole exploration in seconds (0 = none).
  /// On expiry workers cooperatively stop, completed work is kept, and
  /// the result is marked incomplete. CLI: --deadline-secs.
  uint64_t deadline_secs = 0;
  /// RSS watermark in MiB (0 = none), polled by the workers between jobs.
  /// Crossing it stops the exploration like the deadline does. On
  /// platforms without an RSS probe the budget is never enforced.
  /// CLI: --memory-budget-mb.
  uint64_t memory_budget_mb = 0;
  /// How many times a FlipJob whose processing threw is requeued before it
  /// is dropped as poisonous (so a deterministic crasher cannot loop the
  /// run forever). Every such error marks the result incomplete.
  unsigned max_job_retries = 1;
  /// Deterministic fault injection (support/fault.hpp): fail the Nth
  /// solver check / snapshot capture / instrumented allocation. Null
  /// disables every site. CLI: explore --fault-inject SPEC.
  std::shared_ptr<support::FaultPlan> fault_plan;
};

/// Exploration-wide counters. Each worker accumulates a private copy;
/// merge() folds them under the engine's sink mutex, so readers only ever
/// see the final merged value explore() returns.
struct EngineStats {
  uint64_t paths = 0;            // completed runs == explored paths
  uint64_t flip_attempts = 0;    // solver queries issued for branch flips
  uint64_t feasible_flips = 0;
  uint64_t infeasible_flips = 0;
  uint64_t divergences = 0;      // reruns that did not reach the flip depth
  uint64_t failures = 0;         // report_fail events across all paths
  uint64_t max_branch_depth = 0;
  uint64_t instructions = 0;
  uint64_t presolve_hits = 0;    // flips answered by the recent-model pool
  uint64_t presolve_misses = 0;  // pre-checked flips that still hit the solver
  // -- Persistent store (EngineOptions::solver_store). Zero without one.
  uint64_t store_hits = 0;     // flips answered by the persistent store
  uint64_t store_misses = 0;   // store-consulted flips that went further
  uint64_t store_entries = 0;  // entries held after the final flush
  uint64_t sliced_constraints = 0;  // prefix constraints dropped by slicing,
                                    // summed over all flip queries
  uint64_t query_nodes_total = 0;   // effective query DAG nodes, summed
  uint64_t query_nodes_max = 0;     // ... and the largest single query
                                    // (both only with measure_query_nodes)
  uint64_t snapshot_hits = 0;       // runs resumed from a checkpoint
  uint64_t snapshot_misses = 0;     // runs whose handle was evicted or
                                    // crossed workers (fell back to replay)
  uint64_t snapshot_captures = 0;   // checkpoints captured across all runs
  uint64_t snapshot_evictions = 0;  // pool evictions (budget pressure)
  uint64_t snapshot_pages_copied = 0;  // guest pages physically duplicated
                                       // by copy-on-write breaks
  // -- Bug-finding oracles (finding.hpp). Zero unless an ExecObserver was
  // attached to the executors.
  uint64_t findings = 0;             // unique findings this engine inserted
  uint64_t finding_dupes = 0;        // detections collapsed by the dedup key
  uint64_t candidates_checked = 0;   // oracle candidates sent to the solver
  uint64_t candidates_feasible = 0;  // ... that came back sat (=> finding)
  // -- Static candidate pruning (EngineOptions::candidate_prune). Zero
  // unless a prover was installed.
  uint64_t static_proved = 0;     // candidates proven unsat, solver skipped
  uint64_t static_unknown = 0;    // candidates the prover passed through
  uint64_t static_mismatches = 0; // differential mode: proven-yet-sat (bug!)
  // -- Micro-op fast path (interp/uop.hpp). Zero with uop_fastpath off or
  // for executors without the fast path.
  uint64_t uop_blocks_compiled = 0;  // straight-line blocks lowered
  uint64_t uop_cache_hits = 0;       // block lookups served from the cache
  uint64_t uop_guard_bails = 0;      // mid-block exits to the spec path
  uint64_t uop_invalidations = 0;    // blocks dropped by stores into them
  uint64_t pages_clean_skipped = 0;  // shadow lookups skipped via clean
                                     // page summaries
  // -- Expression arena (smt/context.hpp), summed over worker contexts.
  uint64_t exprs_interned = 0;  // nodes allocated in the arena
  uint64_t intern_hits = 0;     // builder calls answered from the intern
                                // table (zero with intern_exprs off)
  uint64_t arena_bytes = 0;     // bytes held by arenas + intern tables
  // -- Robustness (docs/ROBUSTNESS.md). Zero on a healthy run with no
  // deadlines configured.
  uint64_t queries_unknown = 0;      // solver checks that came back kUnknown
                                     // (deadline, theory limit, injected)
  uint64_t flips_skipped_unknown = 0;  // flips explicitly skipped on kUnknown
                                       // (never counted as infeasible)
  uint64_t worker_errors = 0;        // jobs whose processing threw
  uint64_t jobs_requeued = 0;        // errored jobs retried on the frontier
  uint64_t jobs_poisoned = 0;        // errored jobs dropped after the retry
                                     // budget (max_job_retries)
  uint64_t peak_frontier = 0;    // worklist high-water mark (pending jobs)
  unsigned workers = 1;          // worker count the exploration ran with
  double seconds = 0;            // wall-clock for the whole exploration
  /// True when the exploration ended before exhausting the frontier for a
  /// reason other than the configured path budget: wall-clock deadline,
  /// memory budget, or a worker error. The counters above then describe a
  /// *partial* exploration; `incomplete_reason` names the first cause.
  bool incomplete = false;
  std::string incomplete_reason;
  std::string solver_name;       // backend name incl. wrappers, for reports
  smt::SolverStats solver;       // merged across workers

  /// Fold one worker's partial stats in (solver stats merge too; wall-clock
  /// `seconds`, `workers` and `peak_frontier` are set by the engine).
  void merge(const EngineStats& other);
};

/// One finished path, handed to the per-path callback. `index` is the
/// global path claim order; with several workers callbacks arrive in
/// completion order (serialized, but indices may interleave).
struct PathResult {
  const PathTrace& trace;
  const smt::Assignment& seed;
  uint64_t index;
};

/// Everything one worker owns. `keepalive` carries any extra per-worker
/// state the executor borrows (e.g. a baseline Lifter) and is declared
/// first so it is destroyed last; likewise the context outlives the
/// executor and solver built over it.
struct WorkerResources {
  std::shared_ptr<void> keepalive;
  std::unique_ptr<smt::Context> ctx;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<smt::Solver> solver;  // raw backend over *ctx
};

/// Builds the resources for worker `index`; called once per worker, from
/// the engine's thread before the pool starts (the factory itself need not
/// be thread-safe).
using WorkerFactory = std::function<WorkerResources(unsigned index)>;

/// Thread-safety: construct, explore() once, read the result — all from
/// one thread; the engine spawns and joins its own workers internally.
/// The PathCallback is invoked under a mutex (never concurrently), but
/// from worker threads, so it must not touch the caller's thread-local
/// state.
class DseEngine {
 public:
  using PathCallback = std::function<void(const PathResult&)>;

  /// Single-executor form: exploration borrows `executor` and runs
  /// sequentially on the calling thread. `solver` is the raw backend (e.g.
  /// from smt::make_z3_solver); ownership is taken so the engine can layer
  /// cache/validation wrappers. Requires options.jobs == 1.
  DseEngine(Executor& executor, std::unique_ptr<smt::Solver> solver,
            EngineOptions options = {});

  /// Worker-pool form: `factory` builds one executor + context + solver per
  /// worker (options.jobs of them). With jobs == 1 this behaves exactly
  /// like the single-executor form over factory(0)'s resources.
  DseEngine(WorkerFactory factory, EngineOptions options = {});

  ~DseEngine();

  /// Run the exploration to completion (or `max_paths`) starting from the
  /// all-zero input seed.
  EngineStats explore(const PathCallback& on_path = nullptr);

  /// The wrapped solver of the single-executor form. Only valid for that
  /// constructor (workers own their solvers privately).
  smt::Solver& solver();

  /// Deduplicated findings collected by the last explore() (empty when no
  /// ExecObserver was attached to the executors). Findings are inserted in
  /// completion order; with several workers the order is nondeterministic,
  /// the *set* of (oracle, pc, call_depth) keys is not.
  std::vector<Finding> findings() const { return findings_.findings(); }

 private:
  struct Shared;  // exploration-wide mutable state (engine.cpp)

  std::unique_ptr<smt::Solver> wrap_solver(std::unique_ptr<smt::Solver> raw);
  void worker_loop(Executor& executor, smt::Solver& solver, Shared& shared,
                   unsigned worker_index);

  Executor* executor_ = nullptr;          // single-executor form
  std::unique_ptr<smt::Solver> solver_;   // single-executor form (wrapped)
  WorkerFactory factory_;                 // worker-pool form
  EngineOptions options_;
  FindingLog findings_;                   // shared, internally locked
};

/// Build the constraint set that pins branches [0, flip_index) as executed,
/// includes assumptions made up to the flip point, and negates branch
/// `flip_index`. Exposed for tests and tooling.
std::vector<smt::ExprRef> flip_query(smt::Context& ctx, const PathTrace& trace,
                                     size_t flip_index);

}  // namespace binsym::core
