// Per-run artifacts of the concolic executor: which symbolic branches were
// taken, which assumptions (address concretizations) were made, what the
// program reported. This is the engine-facing contract every executor
// (BinSym, baseline lifters, VP) fills in identically — path search is
// translation-agnostic, as in the paper's framing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/finding.hpp"
#include "smt/expr.hpp"

namespace binsym::core {

/// One symbolic runIfElse decision. `cond` is the (non-constant) branch
/// condition expression; `taken` records which arm the concrete shadow
/// selected.
struct BranchRecord {
  smt::ExprRef cond = nullptr;
  bool taken = false;
  uint32_t pc = 0;
};

/// A non-flippable path constraint (e.g. "symbolic address == concrete
/// value" from address concretization), ordered relative to the branch
/// sequence: it holds for any flip of branch index >= branch_index.
struct Assumption {
  size_t branch_index = 0;
  smt::ExprRef expr = nullptr;
};

/// A report_fail() event raised by the software under test (assertion
/// failures in the workloads are branches into a report_fail stub).
struct Failure {
  uint32_t id = 0;
  uint32_t pc = 0;
};

enum class ExitReason : uint8_t {
  kRunning,
  kExit,            // SYS_exit
  kEbreak,
  kMaxSteps,
  kBadFetch,        // pc outside mapped memory
  kIllegalInstr,
  kBadSyscall,
  kSymbolicControl, // symbolic value where concrete control state required
};

const char* exit_reason_name(ExitReason reason);

struct PathTrace {
  std::vector<BranchRecord> branches;
  std::vector<Assumption> assumptions;
  std::vector<Failure> failures;
  std::vector<uint32_t> input_vars;  // smt var ids created by sym_input
  std::string output;                // bytes written via putchar
  // Oracle detections raised along this run (finding.hpp): violations that
  // concretely happened, and feasibility conditions for the engine to
  // solve. Empty unless an ExecObserver is attached to the executor.
  std::vector<OracleHit> oracle_hits;
  std::vector<OracleCandidate> oracle_candidates;
  ExitReason exit = ExitReason::kRunning;
  uint32_t exit_code = 0;
  uint64_t steps = 0;

  void clear() { *this = PathTrace{}; }
};

}  // namespace binsym::core
