#include "core/stats.hpp"

#include "support/format.hpp"

namespace binsym::core {

std::string BranchCoverage::report() const {
  std::string out = strprintf(
      "branch sites: %zu, fully covered (both directions): %zu\n",
      num_sites(), num_fully_covered());
  for (const auto& [pc, entry] : sites_) {
    out += strprintf("  %s  taken=%8llu  not-taken=%8llu%s\n",
                     hex32(pc).c_str(),
                     static_cast<unsigned long long>(entry.taken),
                     static_cast<unsigned long long>(entry.not_taken),
                     entry.both_directions() ? "" : "   <- one-sided");
  }
  return out;
}

}  // namespace binsym::core
