#include "core/stats.hpp"

#include "support/format.hpp"

namespace binsym::core {

std::string engine_stats_report(const EngineStats& stats) {
  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::string out = strprintf(
      "paths=%llu failures=%llu instructions=%llu workers=%u seconds=%.3f\n",
      u(stats.paths), u(stats.failures), u(stats.instructions), stats.workers,
      stats.seconds);
  out += strprintf(
      "flips: attempted=%llu feasible=%llu infeasible=%llu divergences=%llu "
      "max-depth=%llu peak-frontier=%llu\n",
      u(stats.flip_attempts), u(stats.feasible_flips),
      u(stats.infeasible_flips), u(stats.divergences),
      u(stats.max_branch_depth), u(stats.peak_frontier));
  const smt::SolverStats& s = stats.solver;
  out += strprintf(
      "solver[%s]: queries=%llu sat=%llu unsat=%llu unknown=%llu "
      "cache-hits=%llu cache-misses=%llu solve-time=%.3fs\n",
      stats.solver_name.c_str(), u(s.queries), u(s.sat), u(s.unsat),
      u(s.unknown), u(s.cache_hits), u(s.cache_misses), s.solve_seconds);
  // The solver-pipeline optimizations (engine.hpp): presolve hit rate,
  // constraints removed by independence slicing, and how much asserted
  // prefix the incremental scopes let each backend check reuse.
  out += strprintf(
      "opts: presolve-hits=%llu presolve-misses=%llu sliced-out=%llu "
      "incremental-checks=%llu reused-assertions=%llu (avg depth %.1f)\n",
      u(stats.presolve_hits), u(stats.presolve_misses),
      u(stats.sliced_constraints), u(s.incremental_checks),
      u(s.reused_assertions),
      s.incremental_checks
          ? static_cast<double>(s.reused_assertions) / s.incremental_checks
          : 0.0);
  // Snapshot/fork execution (snapshot.hpp): checkpoint reuse vs replay
  // fallback, pool pressure, and the physical copy-on-write cost. Elided
  // when snapshotting never ran (disabled, or a replay-only executor).
  if (stats.snapshot_hits || stats.snapshot_misses ||
      stats.snapshot_captures || stats.snapshot_evictions ||
      stats.snapshot_pages_copied) {
    out += strprintf(
        "snapshots: hits=%llu misses=%llu captures=%llu evictions=%llu "
        "pages-copied=%llu\n",
        u(stats.snapshot_hits), u(stats.snapshot_misses),
        u(stats.snapshot_captures), u(stats.snapshot_evictions),
        u(stats.snapshot_pages_copied));
  }
  // Bug-finding oracles (finding.hpp). Elided when no observer was
  // attached (all four counters zero).
  if (stats.findings || stats.finding_dupes || stats.candidates_checked ||
      stats.candidates_feasible) {
    out += strprintf(
        "oracles: findings=%llu dupes=%llu candidates=%llu feasible=%llu\n",
        u(stats.findings), u(stats.finding_dupes),
        u(stats.candidates_checked), u(stats.candidates_feasible));
  }
  // Static candidate pruning (EngineOptions::candidate_prune). Elided when
  // no prover was installed (all three counters zero); mismatches count
  // proven-yet-sat candidates seen in differential mode and must stay 0.
  if (stats.static_proved || stats.static_unknown || stats.static_mismatches) {
    out += strprintf("static: proved=%llu unknown=%llu mismatches=%llu\n",
                     u(stats.static_proved), u(stats.static_unknown),
                     u(stats.static_mismatches));
  }
  // Micro-op fast path (interp/uop.hpp). Elided when the fast path never
  // ran (disabled via uop_fastpath=false, or a spec-only executor).
  if (stats.uop_blocks_compiled || stats.uop_cache_hits ||
      stats.uop_guard_bails || stats.uop_invalidations ||
      stats.pages_clean_skipped) {
    out += strprintf(
        "uops: blocks=%llu hits=%llu bails=%llu invalidations=%llu "
        "clean-pages=%llu\n",
        u(stats.uop_blocks_compiled), u(stats.uop_cache_hits),
        u(stats.uop_guard_bails), u(stats.uop_invalidations),
        u(stats.pages_clean_skipped));
  }
  if (stats.query_nodes_total) {
    out += strprintf(
        "query-nodes: total=%llu max=%llu avg=%.1f\n",
        u(stats.query_nodes_total), u(stats.query_nodes_max),
        stats.flip_attempts
            ? static_cast<double>(stats.query_nodes_total) / stats.flip_attempts
            : 0.0);
  }
  // Expression arena (smt/context.hpp): nodes allocated across worker
  // contexts, builder calls answered by the intern table, and resident
  // arena + table bytes. Elided when no worker allocated a node.
  if (stats.exprs_interned || stats.intern_hits || stats.arena_bytes) {
    out += strprintf("intern: interned=%llu hits=%llu arena-bytes=%llu\n",
                     u(stats.exprs_interned), u(stats.intern_hits),
                     u(stats.arena_bytes));
  }
  // Solver portfolio (smt/portfolio.hpp): how many checks raced vs were
  // routed to a single member, loser checks cancelled, and decided checks
  // per winning backend. Elided when no portfolio ran (all counters zero).
  if (s.portfolio_races || s.portfolio_routed || s.portfolio_cancelled ||
      !s.portfolio_wins.empty()) {
    out += strprintf("portfolio: races=%llu routed=%llu cancelled=%llu wins=[",
                     u(s.portfolio_races), u(s.portfolio_routed),
                     u(s.portfolio_cancelled));
    bool first = true;
    for (const auto& [backend, wins] : s.portfolio_wins) {
      out += strprintf("%s%s=%llu", first ? "" : " ", backend.c_str(), u(wins));
      first = false;
    }
    out += "]\n";
  }
  // Persistent query/model store (smt/store.hpp). Elided when no store was
  // configured (all three counters zero).
  if (stats.store_hits || stats.store_misses || stats.store_entries) {
    out += strprintf("store: hits=%llu misses=%llu entries=%llu\n",
                     u(stats.store_hits), u(stats.store_misses),
                     u(stats.store_entries));
  }
  // Robustness machinery (docs/ROBUSTNESS.md): unknown-verdict accounting,
  // backend failover rescues, and crash-isolation bookkeeping. Elided on a
  // fully clean run (every counter zero).
  if (stats.queries_unknown || stats.flips_skipped_unknown ||
      stats.solver.failover_rescues || stats.worker_errors ||
      stats.jobs_requeued || stats.jobs_poisoned) {
    out += strprintf(
        "robust: queries-unknown=%llu skipped-unknown=%llu "
        "failover-rescues=%llu worker-errors=%llu requeued=%llu "
        "poisoned=%llu\n",
        u(stats.queries_unknown), u(stats.flips_skipped_unknown),
        u(stats.solver.failover_rescues), u(stats.worker_errors),
        u(stats.jobs_requeued), u(stats.jobs_poisoned));
  }
  // Partial-run marker: any budget stop or worker error flags the report so
  // "0 findings" can never be mistaken for "0 findings in a full search".
  if (stats.incomplete) {
    out += strprintf("incomplete: %s\n",
                     stats.incomplete_reason.empty()
                         ? "(unspecified)"
                         : stats.incomplete_reason.c_str());
  }
  return out;
}

std::string BranchCoverage::report() const {
  std::string out = strprintf(
      "branch sites: %zu, fully covered (both directions): %zu\n",
      num_sites(), num_fully_covered());
  for (const auto& [pc, entry] : sites_) {
    out += strprintf("  %s  taken=%8llu  not-taken=%8llu%s\n",
                     hex32(pc).c_str(),
                     static_cast<unsigned long long>(entry.taken),
                     static_cast<unsigned long long>(entry.not_taken),
                     entry.both_directions() ? "" : "   <- one-sided");
  }
  return out;
}

}  // namespace binsym::core
