#include "core/search.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "support/rng.hpp"

namespace binsym::core {

const char* search_kind_name(SearchKind kind) {
  switch (kind) {
    case SearchKind::kDepthFirst:     return "dfs";
    case SearchKind::kBreadthFirst:   return "bfs";
    case SearchKind::kRandomPath:     return "random";
    case SearchKind::kCoverageGuided: return "coverage";
  }
  return "?";
}

std::optional<SearchKind> parse_search_kind(std::string_view name) {
  if (name == "dfs") return SearchKind::kDepthFirst;
  if (name == "bfs") return SearchKind::kBreadthFirst;
  if (name == "random") return SearchKind::kRandomPath;
  if (name == "coverage") return SearchKind::kCoverageGuided;
  return std::nullopt;
}

const std::vector<SearchKind>& all_search_kinds() {
  static const std::vector<SearchKind> kinds = {
      SearchKind::kDepthFirst, SearchKind::kBreadthFirst,
      SearchKind::kRandomPath, SearchKind::kCoverageGuided};
  return kinds;
}

FlipJob make_flip_job(const smt::Context& ctx, const smt::Assignment& seed,
                      size_t bound, uint32_t flip_pc) {
  FlipJob job;
  job.bound = bound;
  job.flip_pc = flip_pc;
  job.seed.reserve(seed.values.size());
  for (const auto& [var_id, value] : seed.values) {
    const smt::VarInfo& info = ctx.var_info(var_id);
    job.seed.push_back(SeedEntry{info.name, info.width, value});
  }
  return job;
}

smt::Assignment seed_from_job(smt::Context& ctx, const FlipJob& job) {
  smt::Assignment seed;
  for (const SeedEntry& entry : job.seed)
    seed.set(ctx.var(entry.name, entry.width)->var_id, entry.value);
  return seed;
}

namespace {

class DepthFirstStrategy final : public SearchStrategy {
 public:
  const char* name() const override { return "dfs"; }
  void push(FlipJob job) override { jobs_.push_back(std::move(job)); }
  FlipJob pop() override {
    FlipJob job = std::move(jobs_.back());
    jobs_.pop_back();
    return job;
  }
  bool empty() const override { return jobs_.empty(); }
  size_t size() const override { return jobs_.size(); }

 private:
  std::vector<FlipJob> jobs_;
};

class BreadthFirstStrategy final : public SearchStrategy {
 public:
  const char* name() const override { return "bfs"; }
  void push(FlipJob job) override { jobs_.push_back(std::move(job)); }
  FlipJob pop() override {
    FlipJob job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }
  bool empty() const override { return jobs_.empty(); }
  size_t size() const override { return jobs_.size(); }

 private:
  std::deque<FlipJob> jobs_;
};

class RandomPathStrategy final : public SearchStrategy {
 public:
  explicit RandomPathStrategy(uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "random"; }
  void push(FlipJob job) override { jobs_.push_back(std::move(job)); }
  FlipJob pop() override {
    size_t index = static_cast<size_t>(rng_.below(jobs_.size()));
    std::swap(jobs_[index], jobs_.back());
    FlipJob job = std::move(jobs_.back());
    jobs_.pop_back();
    return job;
  }
  bool empty() const override { return jobs_.empty(); }
  size_t size() const override { return jobs_.size(); }

 private:
  Rng rng_;
  std::vector<FlipJob> jobs_;
};

// Prefer flips at branch sites the exploration has visited least: a cheap
// novelty heuristic (KLEE's covnew in spirit). Visit counts come from
// observe(); ties break on insertion order so the schedule is deterministic
// for a fixed arrival order.
//
// With static CfgHints the primary score becomes the CFG distance from the
// flip's basic block to the nearest block no observed path has touched yet
// (multi-source BFS over reverse edges, recomputed lazily when coverage
// grows); visit counts and insertion order stay as tie-breakers, and flips
// outside the static CFG sort last. Without hints — or once every block is
// covered — scoring degrades to the classic visit-count behavior.
class CoverageGuidedStrategy final : public SearchStrategy {
 public:
  explicit CoverageGuidedStrategy(std::shared_ptr<const CfgHints> hints)
      : hints_(std::move(hints)) {}

  const char* name() const override { return "coverage"; }
  void push(FlipJob job) override { jobs_.push_back(std::move(job)); }

  FlipJob pop() override {
    if (hints_ && distances_stale_) refresh_distances();
    size_t best = 0;
    uint32_t best_distance = distance(jobs_[0].flip_pc);
    uint64_t best_visits = visits(jobs_[0].flip_pc);
    for (size_t i = 1; i < jobs_.size(); ++i) {
      uint32_t d = distance(jobs_[i].flip_pc);
      uint64_t v = visits(jobs_[i].flip_pc);
      if (d < best_distance ||
          (d == best_distance &&
           (v < best_visits ||
            (v == best_visits && jobs_[i].seq < jobs_[best].seq)))) {
        best = i;
        best_distance = d;
        best_visits = v;
      }
    }
    FlipJob job = std::move(jobs_[best]);
    // Swap-with-back erase: selection always rescans, so element order is
    // immaterial and the O(n) tail shift (FlipJobs carry seed strings) can
    // be avoided.
    if (best + 1 != jobs_.size()) jobs_[best] = std::move(jobs_.back());
    jobs_.pop_back();
    return job;
  }

  bool empty() const override { return jobs_.empty(); }
  size_t size() const override { return jobs_.size(); }

  void observe(const PathTrace& trace) override {
    for (const BranchRecord& branch : trace.branches) {
      ++visits_[branch.pc];
      if (!hints_) continue;
      auto it = hints_->block_of_pc.find(branch.pc);
      if (it != hints_->block_of_pc.end() && covered_.insert(it->second).second)
        distances_stale_ = true;
    }
  }

 private:
  static constexpr uint32_t kFar = ~0u;

  uint64_t visits(uint32_t pc) const {
    auto it = visits_.find(pc);
    return it == visits_.end() ? 0 : it->second;
  }

  uint32_t distance(uint32_t pc) const {
    if (!hints_) return 0;  // pure visit-count mode: all distances tie
    auto it = hints_->block_of_pc.find(pc);
    return it != hints_->block_of_pc.end() ? distances_[it->second] : kFar;
  }

  /// distances_[b] = shortest forward path (in blocks) from b to any
  /// still-uncovered block: BFS from the uncovered set over reverse edges.
  void refresh_distances() {
    distances_.assign(hints_->num_blocks(), kFar);
    std::deque<uint32_t> queue;
    for (uint32_t block = 0; block < hints_->num_blocks(); ++block)
      if (!covered_.count(block)) {
        distances_[block] = 0;
        queue.push_back(block);
      }
    while (!queue.empty()) {
      uint32_t block = queue.front();
      queue.pop_front();
      for (uint32_t pred : hints_->preds[block])
        if (distances_[pred] == kFar) {
          distances_[pred] = distances_[block] + 1;
          queue.push_back(pred);
        }
    }
    distances_stale_ = false;
  }

  std::shared_ptr<const CfgHints> hints_;
  std::vector<FlipJob> jobs_;
  std::unordered_map<uint32_t, uint64_t> visits_;
  std::unordered_set<uint32_t> covered_;  // block ids an observed path hit
  std::vector<uint32_t> distances_;       // per block, kFar = can't reach
  bool distances_stale_ = true;
};

}  // namespace

std::unique_ptr<SearchStrategy> make_search_strategy(
    SearchKind kind, uint64_t rng_seed, std::shared_ptr<const CfgHints> hints) {
  switch (kind) {
    case SearchKind::kDepthFirst:
      return std::make_unique<DepthFirstStrategy>();
    case SearchKind::kBreadthFirst:
      return std::make_unique<BreadthFirstStrategy>();
    case SearchKind::kRandomPath:
      return std::make_unique<RandomPathStrategy>(rng_seed);
    case SearchKind::kCoverageGuided:
      return std::make_unique<CoverageGuidedStrategy>(std::move(hints));
  }
  return nullptr;
}

}  // namespace binsym::core
