// Executor abstraction + the BinSym executor.
//
// An Executor runs the program once, concolically, under a given input seed
// and fills a PathTrace. The DSE driver (engine.hpp) is generic over this
// interface; the four engines of the paper's evaluation are four executors:
//
//   BinSymExecutor      — interprets the formal spec DSL (this file),
//   IrExecutor          — lifts to the mini-IR, optimized  ("BINSEC-like"),
//   BoxedIrExecutor     — boxed, uncached IR interpretation ("angr-like"),
//   VpExecutor          — BinSym behind a modelled bus      ("SymEx-VP-like").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/path.hpp"
#include "interp/block_cache.hpp"
#include "interp/evaluator.hpp"
#include "interp/uop.hpp"
#include "isa/decoder.hpp"
#include "smt/context.hpp"
#include "spec/registry.hpp"

namespace binsym::core {

/// A byte-exact extent of valid guest memory, half-open: [lo, hi).
/// The out-of-bounds oracles (src/oracles) treat the union of a program's
/// regions (plus the engine-tracked stack, plus any registered MMIO
/// windows) as the only legal targets of a data access.
struct MemRegion {
  // Permission bits, ELF p_flags encoding (elf::kPfX/W/R match these).
  static constexpr uint32_t kExec = 1;
  static constexpr uint32_t kWrite = 2;
  static constexpr uint32_t kRead = 4;
  static constexpr uint32_t kAll = kRead | kWrite | kExec;

  uint32_t lo = 0;
  uint32_t hi = 0;
  /// RWX metadata from the loader (ELF p_flags). The dynamic bounds check
  /// (contains) deliberately ignores it — the machine has no MMU and the
  /// oracles only police extents — but the static analysis layer uses it
  /// to pick which segments to sweep for code vs. treat as data.
  uint32_t flags = kAll;

  /// True when the whole access [addr, addr + bytes) lies inside the
  /// region (bytes >= 1; wrap-around accesses are never contained).
  bool contains(uint32_t addr, unsigned bytes) const {
    return addr >= lo && addr < hi && hi - addr >= bytes;
  }
};

/// A loaded guest program: memory image + entry point + the loaded
/// segments' extents (the shadow bounds the out-of-bounds oracles check
/// against; filled from ELF PT_LOAD segments by elf::to_program and from
/// the raw loaders below).
struct Program {
  ConcreteMemory image;
  uint32_t entry = 0;
  std::vector<MemRegion> regions;

  /// Convenience: place raw words at an address (tests, examples). Both
  /// loaders record the written extent as a region with the given flags.
  void load_words(uint32_t addr, const std::vector<uint32_t>& words,
                  uint32_t flags = MemRegion::kAll);
  void load_bytes(uint32_t addr, const std::vector<uint8_t>& bytes,
                  uint32_t flags = MemRegion::kAll);
};

struct MachineConfig {
  uint32_t stack_top = 0x0010'0000;
  uint64_t max_steps = 10'000'000;
  /// Micro-op fast path (uop.hpp): compile straight-line runs to threaded
  /// micro-op blocks and execute them while all consumed operands are
  /// concrete. Off = pure per-instruction spec interpretation. Behavior is
  /// bit-identical either way; this only trades compile/cache overhead
  /// against per-instruction dispatch cost.
  bool uop_fastpath = true;
  /// Cached blocks per executor before the block cache flushes.
  uint32_t uop_cache_blocks = 4096;
};

struct Snapshot;
struct SnapshotPlan;

class Executor {
 public:
  virtual ~Executor() = default;
  virtual std::string name() const = 0;
  virtual smt::Context& context() = 0;
  /// Execute one concrete+symbolic run from the entry point.
  virtual void run(const smt::Assignment& seed, PathTrace& trace) = 0;
  /// Instructions retired across all runs (throughput statistics).
  virtual uint64_t instructions_retired() const = 0;

  // -- Bug-finding observer support (optional; see observer.hpp). ------------

  /// Whether set_observer() actually delivers events. Callers that need
  /// detections (explore --oracles) should warn when this is false.
  virtual bool supports_observer() const { return false; }

  /// Attach an ExecObserver for all subsequent runs (null detaches). The
  /// observer must outlive the executor's runs. Default: ignored.
  virtual void set_observer(ExecObserver* observer) { (void)observer; }

  // -- Snapshot/fork support (optional; see snapshot.hpp). -------------------
  //
  // Executors that can checkpoint their machine state override all four.
  // The engine only passes a SnapshotPlan when supports_snapshots() is
  // true, and falls back to run() whenever resume() declines. The defaults
  // make every executor a correct (replay-only) participant.

  /// Whether run_with_snapshots()/resume() actually checkpoint.
  virtual bool supports_snapshots() const { return false; }

  /// Like run(), additionally capturing copy-on-write checkpoints into
  /// `plan.sink` every `plan.interval` branch records (ascending depth).
  virtual void run_with_snapshots(const smt::Assignment& seed,
                                  PathTrace& trace, const SnapshotPlan& plan) {
    (void)plan;
    run(seed, trace);
  }

  /// Resume a run from `snap` under a new seed: restore + re-shadow the
  /// state, prefill `trace` with the snapshot's prefix, and execute from
  /// the checkpoint (capturing further checkpoints per `plan`). Returns
  /// false when this executor cannot resume (caller must run() instead).
  virtual bool resume(const Snapshot& snap, const smt::Assignment& seed,
                      PathTrace& trace, const SnapshotPlan& plan) {
    (void)snap, (void)seed, (void)trace, (void)plan;
    return false;
  }

  /// Pages physically duplicated by guest-memory copy-on-write breaks
  /// across all runs (0 for executors without CoW state).
  virtual uint64_t pages_copied() const { return 0; }

  /// Micro-op fast-path counters across all runs (all zero for executors
  /// without the fast path, or with it disabled).
  virtual interp::UopCounters uop_counters() const { return {}; }
};

/// The paper's engine: per-instruction interpretation of the formal
/// specification AST over the concolic machine.
class BinSymExecutor final : public Executor {
 public:
  BinSymExecutor(smt::Context& ctx, const isa::Decoder& decoder,
                 const spec::Registry& registry, const Program& program,
                 MachineConfig config = {});

  std::string name() const override { return "binsym"; }
  smt::Context& context() override { return ctx_; }
  void run(const smt::Assignment& seed, PathTrace& trace) override;
  uint64_t instructions_retired() const override { return retired_; }

  bool supports_snapshots() const override { return true; }
  void run_with_snapshots(const smt::Assignment& seed, PathTrace& trace,
                          const SnapshotPlan& plan) override;
  bool resume(const Snapshot& snap, const smt::Assignment& seed,
              PathTrace& trace, const SnapshotPlan& plan) override;
  uint64_t pages_copied() const override;
  interp::UopCounters uop_counters() const override {
    return {cache_.blocks_compiled(), cache_.cache_hits(), guard_bails_,
            cache_.invalidations(), machine_.memory().pages_clean_skipped()};
  }

  bool supports_observer() const override { return true; }
  void set_observer(ExecObserver* observer) override {
    observer_ = observer;
    machine_.set_observer(observer);
  }

  /// Per-retired-instruction observer (tracing/coverage tooling); called
  /// before the instruction's semantics execute. Keep it cheap.
  using TraceHook = std::function<void(uint32_t pc, const isa::Decoded&)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

 private:
  /// The interpretation loop shared by all three entry points; when `plan`
  /// is non-null, captures a checkpoint at every instruction boundary where
  /// the trace has reached `next_capture` branch records.
  void loop(const SnapshotPlan* plan, uint64_t next_capture);

  const interp::BlockCache::Block* lookup_or_compile(uint32_t pc);

  TraceHook trace_hook_;
  ExecObserver* observer_ = nullptr;
  smt::Context& ctx_;
  const isa::Decoder& decoder_;
  const spec::Registry& registry_;
  const Program& program_;
  MachineConfig config_;
  SymMachine machine_;
  interp::Evaluator<SymMachine> evaluator_;
  // Decode results are immutable per word; cache them (decode is shared
  // infrastructure, not part of the translation under comparison).
  std::unordered_map<uint32_t, isa::Decoded> decode_cache_;
  uint64_t retired_ = 0;
  interp::BlockCache cache_;
  uint64_t guard_bails_ = 0;
};

}  // namespace binsym::core
