// The static lint tier: findings provable from the load-time fixpoint
// alone, before a single instruction executes.
//
// Four rules, all emitted as core::Finding records with FindingOrigin::
// kStatic and the rule name set (surfaced by `analyze --lint` and
// `explore --static-lint`; never inserted into the engine's FindingLog,
// so dynamic finding sets are invariant under linting):
//
//   unreachable-block   — executable-segment code with no static path from
//                         the entry point (every workload's runtime `halt`
//                         spin lands here: exit never falls through);
//   no-path-to-reach    — a `reach()` marker site (li a7, 5; ecall) the
//                         exploration can statically never hit;
//   stack-imbalance     — a function whose `ret` executes with sp provably
//                         different from its entry value;
//   always-true-assert  — an assert(cond) whose condition is statically
//                         proven nonzero (the check is vacuous).
//
// Every rule except unreachable-block requires a *complete* analysis; the
// reachability sweep is also suppressed when incomplete, since unresolved
// control flow could reach anything.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/facts.hpp"
#include "core/finding.hpp"

namespace binsym::analysis {

/// Run every lint rule. Deterministic order: by rule, then by pc.
std::vector<core::Finding> run_lints(const core::Program& program,
                                     const AbsIntResult& result,
                                     const Cfg& cfg, const StaticFacts& facts,
                                     const isa::Decoder& decoder);

}  // namespace binsym::analysis
