#include "analysis/analysis.hpp"

namespace binsym::analysis {

StaticAnalysis StaticAnalysis::run(const core::Program& program,
                                   const isa::Decoder& decoder,
                                   const oracles::MemoryMap& map,
                                   const AbsIntOptions& options) {
  StaticAnalysis analysis;
  analysis.absint = abstract_interpret(program, decoder, options);
  analysis.cfg = build_cfg(analysis.absint, program.entry);
  analysis.facts = compute_facts(analysis.absint, map);
  return analysis;
}

std::function<bool(const core::OracleCandidate&)> StaticAnalysis::make_prune()
    const {
  auto shared = std::make_shared<const StaticFacts>(facts);
  return [shared](const core::OracleCandidate& c) {
    return shared->proves_safe(c.oracle, c.pc);
  };
}

std::shared_ptr<const core::CfgHints> StaticAnalysis::make_hints() const {
  auto hints = std::make_shared<core::CfgHints>();
  hints->block_of_pc = cfg.block_of_pc;
  hints->preds = cfg.preds;
  return hints;
}

}  // namespace binsym::analysis
