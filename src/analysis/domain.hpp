// Abstract value domain for the static analysis layer.
//
// AbsValue abstracts one 32-bit machine word as the reduced product of
// three classic abstractions:
//
//   * a small exact value set ("kset", <= kMaxSet members) — precise for
//     link registers, `la`/`li` results and resolved jump-table entries;
//   * an unsigned interval [lo, hi] — proves loads/stores in-bounds;
//   * known-bits (mask, value: the bits every concretization agrees on) —
//     proves alignment after `andi`-style masking.
//
// Every transfer function over-approximates the concrete RV32 operation:
// for all concrete x in gamma(a), y in gamma(b): op(x, y) in
// gamma(abs_op(a, b)). tests/test_analysis_domain.cpp checks exactly this
// against the golden concrete interpreter on randomized inputs; the
// soundness of every downstream proof (docs/ANALYSIS.md) reduces to it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace binsym::analysis {

struct AbsValue {
  static constexpr size_t kMaxSet = 8;

  // `set` is meaningful only when has_set; it is sorted and unique, and the
  // interval/known-bits components are then exactly derived from it by
  // normalize(). An empty set with has_set means bottom (unreachable).
  bool has_set = false;
  std::vector<uint32_t> set;
  uint32_t lo = 0;
  uint32_t hi = 0xffffffffu;
  uint32_t known_mask = 0;  // bits whose value is the same in every member
  uint32_t known_val = 0;   // their value (known_val & ~known_mask == 0)

  static AbsValue top();
  static AbsValue bottom();
  static AbsValue constant(uint32_t c);
  /// Exact abstraction of a finite set (drops to interval + known-bits,
  /// still computed exactly from the values, when it exceeds kMaxSet).
  static AbsValue from_values(std::vector<uint32_t> values);
  /// [lo, hi] with no bit information beyond the interval.
  static AbsValue range(uint32_t lo, uint32_t hi);

  bool is_bottom() const { return has_set && set.empty(); }
  bool is_top() const;
  bool is_constant() const { return has_set && set.size() == 1; }
  std::optional<uint32_t> as_constant() const;

  /// Whether `c` is a possible concretization.
  bool contains(uint32_t c) const;

  /// Canonicalize the product: derive components from the set when present,
  /// otherwise tighten interval and known-bits against each other.
  void normalize();

  bool operator==(const AbsValue& other) const;
};

/// Human rendering for `analyze --facts`: "bot", "top", "0x2a",
/// "{0x0,0x4}", or "[0x100,0x1ff]" with a " &0x3=0x0" known-bits suffix
/// when the mask adds information beyond the interval.
std::string abs_to_string(const AbsValue& v);

/// Least upper bound (set union while small, else component-wise hull).
AbsValue abs_join(const AbsValue& a, const AbsValue& b);

/// Widening join for loop heads: like abs_join, but an interval bound that
/// grew jumps straight to its extreme so fixpoints terminate. The set and
/// known-bits components are finite lattices and need no widening.
AbsValue abs_widen(const AbsValue& prev, const AbsValue& next);

// -- Transfer functions (all over-approximating, RV32 semantics). -------------

AbsValue abs_add(const AbsValue& a, const AbsValue& b);
AbsValue abs_sub(const AbsValue& a, const AbsValue& b);
AbsValue abs_and(const AbsValue& a, const AbsValue& b);
AbsValue abs_or(const AbsValue& a, const AbsValue& b);
AbsValue abs_xor(const AbsValue& a, const AbsValue& b);
AbsValue abs_mul(const AbsValue& a, const AbsValue& b);
AbsValue abs_mulh(const AbsValue& a, const AbsValue& b);
AbsValue abs_mulhsu(const AbsValue& a, const AbsValue& b);
AbsValue abs_mulhu(const AbsValue& a, const AbsValue& b);
// Shift amounts take the low 5 bits of `b` (RV32 semantics).
AbsValue abs_sll(const AbsValue& a, const AbsValue& b);
AbsValue abs_srl(const AbsValue& a, const AbsValue& b);
AbsValue abs_sra(const AbsValue& a, const AbsValue& b);
// RV32M division semantics: x/0 == ~0u (unsigned) or -1 (signed),
// x%0 == x, INT_MIN/-1 wraps.
AbsValue abs_divu(const AbsValue& a, const AbsValue& b);
AbsValue abs_remu(const AbsValue& a, const AbsValue& b);
AbsValue abs_div(const AbsValue& a, const AbsValue& b);
AbsValue abs_rem(const AbsValue& a, const AbsValue& b);
// Comparisons materialized as 0/1 register values (SLT family).
AbsValue abs_sltu(const AbsValue& a, const AbsValue& b);
AbsValue abs_slt(const AbsValue& a, const AbsValue& b);

/// Truth of a comparison, when the abstraction decides it: nullopt when
/// both outcomes are possible. `op` names follow the branch instructions.
enum class CmpOp { kEq, kNe, kLt, kGe, kLtu, kGeu };
std::optional<bool> abs_compare(CmpOp op, const AbsValue& a, const AbsValue& b);

/// Refine `v` under the assumption `v op c` is `taken` (c a constant);
/// used to sharpen branch arms. Returns a (possibly bottom) refinement —
/// always a superset of the concretizations that satisfy the assumption.
AbsValue abs_refine(const AbsValue& v, CmpOp op, uint32_t c, bool taken);

/// Greatest-lower-bound over-approximation (set filtering when either side
/// carries a set, else component-wise intersection). Exact for the
/// `==`-refinement below.
AbsValue abs_meet(const AbsValue& a, const AbsValue& b);

/// abs_refine generalized to an abstract rhs: an exact meet for `==`, a
/// bound refinement against rhs's extremes otherwise — what makes loops
/// with non-constant trip bounds (`blt t2, t1, …`) converge tightly.
AbsValue abs_refine(const AbsValue& v, CmpOp op, const AbsValue& rhs,
                    bool taken);

/// Mirror: refine the *right* operand `v` under the assumption that
/// `lhs op v` is `taken` (the blez/bgtz pattern compares against x0 on the
/// left).
AbsValue abs_refine_rhs(const AbsValue& lhs, CmpOp op, const AbsValue& v,
                        bool taken);

}  // namespace binsym::analysis
