// Abstract interpretation over a decoded guest program.
//
// A flow-sensitive fixpoint over per-instruction register states (entry
// state per reached pc), mirroring the concrete machine's reset contract:
// every register starts at 0 except sp = stack top (src/core/machine.cpp).
// Memory is modelled soundly at byte granularity in two tiers:
//
//   * the stack window [stack_top - stack_reserve, stack_top) travels
//     flow-sensitively *inside* the register state, so saved/restored link
//     registers stay exact and `ret` resolves through the abstract ra —
//     the same jal/jalr conventions the PR 5 shadow call stack classifies;
//   * all other memory is a flow-insensitive global byte map seeded from
//     the program image (absent bytes read as the image value, matching
//     ConcreteMemory's deterministic zero-fill), weakly updated by stores.
//
// Indirect control flow (jalr) resolves through the target's abstract
// value; any unresolved transfer, custom instruction or blown budget marks
// the result *incomplete*, and an incomplete analysis proves nothing
// (facts.hpp) — the soundness gate docs/ANALYSIS.md argues around.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/domain.hpp"
#include "core/executor.hpp"
#include "isa/decoder.hpp"

namespace binsym::analysis {

/// Abstract machine state at one program point: registers plus the
/// flow-sensitive stack-byte window (absent byte = program-image value).
struct RegState {
  std::array<AbsValue, 32> regs{};
  std::map<uint32_t, AbsValue> stack;  // stack byte address -> value in [0,255]
  bool stack_unknown = false;          // the whole window was clobbered

  bool operator==(const RegState& other) const {
    return stack_unknown == other.stack_unknown && regs == other.regs &&
           stack == other.stack;
  }
};

struct AbsIntOptions {
  uint32_t stack_top = 0x0010'0000;   // must match the engine's MachineConfig
  uint32_t stack_reserve = 64 * 1024; // must match MemoryMap::for_program
  uint64_t max_steps = 1 << 20;       // abstract-step budget before giving up
};

/// The converged fixpoint: everything downstream (facts, CFG, lint) is a
/// pure function of this result.
struct AbsIntResult {
  bool complete = false;           // every transfer resolved, budget respected
  std::string incomplete_reason;   // first cause, for reports

  std::unordered_map<uint32_t, RegState> states;    // entry state per pc
  std::unordered_map<uint32_t, isa::Decoded> code;  // decode per reached pc
  std::unordered_map<uint32_t, std::vector<uint32_t>> succs;

  // jal/jalr classification (the PR 5 shadow-call-stack conventions):
  std::unordered_set<uint32_t> call_sites;  // jal/jalr with rd == ra
  std::unordered_set<uint32_t> ret_sites;   // jalr x0, ra, 0
  std::unordered_set<uint32_t> exit_sites;  // ecall exit / ebreak / bad fetch

  bool reached(uint32_t pc) const { return states.count(pc) != 0; }
};

/// Run the fixpoint. The decoder must be the same table the engine uses
/// (custom instructions an analysis cannot model mark it incomplete).
AbsIntResult abstract_interpret(const core::Program& program,
                                const isa::Decoder& decoder,
                                const AbsIntOptions& options = {});

}  // namespace binsym::analysis
