// Umbrella for the static analysis subsystem: run everything once at load
// time, then hand the engine its three consumers.
//
//   StaticAnalysis a = StaticAnalysis::run(program, decoder, map);
//   options.candidate_prune = a.make_prune();   // skip proven-unsat queries
//   options.cfg_hints = a.make_hints();         // coverage distance scoring
//   for (auto& f : a.lint(program, decoder)) …  // load-time findings
//
// See docs/ANALYSIS.md for the domains, the fixpoint, each consumer's
// contract and the soundness argument.
#pragma once

#include <functional>
#include <memory>

#include "analysis/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/facts.hpp"
#include "analysis/lint.hpp"
#include "core/engine.hpp"

namespace binsym::analysis {

struct StaticAnalysis {
  AbsIntResult absint;
  Cfg cfg;
  StaticFacts facts;

  /// Run recovery + fixpoint + fact derivation. `map` must be the exact
  /// MemoryMap the oracles will check accesses against (same segments,
  /// same stack region, same extra windows), and `options.stack_top` must
  /// match the engine's MachineConfig — both are load-bearing for
  /// soundness. The decoder must be the engine's own table.
  static StaticAnalysis run(const core::Program& program,
                            const isa::Decoder& decoder,
                            const oracles::MemoryMap& map,
                            const AbsIntOptions& options = {});

  /// The static lint tier (empty when the fixpoint was incomplete).
  std::vector<core::Finding> lint(const core::Program& program,
                                  const isa::Decoder& decoder) const {
    return run_lints(program, absint, cfg, facts, decoder);
  }

  /// Candidate pre-prover for EngineOptions::candidate_prune. The returned
  /// callable owns an immutable copy of the facts (safe to call from every
  /// worker, and to outlive this object). Never wire it to the vp engine.
  std::function<bool(const core::OracleCandidate&)> make_prune() const;

  /// CFG shape for EngineOptions::cfg_hints (coverage-guided scoring).
  std::shared_ptr<const core::CfgHints> make_hints() const;
};

}  // namespace binsym::analysis
