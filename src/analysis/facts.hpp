// Per-instruction static facts + the candidate prover.
//
// A pure function of the abstract-interpretation fixpoint: for every
// reached instruction, the abstract address of its data access, the
// abstract divisor of its division, the abstract operands of every 32-bit
// add/sub/mul its semantics perform (the exact inventory the overflow
// oracle instruments), and the abstract assert condition at assert ecalls.
//
// proves_safe(kind, pc) answers "can any OracleCandidate of this kind at
// this pc ever be satisfiable?" — `true` means the engine may skip the
// solver query outright. Soundness argument (docs/ANALYSIS.md): a sat
// model of (path prefix ∧ cond) corresponds to a real concrete execution
// reaching `pc` with the faulting value among its registers, every such
// execution's state is inside the fixpoint's concretization, and the
// proof shows every concretization is safe. An incomplete analysis
// proves nothing, and a MemoryMap with extra (MMIO) regions must be the
// same map the oracles check against.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/absint.hpp"
#include "core/finding.hpp"
#include "oracles/memory_map.hpp"

namespace binsym::analysis {

/// One data access: `addr` is the abstract rs1 + imm at the access site.
struct MemAccessFact {
  AbsValue addr;
  unsigned bytes = 0;
  bool store = false;
};

/// One 32-bit add/sub/mul performed by an instruction's semantics —
/// including address computations, since the DSL evaluator (and thus the
/// overflow oracle) sees those through the same `add` operator.
struct ArithFact {
  char op = '+';  // '+', '-', '*'
  AbsValue a, b;
};

struct StaticFacts {
  /// False when the abstract interpretation was incomplete; every
  /// proves_safe() then answers false.
  bool complete = false;

  /// The oracle-side bounds regions (segments + stack + MMIO windows) the
  /// proofs check against — the single source shared with check_bounds().
  std::vector<core::MemRegion> regions;

  std::unordered_map<uint32_t, MemAccessFact> mem;          // loads/stores
  std::unordered_map<uint32_t, AbsValue> divisor;           // div/rem family
  std::unordered_map<uint32_t, std::vector<ArithFact>> arith;
  std::unordered_map<uint32_t, AbsValue> assert_cond;       // a0 at assert
  std::unordered_set<uint32_t> reach_sites;                 // reach ecalls

  /// True only when *no* candidate of `kind` raised at `pc` can be sat.
  /// kStackSmash / kBadJump / kReach are never proven.
  bool proves_safe(core::OracleKind kind, uint32_t pc) const;
};

/// Derive the facts from a converged fixpoint. `map` must be the exact
/// MemoryMap the oracle manager checks accesses against.
StaticFacts compute_facts(const AbsIntResult& result,
                          const oracles::MemoryMap& map);

}  // namespace binsym::analysis
