#include "analysis/facts.hpp"

#include <algorithm>

#include "core/syscalls.hpp"

namespace binsym::analysis {

namespace {

int64_t smin(const AbsValue& v) {
  if (v.has_set) {
    int64_t m = INT32_MAX;
    for (uint32_t x : v.set)
      m = std::min(m, static_cast<int64_t>(static_cast<int32_t>(x)));
    return m;
  }
  if (v.hi < 0x8000'0000u) return v.lo;  // all non-negative
  if (v.lo >= 0x8000'0000u) return static_cast<int32_t>(v.lo);  // all negative
  return INT32_MIN;  // straddles the sign wrap
}

int64_t smax(const AbsValue& v) {
  if (v.has_set) {
    int64_t m = INT32_MIN;
    for (uint32_t x : v.set)
      m = std::max(m, static_cast<int64_t>(static_cast<int32_t>(x)));
    return m;
  }
  if (v.hi < 0x8000'0000u) return v.hi;
  if (v.lo >= 0x8000'0000u) return static_cast<int32_t>(v.hi);
  return INT32_MAX;
}

int64_t arith_exact(char op, int64_t a, int64_t b) {
  return op == '+' ? a + b : op == '-' ? a - b : a * b;
}

/// Every concretization pair stays inside int32 under the signed op.
bool never_overflows(const ArithFact& fact) {
  const AbsValue& a = fact.a;
  const AbsValue& b = fact.b;
  if (a.is_bottom() || b.is_bottom()) return true;  // operation unreachable
  if (a.has_set && b.has_set && a.set.size() * b.set.size() <= 64) {
    for (uint32_t x : a.set)
      for (uint32_t y : b.set) {
        int64_t exact = arith_exact(fact.op, static_cast<int32_t>(x),
                                    static_cast<int32_t>(y));
        if (exact != static_cast<int32_t>(exact)) return false;
      }
    return true;
  }
  int64_t amin = smin(a), amax = smax(a);
  int64_t bmin = smin(b), bmax = smax(b);
  int64_t lo, hi;
  if (fact.op == '+') {
    lo = amin + bmin;
    hi = amax + bmax;
  } else if (fact.op == '-') {
    lo = amin - bmax;
    hi = amax - bmin;
  } else {
    int64_t corners[4] = {amin * bmin, amin * bmax, amax * bmin, amax * bmax};
    lo = *std::min_element(corners, corners + 4);
    hi = *std::max_element(corners, corners + 4);
  }
  return lo >= INT32_MIN && hi <= INT32_MAX;
}

/// Every concretization of `addr` keeps [addr, addr+bytes) inside one
/// region — the same predicate MemoryMap::contains answers per address.
bool always_in_bounds(const std::vector<core::MemRegion>& regions,
                      const AbsValue& addr, unsigned bytes) {
  if (addr.is_bottom()) return true;
  auto contains = [&](const core::MemRegion& r, uint32_t a) {
    return r.contains(a, bytes);
  };
  if (addr.has_set) {
    for (uint32_t a : addr.set) {
      bool ok = false;
      for (const core::MemRegion& r : regions)
        if (contains(r, a)) {
          ok = true;
          break;
        }
      if (!ok) return false;
    }
    return true;
  }
  // Interval: one region must contain the access at both extremes; every
  // address in between is then inside that same contiguous region.
  for (const core::MemRegion& r : regions)
    if (contains(r, addr.lo) && contains(r, addr.hi)) return true;
  return false;
}

/// Low `bytes-1` bits provably zero (normalize() derives known-bits
/// exactly from small sets, so this covers the kset case too).
bool always_aligned(const AbsValue& addr, unsigned bytes) {
  uint32_t mask = bytes - 1;
  return (addr.known_mask & mask) == mask && (addr.known_val & mask) == 0;
}

void add_facts_for(uint32_t pc, const isa::Decoded& d, const RegState& s,
                   StaticFacts& facts) {
  const uint32_t imm = d.immediate();
  AbsValue pc_v = AbsValue::constant(pc);
  auto arith = [&](char op, AbsValue a, AbsValue b) {
    facts.arith[pc].push_back(ArithFact{op, std::move(a), std::move(b)});
  };
  auto access = [&](unsigned bytes, bool store) {
    AbsValue addr = abs_add(s.regs[d.rs1()], AbsValue::constant(imm));
    arith('+', s.regs[d.rs1()], AbsValue::constant(imm));
    facts.mem.emplace(pc, MemAccessFact{std::move(addr), bytes, store});
  };

  if (d.id() >= isa::kNumBuiltinOps) return;  // incomplete gates all proofs
  switch (static_cast<isa::Op>(d.id())) {
    // The 32-bit add/sub/mul inventory below mirrors spec/rv32i.cpp and
    // spec/rv32m.cpp exactly: these are the DSL operations the overflow
    // oracle observes through on_binop (MULH runs at width 64 and SLT
    // compares without subtracting, so neither appears here).
    case isa::kAUIPC:
      arith('+', pc_v, AbsValue::constant(imm));
      return;
    case isa::kJAL:
      arith('+', pc_v, AbsValue::constant(d.size));
      arith('+', pc_v, AbsValue::constant(imm));
      return;
    case isa::kJALR:
      arith('+', s.regs[d.rs1()], AbsValue::constant(imm));
      arith('+', pc_v, AbsValue::constant(d.size));
      return;
    case isa::kBEQ:
    case isa::kBNE:
    case isa::kBLT:
    case isa::kBGE:
    case isa::kBLTU:
    case isa::kBGEU:
      arith('+', pc_v, AbsValue::constant(imm));
      return;

    case isa::kLB:
    case isa::kLBU:
      access(1, false);
      return;
    case isa::kLH:
    case isa::kLHU:
      access(2, false);
      return;
    case isa::kLW:
      access(4, false);
      return;
    case isa::kSB:
      access(1, true);
      return;
    case isa::kSH:
      access(2, true);
      return;
    case isa::kSW:
      access(4, true);
      return;

    case isa::kADDI:
      arith('+', s.regs[d.rs1()], AbsValue::constant(imm));
      return;
    case isa::kADD:
      arith('+', s.regs[d.rs1()], s.regs[d.rs2()]);
      return;
    case isa::kSUB:
      arith('-', s.regs[d.rs1()], s.regs[d.rs2()]);
      return;
    case isa::kMUL:
      arith('*', s.regs[d.rs1()], s.regs[d.rs2()]);
      return;

    case isa::kDIV:
    case isa::kDIVU:
    case isa::kREM:
    case isa::kREMU:
      facts.divisor.emplace(pc, s.regs[d.rs2()]);
      return;

    case isa::kECALL: {
      std::optional<uint32_t> number = s.regs[17].as_constant();  // a7
      if (number == core::kSysAssert)
        facts.assert_cond.emplace(pc, s.regs[10]);  // a0
      if (number == core::kSysReach) facts.reach_sites.insert(pc);
      return;
    }

    default:
      return;
  }
}

}  // namespace

StaticFacts compute_facts(const AbsIntResult& result,
                          const oracles::MemoryMap& map) {
  StaticFacts facts;
  facts.complete = result.complete;
  facts.regions = map.regions();
  for (const auto& [pc, state] : result.states) {
    auto it = result.code.find(pc);
    if (it != result.code.end()) add_facts_for(pc, it->second, state, facts);
  }
  return facts;
}

bool StaticFacts::proves_safe(core::OracleKind kind, uint32_t pc) const {
  if (!complete) return false;
  switch (kind) {
    case core::OracleKind::kOobLoad:
    case core::OracleKind::kOobStore: {
      auto it = mem.find(pc);
      return it != mem.end() &&
             it->second.store ==
                 (kind == core::OracleKind::kOobStore) &&
             always_in_bounds(regions, it->second.addr, it->second.bytes);
    }
    case core::OracleKind::kUnaligned: {
      auto it = mem.find(pc);
      return it != mem.end() && always_aligned(it->second.addr,
                                               it->second.bytes);
    }
    case core::OracleKind::kDivByZero: {
      auto it = divisor.find(pc);
      return it != divisor.end() && !it->second.contains(0);
    }
    case core::OracleKind::kOverflow: {
      auto it = arith.find(pc);
      if (it == arith.end()) return false;  // unmodelled op at this pc
      return std::all_of(it->second.begin(), it->second.end(),
                         never_overflows);
    }
    case core::OracleKind::kAssertFail: {
      auto it = assert_cond.find(pc);
      return it != assert_cond.end() && !it->second.contains(0);
    }
    // Never proven: stack-smash needs the exact call-return pairing, a
    // bad-jump candidate means resolution already failed, and reach is a
    // marker, not a safety property.
    case core::OracleKind::kStackSmash:
    case core::OracleKind::kBadJump:
    case core::OracleKind::kReach:
    case core::OracleKind::kNumOracleKinds:
      return false;
  }
  return false;
}

}  // namespace binsym::analysis
