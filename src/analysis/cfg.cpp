#include "analysis/cfg.hpp"

#include <algorithm>
#include <deque>

#include "isa/disasm.hpp"
#include "support/format.hpp"

namespace binsym::analysis {

namespace {

/// Reverse postorder over the block graph from the entry block.
std::vector<uint32_t> reverse_postorder(const Cfg& cfg) {
  std::vector<uint32_t> order;
  std::vector<uint8_t> state(cfg.blocks.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(cfg.entry_block, 0);
  state[cfg.entry_block] = 1;
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    if (next < cfg.succs[block].size()) {
      uint32_t succ = cfg.succs[block][next++];
      if (state[succ] == 0) {
        state[succ] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      state[block] = 2;
      order.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Cooper-Harvey-Kennedy iterative dominators.
void compute_idom(Cfg& cfg) {
  cfg.idom.assign(cfg.blocks.size(), Cfg::kNoBlock);
  if (cfg.entry_block == Cfg::kNoBlock) return;
  std::vector<uint32_t> rpo = reverse_postorder(cfg);
  std::vector<uint32_t> rpo_index(cfg.blocks.size(), Cfg::kNoBlock);
  for (uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;
  cfg.idom[cfg.entry_block] = cfg.entry_block;

  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = cfg.idom[a];
      while (rpo_index[b] > rpo_index[a]) b = cfg.idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t block : rpo) {
      if (block == cfg.entry_block) continue;
      uint32_t new_idom = Cfg::kNoBlock;
      for (uint32_t pred : cfg.preds[block]) {
        if (cfg.idom[pred] == Cfg::kNoBlock) continue;  // not yet processed
        new_idom = new_idom == Cfg::kNoBlock ? pred : intersect(new_idom, pred);
      }
      if (new_idom != Cfg::kNoBlock && cfg.idom[block] != new_idom) {
        cfg.idom[block] = new_idom;
        changed = true;
      }
    }
  }
  cfg.idom[cfg.entry_block] = Cfg::kNoBlock;  // the entry has no idom
}

void build_call_graph(Cfg& cfg, const AbsIntResult& result,
                      uint32_t entry_pc) {
  // Function entries: the program entry plus every target of a call edge.
  cfg.function_entries.insert(entry_pc);
  for (uint32_t call_pc : result.call_sites) {
    auto it = result.succs.find(call_pc);
    if (it == result.succs.end()) continue;
    for (uint32_t target : it->second) cfg.function_entries.insert(target);
  }

  // Partition blocks into functions: BFS from each entry over intra-
  // procedural edges (skip edges out of call sites and return sites).
  std::vector<uint32_t> entries(cfg.function_entries.begin(),
                                cfg.function_entries.end());
  std::sort(entries.begin(), entries.end());
  for (uint32_t entry : entries) {
    auto start = cfg.block_of_pc.find(entry);
    if (start == cfg.block_of_pc.end()) continue;
    std::deque<uint32_t> queue{start->second};
    while (!queue.empty()) {
      uint32_t block = queue.front();
      queue.pop_front();
      if (!cfg.function_of_block.emplace(block, entry).second) continue;
      uint32_t tail = cfg.blocks[block].last();
      if (result.call_sites.count(tail) || result.ret_sites.count(tail))
        continue;
      for (uint32_t succ : cfg.succs[block])
        if (!cfg.function_of_block.count(succ)) queue.push_back(succ);
    }
  }

  // Caller -> callee edges, deduplicated in discovery order.
  for (uint32_t call_pc : result.call_sites) {
    auto block = cfg.block_of_pc.find(call_pc);
    auto caller = block != cfg.block_of_pc.end()
                      ? cfg.function_of_block.find(block->second)
                      : cfg.function_of_block.end();
    if (caller == cfg.function_of_block.end()) continue;
    auto succ_it = result.succs.find(call_pc);
    if (succ_it == result.succs.end()) continue;
    std::vector<uint32_t>& callees = cfg.call_edges[caller->second];
    for (uint32_t target : succ_it->second)
      if (std::find(callees.begin(), callees.end(), target) == callees.end())
        callees.push_back(target);
  }
}

}  // namespace

Cfg build_cfg(const AbsIntResult& result, uint32_t entry_pc) {
  Cfg cfg;
  if (!result.reached(entry_pc)) return cfg;

  // Fallthrough target of each pc (for leader classification).
  auto fallthrough = [&](uint32_t pc) -> uint32_t {
    auto it = result.code.find(pc);
    return it != result.code.end() ? pc + it->second.size : pc;
  };

  // Predecessor counts + the single predecessor where there is one.
  std::unordered_map<uint32_t, uint32_t> pred_count;
  std::unordered_map<uint32_t, uint32_t> single_pred;
  for (const auto& [pc, succs] : result.succs)
    for (uint32_t succ : succs) {
      if (++pred_count[succ] == 1)
        single_pred[succ] = pc;
      else
        single_pred.erase(succ);
    }

  // A pc is a leader unless it is the pure fallthrough of its unique
  // predecessor (which itself transfers nowhere else).
  auto is_leader = [&](uint32_t pc) {
    if (pc == entry_pc) return true;
    auto count = pred_count.find(pc);
    if (count == pred_count.end() || count->second != 1) return true;
    uint32_t pred = single_pred.at(pc);
    auto pred_succs = result.succs.find(pred);
    return pred_succs->second.size() != 1 || fallthrough(pred) != pc;
  };

  std::vector<uint32_t> leaders;
  for (const auto& [pc, state] : result.states)
    if (is_leader(pc)) leaders.push_back(pc);
  std::sort(leaders.begin(), leaders.end());
  std::unordered_set<uint32_t> leader_set(leaders.begin(), leaders.end());

  // Grow each block along its fallthrough chain until the next leader or
  // a control transfer.
  for (uint32_t leader : leaders) {
    BasicBlock block;
    uint32_t pc = leader;
    while (true) {
      block.pcs.push_back(pc);
      cfg.block_of_pc.emplace(pc, static_cast<uint32_t>(cfg.blocks.size()));
      auto succs = result.succs.find(pc);
      if (succs == result.succs.end() || succs->second.size() != 1) break;
      uint32_t next = succs->second[0];
      if (next != fallthrough(pc) || leader_set.count(next)) break;
      pc = next;
    }
    cfg.blocks.push_back(std::move(block));
  }
  cfg.entry_block = cfg.block_of_pc.at(entry_pc);

  // Block-level edges (every successor of a block tail is a leader).
  cfg.succs.resize(cfg.blocks.size());
  cfg.preds.resize(cfg.blocks.size());
  for (uint32_t block = 0; block < cfg.blocks.size(); ++block) {
    auto succs = result.succs.find(cfg.blocks[block].last());
    if (succs == result.succs.end()) continue;
    for (uint32_t succ_pc : succs->second) {
      uint32_t succ = cfg.block_of_pc.at(succ_pc);
      cfg.succs[block].push_back(succ);
      cfg.preds[succ].push_back(block);
    }
  }

  compute_idom(cfg);
  build_call_graph(cfg, result, entry_pc);
  return cfg;
}

bool Cfg::dominates(uint32_t a, uint32_t b) const {
  while (b != kNoBlock) {
    if (a == b) return true;
    b = idom[b];
  }
  return false;
}

std::vector<uint32_t> Cfg::distances_to(
    const std::vector<uint32_t>& targets) const {
  std::vector<uint32_t> dist(blocks.size(), kUnreachable);
  std::deque<uint32_t> queue;
  for (uint32_t target : targets)
    if (target < blocks.size() && dist[target] == kUnreachable) {
      dist[target] = 0;
      queue.push_back(target);
    }
  while (!queue.empty()) {
    uint32_t block = queue.front();
    queue.pop_front();
    for (uint32_t pred : preds[block])
      if (dist[pred] == kUnreachable) {
        dist[pred] = dist[block] + 1;
        queue.push_back(pred);
      }
  }
  return dist;
}

std::vector<uint32_t> Cfg::reverse_reachable(uint32_t block) const {
  std::vector<uint32_t> dist = distances_to({block});
  std::vector<uint32_t> result;
  for (uint32_t b = 0; b < dist.size(); ++b)
    if (dist[b] != kUnreachable) result.push_back(b);
  return result;
}

std::string cfg_to_dot(const Cfg& cfg, const AbsIntResult& result) {
  std::string out = "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  for (uint32_t block = 0; block < cfg.blocks.size(); ++block) {
    std::string label;
    for (uint32_t pc : cfg.blocks[block].pcs) {
      auto code = result.code.find(pc);
      label += strprintf("%s: %s\\l", hex32(pc).c_str(),
                         code != result.code.end()
                             ? isa::disassemble(code->second, pc).c_str()
                             : "?");
    }
    bool is_entry = cfg.function_entries.count(cfg.blocks[block].first()) != 0;
    out += strprintf("  b%u [label=\"%s\"%s];\n", block, label.c_str(),
                     is_entry ? ", style=filled, fillcolor=lightgrey" : "");
  }
  for (uint32_t block = 0; block < cfg.blocks.size(); ++block) {
    uint32_t tail = cfg.blocks[block].last();
    bool is_call = result.call_sites.count(tail) != 0;
    bool is_ret = result.ret_sites.count(tail) != 0;
    for (uint32_t succ : cfg.succs[block])
      out += strprintf("  b%u -> b%u%s;\n", block, succ,
                       is_call || is_ret ? " [style=dashed]" : "");
  }
  out += "}\n";
  return out;
}

}  // namespace binsym::analysis
