#include "analysis/domain.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace binsym::analysis {

namespace {

constexpr uint32_t kSignBit = 0x8000'0000u;

/// Smallest/largest signed value consistent with the unsigned interval.
/// A [lo, hi] interval that straddles a signed extreme contains it.
int64_t smin(const AbsValue& v) {
  if (v.lo <= kSignBit && v.hi >= kSignBit) return INT32_MIN;
  return static_cast<int32_t>(v.lo);
}
int64_t smax(const AbsValue& v) {
  if (v.lo <= 0x7fff'ffffu && v.hi >= 0x7fff'ffffu) return INT32_MAX;
  return static_cast<int32_t>(v.hi);
}

/// Exact product evaluation when both operands carry small sets: apply the
/// concrete operation to every pair. The result is exact, not approximate.
template <typename F>
std::optional<AbsValue> set_product(const AbsValue& a, const AbsValue& b,
                                    F&& op) {
  if (!a.has_set || !b.has_set) return std::nullopt;
  if (a.set.size() * b.set.size() > 64) return std::nullopt;
  std::vector<uint32_t> out;
  out.reserve(a.set.size() * b.set.size());
  for (uint32_t x : a.set)
    for (uint32_t y : b.set) out.push_back(op(x, y));
  return AbsValue::from_values(std::move(out));
}

/// Ripple-carry known-bits for a + b + carry_in, stopping at the first
/// unknown bit (everything above an unknown carry is unknown).
void known_bits_add(const AbsValue& a, const AbsValue& b, uint32_t carry_in,
                    AbsValue* r) {
  uint32_t carry = carry_in, mask = 0, val = 0;
  for (unsigned i = 0; i < 32; ++i) {
    uint32_t bit = 1u << i;
    if (!(a.known_mask & bit) || !(b.known_mask & bit)) break;
    uint32_t ab = (a.known_val >> i) & 1, bb = (b.known_val >> i) & 1;
    uint32_t sum = ab ^ bb ^ carry;
    carry = (ab & bb) | (carry & (ab | bb));
    mask |= bit;
    val |= sum << i;
  }
  r->known_mask = mask;
  r->known_val = val;
}

/// Number of low-order bits known to be zero.
unsigned trailing_known_zeros(const AbsValue& v) {
  uint32_t zeros = v.known_mask & ~v.known_val;
  return static_cast<unsigned>(std::countr_one(zeros));
}

// Concrete RV32M division semantics (set_product callbacks).
uint32_t conc_divu(uint32_t x, uint32_t y) { return y == 0 ? ~0u : x / y; }
uint32_t conc_remu(uint32_t x, uint32_t y) { return y == 0 ? x : x % y; }
uint32_t conc_div(uint32_t x, uint32_t y) {
  int32_t sx = static_cast<int32_t>(x), sy = static_cast<int32_t>(y);
  if (sy == 0) return ~0u;
  if (sx == INT32_MIN && sy == -1) return x;  // wraps, like bvsdiv
  return static_cast<uint32_t>(sx / sy);
}
uint32_t conc_rem(uint32_t x, uint32_t y) {
  int32_t sx = static_cast<int32_t>(x), sy = static_cast<int32_t>(y);
  if (sy == 0) return x;
  if (sx == INT32_MIN && sy == -1) return 0;
  return static_cast<uint32_t>(sx % sy);
}

}  // namespace

AbsValue AbsValue::top() { return AbsValue{}; }

AbsValue AbsValue::bottom() {
  AbsValue r;
  r.has_set = true;
  return r;
}

AbsValue AbsValue::constant(uint32_t c) {
  AbsValue r;
  r.has_set = true;
  r.set = {c};
  r.lo = r.hi = c;
  r.known_mask = ~0u;
  r.known_val = c;
  return r;
}

AbsValue AbsValue::from_values(std::vector<uint32_t> values) {
  if (values.empty()) return bottom();
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  AbsValue r;
  r.lo = values.front();
  r.hi = values.back();
  uint32_t agree = ~0u;
  for (uint32_t v : values) agree &= ~(v ^ values.front());
  r.known_mask = agree;
  r.known_val = values.front() & agree;
  if (values.size() <= kMaxSet) {
    r.has_set = true;
    r.set = std::move(values);
  }
  return r;
}

AbsValue AbsValue::range(uint32_t lo, uint32_t hi) {
  AbsValue r;
  r.lo = lo;
  r.hi = hi;
  r.normalize();
  return r;
}

bool AbsValue::is_top() const {
  return !has_set && lo == 0 && hi == ~0u && known_mask == 0;
}

std::optional<uint32_t> AbsValue::as_constant() const {
  if (is_constant()) return set.front();
  return std::nullopt;
}

bool AbsValue::contains(uint32_t c) const {
  if (has_set) return std::binary_search(set.begin(), set.end(), c);
  return c >= lo && c <= hi && (c & known_mask) == known_val;
}

void AbsValue::normalize() {
  if (has_set) {
    // The components are derived exactly from the set; from_values is the
    // single implementation of that derivation.
    *this = from_values(std::move(set));
    return;
  }
  // Tighten the interval by the known bits: the smallest consistent value
  // sets every unknown bit to 0, the largest sets every unknown bit to 1.
  uint32_t minv = known_val;
  uint32_t maxv = known_val | ~known_mask;
  if (lo < minv) lo = minv;
  if (hi > maxv) hi = maxv;
  if (lo > hi) {
    *this = bottom();
    return;
  }
  if (lo == hi) {
    *this = constant(lo);
    return;
  }
  // Derive known bits from the interval: every bit above the highest
  // differing bit of lo and hi is common to the whole range.
  unsigned width = static_cast<unsigned>(std::bit_width(lo ^ hi));
  uint32_t prefix = width >= 32 ? 0 : (~0u << width);
  known_mask |= prefix;
  known_val |= lo & prefix;
}

bool AbsValue::operator==(const AbsValue& other) const {
  return has_set == other.has_set && set == other.set && lo == other.lo &&
         hi == other.hi && known_mask == other.known_mask &&
         known_val == other.known_val;
}

AbsValue abs_join(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  if (a.has_set && b.has_set) {
    std::vector<uint32_t> merged = a.set;
    merged.insert(merged.end(), b.set.begin(), b.set.end());
    return AbsValue::from_values(std::move(merged));
  }
  AbsValue r;
  r.lo = std::min(a.lo, b.lo);
  r.hi = std::max(a.hi, b.hi);
  uint32_t agree = a.known_mask & b.known_mask & ~(a.known_val ^ b.known_val);
  r.known_mask = agree;
  r.known_val = a.known_val & agree;
  r.normalize();
  return r;
}

AbsValue abs_widen(const AbsValue& prev, const AbsValue& next) {
  AbsValue j = abs_join(prev, next);
  if (j == prev) return prev;
  if (!j.has_set) {
    // Interval bounds that moved jump to their extremes; the set and
    // known-bits components are finite and left to plain joins.
    if (j.lo < prev.lo) j.lo = 0;
    if (j.hi > prev.hi) j.hi = ~0u;
    j.normalize();
  }
  return j;
}

AbsValue abs_add(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) { return x + y; }))
    return *r;
  AbsValue r;
  r.has_set = false;
  uint64_t lo = static_cast<uint64_t>(a.lo) + b.lo;
  uint64_t hi = static_cast<uint64_t>(a.hi) + b.hi;
  if (hi <= 0xffff'ffffu) {
    r.lo = static_cast<uint32_t>(lo);
    r.hi = static_cast<uint32_t>(hi);
  }
  known_bits_add(a, b, 0, &r);
  r.normalize();
  return r;
}

AbsValue abs_sub(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) { return x - y; }))
    return *r;
  AbsValue r;
  r.has_set = false;
  if (a.lo >= b.hi) {  // no unsigned wrap possible
    r.lo = a.lo - b.hi;
    r.hi = a.hi - b.lo;
  }
  // a - b == a + ~b + 1 with ~b's known bits complemented.
  AbsValue nb = b;
  nb.known_val = ~b.known_val & b.known_mask;
  known_bits_add(a, nb, 1, &r);
  r.normalize();
  return r;
}

AbsValue abs_and(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) { return x & y; }))
    return *r;
  AbsValue r;
  r.has_set = false;
  uint32_t zero = (a.known_mask & ~a.known_val) | (b.known_mask & ~b.known_val);
  uint32_t one = (a.known_mask & a.known_val) & (b.known_mask & b.known_val);
  r.known_mask = zero | one;
  r.known_val = one;
  r.lo = 0;
  r.hi = std::min(a.hi, b.hi);
  r.normalize();
  return r;
}

AbsValue abs_or(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) { return x | y; }))
    return *r;
  AbsValue r;
  r.has_set = false;
  uint32_t zero = (a.known_mask & ~a.known_val) & (b.known_mask & ~b.known_val);
  uint32_t one = (a.known_mask & a.known_val) | (b.known_mask & b.known_val);
  r.known_mask = zero | one;
  r.known_val = one;
  r.lo = std::max(a.lo, b.lo);
  r.normalize();
  return r;
}

AbsValue abs_xor(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) { return x ^ y; }))
    return *r;
  AbsValue r;
  r.has_set = false;
  r.known_mask = a.known_mask & b.known_mask;
  r.known_val = (a.known_val ^ b.known_val) & r.known_mask;
  r.normalize();
  return r;
}

AbsValue abs_mul(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) { return x * y; }))
    return *r;
  AbsValue r;
  r.has_set = false;
  uint64_t hi = static_cast<uint64_t>(a.hi) * b.hi;
  if (hi <= 0xffff'ffffu) {
    r.lo = a.lo * b.lo;
    r.hi = static_cast<uint32_t>(hi);
  }
  // Trailing zeros of the factors add up in the product.
  unsigned tz = std::min(32u, trailing_known_zeros(a) + trailing_known_zeros(b));
  if (tz > 0) {
    uint32_t mask = tz >= 32 ? ~0u : ((1u << tz) - 1);
    r.known_mask |= mask;
    r.known_val &= ~mask;
  }
  r.normalize();
  return r;
}

AbsValue abs_mulh(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) {
        int64_t p = static_cast<int64_t>(static_cast<int32_t>(x)) *
                    static_cast<int32_t>(y);
        return static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32);
      }))
    return *r;
  return AbsValue::top();
}

AbsValue abs_mulhsu(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) {
        int64_t p = static_cast<int64_t>(static_cast<int32_t>(x)) *
                    static_cast<int64_t>(y);
        return static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32);
      }))
    return *r;
  return AbsValue::top();
}

AbsValue abs_mulhu(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) {
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(x) * y) >> 32);
      }))
    return *r;
  AbsValue r;
  r.has_set = false;
  r.lo = 0;
  r.hi = static_cast<uint32_t>((static_cast<uint64_t>(a.hi) * b.hi) >> 32);
  r.normalize();
  return r;
}

AbsValue abs_sll(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(
          a, b, [](uint32_t x, uint32_t y) { return x << (y & 31); }))
    return *r;
  if (auto c = b.as_constant()) {
    unsigned sh = *c & 31;
    AbsValue r;
    r.has_set = false;
    if ((static_cast<uint64_t>(a.hi) << sh) <= 0xffff'ffffu) {
      r.lo = a.lo << sh;
      r.hi = a.hi << sh;
    }
    r.known_mask = (a.known_mask << sh) | ((1u << sh) - 1);
    r.known_val = a.known_val << sh;
    r.normalize();
    return r;
  }
  if (b.has_set) {
    AbsValue r = AbsValue::bottom();
    for (uint32_t sh : b.set) r = abs_join(r, abs_sll(a, AbsValue::constant(sh)));
    return r;
  }
  // Unknown amount: shifting left can only keep or grow the run of known
  // zero low bits.
  AbsValue r;
  r.has_set = false;
  unsigned tz = trailing_known_zeros(a);
  if (tz > 0 && tz < 32) {
    r.known_mask = (1u << tz) - 1;
    r.known_val = 0;
  }
  r.normalize();
  return r;
}

AbsValue abs_srl(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(
          a, b, [](uint32_t x, uint32_t y) { return x >> (y & 31); }))
    return *r;
  if (auto c = b.as_constant()) {
    unsigned sh = *c & 31;
    AbsValue r;
    r.has_set = false;
    r.lo = a.lo >> sh;
    r.hi = a.hi >> sh;
    r.known_mask = (a.known_mask >> sh) | (sh ? (~0u << (32 - sh)) : 0);
    r.known_val = a.known_val >> sh;
    r.normalize();
    return r;
  }
  if (b.has_set) {
    AbsValue r = AbsValue::bottom();
    for (uint32_t sh : b.set) r = abs_join(r, abs_srl(a, AbsValue::constant(sh)));
    return r;
  }
  AbsValue r;
  r.has_set = false;
  r.lo = 0;
  r.hi = a.hi;  // logical right shift never increases the value
  r.normalize();
  return r;
}

AbsValue abs_sra(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, [](uint32_t x, uint32_t y) {
        return static_cast<uint32_t>(static_cast<int32_t>(x) >> (y & 31));
      }))
    return *r;
  bool sign_known_zero =
      (a.known_mask & kSignBit) && !(a.known_val & kSignBit);
  if (sign_known_zero) return abs_srl(a, b);  // non-negative: same result
  if (auto c = b.as_constant()) {
    unsigned sh = *c & 31;
    bool sign_known_one =
        (a.known_mask & kSignBit) && (a.known_val & kSignBit);
    AbsValue r;
    r.has_set = false;
    r.known_mask = a.known_mask >> sh;
    r.known_val = a.known_val >> sh;
    if (sign_known_one && sh > 0) {
      uint32_t fill = ~0u << (32 - sh);
      r.known_mask |= fill;
      r.known_val |= fill;
    }
    r.normalize();
    return r;
  }
  return AbsValue::top();
}

AbsValue abs_divu(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, conc_divu)) return *r;
  if (!b.contains(0)) {
    uint32_t blo = std::max(b.lo, 1u);
    return AbsValue::range(a.lo / b.hi, a.hi / blo);
  }
  return AbsValue::top();  // quotient range joined with the x/0 == ~0 case
}

AbsValue abs_remu(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, conc_remu)) return *r;
  if (!b.contains(0)) return AbsValue::range(0, std::min(b.hi - 1, a.hi));
  // x % 0 == x, so the dividend's own range joins in.
  return AbsValue::range(0, std::max(a.hi, b.hi == 0 ? 0 : b.hi - 1));
}

AbsValue abs_div(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, conc_div)) return *r;
  return AbsValue::top();
}

AbsValue abs_rem(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto r = set_product(a, b, conc_rem)) return *r;
  return AbsValue::top();
}

AbsValue abs_sltu(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto d = abs_compare(CmpOp::kLtu, a, b))
    return AbsValue::constant(*d ? 1 : 0);
  return AbsValue::range(0, 1);
}

AbsValue abs_slt(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto d = abs_compare(CmpOp::kLt, a, b))
    return AbsValue::constant(*d ? 1 : 0);
  return AbsValue::range(0, 1);
}

std::optional<bool> abs_compare(CmpOp op, const AbsValue& a,
                                const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return std::nullopt;
  switch (op) {
    case CmpOp::kEq: {
      auto ca = a.as_constant(), cb = b.as_constant();
      if (ca && cb) return *ca == *cb;
      // Disjoint by interval or by a conflicting known bit: never equal.
      if (a.hi < b.lo || b.hi < a.lo) return false;
      if ((a.known_mask & b.known_mask) & (a.known_val ^ b.known_val))
        return false;
      if (a.has_set && b.has_set) {
        std::vector<uint32_t> inter;
        std::set_intersection(a.set.begin(), a.set.end(), b.set.begin(),
                              b.set.end(), std::back_inserter(inter));
        if (inter.empty()) return false;
      }
      return std::nullopt;
    }
    case CmpOp::kNe: {
      auto eq = abs_compare(CmpOp::kEq, a, b);
      if (eq) return !*eq;
      return std::nullopt;
    }
    case CmpOp::kLtu:
      if (a.hi < b.lo) return true;
      if (a.lo >= b.hi) return false;
      return std::nullopt;
    case CmpOp::kGeu: {
      auto lt = abs_compare(CmpOp::kLtu, a, b);
      if (lt) return !*lt;
      return std::nullopt;
    }
    case CmpOp::kLt:
      if (smax(a) < smin(b)) return true;
      if (smin(a) >= smax(b)) return false;
      return std::nullopt;
    case CmpOp::kGe: {
      auto lt = abs_compare(CmpOp::kLt, a, b);
      if (lt) return !*lt;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

AbsValue abs_refine(const AbsValue& v, CmpOp op, uint32_t c, bool taken) {
  if (v.is_bottom()) return v;
  // Normalize to the assumption that holds: "v op' c" with op' the taken
  // direction.
  CmpOp eff = op;
  if (!taken) {
    switch (op) {
      case CmpOp::kEq: eff = CmpOp::kNe; break;
      case CmpOp::kNe: eff = CmpOp::kEq; break;
      case CmpOp::kLt: eff = CmpOp::kGe; break;
      case CmpOp::kGe: eff = CmpOp::kLt; break;
      case CmpOp::kLtu: eff = CmpOp::kGeu; break;
      case CmpOp::kGeu: eff = CmpOp::kLtu; break;
    }
  }
  auto holds = [&](uint32_t x) {
    int64_t sx = static_cast<int32_t>(x), sc = static_cast<int32_t>(c);
    switch (eff) {
      case CmpOp::kEq: return x == c;
      case CmpOp::kNe: return x != c;
      case CmpOp::kLt: return sx < sc;
      case CmpOp::kGe: return sx >= sc;
      case CmpOp::kLtu: return x < c;
      case CmpOp::kGeu: return x >= c;
    }
    return true;
  };
  if (v.has_set) {  // exact filter
    std::vector<uint32_t> kept;
    for (uint32_t x : v.set)
      if (holds(x)) kept.push_back(x);
    return AbsValue::from_values(std::move(kept));
  }
  AbsValue r = v;
  switch (eff) {
    case CmpOp::kEq:
      return v.contains(c) ? AbsValue::constant(c) : AbsValue::bottom();
    case CmpOp::kNe:
      if (r.lo == c && r.lo < r.hi) ++r.lo;
      if (r.hi == c && r.hi > r.lo) --r.hi;
      break;
    case CmpOp::kLtu:
      if (c == 0) return AbsValue::bottom();
      r.hi = std::min(r.hi, c - 1);
      break;
    case CmpOp::kGeu:
      r.lo = std::max(r.lo, c);
      break;
    case CmpOp::kLt:
      // Only refine when both sides stay in the non-negative signed range,
      // where signed and unsigned order agree.
      if (v.hi < kSignBit && c < kSignBit) {
        if (c == 0) return AbsValue::bottom();
        r.hi = std::min(r.hi, c - 1);
      }
      break;
    case CmpOp::kGe:
      if (v.hi < kSignBit && c < kSignBit) r.lo = std::max(r.lo, c);
      break;
  }
  if (r.lo > r.hi) return AbsValue::bottom();
  r.normalize();
  return r;
}

namespace {

CmpOp negate_op(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kGe: return CmpOp::kLt;
    case CmpOp::kLtu: return CmpOp::kGeu;
    case CmpOp::kGeu: return CmpOp::kLtu;
  }
  return op;
}

}  // namespace

AbsValue abs_meet(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (a.has_set) {
    std::vector<uint32_t> kept;
    for (uint32_t x : a.set)
      if (b.contains(x)) kept.push_back(x);
    return AbsValue::from_values(std::move(kept));
  }
  if (b.has_set) return abs_meet(b, a);
  if ((a.known_val ^ b.known_val) & a.known_mask & b.known_mask)
    return AbsValue::bottom();
  AbsValue r;
  r.lo = std::max(a.lo, b.lo);
  r.hi = std::min(a.hi, b.hi);
  if (r.lo > r.hi) return AbsValue::bottom();
  r.known_mask = a.known_mask | b.known_mask;
  r.known_val = a.known_val | b.known_val;
  r.normalize();
  return r;
}

AbsValue abs_refine(const AbsValue& v, CmpOp op, const AbsValue& rhs,
                    bool taken) {
  if (v.is_bottom() || rhs.is_bottom()) return AbsValue::bottom();
  if (auto c = rhs.as_constant()) return abs_refine(v, op, *c, taken);
  CmpOp eff = taken ? op : negate_op(op);
  switch (eff) {
    case CmpOp::kEq:
      return abs_meet(v, rhs);
    case CmpOp::kNe:
      return v;  // a non-constant rhs rules out no single value
    case CmpOp::kLt: {
      // v < rhs ≤ smax(rhs), so v < smax(rhs).
      int64_t ub = smax(rhs);
      if (ub == INT32_MIN) return AbsValue::bottom();
      return abs_refine(v, CmpOp::kLt, static_cast<uint32_t>(ub), true);
    }
    case CmpOp::kGe:
      // v ≥ rhs ≥ smin(rhs).
      return abs_refine(v, CmpOp::kGe, static_cast<uint32_t>(smin(rhs)), true);
    case CmpOp::kLtu:
      if (rhs.hi == 0) return AbsValue::bottom();
      return abs_refine(v, CmpOp::kLtu, rhs.hi, true);
    case CmpOp::kGeu:
      return abs_refine(v, CmpOp::kGeu, rhs.lo, true);
  }
  return v;
}

AbsValue abs_refine_rhs(const AbsValue& lhs, CmpOp op, const AbsValue& v,
                        bool taken) {
  if (v.is_bottom() || lhs.is_bottom()) return AbsValue::bottom();
  CmpOp eff = taken ? op : negate_op(op);
  switch (eff) {
    case CmpOp::kEq:
      return abs_meet(v, lhs);
    case CmpOp::kNe:
      if (auto c = lhs.as_constant()) return abs_refine(v, CmpOp::kNe, *c, true);
      return v;
    case CmpOp::kLt: {
      // lhs < v, so v ≥ smin(lhs) + 1.
      int64_t lb = smin(lhs);
      if (lb == INT32_MAX) return AbsValue::bottom();
      return abs_refine(v, CmpOp::kGe, static_cast<uint32_t>(lb + 1), true);
    }
    case CmpOp::kGe: {
      // lhs ≥ v, so v ≤ smax(lhs).
      int64_t ub = smax(lhs);
      if (ub == INT32_MAX) return v;
      return abs_refine(v, CmpOp::kLt, static_cast<uint32_t>(ub + 1), true);
    }
    case CmpOp::kLtu:
      // lhs <u v, so v ≥u lhs.lo + 1.
      if (lhs.lo == ~0u) return AbsValue::bottom();
      return abs_refine(v, CmpOp::kGeu, lhs.lo + 1, true);
    case CmpOp::kGeu:
      // lhs ≥u v, so v ≤u lhs.hi.
      if (lhs.hi == ~0u) return v;
      return abs_refine(v, CmpOp::kLtu, lhs.hi + 1, true);
  }
  return v;
}

std::string abs_to_string(const AbsValue& v) {
  if (v.is_bottom()) return "bot";
  if (v.is_top()) return "top";
  char buf[32];
  std::string out;
  if (auto c = v.as_constant()) {
    std::snprintf(buf, sizeof buf, "0x%x", *c);
    return buf;
  }
  if (v.has_set) {
    out = "{";
    for (size_t i = 0; i < v.set.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s0x%x", i ? "," : "", v.set[i]);
      out += buf;
    }
    return out + "}";
  }
  std::snprintf(buf, sizeof buf, "[0x%x,0x%x]", v.lo, v.hi);
  out = buf;
  // The interval alone already pins the shared leading bits; only print the
  // mask when it knows something the interval does not.
  AbsValue bare = AbsValue::range(v.lo, v.hi);
  if ((v.known_mask & ~bare.known_mask) != 0) {
    std::snprintf(buf, sizeof buf, " &0x%x=0x%x", v.known_mask, v.known_val);
    out += buf;
  }
  return out;
}

}  // namespace binsym::analysis
