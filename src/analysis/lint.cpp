#include "analysis/lint.hpp"

#include <algorithm>

#include "core/syscalls.hpp"
#include "support/format.hpp"

namespace binsym::analysis {

namespace {

core::Finding make_lint(core::OracleKind oracle, const char* rule,
                        uint32_t pc, std::string detail) {
  core::Finding finding;
  finding.oracle = oracle;
  finding.pc = pc;
  finding.detail = std::move(detail);
  finding.origin = core::FindingOrigin::kStatic;
  finding.rule = rule;
  return finding;
}

/// Linear sweep of the executable segments: contiguous decodable runs the
/// fixpoint never reached. One finding per run.
void lint_unreachable(const core::Program& program, const AbsIntResult& result,
                      const isa::Decoder& decoder,
                      std::vector<core::Finding>& out) {
  for (const core::MemRegion& region : program.regions) {
    if (!(region.flags & core::MemRegion::kExec)) continue;
    uint32_t run_start = 0;
    unsigned run_insns = 0;
    auto flush = [&] {
      if (run_insns > 0)
        out.push_back(make_lint(
            core::OracleKind::kReach, "unreachable-block", run_start,
            strprintf("%u instruction%s with no static path from the entry "
                      "point",
                      run_insns, run_insns == 1 ? "" : "s")));
      run_insns = 0;
    };
    uint32_t pc = region.lo;
    while (pc < region.hi) {
      uint32_t word = static_cast<uint32_t>(program.image.read(pc, 4));
      std::optional<isa::Decoded> decoded = decoder.decode(word);
      if (!decoded) {  // padding / data: ends any code run
        flush();
        pc += 2;
        continue;
      }
      if (result.reached(pc)) {
        flush();
      } else {
        if (run_insns == 0) run_start = pc;
        ++run_insns;
      }
      pc += decoded->size;
    }
    flush();
  }
}

/// `li a7, kSysReach; ecall` sites found by linear sweep that the fixpoint
/// never reached: the marker can never fire dynamically.
void lint_no_path_to_reach(const core::Program& program,
                           const AbsIntResult& result,
                           const isa::Decoder& decoder,
                           std::vector<core::Finding>& out) {
  for (const core::MemRegion& region : program.regions) {
    if (!(region.flags & core::MemRegion::kExec)) continue;
    bool prev_sets_reach = false;
    uint32_t pc = region.lo;
    while (pc < region.hi) {
      uint32_t word = static_cast<uint32_t>(program.image.read(pc, 4));
      std::optional<isa::Decoded> decoded = decoder.decode(word);
      if (!decoded) {
        prev_sets_reach = false;
        pc += 2;
        continue;
      }
      if (decoded->id() == isa::kECALL && prev_sets_reach &&
          !result.reached(pc))
        out.push_back(make_lint(
            core::OracleKind::kReach, "no-path-to-reach", pc,
            "reach() marker with no static path from the entry point"));
      prev_sets_reach = decoded->id() == isa::kADDI && decoded->rd() == 17 &&
                        decoded->rs1() == 0 &&
                        decoded->immediate() == core::kSysReach;
      pc += decoded->size;
    }
  }
}

/// A function whose `ret` runs with sp provably different from its entry
/// value — both sides must be static constants to fire.
void lint_stack_imbalance(const AbsIntResult& result, const Cfg& cfg,
                          std::vector<core::Finding>& out) {
  for (uint32_t ret_pc : result.ret_sites) {
    auto block = cfg.block_of_pc.find(ret_pc);
    if (block == cfg.block_of_pc.end()) continue;
    auto function = cfg.function_of_block.find(block->second);
    if (function == cfg.function_of_block.end()) continue;
    auto entry_state = result.states.find(function->second);
    auto ret_state = result.states.find(ret_pc);
    if (entry_state == result.states.end() || ret_state == result.states.end())
      continue;
    std::optional<uint32_t> sp_in = entry_state->second.regs[2].as_constant();
    std::optional<uint32_t> sp_out = ret_state->second.regs[2].as_constant();
    if (sp_in && sp_out && *sp_in != *sp_out)
      out.push_back(make_lint(
          core::OracleKind::kStackSmash, "stack-imbalance", ret_pc,
          strprintf("function %s returns with sp off by %d bytes",
                    hex32(function->second).c_str(),
                    static_cast<int32_t>(*sp_out - *sp_in))));
  }
}

/// assert(cond) whose condition is statically proven nonzero.
void lint_always_true_assert(const StaticFacts& facts,
                             std::vector<core::Finding>& out) {
  for (const auto& [pc, cond] : facts.assert_cond)
    if (!cond.contains(0))
      out.push_back(make_lint(
          core::OracleKind::kAssertFail, "always-true-assert", pc,
          "assert condition statically proven nonzero (vacuous check)"));
}

}  // namespace

std::vector<core::Finding> run_lints(const core::Program& program,
                                     const AbsIntResult& result,
                                     const Cfg& cfg, const StaticFacts& facts,
                                     const isa::Decoder& decoder) {
  std::vector<core::Finding> out;
  // Every rule argues from "no static path" or "provably constant", and an
  // incomplete fixpoint can claim neither.
  if (!result.complete) return out;
  lint_unreachable(program, result, decoder, out);
  lint_no_path_to_reach(program, result, decoder, out);
  lint_stack_imbalance(result, cfg, out);
  lint_always_true_assert(facts, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const core::Finding& a, const core::Finding& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.pc < b.pc;
                   });
  return out;
}

}  // namespace binsym::analysis
