#include "analysis/absint.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "core/syscalls.hpp"
#include "support/format.hpp"

namespace binsym::analysis {

namespace {

constexpr unsigned kWidenAfter = 16;     // joins per pc before widening
constexpr uint64_t kRangeLoadCap = 256;  // max joined addresses per load
constexpr uint64_t kRangeStoreCap = 4096;  // max havocked bytes per store
constexpr uint64_t kStackHavocCap = 512;   // explicit stack bytes per havoc
constexpr size_t kMaxStackBytes = 4096;    // per-state stack map guard

class Interpreter {
 public:
  Interpreter(const core::Program& program, const isa::Decoder& decoder,
              const AbsIntOptions& options)
      : program_(program),
        decoder_(decoder),
        opt_(options),
        stack_lo_(options.stack_top - options.stack_reserve),
        stack_hi_(options.stack_top) {}

  AbsIntResult run() {
    RegState entry;
    // The machine's reset contract: every register 0, sp = stack top, and
    // nothing else (the loader sets no gp — see SymMachine::reset).
    for (AbsValue& r : entry.regs) r = AbsValue::constant(0);
    entry.regs[2] = AbsValue::constant(opt_.stack_top);
    propagate(program_.entry, std::move(entry));

    uint64_t steps = 0;
    bool budget_ok = true;
    while (budget_ok) {
      while (!worklist_.empty()) {
        if (++steps > opt_.max_steps) {
          mark_incomplete("abstract-step budget exceeded");
          budget_ok = false;
          break;
        }
        uint32_t pc = worklist_.front();
        worklist_.pop_front();
        queued_.erase(pc);
        if (const isa::Decoded* d = decode(pc)) step(pc, *d);
      }
      // The global byte map is flow-insensitive: when a store degraded it,
      // every previously computed load may be stale — re-run everything.
      // Each epoch permanently degrades at least one byte, so this
      // terminates (and the step budget backstops it regardless).
      if (budget_ok && global_changed_) {
        global_changed_ = false;
        for (const auto& [pc, state] : states_) enqueue(pc);
      } else {
        break;
      }
    }

    AbsIntResult result;
    result.complete = incomplete_reason_.empty();
    result.incomplete_reason = incomplete_reason_;
    result.states = std::move(states_);
    result.succs = std::move(succs_);
    result.call_sites = std::move(call_sites_);
    result.ret_sites = std::move(ret_sites_);
    result.exit_sites = std::move(exit_sites_);
    for (const auto& [pc, state] : result.states)
      if (const isa::Decoded* d = decode(pc)) result.code.emplace(pc, *d);
    return result;
  }

 private:
  // -- Decode cache. -----------------------------------------------------------

  const isa::Decoded* decode(uint32_t pc) {
    auto it = dcache_.find(pc);
    if (it == dcache_.end()) {
      uint32_t word = static_cast<uint32_t>(program_.image.read(pc, 4));
      it = dcache_.emplace(pc, decoder_.decode(word)).first;
    }
    return it->second ? &*it->second : nullptr;
  }

  void mark_incomplete(const std::string& why) {
    if (incomplete_reason_.empty()) incomplete_reason_ = why;
  }

  // -- Memory model. -----------------------------------------------------------

  bool in_stack(uint32_t addr) const {
    return addr >= stack_lo_ && addr < stack_hi_;
  }

  AbsValue default_stack_byte(uint32_t addr) const {
    return AbsValue::constant(program_.image.read8(addr));
  }

  void global_havoc_all() {
    if (!global_havoc_all_) {
      global_havoc_all_ = true;
      global_changed_ = true;
    }
  }

  /// Weak (join) update of one global byte; -1 encodes "unknown".
  void global_store(uint32_t addr, std::optional<uint8_t> value) {
    if (global_havoc_all_) return;
    auto it = global_.find(addr);
    int16_t cur = it != global_.end()
                      ? it->second
                      : static_cast<int16_t>(program_.image.read8(addr));
    if (cur < 0) return;  // already unknown
    if (value && *value == cur) return;
    global_[addr] = -1;
    global_changed_ = true;
  }

  AbsValue byte_at(const RegState& s, uint32_t addr) const {
    if (in_stack(addr)) {
      if (s.stack_unknown) return AbsValue::range(0, 255);
      auto it = s.stack.find(addr);
      if (it != s.stack.end()) return it->second;
      return default_stack_byte(addr);
    }
    if (global_havoc_all_) return AbsValue::range(0, 255);
    auto it = global_.find(addr);
    if (it != global_.end())
      return it->second < 0
                 ? AbsValue::range(0, 255)
                 : AbsValue::constant(static_cast<uint32_t>(it->second));
    return AbsValue::constant(program_.image.read8(addr));
  }

  /// Assemble an n-byte little-endian load at a concrete base address.
  AbsValue load_at(const RegState& s, uint32_t base, unsigned bytes,
                   bool sign_extend) const {
    AbsValue v = byte_at(s, base);
    for (unsigned i = 1; i < bytes; ++i)
      v = abs_or(v, abs_sll(byte_at(s, base + i),
                            AbsValue::constant(8 * i)));
    if (sign_extend && bytes < 4) {
      uint32_t sign = 1u << (8 * bytes - 1);
      if (v.has_set) {
        std::vector<uint32_t> extended;
        extended.reserve(v.set.size());
        for (uint32_t x : v.set)
          extended.push_back(x & sign ? x | (~0u << (8 * bytes)) : x);
        return AbsValue::from_values(std::move(extended));
      }
      if (v.hi >= sign) return AbsValue::top();
    }
    return v;
  }

  AbsValue do_load(const RegState& s, const AbsValue& addr, unsigned bytes,
                   bool sign_extend) const {
    if (addr.is_bottom()) return AbsValue::bottom();
    if (auto c = addr.as_constant()) return load_at(s, *c, bytes, sign_extend);
    if (addr.has_set) {
      AbsValue r = AbsValue::bottom();
      for (uint32_t base : addr.set)
        r = abs_join(r, load_at(s, base, bytes, sign_extend));
      return r;
    }
    uint64_t span = static_cast<uint64_t>(addr.hi) - addr.lo;
    if (span <= kRangeLoadCap) {
      // Bounded unknown base (e.g. a masked jump-table index): join the
      // loads at every address the abstraction admits. The knowledge that
      // low bits are zero prunes misaligned bases via contains().
      AbsValue r = AbsValue::bottom();
      for (uint64_t a = addr.lo; a <= addr.hi; ++a) {
        uint32_t base = static_cast<uint32_t>(a);
        if (!addr.contains(base)) continue;
        r = abs_join(r, load_at(s, base, bytes, sign_extend));
        if (r.is_top()) break;
      }
      return r;
    }
    return AbsValue::top();
  }

  /// One byte store. Strong (overwrite) only for the flow-sensitive stack
  /// window under a singleton address; global memory always joins.
  void store_byte(RegState& s, uint32_t addr, const AbsValue& value,
                  bool strong) {
    if (in_stack(addr)) {
      if (s.stack_unknown) return;
      s.stack[addr] = strong ? value : abs_join(byte_at(s, addr), value);
      if (s.stack.size() > kMaxStackBytes) {
        s.stack_unknown = true;
        s.stack.clear();
      }
      return;
    }
    auto c = value.as_constant();
    global_store(addr, c ? std::optional<uint8_t>(static_cast<uint8_t>(*c))
                         : std::nullopt);
  }

  /// Forget every byte in [lo, hi_excl) (addresses taken mod 2^32).
  void havoc_range(RegState& s, uint64_t lo, uint64_t hi_excl) {
    if (hi_excl - lo > kRangeStoreCap) {
      global_havoc_all();
      s.stack_unknown = true;
      s.stack.clear();
      return;
    }
    uint64_t stack_bytes = 0;
    for (uint64_t a = lo; a < hi_excl; ++a)
      if (in_stack(static_cast<uint32_t>(a))) ++stack_bytes;
    if (stack_bytes > kStackHavocCap) {
      s.stack_unknown = true;
      s.stack.clear();
    }
    for (uint64_t a = lo; a < hi_excl; ++a) {
      uint32_t addr = static_cast<uint32_t>(a);
      if (in_stack(addr)) {
        if (!s.stack_unknown) store_byte(s, addr, AbsValue::range(0, 255),
                                         /*strong=*/true);
      } else {
        global_store(addr, std::nullopt);
      }
    }
  }

  void do_store(RegState& s, const AbsValue& addr, unsigned bytes,
                const AbsValue& value) {
    if (addr.is_bottom()) return;
    auto byte_of = [&](unsigned i) {
      return abs_and(abs_srl(value, AbsValue::constant(8 * i)),
                     AbsValue::constant(0xff));
    };
    if (auto c = addr.as_constant()) {
      for (unsigned i = 0; i < bytes; ++i)
        store_byte(s, *c + i, byte_of(i), /*strong=*/true);
      return;
    }
    if (addr.has_set) {
      for (uint32_t base : addr.set)
        for (unsigned i = 0; i < bytes; ++i)
          store_byte(s, base + i, byte_of(i), /*strong=*/false);
      return;
    }
    uint64_t span = static_cast<uint64_t>(addr.hi) - addr.lo;
    if (span + bytes <= kRangeStoreCap) {
      havoc_range(s, addr.lo, static_cast<uint64_t>(addr.hi) + bytes);
      return;
    }
    global_havoc_all();
    s.stack_unknown = true;
    s.stack.clear();
  }

  // -- Worklist. ---------------------------------------------------------------

  void enqueue(uint32_t pc) {
    if (queued_.insert(pc).second) worklist_.push_back(pc);
  }

  RegState join_states(const RegState& a, const RegState& b, bool widen) {
    RegState r;
    for (unsigned i = 0; i < 32; ++i)
      r.regs[i] =
          widen ? abs_widen(a.regs[i], b.regs[i]) : abs_join(a.regs[i], b.regs[i]);
    r.stack_unknown = a.stack_unknown || b.stack_unknown;
    if (r.stack_unknown) return r;
    auto merge_key = [&](uint32_t key) {
      auto ia = a.stack.find(key), ib = b.stack.find(key);
      const AbsValue va =
          ia != a.stack.end() ? ia->second : default_stack_byte(key);
      const AbsValue vb =
          ib != b.stack.end() ? ib->second : default_stack_byte(key);
      AbsValue v = widen ? abs_widen(va, vb) : abs_join(va, vb);
      if (!(v == default_stack_byte(key))) r.stack.emplace(key, std::move(v));
    };
    for (const auto& [key, value] : a.stack) merge_key(key);
    for (const auto& [key, value] : b.stack)
      if (!a.stack.count(key)) merge_key(key);
    if (r.stack.size() > kMaxStackBytes) {
      r.stack_unknown = true;
      r.stack.clear();
    }
    return r;
  }

  void propagate(uint32_t pc, RegState state) {
    state.regs[0] = AbsValue::constant(0);  // x0 is hardwired
    auto it = states_.find(pc);
    if (it == states_.end()) {
      states_.emplace(pc, std::move(state));
      enqueue(pc);
      return;
    }
    bool widen = ++join_count_[pc] > kWidenAfter;
    RegState joined = join_states(it->second, state, widen);
    if (!(joined == it->second)) {
      it->second = std::move(joined);
      enqueue(pc);
    }
  }

  /// Record a CFG edge and propagate `state` into the target. A target
  /// that does not decode is a terminal edge (the machine stops with
  /// bad-fetch), so nothing propagates.
  void edge(uint32_t pc, uint32_t target, RegState state) {
    if (!decode(target)) return;
    std::vector<uint32_t>& out = succs_[pc];
    if (std::find(out.begin(), out.end(), target) == out.end())
      out.push_back(target);
    propagate(target, std::move(state));
  }

  // -- Transfer. ---------------------------------------------------------------

  void step(uint32_t pc, const isa::Decoded& d) {
    const RegState& s = states_.at(pc);
    const uint32_t imm = d.immediate();

    auto unary_write = [&](AbsValue v) {
      RegState t = s;
      if (d.rd() != 0) t.regs[d.rd()] = std::move(v);
      edge(pc, pc + d.size, std::move(t));
    };
    auto rr = [&](AbsValue (*op)(const AbsValue&, const AbsValue&)) {
      unary_write(op(s.regs[d.rs1()], s.regs[d.rs2()]));
    };
    auto ri = [&](AbsValue (*op)(const AbsValue&, const AbsValue&)) {
      unary_write(op(s.regs[d.rs1()], AbsValue::constant(imm)));
    };

    if (d.id() >= isa::kNumBuiltinOps) {
      // A custom instruction the analysis has no transfer for: its
      // semantics may write any register, any memory, even the pc. Havoc
      // what we can and declare the whole analysis incomplete — no fact
      // derived from this program is trusted (facts.hpp).
      mark_incomplete(
          strprintf("unmodelled instruction '%s' at %s",
                    d.info->name.c_str(), hex32(pc).c_str()));
      global_havoc_all();
      RegState t;  // all registers top
      t.stack_unknown = true;
      edge(pc, pc + d.size, std::move(t));
      return;
    }

    switch (static_cast<isa::Op>(d.id())) {
      case isa::kLUI:
        unary_write(AbsValue::constant(imm));
        return;
      case isa::kAUIPC:
        unary_write(AbsValue::constant(pc + imm));
        return;

      case isa::kJAL: {
        RegState t = s;
        if (d.rd() != 0) t.regs[d.rd()] = AbsValue::constant(pc + d.size);
        if (d.rd() == 1) call_sites_.insert(pc);
        edge(pc, pc + imm, std::move(t));
        return;
      }
      case isa::kJALR: {
        AbsValue target =
            abs_and(abs_add(s.regs[d.rs1()], AbsValue::constant(imm)),
                    AbsValue::constant(0xffff'fffeu));
        if (d.rd() == 1) call_sites_.insert(pc);
        if (d.rd() == 0 && d.rs1() == 1 && imm == 0) ret_sites_.insert(pc);
        if (!target.has_set) {
          mark_incomplete(strprintf("unresolved indirect jump at %s",
                                    hex32(pc).c_str()));
          return;
        }
        for (uint32_t tgt : target.set) {
          RegState t = s;
          if (d.rd() != 0) t.regs[d.rd()] = AbsValue::constant(pc + d.size);
          edge(pc, tgt, std::move(t));
        }
        return;
      }

      case isa::kBEQ:
      case isa::kBNE:
      case isa::kBLT:
      case isa::kBGE:
      case isa::kBLTU:
      case isa::kBGEU: {
        CmpOp op = d.id() == isa::kBEQ    ? CmpOp::kEq
                   : d.id() == isa::kBNE  ? CmpOp::kNe
                   : d.id() == isa::kBLT  ? CmpOp::kLt
                   : d.id() == isa::kBGE  ? CmpOp::kGe
                   : d.id() == isa::kBLTU ? CmpOp::kLtu
                                          : CmpOp::kGeu;
        const AbsValue& a = s.regs[d.rs1()];
        const AbsValue& b = s.regs[d.rs2()];
        std::optional<bool> decided = abs_compare(op, a, b);
        auto arm = [&](bool taken, uint32_t target) {
          RegState t = s;
          // Sharpen both compared registers on this arm. Each refinement
          // uses only the other side's *pre*-branch bounds, so the two are
          // independently sound.
          AbsValue ra = abs_refine(a, op, b, taken);
          AbsValue rb = abs_refine_rhs(a, op, b, taken);
          if (ra.is_bottom() || rb.is_bottom()) return;  // arm is unreachable
          if (d.rs1() != 0) t.regs[d.rs1()] = std::move(ra);
          if (d.rs2() != 0) t.regs[d.rs2()] = std::move(rb);
          edge(pc, target, std::move(t));
        };
        if (!decided || *decided) arm(true, pc + imm);
        if (!decided || !*decided) arm(false, pc + d.size);
        return;
      }

      case isa::kLB:
        return unary_write(do_load(
            s, abs_add(s.regs[d.rs1()], AbsValue::constant(imm)), 1, true));
      case isa::kLH:
        return unary_write(do_load(
            s, abs_add(s.regs[d.rs1()], AbsValue::constant(imm)), 2, true));
      case isa::kLW:
        return unary_write(do_load(
            s, abs_add(s.regs[d.rs1()], AbsValue::constant(imm)), 4, true));
      case isa::kLBU:
        return unary_write(do_load(
            s, abs_add(s.regs[d.rs1()], AbsValue::constant(imm)), 1, false));
      case isa::kLHU:
        return unary_write(do_load(
            s, abs_add(s.regs[d.rs1()], AbsValue::constant(imm)), 2, false));

      case isa::kSB:
      case isa::kSH:
      case isa::kSW: {
        unsigned bytes = d.id() == isa::kSB ? 1 : d.id() == isa::kSH ? 2 : 4;
        RegState t = s;
        do_store(t, abs_add(s.regs[d.rs1()], AbsValue::constant(imm)), bytes,
                 s.regs[d.rs2()]);
        edge(pc, pc + d.size, std::move(t));
        return;
      }

      case isa::kADDI: return ri(abs_add);
      case isa::kXORI: return ri(abs_xor);
      case isa::kORI:  return ri(abs_or);
      case isa::kANDI: return ri(abs_and);
      case isa::kSLTI: return ri(abs_slt);
      case isa::kSLTIU: return ri(abs_sltu);
      case isa::kSLLI:
        return unary_write(
            abs_sll(s.regs[d.rs1()], AbsValue::constant(d.shamt())));
      case isa::kSRLI:
        return unary_write(
            abs_srl(s.regs[d.rs1()], AbsValue::constant(d.shamt())));
      case isa::kSRAI:
        return unary_write(
            abs_sra(s.regs[d.rs1()], AbsValue::constant(d.shamt())));

      case isa::kADD:  return rr(abs_add);
      case isa::kSUB:  return rr(abs_sub);
      case isa::kSLL:  return rr(abs_sll);
      case isa::kSLT:  return rr(abs_slt);
      case isa::kSLTU: return rr(abs_sltu);
      case isa::kXOR:  return rr(abs_xor);
      case isa::kSRL:  return rr(abs_srl);
      case isa::kSRA:  return rr(abs_sra);
      case isa::kOR:   return rr(abs_or);
      case isa::kAND:  return rr(abs_and);

      case isa::kMUL:    return rr(abs_mul);
      case isa::kMULH:   return rr(abs_mulh);
      case isa::kMULHSU: return rr(abs_mulhsu);
      case isa::kMULHU:  return rr(abs_mulhu);
      case isa::kDIV:    return rr(abs_div);
      case isa::kDIVU:   return rr(abs_divu);
      case isa::kREM:    return rr(abs_rem);
      case isa::kREMU:   return rr(abs_remu);

      case isa::kFENCE:
      case isa::kMRET:  // modelled as no-ops (spec/system.cpp)
      case isa::kWFI: {
        RegState t = s;
        edge(pc, pc + d.size, std::move(t));
        return;
      }

      case isa::kCSRRW:
      case isa::kCSRRS:
      case isa::kCSRRC:
      case isa::kCSRRWI:
      case isa::kCSRRSI:
      case isa::kCSRRCI:
        // CSR state is untracked: rd receives an arbitrary old value.
        unary_write(AbsValue::top());
        return;

      case isa::kEBREAK:
        exit_sites_.insert(pc);  // the machine stops this path
        return;

      case isa::kECALL:
        step_ecall(pc, d, s);
        return;

      case isa::kNumBuiltinOps:
        break;
    }
  }

  void step_ecall(uint32_t pc, const isa::Decoded& d, const RegState& s) {
    std::optional<uint32_t> number = s.regs[17].as_constant();  // a7
    RegState t = s;
    if (!number) {
      // Any syscall is possible, including sym_input over an arbitrary
      // buffer. (Syscalls never write registers — machine.cpp.)
      global_havoc_all();
      t.stack_unknown = true;
      t.stack.clear();
      edge(pc, pc + d.size, std::move(t));
      return;
    }
    switch (*number) {
      case core::kSysExit:
        exit_sites_.insert(pc);
        return;  // no successors
      case core::kSysPutChar:
      case core::kSysReportFail:
      case core::kSysAssert:
      case core::kSysReach:
        break;  // no machine-visible effect on registers or memory
      case core::kSysSymInput: {
        std::optional<uint32_t> base = s.regs[10].as_constant();
        std::optional<uint32_t> len = s.regs[11].as_constant();
        if (base && len) {
          if (*len != 0)
            havoc_range(t, *base, static_cast<uint64_t>(*base) + *len);
        } else if (!s.regs[10].is_top() && s.regs[11].hi <= kRangeStoreCap) {
          havoc_range(t, s.regs[10].lo,
                      static_cast<uint64_t>(s.regs[10].hi) + s.regs[11].hi);
        } else {
          global_havoc_all();
          t.stack_unknown = true;
          t.stack.clear();
        }
        break;
      }
      default:
        exit_sites_.insert(pc);  // bad syscall: the machine stops
        return;
    }
    edge(pc, pc + d.size, std::move(t));
  }

  const core::Program& program_;
  const isa::Decoder& decoder_;
  AbsIntOptions opt_;
  uint32_t stack_lo_, stack_hi_;

  std::unordered_map<uint32_t, std::optional<isa::Decoded>> dcache_;
  std::unordered_map<uint32_t, RegState> states_;
  std::unordered_map<uint32_t, unsigned> join_count_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> succs_;
  std::unordered_set<uint32_t> call_sites_, ret_sites_, exit_sites_;

  std::unordered_map<uint32_t, int16_t> global_;  // byte override; -1 unknown
  bool global_havoc_all_ = false;
  bool global_changed_ = false;

  std::deque<uint32_t> worklist_;
  std::unordered_set<uint32_t> queued_;
  std::string incomplete_reason_;
};

}  // namespace

AbsIntResult abstract_interpret(const core::Program& program,
                                const isa::Decoder& decoder,
                                const AbsIntOptions& options) {
  return Interpreter(program, decoder, options).run();
}

}  // namespace binsym::analysis
