// Control-flow recovery over the abstract-interpretation fixpoint.
//
// Basic blocks, block-level edges, an immediate-dominator tree, a
// call graph (jal/ret classification following the PR 5 shadow-call-stack
// conventions), and the reverse-reachability/distance queries the
// coverage-guided search strategy scores flips with. Everything here is a
// pure function of an AbsIntResult: the abstract interpreter already
// resolved direct jumps, pruned statically-dead branch arms and resolved
// `jalr` through the abstract ra, so recovery is a partitioning problem,
// not a second discovery pass.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/absint.hpp"

namespace binsym::analysis {

/// A maximal single-entry straight-line run of instructions.
struct BasicBlock {
  std::vector<uint32_t> pcs;  // instruction addresses, in execution order
  uint32_t first() const { return pcs.front(); }
  uint32_t last() const { return pcs.back(); }
};

struct Cfg {
  static constexpr uint32_t kNoBlock = ~0u;
  static constexpr uint32_t kUnreachable = ~0u;  // distances_to() sentinel

  std::vector<BasicBlock> blocks;  // sorted by first(); index = block id
  std::unordered_map<uint32_t, uint32_t> block_of_pc;
  uint32_t entry_block = kNoBlock;

  std::vector<std::vector<uint32_t>> succs;  // block-level edges
  std::vector<std::vector<uint32_t>> preds;

  /// Immediate dominator per block (kNoBlock for the entry block).
  std::vector<uint32_t> idom;

  /// Call graph. Functions are named by their entry pc; the interprocedural
  /// block graph is partitioned by BFS from each function entry over edges
  /// that are neither call edges (out of a jal/jalr-with-rd==ra site) nor
  /// return edges (out of a `jalr x0, ra, 0` site).
  std::unordered_set<uint32_t> function_entries;  // includes program entry
  std::unordered_map<uint32_t, uint32_t> function_of_block;  // block -> entry
  std::unordered_map<uint32_t, std::vector<uint32_t>> call_edges;

  bool dominates(uint32_t a, uint32_t b) const;

  /// Shortest forward distance (in blocks) from every block to the nearest
  /// of `targets`; kUnreachable where no static path exists.
  std::vector<uint32_t> distances_to(const std::vector<uint32_t>& targets) const;

  /// Blocks with a static path to `block` (reverse reachability, inclusive).
  std::vector<uint32_t> reverse_reachable(uint32_t block) const;
};

/// Partition a converged fixpoint into a CFG. `entry_pc` is the program
/// entry point (Program::entry).
Cfg build_cfg(const AbsIntResult& result, uint32_t entry_pc);

/// Graphviz rendering (`analyze --cfg-dot`): one node per block with its
/// disassembly, call/return edges dashed, function entries shaded.
std::string cfg_to_dot(const Cfg& cfg, const AbsIntResult& result);

}  // namespace binsym::analysis
