#include "smt/pipe.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "smt/smtlib.hpp"
#include "support/bits.hpp"

namespace binsym::smt {

std::vector<std::string> split_command(const std::string& command) {
  std::vector<std::string> words;
  std::istringstream is(command);
  std::string word;
  while (is >> word) words.push_back(word);
  return words;
}

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

class PipeSolver final : public Solver {
 public:
  PipeSolver(Context& ctx, std::string command)
      : ctx_(ctx),
        argv_(split_command(command)),
        scratch_(/*intern_exprs=*/false) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override {
    const auto start = std::chrono::steady_clock::now();
    ++stats_.queries;
    if (argv_.empty() || cancel_requested()) {
      ++stats_.unknown;
      return CheckResult::kUnknown;
    }

    // The wire query: exactly what print_query emits, with a get-value over
    // the free variables appended when the caller wants a model. The
    // :produce-models option keeps get-value legal for solvers that gate it
    // (cvc5); Z3 and smtcheck accept-and-ignore it.
    const std::vector<ExprRef> list(assertions.begin(), assertions.end());
    const std::vector<uint32_t> vars = collect_vars(list);
    std::ostringstream os;
    os << "(set-option :produce-models true)\n";
    print_query(os, ctx_, list);
    if (model && !vars.empty()) {
      os << "(get-value (";
      for (size_t i = 0; i < vars.size(); ++i) {
        if (i) os << ' ';
        os << ctx_.var_info(vars[i]).name;
      }
      os << "))\n";
    }

    std::string output;
    const bool completed = run_child(os.str(), &output);
    CheckResult result =
        completed ? parse_response(output, vars, model) : CheckResult::kUnknown;
    switch (result) {
      case CheckResult::kSat:     ++stats_.sat; break;
      case CheckResult::kUnsat:   ++stats_.unsat; break;
      case CheckResult::kUnknown: ++stats_.unknown; break;
    }
    stats_.solve_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
  }

  std::string name() const override {
    return "pipe[" + (argv_.empty() ? std::string("?") : argv_[0]) + "]";
  }

 private:
  /// Spawn the child, feed it `input`, collect stdout into *output.
  /// Returns false when the run was abandoned (deadline, cancel, spawn
  /// failure) — the verdict is then kUnknown regardless of any output.
  bool run_child(const std::string& input, std::string* output) {
    int to_child[2], from_child[2];
    if (pipe(to_child) != 0) return false;
    if (pipe(from_child) != 0) {
      close(to_child[0]);
      close(to_child[1]);
      return false;
    }

    const pid_t pid = fork();
    if (pid < 0) {
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
        close(fd);
      return false;
    }
    if (pid == 0) {
      // Child: stdin/stdout onto the pipes, stderr silenced (solvers chirp
      // "(error ...)" diagnostics we intentionally ignore).
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      const int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) dup2(devnull, STDERR_FILENO);
      for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
        close(fd);
      std::vector<char*> argv;
      argv.reserve(argv_.size() + 1);
      for (const std::string& word : argv_)
        argv.push_back(const_cast<char*>(word.c_str()));
      argv.push_back(nullptr);
      execvp(argv[0], argv.data());
      _exit(127);  // exec failed: EOF on stdout -> kUnknown in the parent
    }

    close(to_child[0]);
    close(from_child[1]);
    int write_fd = to_child[1];
    const int read_fd = from_child[0];
    set_nonblocking(write_fd);
    set_nonblocking(read_fd);

    // A child that dies before draining stdin (execvp failure, a crashed
    // solver, one that answers without reading everything) widows the write
    // pipe; the write below must then fail with EPIPE — end of write, keep
    // reading — not raise SIGPIPE and kill the engine. Checking POLLERR
    // first is not enough (the child can exit between poll() and write()),
    // so the signal is blocked for this thread around the I/O loop and any
    // instance our writes generated is drained before the mask is restored.
    sigset_t sigpipe_only, prev_mask;
    sigemptyset(&sigpipe_only);
    sigaddset(&sigpipe_only, SIGPIPE);
    pthread_sigmask(SIG_BLOCK, &sigpipe_only, &prev_mask);

    // Interleave writing the query and reading the answer (a large query
    // can exceed the pipe buffer while the child already answers), polling
    // the deadline and the cancel flag every slice.
    const bool has_deadline = deadline_ms_ > 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms_);
    size_t written = 0;
    bool abandoned = false;
    for (;;) {
      if (cancel_requested() ||
          (has_deadline && std::chrono::steady_clock::now() >= deadline)) {
        abandoned = true;
        break;
      }
      struct pollfd fds[2];
      nfds_t n = 0;
      int write_slot = -1;
      if (write_fd >= 0) {
        fds[n] = {write_fd, POLLOUT, 0};
        write_slot = static_cast<int>(n++);
      }
      const int read_slot = static_cast<int>(n);
      fds[n++] = {read_fd, POLLIN, 0};
      const int rc = poll(fds, n, /*timeout_ms=*/10);
      if (rc < 0) {
        if (errno == EINTR) continue;
        abandoned = true;
        break;
      }
      if (write_slot >= 0 && fds[write_slot].revents != 0) {
        if (fds[write_slot].revents & POLLOUT) {
          const ssize_t w = write(write_fd, input.data() + written,
                                  input.size() - written);
          if (w > 0) written += static_cast<size_t>(w);
          if ((w < 0 && errno != EAGAIN && errno != EINTR) ||
              written == input.size()) {
            close(write_fd);  // EOF tells stdin-driven solvers to finish
            write_fd = -1;
          }
        } else {  // POLLERR/POLLHUP: child closed stdin (or died)
          close(write_fd);
          write_fd = -1;
        }
      }
      if (fds[read_slot].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        const ssize_t r = read(read_fd, buf, sizeof buf);
        if (r > 0) {
          output->append(buf, static_cast<size_t>(r));
        } else if (r == 0) {
          break;  // EOF: the child is done
        } else if (errno != EAGAIN && errno != EINTR) {
          break;
        }
      }
    }

    if (write_fd >= 0) close(write_fd);
    close(read_fd);
    if (sigismember(&prev_mask, SIGPIPE) == 0) {
      // Consume any SIGPIPE our writes left pending on this thread, then
      // restore the caller's mask. If the caller had it blocked already,
      // both the mask and any pending instance are theirs to handle.
      struct timespec no_wait = {0, 0};
      while (sigtimedwait(&sigpipe_only, nullptr, &no_wait) == SIGPIPE) {
      }
      pthread_sigmask(SIG_SETMASK, &prev_mask, nullptr);
    }
    if (abandoned) kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    return !abandoned;
  }

  /// Decode the child's stdout: the first sat/unsat/unknown line is the
  /// verdict ("(error ...)" chatter is skipped); on sat the rest is the
  /// get-value response. A sat verdict whose model cannot be fully decoded
  /// degrades to kUnknown — a weaker answer, never a wrong one.
  CheckResult parse_response(const std::string& output,
                             const std::vector<uint32_t>& vars,
                             Assignment* model) {
    size_t pos = 0;
    CheckResult verdict = CheckResult::kUnknown;
    bool decided = false;
    while (pos < output.size()) {
      size_t eol = output.find('\n', pos);
      if (eol == std::string::npos) eol = output.size();
      std::string line = output.substr(pos, eol - pos);
      pos = eol + 1;
      // Trim.
      const size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      line = line.substr(first, line.find_last_not_of(" \t\r") - first + 1);
      if (line.rfind("(error", 0) == 0) continue;
      if (line == "sat") verdict = CheckResult::kSat;
      else if (line == "unsat") verdict = CheckResult::kUnsat;
      else if (line == "unknown") verdict = CheckResult::kUnknown;
      else continue;
      decided = true;
      break;
    }
    if (!decided || verdict != CheckResult::kSat) return verdict;
    if (!model || vars.empty()) return verdict;
    return parse_model(output.substr(pos), vars, model)
               ? CheckResult::kSat
               : CheckResult::kUnknown;
  }

  /// Parse the `((name value) ...)` get-value response. Literal values go
  /// through parse_smtlib (over a private scratch context, so a racing
  /// sibling backend never sees concurrent node allocation); the `(_ bvN w)`
  /// spelling some solvers prefer is handled directly.
  bool parse_model(const std::string& text, const std::vector<uint32_t>& vars,
                   Assignment* model) {
    size_t i = 0;
    auto skip_ws = [&] {
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) != 0))
        ++i;
    };
    auto symbol = [&] {
      const size_t begin = i;
      while (i < text.size() && text[i] != '(' && text[i] != ')' &&
             std::isspace(static_cast<unsigned char>(text[i])) == 0)
        ++i;
      return text.substr(begin, i - begin);
    };
    skip_ws();
    if (i >= text.size() || text[i] != '(') return false;
    ++i;  // outer list
    std::unordered_set<uint32_t> decoded;
    for (;;) {
      skip_ws();
      if (i < text.size() && text[i] == ')') break;
      if (i >= text.size() || text[i] != '(') return false;
      ++i;
      skip_ws();
      const std::string name = symbol();
      skip_ws();
      uint64_t value = 0;
      if (i < text.size() && text[i] == '(') {
        // (_ bvN w)
        ++i;
        skip_ws();
        if (symbol() != "_") return false;
        skip_ws();
        const std::string bv = symbol();
        if (bv.rfind("bv", 0) != 0) return false;
        value = std::strtoull(bv.c_str() + 2, nullptr, 10);
        skip_ws();
        symbol();  // width
        skip_ws();
        if (i >= text.size() || text[i] != ')') return false;
        ++i;
      } else {
        const std::string literal = symbol();
        if (literal == "true" || literal == "false") {
          value = literal == "true" ? 1 : 0;
        } else {
          ExprRef node = parse_smtlib(scratch_, literal);
          if (!node || node->kind != Kind::kConst) return false;
          value = node->constant;
        }
      }
      skip_ws();
      if (i >= text.size() || text[i] != ')') return false;
      ++i;
      ExprRef var = ctx_.lookup_var(name);
      if (var) {
        model->set(var->var_id, truncate(value, var->width));
        decoded.insert(var->var_id);
      }
    }
    // Every requested variable must have decoded — counting bindings is not
    // enough, since a duplicate binding could mask a missing variable — or
    // the model could be silently incomplete (a missing variable reads as
    // zero downstream).
    for (uint32_t var : vars)
      if (decoded.count(var) == 0) return false;
    return true;
  }

  Context& ctx_;
  std::vector<std::string> argv_;
  Context scratch_;  // literal parse-back arena, private to this solver
};

}  // namespace

std::unique_ptr<Solver> make_pipe_solver(Context& ctx,
                                         const std::string& command) {
  return std::make_unique<PipeSolver>(ctx, command);
}

}  // namespace binsym::smt
