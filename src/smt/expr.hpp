// Hash-consed bitvector expression DAG.
//
// This is the "symbolic expression" layer of Fig. 1 in the paper: the target
// of the `encode` step. Expressions are immutable, interned in a Context
// (structural equality == pointer equality), and carry an explicit width in
// [1, 64]. Booleans are width-1 bitvectors, which keeps the algebra uniform
// and matches how the engine mixes data and control expressions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace binsym::smt {

enum class Kind : uint8_t {
  // Leaves.
  kConst,
  kVar,
  // Unary.
  kNot,      // bitwise complement (logical not for width 1)
  kNeg,      // two's complement negation
  kExtract,  // bits [aux0:aux1] inclusive
  kZExt,     // zero-extend to `width`
  kSExt,     // sign-extend to `width`
  // Binary arithmetic (operands and result share a width).
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kURem,
  kSDiv,
  kSRem,
  // Binary bitwise / shifts (SMT shift semantics: amount >= width saturates).
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Comparisons (result width 1).
  kEq,
  kUlt,
  kUle,
  kSlt,
  kSle,
  // Structure.
  kConcat,  // ops[0] becomes the high part
  kIte,     // ops[0] width-1 condition
};

const char* kind_name(Kind kind);
unsigned kind_arity(Kind kind);
bool is_comparison(Kind kind);

struct Expr;
using ExprRef = const Expr*;

struct Expr {
  Kind kind;
  uint8_t width;     // result width in bits
  uint8_t num_ops;   // 0..3
  uint32_t id;       // dense per-context id, usable as a map key
  uint64_t hash;     // structural content hash; see Context for the contract
  uint64_t constant; // kConst payload (canonical for `width`)
  uint32_t var_id;   // kVar payload: index into Context's variable table
  uint32_t aux0;     // kExtract: hi
  uint32_t aux1;     // kExtract: lo
  ExprRef ops[3];

  bool is_const() const { return kind == Kind::kConst; }
  bool is_const_val(uint64_t v) const { return is_const() && constant == v; }
  bool is_true() const { return width == 1 && is_const_val(1); }
  bool is_false() const { return width == 1 && is_const_val(0); }
};

/// Dense visited-set over per-context node ids. Ids are small and dense
/// (Context hands them out sequentially), so a bit vector beats a hash set
/// by a wide margin on the traversal hot paths; `clear()` is O(set bits),
/// so one marker can be reused across many traversals without re-zeroing
/// (or re-allocating) the whole table.
class NodeMarker {
 public:
  bool test(uint32_t id) const { return id < bits_.size() && bits_[id]; }

  void set(uint32_t id) {
    if (id >= bits_.size()) bits_.resize(id + 1);
    if (!bits_[id]) {
      bits_[id] = true;
      touched_.push_back(id);
    }
  }

  void clear() {
    for (uint32_t id : touched_) bits_[id] = false;
    touched_.clear();
  }

  size_t num_set() const { return touched_.size(); }

 private:
  std::vector<bool> bits_;
  std::vector<uint32_t> touched_;
};

/// Iterative post-order traversal over the DAG rooted at `root`; `visit` is
/// called exactly once per node not already set in `marker`, children first,
/// and marks every visited node. Iterative so that the deep expression
/// chains produced by long concolic runs cannot overflow the native stack.
/// Passing one marker across several calls skips shared sub-DAGs.
template <typename F>
void postorder(ExprRef root, NodeMarker& marker, F&& visit) {
  std::vector<std::pair<ExprRef, bool>> stack;
  stack.emplace_back(root, false);
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (marker.test(node->id)) continue;
    if (expanded) {
      marker.set(node->id);
      visit(node);
      continue;
    }
    stack.emplace_back(node, true);
    for (unsigned i = 0; i < node->num_ops; ++i)
      if (!marker.test(node->ops[i]->id))
        stack.emplace_back(node->ops[i], false);
  }
}

template <typename F>
void postorder(ExprRef root, F&& visit) {
  NodeMarker marker;
  postorder(root, marker, std::forward<F>(visit));
}

/// Number of distinct nodes reachable from `root` (query-complexity metric
/// used by the SMT ablation benchmark).
size_t node_count(ExprRef root);

/// Distinct nodes reachable from any of `roots` (shared sub-DAGs counted
/// once) — the effective size of a multi-assertion solver query.
size_t node_count(std::span<const ExprRef> roots);

/// Collect the distinct variable ids reachable from each root, sorted.
std::vector<uint32_t> collect_vars(std::span<const ExprRef> roots);
inline std::vector<uint32_t> collect_vars(const std::vector<ExprRef>& roots) {
  return collect_vars(std::span<const ExprRef>(roots));
}

/// collect_vars for a single root, appending into `out` (unsorted, distinct
/// per call) and reusing `marker` scratch space; the slicer's inner loop.
void collect_vars_into(ExprRef root, NodeMarker& marker,
                       std::vector<uint32_t>& out);

/// Deep structural comparison, independent of interning. kVar compares by
/// var_id, so the result is only meaningful for nodes of the same Context
/// (an interning Context guarantees `a == b` instead; this exists for the
/// legacy-allocator differential harness).
bool structurally_equal(ExprRef a, ExprRef b);

}  // namespace binsym::smt
