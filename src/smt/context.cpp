#include "smt/context.hpp"

#include <cassert>
#include <string_view>

#include "support/bits.hpp"

namespace binsym::smt {

namespace {

/// splitmix64 finalizer: full-avalanche mixing so the low bits of the
/// content hash are usable directly as intern-table probe indices.
uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over the variable name: the cross-context-stable part of a kVar
/// node's identity (per-context var ids depend on declaration order).
uint64_t name_hash(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The structural content hash. Depends only on the node's shape and its
/// children's hashes (kVar: the variable name), never on per-context ids —
/// the stability contract documented in context.hpp.
uint64_t content_hash(Kind kind, unsigned width, uint64_t payload,
                      uint32_t aux0, uint32_t aux1, ExprRef a, ExprRef b,
                      ExprRef c) {
  uint64_t h = mix64((static_cast<uint64_t>(kind) << 8) | width);
  h = mix64(h ^ ((uint64_t{aux0} << 32) | aux1));
  h = mix64(h ^ payload);
  if (a) h = mix64(h ^ a->hash);
  if (b) h = mix64(h ^ b->hash);
  if (c) h = mix64(h ^ c->hash);
  return h;
}

}  // namespace

ExprRef Context::lookup_var(const std::string& name) const {
  auto it = var_by_name_.find(name);
  return it == var_by_name_.end() ? nullptr : var_nodes_[it->second];
}

size_t Context::arena_bytes() const {
  return blocks_.size() * kBlockSize * sizeof(Expr) +
         table_.capacity() * sizeof(uint32_t);
}

void Context::grow_table() {
  size_t new_size = table_.empty() ? 1024 : table_.size() * 2;
  std::vector<uint32_t> old = std::move(table_);
  table_.assign(new_size, 0);
  size_t mask = new_size - 1;
  for (uint32_t id : old) {
    if (!id) continue;
    size_t slot = node_at(id)->hash & mask;
    while (table_[slot]) slot = (slot + 1) & mask;
    table_[slot] = id;
  }
}

ExprRef Context::intern(Kind kind, unsigned width, uint64_t constant,
                        uint32_t var_id, uint32_t aux0, uint32_t aux1,
                        ExprRef a, ExprRef b, ExprRef c) {
  assert(width >= 1 && width <= kMaxWidth);
  uint64_t payload = kind == Kind::kVar ? name_hash(vars_[var_id].name)
                                        : constant;
  uint64_t hash = content_hash(kind, width, payload, aux0, aux1, a, b, c);

  size_t slot = 0;
  if (intern_) {
    if (table_used_ * 4 >= table_.size() * 3) grow_table();
    size_t mask = table_.size() - 1;
    slot = hash & mask;
    while (table_[slot]) {
      Expr* n = node_at(table_[slot]);
      // Children are interned first, so comparing child pointers is the
      // full structural equality check.
      if (n->hash == hash && n->kind == kind && n->width == width &&
          n->constant == constant && n->var_id == var_id && n->aux0 == aux0 &&
          n->aux1 == aux1 && n->ops[0] == a && n->ops[1] == b &&
          n->ops[2] == c) {
        ++intern_hits_;
        return n;
      }
      slot = (slot + 1) & mask;
    }
  }

  size_t index = num_nodes_;
  if ((index >> kBlockShift) == blocks_.size())
    blocks_.push_back(std::make_unique<Expr[]>(kBlockSize));
  Expr* node = &blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
  ++num_nodes_;
  node->kind = kind;
  node->width = static_cast<uint8_t>(width);
  node->num_ops = static_cast<uint8_t>(a ? (b ? (c ? 3 : 2) : 1) : 0);
  node->id = static_cast<uint32_t>(num_nodes_);  // 1-based, dense
  node->hash = hash;
  node->constant = constant;
  node->var_id = var_id;
  node->aux0 = aux0;
  node->aux1 = aux1;
  node->ops[0] = a;
  node->ops[1] = b;
  node->ops[2] = c;
  if (intern_) {
    table_[slot] = node->id;
    ++table_used_;
  }
  return node;
}

ExprRef Context::constant(uint64_t value, unsigned width) {
  return intern(Kind::kConst, width, truncate(value, width), 0, 0, 0);
}

ExprRef Context::var(const std::string& name, unsigned width) {
  if (auto it = var_by_name_.find(name); it != var_by_name_.end()) {
    assert(vars_[it->second].width == width && "variable redeclared with a different width");
    return var_nodes_[it->second];
  }
  uint32_t id = static_cast<uint32_t>(vars_.size());
  vars_.push_back(VarInfo{name, width});
  var_by_name_.emplace(name, id);
  ExprRef node = intern(Kind::kVar, width, 0, id, 0, 0);
  var_nodes_.push_back(node);
  return node;
}

ExprRef Context::fresh_var(const std::string& prefix, unsigned width) {
  std::string name = prefix + "!" + std::to_string(fresh_counter_++);
  while (var_by_name_.count(name))
    name = prefix + "!" + std::to_string(fresh_counter_++);
  return var(name, width);
}

ExprRef Context::not_(ExprRef a) {
  if (a->is_const()) return constant(~a->constant, a->width);
  if (a->kind == Kind::kNot) return a->ops[0];  // ~~x == x
  return intern(Kind::kNot, a->width, 0, 0, 0, 0, a);
}

ExprRef Context::neg(ExprRef a) {
  if (a->is_const())
    return constant(truncate(~a->constant + 1, a->width), a->width);
  if (a->kind == Kind::kNeg) return a->ops[0];
  return intern(Kind::kNeg, a->width, 0, 0, 0, 0, a);
}

ExprRef Context::extract(ExprRef a, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < a->width);
  unsigned width = hi - lo + 1;
  if (width == a->width) return a;
  if (a->is_const()) return constant(extract_bits(a->constant, hi, lo), width);
  // extract of extract composes.
  if (a->kind == Kind::kExtract)
    return extract(a->ops[0], a->aux1 + hi, a->aux1 + lo);
  // Low-part extract of an extension is an extract of the original operand
  // (or the operand itself).
  if ((a->kind == Kind::kZExt || a->kind == Kind::kSExt) &&
      hi < a->ops[0]->width)
    return extract(a->ops[0], hi, lo);
  // High-part extract of a zero-extension is zero.
  if (a->kind == Kind::kZExt && lo >= a->ops[0]->width)
    return constant(0, width);
  // Extract aligned with one side of a concat.
  if (a->kind == Kind::kConcat) {
    unsigned lo_width = a->ops[1]->width;
    if (hi < lo_width) return extract(a->ops[1], hi, lo);
    if (lo >= lo_width) return extract(a->ops[0], hi - lo_width, lo - lo_width);
  }
  return intern(Kind::kExtract, width, 0, 0, hi, lo, a);
}

ExprRef Context::zext(ExprRef a, unsigned to_width) {
  assert(to_width >= a->width);
  if (to_width == a->width) return a;
  if (a->is_const()) return constant(a->constant, to_width);
  if (a->kind == Kind::kZExt) return zext(a->ops[0], to_width);
  return intern(Kind::kZExt, to_width, 0, 0, 0, 0, a);
}

ExprRef Context::sext(ExprRef a, unsigned to_width) {
  assert(to_width >= a->width);
  if (to_width == a->width) return a;
  if (a->is_const())
    return constant(binsym::sext(a->constant, a->width, to_width), to_width);
  if (a->kind == Kind::kSExt) return sext(a->ops[0], to_width);
  return intern(Kind::kSExt, to_width, 0, 0, 0, 0, a);
}

ExprRef Context::binary(Kind kind, ExprRef a, ExprRef b) {
  assert(a->width == b->width && "binary operands must share a width");
  unsigned width = is_comparison(kind) ? 1 : a->width;
  if (a->is_const() && b->is_const()) {
    uint64_t x = a->constant, y = b->constant;
    unsigned w = a->width;
    uint64_t r = 0;
    switch (kind) {
      case Kind::kAdd:  r = truncate(x + y, w); break;
      case Kind::kSub:  r = truncate(x - y, w); break;
      case Kind::kMul:  r = truncate(x * y, w); break;
      case Kind::kUDiv: r = udiv_bv(x, y, w); break;
      case Kind::kURem: r = urem_bv(x, y, w); break;
      case Kind::kSDiv: r = sdiv_bv(x, y, w); break;
      case Kind::kSRem: r = srem_bv(x, y, w); break;
      case Kind::kAnd:  r = x & y; break;
      case Kind::kOr:   r = x | y; break;
      case Kind::kXor:  r = x ^ y; break;
      case Kind::kShl:  r = shl_bv(x, y, w); break;
      case Kind::kLShr: r = lshr_bv(x, y, w); break;
      case Kind::kAShr: r = ashr_bv(x, y, w); break;
      case Kind::kEq:   r = x == y; break;
      case Kind::kUlt:  r = x < y; break;
      case Kind::kUle:  r = x <= y; break;
      case Kind::kSlt:  r = to_signed(x, w) < to_signed(y, w); break;
      case Kind::kSle:  r = to_signed(x, w) <= to_signed(y, w); break;
      default: assert(false && "not a foldable binary kind"); break;
    }
    return constant(r, width);
  }
  return intern(kind, width, 0, 0, 0, 0, a, b);
}

ExprRef Context::add(ExprRef a, ExprRef b) {
  if (a->is_const_val(0)) return b;
  if (b->is_const_val(0)) return a;
  // Canonicalize constants to the right so `(x + 1) + 2` style chains fold.
  if (a->is_const() && !b->is_const()) std::swap(a, b);
  if (b->is_const() && a->kind == Kind::kAdd && a->ops[1]->is_const())
    return add(a->ops[0], constant(a->ops[1]->constant + b->constant, b->width));
  return binary(Kind::kAdd, a, b);
}

ExprRef Context::sub(ExprRef a, ExprRef b) {
  if (b->is_const_val(0)) return a;
  if (a == b) return constant(0, a->width);
  if (b->is_const()) return add(a, constant(~b->constant + 1, b->width));
  return binary(Kind::kSub, a, b);
}

ExprRef Context::mul(ExprRef a, ExprRef b) {
  if (a->is_const() && !b->is_const()) std::swap(a, b);
  if (b->is_const_val(0)) return b;
  if (b->is_const_val(1)) return a;
  return binary(Kind::kMul, a, b);
}

ExprRef Context::udiv(ExprRef a, ExprRef b) {
  if (b->is_const_val(1)) return a;
  return binary(Kind::kUDiv, a, b);
}

ExprRef Context::urem(ExprRef a, ExprRef b) { return binary(Kind::kURem, a, b); }
ExprRef Context::sdiv(ExprRef a, ExprRef b) { return binary(Kind::kSDiv, a, b); }
ExprRef Context::srem(ExprRef a, ExprRef b) { return binary(Kind::kSRem, a, b); }

ExprRef Context::and_(ExprRef a, ExprRef b) {
  if (a == b) return a;
  if (a->is_const() && !b->is_const()) std::swap(a, b);
  if (b->is_const_val(0)) return b;
  if (b->is_const_val(mask_bits(a->width))) return a;
  return binary(Kind::kAnd, a, b);
}

ExprRef Context::or_(ExprRef a, ExprRef b) {
  if (a == b) return a;
  if (a->is_const() && !b->is_const()) std::swap(a, b);
  if (b->is_const_val(0)) return a;
  if (b->is_const_val(mask_bits(a->width))) return b;
  return binary(Kind::kOr, a, b);
}

ExprRef Context::xor_(ExprRef a, ExprRef b) {
  if (a == b) return constant(0, a->width);
  if (a->is_const() && !b->is_const()) std::swap(a, b);
  if (b->is_const_val(0)) return a;
  if (b->is_const_val(mask_bits(a->width))) return not_(a);
  return binary(Kind::kXor, a, b);
}

ExprRef Context::shl(ExprRef a, ExprRef amount) {
  if (amount->is_const_val(0)) return a;
  if (a->is_const_val(0)) return a;
  if (amount->is_const() && amount->constant >= a->width)
    return constant(0, a->width);
  return binary(Kind::kShl, a, amount);
}

ExprRef Context::lshr(ExprRef a, ExprRef amount) {
  if (amount->is_const_val(0)) return a;
  if (a->is_const_val(0)) return a;
  if (amount->is_const() && amount->constant >= a->width)
    return constant(0, a->width);
  return binary(Kind::kLShr, a, amount);
}

ExprRef Context::ashr(ExprRef a, ExprRef amount) {
  if (amount->is_const_val(0)) return a;
  return binary(Kind::kAShr, a, amount);
}

ExprRef Context::eq(ExprRef a, ExprRef b) {
  if (a == b) return bool_const(true);
  // Commutative, so a constant operand canonicalizes to the right at every
  // width (like add/mul/and/or/xor above); the simplifier's constant-chain
  // rules only need to match the `c == ops[1]` orientation.
  if (a->is_const() && !b->is_const()) std::swap(a, b);
  // Boolean equality against a constant reduces to identity / negation.
  if (a->width == 1 && b->is_const()) return b->constant ? a : not_(a);
  return binary(Kind::kEq, a, b);
}

ExprRef Context::ult(ExprRef a, ExprRef b) {
  if (a == b) return bool_const(false);
  if (b->is_const_val(0)) return bool_const(false);  // nothing is < 0
  if (a->is_const_val(0))
    return not_(eq(b, constant(0, b->width)));       // 0 < b  <=>  b != 0
  return binary(Kind::kUlt, a, b);
}

ExprRef Context::ule(ExprRef a, ExprRef b) {
  if (a == b) return bool_const(true);
  if (a->is_const_val(0)) return bool_const(true);
  if (b->is_const_val(mask_bits(b->width))) return bool_const(true);
  return binary(Kind::kUle, a, b);
}

ExprRef Context::slt(ExprRef a, ExprRef b) {
  if (a == b) return bool_const(false);
  return binary(Kind::kSlt, a, b);
}

ExprRef Context::sle(ExprRef a, ExprRef b) {
  if (a == b) return bool_const(true);
  return binary(Kind::kSle, a, b);
}

ExprRef Context::concat(ExprRef hi, ExprRef lo) {
  unsigned width = hi->width + lo->width;
  assert(width <= kMaxWidth);
  if (hi->is_const() && lo->is_const())
    return constant((hi->constant << lo->width) | lo->constant, width);
  if (hi->is_const_val(0)) return zext(lo, width);
  return intern(Kind::kConcat, width, 0, 0, 0, 0, hi, lo);
}

ExprRef Context::ite(ExprRef cond, ExprRef then_value, ExprRef else_value) {
  assert(cond->width == 1);
  assert(then_value->width == else_value->width);
  if (cond->is_const()) return cond->constant ? then_value : else_value;
  if (then_value == else_value) return then_value;
  if (cond->kind == Kind::kNot) return ite(cond->ops[0], else_value, then_value);
  // Boolean-valued ite reduces to connectives.
  if (then_value->width == 1) {
    if (then_value->is_true() && else_value->is_false()) return cond;
    if (then_value->is_false() && else_value->is_true()) return not_(cond);
  }
  return intern(Kind::kIte, then_value->width, 0, 0, 0, 0, cond, then_value,
                else_value);
}

}  // namespace binsym::smt
