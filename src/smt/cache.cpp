#include "smt/cache.hpp"

#include <algorithm>

namespace binsym::smt {

CheckResult CachingSolver::check(std::span<const ExprRef> assertions,
                                 Assignment* model) {
  std::vector<uint32_t> key;
  key.reserve(assertions.size());
  for (ExprRef assertion : assertions) {
    // `true` assertions don't affect satisfiability and would fragment keys.
    if (assertion->is_true()) continue;
    key.push_back(assertion->id);
  }
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());

  auto account = [this](CheckResult result) {
    ++stats_.queries;
    switch (result) {
      case CheckResult::kSat:     ++stats_.sat; break;
      case CheckResult::kUnsat:   ++stats_.unsat; break;
      case CheckResult::kUnknown: ++stats_.unknown; break;
    }
  };

  if (auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.cache_hits;
    account(it->second.result);
    if (model && it->second.result == CheckResult::kSat)
      *model = it->second.model;
    return it->second.result;
  }

  Assignment local;
  CheckResult result = inner_->check(assertions, &local);
  stats_.solve_seconds = inner_->stats().solve_seconds;
  account(result);
  if (model && result == CheckResult::kSat) *model = local;
  if (result != CheckResult::kUnknown)
    cache_.emplace(std::move(key), Entry{result, std::move(local)});
  return result;
}

}  // namespace binsym::smt
