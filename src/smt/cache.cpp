#include "smt/cache.hpp"

#include <algorithm>

namespace binsym::smt {

namespace {

size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

QueryCache::QueryCache(size_t shards)
    : shard_count_(round_up_pow2(std::max<size_t>(shards, 1))),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

QueryCache::Key QueryCache::key_for(std::span<const ExprRef> assertions) {
  return key_for(assertions, {});
}

QueryCache::Key QueryCache::key_for(std::span<const ExprRef> scoped,
                                    std::span<const ExprRef> assumptions) {
  Key key;
  key.reserve(scoped.size() + assumptions.size());
  for (std::span<const ExprRef> part : {scoped, assumptions}) {
    for (ExprRef assertion : part) {
      if (assertion->is_true()) continue;
      key.push_back(assertion->hash);
    }
  }
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

QueryCache::Shard& QueryCache::shard_for(const Key& key) {
  // FNV-1a over the hash sequence; shard count is a power of two.
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t hash : key) h = (h ^ hash) * 0x100000001b3ull;
  return shards_[h & (shard_count_ - 1)];
}

bool QueryCache::lookup(const Key& key, Entry* out) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.entries.find(key); it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (out) *out = it->second;
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void QueryCache::insert(const Key& key, Entry entry) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries.emplace(key, std::move(entry));
}

size_t QueryCache::size() const {
  size_t total = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    total += shards_[i].entries.size();
  }
  return total;
}

void QueryCache::clear() {
  for (size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    shards_[i].entries.clear();
  }
}

CheckResult CachingSolver::serve(const QueryCache::Key& key,
                                 std::span<const ExprRef> assertions,
                                 bool via_assumptions, Assignment* model) {
  auto account = [this](CheckResult result) {
    ++stats_.queries;
    switch (result) {
      case CheckResult::kSat:     ++stats_.sat; break;
      case CheckResult::kUnsat:   ++stats_.unsat; break;
      case CheckResult::kUnknown: ++stats_.unknown; break;
    }
  };

  QueryCache::Entry entry;
  if (cache_->lookup(key, &entry)) {
    ++stats_.cache_hits;
    account(entry.result);
    if (model && entry.result == CheckResult::kSat)
      *model = std::move(entry.model);
    return entry.result;
  }

  ++stats_.cache_misses;
  Assignment local;
  CheckResult result = via_assumptions
                           ? inner_->check_assuming(assertions, &local)
                           : inner_->check(assertions, &local);
  stats_.solve_seconds = inner_->stats().solve_seconds;
  stats_.incremental_checks = inner_->stats().incremental_checks;
  stats_.reused_assertions = inner_->stats().reused_assertions;
  account(result);
  if (model && result == CheckResult::kSat) *model = local;
  if (result != CheckResult::kUnknown)
    cache_->insert(key, QueryCache::Entry{result, std::move(local)});
  return result;
}

CheckResult CachingSolver::check(std::span<const ExprRef> assertions,
                                 Assignment* model) {
  return serve(QueryCache::key_for(assertions), assertions,
               /*via_assumptions=*/false, model);
}

void CachingSolver::push() {
  Solver::push();
  inner_->push();
}

void CachingSolver::pop() {
  Solver::pop();
  inner_->pop();
}

void CachingSolver::assert_(ExprRef assertion) {
  Solver::assert_(assertion);
  inner_->assert_(assertion);
}

CheckResult CachingSolver::check_assuming(std::span<const ExprRef> assumptions,
                                          Assignment* model) {
  return serve(QueryCache::key_for(scoped_assertions(), assumptions),
               assumptions, /*via_assumptions=*/true, model);
}

}  // namespace binsym::smt
