#include "smt/store.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace binsym::smt {

namespace {

// "bsymQS" + two format bytes; any mismatch means "not our file".
constexpr uint64_t kMagic = 0x6273796d51530a01ull;

uint64_t fnv1a(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian reader; any overrun flips `ok` and pins
/// every subsequent read, so decode loops can check once at the end.
struct Reader {
  const std::string& bytes;
  size_t pos = 0;
  bool ok = true;

  bool take(size_t n) {
    if (!ok || bytes.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos++]))
           << (8 * i);
    return v;
  }
  uint64_t u64() {
    if (!take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[pos++]))
           << (8 * i);
    return v;
  }
  std::string str() {
    const uint32_t size = u32();
    if (!take(size)) return {};
    std::string s = bytes.substr(pos, size);
    pos += size;
    return s;
  }
};

}  // namespace

std::shared_ptr<SolverStore> SolverStore::open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; load reports
  auto store = std::shared_ptr<SolverStore>(
      new SolverStore(dir + "/" + kFileName));
  std::ifstream in(store->path_, std::ios::binary);
  if (!in) return store;  // no file yet: clean cold start
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!store->deserialize(buffer.str(), &error)) {
    store->entries_.clear();
    store->load_error_ = error;
  }
  return store;
}

bool SolverStore::lookup(const QueryCache::Key& key, Entry* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (out) *out = it->second;
  return true;
}

bool SolverStore::lookup(const QueryCache::Key& key, uint32_t var_count,
                         Entry* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.var_count != var_count) {
    ++misses_;  // a var-count mismatch is a colliding key, not our entry
    return false;
  }
  ++hits_;
  if (out) *out = it->second;
  return true;
}

void SolverStore::insert(const QueryCache::Key& key, Entry entry) {
  if (entry.verdict == CheckResult::kUnknown) return;
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, std::move(entry));  // first verdict wins
}

size_t SolverStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

uint64_t SolverStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t SolverStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::string SolverStore::serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  put_u64(out, kMagic);
  put_u32(out, kFormatVersion);
  put_u64(out, entries_.size());
  for (const auto& [key, entry] : entries_) {
    put_u32(out, static_cast<uint32_t>(key.size()));
    for (uint64_t hash : key) put_u64(out, hash);
    out.push_back(entry.verdict == CheckResult::kSat ? 1 : 0);
    put_u32(out, entry.var_count);
    put_string(out, entry.backend);
    put_u64(out, std::bit_cast<uint64_t>(entry.solve_seconds));
    put_u32(out, static_cast<uint32_t>(entry.model.size()));
    for (const auto& [name, value] : entry.model) {
      put_string(out, name);
      put_u64(out, value);
    }
  }
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

bool SolverStore::deserialize(const std::string& bytes, std::string* error) {
  auto fail = [&](const char* why) {
    if (error) *error = why;
    return false;
  };
  if (bytes.size() < 8 + 4 + 8 + 8) return fail("file too short");
  const uint64_t checksum = fnv1a(bytes.data(), bytes.size() - 8);
  Reader tail{bytes, bytes.size() - 8};
  if (tail.u64() != checksum) return fail("checksum mismatch");

  Reader r{bytes};
  if (r.u64() != kMagic) return fail("bad magic");
  const uint32_t version = r.u32();
  if (version != kFormatVersion) return fail("format version skew");
  const uint64_t count = r.u64();

  // Length fields are validated against the bytes that could plausibly back
  // them before any allocation — a length that survived the checksum but
  // exceeds the file is corruption, not a 4 GiB resize request.
  auto plausible = [&](const Reader& reader, uint64_t n, size_t elem_size) {
    return n * elem_size <= bytes.size() - reader.pos;
  };
  std::map<QueryCache::Key, Entry> loaded;
  for (uint64_t i = 0; i < count && r.ok; ++i) {
    const uint32_t key_size = r.u32();
    if (!r.ok || !plausible(r, key_size, 8)) return fail("oversized key");
    QueryCache::Key key(key_size);
    for (uint64_t& hash : key) hash = r.u64();
    Entry entry;
    if (!r.take(1)) break;
    entry.verdict =
        bytes[r.pos++] ? CheckResult::kSat : CheckResult::kUnsat;
    entry.var_count = r.u32();
    entry.backend = r.str();
    entry.solve_seconds = std::bit_cast<double>(r.u64());
    const uint32_t model_size = r.u32();
    if (!r.ok || !plausible(r, model_size, 12)) return fail("oversized model");
    entry.model.resize(model_size);
    for (auto& [name, value] : entry.model) {
      name = r.str();
      value = r.u64();
    }
    if (r.ok) loaded.emplace(std::move(key), std::move(entry));
  }
  if (!r.ok || r.pos != bytes.size() - 8) return fail("truncated entry data");

  std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(loaded);
  return true;
}

bool SolverStore::flush() {
  const std::string bytes = serialize();
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace binsym::smt
