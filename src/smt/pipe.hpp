// SMT-LIB pipe backend: any external solver as a drop-in smt::Solver.
//
// Each check spawns the configured command, writes the query as the SMT-LIB
// text src/smt/smtlib.cpp prints (plus a trailing `(get-value ...)` over the
// query's free variables when a model is requested), and parses the verdict
// and model back from the child's stdout. The per-query deadline and the
// cooperative cancel flag both kill the child — like every backend, a
// timed-out or cancelled check returns kUnknown, never a wrong verdict. A
// command that cannot be spawned (missing binary) degrades every check to
// kUnknown instead of failing, and a child that dies mid-query merely ends
// the exchange (SIGPIPE is blocked around the pipe I/O, so a widowed write
// surfaces as EPIPE, never a fatal signal) — a misconfigured or crashing
// portfolio member is inert, not fatal.
//
// The in-tree `smtcheck` CLI (examples/smtcheck.cpp) speaks exactly this
// protocol over the in-tree backends, so the pipe can be exercised — in
// tests, CI and portfolios — without any external solver installed; a real
// `z3`/`cvc5`/`boolector` binary drops in via the same one-line command.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "smt/context.hpp"
#include "smt/solver.hpp"

namespace binsym::smt {

/// Split a solver command line into argv words (whitespace-separated; no
/// shell quoting — solver invocations are simple). Exposed for tests.
std::vector<std::string> split_command(const std::string& command);

/// Construct the pipe backend over `ctx`. `command` is the child command
/// line, resolved through PATH; it must read SMT-LIB from stdin and answer
/// on stdout (e.g. "z3 -in", "cvc5 --lang smt2", "build/smtcheck").
std::unique_ptr<Solver> make_pipe_solver(Context& ctx,
                                         const std::string& command);

}  // namespace binsym::smt
