#include "smt/slice.hpp"

#include <algorithm>

namespace binsym::smt {

namespace {

/// Minimal union-find over variable ids with path halving. Storage is
/// caller-provided so QuerySlicer can reuse it across calls.
uint32_t uf_find(std::vector<uint32_t>& parent, uint32_t v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];
    v = parent[v];
  }
  return v;
}

void uf_union(std::vector<uint32_t>& parent, uint32_t a, uint32_t b) {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  if (a != b) parent[b] = a;
}

void uf_prepare(std::vector<uint32_t>& parent,
                std::span<const uint32_t> vars) {
  for (uint32_t v : vars) {
    if (v >= parent.size()) parent.resize(v + 1);
    parent[v] = v;
  }
}

}  // namespace

std::vector<size_t> independence_groups(std::span<const ExprRef> constraints) {
  // Per-constraint variable sets.
  std::vector<std::vector<uint32_t>> var_sets;
  var_sets.reserve(constraints.size());
  NodeMarker marker;
  std::vector<uint32_t> parent;
  for (ExprRef constraint : constraints) {
    std::vector<uint32_t> vars;
    marker.clear();
    collect_vars_into(constraint, marker, vars);
    uf_prepare(parent, vars);
    var_sets.push_back(std::move(vars));
  }
  // Union each constraint's variables into one component.
  for (const std::vector<uint32_t>& vars : var_sets)
    for (size_t i = 1; i < vars.size(); ++i)
      uf_union(parent, vars[0], vars[i]);
  // Dense group ids in first-occurrence order; variable-free constraints
  // are singletons.
  std::vector<size_t> groups(constraints.size());
  std::vector<std::pair<uint32_t, size_t>> root_to_group;
  size_t next_group = 0;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (var_sets[i].empty()) {
      groups[i] = next_group++;
      continue;
    }
    uint32_t root = uf_find(parent, var_sets[i][0]);
    auto it = std::find_if(root_to_group.begin(), root_to_group.end(),
                           [root](const auto& p) { return p.first == root; });
    if (it == root_to_group.end()) {
      root_to_group.emplace_back(root, next_group);
      groups[i] = next_group++;
    } else {
      groups[i] = it->second;
    }
  }
  return groups;
}

const std::vector<uint32_t>& QuerySlicer::vars_of(ExprRef constraint) {
  uint32_t id = constraint->id;
  if (id >= var_sets_.size()) {
    var_sets_.resize(id + 1);
    var_sets_ready_.resize(id + 1, 0);
  }
  if (!var_sets_ready_[id]) {
    traversal_marker_.clear();
    collect_vars_into(constraint, traversal_marker_, var_sets_[id]);
    var_sets_ready_[id] = 1;
  }
  return var_sets_[id];
}

QuerySlicer::Result QuerySlicer::slice(std::span<const ExprRef> prefix,
                                       ExprRef target) {
  Result result;
  // By value: vars_of() may grow var_sets_ for the prefix constraints below,
  // invalidating references into it.
  const std::vector<uint32_t> target_vars = vars_of(target);

  // Reset the union-find for every variable this query touches.
  uf_prepare(parent_, target_vars);
  for (ExprRef constraint : prefix) uf_prepare(parent_, vars_of(constraint));

  // One component per constraint; the target's variables form the root
  // component the relevant groups are reached from.
  for (uint32_t v : target_vars) uf_union(parent_, target_vars[0], v);
  for (ExprRef constraint : prefix) {
    const std::vector<uint32_t>& vars = vars_of(constraint);
    for (size_t i = 1; i < vars.size(); ++i)
      uf_union(parent_, vars[0], vars[i]);
  }

  const bool have_target_vars = !target_vars.empty();
  const uint32_t target_root =
      have_target_vars ? uf_find(parent_, target_vars[0]) : 0;

  for (ExprRef constraint : prefix) {
    const std::vector<uint32_t>& vars = vars_of(constraint);
    bool keep;
    if (vars.empty()) {
      // A constant constraint: `true` never matters; anything else decides
      // the query by itself and must survive the slice.
      keep = !constraint->is_true();
    } else {
      keep = have_target_vars &&
             uf_find(parent_, vars[0]) == target_root;
    }
    if (keep) {
      result.query.push_back(constraint);
      result.vars.insert(result.vars.end(), vars.begin(), vars.end());
    } else {
      ++result.dropped;
    }
  }
  result.query.push_back(target);
  result.vars.insert(result.vars.end(), target_vars.begin(),
                     target_vars.end());
  std::sort(result.vars.begin(), result.vars.end());
  result.vars.erase(std::unique(result.vars.begin(), result.vars.end()),
                    result.vars.end());
  return result;
}

void restrict_to_vars(Assignment* model, const std::vector<uint32_t>& vars) {
  for (auto it = model->values.begin(); it != model->values.end();) {
    if (std::binary_search(vars.begin(), vars.end(), it->first)) {
      ++it;
    } else {
      it = model->values.erase(it);
    }
  }
}

}  // namespace binsym::smt
