#include "smt/expr.hpp"

#include <algorithm>

namespace binsym::smt {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kConst:   return "const";
    case Kind::kVar:     return "var";
    case Kind::kNot:     return "bvnot";
    case Kind::kNeg:     return "bvneg";
    case Kind::kExtract: return "extract";
    case Kind::kZExt:    return "zero_extend";
    case Kind::kSExt:    return "sign_extend";
    case Kind::kAdd:     return "bvadd";
    case Kind::kSub:     return "bvsub";
    case Kind::kMul:     return "bvmul";
    case Kind::kUDiv:    return "bvudiv";
    case Kind::kURem:    return "bvurem";
    case Kind::kSDiv:    return "bvsdiv";
    case Kind::kSRem:    return "bvsrem";
    case Kind::kAnd:     return "bvand";
    case Kind::kOr:      return "bvor";
    case Kind::kXor:     return "bvxor";
    case Kind::kShl:     return "bvshl";
    case Kind::kLShr:    return "bvlshr";
    case Kind::kAShr:    return "bvashr";
    case Kind::kEq:      return "=";
    case Kind::kUlt:     return "bvult";
    case Kind::kUle:     return "bvule";
    case Kind::kSlt:     return "bvslt";
    case Kind::kSle:     return "bvsle";
    case Kind::kConcat:  return "concat";
    case Kind::kIte:     return "ite";
  }
  return "?";
}

unsigned kind_arity(Kind kind) {
  switch (kind) {
    case Kind::kConst:
    case Kind::kVar:
      return 0;
    case Kind::kNot:
    case Kind::kNeg:
    case Kind::kExtract:
    case Kind::kZExt:
    case Kind::kSExt:
      return 1;
    case Kind::kIte:
      return 3;
    default:
      return 2;
  }
}

bool is_comparison(Kind kind) {
  switch (kind) {
    case Kind::kEq:
    case Kind::kUlt:
    case Kind::kUle:
    case Kind::kSlt:
    case Kind::kSle:
      return true;
    default:
      return false;
  }
}

size_t node_count(ExprRef root) {
  size_t n = 0;
  postorder(root, [&](ExprRef) { ++n; });
  return n;
}

size_t node_count(std::span<const ExprRef> roots) {
  size_t n = 0;
  NodeMarker marker;
  for (ExprRef root : roots) {
    if (!root) continue;
    postorder(root, marker, [&](ExprRef) { ++n; });
  }
  return n;
}

std::vector<uint32_t> collect_vars(std::span<const ExprRef> roots) {
  std::vector<uint32_t> vars;
  NodeMarker marker;
  for (ExprRef root : roots) {
    if (!root) continue;
    postorder(root, marker, [&](ExprRef node) {
      if (node->kind == Kind::kVar) vars.push_back(node->var_id);
    });
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

void collect_vars_into(ExprRef root, NodeMarker& marker,
                       std::vector<uint32_t>& out) {
  postorder(root, marker, [&](ExprRef node) {
    if (node->kind == Kind::kVar) out.push_back(node->var_id);
  });
}

bool structurally_equal(ExprRef a, ExprRef b) {
  std::vector<std::pair<ExprRef, ExprRef>> stack{{a, b}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (x == y) continue;  // shared sub-DAG (or both null)
    if (x->kind != y->kind || x->width != y->width ||
        x->num_ops != y->num_ops || x->constant != y->constant ||
        x->var_id != y->var_id || x->aux0 != y->aux0 || x->aux1 != y->aux1)
      return false;
    for (unsigned i = 0; i < x->num_ops; ++i)
      stack.emplace_back(x->ops[i], y->ops[i]);
  }
  return true;
}

}  // namespace binsym::smt
