// Solver portfolio: race several backends per query, keep the first
// definitive answer.
//
// Every member backend gets a persistent runner thread. A check publishes
// the query to all runners, which call their member's check() concurrently;
// the first definitive verdict (sat/unsat) wins the race and cancel()s the
// losers through the cooperative cancellation substrate in solver.hpp. The
// coordinator always waits for every member to return before the check
// completes, so no member is still touching the (single-threaded) query
// state when the engine resumes — the race is invisible to the caller,
// which sees an ordinary smt::Solver that is as strong as its strongest
// member: kUnknown only when *every* member gave up.
//
// Racing is sound because member checks only read the shared Context (the
// expression DAG is immutable and node construction never happens inside a
// backend's check); each member Solver object itself is confined to its
// runner thread, with the coordinator's mutex providing the happens-before
// edges between dispatches.
//
// A feature-based router avoids burning cores on queries one backend
// reliably wins: per query-feature bucket (size class x heavy-op mix) the
// portfolio keeps a win table from the races it has measured, and once one
// member has won at least `route_min_races` races in a bucket with a
// `route_win_share` share, subsequent queries in that bucket go to that
// member alone. A routed query that comes back kUnknown falls back to a
// full race, so routing can cost at most one redundant check, never an
// answer — and the fallback race is armed with only the *remaining* slice
// of the per-query deadline, so a routed check never spends more than the
// one configured budget (no budget left ⇒ the race is skipped entirely).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "smt/context.hpp"
#include "smt/solver.hpp"

namespace binsym::smt {

/// Router tuning; the defaults are deliberately conservative (route only
/// after clear evidence).
struct PortfolioConfig {
  /// Queries at or under this node count skip the race entirely and go to
  /// the first member — racing threads cost more than a tiny query.
  size_t cheap_node_threshold = 24;
  /// Minimum decided races in a feature bucket before routing there.
  uint64_t route_min_races = 8;
  /// Required win share (numerator/denominator) for routing: the leading
  /// member must have won at least wins * denom >= races * num.
  uint64_t route_win_num = 3;
  uint64_t route_win_denom = 4;
};

/// Construct a portfolio over the given members (at least one). Member
/// names (their name()) label race wins in stats and in the persistent
/// store. Ownership of the members transfers to the portfolio; their
/// runner threads are joined in the destructor.
std::unique_ptr<Solver> make_portfolio_solver(
    std::vector<std::unique_ptr<Solver>> members,
    PortfolioConfig config = {});

}  // namespace binsym::smt
