#include "smt/eval.hpp"

#include <cassert>

#include "support/bits.hpp"

namespace binsym::smt {

namespace {

uint64_t apply(ExprRef node, const uint64_t* op) {
  unsigned w = node->width;
  switch (node->kind) {
    case Kind::kConst:   return node->constant;
    case Kind::kVar:     assert(false && "handled by caller"); return 0;
    case Kind::kNot:     return truncate(~op[0], w);
    case Kind::kNeg:     return truncate(~op[0] + 1, w);
    case Kind::kExtract: return extract_bits(op[0], node->aux0, node->aux1);
    case Kind::kZExt:    return op[0];
    case Kind::kSExt:    return sext(op[0], node->ops[0]->width, w);
    case Kind::kAdd:     return truncate(op[0] + op[1], w);
    case Kind::kSub:     return truncate(op[0] - op[1], w);
    case Kind::kMul:     return truncate(op[0] * op[1], w);
    case Kind::kUDiv:    return udiv_bv(op[0], op[1], w);
    case Kind::kURem:    return urem_bv(op[0], op[1], w);
    case Kind::kSDiv:    return sdiv_bv(op[0], op[1], w);
    case Kind::kSRem:    return srem_bv(op[0], op[1], w);
    case Kind::kAnd:     return op[0] & op[1];
    case Kind::kOr:      return op[0] | op[1];
    case Kind::kXor:     return op[0] ^ op[1];
    case Kind::kShl:     return shl_bv(op[0], op[1], w);
    case Kind::kLShr:    return lshr_bv(op[0], op[1], w);
    case Kind::kAShr:    return ashr_bv(op[0], op[1], node->ops[0]->width);
    case Kind::kEq:      return op[0] == op[1];
    case Kind::kUlt:     return op[0] < op[1];
    case Kind::kUle:     return op[0] <= op[1];
    case Kind::kSlt:
      return to_signed(op[0], node->ops[0]->width) <
             to_signed(op[1], node->ops[0]->width);
    case Kind::kSle:
      return to_signed(op[0], node->ops[0]->width) <=
             to_signed(op[1], node->ops[0]->width);
    case Kind::kConcat:
      return truncate((op[0] << node->ops[1]->width) | op[1], w);
    case Kind::kIte:     return op[0] ? op[1] : op[2];
  }
  return 0;
}

// The memo keys on the structural content hash: in an interning context it
// is equivalent to keying on the node id (one node per structure), while in
// the legacy allocator it shares work across structural clones — two nodes
// with equal hashes are structurally equal and thus evaluate identically
// under any fixed assignment.
void evaluate_into(ExprRef root, const Assignment& assignment,
                   std::unordered_map<uint64_t, uint64_t>& memo) {
  postorder(root, [&](ExprRef node) {
    if (memo.count(node->hash)) return;
    uint64_t result;
    if (node->kind == Kind::kVar) {
      result = truncate(assignment.get(node->var_id), node->width);
    } else {
      uint64_t op[3] = {0, 0, 0};
      for (unsigned i = 0; i < node->num_ops; ++i)
        op[i] = memo.at(node->ops[i]->hash);
      result = apply(node, op);
    }
    memo.emplace(node->hash, result);
  });
}

}  // namespace

uint64_t evaluate(ExprRef root, const Assignment& assignment) {
  std::unordered_map<uint64_t, uint64_t> memo;
  evaluate_into(root, assignment, memo);
  return memo.at(root->hash);
}

uint64_t CachingEvaluator::evaluate(ExprRef root) {
  if (auto it = memo_.find(root->hash); it != memo_.end()) return it->second;
  evaluate_into(root, assignment_, memo_);
  return memo_.at(root->hash);
}

}  // namespace binsym::smt
