// Constraint-independence slicing (the KLEE-style optimization).
//
// A branch-flip query is a conjunction `prefix ∧ ¬cond` in which most
// prefix constraints share no variables — transitively — with the negated
// condition. Such constraints cannot affect the satisfiability of the
// group the condition lives in (the parent seed already satisfies them),
// so the solver only needs the variable-connected component(s) reachable
// from the condition's variables. Slicing shrinks the solver query, the
// query-cache key (sibling flips over disjoint groups collapse onto one
// key) and the set the model-reuse pre-check must evaluate.
//
// Soundness of the model merge: sliced-out constraints are variable-
// disjoint from the sliced group by construction, so a model of the sliced
// query combined with the parent seed's values for every other variable
// satisfies the full query (the engine's next_seed merge does exactly
// this; the solver model must therefore be restricted to the sliced
// query's variables before merging — see restrict_to_vars).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "smt/eval.hpp"
#include "smt/expr.hpp"

namespace binsym::smt {

/// Union-find partition of `constraints` into variable-connected groups.
/// Returns one group id per constraint, in [0, num constraints); two
/// constraints get the same id iff they are transitively linked by shared
/// variables. Constraints without variables (constants) each form their own
/// singleton group. Exposed primarily for tests; the engine path uses
/// QuerySlicer.
std::vector<size_t> independence_groups(std::span<const ExprRef> constraints);

/// Reusable slicer. Holds the per-constraint variable sets (memoized by
/// node id — expressions are hash-consed, so recurring prefix constraints
/// collect their variables once per worker, not once per flip) and the
/// union-find scratch. The partition itself is rebuilt per slice() call;
/// emitting the sliced query is O(prefix) per flip regardless, and the
/// variable sets dominate the constant factor.
///
/// Thread-safety: none — the memo is keyed by per-context node ids, so a
/// QuerySlicer is confined to one engine worker like the Context itself.
class QuerySlicer {
 public:
  struct Result {
    /// The sliced query: every prefix constraint variable-connected to the
    /// target, followed by the target itself (last element). Order of the
    /// kept prefix constraints is preserved.
    std::vector<ExprRef> query;
    /// Sorted distinct variable ids occurring in `query`.
    std::vector<uint32_t> vars;
    /// Number of prefix constraints sliced out.
    size_t dropped = 0;
  };

  /// Slice `prefix ∧ target` down to the component(s) of `target`.
  /// Constant (variable-free) prefix constraints are conservatively kept
  /// unless trivially true: dropping an unsatisfiable constant would turn
  /// an unsat query sat.
  Result slice(std::span<const ExprRef> prefix, ExprRef target);

 private:
  const std::vector<uint32_t>& vars_of(ExprRef constraint);

  // Per-constraint variable sets memoized by node id (hash-consing makes
  // the id a stable identity for the lifetime of the Context).
  std::vector<std::vector<uint32_t>> var_sets_;
  std::vector<uint8_t> var_sets_ready_;
  NodeMarker traversal_marker_;
  // Union-find over variable ids, rebuilt per slice() call.
  std::vector<uint32_t> parent_;
};

/// Drop every assignment for a variable outside `vars` (sorted ids) —
/// applied to solver models of sliced queries before the next_seed merge.
void restrict_to_vars(Assignment* model, const std::vector<uint32_t>& vars);

}  // namespace binsym::smt
