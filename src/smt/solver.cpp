#include "smt/solver.hpp"

#include <stdexcept>

namespace binsym::smt {

const char* check_result_name(CheckResult result) {
  switch (result) {
    case CheckResult::kSat:     return "sat";
    case CheckResult::kUnsat:   return "unsat";
    case CheckResult::kUnknown: return "unknown";
  }
  return "?";
}

// -- Base-class scoped API: the compatibility adapter. ------------------------
//
// Assertions stay client-side; check_assuming() replays scoped ∧ assumptions
// through one stateless check(). Correct for every backend; no reuse across
// checks beyond whatever the backend does internally.

void Solver::push() { scope_marks_.push_back(scoped_.size()); }

void Solver::pop() {
  if (scope_marks_.empty())
    throw std::logic_error("Solver::pop() without matching push()");
  scoped_.resize(scope_marks_.back());
  scope_marks_.pop_back();
}

void Solver::assert_(ExprRef assertion) { scoped_.push_back(assertion); }

CheckResult Solver::check_assuming(std::span<const ExprRef> assumptions,
                                   Assignment* model) {
  std::vector<ExprRef> all(scoped_.begin(), scoped_.end());
  all.insert(all.end(), assumptions.begin(), assumptions.end());
  // check() does its own accounting (queries/sat/unsat/solve_seconds); the
  // incremental counters record that this went through the scoped API.
  CheckResult result = check(all, model);
  ++stats_.incremental_checks;
  stats_.reused_assertions += scoped_.size();
  return result;
}

// -- ValidatingSolver. --------------------------------------------------------

CheckResult ValidatingSolver::validate(std::span<const ExprRef> assumptions,
                                       CheckResult result,
                                       const Assignment& model) {
  if (result != CheckResult::kSat) return result;
  auto check_one = [&](ExprRef assertion) {
    if (evaluate(assertion, model) != 1) {
      throw std::logic_error("solver '" + inner_->name() +
                             "' returned a model that does not satisfy the "
                             "query");
    }
  };
  for (ExprRef assertion : scoped_) check_one(assertion);
  for (ExprRef assertion : assumptions) check_one(assertion);
  return result;
}

CheckResult ValidatingSolver::check(std::span<const ExprRef> assertions,
                                    Assignment* model) {
  Assignment local;
  Assignment* target = model ? model : &local;
  CheckResult result = inner_->check(assertions, target);
  stats_ = inner_->stats();
  return validate(assertions, result, *target);
}

void ValidatingSolver::push() {
  Solver::push();
  inner_->push();
}

void ValidatingSolver::pop() {
  Solver::pop();
  inner_->pop();
}

void ValidatingSolver::assert_(ExprRef assertion) {
  Solver::assert_(assertion);
  inner_->assert_(assertion);
}

CheckResult ValidatingSolver::check_assuming(
    std::span<const ExprRef> assumptions, Assignment* model) {
  Assignment local;
  Assignment* target = model ? model : &local;
  CheckResult result = inner_->check_assuming(assumptions, target);
  stats_ = inner_->stats();
  return validate(assumptions, result, *target);
}

}  // namespace binsym::smt
