#include "smt/solver.hpp"

#include <stdexcept>

namespace binsym::smt {

const char* check_result_name(CheckResult result) {
  switch (result) {
    case CheckResult::kSat:     return "sat";
    case CheckResult::kUnsat:   return "unsat";
    case CheckResult::kUnknown: return "unknown";
  }
  return "?";
}

CheckResult ValidatingSolver::check(std::span<const ExprRef> assertions,
                                    Assignment* model) {
  Assignment local;
  Assignment* target = model ? model : &local;
  CheckResult result = inner_->check(assertions, target);
  stats_ = inner_->stats();
  if (result == CheckResult::kSat) {
    for (ExprRef assertion : assertions) {
      if (evaluate(assertion, *target) != 1) {
        throw std::logic_error("solver '" + inner_->name() +
                               "' returned a model that does not satisfy the "
                               "query");
      }
    }
  }
  return result;
}

}  // namespace binsym::smt
