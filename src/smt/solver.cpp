#include "smt/solver.hpp"

#include <stdexcept>

namespace binsym::smt {

const char* check_result_name(CheckResult result) {
  switch (result) {
    case CheckResult::kSat:     return "sat";
    case CheckResult::kUnsat:   return "unsat";
    case CheckResult::kUnknown: return "unknown";
  }
  return "?";
}

// -- Base-class scoped API: the compatibility adapter. ------------------------
//
// Assertions stay client-side; check_assuming() replays scoped ∧ assumptions
// through one stateless check(). Correct for every backend; no reuse across
// checks beyond whatever the backend does internally.

void Solver::push() { scope_marks_.push_back(scoped_.size()); }

void Solver::pop() {
  if (scope_marks_.empty())
    throw std::logic_error("Solver::pop() without matching push()");
  scoped_.resize(scope_marks_.back());
  scope_marks_.pop_back();
}

void Solver::assert_(ExprRef assertion) { scoped_.push_back(assertion); }

CheckResult Solver::check_assuming(std::span<const ExprRef> assumptions,
                                   Assignment* model) {
  std::vector<ExprRef> all(scoped_.begin(), scoped_.end());
  all.insert(all.end(), assumptions.begin(), assumptions.end());
  // check() does its own accounting (queries/sat/unsat/solve_seconds); the
  // incremental counters record that this went through the scoped API.
  CheckResult result = check(all, model);
  ++stats_.incremental_checks;
  stats_.reused_assertions += scoped_.size();
  return result;
}

// -- ValidatingSolver. --------------------------------------------------------

CheckResult ValidatingSolver::validate(std::span<const ExprRef> assumptions,
                                       CheckResult result,
                                       const Assignment& model) {
  if (result != CheckResult::kSat) return result;
  auto check_one = [&](ExprRef assertion) {
    if (evaluate(assertion, model) != 1) {
      throw std::logic_error("solver '" + inner_->name() +
                             "' returned a model that does not satisfy the "
                             "query");
    }
  };
  for (ExprRef assertion : scoped_) check_one(assertion);
  for (ExprRef assertion : assumptions) check_one(assertion);
  return result;
}

CheckResult ValidatingSolver::check(std::span<const ExprRef> assertions,
                                    Assignment* model) {
  Assignment local;
  Assignment* target = model ? model : &local;
  CheckResult result = inner_->check(assertions, target);
  stats_ = inner_->stats();
  return validate(assertions, result, *target);
}

void ValidatingSolver::push() {
  Solver::push();
  inner_->push();
}

void ValidatingSolver::pop() {
  Solver::pop();
  inner_->pop();
}

void ValidatingSolver::assert_(ExprRef assertion) {
  Solver::assert_(assertion);
  inner_->assert_(assertion);
}

CheckResult ValidatingSolver::check_assuming(
    std::span<const ExprRef> assumptions, Assignment* model) {
  Assignment local;
  Assignment* target = model ? model : &local;
  CheckResult result = inner_->check_assuming(assumptions, target);
  stats_ = inner_->stats();
  return validate(assumptions, result, *target);
}

// -- FailoverSolver. ----------------------------------------------------------

void FailoverSolver::refresh_stats() {
  // Report *logical* queries: a rescued check is still one query to the
  // caller, classified by its final verdict. Wall time and the incremental
  // counters sum the real backend work.
  SolverStats primary = primary_->stats();
  stats_.solve_seconds = primary.solve_seconds;
  stats_.incremental_checks = primary.incremental_checks;
  stats_.reused_assertions = primary.reused_assertions;
  if (secondary_) stats_.solve_seconds += secondary_->stats().solve_seconds;
  stats_.failover_rescues = rescues_;
  stats_.queries = logical_queries_;
}

CheckResult FailoverSolver::rescue(std::span<const ExprRef> assumptions,
                                   Assignment* model) {
  // A cancelled check's kUnknown is the caller's request, not a backend
  // failure — retrying it on the secondary would defeat the cancellation.
  if (cancel_requested()) return CheckResult::kUnknown;
  if (!secondary_ && secondary_factory_) {
    secondary_ = secondary_factory_();
    if (secondary_) secondary_->set_deadline_ms(deadline_ms_);
  }
  if (!secondary_) return CheckResult::kUnknown;
  // One standalone check over the live scoped assertions plus the
  // assumptions — exactly the conjunction the primary was deciding.
  std::vector<ExprRef> all(scoped_.begin(), scoped_.end());
  all.insert(all.end(), assumptions.begin(), assumptions.end());
  CheckResult result = CheckResult::kUnknown;
  try {
    result = secondary_->check(all, model);
  } catch (const std::exception&) {
    result = CheckResult::kUnknown;
  }
  if (result != CheckResult::kUnknown) {
    ++rescues_;
    last_rescued_ = true;
  }
  return result;
}

CheckResult FailoverSolver::check(std::span<const ExprRef> assertions,
                                  Assignment* model) {
  ++logical_queries_;
  last_rescued_ = false;
  CheckResult result = CheckResult::kUnknown;
  try {
    result = primary_->check(assertions, model);
  } catch (const std::exception&) {
    result = CheckResult::kUnknown;
  }
  // check() is only legal with no scopes open, so the rescue conjunction is
  // the assertions themselves (scoped_ is empty).
  if (result == CheckResult::kUnknown) result = rescue(assertions, model);
  switch (result) {
    case CheckResult::kSat:     ++stats_.sat; break;
    case CheckResult::kUnsat:   ++stats_.unsat; break;
    case CheckResult::kUnknown: ++stats_.unknown; break;
  }
  refresh_stats();
  return result;
}

void FailoverSolver::push() {
  Solver::push();
  primary_->push();
}

void FailoverSolver::pop() {
  Solver::pop();
  primary_->pop();
}

void FailoverSolver::assert_(ExprRef assertion) {
  Solver::assert_(assertion);
  primary_->assert_(assertion);
}

CheckResult FailoverSolver::check_assuming(std::span<const ExprRef> assumptions,
                                           Assignment* model) {
  ++logical_queries_;
  last_rescued_ = false;
  CheckResult result = CheckResult::kUnknown;
  try {
    result = primary_->check_assuming(assumptions, model);
  } catch (const std::exception&) {
    result = CheckResult::kUnknown;
  }
  if (result == CheckResult::kUnknown) result = rescue(assumptions, model);
  switch (result) {
    case CheckResult::kSat:     ++stats_.sat; break;
    case CheckResult::kUnsat:   ++stats_.unsat; break;
    case CheckResult::kUnknown: ++stats_.unknown; break;
  }
  refresh_stats();
  return result;
}

void FailoverSolver::set_deadline_ms(uint32_t ms) {
  Solver::set_deadline_ms(ms);
  primary_->set_deadline_ms(ms);
  if (secondary_) secondary_->set_deadline_ms(ms);
}

// -- FaultInjectingSolver. ----------------------------------------------------

bool FaultInjectingSolver::inject() {
  if (!plan_) return false;
  if (plan_->fire(support::FaultSite::kSolverThrow))
    throw support::FaultInjected("injected solver backend failure");
  if (plan_->fire(support::FaultSite::kSolverUnknown)) {
    ++injected_unknown_;
    return true;
  }
  return false;
}

CheckResult FaultInjectingSolver::check(std::span<const ExprRef> assertions,
                                        Assignment* model) {
  if (inject()) {
    refresh_stats();
    return CheckResult::kUnknown;
  }
  CheckResult result = inner_->check(assertions, model);
  refresh_stats();
  return result;
}

void FaultInjectingSolver::push() {
  Solver::push();
  inner_->push();
}

void FaultInjectingSolver::pop() {
  Solver::pop();
  inner_->pop();
}

void FaultInjectingSolver::assert_(ExprRef assertion) {
  Solver::assert_(assertion);
  inner_->assert_(assertion);
}

CheckResult FaultInjectingSolver::check_assuming(
    std::span<const ExprRef> assumptions, Assignment* model) {
  if (inject()) {
    refresh_stats();
    return CheckResult::kUnknown;
  }
  CheckResult result = inner_->check_assuming(assumptions, model);
  refresh_stats();
  return result;
}

void FaultInjectingSolver::refresh_stats() {
  // Injected-unknown checks never reach the backend, so they are layered
  // on top of the inner solver's counters here.
  stats_ = inner_->stats();
  stats_.queries += injected_unknown_;
  stats_.unknown += injected_unknown_;
}

}  // namespace binsym::smt
