// Query cache.
//
// DFS path exploration re-checks many structurally identical prefixes;
// because expressions are hash-consed, a query is identified by the sorted
// multiset of its assertion node ids, making cache lookups O(n log n) in the
// number of assertions with no re-hashing of the DAG. Sat results keep their
// model so a hit can reseed execution without a solver round trip.
//
// QueryCache is the storage: sharded and thread-safe, so it can be shared
// by several CachingSolvers over the *same* Context (node ids are
// per-context, so solvers over different contexts must not share one).
// CachingSolver is the smt::Solver wrapper the engine layers over a
// backend; it keeps per-solver hit/miss counters in its SolverStats while
// the cache keeps process-wide atomic totals.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "smt/solver.hpp"

namespace binsym::smt {

class QueryCache {
 public:
  struct Entry {
    CheckResult result = CheckResult::kUnknown;
    Assignment model;  // valid when result == kSat
  };

  /// `shards` is rounded up to a power of two; more shards mean less lock
  /// contention when many solvers share one cache.
  explicit QueryCache(size_t shards = 8);

  /// Canonical cache key for a query: sorted, deduplicated assertion ids
  /// with `true` assertions dropped (they cannot affect satisfiability and
  /// would fragment keys).
  static std::vector<uint32_t> key_for(std::span<const ExprRef> assertions);

  /// Same canonical key over the conjunction of two assertion lists (the
  /// incremental path: scoped assertions ∧ check assumptions).
  static std::vector<uint32_t> key_for(std::span<const ExprRef> scoped,
                                       std::span<const ExprRef> assumptions);

  /// True (and fills *out) on a hit. Counts a hit or a miss.
  bool lookup(const std::vector<uint32_t>& key, Entry* out);

  /// Insert (first writer wins on a racing duplicate).
  void insert(const std::vector<uint32_t>& key, Entry entry);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t num_shards() const { return shard_count_; }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::vector<uint32_t>, Entry> entries;
  };

  Shard& shard_for(const std::vector<uint32_t>& key);

  size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

class CachingSolver final : public Solver {
 public:
  /// Private cache (the common case: one solver, one context).
  explicit CachingSolver(std::unique_ptr<Solver> inner)
      : CachingSolver(std::move(inner), std::make_shared<QueryCache>()) {}

  /// Shared cache; every sharing solver must run over the same Context.
  CachingSolver(std::unique_ptr<Solver> inner, std::shared_ptr<QueryCache> cache)
      : inner_(std::move(inner)), cache_(std::move(cache)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override;

  // Scoped API: push/pop/assert_ forward to the inner backend while the
  // wrapper mirrors the live assertion set (base-class scoped_), so a
  // check_assuming() can be keyed by the canonical id set of
  // scoped ∧ assumptions. The key is identical to the one a stateless
  // check() over the same conjunction produces, so incremental and
  // non-incremental explorations share cache entries.
  void push() override;
  void pop() override;
  void assert_(ExprRef assertion) override;
  CheckResult check_assuming(std::span<const ExprRef> assumptions,
                             Assignment* model) override;

  std::string name() const override { return inner_->name() + "+cache"; }
  void set_deadline_ms(uint32_t ms) override {
    Solver::set_deadline_ms(ms);
    inner_->set_deadline_ms(ms);
  }

  Solver& inner() { return *inner_; }
  QueryCache& cache() { return *cache_; }
  size_t size() const { return cache_->size(); }
  void clear() { cache_->clear(); }

 private:
  /// Common serve path: answer `key` from the cache or forward to the inner
  /// solver (stateless check when `via_assumptions` is false, scoped
  /// check_assuming otherwise) and fill the cache with the verdict.
  CheckResult serve(const std::vector<uint32_t>& key,
                    std::span<const ExprRef> assertions, bool via_assumptions,
                    Assignment* model);

  std::unique_ptr<Solver> inner_;
  std::shared_ptr<QueryCache> cache_;
};

}  // namespace binsym::smt
