// Query cache.
//
// DFS path exploration re-checks many structurally identical prefixes;
// because expressions are hash-consed, a query is identified by the sorted
// multiset of its assertion node ids, making cache lookups O(n log n) in the
// number of assertions with no re-hashing of the DAG. Sat results keep their
// model so a hit can reseed execution without a solver round trip.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "smt/solver.hpp"

namespace binsym::smt {

class CachingSolver final : public Solver {
 public:
  explicit CachingSolver(std::unique_ptr<Solver> inner)
      : inner_(std::move(inner)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override;
  std::string name() const override { return inner_->name() + "+cache"; }

  Solver& inner() { return *inner_; }
  size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  struct Entry {
    CheckResult result;
    Assignment model;  // valid when result == kSat
  };

  std::unique_ptr<Solver> inner_;
  std::map<std::vector<uint32_t>, Entry> cache_;
};

}  // namespace binsym::smt
