// Query cache.
//
// DFS path exploration re-checks many structurally identical prefixes; a
// query is identified by the sorted set of its assertions' 64-bit structural
// content hashes (computed once at node construction by the Context arena),
// making cache lookups O(n log n) in the number of assertions with no
// re-hashing of the DAG. Sat results keep their model so a hit can reseed
// execution without a solver round trip.
//
// QueryCache is the storage: sharded and thread-safe. Because content
// hashes are stable across contexts and across the intern toggle (see
// context.hpp), a cache may be shared by CachingSolvers over *different*
// contexts, and keys survive a context teardown — the property the
// persistent content-addressed cache of ROADMAP item 4 builds on.
// CachingSolver is the smt::Solver wrapper the engine layers over a
// backend; it keeps per-solver hit/miss counters in its SolverStats while
// the cache keeps process-wide atomic totals.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "smt/solver.hpp"

namespace binsym::smt {

class QueryCache {
 public:
  struct Entry {
    CheckResult result = CheckResult::kUnknown;
    Assignment model;  // valid when result == kSat
  };

  /// Canonical query key: the sorted, deduplicated content hashes of the
  /// assertions, with `true` assertions dropped (they cannot affect
  /// satisfiability and would fragment keys).
  using Key = std::vector<uint64_t>;

  /// `shards` is rounded up to a power of two; more shards mean less lock
  /// contention when many solvers share one cache.
  explicit QueryCache(size_t shards = 8);

  static Key key_for(std::span<const ExprRef> assertions);

  /// Same canonical key over the conjunction of two assertion lists (the
  /// incremental path: scoped assertions ∧ check assumptions).
  static Key key_for(std::span<const ExprRef> scoped,
                     std::span<const ExprRef> assumptions);

  /// True (and fills *out) on a hit. Counts a hit or a miss.
  bool lookup(const Key& key, Entry* out);

  /// Insert (first writer wins on a racing duplicate).
  void insert(const Key& key, Entry entry);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t num_shards() const { return shard_count_; }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, Entry> entries;
  };

  Shard& shard_for(const Key& key);

  size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

class CachingSolver final : public Solver {
 public:
  /// Private cache (the common case: one solver, one context).
  explicit CachingSolver(std::unique_ptr<Solver> inner)
      : CachingSolver(std::move(inner), std::make_shared<QueryCache>()) {}

  /// Shared cache; content-hash keys make sharing safe across contexts.
  CachingSolver(std::unique_ptr<Solver> inner, std::shared_ptr<QueryCache> cache)
      : inner_(std::move(inner)), cache_(std::move(cache)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override;

  // Scoped API: push/pop/assert_ forward to the inner backend while the
  // wrapper mirrors the live assertion set (base-class scoped_), so a
  // check_assuming() can be keyed by the canonical id set of
  // scoped ∧ assumptions. The key is identical to the one a stateless
  // check() over the same conjunction produces, so incremental and
  // non-incremental explorations share cache entries.
  void push() override;
  void pop() override;
  void assert_(ExprRef assertion) override;
  CheckResult check_assuming(std::span<const ExprRef> assumptions,
                             Assignment* model) override;

  std::string name() const override { return inner_->name() + "+cache"; }
  std::string last_backend() const override { return inner_->last_backend(); }
  void set_deadline_ms(uint32_t ms) override {
    Solver::set_deadline_ms(ms);
    inner_->set_deadline_ms(ms);
  }
  void cancel() override {
    Solver::cancel();
    inner_->cancel();
  }
  void reset_cancel() override {
    Solver::reset_cancel();
    inner_->reset_cancel();
  }

  Solver& inner() { return *inner_; }
  QueryCache& cache() { return *cache_; }
  size_t size() const { return cache_->size(); }
  void clear() { cache_->clear(); }

 private:
  /// Common serve path: answer `key` from the cache or forward to the inner
  /// solver (stateless check when `via_assumptions` is false, scoped
  /// check_assuming otherwise) and fill the cache with the verdict.
  CheckResult serve(const QueryCache::Key& key,
                    std::span<const ExprRef> assertions, bool via_assumptions,
                    Assignment* model);

  std::unique_ptr<Solver> inner_;
  std::shared_ptr<QueryCache> cache_;
};

}  // namespace binsym::smt
