// Concrete evaluation of expression DAGs under a variable assignment.
//
// Used by (a) the concolic interpreter to keep concrete shadows of symbolic
// values, (b) model validation in tests ("is the model returned by the
// solver actually a solution?") and (c) the differential properties that
// check the simplifier and the bit-blaster against Z3.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "smt/expr.hpp"

namespace binsym::smt {

/// Variable assignment: var_id -> canonical value. Unassigned variables
/// evaluate to zero (model completion), like Z3's `model_completion=true`.
struct Assignment {
  std::unordered_map<uint32_t, uint64_t> values;

  uint64_t get(uint32_t var_id) const {
    auto it = values.find(var_id);
    return it == values.end() ? 0 : it->second;
  }
  void set(uint32_t var_id, uint64_t value) { values[var_id] = value; }
};

/// Evaluate `root` under `assignment`; the result is canonical for
/// `root->width`. The evaluation semantics are exactly SMT-LIB's (saturating
/// shifts, total division).
uint64_t evaluate(ExprRef root, const Assignment& assignment);

/// Evaluator with a persistent memo table, for callers that evaluate many
/// roots over one fixed assignment (e.g. a whole path condition). The memo
/// keys on the arena's structural content hash, so structural clones from a
/// non-interning context share entries; distinct structures never alias
/// (equal hashes imply equal structure, pinned by test_smt_property.cpp).
class CachingEvaluator {
 public:
  explicit CachingEvaluator(const Assignment& assignment)
      : assignment_(assignment) {}

  uint64_t evaluate(ExprRef root);

 private:
  const Assignment& assignment_;
  std::unordered_map<uint64_t, uint64_t> memo_;
};

}  // namespace binsym::smt
