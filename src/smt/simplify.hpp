// Structural simplification pass.
//
// Context builders already perform local peephole folding at construction
// time; this pass re-runs them bottom-up over an existing DAG and adds a few
// non-local rewrites (constant propagation through compare-of-add chains,
// ite condition sinking). It is idempotent and semantics-preserving, which
// the property tests check by evaluating random DAGs under random
// assignments before and after simplification.
#pragma once

#include "smt/context.hpp"
#include "smt/expr.hpp"

namespace binsym::smt {

/// Rebuild `root` bottom-up through `ctx`'s folding builders and extra rules.
ExprRef simplify(Context& ctx, ExprRef root);

/// Simplify with a caller-provided memo table so that repeated calls over
/// overlapping DAGs (e.g. a whole path condition) share work. The memo keys
/// on the dense arena id (source node -> simplified node within `ctx`), so
/// it is sound in both intern modes: ids are unique per node, and with the
/// legacy allocator structural clones simply occupy separate entries.
ExprRef simplify(Context& ctx, ExprRef root,
                 std::unordered_map<uint32_t, ExprRef>& memo);

}  // namespace binsym::smt
