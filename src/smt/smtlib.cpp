#include "smt/smtlib.hpp"

#include <sstream>
#include <unordered_map>

#include "support/format.hpp"

namespace binsym::smt {

namespace {

/// Width-1 bitvector constants print as #b0/#b1 for readability; wider
/// non-nibble widths use #b as well since #x needs a multiple of four bits.
std::string const_text(uint64_t value, unsigned width) {
  if (width % 4) return "#b" + bin_bv(value, width);
  return "#x" + hex_bv(value, width);
}

/// Builds the body string of one expression; shared sub-DAGs are referenced
/// through let-bound names instead of being inlined.
class Renderer {
 public:
  explicit Renderer(const Context& ctx) : ctx_(ctx) {}

  /// Compute reference counts under all roots (for let-extraction).
  void count_refs(const std::vector<ExprRef>& roots) {
    std::unordered_map<uint32_t, bool> seen;
    for (ExprRef root : roots) {
      if (seen.count(root->id)) {
        ++refs_[root->id];
        continue;
      }
      postorder(root, [&](ExprRef node) {
        seen.emplace(node->id, true);
        for (unsigned i = 0; i < node->num_ops; ++i) ++refs_[node->ops[i]->id];
      });
      ++refs_[root->id];
    }
  }

  /// Emit `root`, reusing let bindings created by earlier calls. Bindings
  /// shared between assertions must therefore be emitted by a caller that
  /// wraps all assertions in one binding scope; `take_bindings` returns the
  /// accumulated (name, definition) list in dependency order.
  std::string render(ExprRef root) {
    std::string out;
    postorder(root, [&](ExprRef node) {
      if (body_.count(node->id)) return;
      std::string text = node_text(node);
      if (node->num_ops > 0 && refs_[node->id] > 1) {
        // Sequential binding-order names, not node ids: the printed text
        // depends only on the DAG's structure and sharing, never on
        // per-context allocation order.
        std::string name = "?e" + std::to_string(bindings_.size());
        bindings_.emplace_back(name, text);
        body_.emplace(node->id, name);
      } else {
        body_.emplace(node->id, std::move(text));
      }
    });
    return body_.at(root->id);
  }

  const std::vector<std::pair<std::string, std::string>>& bindings() const {
    return bindings_;
  }

 private:
  std::string node_text(ExprRef node) {
    switch (node->kind) {
      case Kind::kConst:
        return const_text(node->constant, node->width);
      case Kind::kVar:
        return ctx_.var_info(node->var_id).name;
      case Kind::kExtract:
        return strprintf("((_ extract %u %u) %s)", node->aux0, node->aux1,
                         op(node, 0).c_str());
      case Kind::kZExt:
        return strprintf("((_ zero_extend %u) %s)",
                         node->width - node->ops[0]->width,
                         op(node, 0).c_str());
      case Kind::kSExt:
        return strprintf("((_ sign_extend %u) %s)",
                         node->width - node->ops[0]->width,
                         op(node, 0).c_str());
      case Kind::kIte:
        // The width-1 condition needs a Bool coercion.
        return "(ite (= " + op(node, 0) + " #b1) " + op(node, 1) + " " +
               op(node, 2) + ")";
      default: {
        std::string out = std::string("(") + kind_name(node->kind);
        for (unsigned i = 0; i < node->num_ops; ++i) out += " " + op(node, i);
        out += ")";
        // Comparisons are Bool-sorted in SMT-LIB but width-1 bitvectors in
        // this algebra; re-embed them so every operator stays well-sorted.
        if (is_comparison(node->kind)) out = "(ite " + out + " #b1 #b0)";
        return out;
      }
    }
  }

  std::string op(ExprRef node, unsigned i) {
    return body_.at(node->ops[i]->id);
  }

  const Context& ctx_;
  std::unordered_map<uint32_t, unsigned> refs_;
  std::unordered_map<uint32_t, std::string> body_;
  std::vector<std::pair<std::string, std::string>> bindings_;
};

std::string wrap_lets(
    const std::vector<std::pair<std::string, std::string>>& bindings,
    const std::string& body) {
  std::string out;
  for (const auto& [name, def] : bindings)
    out += "(let ((" + name + " " + def + ")) ";
  out += body;
  out.append(bindings.size(), ')');
  return out;
}

}  // namespace

std::string to_smtlib(const Context& ctx, ExprRef root) {
  Renderer renderer(ctx);
  renderer.count_refs({root});
  std::string body = renderer.render(root);
  return wrap_lets(renderer.bindings(), body);
}

void print_query(std::ostream& os, const Context& ctx,
                 const std::vector<ExprRef>& assertions, bool with_check_sat) {
  os << "(set-logic QF_BV)\n";
  for (uint32_t var_id : collect_vars(assertions)) {
    const VarInfo& info = ctx.var_info(var_id);
    os << "(declare-const " << info.name << " (_ BitVec " << info.width
       << "))\n";
  }
  // One binding scope per assertion keeps queries independent and valid.
  for (ExprRef assertion : assertions) {
    Renderer renderer(ctx);
    renderer.count_refs({assertion});
    std::string body = renderer.render(assertion);
    // Width-1 bitvectors model booleans; assert needs a Bool sort.
    std::string boolified = "(= " + body + " #b1)";
    os << "(assert " << wrap_lets(renderer.bindings(), boolified) << ")\n";
  }
  if (with_check_sat) os << "(check-sat)\n";
}

std::string query_string(const Context& ctx,
                         const std::vector<ExprRef>& assertions,
                         bool with_check_sat) {
  std::ostringstream os;
  print_query(os, ctx, assertions, with_check_sat);
  return os.str();
}

// -- Parsing (the printer's grammar, inverted). ------------------------------

namespace {

/// Recursive-descent parser over exactly the subset print_query/to_smtlib
/// emit. `let` is treated as sequential binding, which coincides with
/// SMT-LIB's parallel semantics for the printer's output (every binding
/// gets a fresh generated name).
class Parser {
 public:
  Parser(Context& ctx, const std::string& text) : ctx_(ctx), text_(text) {}

  ExprRef parse_expr() {
    ExprRef e = expr();
    if (e && !at_end()) {
      fail("trailing input after expression");
      return nullptr;
    }
    return e;
  }

  bool parse_query(std::vector<ExprRef>* assertions) {
    while (!at_end()) {
      if (!consume('(')) return fail("expected a command");
      std::string cmd = symbol();
      if (cmd == "set-logic") {
        symbol();
      } else if (cmd == "set-option") {
        symbol();  // option keyword, e.g. :produce-models
        symbol();  // value
      } else if (cmd == "check-sat") {
        // no operands
      } else if (cmd == "declare-const") {
        std::string name = symbol();
        if (name.empty()) return fail("declare-const: missing name");
        if (!consume('(')) return fail("declare-const: expected sort");
        if (symbol() != "_" || symbol() != "BitVec")
          return fail("declare-const: only (_ BitVec w) sorts are supported");
        unsigned width = 0;
        if (!number(&width) || width < 1 || width > 64)
          return fail("declare-const: bad width");
        if (!consume(')')) return fail("declare-const: unbalanced sort");
        ctx_.var(name, width);
      } else if (cmd == "assert") {
        ExprRef e = expr();
        if (!e) return false;
        if (e->width != 1) return fail("assert: expected a Bool (width 1)");
        assertions->push_back(e);
      } else {
        return fail("unsupported command: " + cmd);
      }
      if (!consume(')')) return fail("unbalanced command");
    }
    return true;
  }

  const std::string& error() const { return err_; }

 private:
  bool fail(const std::string& message) {
    if (err_.empty()) err_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    if (!peek(c)) return false;
    ++pos_;
    return true;
  }

  /// Next symbol or literal token (empty at a paren or end of input).
  std::string symbol() {
    skip_ws();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           text_[pos_] != ' ' && text_[pos_] != '\t' && text_[pos_] != '\n' &&
           text_[pos_] != '\r' && text_[pos_] != ';')
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  bool number(unsigned* out) {
    std::string tok = symbol();
    if (tok.empty()) return false;
    unsigned value = 0;
    for (char c : tok) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<unsigned>(c - '0');
      if (value > 1000000) return false;
    }
    *out = value;
    return true;
  }

  ExprRef literal(const std::string& tok) {
    uint64_t value = 0;
    unsigned width = 0;
    if (tok.size() > 2 && tok[1] == 'b') {
      width = static_cast<unsigned>(tok.size() - 2);
      for (size_t i = 2; i < tok.size(); ++i) {
        if (tok[i] != '0' && tok[i] != '1') {
          fail("bad binary literal: " + tok);
          return nullptr;
        }
        value = (value << 1) | static_cast<uint64_t>(tok[i] - '0');
      }
    } else if (tok.size() > 2 && tok[1] == 'x') {
      width = static_cast<unsigned>(4 * (tok.size() - 2));
      for (size_t i = 2; i < tok.size(); ++i) {
        char c = tok[i];
        unsigned digit;
        if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
        else {
          fail("bad hex literal: " + tok);
          return nullptr;
        }
        value = (value << 4) | digit;
      }
    } else {
      fail("bad literal: " + tok);
      return nullptr;
    }
    if (width < 1 || width > 64) {
      fail("literal width out of range: " + tok);
      return nullptr;
    }
    return ctx_.constant(value, width);
  }

  ExprRef indexed() {
    // Inside "((_": the indexed-operator head, then the single operand.
    std::string op = symbol();
    unsigned n0 = 0, n1 = 0;
    if (op == "extract") {
      if (!number(&n0) || !number(&n1) || n0 < n1) {
        fail("extract: bad indices");
        return nullptr;
      }
    } else if (op == "zero_extend" || op == "sign_extend") {
      if (!number(&n0)) {
        fail(op + ": bad index");
        return nullptr;
      }
    } else {
      fail("unsupported indexed operator: " + op);
      return nullptr;
    }
    if (!consume(')')) {
      fail("unbalanced indexed operator");
      return nullptr;
    }
    ExprRef a = expr();
    if (!a) return nullptr;
    if (!consume(')')) {
      fail("unbalanced application");
      return nullptr;
    }
    if (op == "extract") {
      if (n0 >= a->width) {
        fail("extract: index exceeds operand width");
        return nullptr;
      }
      return ctx_.extract(a, n0, n1);
    }
    if (a->width + n0 > 64) {
      fail(op + ": result width out of range");
      return nullptr;
    }
    return op == "zero_extend" ? ctx_.zext(a, a->width + n0)
                               : ctx_.sext(a, a->width + n0);
  }

  ExprRef let_form() {
    if (!consume('(')) {
      fail("let: expected bindings");
      return nullptr;
    }
    std::vector<std::pair<std::string, ExprRef>> shadowed;
    while (consume('(')) {
      std::string name = symbol();
      if (name.empty()) {
        fail("let: missing binding name");
        return nullptr;
      }
      ExprRef def = expr();
      if (!def) return nullptr;
      if (!consume(')')) {
        fail("let: unbalanced binding");
        return nullptr;
      }
      auto it = env_.find(name);
      shadowed.emplace_back(name, it == env_.end() ? nullptr : it->second);
      env_[name] = def;
    }
    ExprRef body = nullptr;
    if (!consume(')')) {
      fail("let: unbalanced binding list");
    } else if ((body = expr()) && !consume(')')) {
      fail("let: unbalanced body");
      body = nullptr;
    }
    for (auto it = shadowed.rbegin(); it != shadowed.rend(); ++it) {
      if (it->second)
        env_[it->first] = it->second;
      else
        env_.erase(it->first);
    }
    return body;
  }

  ExprRef application(const std::string& op) {
    std::vector<ExprRef> args;
    while (!peek(')')) {
      if (at_end()) {
        fail("unbalanced application: " + op);
        return nullptr;
      }
      ExprRef arg = expr();
      if (!arg) return nullptr;
      args.push_back(arg);
    }
    ++pos_;  // ')'
    auto want = [&](size_t n) {
      if (args.size() == n) return true;
      fail(op + ": expected " + std::to_string(n) + " operands");
      return false;
    };
    auto bin_widths = [&] {
      if (args[0]->width == args[1]->width) return true;
      fail(op + ": operand widths differ");
      return false;
    };
    if (op == "bvnot") return want(1) ? ctx_.not_(args[0]) : nullptr;
    if (op == "bvneg") return want(1) ? ctx_.neg(args[0]) : nullptr;
    if (op == "ite") {
      if (!want(3)) return nullptr;
      if (args[0]->width != 1 || args[1]->width != args[2]->width) {
        fail("ite: bad operand widths");
        return nullptr;
      }
      return ctx_.ite(args[0], args[1], args[2]);
    }
    if (op == "concat") {
      if (!want(2)) return nullptr;
      if (args[0]->width + args[1]->width > 64) {
        fail("concat: result width out of range");
        return nullptr;
      }
      return ctx_.concat(args[0], args[1]);
    }
    if (!want(2) || !bin_widths()) return nullptr;
    if (op == "bvadd")  return ctx_.add(args[0], args[1]);
    if (op == "bvsub")  return ctx_.sub(args[0], args[1]);
    if (op == "bvmul")  return ctx_.mul(args[0], args[1]);
    if (op == "bvudiv") return ctx_.udiv(args[0], args[1]);
    if (op == "bvurem") return ctx_.urem(args[0], args[1]);
    if (op == "bvsdiv") return ctx_.sdiv(args[0], args[1]);
    if (op == "bvsrem") return ctx_.srem(args[0], args[1]);
    if (op == "bvand")  return ctx_.and_(args[0], args[1]);
    if (op == "bvor")   return ctx_.or_(args[0], args[1]);
    if (op == "bvxor")  return ctx_.xor_(args[0], args[1]);
    if (op == "bvshl")  return ctx_.shl(args[0], args[1]);
    if (op == "bvlshr") return ctx_.lshr(args[0], args[1]);
    if (op == "bvashr") return ctx_.ashr(args[0], args[1]);
    if (op == "=")      return ctx_.eq(args[0], args[1]);
    if (op == "bvult")  return ctx_.ult(args[0], args[1]);
    if (op == "bvule")  return ctx_.ule(args[0], args[1]);
    if (op == "bvslt")  return ctx_.slt(args[0], args[1]);
    if (op == "bvsle")  return ctx_.sle(args[0], args[1]);
    fail("unsupported operator: " + op);
    return nullptr;
  }

  ExprRef expr() {
    if (at_end()) {
      fail("unexpected end of input");
      return nullptr;
    }
    if (!consume('(')) {
      std::string tok = symbol();
      if (tok.empty()) {
        fail("expected an expression");
        return nullptr;
      }
      if (tok[0] == '#') return literal(tok);
      if (auto it = env_.find(tok); it != env_.end()) return it->second;
      if (ExprRef v = ctx_.lookup_var(tok)) return v;
      fail("unknown symbol: " + tok);
      return nullptr;
    }
    if (consume('(')) {
      if (symbol() != "_") {
        fail("expected an indexed operator");
        return nullptr;
      }
      return indexed();
    }
    std::string op = symbol();
    if (op.empty()) {
      fail("expected an operator");
      return nullptr;
    }
    if (op == "let") return let_form();
    return application(op);
  }

  Context& ctx_;
  const std::string& text_;
  size_t pos_ = 0;
  std::string err_;
  std::unordered_map<std::string, ExprRef> env_;
};

}  // namespace

ExprRef parse_smtlib(Context& ctx, const std::string& text,
                     std::string* error) {
  Parser parser(ctx, text);
  ExprRef result = parser.parse_expr();
  if (!result && error) *error = parser.error();
  return result;
}

bool parse_query(Context& ctx, const std::string& text,
                 std::vector<ExprRef>* assertions, std::string* error) {
  Parser parser(ctx, text);
  bool ok = parser.parse_query(assertions);
  if (!ok && error) *error = parser.error();
  return ok;
}

}  // namespace binsym::smt
