#include "smt/smtlib.hpp"

#include <sstream>
#include <unordered_map>

#include "support/format.hpp"

namespace binsym::smt {

namespace {

/// Width-1 bitvector constants print as #b0/#b1 for readability; wider
/// non-nibble widths use #b as well since #x needs a multiple of four bits.
std::string const_text(uint64_t value, unsigned width) {
  if (width % 4) return "#b" + bin_bv(value, width);
  return "#x" + hex_bv(value, width);
}

/// Builds the body string of one expression; shared sub-DAGs are referenced
/// through let-bound names instead of being inlined.
class Renderer {
 public:
  explicit Renderer(const Context& ctx) : ctx_(ctx) {}

  /// Compute reference counts under all roots (for let-extraction).
  void count_refs(const std::vector<ExprRef>& roots) {
    std::unordered_map<uint32_t, bool> seen;
    for (ExprRef root : roots) {
      if (seen.count(root->id)) {
        ++refs_[root->id];
        continue;
      }
      postorder(root, [&](ExprRef node) {
        seen.emplace(node->id, true);
        for (unsigned i = 0; i < node->num_ops; ++i) ++refs_[node->ops[i]->id];
      });
      ++refs_[root->id];
    }
  }

  /// Emit `root`, reusing let bindings created by earlier calls. Bindings
  /// shared between assertions must therefore be emitted by a caller that
  /// wraps all assertions in one binding scope; `take_bindings` returns the
  /// accumulated (name, definition) list in dependency order.
  std::string render(ExprRef root) {
    std::string out;
    postorder(root, [&](ExprRef node) {
      if (body_.count(node->id)) return;
      std::string text = node_text(node);
      if (node->num_ops > 0 && refs_[node->id] > 1) {
        std::string name = "?e" + std::to_string(node->id);
        bindings_.emplace_back(name, text);
        body_.emplace(node->id, name);
      } else {
        body_.emplace(node->id, std::move(text));
      }
    });
    return body_.at(root->id);
  }

  const std::vector<std::pair<std::string, std::string>>& bindings() const {
    return bindings_;
  }

 private:
  std::string node_text(ExprRef node) {
    switch (node->kind) {
      case Kind::kConst:
        return const_text(node->constant, node->width);
      case Kind::kVar:
        return ctx_.var_info(node->var_id).name;
      case Kind::kExtract:
        return strprintf("((_ extract %u %u) %s)", node->aux0, node->aux1,
                         op(node, 0).c_str());
      case Kind::kZExt:
        return strprintf("((_ zero_extend %u) %s)",
                         node->width - node->ops[0]->width,
                         op(node, 0).c_str());
      case Kind::kSExt:
        return strprintf("((_ sign_extend %u) %s)",
                         node->width - node->ops[0]->width,
                         op(node, 0).c_str());
      case Kind::kIte:
        // The width-1 condition needs a Bool coercion.
        return "(ite (= " + op(node, 0) + " #b1) " + op(node, 1) + " " +
               op(node, 2) + ")";
      default: {
        std::string out = std::string("(") + kind_name(node->kind);
        for (unsigned i = 0; i < node->num_ops; ++i) out += " " + op(node, i);
        out += ")";
        // Comparisons are Bool-sorted in SMT-LIB but width-1 bitvectors in
        // this algebra; re-embed them so every operator stays well-sorted.
        if (is_comparison(node->kind)) out = "(ite " + out + " #b1 #b0)";
        return out;
      }
    }
  }

  std::string op(ExprRef node, unsigned i) {
    return body_.at(node->ops[i]->id);
  }

  const Context& ctx_;
  std::unordered_map<uint32_t, unsigned> refs_;
  std::unordered_map<uint32_t, std::string> body_;
  std::vector<std::pair<std::string, std::string>> bindings_;
};

std::string wrap_lets(
    const std::vector<std::pair<std::string, std::string>>& bindings,
    const std::string& body) {
  std::string out;
  for (const auto& [name, def] : bindings)
    out += "(let ((" + name + " " + def + ")) ";
  out += body;
  out.append(bindings.size(), ')');
  return out;
}

}  // namespace

std::string to_smtlib(const Context& ctx, ExprRef root) {
  Renderer renderer(ctx);
  renderer.count_refs({root});
  std::string body = renderer.render(root);
  return wrap_lets(renderer.bindings(), body);
}

void print_query(std::ostream& os, const Context& ctx,
                 const std::vector<ExprRef>& assertions, bool with_check_sat) {
  os << "(set-logic QF_BV)\n";
  for (uint32_t var_id : collect_vars(assertions)) {
    const VarInfo& info = ctx.var_info(var_id);
    os << "(declare-const " << info.name << " (_ BitVec " << info.width
       << "))\n";
  }
  // One binding scope per assertion keeps queries independent and valid.
  for (ExprRef assertion : assertions) {
    Renderer renderer(ctx);
    renderer.count_refs({assertion});
    std::string body = renderer.render(assertion);
    // Width-1 bitvectors model booleans; assert needs a Bool sort.
    std::string boolified = "(= " + body + " #b1)";
    os << "(assert " << wrap_lets(renderer.bindings(), boolified) << ")\n";
  }
  if (with_check_sat) os << "(check-sat)\n";
}

std::string query_string(const Context& ctx,
                         const std::vector<ExprRef>& assertions,
                         bool with_check_sat) {
  std::ostringstream os;
  print_query(os, ctx, assertions, with_check_sat);
  return os.str();
}

}  // namespace binsym::smt
