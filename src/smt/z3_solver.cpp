// Z3 backend: translates the expression DAG to Z3 ASTs through the C API
// (memoized per query) and extracts integer models. Z3 is the solver used
// by the paper's evaluation; all engines in this repository share this
// backend so comparisons never benchmark the solver (paper, Sect. V).
#include <z3.h>

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "smt/solver.hpp"
#include "support/bits.hpp"

namespace binsym::smt {

namespace {

/// Z3's default error handler prints and exits the process. A cross-thread
/// Z3_interrupt (the portfolio cancelling a race loser) can land while the
/// loser is inside a non-search API call — model evaluation just after its
/// search finished, an assert, a pop — which then raises Z3_CANCELED as an
/// *error* rather than returning Z3_L_UNDEF. Record instead of exit; the
/// check path inspects Z3_get_error_code and degrades to kUnknown.
void record_z3_error(Z3_context, Z3_error_code) {}

class Z3Solver final : public Solver {
 public:
  explicit Z3Solver(Context& ctx) : ctx_(ctx) {
    Z3_config cfg = Z3_mk_config();
    Z3_set_param_value(cfg, "model", "true");
    z3_ = Z3_mk_context(cfg);
    Z3_del_config(cfg);
    Z3_set_error_handler(z3_, record_z3_error);
    // One incremental QF_BV solver reused across all queries (fresh
    // general-purpose solvers pay multi-millisecond setup per check).
    solver_ = Z3_mk_solver_for_logic(z3_, Z3_mk_string_symbol(z3_, "QF_BV"));
    Z3_solver_inc_ref(z3_, solver_);
  }

  ~Z3Solver() override {
    Z3_solver_dec_ref(z3_, solver_);
    Z3_del_context(z3_);
  }

  Z3Solver(const Z3Solver&) = delete;
  Z3Solver& operator=(const Z3Solver&) = delete;

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override {
    auto start = std::chrono::steady_clock::now();
    ++stats_.queries;
    if (cancel_requested()) {
      ++stats_.unknown;
      return CheckResult::kUnknown;
    }

    Z3_solver_push(z3_, solver_);
    if (Z3_get_error_code(z3_) != Z3_OK) {
      // A concurrent cancel aborted the push: nothing was pushed and nothing
      // may be asserted (a base-level assertion would outlive this check).
      ++stats_.unknown;
      return CheckResult::kUnknown;
    }
    for (ExprRef assertion : assertions)
      Z3_solver_assert(z3_, solver_, boolean(assertion));

    CheckResult out = Z3_get_error_code(z3_) != Z3_OK
                          ? record(Z3_L_UNDEF, nullptr)
                          : record(Z3_solver_check(z3_, solver_), model);

    Z3_solver_pop(z3_, solver_, 1);
    stats_.solve_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return out;
  }

  // -- Native scoped API: the assertion stack lives inside Z3, so prefix
  // constraints are translated and asserted once per scope and the solver's
  // learned state survives across the flips of one trace. The flip condition
  // itself travels as a check-assumption, never polluting the stack.

  void push() override {
    Solver::push();
    Z3_solver_push(z3_, solver_);
  }

  void pop() override {
    Solver::pop();
    Z3_solver_pop(z3_, solver_, 1);
  }

  void assert_(ExprRef assertion) override {
    Solver::assert_(assertion);
    Z3_solver_assert(z3_, solver_, boolean(assertion));
  }

  CheckResult check_assuming(std::span<const ExprRef> assumptions,
                             Assignment* model) override {
    auto start = std::chrono::steady_clock::now();
    ++stats_.queries;
    ++stats_.incremental_checks;
    stats_.reused_assertions += scoped_.size();
    if (cancel_requested()) {
      ++stats_.unknown;
      return CheckResult::kUnknown;
    }

    assumption_lits_.clear();
    for (ExprRef assumption : assumptions)
      assumption_lits_.push_back(boolean(assumption));
    CheckResult out = record(
        Z3_solver_check_assumptions(
            z3_, solver_, static_cast<unsigned>(assumption_lits_.size()),
            assumption_lits_.data()),
        model);

    stats_.solve_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return out;
  }

  std::string name() const override { return "z3"; }

  /// Z3_interrupt is the one Z3 entry point documented as callable from
  /// another thread while a check runs: it aborts the active search, which
  /// returns Z3_L_UNDEF and maps to kUnknown. The sticky base-class flag
  /// covers the window where the cancel lands before the check starts.
  void cancel() override {
    Solver::cancel();
    Z3_interrupt(z3_);
  }

  void set_deadline_ms(uint32_t ms) override {
    Solver::set_deadline_ms(ms);
    // Native per-query timeout: Z3 interrupts the active check and returns
    // Z3_L_UNDEF, which record() maps to kUnknown. 0 restores "no limit"
    // (Z3's own default is UINT_MAX milliseconds).
    Z3_params params = Z3_mk_params(z3_);
    Z3_params_inc_ref(z3_, params);
    Z3_params_set_uint(z3_, params, Z3_mk_string_symbol(z3_, "timeout"),
                       ms == 0 ? 0xFFFFFFFFu : ms);
    Z3_solver_set_params(z3_, solver_, params);
    Z3_params_dec_ref(z3_, params);
  }

 private:
  Z3_ast bv_const(uint64_t value, unsigned width) {
    Z3_sort sort = Z3_mk_bv_sort(z3_, width);
    return Z3_mk_unsigned_int64(z3_, value, sort);
  }

  /// Width-1 assertion as a Z3 Boolean (the shape both the assertion stack
  /// and check-assumption literals require).
  Z3_ast boolean(ExprRef assertion) {
    assert(assertion->width == 1);
    return Z3_mk_eq(z3_, translate(assertion), bv_const(1, 1));
  }

  /// Fold a Z3 verdict into the stats and extract the model on sat.
  CheckResult record(Z3_lbool result, Assignment* model) {
    switch (result) {
      case Z3_L_TRUE:
        ++stats_.sat;
        if (model) extract_model(solver_, model);
        return CheckResult::kSat;
      case Z3_L_FALSE:
        ++stats_.unsat;
        return CheckResult::kUnsat;
      default:
        ++stats_.unknown;
        return CheckResult::kUnknown;
    }
  }

  Z3_ast translate(ExprRef root) {
    if (auto it = translation_.find(root->id); it != translation_.end())
      return it->second;
    postorder(root, [&](ExprRef node) {
      if (translation_.count(node->id)) return;
      Z3_ast ast = translate_node(node);
      // Never memoize a null AST (a constructor aborted by a concurrent
      // cancel): a poisoned memo entry would outlive the cancelled check.
      if (ast != nullptr) translation_.emplace(node->id, ast);
    });
    return translation_.at(root->id);
  }

  Z3_ast translate_node(ExprRef node) {
    auto op = [&](unsigned i) { return translation_.at(node->ops[i]->id); };
    auto to_bit = [&](Z3_ast boolean) {
      // Comparisons return Bool in Z3; our algebra is width-1 bitvectors.
      return Z3_mk_ite(z3_, boolean, bv_const(1, 1), bv_const(0, 1));
    };
    switch (node->kind) {
      case Kind::kConst:
        return bv_const(node->constant, node->width);
      case Kind::kVar: {
        const VarInfo& info = ctx_.var_info(node->var_id);
        Z3_symbol symbol =
            Z3_mk_string_symbol(z3_, info.name.c_str());
        Z3_ast ast = Z3_mk_const(z3_, symbol, Z3_mk_bv_sort(z3_, info.width));
        var_consts_.emplace_back(node->var_id, ast);
        return ast;
      }
      case Kind::kNot:     return Z3_mk_bvnot(z3_, op(0));
      case Kind::kNeg:     return Z3_mk_bvneg(z3_, op(0));
      case Kind::kExtract: return Z3_mk_extract(z3_, node->aux0, node->aux1, op(0));
      case Kind::kZExt:
        return Z3_mk_zero_ext(z3_, node->width - node->ops[0]->width, op(0));
      case Kind::kSExt:
        return Z3_mk_sign_ext(z3_, node->width - node->ops[0]->width, op(0));
      case Kind::kAdd:     return Z3_mk_bvadd(z3_, op(0), op(1));
      case Kind::kSub:     return Z3_mk_bvsub(z3_, op(0), op(1));
      case Kind::kMul:     return Z3_mk_bvmul(z3_, op(0), op(1));
      case Kind::kUDiv:    return Z3_mk_bvudiv(z3_, op(0), op(1));
      case Kind::kURem:    return Z3_mk_bvurem(z3_, op(0), op(1));
      case Kind::kSDiv:    return Z3_mk_bvsdiv(z3_, op(0), op(1));
      case Kind::kSRem:    return Z3_mk_bvsrem(z3_, op(0), op(1));
      case Kind::kAnd:     return Z3_mk_bvand(z3_, op(0), op(1));
      case Kind::kOr:      return Z3_mk_bvor(z3_, op(0), op(1));
      case Kind::kXor:     return Z3_mk_bvxor(z3_, op(0), op(1));
      case Kind::kShl:     return Z3_mk_bvshl(z3_, op(0), op(1));
      case Kind::kLShr:    return Z3_mk_bvlshr(z3_, op(0), op(1));
      case Kind::kAShr:    return Z3_mk_bvashr(z3_, op(0), op(1));
      case Kind::kEq:      return to_bit(Z3_mk_eq(z3_, op(0), op(1)));
      case Kind::kUlt:     return to_bit(Z3_mk_bvult(z3_, op(0), op(1)));
      case Kind::kUle:     return to_bit(Z3_mk_bvule(z3_, op(0), op(1)));
      case Kind::kSlt:     return to_bit(Z3_mk_bvslt(z3_, op(0), op(1)));
      case Kind::kSle:     return to_bit(Z3_mk_bvsle(z3_, op(0), op(1)));
      case Kind::kConcat:  return Z3_mk_concat(z3_, op(0), op(1));
      case Kind::kIte: {
        Z3_ast cond = Z3_mk_eq(z3_, op(0), bv_const(1, 1));
        return Z3_mk_ite(z3_, cond, op(1), op(2));
      }
    }
    throw std::logic_error("unhandled expression kind in Z3 translation");
  }

  void extract_model(Z3_solver solver, Assignment* model) {
    Z3_model z3_model = Z3_solver_get_model(z3_, solver);
    if (z3_model == nullptr) return;  // cancelled mid-extraction
    Z3_model_inc_ref(z3_, z3_model);
    for (const auto& [var_id, ast] : var_consts_) {
      Z3_ast value_ast = nullptr;
      if (!Z3_model_eval(z3_, z3_model, ast, /*model_completion=*/true,
                         &value_ast)) {
        continue;
      }
      uint64_t value = 0;
      if (Z3_get_numeral_uint64(z3_, value_ast, &value)) {
        model->set(var_id, truncate(value, ctx_.var_info(var_id).width));
      }
    }
    Z3_model_dec_ref(z3_, z3_model);
  }

  Context& ctx_;
  Z3_context z3_;
  Z3_solver solver_ = nullptr;
  // Persistent across queries: the Z3 context outlives every check, so the
  // per-node translation memo and the variable registry never invalidate.
  std::unordered_map<uint32_t, Z3_ast> translation_;
  std::vector<std::pair<uint32_t, Z3_ast>> var_consts_;
  std::vector<Z3_ast> assumption_lits_;  // scratch for check_assuming
};

}  // namespace

std::unique_ptr<Solver> make_z3_solver(Context& ctx) {
  return std::make_unique<Z3Solver>(ctx);
}

}  // namespace binsym::smt
