#include "smt/simplify.hpp"

#include <cassert>

#include "support/bits.hpp"

namespace binsym::smt {

namespace {

/// Extra rewrites on an already locally-folded node. Returns nullptr when no
/// rule applies. The builders canonicalize commutative constant operands to
/// ops[1] (Context::binary callers swap, including eq at every width), so
/// constant-against-constant-chain rules only need the `b` side — except for
/// subtraction, which is not commutative: (c - x) keeps its constant in
/// ops[0] and needs its own rule.
ExprRef extra_rules(Context& ctx, Kind kind, ExprRef a, ExprRef b) {
  if (kind == Kind::kEq && b && b->is_const()) {
    // (x + c1) == c2  -->  x == (c2 - c1)
    if (a->kind == Kind::kAdd && a->ops[1]->is_const()) {
      return ctx.eq(a->ops[0],
                    ctx.constant(b->constant - a->ops[1]->constant, a->width));
    }
    // (x - c1) == c2  -->  x == (c2 + c1). The builders fold (x - c1) into
    // (x + -c1) so this form cannot arise from them, but simplify() also
    // accepts externally built DAGs.
    if (a->kind == Kind::kSub && a->ops[1]->is_const()) {
      return ctx.eq(a->ops[0],
                    ctx.constant(b->constant + a->ops[1]->constant, a->width));
    }
    // (c1 - x) == c2  -->  x == (c1 - c2)
    if (a->kind == Kind::kSub && a->ops[0]->is_const()) {
      return ctx.eq(a->ops[1],
                    ctx.constant(a->ops[0]->constant - b->constant, a->width));
    }
    // (x ^ c1) == c2  -->  x == (c1 ^ c2)
    if (a->kind == Kind::kXor && a->ops[1]->is_const()) {
      return ctx.eq(a->ops[0], ctx.constant(b->constant ^ a->ops[1]->constant,
                                            a->width));
    }
  }
  // ult(x, 1)  -->  x == 0
  if (kind == Kind::kUlt && b && b->is_const_val(1))
    return ctx.eq(a, ctx.constant(0, a->width));
  return nullptr;
}

ExprRef rebuild(Context& ctx, ExprRef node, ExprRef* op) {
  switch (node->kind) {
    case Kind::kConst:
    case Kind::kVar:
      return node;
    case Kind::kNot:     return ctx.not_(op[0]);
    case Kind::kNeg:     return ctx.neg(op[0]);
    case Kind::kExtract: return ctx.extract(op[0], node->aux0, node->aux1);
    case Kind::kZExt:    return ctx.zext(op[0], node->width);
    case Kind::kSExt:    return ctx.sext(op[0], node->width);
    case Kind::kAdd:     return ctx.add(op[0], op[1]);
    case Kind::kSub:     return ctx.sub(op[0], op[1]);
    case Kind::kMul:     return ctx.mul(op[0], op[1]);
    case Kind::kUDiv:    return ctx.udiv(op[0], op[1]);
    case Kind::kURem:    return ctx.urem(op[0], op[1]);
    case Kind::kSDiv:    return ctx.sdiv(op[0], op[1]);
    case Kind::kSRem:    return ctx.srem(op[0], op[1]);
    case Kind::kAnd:     return ctx.and_(op[0], op[1]);
    case Kind::kOr:      return ctx.or_(op[0], op[1]);
    case Kind::kXor:     return ctx.xor_(op[0], op[1]);
    case Kind::kShl:     return ctx.shl(op[0], op[1]);
    case Kind::kLShr:    return ctx.lshr(op[0], op[1]);
    case Kind::kAShr:    return ctx.ashr(op[0], op[1]);
    case Kind::kEq:      return ctx.eq(op[0], op[1]);
    case Kind::kUlt:     return ctx.ult(op[0], op[1]);
    case Kind::kUle:     return ctx.ule(op[0], op[1]);
    case Kind::kSlt:     return ctx.slt(op[0], op[1]);
    case Kind::kSle:     return ctx.sle(op[0], op[1]);
    case Kind::kConcat:  return ctx.concat(op[0], op[1]);
    case Kind::kIte:     return ctx.ite(op[0], op[1], op[2]);
  }
  return node;
}

}  // namespace

ExprRef simplify(Context& ctx, ExprRef root,
                 std::unordered_map<uint32_t, ExprRef>& memo) {
  if (auto it = memo.find(root->id); it != memo.end()) return it->second;
  postorder(root, [&](ExprRef node) {
    if (memo.count(node->id)) return;
    ExprRef op[3] = {nullptr, nullptr, nullptr};
    for (unsigned i = 0; i < node->num_ops; ++i)
      op[i] = memo.at(node->ops[i]->id);
    ExprRef rebuilt = rebuild(ctx, node, op);
    // Rules compose: a rewrite can expose another rule's pattern (e.g.
    // ult(x + c, 1) -> (x + c) == 0 -> x == -c), so iterate to a fixpoint.
    // Each rule strictly shrinks the expression, so this terminates.
    while (rebuilt->num_ops >= 1) {
      ExprRef extra = extra_rules(ctx, rebuilt->kind, rebuilt->ops[0],
                                  rebuilt->num_ops >= 2 ? rebuilt->ops[1]
                                                        : nullptr);
      if (!extra) break;
      rebuilt = extra;
    }
    memo.emplace(node->id, rebuilt);
  });
  return memo.at(root->id);
}

ExprRef simplify(Context& ctx, ExprRef root) {
  std::unordered_map<uint32_t, ExprRef> memo;
  return simplify(ctx, root, memo);
}

}  // namespace binsym::smt
