// Expression context: owns all Expr nodes in a chunked arena and, by
// default, hash-conses them — structurally-equal nodes are pointer-equal at
// construction, so every downstream pass (NodeMarker traversals, slicing,
// query-cache keys) scales with the number of *distinct* subterms. Builders
// perform constant folding and local peephole simplification, so
// trivially-true branch conditions never reach the solver — this mirrors the
// "encode" step optimisations the paper's BINSEC baseline is credited with,
// and is shared by all engines here.
//
// Interning can be disabled (`Context(/*intern_exprs=*/false)`, surfaced as
// `explore --no-intern`): the legacy allocator hands out a fresh node per
// builder call (variables stay deduplicated by name, as in SMT-LIB) and is
// kept purely as the reference world for the differential test harness.
//
// Every node carries a 64-bit structural content hash, computed at
// construction in both modes from (kind, width, aux payload, constant,
// child hashes) — with kVar hashing the variable *name*, not its
// per-context id. The hash is therefore stable across contexts and across
// the intern toggle, which is what makes it usable as a query-cache key
// today and as the address of a persistent content-addressed cache later
// (ROADMAP item 4). Within one context it doubles as the intern-table
// probe hash. See docs/SMT.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"

namespace binsym::smt {

struct VarInfo {
  std::string name;
  unsigned width;
};

class Context {
 public:
  explicit Context(bool intern_exprs = true) : intern_(intern_exprs) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // -- Leaves. ---------------------------------------------------------------

  /// Constant of `width` bits; `value` is truncated to canonical form.
  ExprRef constant(uint64_t value, unsigned width);
  ExprRef bool_const(bool value) { return constant(value ? 1 : 0, 1); }

  /// Named free variable. Calling twice with the same name returns the same
  /// node (the name is the identity, as in SMT-LIB) — in both intern modes.
  ExprRef var(const std::string& name, unsigned width);

  /// Fresh variable with a unique generated name built from `prefix`.
  ExprRef fresh_var(const std::string& prefix, unsigned width);

  /// The node for an already-declared variable, or nullptr if the name is
  /// unknown (the SMT-LIB parser's symbol lookup).
  ExprRef lookup_var(const std::string& name) const;

  const VarInfo& var_info(uint32_t var_id) const { return vars_[var_id]; }
  size_t num_vars() const { return vars_.size(); }
  size_t num_nodes() const { return num_nodes_; }

  /// Whether this context hash-conses (true) or uses the legacy
  /// fresh-node-per-call allocator (false).
  bool interning() const { return intern_; }

  /// Builder calls answered from the intern table instead of allocating.
  uint64_t intern_hits() const { return intern_hits_; }

  /// Bytes held by the node arena and the intern table.
  size_t arena_bytes() const;

  // -- Unary. ------------------------------------------------------------------

  ExprRef not_(ExprRef a);
  ExprRef neg(ExprRef a);
  ExprRef extract(ExprRef a, unsigned hi, unsigned lo);
  ExprRef zext(ExprRef a, unsigned to_width);
  ExprRef sext(ExprRef a, unsigned to_width);

  // -- Binary (operands must share a width). -----------------------------------

  ExprRef add(ExprRef a, ExprRef b);
  ExprRef sub(ExprRef a, ExprRef b);
  ExprRef mul(ExprRef a, ExprRef b);
  ExprRef udiv(ExprRef a, ExprRef b);
  ExprRef urem(ExprRef a, ExprRef b);
  ExprRef sdiv(ExprRef a, ExprRef b);
  ExprRef srem(ExprRef a, ExprRef b);
  ExprRef and_(ExprRef a, ExprRef b);
  ExprRef or_(ExprRef a, ExprRef b);
  ExprRef xor_(ExprRef a, ExprRef b);
  ExprRef shl(ExprRef a, ExprRef amount);
  ExprRef lshr(ExprRef a, ExprRef amount);
  ExprRef ashr(ExprRef a, ExprRef amount);

  // -- Comparisons (width-1 result). --------------------------------------------

  ExprRef eq(ExprRef a, ExprRef b);
  ExprRef ne(ExprRef a, ExprRef b) { return not_(eq(a, b)); }
  ExprRef ult(ExprRef a, ExprRef b);
  ExprRef ule(ExprRef a, ExprRef b);
  ExprRef ugt(ExprRef a, ExprRef b) { return ult(b, a); }
  ExprRef uge(ExprRef a, ExprRef b) { return ule(b, a); }
  ExprRef slt(ExprRef a, ExprRef b);
  ExprRef sle(ExprRef a, ExprRef b);
  ExprRef sgt(ExprRef a, ExprRef b) { return slt(b, a); }
  ExprRef sge(ExprRef a, ExprRef b) { return sle(b, a); }

  // -- Structure. ----------------------------------------------------------------

  /// Concatenation; `hi` supplies the upper bits. Result width is the sum.
  ExprRef concat(ExprRef hi, ExprRef lo);
  ExprRef ite(ExprRef cond, ExprRef then_value, ExprRef else_value);

  // -- Boolean sugar over width-1 vectors. -----------------------------------------

  ExprRef logical_and(ExprRef a, ExprRef b) { return and_(a, b); }
  ExprRef logical_or(ExprRef a, ExprRef b) { return or_(a, b); }

 private:
  // 1024 nodes per arena block: blocks never move, so ExprRef pointers are
  // stable for the lifetime of the context.
  static constexpr size_t kBlockShift = 10;
  static constexpr size_t kBlockSize = size_t{1} << kBlockShift;

  Expr* node_at(uint32_t id) {
    size_t index = id - 1;  // ids are 1-based; 0 is reserved for "no op"
    return &blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
  }

  ExprRef intern(Kind kind, unsigned width, uint64_t constant, uint32_t var_id,
                 uint32_t aux0, uint32_t aux1, ExprRef a = nullptr,
                 ExprRef b = nullptr, ExprRef c = nullptr);

  ExprRef binary(Kind kind, ExprRef a, ExprRef b);

  void grow_table();

  const bool intern_;
  std::vector<std::unique_ptr<Expr[]>> blocks_;
  size_t num_nodes_ = 0;
  // Open-addressing intern table of node ids (0 = empty slot), probed by
  // the stored content hash; power-of-two sized. Slot equality compares
  // the structural key directly — children are interned first, so child
  // *pointers* are the canonical child identity.
  std::vector<uint32_t> table_;
  size_t table_used_ = 0;
  uint64_t intern_hits_ = 0;
  std::vector<VarInfo> vars_;
  std::vector<ExprRef> var_nodes_;  // one node per name, in both modes
  std::unordered_map<std::string, uint32_t> var_by_name_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace binsym::smt
