// Expression context: owns all Expr nodes, interns them (hash-consing) and
// exposes the building API. Builders perform constant folding and local
// peephole simplification, so trivially-true branch conditions never reach
// the solver — this mirrors the "encode" step optimisations the paper's
// BINSEC baseline is credited with, and is shared by all engines here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"

namespace binsym::smt {

struct VarInfo {
  std::string name;
  unsigned width;
};

class Context {
 public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // -- Leaves. ---------------------------------------------------------------

  /// Constant of `width` bits; `value` is truncated to canonical form.
  ExprRef constant(uint64_t value, unsigned width);
  ExprRef bool_const(bool value) { return constant(value ? 1 : 0, 1); }

  /// Named free variable. Calling twice with the same name returns the same
  /// node (the name is the identity, as in SMT-LIB).
  ExprRef var(const std::string& name, unsigned width);

  /// Fresh variable with a unique generated name built from `prefix`.
  ExprRef fresh_var(const std::string& prefix, unsigned width);

  const VarInfo& var_info(uint32_t var_id) const { return vars_[var_id]; }
  size_t num_vars() const { return vars_.size(); }
  size_t num_nodes() const { return nodes_.size(); }

  // -- Unary. ------------------------------------------------------------------

  ExprRef not_(ExprRef a);
  ExprRef neg(ExprRef a);
  ExprRef extract(ExprRef a, unsigned hi, unsigned lo);
  ExprRef zext(ExprRef a, unsigned to_width);
  ExprRef sext(ExprRef a, unsigned to_width);

  // -- Binary (operands must share a width). -----------------------------------

  ExprRef add(ExprRef a, ExprRef b);
  ExprRef sub(ExprRef a, ExprRef b);
  ExprRef mul(ExprRef a, ExprRef b);
  ExprRef udiv(ExprRef a, ExprRef b);
  ExprRef urem(ExprRef a, ExprRef b);
  ExprRef sdiv(ExprRef a, ExprRef b);
  ExprRef srem(ExprRef a, ExprRef b);
  ExprRef and_(ExprRef a, ExprRef b);
  ExprRef or_(ExprRef a, ExprRef b);
  ExprRef xor_(ExprRef a, ExprRef b);
  ExprRef shl(ExprRef a, ExprRef amount);
  ExprRef lshr(ExprRef a, ExprRef amount);
  ExprRef ashr(ExprRef a, ExprRef amount);

  // -- Comparisons (width-1 result). --------------------------------------------

  ExprRef eq(ExprRef a, ExprRef b);
  ExprRef ne(ExprRef a, ExprRef b) { return not_(eq(a, b)); }
  ExprRef ult(ExprRef a, ExprRef b);
  ExprRef ule(ExprRef a, ExprRef b);
  ExprRef ugt(ExprRef a, ExprRef b) { return ult(b, a); }
  ExprRef uge(ExprRef a, ExprRef b) { return ule(b, a); }
  ExprRef slt(ExprRef a, ExprRef b);
  ExprRef sle(ExprRef a, ExprRef b);
  ExprRef sgt(ExprRef a, ExprRef b) { return slt(b, a); }
  ExprRef sge(ExprRef a, ExprRef b) { return sle(b, a); }

  // -- Structure. ----------------------------------------------------------------

  /// Concatenation; `hi` supplies the upper bits. Result width is the sum.
  ExprRef concat(ExprRef hi, ExprRef lo);
  ExprRef ite(ExprRef cond, ExprRef then_value, ExprRef else_value);

  // -- Boolean sugar over width-1 vectors. -----------------------------------------

  ExprRef logical_and(ExprRef a, ExprRef b) { return and_(a, b); }
  ExprRef logical_or(ExprRef a, ExprRef b) { return or_(a, b); }

 private:
  struct NodeKey {
    Kind kind;
    uint8_t width;
    uint64_t constant;
    uint32_t var_id;
    uint32_t aux0, aux1;
    uint32_t op_ids[3];
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const;
  };

  ExprRef intern(Kind kind, unsigned width, uint64_t constant, uint32_t var_id,
                 uint32_t aux0, uint32_t aux1, ExprRef a = nullptr,
                 ExprRef b = nullptr, ExprRef c = nullptr);

  ExprRef binary(Kind kind, ExprRef a, ExprRef b);

  std::vector<std::unique_ptr<Expr>> nodes_;
  std::unordered_map<NodeKey, ExprRef, NodeKeyHash> interned_;
  std::vector<VarInfo> vars_;
  std::unordered_map<std::string, uint32_t> var_by_name_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace binsym::smt
