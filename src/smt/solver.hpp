// Solver abstraction.
//
// The engine asks one question, many times: "is this conjunction of width-1
// expressions satisfiable, and if so under which variable assignment?". The
// abstraction allows swapping Z3 (the paper's solver) for the built-in
// bit-blasting backend, and lets the caching wrapper interpose transparently.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "support/fault.hpp"

namespace binsym::smt {

/// Outcome of a satisfiability check (kUnknown covers backend resource
/// limits and theories the backend cannot decide).
enum class CheckResult { kSat, kUnsat, kUnknown };

/// Human-readable name for a CheckResult ("sat", "unsat", "unknown").
const char* check_result_name(CheckResult result);

/// Per-solver counters, accumulated across every check*() call.
/// Thread-safety: plain data owned by the (single-threaded) solver; the
/// engine merges per-worker copies after the workers join.
struct SolverStats {
  uint64_t queries = 0;
  uint64_t sat = 0;
  uint64_t unsat = 0;
  uint64_t unknown = 0;
  uint64_t cache_hits = 0;          // filled in by CachingSolver
  uint64_t cache_misses = 0;        // filled in by CachingSolver
  uint64_t incremental_checks = 0;  // check_assuming() calls reaching a backend
  uint64_t reused_assertions = 0;   // scoped assertions live per such check,
                                    // summed (the assumption-reuse depth)
  uint64_t failover_rescues = 0;    // FailoverSolver: queries the primary
                                    // backend gave up on (unknown/timeout/
                                    // exception) that the secondary decided
  // -- PortfolioSolver (portfolio.hpp). Zero for every other stack.
  uint64_t portfolio_races = 0;      // checks decided by racing the members
  uint64_t portfolio_routed = 0;     // checks sent to one member by the router
  uint64_t portfolio_cancelled = 0;  // member checks cancelled (or skipped)
                                     // after another member won the race
  std::map<std::string, uint64_t> portfolio_wins;  // decided checks per
                                                   // winning member backend
  double solve_seconds = 0;         // wall time spent inside check*()

  /// Fold another solver's counters in (per-worker stats aggregation).
  void merge(const SolverStats& other) {
    queries += other.queries;
    sat += other.sat;
    unsat += other.unsat;
    unknown += other.unknown;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    incremental_checks += other.incremental_checks;
    reused_assertions += other.reused_assertions;
    failover_rescues += other.failover_rescues;
    portfolio_races += other.portfolio_races;
    portfolio_routed += other.portfolio_routed;
    portfolio_cancelled += other.portfolio_cancelled;
    for (const auto& [backend, wins] : other.portfolio_wins)
      portfolio_wins[backend] += wins;
    solve_seconds += other.solve_seconds;
  }
};

/// Thread-safety: a Solver (any backend, any wrapper) is single-threaded —
/// it is built over one smt::Context, which is itself confined to one
/// engine worker. Parallel exploration gives every worker its own solver;
/// nothing here locks.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Check satisfiability of the conjunction of `assertions` (each width 1).
  /// On kSat, `*model` (if non-null) receives values for at least every free
  /// variable occurring in the assertions; missing variables may take any
  /// value (the Assignment treats them as zero). Must only be called with no
  /// scopes open (stateless use; the scoped API below is the alternative).
  virtual CheckResult check(std::span<const ExprRef> assertions,
                            Assignment* model) = 0;

  // -- Scoped (incremental) API. --------------------------------------------
  //
  // The engine asserts a trace's branch-prefix constraints once and checks
  // each flip as an assumption on top, instead of re-sending the whole
  // conjunction per flip. The base-class implementation keeps the scoped
  // assertions client-side and answers check_assuming() via one stateless
  // check() over scoped + assumptions — a correct compatibility adapter for
  // any backend (the bit-blasting one uses it as-is). Backends with native
  // incrementality (Z3) override all four and keep the assertion stack in
  // the solver, where learned clauses survive across flips.

  /// Open a new assertion scope.
  virtual void push();
  /// Discard every assertion made since the matching push().
  virtual void pop();
  /// Add a width-1 assertion to the current scope.
  virtual void assert_(ExprRef assertion);
  /// Check scoped assertions ∧ assumptions; assumptions are not retained.
  virtual CheckResult check_assuming(std::span<const ExprRef> assumptions,
                                     Assignment* model);

  /// Per-query wall-clock deadline in milliseconds; 0 disables (the
  /// default). Applies to every subsequent check*() call. A check that
  /// exceeds the deadline returns kUnknown — never a wrong verdict — so
  /// the engine treats it as an explicitly skipped query. Backends honor
  /// it natively (Z3: solver `timeout` param; bitblast: a periodic
  /// interrupt probe in the CDCL search loop); wrappers forward it.
  virtual void set_deadline_ms(uint32_t ms) { deadline_ms_ = ms; }
  uint32_t deadline_ms() const { return deadline_ms_; }

  // -- Cooperative cancellation (the portfolio's racing substrate). -----------
  //
  // cancel() asks the in-flight — or not-yet-started — check*() call to give
  // up and return kUnknown as soon as possible; like a deadline expiry it may
  // only weaken the verdict, never change it. Unlike every other method it is
  // safe to call from another thread while a check runs: Z3 interrupts the
  // active search, the bit-blaster probes the flag in its CDCL loop next to
  // the deadline, the pipe backend kills its child process. The request is
  // sticky until reset_cancel() so a cancel landing before the loser's check
  // even starts still takes effect (no lost-cancel race).

  /// Request cancellation (thread-safe; wrappers forward to their inner
  /// backend).
  virtual void cancel() { cancel_flag_.store(true, std::memory_order_relaxed); }
  /// Re-arm for the next check (called by the owner thread between checks).
  virtual void reset_cancel() {
    cancel_flag_.store(false, std::memory_order_relaxed);
  }
  bool cancel_requested() const {
    return cancel_flag_.load(std::memory_order_relaxed);
  }

  /// All currently live scoped assertions, oldest first.
  std::span<const ExprRef> scoped_assertions() const { return scoped_; }
  size_t num_scopes() const { return scope_marks_.size(); }

  /// Human-readable backend name for reports (wrappers append suffixes,
  /// e.g. "z3+validate").
  virtual std::string name() const = 0;

  /// Backend that decided the most recent definitive check — the race winner
  /// for a portfolio, name() for a plain backend; wrappers forward. The
  /// persistent store records it per query.
  virtual std::string last_backend() const { return name(); }

  /// Counters accumulated so far (see SolverStats).
  const SolverStats& stats() const { return stats_; }
  /// Zero the counters (benchmark harnesses re-measuring one instance).
  void reset_stats() { stats_ = SolverStats{}; }

 protected:
  SolverStats stats_;
  std::vector<ExprRef> scoped_;      // live scoped assertions
  std::vector<size_t> scope_marks_;  // scoped_.size() at each push()
  uint32_t deadline_ms_ = 0;         // per-query deadline, 0 = none
  std::atomic<bool> cancel_flag_{false};  // sticky cancel request (the one
                                          // cross-thread-written member)
};

/// Construct the Z3-backed solver (see z3_solver.cpp).
std::unique_ptr<Solver> make_z3_solver(Context& ctx);

/// Construct the built-in bit-blasting solver (see sat/).
std::unique_ptr<Solver> make_bitblast_solver(Context& ctx);

/// Validates every kSat model by concrete evaluation before returning it —
/// wraps another solver; used in tests and available as an engine option.
class ValidatingSolver final : public Solver {
 public:
  explicit ValidatingSolver(std::unique_ptr<Solver> inner)
      : inner_(std::move(inner)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override;
  void push() override;
  void pop() override;
  void assert_(ExprRef assertion) override;
  CheckResult check_assuming(std::span<const ExprRef> assumptions,
                             Assignment* model) override;
  std::string name() const override { return inner_->name() + "+validate"; }
  std::string last_backend() const override { return inner_->last_backend(); }
  void set_deadline_ms(uint32_t ms) override {
    Solver::set_deadline_ms(ms);
    inner_->set_deadline_ms(ms);
  }
  void cancel() override {
    Solver::cancel();
    inner_->cancel();
  }
  void reset_cancel() override {
    Solver::reset_cancel();
    inner_->reset_cancel();
  }

 private:
  CheckResult validate(std::span<const ExprRef> assumptions,
                       CheckResult result, const Assignment& model);

  std::unique_ptr<Solver> inner_;
};

/// Backend failover: every query goes to the primary backend first; when
/// the primary gives up — kUnknown (deadline, theory limits) or a thrown
/// backend error — the query is retried once on a lazily built secondary
/// backend before kUnknown is surfaced to the caller. The secondary is
/// stateless from the wrapper's point of view: it answers each rescue as
/// one standalone check over the client-side scoped assertions plus the
/// assumptions (the base class keeps that set for every backend), so it
/// needs no scope replay and no native incrementality. A decided rescue
/// counts into SolverStats::failover_rescues.
class FailoverSolver final : public Solver {
 public:
  using SecondaryFactory = std::function<std::unique_ptr<Solver>()>;

  /// `secondary` is invoked at most once, on the first rescue attempt; the
  /// built solver inherits the wrapper's current deadline.
  FailoverSolver(std::unique_ptr<Solver> primary, SecondaryFactory secondary)
      : primary_(std::move(primary)), secondary_factory_(std::move(secondary)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override;
  void push() override;
  void pop() override;
  void assert_(ExprRef assertion) override;
  CheckResult check_assuming(std::span<const ExprRef> assumptions,
                             Assignment* model) override;
  std::string name() const override { return primary_->name() + "+failover"; }
  /// The backend that actually decided the last check: the secondary when
  /// that check was rescued, the primary otherwise.
  std::string last_backend() const override {
    return last_rescued_ && secondary_ ? secondary_->last_backend()
                                       : primary_->last_backend();
  }
  void set_deadline_ms(uint32_t ms) override;
  /// A cancelled primary check returns kUnknown like a deadline expiry, but
  /// must not trigger a rescue: rescue() observes the sticky flag and
  /// declines, so cancellation wins over failover.
  void cancel() override {
    Solver::cancel();
    primary_->cancel();
    if (secondary_) secondary_->cancel();
  }
  void reset_cancel() override {
    Solver::reset_cancel();
    primary_->reset_cancel();
    if (secondary_) secondary_->reset_cancel();
  }

 private:
  /// Retry `scoped_ ∧ assumptions` on the secondary backend; kUnknown when
  /// the secondary also fails (then nothing rescued the query).
  CheckResult rescue(std::span<const ExprRef> assumptions, Assignment* model);
  void refresh_stats();

  std::unique_ptr<Solver> primary_;
  SecondaryFactory secondary_factory_;
  std::unique_ptr<Solver> secondary_;  // built on first rescue
  uint64_t rescues_ = 0;
  uint64_t logical_queries_ = 0;  // checks as the caller sees them
  bool last_rescued_ = false;     // last decided check came from secondary_
};

/// Deterministic failure injection at the solver boundary (see
/// support/fault.hpp): before each check the plan's solver sites are
/// consulted — kSolverUnknown degrades the answer to kUnknown without
/// touching the backend, kSolverThrow raises support::FaultInjected as a
/// stand-in for a crashing backend. Both model real failure modes the
/// engine must absorb; the robustness tests drive every one of them.
class FaultInjectingSolver final : public Solver {
 public:
  FaultInjectingSolver(std::unique_ptr<Solver> inner,
                       std::shared_ptr<support::FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override;
  void push() override;
  void pop() override;
  void assert_(ExprRef assertion) override;
  CheckResult check_assuming(std::span<const ExprRef> assumptions,
                             Assignment* model) override;
  std::string name() const override { return inner_->name(); }
  std::string last_backend() const override { return inner_->last_backend(); }
  void set_deadline_ms(uint32_t ms) override {
    Solver::set_deadline_ms(ms);
    inner_->set_deadline_ms(ms);
  }
  void cancel() override {
    Solver::cancel();
    inner_->cancel();
  }
  void reset_cancel() override {
    Solver::reset_cancel();
    inner_->reset_cancel();
  }

 private:
  /// Fires the solver fault sites; returns true when this check must
  /// degrade to kUnknown (throws on an injected backend crash).
  bool inject();
  void refresh_stats();

  std::unique_ptr<Solver> inner_;
  std::shared_ptr<support::FaultPlan> plan_;
  uint64_t injected_unknown_ = 0;  // checks degraded without reaching inner_
};

}  // namespace binsym::smt
