#include "smt/portfolio.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace binsym::smt {

namespace {

/// Query features the router buckets on: a log2 size class and whether the
/// query contains the "heavy" operators (mul/div/rem) that separate the
/// backends most sharply — the bit-blaster's multiplier circuits are where
/// it loses to Z3, and vice versa for shallow bitwise queries.
uint32_t feature_bucket(std::span<const ExprRef> assertions, size_t* nodes_out) {
  size_t nodes = 0;
  bool heavy = false;
  NodeMarker marker;
  for (ExprRef root : assertions) {
    postorder(root, marker, [&](ExprRef node) {
      ++nodes;
      switch (node->kind) {
        case Kind::kMul:
        case Kind::kUDiv:
        case Kind::kURem:
        case Kind::kSDiv:
        case Kind::kSRem:
          heavy = true;
          break;
        default:
          break;
      }
    });
  }
  *nodes_out = nodes;
  uint32_t size_class = 0;
  for (size_t n = nodes; n > 1; n >>= 1) ++size_class;
  return (size_class << 1) | (heavy ? 1u : 0u);
}

class PortfolioSolver final : public Solver {
 public:
  PortfolioSolver(std::vector<std::unique_ptr<Solver>> members,
                  PortfolioConfig config)
      : config_(config) {
    runners_.reserve(members.size());
    for (auto& member : members)
      runners_.push_back(std::make_unique<Runner>(std::move(member)));
    for (size_t i = 0; i < runners_.size(); ++i)
      runners_[i]->thread =
          std::thread([this, i] { runner_loop(*runners_[i]); });
  }

  ~PortfolioSolver() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& runner : runners_)
      if (runner->thread.joinable()) runner->thread.join();
  }

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override {
    const auto start = std::chrono::steady_clock::now();
    ++stats_.queries;
    CheckResult result = CheckResult::kUnknown;
    if (!cancel_requested() && !runners_.empty()) {
      size_t nodes = 0;
      const uint32_t bucket = feature_bucket(assertions, &nodes);
      const int routed = route_target(bucket, nodes);
      if (routed >= 0) {
        ++stats_.portfolio_routed;
        result = run_single(static_cast<size_t>(routed), assertions, model);
      }
      // A routed member that gave up is not the last word: fall back to the
      // full race, which is as strong as the strongest member. The race runs
      // on whatever is left of the per-query deadline — the routed attempt
      // already spent part of it, and one logical check must never exceed
      // the configured budget.
      if (result == CheckResult::kUnknown && !cancel_requested()) {
        uint32_t race_deadline = deadline_ms_;
        bool budget_left = true;
        if (routed >= 0 && deadline_ms_ > 0) {
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (elapsed >= deadline_ms_)
            budget_left = false;
          else
            race_deadline = deadline_ms_ - static_cast<uint32_t>(elapsed);
        }
        if (budget_left) result = run_race(bucket, race_deadline, assertions, model);
      }
    }
    switch (result) {
      case CheckResult::kSat:     ++stats_.sat; break;
      case CheckResult::kUnsat:   ++stats_.unsat; break;
      case CheckResult::kUnknown: ++stats_.unknown; break;
    }
    stats_.solve_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
  }

  void set_deadline_ms(uint32_t ms) override {
    Solver::set_deadline_ms(ms);
    for (auto& runner : runners_) runner->member->set_deadline_ms(ms);
  }

  void cancel() override {
    Solver::cancel();
    for (auto& runner : runners_) runner->member->cancel();
  }

  void reset_cancel() override {
    Solver::reset_cancel();
    for (auto& runner : runners_) runner->member->reset_cancel();
  }

  std::string name() const override {
    std::string joined = "portfolio[";
    for (size_t i = 0; i < runners_.size(); ++i) {
      if (i) joined += ',';
      joined += runners_[i]->member->name();
    }
    return joined + "]";
  }

  std::string last_backend() const override { return last_backend_; }

 private:
  struct Runner {
    explicit Runner(std::unique_ptr<Solver> m) : member(std::move(m)) {}
    std::unique_ptr<Solver> member;
    std::thread thread;
    uint64_t seen_generation = 0;
    Assignment model;  // per-runner scratch, winner's copy handed out
    CheckResult result = CheckResult::kUnknown;
  };

  struct Bucket {
    uint64_t races = 0;
    std::vector<uint64_t> wins;  // indexed by runner
  };

  /// Runner index the router sends this query to, or -1 for a full race.
  /// Tiny queries go to the bucket leader if one is known, else the first
  /// member; measured buckets route once the leader's win share clears the
  /// configured threshold.
  int route_target(uint32_t bucket_key, size_t nodes) const {
    if (runners_.size() < 2) return 0;
    const auto it = buckets_.find(bucket_key);
    const Bucket* bucket = it == buckets_.end() ? nullptr : &it->second;
    int leader = -1;
    if (bucket && bucket->races >= config_.route_min_races) {
      for (size_t i = 0; i < bucket->wins.size(); ++i) {
        if (bucket->wins[i] * config_.route_win_denom >=
            bucket->races * config_.route_win_num) {
          leader = static_cast<int>(i);
          break;
        }
      }
    }
    if (nodes <= config_.cheap_node_threshold)
      return leader >= 0 ? leader : 0;
    return leader;
  }

  /// One member, on the coordinator thread (its runner is idle between
  /// dispatches, so there is no concurrent access to hand off).
  CheckResult run_single(size_t index, std::span<const ExprRef> assertions,
                         Assignment* model) {
    Solver& member = *runners_[index]->member;
    member.reset_cancel();
    member.set_deadline_ms(deadline_ms_);
    CheckResult result = CheckResult::kUnknown;
    try {
      result = member.check(assertions, model);
    } catch (...) {
      // A crashing member weakens the answer (the race below still runs);
      // it must not take the portfolio down with it.
    }
    if (result != CheckResult::kUnknown) last_backend_ = member.last_backend();
    return result;
  }

  /// Race every member over the query under `deadline_ms` (the caller's
  /// remaining per-query budget); first definitive verdict wins and cancels
  /// the rest. Always waits for all members to return, so no member thread
  /// touches the query after this call completes.
  CheckResult run_race(uint32_t bucket_key, uint32_t deadline_ms,
                       std::span<const ExprRef> assertions, Assignment* model) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& runner : runners_) {
        runner->member->reset_cancel();
        runner->member->set_deadline_ms(deadline_ms);
        runner->result = CheckResult::kUnknown;
        runner->model.values.clear();
      }
      job_assertions_ = assertions;
      job_want_model_ = model != nullptr;
      decided_ = false;
      winner_ = -1;
      pending_ = runners_.size();
      ++generation_;
    }
    job_cv_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });

    ++stats_.portfolio_races;
    Bucket& bucket = buckets_[bucket_key];
    if (bucket.wins.size() != runners_.size())
      bucket.wins.assign(runners_.size(), 0);
    if (winner_ < 0) return CheckResult::kUnknown;

    Runner& winner = *runners_[static_cast<size_t>(winner_)];
    ++bucket.races;
    ++bucket.wins[static_cast<size_t>(winner_)];
    ++stats_.portfolio_wins[winner.member->name()];
    for (auto& runner : runners_)
      if (runner.get() != &winner && runner->result == CheckResult::kUnknown)
        ++stats_.portfolio_cancelled;
    last_backend_ = winner.member->last_backend();
    if (model && winner.result == CheckResult::kSat) *model = winner.model;
    return winner.result;
  }

  void runner_loop(Runner& self) {
    for (;;) {
      std::span<const ExprRef> assertions;
      bool want_model = false;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        job_cv_.wait(lock, [&] {
          return stop_ || self.seen_generation != generation_;
        });
        if (stop_) return;
        self.seen_generation = generation_;
        assertions = job_assertions_;
        want_model = job_want_model_;
        if (decided_) {
          // Another member already won before this runner woke: skip the
          // check entirely (counted as cancelled, like a mid-flight loser).
          self.result = CheckResult::kUnknown;
          finish_job();
          continue;
        }
      }
      CheckResult result = CheckResult::kUnknown;
      try {
        result = self.member->check(assertions,
                                    want_model ? &self.model : nullptr);
      } catch (...) {
        result = CheckResult::kUnknown;  // a crashing member just loses
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        self.result = result;
        if (result != CheckResult::kUnknown && !decided_) {
          decided_ = true;
          for (size_t i = 0; i < runners_.size(); ++i) {
            if (runners_[i].get() == &self)
              winner_ = static_cast<int>(i);
            else
              runners_[i]->member->cancel();
          }
        }
        finish_job();
      }
    }
  }

  /// Caller holds mutex_.
  void finish_job() {
    if (--pending_ == 0) done_cv_.notify_all();
  }

  const PortfolioConfig config_;
  std::vector<std::unique_ptr<Runner>> runners_;
  std::unordered_map<uint32_t, Bucket> buckets_;  // coordinator-thread only
  std::string last_backend_ = "portfolio";        // coordinator-thread only

  // Race coordination (all guarded by mutex_; Solver::cancel_flag_ and the
  // members' flags are the only lock-free channel).
  std::mutex mutex_;
  std::condition_variable job_cv_;   // runners wait for a new generation
  std::condition_variable done_cv_;  // coordinator waits for pending_ == 0
  uint64_t generation_ = 0;
  std::span<const ExprRef> job_assertions_;
  bool job_want_model_ = false;
  bool decided_ = false;
  int winner_ = -1;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace

std::unique_ptr<Solver> make_portfolio_solver(
    std::vector<std::unique_ptr<Solver>> members, PortfolioConfig config) {
  return std::make_unique<PortfolioSolver>(std::move(members), config);
}

}  // namespace binsym::smt
