// SMT-LIB v2.6 text emission.
//
// Produces the kind of query shown in Fig. 2 (step 3) of the paper:
// declarations for every free variable, one `assert` per path constraint and
// a final `check-sat`. Shared sub-DAGs are emitted once through `let`
// bindings so the printed query size reflects the DAG size, not the tree
// size. Mostly used for debugging, golden tests and the query-complexity
// ablation, but also accepted by any SMT-LIB compliant solver.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "smt/context.hpp"
#include "smt/expr.hpp"

namespace binsym::smt {

/// Render a single expression (with let-bindings for shared nodes).
std::string to_smtlib(const Context& ctx, ExprRef root);

/// Render a complete query: declarations, assertions, (check-sat).
void print_query(std::ostream& os, const Context& ctx,
                 const std::vector<ExprRef>& assertions,
                 bool with_check_sat = true);

std::string query_string(const Context& ctx,
                         const std::vector<ExprRef>& assertions,
                         bool with_check_sat = true);

/// Parse the expression subset the printer emits — `let` bindings, indexed
/// extract/extensions, the Bool/BitVec-1 coercions, #b/#x literals and bare
/// symbols — rebuilding through `ctx`'s folding builders (so parsing a
/// printed expression back into its interning context returns the original
/// node: the round-trip property pinned by test_smtlib.cpp). Free variables
/// must already be declared in `ctx`; use parse_query for self-contained
/// text. Returns nullptr on a syntax error or unknown symbol, with a
/// diagnostic in *error when given.
ExprRef parse_smtlib(Context& ctx, const std::string& text,
                     std::string* error = nullptr);

/// Parse a complete printed query: `declare-const` lines declare variables
/// in `ctx`, each `assert` contributes one expression to *assertions
/// (`set-logic`, `set-option` and `check-sat` are accepted and ignored).
/// Returns false on error.
bool parse_query(Context& ctx, const std::string& text,
                 std::vector<ExprRef>* assertions,
                 std::string* error = nullptr);

}  // namespace binsym::smt
