// SMT-LIB v2.6 text emission.
//
// Produces the kind of query shown in Fig. 2 (step 3) of the paper:
// declarations for every free variable, one `assert` per path constraint and
// a final `check-sat`. Shared sub-DAGs are emitted once through `let`
// bindings so the printed query size reflects the DAG size, not the tree
// size. Mostly used for debugging, golden tests and the query-complexity
// ablation, but also accepted by any SMT-LIB compliant solver.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "smt/context.hpp"
#include "smt/expr.hpp"

namespace binsym::smt {

/// Render a single expression (with let-bindings for shared nodes).
std::string to_smtlib(const Context& ctx, ExprRef root);

/// Render a complete query: declarations, assertions, (check-sat).
void print_query(std::ostream& os, const Context& ctx,
                 const std::vector<ExprRef>& assertions,
                 bool with_check_sat = true);

std::string query_string(const Context& ctx,
                         const std::vector<ExprRef>& assertions,
                         bool with_check_sat = true);

}  // namespace binsym::smt
