#include "smt/sat/cdcl.hpp"

#include <algorithm>
#include <cassert>

namespace binsym::smt::sat {

Var CdclSolver::new_var() {
  Var var = static_cast<Var>(activity_.size());
  assigns_.push_back(-1);
  reason_.push_back(kUndef);
  level_.push_back(0);
  activity_.push_back(0.0);
  phase_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  return var;
}

bool CdclSolver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  assert(trail_lim_.empty() && "clauses must be added at decision level 0");

  // Root-level simplification: drop false literals, detect tautologies and
  // already-satisfied clauses, deduplicate.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> simplified;
  for (size_t i = 0; i < lits.size(); ++i) {
    Lit lit = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == lit_not(lit)) return true;  // tautology
    if (i > 0 && lits[i - 1] == lit) continue;  // duplicate
    int8_t v = lit_value(lit);
    if (v == 1) return true;   // satisfied at root
    if (v == 0) continue;      // falsified at root: drop
    simplified.push_back(lit);
  }

  if (simplified.empty()) {
    unsat_ = true;
    return false;
  }
  if (simplified.size() == 1) {
    enqueue(simplified[0], kUndef);
    if (propagate() != kUndef) {
      unsat_ = true;
      return false;
    }
    return true;
  }

  clauses_.push_back(Clause{std::move(simplified), false});
  attach(static_cast<int>(clauses_.size()) - 1);
  return true;
}

void CdclSolver::attach(int clause_index) {
  const Clause& clause = clauses_[clause_index];
  watches_[clause.lits[0]].push_back(clause_index);
  watches_[clause.lits[1]].push_back(clause_index);
}

void CdclSolver::enqueue(Lit lit, int reason) {
  Var var = lit_var(lit);
  assert(assigns_[var] == -1);
  assigns_[var] = lit_negated(lit) ? 0 : 1;
  phase_[var] = !lit_negated(lit);
  reason_[var] = reason;
  level_[var] = static_cast<int>(trail_lim_.size());
  trail_.push_back(lit);
}

int CdclSolver::propagate() {
  while (propagate_head_ < trail_.size()) {
    Lit lit = trail_[propagate_head_++];
    ++stats_.propagations;
    // Clauses watching ¬lit need a new watch or become unit/conflicting.
    Lit falsified = lit_not(lit);
    std::vector<int>& watch_list = watches_[falsified];
    size_t kept = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      int clause_index = watch_list[i];
      Clause& clause = clauses_[clause_index];
      // Normalize: watched literals are lits[0] and lits[1].
      if (clause.lits[0] == falsified)
        std::swap(clause.lits[0], clause.lits[1]);
      assert(clause.lits[1] == falsified);

      if (lit_value(clause.lits[0]) == 1) {
        watch_list[kept++] = clause_index;  // already satisfied
        continue;
      }
      // Find a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < clause.lits.size(); ++k) {
        if (lit_value(clause.lits[k]) != 0) {
          std::swap(clause.lits[1], clause.lits[k]);
          watches_[clause.lits[1]].push_back(clause_index);
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Unit or conflict.
      watch_list[kept++] = clause_index;
      if (lit_value(clause.lits[0]) == 0) {
        // Conflict: restore the untouched suffix of the watch list.
        for (size_t k = i + 1; k < watch_list.size(); ++k)
          watch_list[kept++] = watch_list[k];
        watch_list.resize(kept);
        return clause_index;
      }
      enqueue(clause.lits[0], clause_index);
    }
    watch_list.resize(kept);
  }
  return kUndef;
}

void CdclSolver::bump_var(Var var) {
  activity_[var] += activity_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
}

void CdclSolver::decay_activities() { activity_inc_ /= 0.95; }

void CdclSolver::analyze(int conflict, std::vector<Lit>* learned,
                         int* backjump_level) {
  // First-UIP scheme.
  learned->clear();
  learned->push_back(0);  // slot for the asserting literal
  std::vector<bool> seen(activity_.size(), false);
  int counter = 0;
  Lit asserting = 0;
  bool first_round = true;
  size_t trail_index = trail_.size();
  int current_level = static_cast<int>(trail_lim_.size());

  int reason = conflict;
  for (;;) {
    assert(reason != kUndef);
    const Clause& clause = clauses_[reason];
    // Skip lits[0] on non-initial rounds: it is the literal being resolved.
    for (size_t i = (first_round ? 0 : 1); i < clause.lits.size(); ++i) {
      Lit lit = clause.lits[i];
      Var var = lit_var(lit);
      if (seen[var] || level_[var] == 0) continue;
      seen[var] = true;
      bump_var(var);
      if (level_[var] == current_level) {
        ++counter;
      } else {
        learned->push_back(lit);
      }
    }
    first_round = false;
    // Walk the trail to the next marked literal.
    while (!seen[lit_var(trail_[trail_index - 1])]) --trail_index;
    --trail_index;
    asserting = trail_[trail_index];
    seen[lit_var(asserting)] = false;
    --counter;
    if (counter == 0) break;
    reason = reason_[lit_var(asserting)];
  }
  (*learned)[0] = lit_not(asserting);

  // Backjump to the second-highest level in the learned clause.
  *backjump_level = 0;
  for (size_t i = 1; i < learned->size(); ++i) {
    *backjump_level = std::max(*backjump_level, level_[lit_var((*learned)[i])]);
    // Keep the highest-level literal in slot 1 (watch invariant).
    if (level_[lit_var((*learned)[i])] > level_[lit_var((*learned)[1])])
      std::swap((*learned)[1], (*learned)[i]);
  }
}

void CdclSolver::backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  size_t keep = trail_lim_[target_level];
  for (size_t i = trail_.size(); i > keep; --i) {
    Var var = lit_var(trail_[i - 1]);
    assigns_[var] = -1;
    reason_[var] = kUndef;
  }
  trail_.resize(keep);
  trail_lim_.resize(target_level);
  propagate_head_ = keep;
}

Lit CdclSolver::pick_branch() {
  Var best = kUndef;
  double best_activity = -1.0;
  for (Var var = 0; var < static_cast<Var>(activity_.size()); ++var) {
    if (assigns_[var] == -1 && activity_[var] > best_activity) {
      best = var;
      best_activity = activity_[var];
    }
  }
  if (best == kUndef) return kUndef;
  return make_lit(best, !phase_[best]);
}

SatResult CdclSolver::solve() {
  if (unsat_) return SatResult::kUnsat;
  if (propagate() != kUndef) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  uint64_t conflicts_until_restart = 100;
  uint64_t conflicts_since_restart = 0;
  uint64_t ticks = 0;
  std::vector<Lit> learned;

  for (;;) {
    // Deadline/interrupt probe: every 64 search-loop iterations (each
    // iteration is one propagation burst plus a conflict or a decision, so
    // the clock read and relaxed load are amortized to noise). kUnknown
    // leaves the solver state valid but the search unfinished; callers must
    // not read a model.
    if ((++ticks & 0x3f) == 0) {
      if (interrupt_ && interrupt_->load(std::memory_order_relaxed))
        return SatResult::kUnknown;
      if (deadline_ && std::chrono::steady_clock::now() >= *deadline_)
        return SatResult::kUnknown;
    }
    int conflict = propagate();
    if (conflict != kUndef) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      int backjump_level = 0;
      analyze(conflict, &learned, &backjump_level);
      backtrack(backjump_level);
      if (learned.size() == 1) {
        enqueue(learned[0], kUndef);
      } else {
        clauses_.push_back(Clause{learned, true});
        ++stats_.learned_clauses;
        attach(static_cast<int>(clauses_.size()) - 1);
        enqueue(learned[0], static_cast<int>(clauses_.size()) - 1);
      }
      decay_activities();
      continue;
    }

    if (conflicts_since_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      conflicts_since_restart = 0;
      conflicts_until_restart =
          conflicts_until_restart + conflicts_until_restart / 2;
      backtrack(0);
      continue;
    }

    Lit decision = pick_branch();
    if (decision == kUndef) return SatResult::kSat;  // all assigned
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(decision, kUndef);
  }
}

}  // namespace binsym::smt::sat
