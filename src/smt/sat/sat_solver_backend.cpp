// smt::Solver backend over the in-tree bit-blaster + CDCL solver.
//
// Each check() builds a fresh CNF (no native incrementality — the scoped
// push/pop/assert_/check_assuming API is served by the Solver base class's
// client-side adapter, and the engine's query cache absorbs repetition).
// Exists as (a) an ablation subject against Z3 and (b) a differential
// oracle for the SMT layer: the property tests require both backends to
// agree on sat/unsat for engine-generated queries.
#include <chrono>

#include "smt/sat/bitblast.hpp"
#include "smt/solver.hpp"

namespace binsym::smt {

namespace {

class BitblastSolver final : public Solver {
 public:
  explicit BitblastSolver(Context& ctx) : ctx_(ctx) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override {
    auto start = std::chrono::steady_clock::now();
    ++stats_.queries;

    // A cancel that landed before the check started (a portfolio race
    // already decided) skips the work entirely.
    if (cancel_requested()) {
      ++stats_.unknown;
      return CheckResult::kUnknown;
    }

    sat::CdclSolver solver;
    // The per-query deadline covers the whole check (blasting + search);
    // only the CDCL loop probes it and the cancel flag, but blasting is
    // polynomial in the DAG so the search dominates every hard query.
    if (deadline_ms_ > 0) {
      solver.set_deadline(start + std::chrono::milliseconds(deadline_ms_));
    }
    solver.set_interrupt(&cancel_flag_);
    sat::BitBlaster blaster(solver);
    for (ExprRef assertion : assertions) blaster.assert_true(assertion);

    CheckResult result;
    if (cancel_requested()) {
      result = CheckResult::kUnknown;
    } else if (blaster.inconsistent()) {
      result = CheckResult::kUnsat;
    } else {
      switch (solver.solve()) {
        case sat::SatResult::kSat:     result = CheckResult::kSat; break;
        case sat::SatResult::kUnsat:   result = CheckResult::kUnsat; break;
        case sat::SatResult::kUnknown: result = CheckResult::kUnknown; break;
        default:                       result = CheckResult::kUnknown; break;
      }
    }

    if (result == CheckResult::kSat) {
      ++stats_.sat;
      if (model) {
        for (const auto& [var_id, bits] : blaster.vars()) {
          (void)bits;
          model->set(var_id,
                     blaster.var_value(var_id, ctx_.var_info(var_id).width));
        }
      }
    } else if (result == CheckResult::kUnsat) {
      ++stats_.unsat;
    } else {
      ++stats_.unknown;
    }

    stats_.solve_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
  }

  std::string name() const override { return "bitblast+cdcl"; }

 private:
  Context& ctx_;
};

}  // namespace

std::unique_ptr<Solver> make_bitblast_solver(Context& ctx) {
  return std::make_unique<BitblastSolver>(ctx);
}

}  // namespace binsym::smt
