// CDCL SAT solver (MiniSat-style core).
//
// Backs the project's own bit-blasting solver backend: two-watched-literal
// propagation, first-UIP conflict analysis with clause learning and
// backjumping, VSIDS-like activity decisions with phase saving, and
// geometric restarts. Small by design, but a real solver — property tests
// cross-check it against Z3 on engine-generated queries.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace binsym::smt::sat {

using Var = int32_t;
/// Literal encoding: 2*var + sign (sign bit set == negated).
using Lit = int32_t;

constexpr Lit make_lit(Var var, bool negated) { return 2 * var + negated; }
constexpr Var lit_var(Lit lit) { return lit >> 1; }
constexpr bool lit_negated(Lit lit) { return lit & 1; }
constexpr Lit lit_not(Lit lit) { return lit ^ 1; }

enum class SatResult : uint8_t { kSat, kUnsat, kUnknown /* deadline hit */ };

struct CdclStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t learned_clauses = 0;
  uint64_t restarts = 0;
};

class CdclSolver {
 public:
  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Add a clause; returns false if the formula became trivially unsat
  /// (empty clause after simplification against root-level assignments).
  bool add_clause(std::vector<Lit> lits);

  /// Abandon the search (returning kUnknown) once this instant passes.
  /// Probed every few hundred search-loop iterations, so the overrun is
  /// bounded by one propagation burst, not by total query hardness.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }

  /// Cooperative interrupt: abandon the search (returning kUnknown) once
  /// *flag becomes true. Probed alongside the deadline; the flag is owned
  /// by the caller (another thread may set it — smt::Solver::cancel()) and
  /// must outlive solve().
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  SatResult solve();

  /// Model access (valid after solve() returned kSat).
  bool value(Var var) const { return assigns_[var] == 1; }

  const CdclStats& stats() const { return stats_; }

 private:
  static constexpr int kUndef = -1;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };

  // -1 unassigned, 0 false, 1 true (per variable).
  int8_t lit_value(Lit lit) const {
    int8_t v = assigns_[lit_var(lit)];
    if (v < 0) return -1;
    return lit_negated(lit) ? static_cast<int8_t>(1 - v) : v;
  }

  void enqueue(Lit lit, int reason);
  int propagate();  // returns conflicting clause index or kUndef
  void analyze(int conflict, std::vector<Lit>* learned, int* backjump_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var var);
  void decay_activities();
  void attach(int clause_index);

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // per literal: clause indices
  std::vector<int8_t> assigns_;            // per var
  std::vector<int> reason_;                // per var: clause index or kUndef
  std::vector<int> level_;                 // per var
  std::vector<double> activity_;           // per var
  std::vector<bool> phase_;                // per var: saved polarity
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t propagate_head_ = 0;
  double activity_inc_ = 1.0;
  bool unsat_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* interrupt_ = nullptr;
  CdclStats stats_;
};

}  // namespace binsym::smt::sat
