#include "smt/sat/bitblast.hpp"

#include <cassert>

#include "support/bits.hpp"

namespace binsym::smt::sat {

BitBlaster::BitBlaster(CdclSolver& solver) : solver_(solver) {
  Var true_var = solver_.new_var();
  true_lit_ = make_lit(true_var, false);
  clause({true_lit_});
}

Lit BitBlaster::fresh() { return make_lit(solver_.new_var(), false); }

void BitBlaster::clause(std::vector<Lit> lits) {
  if (!solver_.add_clause(std::move(lits))) inconsistent_ = true;
}

// -- Gates (with constant short-circuiting). ----------------------------------

Lit BitBlaster::g_and(Lit a, Lit b) {
  if (is_const(a, false) || is_const(b, false)) return lit_false();
  if (is_const(a, true)) return b;
  if (is_const(b, true)) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return lit_false();
  Lit out = fresh();
  clause({lit_not(out), a});
  clause({lit_not(out), b});
  clause({out, lit_not(a), lit_not(b)});
  return out;
}

Lit BitBlaster::g_or(Lit a, Lit b) { return lit_not(g_and(lit_not(a), lit_not(b))); }

Lit BitBlaster::g_xor(Lit a, Lit b) {
  if (is_const(a, false)) return b;
  if (is_const(b, false)) return a;
  if (is_const(a, true)) return lit_not(b);
  if (is_const(b, true)) return lit_not(a);
  if (a == b) return lit_false();
  if (a == lit_not(b)) return lit_true();
  Lit out = fresh();
  clause({lit_not(out), a, b});
  clause({lit_not(out), lit_not(a), lit_not(b)});
  clause({out, lit_not(a), b});
  clause({out, a, lit_not(b)});
  return out;
}

Lit BitBlaster::g_mux(Lit sel, Lit then_lit, Lit else_lit) {
  if (is_const(sel, true)) return then_lit;
  if (is_const(sel, false)) return else_lit;
  if (then_lit == else_lit) return then_lit;
  Lit out = fresh();
  clause({lit_not(sel), lit_not(then_lit), out});
  clause({lit_not(sel), then_lit, lit_not(out)});
  clause({sel, lit_not(else_lit), out});
  clause({sel, else_lit, lit_not(out)});
  return out;
}

Lit BitBlaster::g_and_all(const Bits& lits) {
  Lit acc = lit_true();
  for (Lit lit : lits) acc = g_and(acc, lit);
  return acc;
}

Lit BitBlaster::g_or_all(const Bits& lits) {
  Lit acc = lit_false();
  for (Lit lit : lits) acc = g_or(acc, lit);
  return acc;
}

// -- Word-level circuits. --------------------------------------------------------

BitBlaster::Bits BitBlaster::constant_bits(uint64_t value, unsigned width) {
  Bits bits(width);
  for (unsigned i = 0; i < width; ++i)
    bits[i] = test_bit(value, i) ? lit_true() : lit_false();
  return bits;
}

BitBlaster::Bits BitBlaster::adder(const Bits& a, const Bits& b, Lit carry_in,
                                   Lit* carry_out) {
  assert(a.size() == b.size());
  Bits sum(a.size());
  Lit carry = carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    Lit axb = g_xor(a[i], b[i]);
    sum[i] = g_xor(axb, carry);
    // carry' = (a & b) | (carry & (a ^ b))
    carry = g_or(g_and(a[i], b[i]), g_and(carry, axb));
  }
  if (carry_out) *carry_out = carry;
  return sum;
}

BitBlaster::Bits BitBlaster::negate(const Bits& a) {
  Bits inverted(a.size());
  for (size_t i = 0; i < a.size(); ++i) inverted[i] = lit_not(a[i]);
  return adder(inverted, constant_bits(0, static_cast<unsigned>(a.size())),
               lit_true(), nullptr);
}

BitBlaster::Bits BitBlaster::multiply(const Bits& a, const Bits& b) {
  unsigned width = static_cast<unsigned>(a.size());
  Bits acc = constant_bits(0, width);
  for (unsigned i = 0; i < width; ++i) {
    if (is_const(a[i], false)) continue;
    // Partial product: (b << i) & a_i, truncated to width.
    Bits partial = constant_bits(0, width);
    for (unsigned k = i; k < width; ++k) partial[k] = g_and(b[k - i], a[i]);
    acc = adder(acc, partial, lit_false(), nullptr);
  }
  return acc;
}

BitBlaster::Bits BitBlaster::mux_word(Lit sel, const Bits& then_bits,
                                      const Bits& else_bits) {
  assert(then_bits.size() == else_bits.size());
  Bits out(then_bits.size());
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = g_mux(sel, then_bits[i], else_bits[i]);
  return out;
}

Lit BitBlaster::equals(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Lit acc = lit_true();
  for (size_t i = 0; i < a.size(); ++i)
    acc = g_and(acc, lit_not(g_xor(a[i], b[i])));
  return acc;
}

Lit BitBlaster::unsigned_less(const Bits& a, const Bits& b) {
  // a < b  <=>  no carry out of a + ~b + 1.
  Bits b_inverted(b.size());
  for (size_t i = 0; i < b.size(); ++i) b_inverted[i] = lit_not(b[i]);
  Lit carry_out = lit_false();
  adder(a, b_inverted, lit_true(), &carry_out);
  return lit_not(carry_out);
}

Lit BitBlaster::signed_less(const Bits& a, const Bits& b) {
  // Flip the sign bits and compare unsigned.
  Bits a2 = a, b2 = b;
  a2.back() = lit_not(a2.back());
  b2.back() = lit_not(b2.back());
  return unsigned_less(a2, b2);
}

BitBlaster::Bits BitBlaster::shift(const Bits& a, const Bits& amount,
                                   Kind kind) {
  unsigned width = static_cast<unsigned>(a.size());
  Lit fill = kind == Kind::kAShr ? a.back() : lit_false();

  // Barrel network over the amount bits that can address within the word.
  unsigned stages = 0;
  while ((1u << stages) < width) ++stages;
  Bits result = a;
  for (unsigned s = 0; s < stages && s < amount.size(); ++s) {
    unsigned distance = 1u << s;
    Bits shifted(width);
    for (unsigned i = 0; i < width; ++i) {
      if (kind == Kind::kShl) {
        shifted[i] = i >= distance ? result[i - distance] : lit_false();
      } else {
        shifted[i] = i + distance < width ? result[i + distance] : fill;
      }
    }
    result = mux_word(amount[s], shifted, result);
  }

  // Saturation: any amount bit beyond the in-word range forces the
  // all-shifted-out value (0, or sign fill for ashr).
  Bits oversize_bits;
  for (size_t i = stages; i < amount.size(); ++i) oversize_bits.push_back(amount[i]);
  // Amounts in [width, 2^stages) within the staged bits also overshoot for
  // non-power-of-two widths; the barrel network already yields the correct
  // saturated value for those because every shifted-in bit is `fill`.
  Lit oversize = g_or_all(oversize_bits);
  Bits saturated(width, fill);
  return mux_word(oversize, saturated, result);
}

void BitBlaster::divide(const Bits& a, const Bits& b, Bits* quotient,
                        Bits* remainder) {
  unsigned width = static_cast<unsigned>(a.size());
  // Fresh q, r constrained by: b != 0 -> (a == q*b + r  /\  r < b  /\  no
  // overflow in q*b). Overflow-freedom comes from doing the multiply and
  // add in 2w bits and requiring the upper half to be zero.
  Bits q(width), r(width);
  for (unsigned i = 0; i < width; ++i) q[i] = fresh();
  for (unsigned i = 0; i < width; ++i) r[i] = fresh();

  Bits q_wide = q, b_wide = b, r_wide = r, a_wide = a;
  q_wide.resize(2 * width, lit_false());
  b_wide.resize(2 * width, lit_false());
  r_wide.resize(2 * width, lit_false());
  a_wide.resize(2 * width, lit_false());

  Bits product = multiply(q_wide, b_wide);
  Bits sum = adder(product, r_wide, lit_false(), nullptr);
  Lit identity = equals(sum, a_wide);
  Lit remainder_ok = unsigned_less(r, b);
  Lit b_is_zero = equals(b, constant_bits(0, width));

  // (¬b_zero -> identity) and (¬b_zero -> remainder_ok)
  clause({b_is_zero, identity});
  clause({b_is_zero, remainder_ok});

  // Final values obey the SMT-LIB b==0 semantics.
  Bits ones(width, lit_true());
  *quotient = mux_word(b_is_zero, ones, q);
  *remainder = mux_word(b_is_zero, a, r);
}

// -- Expression layer. -------------------------------------------------------------

const BitBlaster::Bits& BitBlaster::blast(ExprRef expr) {
  postorder(expr, [this](ExprRef node) {
    if (!memo_.count(node->id)) memo_.emplace(node->id, blast_node(node));
  });
  return memo_.at(expr->id);
}

BitBlaster::Bits BitBlaster::blast_node(ExprRef e) {
  auto op = [this, e](unsigned i) -> const Bits& {
    return memo_.at(e->ops[i]->id);
  };
  unsigned width = e->width;

  switch (e->kind) {
    case Kind::kConst:
      return constant_bits(e->constant, width);
    case Kind::kVar: {
      if (auto it = var_bits_.find(e->var_id); it != var_bits_.end())
        return it->second;
      Bits bits(width);
      for (unsigned i = 0; i < width; ++i) bits[i] = fresh();
      var_bits_.emplace(e->var_id, bits);
      return bits;
    }
    case Kind::kNot: {
      Bits bits = op(0);
      for (Lit& lit : bits) lit = lit_not(lit);
      return bits;
    }
    case Kind::kNeg:
      return negate(op(0));
    case Kind::kExtract:
      return Bits(op(0).begin() + e->aux1, op(0).begin() + e->aux0 + 1);
    case Kind::kZExt: {
      Bits bits = op(0);
      bits.resize(width, lit_false());
      return bits;
    }
    case Kind::kSExt: {
      Bits bits = op(0);
      bits.resize(width, bits.back());
      return bits;
    }
    case Kind::kAdd:
      return adder(op(0), op(1), lit_false(), nullptr);
    case Kind::kSub:
      return adder(op(0), negate(op(1)), lit_false(), nullptr);
    case Kind::kMul:
      return multiply(op(0), op(1));
    case Kind::kUDiv: {
      Bits q, r;
      divide(op(0), op(1), &q, &r);
      return q;
    }
    case Kind::kURem: {
      Bits q, r;
      divide(op(0), op(1), &q, &r);
      return r;
    }
    case Kind::kSDiv: {
      // Sign/magnitude around the unsigned circuit; wraps INT_MIN/-1 and
      // matches bvsdiv-by-zero by construction (see tests).
      const Bits& a = op(0);
      const Bits& b = op(1);
      Lit sign_a = a.back(), sign_b = b.back();
      Bits abs_a = mux_word(sign_a, negate(a), a);
      Bits abs_b = mux_word(sign_b, negate(b), b);
      Bits q, r;
      divide(abs_a, abs_b, &q, &r);
      return mux_word(g_xor(sign_a, sign_b), negate(q), q);
    }
    case Kind::kSRem: {
      const Bits& a = op(0);
      const Bits& b = op(1);
      Lit sign_a = a.back(), sign_b = b.back();
      Bits abs_a = mux_word(sign_a, negate(a), a);
      Bits abs_b = mux_word(sign_b, negate(b), b);
      Bits q, r;
      divide(abs_a, abs_b, &q, &r);
      return mux_word(sign_a, negate(r), r);
    }
    case Kind::kAnd: {
      Bits bits(width);
      for (unsigned i = 0; i < width; ++i) bits[i] = g_and(op(0)[i], op(1)[i]);
      return bits;
    }
    case Kind::kOr: {
      Bits bits(width);
      for (unsigned i = 0; i < width; ++i) bits[i] = g_or(op(0)[i], op(1)[i]);
      return bits;
    }
    case Kind::kXor: {
      Bits bits(width);
      for (unsigned i = 0; i < width; ++i) bits[i] = g_xor(op(0)[i], op(1)[i]);
      return bits;
    }
    case Kind::kShl:
      return shift(op(0), op(1), Kind::kShl);
    case Kind::kLShr:
      return shift(op(0), op(1), Kind::kLShr);
    case Kind::kAShr:
      return shift(op(0), op(1), Kind::kAShr);
    case Kind::kEq:
      return Bits{equals(op(0), op(1))};
    case Kind::kUlt:
      return Bits{unsigned_less(op(0), op(1))};
    case Kind::kUle:
      return Bits{lit_not(unsigned_less(op(1), op(0)))};
    case Kind::kSlt:
      return Bits{signed_less(op(0), op(1))};
    case Kind::kSle:
      return Bits{lit_not(signed_less(op(1), op(0)))};
    case Kind::kConcat: {
      Bits bits = op(1);  // low part
      bits.insert(bits.end(), op(0).begin(), op(0).end());
      return bits;
    }
    case Kind::kIte:
      return mux_word(op(0)[0], op(1), op(2));
  }
  return {};
}

void BitBlaster::assert_true(ExprRef expr) {
  assert(expr->width == 1);
  const Bits& bits = blast(expr);
  clause({bits[0]});
}

uint64_t BitBlaster::var_value(uint32_t var_id, unsigned width) const {
  auto it = var_bits_.find(var_id);
  if (it == var_bits_.end()) return 0;
  uint64_t value = 0;
  for (unsigned i = 0; i < width && i < it->second.size(); ++i)
    if (solver_.value(lit_var(it->second[i])) != lit_negated(it->second[i]))
      value |= uint64_t{1} << i;
  return value;
}

}  // namespace binsym::smt::sat
