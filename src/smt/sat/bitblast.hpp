// Bit-blasting: expression DAGs -> CNF over the CDCL solver.
//
// Tseitin encoding with structural memoization per node. Arithmetic uses
// ripple-carry adders and shift-add multipliers; shifts are barrel
// networks with SMT saturation semantics; division introduces fresh
// quotient/remainder vectors constrained by the multiplication identity
// (guarded for the divisor==0 special cases); signed division/remainder
// are built from the unsigned circuits via sign/magnitude conversion,
// matching SMT-LIB exactly.
#pragma once

#include <unordered_map>
#include <vector>

#include "smt/context.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/sat/cdcl.hpp"

namespace binsym::smt::sat {

class BitBlaster {
 public:
  explicit BitBlaster(CdclSolver& solver);

  /// Assert a width-1 expression to be true.
  void assert_true(ExprRef expr);

  /// After a kSat solve(): read back the value of a context variable.
  uint64_t var_value(uint32_t var_id, unsigned width) const;

  /// Variables that received CNF bits (for model extraction).
  const std::unordered_map<uint32_t, std::vector<Lit>>& vars() const {
    return var_bits_;
  }

  /// True when the formula became unsat during encoding already.
  bool inconsistent() const { return inconsistent_; }

 private:
  using Bits = std::vector<Lit>;  // LSB first

  // -- gate layer -------------------------------------------------------------

  Lit lit_true() const { return true_lit_; }
  Lit lit_false() const { return lit_not(true_lit_); }
  bool is_const(Lit lit, bool value) const {
    return lit == (value ? true_lit_ : lit_not(true_lit_));
  }

  Lit fresh();
  void clause(std::vector<Lit> lits);

  Lit g_and(Lit a, Lit b);
  Lit g_or(Lit a, Lit b);
  Lit g_xor(Lit a, Lit b);
  Lit g_mux(Lit sel, Lit then_lit, Lit else_lit);
  Lit g_and_all(const Bits& lits);
  Lit g_or_all(const Bits& lits);

  // -- word layer -------------------------------------------------------------

  Bits constant_bits(uint64_t value, unsigned width);
  Bits adder(const Bits& a, const Bits& b, Lit carry_in, Lit* carry_out);
  Bits negate(const Bits& a);
  Bits multiply(const Bits& a, const Bits& b);
  Bits mux_word(Lit sel, const Bits& then_bits, const Bits& else_bits);
  Lit equals(const Bits& a, const Bits& b);
  Lit unsigned_less(const Bits& a, const Bits& b);   // a < b
  Lit signed_less(const Bits& a, const Bits& b);
  Bits shift(const Bits& a, const Bits& amount, Kind kind);
  void divide(const Bits& a, const Bits& b, Bits* quotient, Bits* remainder);

  // -- expression layer ---------------------------------------------------------

  const Bits& blast(ExprRef expr);
  Bits blast_node(ExprRef expr);

  CdclSolver& solver_;
  Lit true_lit_;
  bool inconsistent_ = false;
  std::unordered_map<uint32_t, Bits> memo_;      // expr id -> bits
  std::unordered_map<uint32_t, Bits> var_bits_;  // context var id -> bits
};

/// smt::Solver backend built on BitBlaster + CdclSolver; constructed via
/// make_bitblast_solver() (declared in smt/solver.hpp).

}  // namespace binsym::smt::sat
