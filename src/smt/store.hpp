// Persistent content-addressed query/model store.
//
// The QueryCache (cache.hpp) keys a query by the sorted content hashes of
// its assertions — stable across contexts, across the intern toggle and
// across process restarts. That makes the cache's keyspace durable: this
// store maps the same keys to {verdict, model, winning backend, solve time}
// in a single file, so a second exploration of the same target starts with
// every previously solved query already answered (ROADMAP item 4's
// persistent cache).
//
// Models are persisted *by variable name*, not var_id: ids are dense
// per-context indices and mean nothing in the next process, while names are
// stable (the engine derives them from the input layout). At lookup time
// the engine translates names back through Context::lookup_var — every
// variable of a query is declared by the time the query is built, so the
// translation is total for any query the engine replays.
//
// Durability model: load-on-open, mutate in memory, one atomic flush
// (write-to-temp + rename) at engine exit. The file carries a magic, a
// format version and a trailing checksum; any anomaly — truncation,
// corruption, version skew — degrades to an empty store with a diagnostic
// in load_error(), never a crash and never a partial load. kUnknown is
// never admitted: a persisted verdict must be worth believing forever.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "smt/cache.hpp"

namespace binsym::smt {

class SolverStore {
 public:
  struct Entry {
    CheckResult verdict = CheckResult::kUnknown;
    /// Model by (variable name, canonical value); meaningful for kSat.
    std::vector<std::pair<std::string, uint64_t>> model;
    /// Backend that decided the query (Solver::last_backend()).
    std::string backend;
    /// Wall seconds the deciding check took when first solved.
    double solve_seconds = 0;
    /// Distinct free variables in the query — a cheap discriminator against
    /// content-hash key collisions, stable across contexts, the intern
    /// toggle and restarts (unlike node counts, which depend on sharing).
    /// The discriminating lookup() overload treats a mismatch as a miss.
    uint32_t var_count = 0;
  };

  /// On-disk format version; bumped on any layout change. A file with a
  /// different version is ignored (cold start), not migrated.
  /// v2: entries carry the query's variable count as a collision check.
  static constexpr uint32_t kFormatVersion = 2;
  static constexpr const char* kFileName = "store.bin";

  /// Open (and load) the store under `dir`, creating the directory if
  /// needed. Never fails: an unreadable or invalid file yields an empty
  /// store with the reason in load_error().
  static std::shared_ptr<SolverStore> open(const std::string& dir);

  /// True (and fills *out) on a hit; counts a hit or a miss.
  bool lookup(const QueryCache::Key& key, Entry* out);

  /// Discriminating lookup: a key match whose stored var_count differs from
  /// `var_count` is a hash collision with a different query — counted and
  /// reported as a miss, never surfaced. The engine uses this overload; the
  /// plain one exists for tests and callers without the query at hand.
  bool lookup(const QueryCache::Key& key, uint32_t var_count, Entry* out);

  /// Record a decided query. kUnknown entries are rejected (dropped), and
  /// an existing entry for the key is kept — first verdict wins.
  void insert(const QueryCache::Key& key, Entry entry);

  /// Serialize to the backing file (temp + rename, so readers never see a
  /// torn file). Returns false when the write failed; the in-memory store
  /// is unaffected either way.
  bool flush();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

  /// Empty when the backing file loaded cleanly (or did not exist yet).
  const std::string& load_error() const { return load_error_; }
  const std::string& path() const { return path_; }

  // Serialization core, exposed for tests: encode the entry map to the
  // on-disk byte string (including header and checksum) and decode one.
  std::string serialize() const;
  bool deserialize(const std::string& bytes, std::string* error);

 private:
  explicit SolverStore(std::string path) : path_(std::move(path)) {}

  std::string path_;        // backing file (dir + "/" + kFileName)
  std::string load_error_;  // set once at open()
  mutable std::mutex mutex_;
  std::map<QueryCache::Key, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace binsym::smt
