#include "interp/taint.hpp"

#include "interp/uop_run.hpp"

namespace binsym::interp {

namespace {

/// run_block policy over TaintMachine: guards fail on any tainted consumed
/// operand (register or loaded byte), so the fast path only ever runs
/// through taint-free dataflow and its results are untainted — exactly what
/// the spec path would compute.
struct TaintPolicy {
  TaintMachine& m;

  bool reg(unsigned index, uint32_t* out) {
    if (index == 0) {
      *out = 0;
      return true;
    }
    const TaintValue& v = m.regs_[index];
    if (v.tainted) return false;
    *out = static_cast<uint32_t>(v.v);
    return true;
  }
  void set_reg(unsigned index, uint32_t value) {
    if (index != 0) m.regs_[index] = TaintValue{value, 32, false};
  }
  bool load(uint32_t addr, unsigned bytes, uint32_t* out) {
    if (!m.range_untainted(addr, bytes)) return false;
    uint32_t value = 0;
    for (unsigned i = 0; i < bytes; ++i)
      value |= static_cast<uint32_t>(m.memory_byte(addr + i)) << (8 * i);
    *out = value;
    return true;
  }
  void store(uint32_t addr, unsigned bytes, uint32_t value, bool* exit_block) {
    for (unsigned i = 0; i < bytes; ++i)
      m.memory_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    if (!m.range_untainted(addr, bytes))
      for (unsigned i = 0; i < bytes; ++i) m.untaint_byte(addr + i);
    if (m.store_watch_ && m.store_watch_->on_guest_store(addr, bytes))
      *exit_block = true;
  }
};

}  // namespace

void TaintMachine::ecall() {
  uint32_t number = static_cast<uint32_t>(read_register(17).v);
  uint32_t a0 = static_cast<uint32_t>(read_register(10).v);
  uint32_t a1 = static_cast<uint32_t>(read_register(11).v);
  switch (number) {
    case core::kSysExit:
      exit_ = core::ExitReason::kExit;
      exit_code_ = a0;
      break;
    case core::kSysPutChar:
      output_.push_back(static_cast<char>(a0 & 0xff));
      break;
    case core::kSysReportFail:
      output_ += "[fail " + std::to_string(a0) + "]";
      break;
    case core::kSysAssert:
      // The DIFT view of the property oracles: a concretely-violated
      // assert is reported, and a *tainted* condition is an implicit-flow
      // point exactly like a tainted branch (the assertion's outcome is
      // attacker-influenced).
      if (a0 == 0) output_ += "[assert-fail " + std::to_string(a1) + "]";
      if (read_register(10).tainted) tainted_asserts_.push_back(pc_);
      break;
    case core::kSysReach:
      output_ += "[reach " + std::to_string(a0) + "]";
      break;
    case core::kSysSymInput:
      // The taint sources: every requested input byte becomes tainted.
      for (uint32_t i = 0; i < a1; ++i) {
        uint8_t value =
            input_provider_ ? input_provider_(input_counter_) : 0;
        ++input_counter_;
        memory_[a0 + i] = value;
        taint_byte(a0 + i);
      }
      // Guest-visible write: cached code under the buffer must be dropped.
      if (store_watch_ && a1 != 0) store_watch_->on_guest_store(a0, a1);
      break;
    default:
      exit_ = core::ExitReason::kBadSyscall;
      exit_code_ = number;
      break;
  }
}

const BlockCache::Block* TaintTracker::lookup_or_compile(uint32_t pc) {
  if (cache_.page_poisoned(pc)) return nullptr;
  if (const BlockCache::Block* block = cache_.lookup(pc)) return block;
  // Lowering fetch mirrors the slow loop: absent bytes read as zero (and
  // zero never decodes, ending the block). Poisoned pages are refused for
  // the whole word so a block never covers a page that has been stored to.
  auto fetch = [this](uint32_t p, uint32_t* word) {
    if (cache_.page_poisoned(p) || cache_.page_poisoned(p + 3)) return false;
    uint32_t w = 0;
    for (unsigned i = 0; i < 4; ++i)
      w |= static_cast<uint32_t>(machine_.memory_byte(p + i)) << (8 * i);
    *word = w;
    return true;
  };
  Uop* buffer = cache_.begin_compile();
  uint32_t bytes = 0;
  unsigned count = lower_block(decoder_, registry_, fetch, pc, buffer,
                               BlockCache::kMaxBlockUops, &bytes);
  return cache_.finish_compile(pc, count, bytes);
}

uint64_t TaintTracker::run(uint64_t max_steps) {
  uint64_t steps = 0;
  TaintPolicy policy{machine_};
  while (machine_.exit_ == core::ExitReason::kRunning) {
    if (steps >= max_steps) {
      machine_.exit_ = core::ExitReason::kMaxSteps;
      break;
    }
    if (uop_fastpath_) {
      const BlockCache::Block* block = lookup_or_compile(machine_.pc_);
      if (block && block->count) {
        UopRun r =
            run_block(block->uops, block->count, max_steps - steps, policy);
        steps += r.steps;
        if (r.exit != UopExit::kBail) {
          machine_.pc_ = machine_.next_pc_ = r.next_pc;
          continue;  // kStepLimit re-enters the budget check above
        }
        // Re-execute the bailing instruction on the spec path in this same
        // iteration (continuing would re-enter the block and bail forever).
        machine_.pc_ = machine_.next_pc_ = r.bail_pc;
        ++guard_bails_;
      }
    }
    uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i)
      word |= static_cast<uint32_t>(machine_.memory_byte(machine_.pc_ + i))
              << (8 * i);
    auto decoded = decoder_.decode(word);
    if (!decoded) {
      machine_.exit_ = core::ExitReason::kIllegalInstr;
      break;
    }
    const dsl::Semantics* semantics = registry_.get(decoded->id());
    if (!semantics) {
      machine_.exit_ = core::ExitReason::kIllegalInstr;
      break;
    }
    machine_.next_pc_ = machine_.pc_ + decoded->size;
    evaluator_.execute(*semantics, *decoded, machine_);
    machine_.pc_ = machine_.next_pc_;
    ++steps;
  }
  return steps;
}

}  // namespace binsym::interp
