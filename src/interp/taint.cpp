#include "interp/taint.hpp"

namespace binsym::interp {

void TaintMachine::ecall() {
  uint32_t number = static_cast<uint32_t>(read_register(17).v);
  uint32_t a0 = static_cast<uint32_t>(read_register(10).v);
  uint32_t a1 = static_cast<uint32_t>(read_register(11).v);
  switch (number) {
    case core::kSysExit:
      exit_ = core::ExitReason::kExit;
      exit_code_ = a0;
      break;
    case core::kSysPutChar:
      output_.push_back(static_cast<char>(a0 & 0xff));
      break;
    case core::kSysReportFail:
      output_ += "[fail " + std::to_string(a0) + "]";
      break;
    case core::kSysAssert:
      // The DIFT view of the property oracles: a concretely-violated
      // assert is reported, and a *tainted* condition is an implicit-flow
      // point exactly like a tainted branch (the assertion's outcome is
      // attacker-influenced).
      if (a0 == 0) output_ += "[assert-fail " + std::to_string(a1) + "]";
      if (read_register(10).tainted) tainted_asserts_.push_back(pc_);
      break;
    case core::kSysReach:
      output_ += "[reach " + std::to_string(a0) + "]";
      break;
    case core::kSysSymInput:
      // The taint sources: every requested input byte becomes tainted.
      for (uint32_t i = 0; i < a1; ++i) {
        uint8_t value =
            input_provider_ ? input_provider_(input_counter_) : 0;
        ++input_counter_;
        memory_[a0 + i] = value;
        taint_bytes_.insert(a0 + i);
      }
      break;
    default:
      exit_ = core::ExitReason::kBadSyscall;
      exit_code_ = number;
      break;
  }
}

uint64_t TaintTracker::run(uint64_t max_steps) {
  uint64_t steps = 0;
  while (machine_.exit_ == core::ExitReason::kRunning) {
    if (steps >= max_steps) {
      machine_.exit_ = core::ExitReason::kMaxSteps;
      break;
    }
    uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i)
      word |= static_cast<uint32_t>(machine_.memory_byte(machine_.pc_ + i))
              << (8 * i);
    auto decoded = decoder_.decode(word);
    if (!decoded) {
      machine_.exit_ = core::ExitReason::kIllegalInstr;
      break;
    }
    const dsl::Semantics* semantics = registry_.get(decoded->id());
    if (!semantics) {
      machine_.exit_ = core::ExitReason::kIllegalInstr;
      break;
    }
    machine_.next_pc_ = machine_.pc_ + decoded->size;
    evaluator_.execute(*semantics, *decoded, machine_);
    machine_.pc_ = machine_.next_pc_;
    ++steps;
  }
  return steps;
}

}  // namespace binsym::interp
