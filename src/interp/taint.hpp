// Dynamic information-flow tracking (DIFT) interpreter.
//
// The third modular interpreter over the same formal specification (the
// paper's Sect. III-B cites LibRISCV's concrete and DIFT interpreters as
// prior instantiations; BinSym adds the symbolic one). Values carry a
// concrete payload plus a taint bit; taint joins across every arithmetic
// primitive, flows through loads/stores byte-wise, and control decisions on
// tainted values are recorded (implicit-flow points). No instruction
// semantics are duplicated — the same spec AST drives all three
// interpreters, which is the extensibility claim in executable form.
#pragma once

#include <array>
#include <functional>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/path.hpp"
#include "core/syscalls.hpp"
#include "dsl/ast.hpp"
#include "interp/block_cache.hpp"
#include "interp/evaluator.hpp"
#include "interp/uop.hpp"
#include "interp/value.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym::interp {

/// Concrete value + taint bit.
struct TaintValue {
  uint64_t v = 0;
  uint8_t width = 32;
  bool tainted = false;
};

class TaintMachine {
 public:
  using Value = TaintValue;

  Value constant(uint64_t value, unsigned width) {
    return Value{truncate(value, width), static_cast<uint8_t>(width), false};
  }

  Value read_register(unsigned index) {
    return index == 0 ? constant(0, 32) : regs_[index];
  }

  void write_register(unsigned index, const Value& value) {
    if (index != 0) regs_[index] = value;
  }

  Value read_csr(uint32_t csr) {
    auto it = csrs_.find(csr);
    return it == csrs_.end() ? constant(0, 32) : it->second;
  }
  void write_csr(uint32_t csr, const Value& value) { csrs_[csr] = value; }

  Value pc_value() { return constant(pc_, 32); }
  void write_pc(const Value& target) {
    next_pc_ = static_cast<uint32_t>(target.v);
    if (target.tainted) tainted_pc_writes_.push_back(pc_);
  }

  Value load(unsigned bytes, const Value& addr) {
    uint32_t a = static_cast<uint32_t>(addr.v);
    uint64_t value = 0;
    bool tainted = addr.tainted;  // pointer taint propagates
    for (unsigned i = 0; i < bytes; ++i)
      value |= static_cast<uint64_t>(memory_byte(a + i)) << (8 * i);
    if (!range_untainted(a, bytes)) {
      for (unsigned i = 0; i < bytes && !tainted; ++i)
        tainted = taint_bytes_.count(a + i) != 0;
    }
    return Value{value, static_cast<uint8_t>(bytes * 8), tainted};
  }

  void store(unsigned bytes, const Value& addr, const Value& value) {
    uint32_t a = static_cast<uint32_t>(addr.v);
    for (unsigned i = 0; i < bytes; ++i)
      memory_[a + i] = static_cast<uint8_t>(value.v >> (8 * i));
    if (value.tainted || addr.tainted) {
      for (unsigned i = 0; i < bytes; ++i) taint_byte(a + i);
    } else if (!range_untainted(a, bytes)) {
      for (unsigned i = 0; i < bytes; ++i) untaint_byte(a + i);
    }
    if (store_watch_) store_watch_->on_guest_store(a, bytes);
  }

  Value apply_un(dsl::ExprOp op, const Value& a, unsigned aux0, unsigned aux1) {
    CValue r = c_un(op, CValue{a.v, a.width}, aux0, aux1);
    return Value{r.v, r.width, a.tainted};
  }

  Value apply_bin(dsl::ExprOp op, const Value& a, const Value& b) {
    CValue r = c_bin(op, CValue{a.v, a.width}, CValue{b.v, b.width});
    return Value{r.v, r.width, a.tainted || b.tainted};
  }

  Value apply_ite(const Value& cond, const Value& a, const Value& b) {
    Value chosen = cond.v ? a : b;
    chosen.tainted |= cond.tainted;  // implicit flow through selection
    return chosen;
  }

  bool choose(const Value& cond) {
    if (cond.tainted) tainted_branches_.push_back(pc_);
    return cond.v != 0;
  }

  void ecall();
  void ebreak() { exit_ = core::ExitReason::kEbreak; }
  void fence() {}

  // -- Machine control + taint inspection. --------------------------------------

  static constexpr uint32_t kPageBits = 12;

  uint8_t memory_byte(uint32_t addr) const {
    auto it = memory_.find(addr);
    return it == memory_.end() ? 0 : it->second;
  }
  bool byte_tainted(uint32_t addr) const { return taint_bytes_.count(addr); }

  // All taint-shadow mutation funnels through these two so the per-page
  // counts can never drift from taint_bytes_.
  void taint_byte(uint32_t addr) {
    if (taint_bytes_.insert(addr).second)
      ++taint_page_counts_[addr >> kPageBits];
  }
  void untaint_byte(uint32_t addr) {
    if (taint_bytes_.erase(addr) == 0) return;
    auto it = taint_page_counts_.find(addr >> kPageBits);
    if (--it->second == 0) taint_page_counts_.erase(it);
  }

  /// True when no byte of [addr, addr+bytes) is tainted, decided from the
  /// per-page taint counts alone (conservative on dirty pages). Counts
  /// every positive answer in pages_clean_skipped().
  bool range_untainted(uint32_t addr, unsigned bytes) const {
    if (!taint_page_counts_.empty()) {
      uint32_t first = addr >> kPageBits;
      uint32_t last = (addr + bytes - 1) >> kPageBits;
      if (last < first) return false;  // address-space wrap: stay byte-exact
      for (uint32_t page = first; page <= last; ++page)
        if (taint_page_counts_.count(page) != 0) return false;
    }
    ++pages_clean_skipped_;
    return true;
  }

  uint64_t pages_clean_skipped() const { return pages_clean_skipped_; }
  bool register_tainted(unsigned index) const {
    return index != 0 && regs_[index].tainted;
  }
  const std::vector<uint32_t>& tainted_branches() const {
    return tainted_branches_;
  }
  const std::vector<uint32_t>& tainted_pc_writes() const {
    return tainted_pc_writes_;
  }
  /// pcs of kSysAssert ecalls whose condition was tainted (the assertion
  /// outcome is input-controlled — the DIFT shadow of the assert oracle).
  const std::vector<uint32_t>& tainted_asserts() const {
    return tainted_asserts_;
  }

  std::array<Value, 32> regs_{};
  std::unordered_map<uint32_t, Value> csrs_;
  std::unordered_map<uint32_t, uint8_t> memory_;
  std::unordered_set<uint32_t> taint_bytes_;
  uint32_t pc_ = 0;
  uint32_t next_pc_ = 0;
  core::ExitReason exit_ = core::ExitReason::kRunning;
  uint32_t exit_code_ = 0;
  std::string output_;
  /// Concrete values for sym_input bytes (the taint sources); default 0.
  std::function<uint8_t(unsigned)> input_provider_;
  /// Every guest store is reported here (micro-op cache invalidation).
  GuestStoreWatch* store_watch_ = nullptr;

 private:
  std::vector<uint32_t> tainted_branches_;
  std::vector<uint32_t> tainted_pc_writes_;
  std::vector<uint32_t> tainted_asserts_;
  unsigned input_counter_ = 0;
  // page -> number of tainted bytes on it; absent = clean page.
  std::unordered_map<uint32_t, uint32_t> taint_page_counts_;
  mutable uint64_t pages_clean_skipped_ = 0;
};

/// Fetch/decode/execute driver around TaintMachine. sym_input bytes are the
/// taint sources; concrete values come from machine().input_provider_.
///
/// With `uop_fastpath` on (the default), straight-line runs whose consumed
/// operands are all untainted execute as micro-op blocks; any tainted
/// operand bails to the spec path at the faulting instruction, so taint
/// propagation is bit-identical either way.
class TaintTracker {
 public:
  TaintTracker(const isa::Decoder& decoder, const spec::Registry& registry,
               bool uop_fastpath = true, uint32_t uop_cache_blocks = 4096)
      : decoder_(decoder),
        registry_(registry),
        uop_fastpath_(uop_fastpath),
        cache_(uop_cache_blocks) {
    if (uop_fastpath_) machine_.store_watch_ = &cache_;
  }

  TaintMachine& machine() { return machine_; }

  uint64_t run(uint64_t max_steps = 1'000'000);

  /// Micro-op fast-path counters (all zero with the fast path off).
  UopCounters uop_counters() const {
    return {cache_.blocks_compiled(), cache_.cache_hits(), guard_bails_,
            cache_.invalidations(), machine_.pages_clean_skipped()};
  }

 private:
  const BlockCache::Block* lookup_or_compile(uint32_t pc);

  const isa::Decoder& decoder_;
  const spec::Registry& registry_;
  TaintMachine machine_;
  Evaluator<TaintMachine> evaluator_;
  bool uop_fastpath_;
  BlockCache cache_;
  uint64_t guard_bails_ = 0;
};

}  // namespace binsym::interp
