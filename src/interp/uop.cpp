#include "interp/uop.hpp"

#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym::interp {

namespace {

/// Classify one decoded builtin instruction. Returns false for anything the
/// fast path does not model (system/CSR ops end the block; lowering also
/// refuses ids >= kNumBuiltinOps before calling this).
bool lower_one(const isa::Decoded& d, Uop* out) {
  UKind kind;
  bool has_rs2 = false;
  bool shamt_imm = false;
  switch (d.id()) {
    case isa::kADDI:  kind = UKind::kAddi; break;
    case isa::kSLTI:  kind = UKind::kSlti; break;
    case isa::kSLTIU: kind = UKind::kSltiu; break;
    case isa::kXORI:  kind = UKind::kXori; break;
    case isa::kORI:   kind = UKind::kOri; break;
    case isa::kANDI:  kind = UKind::kAndi; break;
    case isa::kSLLI:  kind = UKind::kSlli; shamt_imm = true; break;
    case isa::kSRLI:  kind = UKind::kSrli; shamt_imm = true; break;
    case isa::kSRAI:  kind = UKind::kSrai; shamt_imm = true; break;
    case isa::kLUI:   kind = UKind::kLui; break;
    case isa::kAUIPC: kind = UKind::kAuipc; break;
    case isa::kADD:   kind = UKind::kAdd; has_rs2 = true; break;
    case isa::kSUB:   kind = UKind::kSub; has_rs2 = true; break;
    case isa::kSLL:   kind = UKind::kSll; has_rs2 = true; break;
    case isa::kSLT:   kind = UKind::kSlt; has_rs2 = true; break;
    case isa::kSLTU:  kind = UKind::kSltu; has_rs2 = true; break;
    case isa::kXOR:   kind = UKind::kXor; has_rs2 = true; break;
    case isa::kSRL:   kind = UKind::kSrl; has_rs2 = true; break;
    case isa::kSRA:   kind = UKind::kSra; has_rs2 = true; break;
    case isa::kOR:    kind = UKind::kOr; has_rs2 = true; break;
    case isa::kAND:   kind = UKind::kAnd; has_rs2 = true; break;
    case isa::kMUL:    kind = UKind::kMul; has_rs2 = true; break;
    case isa::kMULH:   kind = UKind::kMulh; has_rs2 = true; break;
    case isa::kMULHSU: kind = UKind::kMulhsu; has_rs2 = true; break;
    case isa::kMULHU:  kind = UKind::kMulhu; has_rs2 = true; break;
    case isa::kDIV:    kind = UKind::kDiv; has_rs2 = true; break;
    case isa::kDIVU:   kind = UKind::kDivu; has_rs2 = true; break;
    case isa::kREM:    kind = UKind::kRem; has_rs2 = true; break;
    case isa::kREMU:   kind = UKind::kRemu; has_rs2 = true; break;
    case isa::kLB:  kind = UKind::kLb; break;
    case isa::kLH:  kind = UKind::kLh; break;
    case isa::kLW:  kind = UKind::kLw; break;
    case isa::kLBU: kind = UKind::kLbu; break;
    case isa::kLHU: kind = UKind::kLhu; break;
    case isa::kSB:  kind = UKind::kSb; has_rs2 = true; break;
    case isa::kSH:  kind = UKind::kSh; has_rs2 = true; break;
    case isa::kSW:  kind = UKind::kSw; has_rs2 = true; break;
    case isa::kFENCE: kind = UKind::kFence; break;
    case isa::kBEQ:  kind = UKind::kBeq; has_rs2 = true; break;
    case isa::kBNE:  kind = UKind::kBne; has_rs2 = true; break;
    case isa::kBLT:  kind = UKind::kBlt; has_rs2 = true; break;
    case isa::kBGE:  kind = UKind::kBge; has_rs2 = true; break;
    case isa::kBLTU: kind = UKind::kBltu; has_rs2 = true; break;
    case isa::kBGEU: kind = UKind::kBgeu; has_rs2 = true; break;
    case isa::kJAL:  kind = UKind::kJal; break;
    case isa::kJALR: kind = UKind::kJalr; break;
    default:
      return false;  // ECALL/EBREAK/MRET/WFI/CSR*: spec path only
  }
  out->kind = kind;
  // Operand fields are format-checked accessors; only read the ones the
  // micro-op consumes (the rest stay 0).
  switch (kind) {
    case UKind::kLui:
      out->rd = static_cast<uint8_t>(d.rd());
      out->imm = static_cast<int32_t>(d.immediate());
      break;
    case UKind::kAuipc:
    case UKind::kJal:
      out->rd = static_cast<uint8_t>(d.rd());
      out->imm = static_cast<int32_t>(d.immediate());
      break;
    case UKind::kFence:
      break;
    case UKind::kBeq: case UKind::kBne: case UKind::kBlt:
    case UKind::kBge: case UKind::kBltu: case UKind::kBgeu:
      out->rs1 = static_cast<uint8_t>(d.rs1());
      out->rs2 = static_cast<uint8_t>(d.rs2());
      out->imm = static_cast<int32_t>(d.immediate());
      break;
    case UKind::kSb: case UKind::kSh: case UKind::kSw:
      out->rs1 = static_cast<uint8_t>(d.rs1());
      out->rs2 = static_cast<uint8_t>(d.rs2());
      out->imm = static_cast<int32_t>(d.immediate());
      break;
    default:
      out->rd = static_cast<uint8_t>(d.rd());
      out->rs1 = static_cast<uint8_t>(d.rs1());
      if (has_rs2) out->rs2 = static_cast<uint8_t>(d.rs2());
      out->imm = shamt_imm ? static_cast<int32_t>(d.shamt())
                           : static_cast<int32_t>(d.immediate());
      break;
  }
  return true;
}

bool is_terminator(UKind kind) {
  return kind >= UKind::kBeq && kind <= UKind::kJalr;
}

}  // namespace

unsigned lower_block(const isa::Decoder& decoder, const spec::Registry& registry,
                     const UopFetchFn& fetch, uint32_t start_pc, Uop* out,
                     unsigned max_uops, uint32_t* byte_length) {
  unsigned count = 0;
  uint32_t pc = start_pc;
  while (count < max_uops) {
    uint32_t word = 0;
    if (!fetch(pc, &word)) break;
    auto decoded = decoder.decode(word);
    // Undecodable, custom and system instructions end the block *before*
    // themselves: the spec path owns them (and produces kIllegalInstr for
    // the first two exactly like the per-instruction loop would). The
    // registry check mirrors the slow path's `!semantics` stop, so a
    // partially-installed registry behaves identically fast and slow.
    if (!decoded || decoded->id() >= isa::kNumBuiltinOps ||
        !registry.get(decoded->id()))
      break;
    Uop uop;
    uop.pc = pc;
    uop.size = static_cast<uint8_t>(decoded->size);
    if (!lower_one(*decoded, &uop)) break;
    out[count++] = uop;
    pc += decoded->size;
    if (is_terminator(uop.kind)) break;
  }
  *byte_length = pc - start_pc;
  return count;
}

}  // namespace binsym::interp
