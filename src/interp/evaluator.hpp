// The modular interpreter: executes a specification AST against any
// implementation of the language primitives.
//
// `P` supplies a value domain plus the stateful and arithmetic primitives;
// this template contains everything that is the same for every interpreter
// (operand plumbing, let environments, statement sequencing). Adding a new
// analysis — concrete execution, SE, taint tracking, fault injection — means
// writing a new `P`, never touching instruction semantics. This is the
// architecture the paper inherits from LibRISCV (Sect. III-B).
//
// Required interface of P:
//
//   using Value = ...;                       // default-constructible
//   Value constant(uint64_t value, unsigned width);
//   Value read_register(unsigned index);     // x0 reads as zero
//   void  write_register(unsigned index, const Value&);
//   Value read_csr(uint32_t csr);
//   void  write_csr(uint32_t csr, const Value&);
//   Value pc_value();                        // pc of the current instruction
//   void  write_pc(const Value&);
//   Value load(unsigned bytes, const Value& addr);
//   void  store(unsigned bytes, const Value& addr, const Value& value);
//   Value apply_un(dsl::ExprOp, const Value&, unsigned aux0, unsigned aux1);
//   Value apply_bin(dsl::ExprOp, const Value&, const Value&);
//   Value apply_ite(const Value& cond, const Value&, const Value&);
//   bool  choose(const Value& cond);         // runIfElse: pick + record
//   void  ecall(); void ebreak(); void fence();
#pragma once

#include <cassert>
#include <vector>

#include "dsl/ast.hpp"
#include "isa/decoder.hpp"

namespace binsym::interp {

template <class P>
class Evaluator {
 public:
  using Value = typename P::Value;

  /// Execute one instruction's semantics. The caller is responsible for the
  /// default PC advance (setting next-pc to pc + decoded.size before
  /// calling) — WritePC inside the semantics overrides it, as in LibRISCV.
  void execute(const dsl::Semantics& semantics, const isa::Decoded& decoded,
               P& prims) {
    env_.assign(semantics.num_lets, Value{});
    decoded_ = &decoded;
    exec_block(semantics.body, prims);
  }

 private:
  Value eval_operand(dsl::Operand operand, P& p) {
    const isa::Decoded& d = *decoded_;
    switch (operand) {
      case dsl::Operand::kRs1Val:   return p.read_register(d.rs1());
      case dsl::Operand::kRs2Val:   return p.read_register(d.rs2());
      case dsl::Operand::kRs3Val:   return p.read_register(d.rs3());
      case dsl::Operand::kImm:      return p.constant(d.immediate(), 32);
      case dsl::Operand::kShamt:    return p.constant(d.shamt(), 32);
      case dsl::Operand::kPC:       return p.pc_value();
      case dsl::Operand::kCsrVal:   return p.read_csr(d.csr());
      case dsl::Operand::kRs1Index: return p.constant(d.rs1(), 32);
      case dsl::Operand::kRs2Index: return p.constant(d.rs2(), 32);
      case dsl::Operand::kInstrSize: return p.constant(d.size, 32);
    }
    return Value{};
  }

  Value eval(const dsl::ExprPtr& expr, P& p) {
    const dsl::Expr& e = *expr;
    switch (e.op) {
      case dsl::ExprOp::kConst:   return p.constant(e.constant, e.width);
      case dsl::ExprOp::kOperand: return eval_operand(e.operand, p);
      case dsl::ExprOp::kLetRef:  return env_[e.let_index];
      case dsl::ExprOp::kLoad:
        assert(false && "Load outside Let rejected by typecheck");
        return Value{};
      case dsl::ExprOp::kNot:
      case dsl::ExprOp::kNeg:
      case dsl::ExprOp::kExtract:
      case dsl::ExprOp::kZExt:
      case dsl::ExprOp::kSExt:
        return p.apply_un(e.op, eval(e.a, p), e.aux0, e.aux1);
      case dsl::ExprOp::kIte: {
        Value cond = eval(e.a, p);
        return p.apply_ite(cond, eval(e.b, p), eval(e.c, p));
      }
      default: {
        Value a = eval(e.a, p);
        Value b = eval(e.b, p);
        return p.apply_bin(e.op, a, b);
      }
    }
  }

  void exec_block(const dsl::Block& block, P& p) {
    for (const dsl::StmtPtr& stmt : block) {
      const dsl::Stmt& s = *stmt;
      switch (s.op) {
        case dsl::StmtOp::kLet:
          if (s.value->op == dsl::ExprOp::kLoad) {
            Value addr = eval(s.value->a, p);
            env_[s.aux] = p.load(s.value->aux0, addr);
          } else {
            env_[s.aux] = eval(s.value, p);
          }
          break;
        case dsl::StmtOp::kWriteRegister:
          p.write_register(decoded_->rd(), eval(s.value, p));
          break;
        case dsl::StmtOp::kWritePC:
          p.write_pc(eval(s.value, p));
          break;
        case dsl::StmtOp::kStore: {
          Value addr = eval(s.addr, p);
          Value value = eval(s.value, p);
          p.store(s.aux, addr, value);
          break;
        }
        case dsl::StmtOp::kWriteCsr:
          p.write_csr(decoded_->csr(), eval(s.value, p));
          break;
        case dsl::StmtOp::kIfElse:
          // The runIfElse primitive: the fork point of the SE engine.
          if (p.choose(eval(s.addr, p))) {
            exec_block(s.then_block, p);
          } else {
            exec_block(s.else_block, p);
          }
          break;
        case dsl::StmtOp::kEcall:  p.ecall(); break;
        case dsl::StmtOp::kEbreak: p.ebreak(); break;
        case dsl::StmtOp::kFence:  p.fence(); break;
      }
    }
  }

  std::vector<Value> env_;
  const isa::Decoded* decoded_ = nullptr;
};

}  // namespace binsym::interp
