#include "interp/value.hpp"

#include <cassert>

#include "support/bits.hpp"

namespace binsym::interp {

uint64_t apply_concrete_un(dsl::ExprOp op, uint64_t a, unsigned a_width,
                           unsigned aux0, unsigned aux1) {
  switch (op) {
    case dsl::ExprOp::kNot:     return truncate(~a, a_width);
    case dsl::ExprOp::kNeg:     return truncate(~a + 1, a_width);
    case dsl::ExprOp::kExtract: return extract_bits(a, aux0, aux1);
    case dsl::ExprOp::kZExt:    return a;
    case dsl::ExprOp::kSExt:    return sext(a, a_width, aux0);
    default: assert(false && "not a unary op"); return 0;
  }
}

uint64_t apply_concrete_bin(dsl::ExprOp op, uint64_t a, uint64_t b,
                            unsigned width) {
  switch (op) {
    case dsl::ExprOp::kAdd:  return truncate(a + b, width);
    case dsl::ExprOp::kSub:  return truncate(a - b, width);
    case dsl::ExprOp::kMul:  return truncate(a * b, width);
    case dsl::ExprOp::kUDiv: return udiv_bv(a, b, width);
    case dsl::ExprOp::kURem: return urem_bv(a, b, width);
    case dsl::ExprOp::kSDiv: return sdiv_bv(a, b, width);
    case dsl::ExprOp::kSRem: return srem_bv(a, b, width);
    case dsl::ExprOp::kAnd:  return a & b;
    case dsl::ExprOp::kOr:   return a | b;
    case dsl::ExprOp::kXor:  return a ^ b;
    case dsl::ExprOp::kShl:  return shl_bv(a, b, width);
    case dsl::ExprOp::kLShr: return lshr_bv(a, b, width);
    case dsl::ExprOp::kAShr: return ashr_bv(a, b, width);
    case dsl::ExprOp::kEq:   return a == b;
    case dsl::ExprOp::kUlt:  return a < b;
    case dsl::ExprOp::kUle:  return a <= b;
    case dsl::ExprOp::kSlt:  return to_signed(a, width) < to_signed(b, width);
    case dsl::ExprOp::kSle:  return to_signed(a, width) <= to_signed(b, width);
    case dsl::ExprOp::kConcat:
      assert(false && "concat needs operand widths; handled by callers");
      return 0;
    default: assert(false && "not a binary op"); return 0;
  }
}

namespace {

bool is_compare(dsl::ExprOp op) {
  switch (op) {
    case dsl::ExprOp::kEq:
    case dsl::ExprOp::kUlt:
    case dsl::ExprOp::kUle:
    case dsl::ExprOp::kSlt:
    case dsl::ExprOp::kSle:
      return true;
    default:
      return false;
  }
}

}  // namespace

CValue cval(uint64_t value, unsigned width) {
  return CValue{truncate(value, width), static_cast<uint8_t>(width)};
}

CValue c_un(dsl::ExprOp op, CValue a, unsigned aux0, unsigned aux1) {
  unsigned out_width;
  switch (op) {
    case dsl::ExprOp::kExtract: out_width = aux0 - aux1 + 1; break;
    case dsl::ExprOp::kZExt:
    case dsl::ExprOp::kSExt:    out_width = aux0; break;
    default:                    out_width = a.width; break;
  }
  return cval(apply_concrete_un(op, a.v, a.width, aux0, aux1), out_width);
}

CValue c_bin(dsl::ExprOp op, CValue a, CValue b) {
  if (op == dsl::ExprOp::kConcat)
    return cval((a.v << b.width) | b.v, a.width + b.width);
  unsigned out_width = is_compare(op) ? 1 : a.width;
  return cval(apply_concrete_bin(op, a.v, b.v, a.width), out_width);
}

CValue c_ite(CValue cond, CValue then_value, CValue else_value) {
  return cond.v ? then_value : else_value;
}

SymValue sval(uint64_t value, unsigned width) {
  return SymValue{truncate(value, width), static_cast<uint8_t>(width), nullptr};
}

SymValue sval_expr(smt::ExprRef expr, uint64_t concrete) {
  if (expr->is_const()) return sval(expr->constant, expr->width);
  return SymValue{truncate(concrete, expr->width), expr->width, expr};
}

smt::ExprRef to_expr(smt::Context& ctx, const SymValue& value) {
  if (value.sym) return value.sym;
  return ctx.constant(value.conc, value.width);
}

SymValue s_un(smt::Context& ctx, dsl::ExprOp op, const SymValue& a,
              unsigned aux0, unsigned aux1) {
  CValue conc = c_un(op, CValue{a.conc, a.width}, aux0, aux1);
  if (!a.symbolic()) return sval(conc.v, conc.width);
  smt::ExprRef expr = nullptr;
  switch (op) {
    case dsl::ExprOp::kNot:     expr = ctx.not_(a.sym); break;
    case dsl::ExprOp::kNeg:     expr = ctx.neg(a.sym); break;
    case dsl::ExprOp::kExtract: expr = ctx.extract(a.sym, aux0, aux1); break;
    case dsl::ExprOp::kZExt:    expr = ctx.zext(a.sym, aux0); break;
    case dsl::ExprOp::kSExt:    expr = ctx.sext(a.sym, aux0); break;
    default: assert(false && "not a unary op"); return sval(0, 32);
  }
  return sval_expr(expr, conc.v);
}

SymValue s_bin(smt::Context& ctx, dsl::ExprOp op, const SymValue& a,
               const SymValue& b) {
  CValue conc = c_bin(op, CValue{a.conc, a.width}, CValue{b.conc, b.width});
  if (!a.symbolic() && !b.symbolic()) return sval(conc.v, conc.width);
  smt::ExprRef ea = to_expr(ctx, a);
  smt::ExprRef eb = to_expr(ctx, b);
  smt::ExprRef expr = nullptr;
  switch (op) {
    case dsl::ExprOp::kAdd:    expr = ctx.add(ea, eb); break;
    case dsl::ExprOp::kSub:    expr = ctx.sub(ea, eb); break;
    case dsl::ExprOp::kMul:    expr = ctx.mul(ea, eb); break;
    case dsl::ExprOp::kUDiv:   expr = ctx.udiv(ea, eb); break;
    case dsl::ExprOp::kURem:   expr = ctx.urem(ea, eb); break;
    case dsl::ExprOp::kSDiv:   expr = ctx.sdiv(ea, eb); break;
    case dsl::ExprOp::kSRem:   expr = ctx.srem(ea, eb); break;
    case dsl::ExprOp::kAnd:    expr = ctx.and_(ea, eb); break;
    case dsl::ExprOp::kOr:     expr = ctx.or_(ea, eb); break;
    case dsl::ExprOp::kXor:    expr = ctx.xor_(ea, eb); break;
    case dsl::ExprOp::kShl:    expr = ctx.shl(ea, eb); break;
    case dsl::ExprOp::kLShr:   expr = ctx.lshr(ea, eb); break;
    case dsl::ExprOp::kAShr:   expr = ctx.ashr(ea, eb); break;
    case dsl::ExprOp::kEq:     expr = ctx.eq(ea, eb); break;
    case dsl::ExprOp::kUlt:    expr = ctx.ult(ea, eb); break;
    case dsl::ExprOp::kUle:    expr = ctx.ule(ea, eb); break;
    case dsl::ExprOp::kSlt:    expr = ctx.slt(ea, eb); break;
    case dsl::ExprOp::kSle:    expr = ctx.sle(ea, eb); break;
    case dsl::ExprOp::kConcat: expr = ctx.concat(ea, eb); break;
    default: assert(false && "not a binary op"); return sval(0, 32);
  }
  return sval_expr(expr, conc.v);
}

SymValue s_ite(smt::Context& ctx, const SymValue& cond, const SymValue& a,
               const SymValue& b) {
  if (!cond.symbolic()) return cond.conc ? a : b;
  uint64_t conc = cond.conc ? a.conc : b.conc;
  smt::ExprRef expr = ctx.ite(cond.sym, to_expr(ctx, a), to_expr(ctx, b));
  return sval_expr(expr, conc);
}

}  // namespace binsym::interp
