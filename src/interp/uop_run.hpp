// Threaded-code execution of one micro-op block (uop.hpp) over a Policy.
//
// The Policy supplies guarded register/memory access:
//
//   bool reg(unsigned idx, uint32_t* out);      // false => guard bail
//   void set_reg(unsigned idx, uint32_t value); // must ignore idx == 0
//   bool load(uint32_t addr, unsigned bytes, uint32_t* out);  // false => bail
//   void store(uint32_t addr, unsigned bytes, uint32_t value,
//              bool* exit_block);               // sets *exit_block when the
//                                               // store dropped cached code
//
// A bail leaves the machine exactly at the faulting instruction with no
// partial effects (guards run before any write), so the caller re-executes
// that instruction on the spec path and the architectural state is
// bit-identical to never having taken the fast path.
//
// Dispatch is computed-goto threaded code on GNU-compatible compilers; the
// portable switch fallback is selected by defining BINSYM_UOP_SWITCH_DISPATCH
// (and is what the differential tests pin the goto variant against).
//
// Handler semantics transcribe the RISC-V unprivileged manual exactly like
// tests/oracle/rv32_oracle.hpp: JALR computes the target before writing the
// link register, register shifts mask to 5 bits, the M-extension edge cases
// (x/0, INT_MIN/-1) follow Table 7.1.
#pragma once

#include <cstdint>

#include "interp/uop.hpp"

namespace binsym::interp {

enum class UopExit : uint8_t {
  kDone,       // block completed; next_pc is the successor
  kBail,       // guard failure; bail_pc is the faulting instruction
  kStepLimit,  // step budget exhausted mid-block; next_pc is unexecuted
};

struct UopRun {
  UopExit exit = UopExit::kDone;
  uint32_t next_pc = 0;  // kDone / kStepLimit
  uint32_t bail_pc = 0;  // kBail
  uint32_t steps = 0;    // micro-ops fully retired
};

template <typename Policy>
inline UopRun run_block(const Uop* uops, uint32_t count, uint64_t budget,
                        Policy& pol) {
  const Uop* u = uops;
  const Uop* const end = uops + count;
  uint32_t steps = 0;
  // Scratch declared up front: the computed-goto variant jumps across
  // handler bodies, which forbids locals with initializers inside them.
  uint32_t a = 0;
  uint32_t b = 0;
  bool exit_block = false;

#define BINSYM_UOP_BAIL() \
  return UopRun { UopExit::kBail, 0, u->pc, steps }
#define BINSYM_UOP_TERM(next) \
  return UopRun { UopExit::kDone, (next), 0, steps + 1 }
// Retire the current micro-op and advance; returns on block end or budget.
#define BINSYM_UOP_ADVANCE()                                                 \
  do {                                                                       \
    ++steps;                                                                 \
    if (++u == end)                                                          \
      return UopRun{UopExit::kDone, u[-1].pc + u[-1].size, 0, steps};        \
    if (steps >= budget)                                                     \
      return UopRun{UopExit::kStepLimit, u->pc, 0, steps};                   \
  } while (0)

#if defined(__GNUC__) && !defined(BINSYM_UOP_SWITCH_DISPATCH)
  // Label order mirrors UKind exactly (pinned by the static_assert below).
  static const void* const table[] = {
      &&h_kAddi, &&h_kSlti, &&h_kSltiu, &&h_kXori, &&h_kOri, &&h_kAndi,
      &&h_kSlli, &&h_kSrli, &&h_kSrai, &&h_kLui, &&h_kAuipc,
      &&h_kAdd, &&h_kSub, &&h_kSll, &&h_kSlt, &&h_kSltu, &&h_kXor,
      &&h_kSrl, &&h_kSra, &&h_kOr, &&h_kAnd,
      &&h_kMul, &&h_kMulh, &&h_kMulhsu, &&h_kMulhu, &&h_kDiv, &&h_kDivu,
      &&h_kRem, &&h_kRemu,
      &&h_kLb, &&h_kLh, &&h_kLw, &&h_kLbu, &&h_kLhu, &&h_kSb, &&h_kSh,
      &&h_kSw,
      &&h_kFence,
      &&h_kBeq, &&h_kBne, &&h_kBlt, &&h_kBge, &&h_kBltu, &&h_kBgeu,
      &&h_kJal, &&h_kJalr,
  };
  static_assert(sizeof(table) / sizeof(table[0]) ==
                    static_cast<size_t>(UKind::kNumUKinds),
                "dispatch table out of sync with UKind");
#define BINSYM_UOP_CASE(name) h_##name
#define BINSYM_UOP_DISPATCH() goto* table[static_cast<unsigned>(u->kind)]
#define BINSYM_UOP_NEXT()   \
  do {                      \
    BINSYM_UOP_ADVANCE();   \
    BINSYM_UOP_DISPATCH();  \
  } while (0)
#define BINSYM_UOP_BEGIN() BINSYM_UOP_DISPATCH();
#define BINSYM_UOP_END()
#else
#define BINSYM_UOP_CASE(name) case UKind::name
#define BINSYM_UOP_NEXT() \
  {                       \
    BINSYM_UOP_ADVANCE(); \
    break;                \
  }
#define BINSYM_UOP_BEGIN() \
  for (;;) switch (u->kind) {
#define BINSYM_UOP_END() \
  default:               \
    BINSYM_UOP_BAIL();   \
    }
#endif

  BINSYM_UOP_BEGIN()

  // -- Register-immediate ALU. ------------------------------------------------
  BINSYM_UOP_CASE(kAddi) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a + static_cast<uint32_t>(u->imm));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSlti) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, static_cast<int32_t>(a) < u->imm ? 1 : 0);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSltiu) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a < static_cast<uint32_t>(u->imm) ? 1 : 0);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kXori) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a ^ static_cast<uint32_t>(u->imm));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kOri) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a | static_cast<uint32_t>(u->imm));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kAndi) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a & static_cast<uint32_t>(u->imm));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSlli) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a << u->imm);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSrli) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a >> u->imm);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSrai) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, static_cast<uint32_t>(static_cast<int32_t>(a) >> u->imm));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kLui) : {
    pol.set_reg(u->rd, static_cast<uint32_t>(u->imm));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kAuipc) : {
    pol.set_reg(u->rd, u->pc + static_cast<uint32_t>(u->imm));
    BINSYM_UOP_NEXT();
  }

  // -- Register-register ALU. -------------------------------------------------
  BINSYM_UOP_CASE(kAdd) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a + b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSub) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a - b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSll) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a << (b & 31));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSlt) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSltu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a < b ? 1 : 0);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kXor) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a ^ b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSrl) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a >> (b & 31));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSra) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kOr) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a | b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kAnd) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a & b);
    BINSYM_UOP_NEXT();
  }

  // -- M extension (manual Table 7.1 edge cases). -----------------------------
  BINSYM_UOP_CASE(kMul) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, a * b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kMulh) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, static_cast<uint32_t>(
                           (static_cast<int64_t>(static_cast<int32_t>(a)) *
                            static_cast<int64_t>(static_cast<int32_t>(b))) >>
                           32));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kMulhsu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, static_cast<uint32_t>(
                           (static_cast<int64_t>(static_cast<int32_t>(a)) *
                            static_cast<int64_t>(static_cast<uint64_t>(b))) >>
                           32));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kMulhu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                static_cast<uint32_t>((static_cast<uint64_t>(a) *
                                       static_cast<uint64_t>(b)) >>
                                      32));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kDiv) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                b == 0 ? 0xffffffffu
                : a == 0x80000000u && b == 0xffffffffu
                    ? 0x80000000u
                    : static_cast<uint32_t>(static_cast<int32_t>(a) /
                                            static_cast<int32_t>(b)));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kDivu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, b == 0 ? 0xffffffffu : a / b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kRem) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                b == 0 ? a
                : a == 0x80000000u && b == 0xffffffffu
                    ? 0
                    : static_cast<uint32_t>(static_cast<int32_t>(a) %
                                            static_cast<int32_t>(b)));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kRemu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, b == 0 ? a : a % b);
    BINSYM_UOP_NEXT();
  }

  // -- Loads (guards cover base register and the loaded bytes). ---------------
  BINSYM_UOP_CASE(kLb) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    if (!pol.load(a + static_cast<uint32_t>(u->imm), 1, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                static_cast<uint32_t>(static_cast<int8_t>(b & 0xff)));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kLh) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    if (!pol.load(a + static_cast<uint32_t>(u->imm), 2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd,
                static_cast<uint32_t>(static_cast<int16_t>(b & 0xffff)));
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kLw) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    if (!pol.load(a + static_cast<uint32_t>(u->imm), 4, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, b);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kLbu) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    if (!pol.load(a + static_cast<uint32_t>(u->imm), 1, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, b & 0xff);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kLhu) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    if (!pol.load(a + static_cast<uint32_t>(u->imm), 2, &b)) BINSYM_UOP_BAIL();
    pol.set_reg(u->rd, b & 0xffff);
    BINSYM_UOP_NEXT();
  }

  // -- Stores (the policy reports dropped cached code via exit_block). --------
  BINSYM_UOP_CASE(kSb) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    exit_block = false;
    pol.store(a + static_cast<uint32_t>(u->imm), 1, b, &exit_block);
    if (exit_block) BINSYM_UOP_TERM(u->pc + u->size);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSh) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    exit_block = false;
    pol.store(a + static_cast<uint32_t>(u->imm), 2, b, &exit_block);
    if (exit_block) BINSYM_UOP_TERM(u->pc + u->size);
    BINSYM_UOP_NEXT();
  }
  BINSYM_UOP_CASE(kSw) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    exit_block = false;
    pol.store(a + static_cast<uint32_t>(u->imm), 4, b, &exit_block);
    if (exit_block) BINSYM_UOP_TERM(u->pc + u->size);
    BINSYM_UOP_NEXT();
  }

  BINSYM_UOP_CASE(kFence) : { BINSYM_UOP_NEXT(); }

  // -- Terminators (always the last micro-op of their block). -----------------
  BINSYM_UOP_CASE(kBeq) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    BINSYM_UOP_TERM(a == b ? u->pc + static_cast<uint32_t>(u->imm)
                           : u->pc + u->size);
  }
  BINSYM_UOP_CASE(kBne) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    BINSYM_UOP_TERM(a != b ? u->pc + static_cast<uint32_t>(u->imm)
                           : u->pc + u->size);
  }
  BINSYM_UOP_CASE(kBlt) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    BINSYM_UOP_TERM(static_cast<int32_t>(a) < static_cast<int32_t>(b)
                        ? u->pc + static_cast<uint32_t>(u->imm)
                        : u->pc + u->size);
  }
  BINSYM_UOP_CASE(kBge) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    BINSYM_UOP_TERM(static_cast<int32_t>(a) >= static_cast<int32_t>(b)
                        ? u->pc + static_cast<uint32_t>(u->imm)
                        : u->pc + u->size);
  }
  BINSYM_UOP_CASE(kBltu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    BINSYM_UOP_TERM(a < b ? u->pc + static_cast<uint32_t>(u->imm)
                          : u->pc + u->size);
  }
  BINSYM_UOP_CASE(kBgeu) : {
    if (!pol.reg(u->rs1, &a) || !pol.reg(u->rs2, &b)) BINSYM_UOP_BAIL();
    BINSYM_UOP_TERM(a >= b ? u->pc + static_cast<uint32_t>(u->imm)
                           : u->pc + u->size);
  }
  BINSYM_UOP_CASE(kJal) : {
    pol.set_reg(u->rd, u->pc + u->size);
    BINSYM_UOP_TERM(u->pc + static_cast<uint32_t>(u->imm));
  }
  BINSYM_UOP_CASE(kJalr) : {
    if (!pol.reg(u->rs1, &a)) BINSYM_UOP_BAIL();
    // Target from the *pre-link* rs1 (rd may alias rs1), low bit cleared.
    a = (a + static_cast<uint32_t>(u->imm)) & ~1u;
    pol.set_reg(u->rd, u->pc + u->size);
    BINSYM_UOP_TERM(a);
  }

  BINSYM_UOP_END()

#undef BINSYM_UOP_BAIL
#undef BINSYM_UOP_TERM
#undef BINSYM_UOP_ADVANCE
#undef BINSYM_UOP_CASE
#undef BINSYM_UOP_NEXT
#undef BINSYM_UOP_BEGIN
#undef BINSYM_UOP_END
#ifdef BINSYM_UOP_DISPATCH
#undef BINSYM_UOP_DISPATCH
#endif
}

}  // namespace binsym::interp
