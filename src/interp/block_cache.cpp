#include "interp/block_cache.hpp"

namespace binsym::interp {

const BlockCache::Block* BlockCache::finish_compile(uint32_t pc, unsigned count,
                                                    uint32_t bytes) {
  assert_owner();
  assert(pending_ != nullptr && "finish_compile without begin_compile");
  arena_.commit(count);
  Block block{pc, bytes, count, count ? pending_ : nullptr};
  pending_ = nullptr;
  auto [it, inserted] = blocks_.insert_or_assign(pc, block);
  (void)inserted;
  if (count) ++blocks_compiled_;
  // Index the block under every page its bytes touch (negative entries
  // under the leader's page only), so stores can find and drop it.
  uint32_t first = pc >> kPageBits;
  uint32_t last = bytes ? (pc + bytes - 1) >> kPageBits : first;
  for (uint32_t page = first; page <= last; ++page)
    page_index_[page].push_back(pc);
  return &it->second;
}

bool BlockCache::on_guest_store(uint32_t addr, uint64_t bytes) {
  assert_owner();
  if (bytes == 0) return false;
  uint32_t first = addr >> kPageBits;
  uint32_t last = static_cast<uint32_t>(
      (static_cast<uint64_t>(addr) + bytes - 1) >> kPageBits);
  if (first == last && first == last_clean_store_page_) return false;
  bool dropped = false;
  for (uint32_t page = first; page <= last; ++page) {
    if (auto it = page_index_.find(page); it != page_index_.end()) {
      for (uint32_t start : it->second) {
        // A leader may be stale (block already dropped via another page it
        // spanned); only count real erasures.
        if (blocks_.erase(start)) {
          ++invalidations_;
          dropped = true;
        }
      }
      page_index_.erase(it);
    }
    poisoned_.insert(page);
  }
  if (first == last) last_clean_store_page_ = first;
  return dropped;
}

}  // namespace binsym::interp
