// Micro-op compilation: straight-line guest code lowered to flat buffers.
//
// The per-instruction spec evaluator walks a semantics AST for every retired
// instruction; with solver cost (query pipeline), re-execution (snapshots)
// and candidate pruning (static analysis) already cheap, that walk is the
// engine's dominant cost. This layer decodes a straight-line run of RV32IM
// instructions — up to the next branch, jump or system op — once, into an
// arena-allocated array of micro-ops with pre-resolved immediates, and
// executes it with threaded dispatch (uop_run.hpp). The fast path only ever
// runs while every consumed operand is concrete and untainted; anything else
// bails back to the spec path at the exact faulting instruction, so the
// observable machine behavior is bit-identical with the fast path on or off.
//
// The micro-op buffers live in a per-interpreter BlockCache
// (block_cache.hpp); this header is deliberately light (no spec/isa
// includes) so the machines can carry a GuestStoreWatch pointer without
// pulling the decoder into every translation unit.
#pragma once

#include <cstdint>
#include <functional>

namespace binsym::isa {
class Decoder;
}
namespace binsym::spec {
class Registry;
}

namespace binsym::interp {

/// Micro-op kinds, one per supported RV32IM instruction. Branch/jump kinds
/// are terminators: lowering places them only as the last micro-op of a
/// block. The numeric order is load-bearing — uop_run.hpp indexes its
/// computed-goto label table by it.
enum class UKind : uint8_t {
  // Register-immediate ALU (imm holds the sign-extended immediate; for the
  // shifts it holds the 5-bit shamt).
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kLui, kAuipc,
  // Register-register ALU.
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  // M extension.
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // Memory (imm holds the address offset).
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  // No-op kept in-block so fences do not split hot runs.
  kFence,
  // Terminators (imm holds the pc-relative target offset; kJalr's is the
  // rs1-relative offset).
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu, kJal, kJalr,
  kNumUKinds,
};

/// One micro-op: handler index + pre-extracted operand fields. 16 bytes,
/// laid out so the dispatch loop touches one cache line per 4 micro-ops.
struct Uop {
  UKind kind = UKind::kFence;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  uint8_t size = 4;   // encoded instruction length (2 for compressed)
  int32_t imm = 0;    // immediate / shamt / branch offset
  uint32_t pc = 0;    // guest address (bail reporting, pc-relative ops)
};

/// Fast-path counters, aggregated per interpreter and merged into
/// EngineStats by the engine workers.
struct UopCounters {
  uint64_t blocks_compiled = 0;     // straight-line blocks lowered
  uint64_t cache_hits = 0;          // lookups served from the BlockCache
  uint64_t guard_bails = 0;         // mid-block exits to the spec path
  uint64_t invalidations = 0;       // blocks dropped by stores into them
  uint64_t pages_clean_skipped = 0; // accesses that skipped per-byte shadow
                                    // lookups via a clean page summary
};

/// Observer for guest stores, implemented by BlockCache: any store into a
/// page holding cached code must drop the affected blocks (self-modifying
/// code safety). Returns true when at least one block was dropped — the
/// running fast path then exits its block after the faulting store.
class GuestStoreWatch {
 public:
  virtual ~GuestStoreWatch() = default;
  virtual bool on_guest_store(uint32_t addr, uint64_t bytes) = 0;
};

/// Instruction fetch for lowering: write the 32-bit word at `pc` and return
/// true, or return false to end the block before `pc` (unmapped page, or a
/// page the cache refuses to compile from — see BlockCache poisoning).
using UopFetchFn = std::function<bool(uint32_t pc, uint32_t* word)>;

/// Decode the straight-line run starting at `start_pc` into `out` (capacity
/// `max_uops`). Stops after a terminator, before any instruction outside the
/// supported RV32IM subset (system/CSR/custom, or no registered semantics),
/// at capacity, or when `fetch` declines. Returns the number of micro-ops
/// written (0 = the leader itself is unsupported) and the byte length of
/// the lowered run in `*byte_length`.
unsigned lower_block(const isa::Decoder& decoder, const spec::Registry& registry,
                     const UopFetchFn& fetch, uint32_t start_pc, Uop* out,
                     unsigned max_uops, uint32_t* byte_length);

}  // namespace binsym::interp
