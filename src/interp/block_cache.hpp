// Per-interpreter cache of lowered micro-op blocks, keyed by leader pc.
//
// Soundness against self-modifying code rests on one invariant: a block is
// only ever cached over pages that have *never* been stored to. The cache
// is its own GuestStoreWatch — every guest store (fast path, spec path,
// sym_input) reports here; the touched pages drop their blocks and are
// poisoned permanently, and lowering refuses to read from poisoned pages.
// Because poisoned pages survive cache flushes, machine resets and snapshot
// restores, a cached block's bytes always equal the program image's bytes
// no matter which run, fork or checkpoint the machine is currently
// executing — so restores need no image comparison and no cache flush.
//
// Thread-safety: none — one BlockCache per interpreter per worker, like the
// machine it watches. Debug builds assert single-thread ownership.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "interp/uop.hpp"

namespace binsym::interp {

/// Chunked bump allocator for micro-op buffers: blocks get stable pointers
/// (chunks never relocate), freeing is wholesale (clear on cache flush).
class UopArena {
 public:
  static constexpr unsigned kChunkUops = 4096;

  /// Contiguous scratch space for up to `n` micro-ops (n <= kChunkUops).
  /// Only the prefix later passed to commit() becomes permanent.
  Uop* reserve(unsigned n) {
    assert(n <= kChunkUops);
    if (chunks_.empty() || kChunkUops - used_ < n) {
      chunks_.push_back(std::make_unique<Uop[]>(kChunkUops));
      used_ = 0;
    }
    return chunks_.back().get() + used_;
  }

  void commit(unsigned n) { used_ += n; }

  void clear() {
    chunks_.clear();
    used_ = 0;
  }

 private:
  std::vector<std::unique_ptr<Uop[]>> chunks_;
  unsigned used_ = 0;
};

class BlockCache final : public GuestStoreWatch {
 public:
  /// Blocks end at kMaxBlockUops even without a terminator; the next
  /// lookup continues from the fall-through pc.
  static constexpr unsigned kMaxBlockUops = 256;
  /// Page granularity of store tracking; mirrors guest memory paging.
  static constexpr uint32_t kPageBits = 12;

  struct Block {
    uint32_t start = 0;   // leader pc
    uint32_t bytes = 0;   // guest byte length of the lowered run
    uint32_t count = 0;   // micro-ops; 0 = negative entry (leader is
                          // unsupported — skip straight to the spec path)
    const Uop* uops = nullptr;
  };

  explicit BlockCache(uint32_t max_blocks = 4096)
      : max_blocks_(max_blocks ? max_blocks : 1) {}

  /// Cached block starting at `pc`, or null. Counts a hit for any entry,
  /// negative ones included (both save a lowering attempt).
  const Block* lookup(uint32_t pc) {
    assert_owner();
    auto it = blocks_.find(pc);
    if (it == blocks_.end()) return nullptr;
    ++cache_hits_;
    return &it->second;
  }

  /// Whether `addr`'s page has ever been stored to. Lowering must refuse
  /// to fetch from poisoned pages and callers must not compile leaders on
  /// them — that is what keeps on_guest_store's bookkeeping sound.
  bool page_poisoned(uint32_t addr) const {
    return !poisoned_.empty() && poisoned_.count(addr >> kPageBits) != 0;
  }

  /// Scratch buffer for lower_block (capacity kMaxBlockUops). Flushes the
  /// cache first when at capacity, so the buffer is always valid.
  Uop* begin_compile() {
    assert_owner();
    if (blocks_.size() >= max_blocks_) flush();
    pending_ = arena_.reserve(kMaxBlockUops);
    return pending_;
  }

  /// Publish the block lowered into the begin_compile() buffer. `count`
  /// may be 0 (negative entry). Returns the cached entry.
  const Block* finish_compile(uint32_t pc, unsigned count, uint32_t bytes);

  /// GuestStoreWatch: drop every block on the touched pages and poison
  /// them. Returns true when a block was actually dropped (the running
  /// fast path must then exit its block — it may have dropped itself).
  bool on_guest_store(uint32_t addr, uint64_t bytes) override;

  uint64_t blocks_compiled() const { return blocks_compiled_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t invalidations() const { return invalidations_; }
  size_t size() const { return blocks_.size(); }

 private:
  void flush() {
    blocks_.clear();
    page_index_.clear();
    arena_.clear();
    // poisoned_ and the counters survive: poisoning is a property of the
    // guest's store history, not of the cache contents.
  }

  void assert_owner() {
#ifndef NDEBUG
    if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
    assert(owner_ == std::this_thread::get_id() &&
           "BlockCache is per-worker state; it must never cross threads");
#endif
  }

  uint32_t max_blocks_;
  UopArena arena_;
  std::unordered_map<uint32_t, Block> blocks_;
  // page -> leader pcs of blocks overlapping it (blocks may span pages and
  // are indexed under each). Entries may go stale after a partial drop;
  // stale leaders just miss blocks_ on erase, harmlessly.
  std::unordered_map<uint32_t, std::vector<uint32_t>> page_index_;
  std::unordered_set<uint32_t> poisoned_;
  // One-entry filter for the overwhelmingly common case: repeated stores
  // into the same already-poisoned, block-free page (stack traffic).
  uint32_t last_clean_store_page_ = 0xffffffffu;
  Uop* pending_ = nullptr;
  uint64_t blocks_compiled_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t invalidations_ = 0;
#ifndef NDEBUG
  std::thread::id owner_{};
#endif
};

}  // namespace binsym::interp
