// Value domains for the modular interpreters.
//
// The same specification AST is executed over different value types — the
// "modular interpreter" idea (paper Sect. III-B, after Liang et al.):
//
//   * CValue   — plain canonical bitvectors (the concrete ISS),
//   * SymValue — concolic pairs of a concrete shadow and an optional
//                symbolic expression (the SE engines).
//
// A SymValue with sym == nullptr is pure concrete; expression building is
// skipped entirely for such values, so untainted code runs near ISS speed.
#pragma once

#include <cstdint>

#include "dsl/ast.hpp"
#include "smt/context.hpp"

namespace binsym::interp {

/// Concrete value: canonical `width`-bit payload.
struct CValue {
  uint64_t v = 0;
  uint8_t width = 32;
};

/// Concolic value: concrete shadow + optional symbolic expression. When
/// `sym` is set, invariant: evaluating `sym` under the current input seed
/// yields `conc` (checked by debug assertions in the machine).
struct SymValue {
  uint64_t conc = 0;
  uint8_t width = 32;
  smt::ExprRef sym = nullptr;

  bool symbolic() const { return sym != nullptr; }
};

// -- Concrete operator application (SMT-LIB semantics, shared by both value
//    domains and by the baseline IR executor). --------------------------------

uint64_t apply_concrete_un(dsl::ExprOp op, uint64_t a, unsigned a_width,
                           unsigned aux0, unsigned aux1);
uint64_t apply_concrete_bin(dsl::ExprOp op, uint64_t a, uint64_t b,
                            unsigned width);

CValue cval(uint64_t value, unsigned width);

CValue c_un(dsl::ExprOp op, CValue a, unsigned aux0, unsigned aux1);
CValue c_bin(dsl::ExprOp op, CValue a, CValue b);
CValue c_ite(CValue cond, CValue then_value, CValue else_value);

// -- Concolic operator application. -------------------------------------------

SymValue sval(uint64_t value, unsigned width);
SymValue sval_expr(smt::ExprRef expr, uint64_t concrete);

/// Materialize the symbolic form of `value` (constants intern on demand).
smt::ExprRef to_expr(smt::Context& ctx, const SymValue& value);

SymValue s_un(smt::Context& ctx, dsl::ExprOp op, const SymValue& a,
              unsigned aux0, unsigned aux1);
SymValue s_bin(smt::Context& ctx, dsl::ExprOp op, const SymValue& a,
               const SymValue& b);
SymValue s_ite(smt::Context& ctx, const SymValue& cond, const SymValue& a,
               const SymValue& b);

}  // namespace binsym::interp
