#include "interp/concrete.hpp"

#include "interp/uop_run.hpp"

namespace binsym::interp {

namespace {

/// run_block policy over ConcreteMachine: everything is concrete, so the
/// register/load guards never fail — bails only come from the switch
/// fallback's default arm (never, for well-formed blocks).
struct ConcretePolicy {
  ConcreteMachine& m;

  bool reg(unsigned index, uint32_t* out) {
    *out = index == 0 ? 0 : static_cast<uint32_t>(m.regs_[index].v);
    return true;
  }
  void set_reg(unsigned index, uint32_t value) {
    if (index != 0) m.regs_[index] = cval(value, 32);
  }
  bool load(uint32_t addr, unsigned bytes, uint32_t* out) {
    *out = static_cast<uint32_t>(m.memory_.read(addr, bytes));
    return true;
  }
  void store(uint32_t addr, unsigned bytes, uint32_t value, bool* exit_block) {
    m.memory_.write(addr, bytes, value);
    if (m.store_watch_ && m.store_watch_->on_guest_store(addr, bytes))
      *exit_block = true;
  }
};

}  // namespace

void ConcreteMachine::ecall() {
  uint32_t number = static_cast<uint32_t>(read_register(17).v);  // a7
  uint32_t a0 = static_cast<uint32_t>(read_register(10).v);
  uint32_t a1 = static_cast<uint32_t>(read_register(11).v);
  switch (number) {
    case core::kSysExit:
      stop(core::ExitReason::kExit, a0);
      break;
    case core::kSysPutChar:
      output_.push_back(static_cast<char>(a0 & 0xff));
      break;
    case core::kSysReportFail:
      // The concrete ISS just logs the report into the output stream.
      output_ += "[fail " + std::to_string(a0) + "]";
      break;
    case core::kSysAssert:
      // The property syscalls (oracle interface) log concrete violations
      // and are otherwise no-ops, so asserting workloads run on every
      // machine, not just the observed concolic one.
      if (a0 == 0) output_ += "[assert-fail " + std::to_string(a1) + "]";
      break;
    case core::kSysReach:
      output_ += "[reach " + std::to_string(a0) + "]";
      break;
    case core::kSysSymInput:
      for (uint32_t i = 0; i < a1; ++i) {
        uint8_t value =
            input_provider_ ? input_provider_(input_counter_) : 0;
        ++input_counter_;
        memory_.write8(a0 + i, value);
      }
      // Guest-visible write: cached code under the buffer must be dropped.
      if (store_watch_ && a1 != 0) store_watch_->on_guest_store(a0, a1);
      break;
    default:
      stop(core::ExitReason::kBadSyscall, number);
      break;
  }
}

void Iss::execute_one(const isa::Decoded& decoded) {
  const dsl::Semantics* semantics = registry_.get(decoded.id());
  if (!semantics) {
    machine_.stop(core::ExitReason::kIllegalInstr);
    return;
  }
  machine_.next_pc_ = machine_.pc_ + decoded.size;
  evaluator_.execute(*semantics, decoded, machine_);
  machine_.pc_ = machine_.next_pc_;
}

const BlockCache::Block* Iss::lookup_or_compile(uint32_t pc) {
  if (cache_.page_poisoned(pc)) return nullptr;
  if (const BlockCache::Block* block = cache_.lookup(pc)) return block;
  // Lowering fetch mirrors the slow loop: only the leader byte's page must
  // be mapped (reads zero-fill past it). Poisoned pages are refused for the
  // whole word so a block never covers a page that has been stored to.
  auto fetch = [this](uint32_t p, uint32_t* word) {
    if (!machine_.memory_.mapped(p)) return false;
    if (cache_.page_poisoned(p) || cache_.page_poisoned(p + 3)) return false;
    *word = static_cast<uint32_t>(machine_.memory_.read(p, 4));
    return true;
  };
  Uop* buffer = cache_.begin_compile();
  uint32_t bytes = 0;
  unsigned count = lower_block(decoder_, registry_, fetch, pc, buffer,
                               BlockCache::kMaxBlockUops, &bytes);
  return cache_.finish_compile(pc, count, bytes);
}

uint64_t Iss::run(uint64_t max_steps) {
  uint64_t steps = 0;
  ConcretePolicy policy{machine_};
  while (machine_.exit_ == core::ExitReason::kRunning) {
    if (steps >= max_steps) {
      machine_.stop(core::ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.memory_.mapped(machine_.pc_)) {
      machine_.stop(core::ExitReason::kBadFetch);
      break;
    }
    if (uop_fastpath_) {
      const BlockCache::Block* block = lookup_or_compile(machine_.pc_);
      if (block && block->count) {
        UopRun r =
            run_block(block->uops, block->count, max_steps - steps, policy);
        steps += r.steps;
        if (r.exit != UopExit::kBail) {
          machine_.pc_ = machine_.next_pc_ = r.next_pc;
          continue;  // kStepLimit re-enters the budget check above
        }
        // Re-execute the bailing instruction on the spec path in this same
        // iteration (continuing would re-enter the block and bail forever).
        machine_.pc_ = machine_.next_pc_ = r.bail_pc;
        ++guard_bails_;
      }
    }
    uint32_t word = static_cast<uint32_t>(machine_.memory_.read(machine_.pc_, 4));
    auto decoded = decoder_.decode(word);
    if (!decoded) {
      machine_.stop(core::ExitReason::kIllegalInstr);
      break;
    }
    execute_one(*decoded);
    ++steps;
  }
  return steps;
}

}  // namespace binsym::interp
