#include "interp/concrete.hpp"

namespace binsym::interp {

void ConcreteMachine::ecall() {
  uint32_t number = static_cast<uint32_t>(read_register(17).v);  // a7
  uint32_t a0 = static_cast<uint32_t>(read_register(10).v);
  uint32_t a1 = static_cast<uint32_t>(read_register(11).v);
  switch (number) {
    case core::kSysExit:
      stop(core::ExitReason::kExit, a0);
      break;
    case core::kSysPutChar:
      output_.push_back(static_cast<char>(a0 & 0xff));
      break;
    case core::kSysReportFail:
      // The concrete ISS just logs the report into the output stream.
      output_ += "[fail " + std::to_string(a0) + "]";
      break;
    case core::kSysAssert:
      // The property syscalls (oracle interface) log concrete violations
      // and are otherwise no-ops, so asserting workloads run on every
      // machine, not just the observed concolic one.
      if (a0 == 0) output_ += "[assert-fail " + std::to_string(a1) + "]";
      break;
    case core::kSysReach:
      output_ += "[reach " + std::to_string(a0) + "]";
      break;
    case core::kSysSymInput:
      for (uint32_t i = 0; i < a1; ++i) {
        uint8_t value =
            input_provider_ ? input_provider_(input_counter_) : 0;
        ++input_counter_;
        memory_.write8(a0 + i, value);
      }
      break;
    default:
      stop(core::ExitReason::kBadSyscall, number);
      break;
  }
}

void Iss::execute_one(const isa::Decoded& decoded) {
  const dsl::Semantics* semantics = registry_.get(decoded.id());
  if (!semantics) {
    machine_.stop(core::ExitReason::kIllegalInstr);
    return;
  }
  machine_.next_pc_ = machine_.pc_ + decoded.size;
  evaluator_.execute(*semantics, decoded, machine_);
  machine_.pc_ = machine_.next_pc_;
}

uint64_t Iss::run(uint64_t max_steps) {
  uint64_t steps = 0;
  while (machine_.exit_ == core::ExitReason::kRunning) {
    if (steps >= max_steps) {
      machine_.stop(core::ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.memory_.mapped(machine_.pc_)) {
      machine_.stop(core::ExitReason::kBadFetch);
      break;
    }
    uint32_t word = static_cast<uint32_t>(machine_.memory_.read(machine_.pc_, 4));
    auto decoded = decoder_.decode(word);
    if (!decoded) {
      machine_.stop(core::ExitReason::kIllegalInstr);
      break;
    }
    execute_one(*decoded);
    ++steps;
  }
  return steps;
}

}  // namespace binsym::interp
