// Concrete interpreter (instruction set simulator).
//
// The same specification AST executed over plain bitvectors — LibRISCV's
// "concrete interpreter" (paper Sect. III-B). Used directly as an ISS, as
// the reference half of differential tests against the symbolic engines,
// and by examples that just want to run a guest program.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "core/memory.hpp"
#include "core/path.hpp"
#include "core/syscalls.hpp"
#include "interp/block_cache.hpp"
#include "interp/evaluator.hpp"
#include "interp/uop.hpp"
#include "interp/value.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym::interp {

class ConcreteMachine {
 public:
  using Value = CValue;

  // -- Primitives. -------------------------------------------------------------

  Value constant(uint64_t value, unsigned width) { return cval(value, width); }

  Value read_register(unsigned index) {
    return index == 0 ? cval(0, 32) : regs_[index];
  }

  void write_register(unsigned index, const Value& value) {
    if (index != 0) regs_[index] = value;
  }

  Value read_csr(uint32_t csr) {
    auto it = csrs_.find(csr);
    return it == csrs_.end() ? cval(0, 32) : it->second;
  }

  void write_csr(uint32_t csr, const Value& value) { csrs_[csr] = value; }

  Value pc_value() { return cval(pc_, 32); }
  void write_pc(const Value& target) { next_pc_ = static_cast<uint32_t>(target.v); }

  Value load(unsigned bytes, const Value& addr) {
    return cval(memory_.read(static_cast<uint32_t>(addr.v), bytes), bytes * 8);
  }

  void store(unsigned bytes, const Value& addr, const Value& value) {
    memory_.write(static_cast<uint32_t>(addr.v), bytes, value.v);
    if (store_watch_)
      store_watch_->on_guest_store(static_cast<uint32_t>(addr.v), bytes);
  }

  Value apply_un(dsl::ExprOp op, const Value& a, unsigned aux0, unsigned aux1) {
    return c_un(op, a, aux0, aux1);
  }
  Value apply_bin(dsl::ExprOp op, const Value& a, const Value& b) {
    return c_bin(op, a, b);
  }
  Value apply_ite(const Value& cond, const Value& a, const Value& b) {
    return c_ite(cond, a, b);
  }

  bool choose(const Value& cond) { return cond.v != 0; }

  void ecall();
  void ebreak() { stop(core::ExitReason::kEbreak); }
  void fence() {}

  // -- Machine control. ------------------------------------------------------------

  std::array<Value, 32> regs_{};
  std::unordered_map<uint32_t, Value> csrs_;
  core::ConcreteMemory memory_;
  uint32_t pc_ = 0;
  uint32_t next_pc_ = 0;
  core::ExitReason exit_ = core::ExitReason::kRunning;
  uint32_t exit_code_ = 0;
  std::string output_;
  /// Concrete values handed out for sym_input bytes, in call order.
  std::function<uint8_t(unsigned index)> input_provider_;
  unsigned input_counter_ = 0;
  /// Every guest store (spec path, fast path, sym_input) is reported here
  /// so cached micro-op blocks stay sound against self-modifying code.
  GuestStoreWatch* store_watch_ = nullptr;

  void stop(core::ExitReason reason, uint32_t code = 0) {
    exit_ = reason;
    exit_code_ = code;
  }
};

/// Fetch/decode/execute driver around ConcreteMachine.
///
/// With `uop_fastpath` on (the default), straight-line runs are lowered once
/// into micro-op blocks (uop.hpp) and executed with threaded dispatch;
/// system/CSR instructions and anything undecodable drop back to the spec
/// path per instruction. Behavior is bit-identical either way.
class Iss {
 public:
  Iss(const isa::Decoder& decoder, const spec::Registry& registry,
      bool uop_fastpath = true, uint32_t uop_cache_blocks = 4096)
      : decoder_(decoder),
        registry_(registry),
        uop_fastpath_(uop_fastpath),
        cache_(uop_cache_blocks) {
    if (uop_fastpath_) machine_.store_watch_ = &cache_;
  }

  ConcreteMachine& machine() { return machine_; }

  /// Execute a single already-decoded instruction (unit-test entry point;
  /// handles the default PC advance).
  void execute_one(const isa::Decoded& decoded);

  /// Run from machine().pc_ until exit or `max_steps`. Returns steps taken.
  uint64_t run(uint64_t max_steps = 10'000'000);

  /// Micro-op fast-path counters (all zero with the fast path off).
  UopCounters uop_counters() const {
    return {cache_.blocks_compiled(), cache_.cache_hits(), guard_bails_,
            cache_.invalidations(), 0};
  }

 private:
  const BlockCache::Block* lookup_or_compile(uint32_t pc);

  const isa::Decoder& decoder_;
  const spec::Registry& registry_;
  ConcreteMachine machine_;
  Evaluator<ConcreteMachine> evaluator_;
  bool uop_fastpath_;
  BlockCache cache_;
  uint64_t guard_bails_ = 0;
};

}  // namespace binsym::interp
