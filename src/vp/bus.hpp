// TLM-flavoured bus infrastructure for the SymEx-VP-like engine.
//
// SymEx-VP executes software inside a SystemC/TLM virtual prototype: every
// memory access travels as a transaction through a bus to a target socket,
// and simulation time is managed by a quantum keeper. That architecture
// buys peripheral modelling and costs throughput (paper Sect. V-B cites
// [32, Sect. 3.2] for the penalty). This module reproduces the mechanism:
// generic-payload-style transactions, address decoding per access, virtual
// transport calls, and a quantum keeper draining a timed event queue. No
// artificial delays — the overhead is the bookkeeping itself, as in the
// real thing.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "interp/value.hpp"

namespace binsym::vp {

/// TLM generic-payload lookalike.
struct Transaction {
  enum class Command : uint8_t { kRead, kWrite };

  Command command = Command::kRead;
  uint32_t address = 0;  // bus-relative on submit, device-relative on arrival
  unsigned bytes = 0;
  interp::SymValue data;  // write payload in, read result out
  bool response_ok = false;
  uint64_t delay_cycles = 0;  // annotated access latency
};

class Device {
 public:
  virtual ~Device() = default;
  virtual const char* device_name() const = 0;
  virtual void transport(Transaction& txn) = 0;
};

/// Simulation-time bookkeeping: counts cycles, schedules access-completion
/// events and drains them at quantum boundaries (the TLM "sync" pattern).
class QuantumKeeper {
 public:
  explicit QuantumKeeper(uint64_t quantum_cycles = 64)
      : quantum_(quantum_cycles) {}

  void advance(uint64_t cycles) { local_time_ += cycles; }
  void schedule(uint64_t delay_cycles) {
    events_.push(local_time_ + delay_cycles);
  }

  /// Returns true when a sync happened (quantum boundary crossed).
  bool maybe_sync() {
    if (local_time_ - last_sync_ < quantum_) return false;
    last_sync_ = local_time_;
    while (!events_.empty() && events_.top() <= local_time_) events_.pop();
    ++syncs_;
    return true;
  }

  uint64_t cycles() const { return local_time_; }
  uint64_t syncs() const { return syncs_; }

 private:
  uint64_t quantum_;
  uint64_t local_time_ = 0;
  uint64_t last_sync_ = 0;
  uint64_t syncs_ = 0;
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> events_;
};

class Bus {
 public:
  void map(uint32_t base, uint32_t size, Device* device) {
    mappings_.push_back(Mapping{base, size, device});
  }

  /// Route and deliver; returns false when no target claims the address.
  bool transport(Transaction& txn) {
    for (const Mapping& m : mappings_) {
      if (txn.address >= m.base && txn.address - m.base < m.size) {
        uint32_t global = txn.address;
        txn.address = global - m.base;
        m.device->transport(txn);
        txn.address = global;
        return txn.response_ok;
      }
    }
    txn.response_ok = false;
    return false;
  }

  size_t num_targets() const { return mappings_.size(); }

 private:
  struct Mapping {
    uint32_t base;
    uint32_t size;
    Device* device;
  };
  std::vector<Mapping> mappings_;
};

}  // namespace binsym::vp
