#include "vp/vp_executor.hpp"

#include <algorithm>
#include <new>

#include "core/snapshot.hpp"
#include "support/fault.hpp"

namespace binsym::vp {

VpExecutor::VpExecutor(smt::Context& ctx, const isa::Decoder& decoder,
                       const spec::Registry& registry,
                       const core::Program& program,
                       core::MachineConfig config)
    : ctx_(ctx),
      decoder_(decoder),
      registry_(registry),
      program_(program),
      config_(config),
      machine_(ctx, bus_, keeper_),
      ram_(machine_.memory()),
      timer_(keeper_) {
  bus_.map(kRamBase, kRamSize, &ram_);
  bus_.map(kUartBase, 0x1000, &uart_);
  bus_.map(kTimerBase, 0x1000, &timer_);
  bus_.map(kSymInputBase, 0x1000, &sym_input_);
  sym_input_.set_source(
      [this](unsigned bytes) { return machine_.fresh_input(bytes); });
}

void VpExecutor::run(const smt::Assignment& seed, core::PathTrace& trace) {
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);
  uart_.set_sink(&trace.output);
  loop(nullptr, 0);
}

void VpExecutor::run_with_snapshots(const smt::Assignment& seed,
                                    core::PathTrace& trace,
                                    const core::SnapshotPlan& plan) {
  if (!plan.sink) return run(seed, trace);
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);
  uart_.set_sink(&trace.output);
  loop(&plan, std::max<uint64_t>(1, plan.interval));
}

bool VpExecutor::resume(const core::Snapshot& snap,
                        const smt::Assignment& seed, core::PathTrace& trace,
                        const core::SnapshotPlan& plan) {
  // Snapshots of this executor carry the quantum keeper in `extra`; one
  // without it was captured by some other executor type and cannot restore
  // the simulated-time state.
  if (!snap.extra) return false;
  trace.clear();
  machine_.restore(snap, seed, trace);
  keeper_ = *std::static_pointer_cast<const QuantumKeeper>(snap.extra);
  uart_.set_sink(&trace.output);
  if (plan.sink) {
    loop(&plan, snap.depth() + std::max<uint64_t>(1, plan.interval));
  } else {
    loop(nullptr, 0);
  }
  return true;
}

uint64_t VpExecutor::pages_copied() const {
  return machine_.memory().concrete().pages_copied();
}

void VpExecutor::loop(const core::SnapshotPlan* plan, uint64_t next_capture) {
  core::PathTrace& trace = machine_.trace();
  while (machine_.running()) {
    if (plan && trace.branches.size() >= next_capture) {
      // Same fault sites as BinSymExecutor::loop (SnapshotPlan::faults).
      if (plan->faults && plan->faults->fire(support::FaultSite::kAlloc))
        throw std::bad_alloc();
      if (!plan->faults ||
          !plan->faults->fire(support::FaultSite::kSnapshot)) {
        auto snap = std::make_shared<core::Snapshot>();
        machine_.capture(snap.get());
        snap->extra = std::make_shared<const QuantumKeeper>(keeper_);
        plan->sink->push_back(std::move(snap));
      }
      next_capture = trace.branches.size() + plan->interval;
    }
    if (trace.steps >= config_.max_steps) {
      machine_.stop(core::ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.fetch_mapped()) {
      machine_.stop(core::ExitReason::kBadFetch);
      break;
    }
    uint32_t word = machine_.fetch_through_bus();

    const isa::Decoded* decoded;
    if (auto it = decode_cache_.find(word); it != decode_cache_.end()) {
      decoded = &it->second;
    } else {
      auto result = decoder_.decode(word);
      if (!result) {
        machine_.stop(core::ExitReason::kIllegalInstr);
        break;
      }
      decoded = &decode_cache_.emplace(word, *result).first->second;
    }

    const dsl::Semantics* semantics = registry_.get(decoded->id());
    if (!semantics) {
      machine_.stop(core::ExitReason::kIllegalInstr);
      break;
    }

    if (observer_) observer_->on_instruction(machine_.pc(), *decoded);
    machine_.set_next_pc(machine_.pc() + decoded->size);
    keeper_.advance(1);  // one cycle per retired instruction
    evaluator_.execute(*semantics, *decoded, machine_);
    machine_.advance();
    ++trace.steps;
    ++retired_;
  }
}

}  // namespace binsym::vp
