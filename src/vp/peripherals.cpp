#include "vp/peripherals.hpp"

namespace binsym::vp {

void MemoryDevice::transport(Transaction& txn) {
  txn.delay_cycles = 2;  // modelled RAM access latency
  if (txn.command == Transaction::Command::kRead) {
    txn.data = memory_.load(txn.address, txn.bytes);
  } else {
    memory_.store(txn.address, txn.bytes, txn.data);
  }
  txn.response_ok = true;
}

void UartDevice::transport(Transaction& txn) {
  txn.delay_cycles = 16;  // slow peripheral
  if (txn.command == Transaction::Command::kWrite && txn.address == 0) {
    if (sink_) sink_->push_back(static_cast<char>(txn.data.conc & 0xff));
    txn.response_ok = true;
    return;
  }
  txn.response_ok = false;
}

void SymInputDevice::transport(Transaction& txn) {
  txn.delay_cycles = 8;
  if (txn.command == Transaction::Command::kRead && source_) {
    txn.data = source_(txn.bytes);
    txn.response_ok = true;
    return;
  }
  txn.response_ok = false;
}

void TimerDevice::transport(Transaction& txn) {
  txn.delay_cycles = 2;
  if (txn.command == Transaction::Command::kRead && txn.address == 0 &&
      txn.bytes == 4) {
    txn.data = interp::sval(static_cast<uint32_t>(keeper_.cycles()), 32);
    txn.response_ok = true;
    return;
  }
  txn.response_ok = false;
}

}  // namespace binsym::vp
