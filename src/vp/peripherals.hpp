// Bus target devices for the virtual prototype.
#pragma once

#include <functional>
#include <string>

#include "core/memory.hpp"
#include "vp/bus.hpp"

namespace binsym::vp {

/// RAM target: forwards transactions to the shared concolic memory.
class MemoryDevice final : public Device {
 public:
  explicit MemoryDevice(core::ConcolicMemory& memory) : memory_(memory) {}

  const char* device_name() const override { return "ram"; }
  void transport(Transaction& txn) override;

 private:
  core::ConcolicMemory& memory_;
};

/// Write-only UART: byte stores to offset 0 append to a sink string.
/// Gives workloads an MMIO output path, like SymEx-VP's peripherals.
class UartDevice final : public Device {
 public:
  const char* device_name() const override { return "uart"; }
  void transport(Transaction& txn) override;

  void set_sink(std::string* sink) { sink_ = sink; }

 private:
  std::string* sink_ = nullptr;
};

/// Symbolic input source: every read returns fresh symbolic bytes — the
/// mechanism SymEx-VP uses to expose symbolic data to firmware through
/// peripherals instead of a syscall interface.
class SymInputDevice final : public Device {
 public:
  using Source = std::function<interp::SymValue(unsigned bytes)>;

  const char* device_name() const override { return "sym-input"; }
  void transport(Transaction& txn) override;

  void set_source(Source source) { source_ = std::move(source); }

 private:
  Source source_;
};

/// Read-only cycle counter at offset 0 (a CLINT-style mtime slice).
class TimerDevice final : public Device {
 public:
  explicit TimerDevice(const QuantumKeeper& keeper) : keeper_(keeper) {}

  const char* device_name() const override { return "timer"; }
  void transport(Transaction& txn) override;

 private:
  const QuantumKeeper& keeper_;
};

}  // namespace binsym::vp
