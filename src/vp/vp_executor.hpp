// The SymEx-VP-like engine: BinSym's spec interpretation behind a modelled
// bus. Instruction fetch and every data access travel as bus transactions;
// a quantum keeper accounts simulated time. Functionally identical to
// BinSymExecutor (same spec, same machine semantics) — Table I counts are
// equal by construction; only Fig. 6 timing differs.
#pragma once

#include <unordered_map>

#include "core/executor.hpp"
#include "vp/peripherals.hpp"

namespace binsym::vp {

/// Memory map of the prototype: RAM at 0 (covers the whole 31-bit RAM
/// space), UART + timer high MMIO windows.
inline constexpr uint32_t kRamBase = 0x0000'0000;
inline constexpr uint32_t kRamSize = 0x4000'0000;
inline constexpr uint32_t kUartBase = 0x1000'0000 + kRamSize;
inline constexpr uint32_t kTimerBase = kUartBase + 0x1000;
inline constexpr uint32_t kSymInputBase = kTimerBase + 0x1000;

/// SymMachine whose data path goes through the bus. The primitive interface
/// is bound statically by Evaluator<VpMachine>, so the shadowed load/store
/// below replace the direct-memory versions at compile time.
class VpMachine : public core::SymMachine {
 public:
  VpMachine(smt::Context& ctx, Bus& bus, QuantumKeeper& keeper)
      : core::SymMachine(ctx), bus_(bus), keeper_(keeper) {}

  Value load(unsigned bytes, const Value& addr) {
    // These shadow SymMachine::load/store (static binding through
    // Evaluator<VpMachine>), so the observer hooks must re-fire here —
    // before concretization, like the direct data path. The oracle bounds
    // map is expected to cover the MMIO windows (mmio_regions()).
    if (core::ExecObserver* obs = observer()) obs->on_load(addr, bytes);
    Transaction txn;
    txn.command = Transaction::Command::kRead;
    txn.address = static_cast<uint32_t>(concretize(addr));
    txn.bytes = bytes;
    if (!bus_.transport(txn)) {
      // Unclaimed addresses read as zero, matching the direct engines'
      // unmapped-memory convention.
      txn.data = interp::sval(0, bytes * 8);
    }
    account(txn);
    return txn.data;
  }

  void store(unsigned bytes, const Value& addr, const Value& value) {
    if (core::ExecObserver* obs = observer()) obs->on_store(addr, bytes, value);
    Transaction txn;
    txn.command = Transaction::Command::kWrite;
    txn.address = static_cast<uint32_t>(concretize(addr));
    txn.bytes = bytes;
    txn.data = value;
    bus_.transport(txn);
    account(txn);
  }

  /// Instruction fetch as a 4-byte bus read (concrete payload).
  uint32_t fetch_through_bus() {
    Transaction txn;
    txn.command = Transaction::Command::kRead;
    txn.address = pc();
    txn.bytes = 4;
    bus_.transport(txn);
    account(txn);
    return static_cast<uint32_t>(txn.data.conc);
  }

 private:
  void account(const Transaction& txn) {
    keeper_.advance(1 + txn.delay_cycles);
    keeper_.schedule(txn.delay_cycles);
    keeper_.maybe_sync();
  }

  Bus& bus_;
  QuantumKeeper& keeper_;
};

class VpExecutor final : public core::Executor {
 public:
  VpExecutor(smt::Context& ctx, const isa::Decoder& decoder,
             const spec::Registry& registry, const core::Program& program,
             core::MachineConfig config = {});

  std::string name() const override { return "symex-vp"; }
  smt::Context& context() override { return ctx_; }
  void run(const smt::Assignment& seed, core::PathTrace& trace) override;
  uint64_t instructions_retired() const override { return retired_; }

  bool supports_snapshots() const override { return true; }
  void run_with_snapshots(const smt::Assignment& seed, core::PathTrace& trace,
                          const core::SnapshotPlan& plan) override;
  bool resume(const core::Snapshot& snap, const smt::Assignment& seed,
              core::PathTrace& trace, const core::SnapshotPlan& plan) override;
  uint64_t pages_copied() const override;

  bool supports_observer() const override { return true; }
  void set_observer(core::ExecObserver* observer) override {
    observer_ = observer;
    machine_.set_observer(observer);
  }

  /// The MMIO windows this executor maps. Bug-finding bounds oracles must
  /// register these as valid regions, or every peripheral access would be
  /// flagged out-of-bounds.
  static std::vector<core::MemRegion> mmio_regions() {
    return {{kUartBase, kUartBase + 0x1000},
            {kTimerBase, kTimerBase + 0x1000},
            {kSymInputBase, kSymInputBase + 0x1000}};
  }

  const QuantumKeeper& quantum_keeper() const { return keeper_; }

 private:
  /// Shared bus-interpretation loop; captures checkpoints (including the
  /// quantum keeper in Snapshot::extra) when `plan` is non-null.
  void loop(const core::SnapshotPlan* plan, uint64_t next_capture);

  core::ExecObserver* observer_ = nullptr;
  smt::Context& ctx_;
  const isa::Decoder& decoder_;
  const spec::Registry& registry_;
  const core::Program& program_;
  core::MachineConfig config_;
  QuantumKeeper keeper_;
  Bus bus_;
  VpMachine machine_;
  MemoryDevice ram_;
  UartDevice uart_;
  TimerDevice timer_;
  SymInputDevice sym_input_;
  interp::Evaluator<VpMachine> evaluator_;
  std::unordered_map<uint32_t, isa::Decoded> decode_cache_;
  uint64_t retired_ = 0;
};

}  // namespace binsym::vp
