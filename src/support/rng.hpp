// Deterministic PRNG (splitmix64) for property tests and benchmark workload
// generation. std::mt19937 is avoided so sequences are stable across
// standard library versions.
#pragma once

#include <cstdint>

namespace binsym {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform 32-bit value.
  uint32_t next32() { return static_cast<uint32_t>(next()); }

  /// Uniform boolean.
  bool flip() { return next() & 1; }

 private:
  uint64_t state_;
};

}  // namespace binsym
