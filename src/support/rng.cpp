#include "support/rng.hpp"

// Header-only.
