#include "support/resource.hpp"

#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace binsym::support {

uint64_t current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (in pages).
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (!file) return 0;
  unsigned long long size = 0, resident = 0;
  int matched = std::fscanf(file, "%llu %llu", &size, &resident);
  std::fclose(file);
  if (matched != 2) return 0;
  static const long page = sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace binsym::support
