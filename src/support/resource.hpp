// Process resource probes for the engine's cooperative budgets.
#pragma once

#include <cstdint>

namespace binsym::support {

/// Resident set size of this process in bytes, or 0 when the platform
/// offers no cheap probe (the engine then treats a memory budget as
/// unenforceable and never trips it). Cheap enough to poll per explored
/// path (one small /proc read on Linux).
uint64_t current_rss_bytes();

}  // namespace binsym::support
