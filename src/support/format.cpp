#include "support/format.hpp"

#include <cstdarg>
#include <cstdio>

#include "support/bits.hpp"

namespace binsym {

std::string hex32(uint32_t value) { return strprintf("0x%08x", value); }

std::string hex_bv(uint64_t value, unsigned width) {
  unsigned nibbles = (width + 3) / 4;
  std::string out(nibbles, '0');
  for (unsigned i = 0; i < nibbles; ++i) {
    unsigned nib = (value >> (4 * (nibbles - 1 - i))) & 0xf;
    out[i] = "0123456789abcdef"[nib];
  }
  return out;
}

std::string bin_bv(uint64_t value, unsigned width) {
  std::string out(width, '0');
  for (unsigned i = 0; i < width; ++i)
    if (test_bit(value, width - 1 - i)) out[i] = '1';
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace binsym
