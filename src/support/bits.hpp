// Bit manipulation helpers shared by every layer of the library.
//
// All bitvector values in the project are carried in a uint64_t whose bits
// above the nominal width are zero ("canonical form"). The helpers here
// create, check and convert such values.
#pragma once

#include <cassert>
#include <cstdint>

namespace binsym {

/// Maximum bitvector width supported by the expression layer.
inline constexpr unsigned kMaxWidth = 64;

/// Bitmask with the low `width` bits set. `width` must be in [1, 64].
constexpr uint64_t mask_bits(unsigned width) {
  assert(width >= 1 && width <= kMaxWidth);
  return width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/// Truncate `value` to `width` bits (canonical form).
constexpr uint64_t truncate(uint64_t value, unsigned width) {
  return value & mask_bits(width);
}

/// True if `value` is already canonical for `width`.
constexpr bool is_canonical(uint64_t value, unsigned width) {
  return truncate(value, width) == value;
}

/// Sign bit of a `width`-bit value.
constexpr bool sign_bit(uint64_t value, unsigned width) {
  return (value >> (width - 1)) & 1;
}

/// Sign-extend a `width`-bit value to 64 bits, then truncate to `to` bits.
constexpr uint64_t sext(uint64_t value, unsigned width, unsigned to = 64) {
  assert(width <= to);
  uint64_t v = truncate(value, width);
  if (sign_bit(v, width)) v |= ~mask_bits(width);
  return truncate(v, to);
}

/// Zero-extend is truncation of an already-canonical value; provided for
/// symmetry at call sites that want to make intent explicit.
constexpr uint64_t zext(uint64_t value, unsigned width, unsigned to = 64) {
  assert(width <= to);
  (void)to;
  return truncate(value, width);
}

/// Interpret a canonical `width`-bit value as a signed integer.
constexpr int64_t to_signed(uint64_t value, unsigned width) {
  return static_cast<int64_t>(sext(value, width, 64));
}

/// Extract bits [hi:lo] (inclusive) of `value`.
constexpr uint64_t extract_bits(uint64_t value, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < kMaxWidth);
  return (value >> lo) & mask_bits(hi - lo + 1);
}

/// Extract a single bit.
constexpr bool test_bit(uint64_t value, unsigned bit) {
  return (value >> bit) & 1;
}

// -- Saturating SMT-style shifts (amount >= width yields 0 / sign-fill). ----

constexpr uint64_t shl_bv(uint64_t a, uint64_t amount, unsigned width) {
  if (amount >= width) return 0;
  return truncate(a << amount, width);
}

constexpr uint64_t lshr_bv(uint64_t a, uint64_t amount, unsigned width) {
  if (amount >= width) return 0;
  return truncate(a, width) >> amount;
}

constexpr uint64_t ashr_bv(uint64_t a, uint64_t amount, unsigned width) {
  bool neg = sign_bit(truncate(a, width), width);
  if (amount >= width) return neg ? mask_bits(width) : 0;
  uint64_t shifted = sext(a, width, 64) >> amount;
  return truncate(shifted, width);
}

// -- SMT bitvector division semantics (division by zero is total). ----------

/// bvudiv: x / 0 == all-ones.
constexpr uint64_t udiv_bv(uint64_t a, uint64_t b, unsigned width) {
  if (truncate(b, width) == 0) return mask_bits(width);
  return truncate(truncate(a, width) / truncate(b, width), width);
}

/// bvurem: x % 0 == x.
constexpr uint64_t urem_bv(uint64_t a, uint64_t b, unsigned width) {
  if (truncate(b, width) == 0) return truncate(a, width);
  return truncate(truncate(a, width) % truncate(b, width), width);
}

/// SMT-LIB bvsdiv: INT_MIN / -1 wraps to INT_MIN; division by zero yields
/// -1 for non-negative dividends and +1 for negative ones. (RISC-V's DIV
/// returns -1 on /0 unconditionally — the formal spec encodes that with an
/// explicit divisor==0 branch, exactly like LibRISCV does, so this helper
/// deliberately keeps the SMT-LIB semantics to stay aligned with Z3.)
constexpr uint64_t sdiv_bv(uint64_t a, uint64_t b, unsigned width) {
  int64_t sa = to_signed(a, width), sb = to_signed(b, width);
  if (sb == 0) return sa < 0 ? 1 : mask_bits(width);
  int64_t int_min = -(int64_t{1} << (width - 1));
  if (sa == int_min && sb == -1) return truncate(static_cast<uint64_t>(sa), width);
  return truncate(static_cast<uint64_t>(sa / sb), width);
}

/// SMT-LIB bvsrem (sign follows dividend): x % 0 == x; INT_MIN % -1 == 0.
/// These edge cases coincide with RISC-V REM semantics.
constexpr uint64_t srem_bv(uint64_t a, uint64_t b, unsigned width) {
  int64_t sa = to_signed(a, width), sb = to_signed(b, width);
  if (sb == 0) return truncate(a, width);
  int64_t int_min = -(int64_t{1} << (width - 1));
  if (sa == int_min && sb == -1) return 0;
  return truncate(static_cast<uint64_t>(sa % sb), width);
}

}  // namespace binsym
