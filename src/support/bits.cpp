#include "support/bits.hpp"

// Header-only; this translation unit exists to compile the assertions in a
// known context and keep the build graph uniform (one .cpp per header).
namespace binsym {

static_assert(mask_bits(1) == 1);
static_assert(mask_bits(32) == 0xffffffffu);
static_assert(mask_bits(64) == ~uint64_t{0});
static_assert(sext(0x80, 8, 32) == 0xffffff80u);
static_assert(sext(0x7f, 8, 32) == 0x7fu);
static_assert(ashr_bv(0x80000000u, 31, 32) == 0xffffffffu);
static_assert(ashr_bv(0x80000000u, 35, 32) == 0xffffffffu);
static_assert(shl_bv(1, 35, 32) == 0);
static_assert(udiv_bv(5, 0, 32) == 0xffffffffu);
static_assert(sdiv_bv(5, 0, 32) == 0xffffffffu);
static_assert(sdiv_bv(0xfffffffbu, 0, 32) == 1);  // -5 / 0 == 1 (SMT-LIB)
static_assert(sdiv_bv(0x80000000u, 0xffffffffu, 32) == 0x80000000u);
static_assert(srem_bv(0x80000000u, 0xffffffffu, 32) == 0);

}  // namespace binsym
