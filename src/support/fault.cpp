#include "support/fault.hpp"

#include <cstdlib>
#include <optional>

namespace binsym::support {

namespace {

std::optional<FaultSite> parse_site(const std::string& name) {
  for (uint8_t s = 0; s < static_cast<uint8_t>(FaultSite::kNumFaultSites); ++s)
    if (name == fault_site_name(static_cast<FaultSite>(s)))
      return static_cast<FaultSite>(s);
  return std::nullopt;
}

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Parse one `site@N`, `site@N+` or `site@N:M` clause into the plan.
bool parse_clause(const std::string& clause, FaultPlan* plan,
                  std::string* error) {
  size_t at = clause.find('@');
  if (at == std::string::npos)
    return fail(error, "clause '" + clause + "' has no '@' (want site@N)");
  std::optional<FaultSite> site = parse_site(clause.substr(0, at));
  if (!site)
    return fail(error, "unknown fault site '" + clause.substr(0, at) +
                           "' (want solver, solver-throw, snapshot or alloc)");

  FaultPlan::Rule rule;
  const char* cursor = clause.c_str() + at + 1;
  char* end = nullptr;
  rule.start = std::strtoull(cursor, &end, 10);
  if (end == cursor || rule.start == 0)
    return fail(error, "clause '" + clause +
                           "' needs a positive 1-based occurrence index");
  if (*end == '+') {
    rule.open_ended = true;
    ++end;
  } else if (*end == ':') {
    cursor = end + 1;
    rule.every = std::strtoull(cursor, &end, 10);
    if (end == cursor || rule.every == 0)
      return fail(error,
                  "clause '" + clause + "' needs a positive period after ':'");
  }
  if (*end != '\0')
    return fail(error, "trailing garbage in clause '" + clause + "'");
  plan->add(*site, rule);
  return true;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kSolverUnknown: return "solver";
    case FaultSite::kSolverThrow:   return "solver-throw";
    case FaultSite::kSnapshot:      return "snapshot";
    case FaultSite::kAlloc:         return "alloc";
    case FaultSite::kNumFaultSites: break;
  }
  return "?";
}

std::shared_ptr<FaultPlan> FaultPlan::parse(const std::string& spec,
                                            std::string* error) {
  auto plan = std::make_shared<FaultPlan>();
  if (spec.empty()) return plan;  // an empty plan never fires
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t comma = spec.find(',', begin);
    if (comma == std::string::npos) comma = spec.size();
    if (!parse_clause(spec.substr(begin, comma - begin), plan.get(), error))
      return nullptr;
    begin = comma + 1;
  }
  return plan;
}

void FaultPlan::add(FaultSite site, Rule rule) {
  rules_[static_cast<size_t>(site)].push_back(rule);
}

bool FaultPlan::fire(FaultSite site) {
  const size_t index = static_cast<size_t>(site);
  // The occurrence index is claimed atomically, so concurrent workers never
  // observe the same index twice (each rule fires at most once per index).
  const uint64_t occurrence =
      counters_[index].fetch_add(1, std::memory_order_relaxed) + 1;
  for (const Rule& rule : rules_[index]) {
    if (occurrence < rule.start) continue;
    bool hit = occurrence == rule.start || rule.open_ended ||
               (rule.every != 0 && (occurrence - rule.start) % rule.every == 0);
    if (hit) {
      fired_[index].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

uint64_t FaultPlan::occurrences(FaultSite site) const {
  return counters_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

uint64_t FaultPlan::fired(FaultSite site) const {
  return fired_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

}  // namespace binsym::support
