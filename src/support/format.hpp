// Small string formatting helpers (hex printing, joining) used by the
// disassembler, the SMT-LIB printer and diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace binsym {

/// "0x%08x"-style formatting of a 32-bit value.
std::string hex32(uint32_t value);

/// Hex of an arbitrary-width canonical bitvector, zero-padded to the number
/// of nibbles needed by `width` (as in SMT-LIB #x literals).
std::string hex_bv(uint64_t value, unsigned width);

/// Binary string of a canonical bitvector, zero padded to `width` digits.
std::string bin_bv(uint64_t value, unsigned width);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace binsym
