// Deterministic fault injection for the robustness test harness.
//
// A FaultPlan names *which occurrence* of an instrumented operation should
// fail: "the 3rd solver check returns unknown", "every 2nd snapshot capture
// starting at the 5th is dropped", "the 1st child-job allocation throws
// bad_alloc". Sites keep per-site occurrence counters, so a plan is fully
// deterministic for a deterministic exploration — the same run hits the
// same faults in the same places, which is what lets the fault-matrix
// tests assert exact degraded behavior instead of flaky approximations.
//
// Spec grammar (CLI: `explore --fault-inject SPEC`, comma-separated):
//
//   site@N      fail exactly the Nth occurrence (1-based)
//   site@N+     fail the Nth and every later occurrence
//   site@N:M    fail the Nth, then every Mth after it (N, N+M, N+2M, ...)
//
// with site one of:
//
//   solver         the check returns CheckResult::kUnknown
//   solver-throw   the check throws support::FaultInjected
//   snapshot       the snapshot capture is silently skipped (run degrades
//                  to replay-based resume for the affected flips)
//   alloc          an instrumented allocation throws std::bad_alloc
//
// Thread-safety: fire() is safe from any number of engine workers; the
// occurrence counters are atomics. Note that under several workers the
// *global* occurrence order of a site is scheduling-dependent — plans used
// in determinism-sensitive tests either run with jobs=1 or use open-ended
// (`N+`) rules, which are order-insensitive.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace binsym::support {

/// Instrumented operation classes a plan can target.
enum class FaultSite : uint8_t {
  kSolverUnknown,  // "solver": check degrades to kUnknown
  kSolverThrow,    // "solver-throw": check throws FaultInjected
  kSnapshot,       // "snapshot": capture silently skipped
  kAlloc,          // "alloc": instrumented allocation throws bad_alloc
  kNumFaultSites,
};

/// Spec spelling for a site ("solver", "solver-throw", ...).
const char* fault_site_name(FaultSite site);

/// Thrown by kSolverThrow sites (and catchable distinctly from real backend
/// errors in tests).
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

class FaultPlan {
 public:
  /// One `site@N[...]` clause.
  struct Rule {
    uint64_t start = 1;     // 1-based occurrence the rule first fires at
    uint64_t every = 0;     // 0: fire only at `start`; k: start, start+k, ...
    bool open_ended = false;  // fire at every occurrence >= start
  };

  /// Parse a spec string (see grammar above). Returns null and fills
  /// `*error` (when non-null) on a malformed spec.
  static std::shared_ptr<FaultPlan> parse(const std::string& spec,
                                          std::string* error = nullptr);

  /// Add one rule programmatically (tests).
  void add(FaultSite site, Rule rule);

  /// Count one occurrence of `site` and report whether a rule says this
  /// occurrence must fail. Thread-safe.
  bool fire(FaultSite site);

  /// Occurrences counted at `site` so far (tests/diagnostics).
  uint64_t occurrences(FaultSite site) const;

  /// Times fire() returned true at `site` (tests/diagnostics).
  uint64_t fired(FaultSite site) const;

 private:
  static constexpr size_t kNumSites =
      static_cast<size_t>(FaultSite::kNumFaultSites);

  std::array<std::vector<Rule>, kNumSites> rules_;
  std::array<std::atomic<uint64_t>, kNumSites> counters_{};
  std::array<std::atomic<uint64_t>, kNumSites> fired_{};
};

}  // namespace binsym::support
