// ELF32 images for RISC-V: shared segment representation, a writer that
// emits minimal executable files (ELF header + one PT_LOAD per segment) and
// a reader that loads them back. The paper's toolchain consumes RISC-V ELF
// binaries (LibRISCV "takes RISC-V binary code (in the ELF format) as an
// input"); here the project's own assembler produces them, closing the
// compile+link -> semanticize loop offline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/executor.hpp"

namespace binsym::elf {

struct Segment {
  uint32_t addr = 0;
  std::vector<uint8_t> bytes;
  /// ELF p_flags permission bits (kPfR/kPfW/kPfX). The writer emits them
  /// verbatim, the reader parses them back, and to_program() forwards them
  /// to core::MemRegion::flags so every consumer (oracle MemoryMap, static
  /// analysis) shares the loader's single source of segment metadata.
  uint32_t flags = 7;  // kPfR | kPfW | kPfX; see below.
};

struct Image {
  std::vector<Segment> segments;
  uint32_t entry = 0;
};

// -- ELF constants (subset needed for EM_RISCV executables). -------------------

inline constexpr uint16_t kEtExec = 2;
inline constexpr uint16_t kEmRiscv = 243;
inline constexpr uint32_t kPtLoad = 1;
inline constexpr uint32_t kPfX = 1, kPfW = 2, kPfR = 4;

/// Serialize an image as a little-endian ELF32 executable.
std::vector<uint8_t> write_elf(const Image& image);

/// Parse an ELF32 executable; returns nullopt (with `error`) if the file is
/// not a valid little-endian RISC-V ELF32 executable.
std::optional<Image> read_elf(const std::vector<uint8_t>& bytes,
                              std::string* error = nullptr);

// File-level convenience wrappers.
bool write_elf_file(const std::string& path, const Image& image);
std::optional<Image> read_elf_file(const std::string& path,
                                   std::string* error = nullptr);

/// Materialize an image as an executable guest program.
core::Program to_program(const Image& image);

}  // namespace binsym::elf
