#include <cstring>
#include <fstream>

#include "elf/elf32.hpp"

namespace binsym::elf {

namespace {

constexpr uint32_t kEhdrSize = 52;
constexpr uint32_t kPhdrSize = 32;

void put16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

std::vector<uint8_t> write_elf(const Image& image) {
  const uint32_t phnum = static_cast<uint32_t>(image.segments.size());

  // ELF header, starting from e_ident.
  const uint8_t ident[16] = {0x7f, 'E', 'L', 'F',
                             1,  // ELFCLASS32
                             1,  // ELFDATA2LSB
                             1,  // EV_CURRENT
                             0, 0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<uint8_t> out(ident, ident + 16);
  put16(out, kEtExec);
  put16(out, kEmRiscv);
  put32(out, 1);            // e_version
  put32(out, image.entry);  // e_entry
  put32(out, kEhdrSize);    // e_phoff: program headers right after ehdr
  put32(out, 0);            // e_shoff: no sections
  put32(out, 0);            // e_flags
  put16(out, kEhdrSize);    // e_ehsize
  put16(out, kPhdrSize);    // e_phentsize
  put16(out, static_cast<uint16_t>(phnum));
  put16(out, 0);            // e_shentsize
  put16(out, 0);            // e_shnum
  put16(out, 0);            // e_shstrndx

  // Program headers; payload follows all headers, 4-byte aligned.
  uint32_t offset = kEhdrSize + phnum * kPhdrSize;
  for (const Segment& segment : image.segments) {
    offset = (offset + 3) & ~3u;
    uint32_t size = static_cast<uint32_t>(segment.bytes.size());
    put32(out, kPtLoad);
    put32(out, offset);          // p_offset
    put32(out, segment.addr);    // p_vaddr
    put32(out, segment.addr);    // p_paddr
    put32(out, size);            // p_filesz
    put32(out, size);            // p_memsz
    put32(out, segment.flags);   // p_flags
    put32(out, 4);               // p_align
    offset += size;
  }

  // Payload.
  for (const Segment& segment : image.segments) {
    while (out.size() % 4) out.push_back(0);
    out.insert(out.end(), segment.bytes.begin(), segment.bytes.end());
  }
  return out;
}

bool write_elf_file(const std::string& path, const Image& image) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  std::vector<uint8_t> bytes = write_elf(image);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return file.good();
}

}  // namespace binsym::elf
