#include <cstring>
#include <fstream>

#include "elf/elf32.hpp"

namespace binsym::elf {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

uint16_t get16(const std::vector<uint8_t>& b, size_t off) {
  return static_cast<uint16_t>(b[off] | (b[off + 1] << 8));
}

uint32_t get32(const std::vector<uint8_t>& b, size_t off) {
  return static_cast<uint32_t>(b[off]) | (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) |
         (static_cast<uint32_t>(b[off + 3]) << 24);
}

bool parse(const std::vector<uint8_t>& bytes, Image* image,
           std::string* error) {
  if (bytes.size() < 52) return fail(error, "file too short for an ELF header");
  static const uint8_t magic[4] = {0x7f, 'E', 'L', 'F'};
  if (std::memcmp(bytes.data(), magic, 4) != 0)
    return fail(error, "bad ELF magic");
  if (bytes[4] != 1) return fail(error, "not ELFCLASS32");
  if (bytes[5] != 1) return fail(error, "not little-endian");
  if (get16(bytes, 16) != kEtExec) return fail(error, "not ET_EXEC");
  if (get16(bytes, 18) != kEmRiscv) return fail(error, "not EM_RISCV");

  image->entry = get32(bytes, 24);
  uint32_t phoff = get32(bytes, 28);
  uint16_t phentsize = get16(bytes, 42);
  uint16_t phnum = get16(bytes, 44);
  if (phentsize < 32) return fail(error, "bad e_phentsize");

  for (uint16_t i = 0; i < phnum; ++i) {
    size_t ph = static_cast<size_t>(phoff) + static_cast<size_t>(i) * phentsize;
    if (ph + 32 > bytes.size())
      return fail(error, "program header outside file");
    if (get32(bytes, ph + 0) != kPtLoad) continue;
    uint32_t offset = get32(bytes, ph + 4);
    uint32_t vaddr = get32(bytes, ph + 8);
    uint32_t filesz = get32(bytes, ph + 16);
    uint32_t memsz = get32(bytes, ph + 20);
    uint32_t pflags = get32(bytes, ph + 24);
    if (static_cast<size_t>(offset) + filesz > bytes.size())
      return fail(error, "segment payload outside file");
    // Malformed-header hardening: a p_memsz below p_filesz has no valid
    // meaning, and a segment whose end wraps the 32-bit address space
    // would alias low memory when loaded.
    if (memsz < filesz)
      return fail(error, "segment p_memsz smaller than p_filesz");
    if (static_cast<uint64_t>(vaddr) + memsz > 0x100000000ull)
      return fail(error, "segment end wraps the 32-bit address space");
    Segment segment;
    segment.addr = vaddr;
    segment.flags = pflags & (kPfR | kPfW | kPfX);
    segment.bytes.assign(bytes.begin() + offset,
                         bytes.begin() + offset + filesz);
    // BSS-style trailing zeroes (memsz > filesz).
    segment.bytes.resize(memsz, 0);
    image->segments.push_back(std::move(segment));
  }
  return true;
}

}  // namespace

std::optional<Image> read_elf(const std::vector<uint8_t>& bytes,
                              std::string* error) {
  Image image;
  if (!parse(bytes, &image, error)) return std::nullopt;
  return image;
}

std::optional<Image> read_elf_file(const std::string& path,
                                   std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  return read_elf(bytes, error);
}

}  // namespace binsym::elf
