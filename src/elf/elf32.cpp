#include "elf/elf32.hpp"

#include <stdexcept>

#include "support/format.hpp"

namespace binsym::elf {

core::Program to_program(const Image& image) {
  core::Program program;
  program.entry = image.entry;
  for (const Segment& segment : image.segments) {
    // read_elf validated each segment in isolation; overlap is a property
    // of the set. Overlapping PT_LOADs would silently clobber one another
    // in the flat guest image, so a malformed file fails loudly here.
    const uint64_t begin = segment.addr;
    const uint64_t end = begin + segment.bytes.size();
    for (const core::MemRegion& prior : program.regions) {
      if (begin < prior.hi && prior.lo < end)
        throw std::runtime_error(strprintf(
            "overlapping PT_LOAD segments: [0x%llx, 0x%llx) collides with "
            "[0x%x, 0x%x)",
            static_cast<unsigned long long>(begin),
            static_cast<unsigned long long>(end), prior.lo, prior.hi));
    }
    program.load_bytes(segment.addr, segment.bytes, segment.flags);
  }
  return program;
}

}  // namespace binsym::elf
