#include "elf/elf32.hpp"

namespace binsym::elf {

core::Program to_program(const Image& image) {
  core::Program program;
  program.entry = image.entry;
  for (const Segment& segment : image.segments)
    program.load_bytes(segment.addr, segment.bytes, segment.flags);
  return program;
}

}  // namespace binsym::elf
