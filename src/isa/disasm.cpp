#include "isa/disasm.hpp"

#include "support/format.hpp"

namespace binsym::isa {

namespace {
std::string reg(uint32_t index) { return abi_reg_name(index); }
}  // namespace

std::string disassemble(const Decoded& decoded, uint32_t pc) {
  const std::string& name = decoded.info->name;
  switch (decoded.format()) {
    case Format::kR:
      return strprintf("%s %s, %s, %s", name.c_str(), reg(decoded.rd()).c_str(),
                       reg(decoded.rs1()).c_str(), reg(decoded.rs2()).c_str());
    case Format::kR4:
      return strprintf("%s %s, %s, %s, %s", name.c_str(),
                       reg(decoded.rd()).c_str(), reg(decoded.rs1()).c_str(),
                       reg(decoded.rs2()).c_str(), reg(decoded.rs3()).c_str());
    case Format::kI: {
      // Unary instructions (e.g. Zbb clz/ctz) pin the whole imm field in
      // their mask; only rd and rs1 are real operands.
      if ((decoded.info->mask & 0xfff00000) == 0xfff00000)
        return strprintf("%s %s, %s", name.c_str(), reg(decoded.rd()).c_str(),
                         reg(decoded.rs1()).c_str());
      int32_t imm = static_cast<int32_t>(decoded.immediate());
      // Loads print with the address-offset syntax.
      switch (decoded.id()) {
        case kLB: case kLH: case kLW: case kLBU: case kLHU:
          return strprintf("%s %s, %d(%s)", name.c_str(),
                           reg(decoded.rd()).c_str(), imm,
                           reg(decoded.rs1()).c_str());
        default:
          return strprintf("%s %s, %s, %d", name.c_str(),
                           reg(decoded.rd()).c_str(),
                           reg(decoded.rs1()).c_str(), imm);
      }
    }
    case Format::kIShift:
      return strprintf("%s %s, %s, %u", name.c_str(),
                       reg(decoded.rd()).c_str(), reg(decoded.rs1()).c_str(),
                       decoded.shamt());
    case Format::kS:
      return strprintf("%s %s, %d(%s)", name.c_str(),
                       reg(decoded.rs2()).c_str(),
                       static_cast<int32_t>(decoded.immediate()),
                       reg(decoded.rs1()).c_str());
    case Format::kB:
      return strprintf("%s %s, %s, 0x%x", name.c_str(),
                       reg(decoded.rs1()).c_str(), reg(decoded.rs2()).c_str(),
                       pc + decoded.immediate());
    case Format::kU:
      return strprintf("%s %s, 0x%x", name.c_str(), reg(decoded.rd()).c_str(),
                       decoded.immediate() >> 12);
    case Format::kJ:
      return strprintf("%s %s, 0x%x", name.c_str(), reg(decoded.rd()).c_str(),
                       pc + decoded.immediate());
    case Format::kSystem:
      return name;
    case Format::kCsr:
      // Immediate forms (csrrwi/...) carry a 5-bit zimm in the rs1 field.
      if (!name.empty() && name.back() == 'i')
        return strprintf("%s %s, 0x%x, %u", name.c_str(),
                         reg(decoded.rd()).c_str(), decoded.csr(),
                         decoded.rs1());
      return strprintf("%s %s, 0x%x, %s", name.c_str(),
                       reg(decoded.rd()).c_str(), decoded.csr(),
                       reg(decoded.rs1()).c_str());
  }
  return name;
}

std::string disassemble_word(const Decoder& decoder, uint32_t word,
                             uint32_t pc) {
  if (auto decoded = decoder.decode(word)) return disassemble(*decoded, pc);
  return ".word " + hex32(word);
}

}  // namespace binsym::isa
