#include "isa/opcode_desc.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace binsym::isa {

namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string strip_quotes(std::string s) {
  if (s.size() >= 2 && (s.front() == '\'' || s.front() == '"') &&
      s.back() == s.front())
    return s.substr(1, s.size() - 2);
  return s;
}

/// Parse "[a, b, c]" or a bare scalar into a list.
std::vector<std::string> parse_list(const std::string& value) {
  std::string v = trim(value);
  std::vector<std::string> out;
  if (!v.empty() && v.front() == '[' && v.back() == ']') {
    std::stringstream ss(v.substr(1, v.size() - 2));
    std::string item;
    while (std::getline(ss, item, ',')) {
      item = strip_quotes(trim(item));
      if (!item.empty()) out.push_back(item);
    }
  } else if (!v.empty()) {
    out.push_back(strip_quotes(v));
  }
  return out;
}

bool parse_u32(const std::string& text, uint32_t* out) {
  std::string v = strip_quotes(trim(text));
  if (v.empty()) return false;
  try {
    size_t pos = 0;
    unsigned long value = std::stoul(v, &pos, 0);
    if (pos != v.size() || value > 0xffffffffull) return false;
    *out = static_cast<uint32_t>(value);
    return true;
  } catch (...) {
    return false;
  }
}

/// Derive mask/match from a 32-character pattern, bit 31 first.
bool parse_encoding_pattern(const std::string& pattern, uint32_t* mask,
                            uint32_t* match) {
  std::string p = strip_quotes(trim(pattern));
  if (p.size() != 32) return false;
  *mask = 0;
  *match = 0;
  for (size_t i = 0; i < 32; ++i) {
    uint32_t bit = 31 - static_cast<uint32_t>(i);
    switch (p[i]) {
      case '0': *mask |= 1u << bit; break;
      case '1': *mask |= 1u << bit; *match |= 1u << bit; break;
      case '-': break;
      default: return false;
    }
  }
  return true;
}

bool fail(ParseError* error, int line, const std::string& message) {
  if (error) *error = ParseError{line, message};
  return false;
}

}  // namespace

std::optional<Format> format_for_fields(
    const std::vector<std::string>& fields) {
  auto has = [&](const char* f) {
    return std::find(fields.begin(), fields.end(), f) != fields.end();
  };
  bool rd_ = has("rd"), rs1_ = has("rs1"), rs2_ = has("rs2"), rs3_ = has("rs3");
  if (rd_ && rs1_ && rs2_ && rs3_ && fields.size() == 4) return Format::kR4;
  if (rd_ && rs1_ && rs2_ && fields.size() == 3) return Format::kR;
  if (rd_ && rs1_ && has("shamtw") && fields.size() == 3) return Format::kIShift;
  if (rd_ && rs1_ && has("imm12") && fields.size() == 3) return Format::kI;
  if (rs1_ && rs2_ && (has("imm12hi") || has("bimm12hi"))) {
    return has("bimm12hi") ? Format::kB : Format::kS;
  }
  if (rd_ && has("imm20") && fields.size() == 2) return Format::kU;
  if (rd_ && has("jimm20") && fields.size() == 2) return Format::kJ;
  if (fields.empty()) return Format::kSystem;
  return std::nullopt;
}

std::optional<std::vector<OpcodeDesc>> parse_opcode_descs(
    const std::string& text, ParseError* error) {
  std::vector<OpcodeDesc> out;
  OpcodeDesc current;
  bool in_entry = false;
  bool have_encoding = false, have_mask = false, have_match = false;
  uint32_t enc_mask = 0, enc_match = 0;

  auto finish_entry = [&](int line) -> bool {
    if (!in_entry) return true;
    if (have_encoding) {
      if (have_mask && current.mask != enc_mask)
        return fail(error, line, "mask disagrees with encoding pattern");
      if (have_match && current.match != enc_match)
        return fail(error, line, "match disagrees with encoding pattern");
      current.mask = enc_mask;
      current.match = enc_match;
    } else if (!(have_mask && have_match)) {
      return fail(error, line,
                  "entry '" + current.name +
                      "' needs either an encoding pattern or mask+match");
    }
    if (auto fmt = format_for_fields(current.variable_fields)) {
      current.format = *fmt;
    } else {
      return fail(error, line,
                  "unsupported variable_fields combination in '" +
                      current.name + "'");
    }
    out.push_back(current);
    return true;
  };

  std::stringstream ss(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(ss, raw)) {
    ++line_no;
    std::string line = raw;
    if (size_t hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    std::string t = trim(line);
    if (t.empty()) continue;

    bool indented = line[0] == ' ' || line[0] == '\t';
    if (!indented && t.back() == ':') {
      // New entry header.
      if (!finish_entry(line_no)) return std::nullopt;
      current = OpcodeDesc{};
      current.name = trim(t.substr(0, t.size() - 1));
      in_entry = true;
      have_encoding = have_mask = have_match = false;
      continue;
    }

    if (!in_entry) {
      fail(error, line_no, "key outside of an instruction entry");
      return std::nullopt;
    }
    size_t colon = t.find(':');
    if (colon == std::string::npos) {
      fail(error, line_no, "expected 'key: value'");
      return std::nullopt;
    }
    std::string key = trim(t.substr(0, colon));
    std::string value = trim(t.substr(colon + 1));

    if (key == "encoding") {
      if (!parse_encoding_pattern(value, &enc_mask, &enc_match)) {
        fail(error, line_no, "encoding must be 32 chars of 0/1/-");
        return std::nullopt;
      }
      have_encoding = true;
    } else if (key == "mask") {
      if (!parse_u32(value, &current.mask)) {
        fail(error, line_no, "bad mask literal");
        return std::nullopt;
      }
      have_mask = true;
    } else if (key == "match") {
      if (!parse_u32(value, &current.match)) {
        fail(error, line_no, "bad match literal");
        return std::nullopt;
      }
      have_match = true;
    } else if (key == "extension") {
      auto list = parse_list(value);
      current.extension = list.empty() ? "" : list.front();
    } else if (key == "variable_fields") {
      current.variable_fields = parse_list(value);
    } else {
      // Unknown keys are ignored for forward compatibility, matching how
      // riscv-opcodes tooling treats extra attributes.
    }
  }
  if (!finish_entry(line_no)) return std::nullopt;
  return out;
}

std::optional<std::vector<OpcodeId>> register_opcode_descs(
    OpcodeTable& table, const std::string& text, ParseError* error) {
  auto descs = parse_opcode_descs(text, error);
  if (!descs) return std::nullopt;
  std::vector<OpcodeId> ids;
  for (const OpcodeDesc& desc : *descs) {
    auto id = table.add(desc.name, desc.mask, desc.match, desc.format,
                        desc.extension);
    if (!id) {
      if (error)
        *error = ParseError{0, "registration failed for '" + desc.name +
                                   "' (name or encoding collision)"};
      return std::nullopt;
    }
    ids.push_back(*id);
  }
  return ids;
}

}  // namespace binsym::isa
