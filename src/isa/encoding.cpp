#include "isa/encoding.hpp"

#include <array>

namespace binsym::isa {

const char* format_name(Format format) {
  switch (format) {
    case Format::kR:      return "R";
    case Format::kR4:     return "R4";
    case Format::kI:      return "I";
    case Format::kIShift: return "I-shift";
    case Format::kS:      return "S";
    case Format::kB:      return "B";
    case Format::kU:      return "U";
    case Format::kJ:      return "J";
    case Format::kSystem: return "system";
    case Format::kCsr:    return "CSR";
  }
  return "?";
}

namespace {
constexpr std::array<const char*, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}  // namespace

const char* abi_reg_name(uint32_t reg) {
  return reg < 32 ? kAbiNames[reg] : "??";
}

int parse_reg_name(const std::string& name) {
  if (name.size() >= 2 && (name[0] == 'x') &&
      name.find_first_not_of("0123456789", 1) == std::string::npos) {
    int n = std::stoi(name.substr(1));
    return (n >= 0 && n < 32) ? n : -1;
  }
  for (int i = 0; i < 32; ++i)
    if (name == kAbiNames[i]) return i;
  if (name == "fp") return 8;  // frame pointer alias for s0
  return -1;
}

}  // namespace binsym::isa
