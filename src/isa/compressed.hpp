// RV32C compressed-instruction support: 16-bit -> 32-bit expansion.
//
// Every RVC instruction is defined by the ISA manual as an expansion to a
// base-ISA instruction, so compressed support slots underneath the formal
// semantics with no new spec code: the decoder expands the halfword and
// decodes the result; only the instruction *size* (and therefore the next
// pc and link values) differs, which the spec consumes through the
// instr-size operand. Reference: RISC-V unprivileged manual v20191213,
// Chapter 16 ("C" extension), Table 16.5-16.7.
#pragma once

#include <cstdint>
#include <optional>

namespace binsym::isa {

/// True if `halfword` starts a 16-bit (compressed) instruction — i.e. its
/// two low bits are not 0b11.
constexpr bool is_compressed(uint32_t halfword) {
  return (halfword & 3) != 3;
}

/// Expand a 16-bit RVC instruction into its 32-bit base-ISA equivalent.
/// Returns nullopt for reserved/illegal encodings and for encodings whose
/// expansion needs an unsupported extension (e.g. the FP loads).
std::optional<uint32_t> expand_compressed(uint16_t halfword);

}  // namespace binsym::isa
