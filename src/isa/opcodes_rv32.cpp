// Builtin RV32IM + Zicsr encoding table. Mask/match values follow
// riscv-opcodes (https://github.com/riscv/riscv-opcodes) exactly.
#include <algorithm>
#include <bit>
#include <cassert>

#include "isa/opcodes.hpp"

namespace binsym::isa {

namespace {

// Major opcodes (bits [6:0]).
constexpr uint32_t kOpLui = 0b0110111;
constexpr uint32_t kOpAuipc = 0b0010111;
constexpr uint32_t kOpJal = 0b1101111;
constexpr uint32_t kOpJalr = 0b1100111;
constexpr uint32_t kOpBranch = 0b1100011;
constexpr uint32_t kOpLoad = 0b0000011;
constexpr uint32_t kOpStore = 0b0100011;
constexpr uint32_t kOpImm = 0b0010011;
constexpr uint32_t kOpReg = 0b0110011;
constexpr uint32_t kOpMiscMem = 0b0001111;
constexpr uint32_t kOpSystem = 0b1110011;

// Mask shapes.
constexpr uint32_t kMaskOpcode = 0x0000007f;           // U/J formats
constexpr uint32_t kMaskF3 = 0x0000707f;               // I/S/B formats
constexpr uint32_t kMaskF7F3 = 0xfe00707f;             // R format + imm shifts
constexpr uint32_t kMaskExact = 0xffffffff;            // ECALL et al.

constexpr uint32_t match_f3(uint32_t opcode, uint32_t f3) {
  return opcode | (f3 << 12);
}
constexpr uint32_t match_f7f3(uint32_t opcode, uint32_t f3, uint32_t f7) {
  return opcode | (f3 << 12) | (f7 << 25);
}

}  // namespace

OpcodeTable::OpcodeTable() : buckets_(128) {
  auto B = [this](OpcodeId id, const char* name, uint32_t mask, uint32_t match,
                  Format fmt, const char* ext) {
    add_builtin(id, name, mask, match, fmt, ext);
  };

  B(kLUI,   "lui",   kMaskOpcode, kOpLui,   Format::kU, "rv_i");
  B(kAUIPC, "auipc", kMaskOpcode, kOpAuipc, Format::kU, "rv_i");
  B(kJAL,   "jal",   kMaskOpcode, kOpJal,   Format::kJ, "rv_i");
  B(kJALR,  "jalr",  kMaskF3, match_f3(kOpJalr, 0), Format::kI, "rv_i");

  B(kBEQ,  "beq",  kMaskF3, match_f3(kOpBranch, 0b000), Format::kB, "rv_i");
  B(kBNE,  "bne",  kMaskF3, match_f3(kOpBranch, 0b001), Format::kB, "rv_i");
  B(kBLT,  "blt",  kMaskF3, match_f3(kOpBranch, 0b100), Format::kB, "rv_i");
  B(kBGE,  "bge",  kMaskF3, match_f3(kOpBranch, 0b101), Format::kB, "rv_i");
  B(kBLTU, "bltu", kMaskF3, match_f3(kOpBranch, 0b110), Format::kB, "rv_i");
  B(kBGEU, "bgeu", kMaskF3, match_f3(kOpBranch, 0b111), Format::kB, "rv_i");

  B(kLB,  "lb",  kMaskF3, match_f3(kOpLoad, 0b000), Format::kI, "rv_i");
  B(kLH,  "lh",  kMaskF3, match_f3(kOpLoad, 0b001), Format::kI, "rv_i");
  B(kLW,  "lw",  kMaskF3, match_f3(kOpLoad, 0b010), Format::kI, "rv_i");
  B(kLBU, "lbu", kMaskF3, match_f3(kOpLoad, 0b100), Format::kI, "rv_i");
  B(kLHU, "lhu", kMaskF3, match_f3(kOpLoad, 0b101), Format::kI, "rv_i");

  B(kSB, "sb", kMaskF3, match_f3(kOpStore, 0b000), Format::kS, "rv_i");
  B(kSH, "sh", kMaskF3, match_f3(kOpStore, 0b001), Format::kS, "rv_i");
  B(kSW, "sw", kMaskF3, match_f3(kOpStore, 0b010), Format::kS, "rv_i");

  B(kADDI,  "addi",  kMaskF3, match_f3(kOpImm, 0b000), Format::kI, "rv_i");
  B(kSLTI,  "slti",  kMaskF3, match_f3(kOpImm, 0b010), Format::kI, "rv_i");
  B(kSLTIU, "sltiu", kMaskF3, match_f3(kOpImm, 0b011), Format::kI, "rv_i");
  B(kXORI,  "xori",  kMaskF3, match_f3(kOpImm, 0b100), Format::kI, "rv_i");
  B(kORI,   "ori",   kMaskF3, match_f3(kOpImm, 0b110), Format::kI, "rv_i");
  B(kANDI,  "andi",  kMaskF3, match_f3(kOpImm, 0b111), Format::kI, "rv_i");

  B(kSLLI, "slli", kMaskF7F3, match_f7f3(kOpImm, 0b001, 0b0000000),
    Format::kIShift, "rv_i");
  B(kSRLI, "srli", kMaskF7F3, match_f7f3(kOpImm, 0b101, 0b0000000),
    Format::kIShift, "rv_i");
  B(kSRAI, "srai", kMaskF7F3, match_f7f3(kOpImm, 0b101, 0b0100000),
    Format::kIShift, "rv_i");

  B(kADD,  "add",  kMaskF7F3, match_f7f3(kOpReg, 0b000, 0b0000000), Format::kR, "rv_i");
  B(kSUB,  "sub",  kMaskF7F3, match_f7f3(kOpReg, 0b000, 0b0100000), Format::kR, "rv_i");
  B(kSLL,  "sll",  kMaskF7F3, match_f7f3(kOpReg, 0b001, 0b0000000), Format::kR, "rv_i");
  B(kSLT,  "slt",  kMaskF7F3, match_f7f3(kOpReg, 0b010, 0b0000000), Format::kR, "rv_i");
  B(kSLTU, "sltu", kMaskF7F3, match_f7f3(kOpReg, 0b011, 0b0000000), Format::kR, "rv_i");
  B(kXOR,  "xor",  kMaskF7F3, match_f7f3(kOpReg, 0b100, 0b0000000), Format::kR, "rv_i");
  B(kSRL,  "srl",  kMaskF7F3, match_f7f3(kOpReg, 0b101, 0b0000000), Format::kR, "rv_i");
  B(kSRA,  "sra",  kMaskF7F3, match_f7f3(kOpReg, 0b101, 0b0100000), Format::kR, "rv_i");
  B(kOR,   "or",   kMaskF7F3, match_f7f3(kOpReg, 0b110, 0b0000000), Format::kR, "rv_i");
  B(kAND,  "and",  kMaskF7F3, match_f7f3(kOpReg, 0b111, 0b0000000), Format::kR, "rv_i");

  B(kFENCE, "fence", kMaskF3, match_f3(kOpMiscMem, 0b000), Format::kSystem, "rv_i");

  B(kECALL,  "ecall",  kMaskExact, 0x00000073, Format::kSystem, "rv_i");
  B(kEBREAK, "ebreak", kMaskExact, 0x00100073, Format::kSystem, "rv_i");
  B(kMRET,   "mret",   kMaskExact, 0x30200073, Format::kSystem, "rv_system");
  B(kWFI,    "wfi",    kMaskExact, 0x10500073, Format::kSystem, "rv_system");

  B(kCSRRW,  "csrrw",  kMaskF3, match_f3(kOpSystem, 0b001), Format::kCsr, "rv_zicsr");
  B(kCSRRS,  "csrrs",  kMaskF3, match_f3(kOpSystem, 0b010), Format::kCsr, "rv_zicsr");
  B(kCSRRC,  "csrrc",  kMaskF3, match_f3(kOpSystem, 0b011), Format::kCsr, "rv_zicsr");
  B(kCSRRWI, "csrrwi", kMaskF3, match_f3(kOpSystem, 0b101), Format::kCsr, "rv_zicsr");
  B(kCSRRSI, "csrrsi", kMaskF3, match_f3(kOpSystem, 0b110), Format::kCsr, "rv_zicsr");
  B(kCSRRCI, "csrrci", kMaskF3, match_f3(kOpSystem, 0b111), Format::kCsr, "rv_zicsr");

  B(kMUL,    "mul",    kMaskF7F3, match_f7f3(kOpReg, 0b000, 1), Format::kR, "rv_m");
  B(kMULH,   "mulh",   kMaskF7F3, match_f7f3(kOpReg, 0b001, 1), Format::kR, "rv_m");
  B(kMULHSU, "mulhsu", kMaskF7F3, match_f7f3(kOpReg, 0b010, 1), Format::kR, "rv_m");
  B(kMULHU,  "mulhu",  kMaskF7F3, match_f7f3(kOpReg, 0b011, 1), Format::kR, "rv_m");
  B(kDIV,    "div",    kMaskF7F3, match_f7f3(kOpReg, 0b100, 1), Format::kR, "rv_m");
  B(kDIVU,   "divu",   kMaskF7F3, match_f7f3(kOpReg, 0b101, 1), Format::kR, "rv_m");
  B(kREM,    "rem",    kMaskF7F3, match_f7f3(kOpReg, 0b110, 1), Format::kR, "rv_m");
  B(kREMU,   "remu",   kMaskF7F3, match_f7f3(kOpReg, 0b111, 1), Format::kR, "rv_m");

  assert(entries_.size() == kNumBuiltinOps);
}

void OpcodeTable::add_builtin(OpcodeId id, const char* name, uint32_t mask,
                              uint32_t match, Format format,
                              const char* extension) {
  assert(id == entries_.size() && "builtin ids must be registered in order");
  entries_.push_back(OpcodeInfo{id, name, mask, match, format, extension});
  index(entries_.back());
}

std::optional<OpcodeId> OpcodeTable::add(const std::string& name,
                                         uint32_t mask, uint32_t match,
                                         Format format,
                                         const std::string& extension) {
  if ((mask & 0x7f) != 0x7f) return std::nullopt;  // must pin the major opcode
  if ((match & ~mask) != 0) return std::nullopt;   // match outside mask bits
  if (by_name(name)) return std::nullopt;
  // Overlap check: two encodings collide iff they agree on all jointly
  // constrained bits — then a word matching the more constrained one also
  // matches the other.
  for (const OpcodeInfo& other : entries_) {
    uint32_t joint = mask & other.mask;
    if ((match & joint) == (other.match & joint)) return std::nullopt;
  }
  OpcodeId id = static_cast<OpcodeId>(entries_.size());
  entries_.push_back(OpcodeInfo{id, name, mask, match, format, extension});
  index(entries_.back());
  return id;
}

void OpcodeTable::index(const OpcodeInfo& info) {
  uint32_t major = info.match & 0x7f;
  auto& bucket = buckets_[major];
  bucket.push_back(info.id);
  std::sort(bucket.begin(), bucket.end(), [this](uint32_t a, uint32_t b) {
    return std::popcount(entries_[a].mask) > std::popcount(entries_[b].mask);
  });
}

const OpcodeInfo* OpcodeTable::lookup(uint32_t word) const {
  for (uint32_t id : buckets_[word & 0x7f]) {
    const OpcodeInfo& info = entries_[id];
    if ((word & info.mask) == info.match) return &info;
  }
  return nullptr;
}

const OpcodeInfo* OpcodeTable::by_name(const std::string& name) const {
  for (const OpcodeInfo& info : entries_)
    if (info.name == name) return &info;
  return nullptr;
}

}  // namespace binsym::isa
