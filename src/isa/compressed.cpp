#include "isa/compressed.hpp"

#include "isa/encoding.hpp"
#include "support/bits.hpp"

namespace binsym::isa {

namespace {

// Field helpers on the 16-bit word.
constexpr uint32_t bits(uint16_t w, unsigned hi, unsigned lo) {
  return extract_bits(w, hi, lo);
}

/// rd'/rs' 3-bit register fields map to x8..x15.
constexpr uint32_t reg3(uint32_t field) { return 8 + field; }

// Base-ISA opcodes used by the expansions.
constexpr uint32_t kOpLoad = 0b0000011, kOpStore = 0b0100011;
constexpr uint32_t kOpImm = 0b0010011, kOpReg = 0b0110011;
constexpr uint32_t kOpLui = 0b0110111, kOpJal = 0b1101111;
constexpr uint32_t kOpJalr = 0b1100111, kOpBranch = 0b1100011;

/// CJ-format jump offset (c.j / c.jal): imm[11|4|9:8|10|6|7|3:1|5].
constexpr uint32_t cj_offset(uint16_t w) {
  uint32_t imm = (bits(w, 12, 12) << 11) | (bits(w, 11, 11) << 4) |
                 (bits(w, 10, 9) << 8) | (bits(w, 8, 8) << 10) |
                 (bits(w, 7, 7) << 6) | (bits(w, 6, 6) << 7) |
                 (bits(w, 5, 3) << 1) | (bits(w, 2, 2) << 5);
  return static_cast<uint32_t>(sext(imm, 12, 32));
}

/// CB-format branch offset (c.beqz / c.bnez): imm[8|4:3] ... [7:6|2:1|5].
constexpr uint32_t cb_offset(uint16_t w) {
  uint32_t imm = (bits(w, 12, 12) << 8) | (bits(w, 11, 10) << 3) |
                 (bits(w, 6, 5) << 6) | (bits(w, 4, 3) << 1) |
                 (bits(w, 2, 2) << 5);
  return static_cast<uint32_t>(sext(imm, 9, 32));
}

/// CI-format 6-bit signed immediate: imm[5] = bit 12, imm[4:0] = bits 6:2.
constexpr uint32_t ci_imm(uint16_t w) {
  uint32_t imm = (bits(w, 12, 12) << 5) | bits(w, 6, 2);
  return static_cast<uint32_t>(sext(imm, 6, 32));
}

std::optional<uint32_t> expand_q0(uint16_t w) {
  switch (bits(w, 15, 13)) {
    case 0b000: {  // c.addi4spn rd', nzuimm
      uint32_t imm = (bits(w, 10, 7) << 6) | (bits(w, 12, 11) << 4) |
                     (bits(w, 6, 6) << 2) | (bits(w, 5, 5) << 3);
      if (imm == 0) return std::nullopt;  // includes the all-zero illegal
      return encode_i(kOpImm, 0b000, reg3(bits(w, 4, 2)), 2, imm);
    }
    case 0b010: {  // c.lw rd', uimm(rs1')
      uint32_t imm = (bits(w, 12, 10) << 3) | (bits(w, 6, 6) << 2) |
                     (bits(w, 5, 5) << 6);
      return encode_i(kOpLoad, 0b010, reg3(bits(w, 4, 2)),
                      reg3(bits(w, 9, 7)), imm);
    }
    case 0b110: {  // c.sw rs2', uimm(rs1')
      uint32_t imm = (bits(w, 12, 10) << 3) | (bits(w, 6, 6) << 2) |
                     (bits(w, 5, 5) << 6);
      return encode_s(kOpStore, 0b010, reg3(bits(w, 9, 7)),
                      reg3(bits(w, 4, 2)), imm);
    }
    default:
      return std::nullopt;  // FP loads/stores, reserved
  }
}

std::optional<uint32_t> expand_q1(uint16_t w) {
  uint32_t rd = bits(w, 11, 7);
  switch (bits(w, 15, 13)) {
    case 0b000:  // c.nop / c.addi rd, nzimm
      return encode_i(kOpImm, 0b000, rd, rd, ci_imm(w));
    case 0b001:  // c.jal (RV32)
      return encode_j(kOpJal, 1, cj_offset(w));
    case 0b010:  // c.li rd, imm
      return encode_i(kOpImm, 0b000, rd, 0, ci_imm(w));
    case 0b011: {
      if (rd == 2) {  // c.addi16sp
        uint32_t imm = (bits(w, 12, 12) << 9) | (bits(w, 6, 6) << 4) |
                       (bits(w, 5, 5) << 6) | (bits(w, 4, 3) << 7) |
                       (bits(w, 2, 2) << 5);
        imm = static_cast<uint32_t>(sext(imm, 10, 32));
        if (imm == 0) return std::nullopt;
        return encode_i(kOpImm, 0b000, 2, 2, imm);
      }
      // c.lui rd, nzimm (rd != 0, 2): value nzimm6 << 12, sign-extended.
      uint32_t imm6 = (bits(w, 12, 12) << 5) | bits(w, 6, 2);
      if (imm6 == 0 || rd == 0) return std::nullopt;
      uint32_t value = static_cast<uint32_t>(sext(imm6, 6, 32)) << 12;
      return encode_u(kOpLui, rd, value);
    }
    case 0b100: {  // misc-alu on rd'
      uint32_t rdp = reg3(bits(w, 9, 7));
      uint32_t rs2p = reg3(bits(w, 4, 2));
      switch (bits(w, 11, 10)) {
        case 0b00: {  // c.srli
          if (bits(w, 12, 12)) return std::nullopt;  // shamt[5] reserved RV32
          return encode_i(kOpImm, 0b101, rdp, rdp, bits(w, 6, 2));
        }
        case 0b01: {  // c.srai
          if (bits(w, 12, 12)) return std::nullopt;
          return encode_i(kOpImm, 0b101, rdp, rdp, bits(w, 6, 2)) |
                 (0b0100000u << 25);
        }
        case 0b10:  // c.andi
          return encode_i(kOpImm, 0b111, rdp, rdp, ci_imm(w));
        default:    // register-register
          if (bits(w, 12, 12)) return std::nullopt;  // RV64 c.subw/addw
          switch (bits(w, 6, 5)) {
            case 0b00: return encode_r(kOpReg, 0b000, 0b0100000, rdp, rdp, rs2p);  // c.sub
            case 0b01: return encode_r(kOpReg, 0b100, 0, rdp, rdp, rs2p);  // c.xor
            case 0b10: return encode_r(kOpReg, 0b110, 0, rdp, rdp, rs2p);  // c.or
            default:   return encode_r(kOpReg, 0b111, 0, rdp, rdp, rs2p);  // c.and
          }
      }
    }
    case 0b101:  // c.j
      return encode_j(kOpJal, 0, cj_offset(w));
    case 0b110:  // c.beqz rs1', offset
      return encode_b(kOpBranch, 0b000, reg3(bits(w, 9, 7)), 0, cb_offset(w));
    case 0b111:  // c.bnez
      return encode_b(kOpBranch, 0b001, reg3(bits(w, 9, 7)), 0, cb_offset(w));
    default:
      return std::nullopt;
  }
}

std::optional<uint32_t> expand_q2(uint16_t w) {
  uint32_t rd = bits(w, 11, 7);
  uint32_t rs2 = bits(w, 6, 2);
  switch (bits(w, 15, 13)) {
    case 0b000: {  // c.slli
      if (bits(w, 12, 12)) return std::nullopt;  // RV32 reserved
      return encode_i(kOpImm, 0b001, rd, rd, bits(w, 6, 2));
    }
    case 0b010: {  // c.lwsp rd != 0
      if (rd == 0) return std::nullopt;
      uint32_t imm = (bits(w, 12, 12) << 5) | (bits(w, 6, 4) << 2) |
                     (bits(w, 3, 2) << 6);
      return encode_i(kOpLoad, 0b010, rd, 2, imm);
    }
    case 0b100: {
      if (bits(w, 12, 12) == 0) {
        if (rs2 == 0) {  // c.jr rs1 != 0
          if (rd == 0) return std::nullopt;
          return encode_i(kOpJalr, 0b000, 0, rd, 0);
        }
        // c.mv rd, rs2  (rd == 0 is a hint; expand anyway, x0 sinks it)
        return encode_r(kOpReg, 0b000, 0, rd, 0, rs2);
      }
      if (rs2 == 0) {
        if (rd == 0) return 0x00100073;  // c.ebreak
        return encode_i(kOpJalr, 0b000, 1, rd, 0);  // c.jalr
      }
      return encode_r(kOpReg, 0b000, 0, rd, rd, rs2);  // c.add
    }
    case 0b110: {  // c.swsp rs2, uimm(x2)
      uint32_t imm = (bits(w, 12, 9) << 2) | (bits(w, 8, 7) << 6);
      return encode_s(kOpStore, 0b010, 2, rs2, imm);
    }
    default:
      return std::nullopt;  // FP, reserved
  }
}

}  // namespace

std::optional<uint32_t> expand_compressed(uint16_t halfword) {
  if (!is_compressed(halfword)) return std::nullopt;
  switch (halfword & 3) {
    case 0b00: return expand_q0(halfword);
    case 0b01: return expand_q1(halfword);
    default:   return expand_q2(halfword);
  }
}

}  // namespace binsym::isa
