// Instruction decoder: word -> (opcode identity, operand fields).
//
// In LibRISCV terms this implements `decodeAndRead*Type`: the decoded
// operand fields are exactly the inputs the formal semantics reference.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/opcodes.hpp"

namespace binsym::isa {

/// A decoded instruction. Field accessors are valid only when the
/// instruction's format defines them (checked in debug builds). For
/// compressed instructions, `word` holds the expanded 32-bit equivalent
/// and `size` is 2 — operand extraction works on the expansion; only the
/// pc advance and link values depend on `size`.
struct Decoded {
  const OpcodeInfo* info = nullptr;
  uint32_t word = 0;
  unsigned size = 4;

  OpcodeId id() const { return info->id; }
  Format format() const { return info->format; }

  uint32_t rd() const { return isa::rd(word); }
  uint32_t rs1() const { return isa::rs1(word); }
  uint32_t rs2() const { return isa::rs2(word); }
  uint32_t rs3() const { return isa::rs3(word); }
  uint32_t shamt() const { return isa::shamt(word); }
  uint32_t csr() const { return isa::csr_index(word); }

  /// Immediate according to the instruction's format (sign-extended).
  uint32_t immediate() const;
};

class Decoder {
 public:
  explicit Decoder(const OpcodeTable& table) : table_(table) {}

  /// Decode one instruction from up to 32 fetched bits; compressed
  /// instructions (low bits != 0b11) are expanded first and report size 2.
  std::optional<Decoded> decode(uint32_t word) const;

  const OpcodeTable& table() const { return table_; }

 private:
  const OpcodeTable& table_;
};

}  // namespace binsym::isa
