// Disassembler: decoded instruction -> canonical assembly text.
//
// Output round-trips through the project's assembler (tested), and is used
// by execution traces and diagnostics.
#pragma once

#include <string>

#include "isa/decoder.hpp"

namespace binsym::isa {

/// Render `decoded` at address `pc` (branch/jump targets print absolute).
std::string disassemble(const Decoded& decoded, uint32_t pc = 0);

/// Decode + render; returns ".word 0x…" for undecodable words.
std::string disassemble_word(const Decoder& decoder, uint32_t word,
                             uint32_t pc = 0);

}  // namespace binsym::isa
