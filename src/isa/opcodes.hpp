// Opcode registry — the C++ twin of the riscv-opcodes instruction tables.
//
// Every instruction is described by (mask, match, format, extension); the
// registry is extensible at runtime exactly like the paper's Fig. 3 flow:
// custom instructions register an encoding here and their semantics in
// spec::Registry, and every downstream tool (decoder, disassembler, both
// interpreters, the SE engines, the assembler) picks them up automatically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/encoding.hpp"

namespace binsym::isa {

/// Dense instruction identity assigned at registration time. Builtin RV32IM
/// instructions receive stable well-known ids (see `Op` below); custom
/// instructions get the next free id.
using OpcodeId = uint16_t;

/// Well-known builtin instruction ids (RV32I + M + Zicsr subset).
/// The numeric values are stable because spec/oracle tables index by them.
enum Op : OpcodeId {
  kLUI, kAUIPC, kJAL, kJALR,
  kBEQ, kBNE, kBLT, kBGE, kBLTU, kBGEU,
  kLB, kLH, kLW, kLBU, kLHU,
  kSB, kSH, kSW,
  kADDI, kSLTI, kSLTIU, kXORI, kORI, kANDI,
  kSLLI, kSRLI, kSRAI,
  kADD, kSUB, kSLL, kSLT, kSLTU, kXOR, kSRL, kSRA, kOR, kAND,
  kFENCE,
  kECALL, kEBREAK, kMRET, kWFI,
  kCSRRW, kCSRRS, kCSRRC, kCSRRWI, kCSRRSI, kCSRRCI,
  kMUL, kMULH, kMULHSU, kMULHU, kDIV, kDIVU, kREM, kREMU,
  kNumBuiltinOps,
};

struct OpcodeInfo {
  OpcodeId id;
  std::string name;       // lower-case mnemonic, e.g. "divu"
  uint32_t mask;
  uint32_t match;
  Format format;
  std::string extension;  // e.g. "rv_i", "rv_m", "rv_zimadd"
};

class OpcodeTable {
 public:
  /// Table pre-populated with RV32I, RV32M and the Zicsr/system subset.
  OpcodeTable();

  /// Register a (custom) instruction. Returns the assigned id. Fails (via
  /// returned nullopt) if the encoding overlaps an existing instruction,
  /// i.e. some word would match both — the same check riscv-opcodes does.
  std::optional<OpcodeId> add(const std::string& name, uint32_t mask,
                              uint32_t match, Format format,
                              const std::string& extension);

  /// Decode lookup: most-specific (highest mask popcount) match wins.
  const OpcodeInfo* lookup(uint32_t word) const;

  const OpcodeInfo* by_name(const std::string& name) const;
  const OpcodeInfo& by_id(OpcodeId id) const { return entries_[id]; }
  size_t size() const { return entries_.size(); }
  const std::vector<OpcodeInfo>& entries() const { return entries_; }

 private:
  void add_builtin(OpcodeId id, const char* name, uint32_t mask,
                   uint32_t match, Format format, const char* extension);
  void index(const OpcodeInfo& info);

  std::vector<OpcodeInfo> entries_;
  // Buckets by major opcode (bits [6:0]); each bucket is kept sorted by
  // descending mask popcount so the first hit is the most specific one.
  std::vector<std::vector<uint32_t>> buckets_;
};

}  // namespace binsym::isa
