#include "isa/decoder.hpp"

#include "isa/compressed.hpp"

namespace binsym::isa {

std::optional<Decoded> Decoder::decode(uint32_t word) const {
  unsigned size = 4;
  if (is_compressed(word)) {
    auto expanded = expand_compressed(static_cast<uint16_t>(word));
    if (!expanded) return std::nullopt;
    word = *expanded;
    size = 2;
  }
  const OpcodeInfo* info = table_.lookup(word);
  if (!info) return std::nullopt;
  return Decoded{info, word, size};
}

uint32_t Decoded::immediate() const {
  switch (format()) {
    case Format::kI:      return imm_i(word);
    case Format::kIShift: return shamt();
    case Format::kS:      return imm_s(word);
    case Format::kB:      return imm_b(word);
    case Format::kU:      return imm_u(word);
    case Format::kJ:      return imm_j(word);
    case Format::kCsr:    return isa::rs1(word);  // zimm for CSRR*I
    case Format::kR:
    case Format::kR4:
    case Format::kSystem:
      return 0;
  }
  return 0;
}

}  // namespace binsym::isa
