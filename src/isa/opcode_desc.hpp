// Parser for riscv-opcodes-style instruction descriptions — the exact
// format of the paper's Fig. 3:
//
//   madd:
//     encoding: '-----01------------------1000011'
//     extension: [rv_zimadd]
//     mask: '0x600007f'
//     match: '0x2000043'
//     variable_fields: [rd, rs1, rs2, rs3]
//
// `encoding` is a 32-character pattern (bit 31 first, '-' = operand bit);
// mask/match are optional and, when present, are validated against the
// pattern. `variable_fields` selects the operand Format. Descriptions can be
// loaded from files or strings and registered into an OpcodeTable, which is
// how the MADD case study extends the toolchain without code changes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "isa/opcodes.hpp"

namespace binsym::isa {

struct OpcodeDesc {
  std::string name;
  uint32_t mask = 0;
  uint32_t match = 0;
  Format format = Format::kR;
  std::string extension;
  std::vector<std::string> variable_fields;
};

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parse zero or more descriptions from `text`. On failure returns the
/// error; on success the list of descriptions in file order.
std::optional<std::vector<OpcodeDesc>> parse_opcode_descs(
    const std::string& text, ParseError* error = nullptr);

/// Map a variable_fields list onto an operand format; nullopt when the
/// combination is not one the DSL supports.
std::optional<Format> format_for_fields(const std::vector<std::string>& fields);

/// Parse and register everything in `text`; returns the assigned ids or
/// nullopt (with `error`) on parse/registration failure.
std::optional<std::vector<OpcodeId>> register_opcode_descs(
    OpcodeTable& table, const std::string& text, ParseError* error = nullptr);

}  // namespace binsym::isa
