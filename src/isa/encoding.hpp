// RV32 instruction word anatomy: operand formats and field extraction.
//
// This mirrors the riscv-opcodes "variable fields": every instruction names
// the fields it uses, and decoding is pure bit slicing per the tables in the
// RISC-V unprivileged specification (v20191213, Sect. 2.2/2.3).
#pragma once

#include <cstdint>
#include <string>

#include "support/bits.hpp"

namespace binsym::isa {

/// Operand format — determines which fields (and which immediate encoding)
/// an instruction's semantics may reference.
enum class Format : uint8_t {
  kR,       // rd, rs1, rs2
  kR4,      // rd, rs1, rs2, rs3 (used by the custom MADD case study)
  kI,       // rd, rs1, imm[11:0]
  kIShift,  // rd, rs1, shamt[4:0] (SLLI/SRLI/SRAI)
  kS,       // rs1, rs2, imm (store)
  kB,       // rs1, rs2, imm (branch)
  kU,       // rd, imm[31:12]
  kJ,       // rd, imm (JAL)
  kSystem,  // no operands (ECALL/EBREAK/MRET/WFI/FENCE)
  kCsr,     // rd, rs1/zimm, csr
};

const char* format_name(Format format);

// -- Register fields. --------------------------------------------------------

constexpr uint32_t rd(uint32_t word) { return (word >> 7) & 0x1f; }
constexpr uint32_t rs1(uint32_t word) { return (word >> 15) & 0x1f; }
constexpr uint32_t rs2(uint32_t word) { return (word >> 20) & 0x1f; }
constexpr uint32_t rs3(uint32_t word) { return (word >> 27) & 0x1f; }
constexpr uint32_t funct3(uint32_t word) { return (word >> 12) & 0x7; }
constexpr uint32_t funct7(uint32_t word) { return (word >> 25) & 0x7f; }
constexpr uint32_t shamt(uint32_t word) { return (word >> 20) & 0x1f; }
constexpr uint32_t csr_index(uint32_t word) { return (word >> 20) & 0xfff; }
constexpr uint32_t major_opcode(uint32_t word) { return word & 0x7f; }

// -- Immediates (already sign-extended to 32 bits where applicable). ---------

constexpr uint32_t imm_i(uint32_t word) {
  return static_cast<uint32_t>(sext(word >> 20, 12, 32));
}

constexpr uint32_t imm_s(uint32_t word) {
  uint32_t imm = ((word >> 25) << 5) | ((word >> 7) & 0x1f);
  return static_cast<uint32_t>(sext(imm, 12, 32));
}

constexpr uint32_t imm_b(uint32_t word) {
  uint32_t imm = (extract_bits(word, 31, 31) << 12) |
                 (extract_bits(word, 7, 7) << 11) |
                 (extract_bits(word, 30, 25) << 5) |
                 (extract_bits(word, 11, 8) << 1);
  return static_cast<uint32_t>(sext(imm, 13, 32));
}

constexpr uint32_t imm_u(uint32_t word) { return word & 0xfffff000u; }

constexpr uint32_t imm_j(uint32_t word) {
  uint32_t imm = (extract_bits(word, 31, 31) << 20) |
                 (extract_bits(word, 19, 12) << 12) |
                 (extract_bits(word, 20, 20) << 11) |
                 (extract_bits(word, 30, 21) << 1);
  return static_cast<uint32_t>(sext(imm, 21, 32));
}

// -- Instruction word composition (used by the assembler). --------------------

constexpr uint32_t encode_r(uint32_t opcode, uint32_t f3, uint32_t f7,
                            uint32_t rd_, uint32_t rs1_, uint32_t rs2_) {
  return opcode | (rd_ << 7) | (f3 << 12) | (rs1_ << 15) | (rs2_ << 20) |
         (f7 << 25);
}

constexpr uint32_t encode_r4(uint32_t opcode, uint32_t f3, uint32_t f2,
                             uint32_t rd_, uint32_t rs1_, uint32_t rs2_,
                             uint32_t rs3_) {
  return opcode | (rd_ << 7) | (f3 << 12) | (rs1_ << 15) | (rs2_ << 20) |
         (f2 << 25) | (rs3_ << 27);
}

constexpr uint32_t encode_i(uint32_t opcode, uint32_t f3, uint32_t rd_,
                            uint32_t rs1_, uint32_t imm) {
  return opcode | (rd_ << 7) | (f3 << 12) | (rs1_ << 15) |
         ((imm & 0xfff) << 20);
}

constexpr uint32_t encode_s(uint32_t opcode, uint32_t f3, uint32_t rs1_,
                            uint32_t rs2_, uint32_t imm) {
  return opcode | ((imm & 0x1f) << 7) | (f3 << 12) | (rs1_ << 15) |
         (rs2_ << 20) | (((imm >> 5) & 0x7f) << 25);
}

constexpr uint32_t encode_b(uint32_t opcode, uint32_t f3, uint32_t rs1_,
                            uint32_t rs2_, uint32_t imm) {
  return opcode | (extract_bits(imm, 11, 11) << 7) |
         (extract_bits(imm, 4, 1) << 8) | (f3 << 12) | (rs1_ << 15) |
         (rs2_ << 20) | (static_cast<uint32_t>(extract_bits(imm, 10, 5)) << 25) |
         (extract_bits(imm, 12, 12) << 31);
}

constexpr uint32_t encode_u(uint32_t opcode, uint32_t rd_, uint32_t imm) {
  return opcode | (rd_ << 7) | (imm & 0xfffff000u);
}

constexpr uint32_t encode_j(uint32_t opcode, uint32_t rd_, uint32_t imm) {
  return opcode | (rd_ << 7) |
         (static_cast<uint32_t>(extract_bits(imm, 19, 12)) << 12) |
         (extract_bits(imm, 11, 11) << 20) |
         (static_cast<uint32_t>(extract_bits(imm, 10, 1)) << 21) |
         (extract_bits(imm, 20, 20) << 31);
}

/// ABI register name ("zero", "ra", "sp", ... "t6") for x0..x31.
const char* abi_reg_name(uint32_t reg);

/// Parse a register name: both "x7" and ABI names; returns -1 on failure.
int parse_reg_name(const std::string& name);

}  // namespace binsym::isa
