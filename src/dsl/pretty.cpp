#include "dsl/pretty.hpp"

#include "support/format.hpp"

namespace binsym::dsl {

namespace {

std::string indent_str(unsigned n) { return std::string(n, ' '); }

}  // namespace

std::string pretty_expr(const ExprPtr& expr) {
  if (!expr) return "<null>";
  const Expr& e = *expr;
  switch (e.op) {
    case ExprOp::kConst:
      return strprintf("0x%llx", static_cast<unsigned long long>(e.constant));
    case ExprOp::kOperand:
      return operand_name(e.operand);
    case ExprOp::kLetRef:
      return strprintf("v%u", e.let_index);
    case ExprOp::kLoad:
      return strprintf("(Load%u%s %s)", e.aux0 * 8, e.aux1 ? "s" : "u",
                       pretty_expr(e.a).c_str());
    case ExprOp::kNot:
      return "(Not " + pretty_expr(e.a) + ")";
    case ExprOp::kNeg:
      return "(Neg " + pretty_expr(e.a) + ")";
    case ExprOp::kExtract:
      return strprintf("(extract%u_%u %s)", e.aux0, e.aux1,
                       pretty_expr(e.a).c_str());
    case ExprOp::kZExt:
      return strprintf("(zext%u %s)", e.aux0, pretty_expr(e.a).c_str());
    case ExprOp::kSExt:
      return strprintf("(sext%u %s)", e.aux0, pretty_expr(e.a).c_str());
    case ExprOp::kIte:
      return "(Ite " + pretty_expr(e.a) + " " + pretty_expr(e.b) + " " +
             pretty_expr(e.c) + ")";
    default:
      return "(" + pretty_expr(e.a) + " `" + expr_op_name(e.op) + "` " +
             pretty_expr(e.b) + ")";
  }
}

std::string pretty_block(const Block& block, unsigned indent) {
  std::string out;
  for (const StmtPtr& stmt : block) {
    const Stmt& s = *stmt;
    out += indent_str(indent);
    switch (s.op) {
      case StmtOp::kLet:
        out += strprintf("v%u <- ", s.aux) + pretty_expr(s.value) + "\n";
        break;
      case StmtOp::kWriteRegister:
        out += "WriteRegister rd " + pretty_expr(s.value) + "\n";
        break;
      case StmtOp::kWritePC:
        out += "WritePC " + pretty_expr(s.value) + "\n";
        break;
      case StmtOp::kStore:
        out += strprintf("Store%u ", s.aux * 8) + pretty_expr(s.addr) + " " +
               pretty_expr(s.value) + "\n";
        break;
      case StmtOp::kWriteCsr:
        out += "WriteCsr csr " + pretty_expr(s.value) + "\n";
        break;
      case StmtOp::kIfElse:
        out += "runIfElse " + pretty_expr(s.addr) + "\n";
        out += indent_str(indent + 2) + "do\n" +
               pretty_block(s.then_block, indent + 4);
        out += indent_str(indent + 2) + "do\n" +
               pretty_block(s.else_block, indent + 4);
        break;
      case StmtOp::kEcall:
        out += "Ecall\n";
        break;
      case StmtOp::kEbreak:
        out += "Ebreak\n";
        break;
      case StmtOp::kFence:
        out += "Fence\n";
        break;
    }
  }
  return out;
}

std::string pretty_semantics(const std::string& name,
                             const Semantics& semantics) {
  return "instrSemantics " + name + " = do\n" +
         pretty_block(semantics.body, 2);
}

}  // namespace binsym::dsl
