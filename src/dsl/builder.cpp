#include "dsl/builder.hpp"

#include <cassert>

#include "support/bits.hpp"

namespace binsym::dsl {

namespace {

ExprPtr make_expr(Expr expr) { return std::make_shared<const Expr>(std::move(expr)); }

StmtPtr make_stmt(Stmt stmt) { return std::make_shared<const Stmt>(std::move(stmt)); }

}  // namespace

E constant(uint64_t value, unsigned width) {
  Expr e;
  e.op = ExprOp::kConst;
  e.width = width;
  e.constant = truncate(value, width);
  return E{make_expr(std::move(e))};
}

E operand(Operand op) {
  Expr e;
  e.op = ExprOp::kOperand;
  e.width = 32;
  e.operand = op;
  return E{make_expr(std::move(e))};
}

E un(ExprOp op, E a) {
  Expr e;
  e.op = op;
  e.width = a.node->width;
  e.a = a.node;
  return E{make_expr(std::move(e))};
}

E bin(ExprOp op, E a, E b) {
  Expr e;
  e.op = op;
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kUlt:
    case ExprOp::kUle:
    case ExprOp::kSlt:
    case ExprOp::kSle:
      e.width = 1;
      break;
    case ExprOp::kConcat:
      e.width = a.node->width + b.node->width;
      break;
    default:
      e.width = a.node->width;
      break;
  }
  e.a = a.node;
  e.b = b.node;
  return E{make_expr(std::move(e))};
}

E extract(E a, unsigned hi, unsigned lo) {
  assert(hi >= lo);
  Expr e;
  e.op = ExprOp::kExtract;
  e.width = hi - lo + 1;
  e.aux0 = hi;
  e.aux1 = lo;
  e.a = a.node;
  return E{make_expr(std::move(e))};
}

E zext(E a, unsigned to_width) {
  if (a.node->width == to_width) return a;
  Expr e;
  e.op = ExprOp::kZExt;
  e.width = to_width;
  e.aux0 = to_width;
  e.a = a.node;
  return E{make_expr(std::move(e))};
}

E sext(E a, unsigned to_width) {
  if (a.node->width == to_width) return a;
  Expr e;
  e.op = ExprOp::kSExt;
  e.width = to_width;
  e.aux0 = to_width;
  e.a = a.node;
  return E{make_expr(std::move(e))};
}

E ite(E cond, E then_value, E else_value) {
  Expr e;
  e.op = ExprOp::kIte;
  e.width = then_value.node->width;
  e.a = cond.node;
  e.b = then_value.node;
  e.c = else_value.node;
  return E{make_expr(std::move(e))};
}

void SemBuilder::write_register(E value) {
  Stmt s;
  s.op = StmtOp::kWriteRegister;
  s.value = value.node;
  block_.push_back(make_stmt(std::move(s)));
}

void SemBuilder::write_pc(E target) {
  Stmt s;
  s.op = StmtOp::kWritePC;
  s.value = target.node;
  block_.push_back(make_stmt(std::move(s)));
}

E SemBuilder::let_(E value) {
  unsigned index = (*let_counter_)++;
  Stmt s;
  s.op = StmtOp::kLet;
  s.aux = index;
  s.value = value.node;
  block_.push_back(make_stmt(std::move(s)));

  Expr ref;
  ref.op = ExprOp::kLetRef;
  ref.width = value.node->width;
  ref.let_index = index;
  return E{make_expr(std::move(ref))};
}

E SemBuilder::load(unsigned bytes, E addr, bool sign_extend) {
  assert(bytes == 1 || bytes == 2 || bytes == 4);
  Expr e;
  e.op = ExprOp::kLoad;
  e.width = bytes * 8;
  e.aux0 = bytes;
  e.aux1 = sign_extend ? 1 : 0;
  e.a = addr.node;
  // Loads are stateful: bind the result so the access happens exactly once,
  // in statement order.
  return let_(E{make_expr(std::move(e))});
}

void SemBuilder::store(unsigned bytes, E addr, E value) {
  assert(bytes == 1 || bytes == 2 || bytes == 4);
  Stmt s;
  s.op = StmtOp::kStore;
  s.aux = bytes;
  s.addr = addr.node;
  s.value = value.node;
  block_.push_back(make_stmt(std::move(s)));
}

void SemBuilder::write_csr(E value) {
  Stmt s;
  s.op = StmtOp::kWriteCsr;
  s.value = value.node;
  block_.push_back(make_stmt(std::move(s)));
}

void SemBuilder::run_if(E cond, const BlockFn& then_fn) {
  run_if_else(cond, then_fn, [](SemBuilder&) {});
}

void SemBuilder::run_if_else(E cond, const BlockFn& then_fn,
                             const BlockFn& else_fn) {
  SemBuilder then_builder(let_counter_);
  then_fn(then_builder);
  SemBuilder else_builder(let_counter_);
  else_fn(else_builder);

  Stmt s;
  s.op = StmtOp::kIfElse;
  s.addr = cond.node;
  s.then_block = std::move(then_builder.block_);
  s.else_block = std::move(else_builder.block_);
  block_.push_back(make_stmt(std::move(s)));
}

void SemBuilder::ecall() {
  Stmt s;
  s.op = StmtOp::kEcall;
  block_.push_back(make_stmt(std::move(s)));
}

void SemBuilder::ebreak() {
  Stmt s;
  s.op = StmtOp::kEbreak;
  block_.push_back(make_stmt(std::move(s)));
}

void SemBuilder::fence() {
  Stmt s;
  s.op = StmtOp::kFence;
  block_.push_back(make_stmt(std::move(s)));
}

Semantics define_semantics(const SemBuilder::BlockFn& body) {
  unsigned let_counter = 0;
  SemBuilder builder(&let_counter);
  body(builder);
  Semantics semantics;
  semantics.body = builder.block();
  semantics.num_lets = let_counter;
  return semantics;
}

}  // namespace binsym::dsl
