// The formal ISA specification language (deep embedding).
//
// This is the C++ twin of LibRISCV's free-monad DSL (paper Sect. III-A):
// instruction behaviour is *data* — a small AST over two groups of language
// primitives:
//
//   * arithmetic/logic primitives (AddOp, UDivOp, SextOp, ...), appearing as
//     expression nodes, and
//   * stateful primitives (WriteRegister, Load, Store, WritePC, runIfElse,
//     ...), appearing as statement nodes.
//
// Interpreters (concrete ISS, concolic SE, ...) process this AST through the
// primitive interface in interp/prims.hpp; none of them ever mention an
// instruction by name. New instructions that can be expressed in these
// primitives therefore work in every interpreter with zero engine changes —
// the property the paper's Sect. IV case study demonstrates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace binsym::dsl {

/// Decoded-operand sources available to semantics, the output of the
/// `decodeAndRead*Type` step in LibRISCV notation. All are 32 bits wide.
enum class Operand : uint8_t {
  kRs1Val,   // value of the register selected by the rs1 field
  kRs2Val,
  kRs3Val,   // R4 formats only
  kImm,      // format-specific immediate, already sign-/zero-extended
  kShamt,    // 5-bit shift amount field, zero-extended
  kPC,       // address of the executing instruction
  kCsrVal,   // value of the CSR addressed by the csr field
  kRs1Index, // raw rs1 field (the CSR zimm, and deliberately available so
             // tests can express the angr bug #2 as a *spec* mutation)
  kRs2Index, // raw rs2 field
  kInstrSize,// size of the executing instruction's encoding in bytes (4, or
             // 2 for compressed forms) — link values are pc + size
};

const char* operand_name(Operand operand);

/// Expression operators; semantics follow SMT-LIB (shifts saturate, division
/// is total). The spec layer masks shift amounts explicitly, as the RISC-V
/// manual prescribes.
enum class ExprOp : uint8_t {
  kConst, kOperand, kLetRef, kLoad,
  kNot, kNeg, kExtract, kZExt, kSExt,
  kAdd, kSub, kMul, kUDiv, kURem, kSDiv, kSRem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
  kEq, kUlt, kUle, kSlt, kSle,
  kConcat, kIte,
};

const char* expr_op_name(ExprOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprOp op = ExprOp::kConst;
  unsigned width = 0;     // filled by construction; validated by typecheck
  uint64_t constant = 0;  // kConst
  Operand operand{};      // kOperand
  unsigned let_index = 0; // kLetRef
  unsigned aux0 = 0;      // kExtract hi / kZExt,kSExt target width / kLoad bytes
  unsigned aux1 = 0;      // kExtract lo / kLoad: 1 when sign-extending load
  ExprPtr a, b, c;
};

/// Statement primitives (the stateful half of the language).
enum class StmtOp : uint8_t {
  kLet,           // bind expression value to the next let index
  kWriteRegister, // destination is always the rd field
  kWritePC,
  kStore,         // aux = access size in bytes
  kWriteCsr,
  kIfElse,        // the paper's runIfElse primitive — the only fork point
  kEcall,
  kEbreak,
  kFence,
};

const char* stmt_op_name(StmtOp op);

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  StmtOp op;
  unsigned aux = 0;  // kStore: bytes; kLet: assigned let index
  ExprPtr value;     // kLet/kWriteRegister/kWritePC/kWriteCsr/kStore value
  ExprPtr addr;      // kStore address / kIfElse condition
  Block then_block;  // kIfElse
  Block else_block;  // kIfElse
};

/// Complete formal semantics of one instruction.
struct Semantics {
  Block body;
  unsigned num_lets = 0;  // number of kLet bindings anywhere in the body
};

}  // namespace binsym::dsl
