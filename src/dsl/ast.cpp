#include "dsl/ast.hpp"

namespace binsym::dsl {

const char* operand_name(Operand operand) {
  switch (operand) {
    case Operand::kRs1Val:   return "rs1-val";
    case Operand::kRs2Val:   return "rs2-val";
    case Operand::kRs3Val:   return "rs3-val";
    case Operand::kImm:      return "imm";
    case Operand::kShamt:    return "shamt";
    case Operand::kPC:       return "pc";
    case Operand::kCsrVal:   return "csr-val";
    case Operand::kRs1Index: return "rs1-index";
    case Operand::kRs2Index: return "rs2-index";
    case Operand::kInstrSize: return "instr-size";
  }
  return "?";
}

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kConst:   return "Const";
    case ExprOp::kOperand: return "Operand";
    case ExprOp::kLetRef:  return "LetRef";
    case ExprOp::kLoad:    return "Load";
    case ExprOp::kNot:     return "Not";
    case ExprOp::kNeg:     return "Neg";
    case ExprOp::kExtract: return "Extract";
    case ExprOp::kZExt:    return "ZExt";
    case ExprOp::kSExt:    return "Sext";
    case ExprOp::kAdd:     return "Add";
    case ExprOp::kSub:     return "Sub";
    case ExprOp::kMul:     return "Mul";
    case ExprOp::kUDiv:    return "UDiv";
    case ExprOp::kURem:    return "URem";
    case ExprOp::kSDiv:    return "SDiv";
    case ExprOp::kSRem:    return "SRem";
    case ExprOp::kAnd:     return "And";
    case ExprOp::kOr:      return "Or";
    case ExprOp::kXor:     return "Xor";
    case ExprOp::kShl:     return "Shl";
    case ExprOp::kLShr:    return "LShr";
    case ExprOp::kAShr:    return "AShr";
    case ExprOp::kEq:      return "EqInt";
    case ExprOp::kUlt:     return "ULt";
    case ExprOp::kUle:     return "ULe";
    case ExprOp::kSlt:     return "SLt";
    case ExprOp::kSle:     return "SLe";
    case ExprOp::kConcat:  return "Concat";
    case ExprOp::kIte:     return "Ite";
  }
  return "?";
}

const char* stmt_op_name(StmtOp op) {
  switch (op) {
    case StmtOp::kLet:           return "Let";
    case StmtOp::kWriteRegister: return "WriteRegister";
    case StmtOp::kWritePC:       return "WritePC";
    case StmtOp::kStore:         return "Store";
    case StmtOp::kWriteCsr:      return "WriteCsr";
    case StmtOp::kIfElse:        return "runIfElse";
    case StmtOp::kEcall:         return "Ecall";
    case StmtOp::kEbreak:        return "Ebreak";
    case StmtOp::kFence:         return "Fence";
  }
  return "?";
}

}  // namespace binsym::dsl
