// Pretty printer for specification ASTs.
//
// Renders semantics in a LibRISCV-flavoured notation (paper Fig. 2/4), e.g.
//
//   instrSemantics DIVU = do
//     runIfElse (rs2-val `EqInt` 0x0)
//       do WriteRegister rd 0xffffffff
//       do WriteRegister rd (rs1-val `UDiv` rs2-val)
//
// Used for documentation generation, golden tests and debugging; together
// with the typechecker it makes the spec inspectable as an artifact.
#pragma once

#include <string>

#include "dsl/ast.hpp"

namespace binsym::dsl {

std::string pretty_expr(const ExprPtr& expr);
std::string pretty_block(const Block& block, unsigned indent = 2);
std::string pretty_semantics(const std::string& name,
                             const Semantics& semantics);

}  // namespace binsym::dsl
