// Fluent construction API for the specification DSL.
//
// Lets C++ semantics read close to the paper's Haskell (Fig. 2, Fig. 4):
//
//   // instrSemantics DIVU = do
//   Semantics divu = define_semantics([](SemBuilder& s) {
//     E rs1 = s.rs1(), rs2 = s.rs2();
//     s.run_if_else(eq(rs2, c32(0)),
//                   [&](SemBuilder& t) { t.write_register(c32(0xffffffff)); },
//                   [&](SemBuilder& t) { t.write_register(udiv(rs1, rs2)); });
//   });
//
// Free functions build expressions; SemBuilder methods append statements.
#pragma once

#include <cstdint>
#include <functional>

#include "dsl/ast.hpp"

namespace binsym::dsl {

/// Lightweight expression handle used by the builder combinators.
struct E {
  ExprPtr node;
};

// -- Expression constructors (pure). -----------------------------------------

E constant(uint64_t value, unsigned width);
inline E c32(uint32_t value) { return constant(value, 32); }
E operand(Operand op);

E un(ExprOp op, E a);
E bin(ExprOp op, E a, E b);

inline E not_(E a) { return un(ExprOp::kNot, a); }
inline E neg(E a) { return un(ExprOp::kNeg, a); }
E extract(E a, unsigned hi, unsigned lo);
E zext(E a, unsigned to_width);
E sext(E a, unsigned to_width);

inline E add(E a, E b) { return bin(ExprOp::kAdd, a, b); }
inline E sub(E a, E b) { return bin(ExprOp::kSub, a, b); }
inline E mul(E a, E b) { return bin(ExprOp::kMul, a, b); }
inline E udiv(E a, E b) { return bin(ExprOp::kUDiv, a, b); }
inline E urem(E a, E b) { return bin(ExprOp::kURem, a, b); }
inline E sdiv(E a, E b) { return bin(ExprOp::kSDiv, a, b); }
inline E srem(E a, E b) { return bin(ExprOp::kSRem, a, b); }
inline E and_(E a, E b) { return bin(ExprOp::kAnd, a, b); }
inline E or_(E a, E b) { return bin(ExprOp::kOr, a, b); }
inline E xor_(E a, E b) { return bin(ExprOp::kXor, a, b); }
inline E shl(E a, E amount) { return bin(ExprOp::kShl, a, amount); }
inline E lshr(E a, E amount) { return bin(ExprOp::kLShr, a, amount); }
inline E ashr(E a, E amount) { return bin(ExprOp::kAShr, a, amount); }

inline E eq(E a, E b) { return bin(ExprOp::kEq, a, b); }
inline E ne(E a, E b) { return not_(eq(a, b)); }
inline E ult(E a, E b) { return bin(ExprOp::kUlt, a, b); }
inline E ule(E a, E b) { return bin(ExprOp::kUle, a, b); }
inline E ugt(E a, E b) { return ult(b, a); }
inline E uge(E a, E b) { return ule(b, a); }
inline E slt(E a, E b) { return bin(ExprOp::kSlt, a, b); }
inline E sle(E a, E b) { return bin(ExprOp::kSle, a, b); }
inline E sgt(E a, E b) { return slt(b, a); }
inline E sge(E a, E b) { return sle(b, a); }

inline E concat(E hi, E lo) { return bin(ExprOp::kConcat, hi, lo); }
E ite(E cond, E then_value, E else_value);

// Operator sugar.
inline E operator+(E a, E b) { return add(a, b); }
inline E operator-(E a, E b) { return sub(a, b); }
inline E operator*(E a, E b) { return mul(a, b); }
inline E operator&(E a, E b) { return and_(a, b); }
inline E operator|(E a, E b) { return or_(a, b); }
inline E operator^(E a, E b) { return xor_(a, b); }

/// Statement-level builder; one instance per (possibly nested) block.
class SemBuilder {
 public:
  using BlockFn = std::function<void(SemBuilder&)>;

  // Decoded operands (LibRISCV's decodeAndRead*Type results).
  E rs1() const { return operand(Operand::kRs1Val); }
  E rs2() const { return operand(Operand::kRs2Val); }
  E rs3() const { return operand(Operand::kRs3Val); }
  E imm() const { return operand(Operand::kImm); }
  E shamt() const { return operand(Operand::kShamt); }
  E pc() const { return operand(Operand::kPC); }
  E csr_val() const { return operand(Operand::kCsrVal); }
  E rs1_index() const { return operand(Operand::kRs1Index); }
  E instr_size() const { return operand(Operand::kInstrSize); }

  // Stateful primitives.
  void write_register(E value);             // destination: rd field
  void write_pc(E target);
  E load(unsigned bytes, E addr, bool sign_extend);  // value via fresh Let
  void store(unsigned bytes, E addr, E value);
  void write_csr(E value);
  void run_if(E cond, const BlockFn& then_fn);
  void run_if_else(E cond, const BlockFn& then_fn, const BlockFn& else_fn);
  void ecall();
  void ebreak();
  void fence();

  /// Explicit let binding (evaluate once, reuse the value).
  E let_(E value);

  const Block& block() const { return block_; }
  unsigned num_lets() const { return *let_counter_; }

 private:
  friend Semantics define_semantics(const SemBuilder::BlockFn& body);
  explicit SemBuilder(unsigned* let_counter) : let_counter_(let_counter) {}

  Block block_;
  unsigned* let_counter_;  // shared across nested blocks of one semantics
};

/// Build a complete instruction semantics.
Semantics define_semantics(const SemBuilder::BlockFn& body);

}  // namespace binsym::dsl
