#include "dsl/typecheck.hpp"

#include "support/format.hpp"

namespace binsym::dsl {

namespace {

class Checker {
 public:
  explicit Checker(isa::Format format) : format_(format) {}

  std::vector<TypeError> run(const Semantics& semantics) {
    let_width_.assign(semantics.num_lets, 0);
    check_block(semantics.body);
    return std::move(errors_);
  }

 private:
  void error(std::string message) { errors_.push_back({std::move(message)}); }

  bool operand_available(Operand operand) const {
    using isa::Format;
    switch (operand) {
      case Operand::kRs1Val:
      case Operand::kRs1Index:
        return format_ == Format::kR || format_ == Format::kR4 ||
               format_ == Format::kI || format_ == Format::kIShift ||
               format_ == Format::kS || format_ == Format::kB ||
               format_ == Format::kCsr;
      case Operand::kRs2Val:
      case Operand::kRs2Index:
        return format_ == Format::kR || format_ == Format::kR4 ||
               format_ == Format::kS || format_ == Format::kB;
      case Operand::kRs3Val:
        return format_ == Format::kR4;
      case Operand::kImm:
        return format_ == Format::kI || format_ == Format::kS ||
               format_ == Format::kB || format_ == Format::kU ||
               format_ == Format::kJ || format_ == Format::kCsr;
      case Operand::kShamt:
        return format_ == Format::kIShift;
      case Operand::kPC:
      case Operand::kInstrSize:
        return true;
      case Operand::kCsrVal:
        return format_ == Format::kCsr;
    }
    return false;
  }

  bool writes_rd_allowed() const {
    using isa::Format;
    return format_ != Format::kS && format_ != Format::kB &&
           format_ != Format::kSystem;
  }

  unsigned check_expr(const ExprPtr& expr) {
    if (!expr) {
      error("null expression");
      return 0;
    }
    const Expr& e = *expr;
    switch (e.op) {
      case ExprOp::kConst:
        if (e.width < 1 || e.width > 64) error("constant width out of range");
        return e.width;
      case ExprOp::kOperand:
        if (!operand_available(e.operand))
          error(strprintf("operand %s not provided by format %s",
                          operand_name(e.operand), isa::format_name(format_)));
        return 32;
      case ExprOp::kLetRef:
        if (e.let_index >= let_width_.size() || let_width_[e.let_index] == 0) {
          error("let reference before binding");
          return e.width ? e.width : 32;
        }
        if (let_width_[e.let_index] != e.width)
          error("let reference width mismatch");
        return let_width_[e.let_index];
      case ExprOp::kLoad:
        error("Load must be bound directly by a Let (stateful primitive)");
        return e.width;
      case ExprOp::kNot:
      case ExprOp::kNeg:
        return check_expr(e.a);
      case ExprOp::kExtract: {
        unsigned w = check_expr(e.a);
        if (e.aux0 < e.aux1 || e.aux0 >= w)
          error(strprintf("extract [%u:%u] out of range for width %u", e.aux0,
                          e.aux1, w));
        return e.aux0 - e.aux1 + 1;
      }
      case ExprOp::kZExt:
      case ExprOp::kSExt: {
        unsigned w = check_expr(e.a);
        if (e.aux0 < w) error("extension must not shrink a value");
        return e.aux0;
      }
      case ExprOp::kIte: {
        unsigned wc = check_expr(e.a);
        unsigned wt = check_expr(e.b);
        unsigned we = check_expr(e.c);
        if (wc != 1) error("ite condition must have width 1");
        if (wt != we) error("ite arms must have equal widths");
        return wt;
      }
      case ExprOp::kConcat:
        return check_expr(e.a) + check_expr(e.b);
      default: {
        unsigned wa = check_expr(e.a);
        unsigned wb = check_expr(e.b);
        if (wa != wb)
          error(strprintf("%s operand widths differ (%u vs %u)",
                          expr_op_name(e.op), wa, wb));
        switch (e.op) {
          case ExprOp::kEq:
          case ExprOp::kUlt:
          case ExprOp::kUle:
          case ExprOp::kSlt:
          case ExprOp::kSle:
            return 1;
          default:
            return wa;
        }
      }
    }
  }

  /// Loads may only appear as the direct value of a Let.
  unsigned check_let_value(const ExprPtr& expr) {
    if (expr && expr->op == ExprOp::kLoad) {
      const Expr& e = *expr;
      unsigned wa = check_expr(e.a);
      if (wa != 32) error("load address must have width 32");
      if (e.aux0 != 1 && e.aux0 != 2 && e.aux0 != 4)
        error("load size must be 1, 2 or 4 bytes");
      if (e.width != e.aux0 * 8) error("load width inconsistent with size");
      return e.width;
    }
    return check_expr(expr);
  }

  void check_block(const Block& block) {
    for (const StmtPtr& stmt : block) {
      const Stmt& s = *stmt;
      switch (s.op) {
        case StmtOp::kLet: {
          unsigned w = check_let_value(s.value);
          if (s.aux >= let_width_.size()) {
            error("let index out of range");
          } else if (let_width_[s.aux] != 0) {
            error("let index bound twice");
          } else {
            let_width_[s.aux] = w;
          }
          break;
        }
        case StmtOp::kWriteRegister:
          if (!writes_rd_allowed())
            error(strprintf("format %s has no rd field to write",
                            isa::format_name(format_)));
          if (check_expr(s.value) != 32)
            error("WriteRegister value must have width 32");
          break;
        case StmtOp::kWritePC:
          if (check_expr(s.value) != 32) error("WritePC target must have width 32");
          break;
        case StmtOp::kStore:
          if (check_expr(s.addr) != 32) error("store address must have width 32");
          if (s.aux != 1 && s.aux != 2 && s.aux != 4)
            error("store size must be 1, 2 or 4 bytes");
          if (check_expr(s.value) != s.aux * 8)
            error("store value width inconsistent with size");
          break;
        case StmtOp::kWriteCsr:
          if (format_ != isa::Format::kCsr)
            error("WriteCsr outside a CSR-format instruction");
          if (check_expr(s.value) != 32) error("WriteCsr value must have width 32");
          break;
        case StmtOp::kIfElse:
          if (check_expr(s.addr) != 1)
            error("runIfElse condition must have width 1");
          check_block(s.then_block);
          check_block(s.else_block);
          break;
        case StmtOp::kEcall:
        case StmtOp::kEbreak:
        case StmtOp::kFence:
          break;
      }
    }
  }

  isa::Format format_;
  std::vector<unsigned> let_width_;
  std::vector<TypeError> errors_;
};

}  // namespace

std::vector<TypeError> typecheck(const Semantics& semantics,
                                 isa::Format format) {
  return Checker(format).run(semantics);
}

bool well_formed(const Semantics& semantics, isa::Format format) {
  return typecheck(semantics, format).empty();
}

}  // namespace binsym::dsl
