// Static width/shape checker for specification ASTs.
//
// The paper argues a formal spec is an "independently test- and verifiable
// artifact"; this checker is the first line of that verification: it
// rejects semantics with width-incoherent operations, out-of-range
// extracts, operands that the instruction's format does not provide,
// forward let references, or state writes of the wrong width — all before
// any interpreter runs.
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "isa/encoding.hpp"

namespace binsym::dsl {

struct TypeError {
  std::string message;
};

/// Check `semantics` against the operand `format` it will be attached to.
/// Returns the list of problems (empty == well-formed).
std::vector<TypeError> typecheck(const Semantics& semantics,
                                 isa::Format format);

/// Convenience: true when typecheck() returns no errors.
bool well_formed(const Semantics& semantics, isa::Format format);

}  // namespace binsym::dsl
