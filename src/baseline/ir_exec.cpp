#include "baseline/ir_exec.hpp"

namespace binsym::baseline {

void execute_block(const IrBlock& block, core::SymMachine& machine,
                   std::vector<interp::SymValue>& temps) {
  temps.assign(block.num_temps, interp::SymValue{});
  for (const IrStmt& s : block.stmts) {
    switch (s.op) {
      case IrStmt::Op::kConst:
        temps[s.dst] = interp::sval(s.imm, s.width);
        break;
      case IrStmt::Op::kGetReg:
        temps[s.dst] = machine.read_register(s.reg);
        break;
      case IrStmt::Op::kPutReg:
        machine.write_register(s.reg, temps[s.a]);
        break;
      case IrStmt::Op::kGetPc:
        temps[s.dst] = machine.pc_value();
        break;
      case IrStmt::Op::kPutPc:
        machine.write_pc(temps[s.a]);
        break;
      case IrStmt::Op::kUn:
        temps[s.dst] = machine.apply_un(s.eop, temps[s.a], s.aux0, s.aux1);
        break;
      case IrStmt::Op::kBin:
        temps[s.dst] = machine.apply_bin(s.eop, temps[s.a], temps[s.b]);
        break;
      case IrStmt::Op::kIte:
        temps[s.dst] = machine.apply_ite(temps[s.a], temps[s.b], temps[s.c]);
        break;
      case IrStmt::Op::kLoad:
        temps[s.dst] = machine.load(s.aux0, temps[s.a]);
        break;
      case IrStmt::Op::kStore:
        machine.store(s.aux0, temps[s.a], temps[s.b]);
        break;
      case IrStmt::Op::kBranch:
        if (machine.choose(temps[s.a]))
          machine.set_next_pc(static_cast<uint32_t>(s.imm));
        break;
      case IrStmt::Op::kEcall:
        machine.ecall();
        break;
      case IrStmt::Op::kEbreak:
        machine.ebreak();
        break;
      case IrStmt::Op::kFence:
        machine.fence();
        break;
    }
  }
}

IrExecutor::IrExecutor(smt::Context& ctx, const isa::Decoder& decoder,
                       const Lifter& lifter, const core::Program& program,
                       core::MachineConfig config)
    : ctx_(ctx),
      decoder_(decoder),
      lifter_(lifter),
      program_(program),
      config_(config),
      machine_(ctx) {}

void IrExecutor::run(const smt::Assignment& seed, core::PathTrace& trace) {
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);

  while (machine_.running()) {
    if (trace.steps >= config_.max_steps) {
      machine_.stop(core::ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.fetch_mapped()) {
      machine_.stop(core::ExitReason::kBadFetch);
      break;
    }
    uint32_t pc = machine_.pc();

    const IrBlock* block;
    if (auto it = lift_cache_.find(pc); it != lift_cache_.end()) {
      block = &it->second;
    } else {
      auto decoded = decoder_.decode(machine_.fetch_word());
      if (!decoded) {
        machine_.stop(core::ExitReason::kIllegalInstr);
        break;
      }
      auto lifted = lifter_.lift(*decoded, pc);
      if (!lifted) {
        machine_.stop(core::ExitReason::kIllegalInstr);
        break;
      }
      block = &lift_cache_.emplace(pc, std::move(*lifted)).first->second;
    }

    machine_.set_next_pc(pc + block->instr_size);
    execute_block(*block, machine_, temps_);
    machine_.advance();
    ++trace.steps;
    ++retired_;
  }
}

}  // namespace binsym::baseline
