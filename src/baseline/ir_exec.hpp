// IR-based concolic executors (the baseline engines).
//
// IrExecutor ("binsec-like"): lifts each instruction once, caches the block
// per address, and interprets the flat statement list directly over the
// shared concolic machine. This stands in for a mature, optimized binary SE
// engine: fastest in Fig. 6.
//
// BoxedIrExecutor ("angr-like"): same lifter, but re-lifts on every
// execution and evaluates through per-statement heap-boxed values and
// freshly-built closures — an honest structural model of a dynamically
// typed, interpreted engine, which the paper (citing Poeplau & Francillon)
// blames for angr's slowness. Combined with `LifterBugs::all()` this is the
// Table-I "angr" configuration; with no bugs it is the fixed-angr
// configuration of Fig. 6.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "baseline/lifter.hpp"
#include "core/executor.hpp"

namespace binsym::baseline {

/// Executes one lifted block over the shared concolic machine. Returns
/// false if the machine stopped inside the block.
void execute_block(const IrBlock& block, core::SymMachine& machine,
                   std::vector<interp::SymValue>& temps);

class IrExecutor : public core::Executor {
 public:
  IrExecutor(smt::Context& ctx, const isa::Decoder& decoder,
             const Lifter& lifter, const core::Program& program,
             core::MachineConfig config = {});

  std::string name() const override {
    return lifter_.bugs().any() ? "ir-lifter(buggy)" : "ir-lifter";
  }
  smt::Context& context() override { return ctx_; }
  void run(const smt::Assignment& seed, core::PathTrace& trace) override;
  uint64_t instructions_retired() const override { return retired_; }

 protected:
  smt::Context& ctx_;
  const isa::Decoder& decoder_;
  const Lifter& lifter_;
  const core::Program& program_;
  core::MachineConfig config_;
  core::SymMachine machine_;
  std::vector<interp::SymValue> temps_;
  std::unordered_map<uint32_t, IrBlock> lift_cache_;  // keyed by pc
  uint64_t retired_ = 0;
};

class BoxedIrExecutor final : public core::Executor {
 public:
  BoxedIrExecutor(smt::Context& ctx, const isa::Decoder& decoder,
                  const Lifter& lifter, const core::Program& program,
                  core::MachineConfig config = {});

  std::string name() const override {
    return lifter_.bugs().any() ? "boxed-ir(buggy)" : "boxed-ir";
  }
  smt::Context& context() override { return ctx_; }
  void run(const smt::Assignment& seed, core::PathTrace& trace) override;
  uint64_t instructions_retired() const override { return retired_; }

 private:
  smt::Context& ctx_;
  const isa::Decoder& decoder_;
  const Lifter& lifter_;
  const core::Program& program_;
  core::MachineConfig config_;
  core::SymMachine machine_;
  uint64_t retired_ = 0;
};

}  // namespace binsym::baseline
