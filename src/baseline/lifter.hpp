// RISC-V -> mini-IR lifter, with the paper's five angr bugs injectable.
//
// This is a deliberately *hand-written* translation of the natural-language
// ISA manual — the error-prone methodology the paper critiques. The bug
// flags reproduce the five real angr RISC-V lifter defects reported and
// fixed via https://github.com/angr/angr-platforms/pull/64 (paper
// Sect. V-A); with all flags off the lifter is correct (differentially
// tested against the formal spec).
#pragma once

#include <optional>

#include "baseline/ir.hpp"
#include "isa/decoder.hpp"

namespace binsym::baseline {

struct LifterBugs {
  /// #1: arithmetic right shift modeled as a logical shift (SRA/SRAI).
  bool sra_as_logical = false;
  /// #2: R-type shifts use the rs2 register *index*, not its value.
  bool rtype_shift_uses_index = false;
  /// #3: loads extend incorrectly (LB/LH zero-extend, LBU/LHU sign-extend).
  bool load_wrong_extension = false;
  /// #4: I-type shift amount treated as a signed 5-bit integer.
  bool itype_shamt_signed = false;
  /// #5: signed comparisons compare unsigned (SLT/SLTI/BLT/BGE).
  bool signed_cmp_as_unsigned = false;

  static LifterBugs none() { return {}; }
  static LifterBugs all() {
    return LifterBugs{true, true, true, true, true};
  }
  bool any() const {
    return sra_as_logical || rtype_shift_uses_index || load_wrong_extension ||
           itype_shamt_signed || signed_cmp_as_unsigned;
  }
};

class Lifter {
 public:
  explicit Lifter(LifterBugs bugs = {}) : bugs_(bugs) {}

  /// Lift one decoded instruction at address `pc`. nullopt for instructions
  /// outside the lifter's RV32IM+system coverage.
  std::optional<IrBlock> lift(const isa::Decoded& decoded, uint32_t pc) const;

  const LifterBugs& bugs() const { return bugs_; }

 private:
  LifterBugs bugs_;
};

}  // namespace binsym::baseline
