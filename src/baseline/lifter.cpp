#include "baseline/lifter.hpp"

#include "support/bits.hpp"

namespace binsym::baseline {

namespace {

/// Incremental builder for one lifted block.
class BlockBuilder {
 public:
  Temp fresh() { return block_.num_temps++; }

  Temp constant(uint64_t value, unsigned width = 32) {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kConst;
    s.dst = t;
    s.imm = truncate(value, width);
    s.width = width;
    push(s);
    return t;
  }

  Temp get_reg(uint32_t reg) {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kGetReg;
    s.dst = t;
    s.reg = reg;
    push(s);
    return t;
  }

  void put_reg(uint32_t reg, Temp a) {
    IrStmt s;
    s.op = IrStmt::Op::kPutReg;
    s.reg = reg;
    s.a = a;
    push(s);
  }

  Temp get_pc() {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kGetPc;
    s.dst = t;
    push(s);
    return t;
  }

  void put_pc(Temp a) {
    IrStmt s;
    s.op = IrStmt::Op::kPutPc;
    s.a = a;
    push(s);
  }

  Temp un(dsl::ExprOp op, Temp a, uint32_t aux0 = 0, uint32_t aux1 = 0) {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kUn;
    s.eop = op;
    s.dst = t;
    s.a = a;
    s.aux0 = aux0;
    s.aux1 = aux1;
    push(s);
    return t;
  }

  Temp bin(dsl::ExprOp op, Temp a, Temp b) {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kBin;
    s.eop = op;
    s.dst = t;
    s.a = a;
    s.b = b;
    push(s);
    return t;
  }

  Temp ite(Temp cond, Temp then_t, Temp else_t) {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kIte;
    s.dst = t;
    s.a = cond;
    s.b = then_t;
    s.c = else_t;
    push(s);
    return t;
  }

  Temp load(unsigned bytes, Temp addr) {
    Temp t = fresh();
    IrStmt s;
    s.op = IrStmt::Op::kLoad;
    s.dst = t;
    s.a = addr;
    s.aux0 = bytes;
    push(s);
    return t;
  }

  void store(unsigned bytes, Temp addr, Temp value) {
    IrStmt s;
    s.op = IrStmt::Op::kStore;
    s.a = addr;
    s.b = value;
    s.aux0 = bytes;
    push(s);
  }

  void branch(Temp cond, uint32_t target) {
    IrStmt s;
    s.op = IrStmt::Op::kBranch;
    s.a = cond;
    s.imm = target;
    push(s);
  }

  void simple(IrStmt::Op op) {
    IrStmt s;
    s.op = op;
    push(s);
  }

  IrBlock take() { return std::move(block_); }

 private:
  void push(const IrStmt& s) { block_.stmts.push_back(s); }
  IrBlock block_;
};

}  // namespace

std::optional<IrBlock> Lifter::lift(const isa::Decoded& d, uint32_t pc) const {
  using dsl::ExprOp;
  BlockBuilder b;
  const uint32_t imm = d.immediate();

  // Shift-amount helpers with the injectable bugs.
  auto rtype_shift_amount = [&]() -> Temp {
    if (bugs_.rtype_shift_uses_index) {
      // Bug #2: the *index* of rs2 is used as the amount. Indices are < 32,
      // so the 5-bit mask is a no-op and the bug manifests directly.
      return b.constant(d.rs2());
    }
    Temp rs2 = b.get_reg(d.rs2());
    return b.bin(ExprOp::kAnd, rs2, b.constant(0x1f));
  };
  auto itype_shift_amount = [&]() -> Temp {
    if (bugs_.itype_shamt_signed) {
      // Bug #4: the 5-bit immediate is sign-extended; 31 becomes -1 ==
      // 0xffffffff, and the saturating IR shift then produces 0.
      return b.constant(sext(d.shamt(), 5, 32));
    }
    return b.constant(d.shamt());
  };
  ExprOp sra_op = bugs_.sra_as_logical ? ExprOp::kLShr : ExprOp::kAShr;  // bug #1
  ExprOp slt_op = bugs_.signed_cmp_as_unsigned ? ExprOp::kUlt : ExprOp::kSlt;  // bug #5
  ExprOp sge_op_neg = bugs_.signed_cmp_as_unsigned ? ExprOp::kUlt : ExprOp::kSlt;

  auto bool_to_reg = [&](Temp cond) {
    return b.ite(cond, b.constant(1), b.constant(0));
  };

  auto lift_alu_r = [&](ExprOp op) {
    Temp rs1 = b.get_reg(d.rs1());
    Temp rs2 = b.get_reg(d.rs2());
    b.put_reg(d.rd(), b.bin(op, rs1, rs2));
  };
  auto lift_alu_i = [&](ExprOp op) {
    Temp rs1 = b.get_reg(d.rs1());
    b.put_reg(d.rd(), b.bin(op, rs1, b.constant(imm)));
  };
  auto lift_branch = [&](ExprOp cmp, bool negate) {
    Temp rs1 = b.get_reg(d.rs1());
    Temp rs2 = b.get_reg(d.rs2());
    Temp cond = b.bin(cmp, rs1, rs2);
    if (negate) cond = b.un(ExprOp::kNot, cond);
    b.branch(cond, pc + imm);
  };
  auto lift_load = [&](unsigned bytes, bool sign_extend) {
    Temp rs1 = b.get_reg(d.rs1());
    Temp addr = b.bin(ExprOp::kAdd, rs1, b.constant(imm));
    Temp value = b.load(bytes, addr);
    if (bugs_.load_wrong_extension) sign_extend = !sign_extend;  // bug #3
    if (bytes < 4)
      value = b.un(sign_extend ? ExprOp::kSExt : ExprOp::kZExt, value, 32);
    b.put_reg(d.rd(), value);
  };
  auto lift_store = [&](unsigned bytes) {
    Temp rs1 = b.get_reg(d.rs1());
    Temp addr = b.bin(ExprOp::kAdd, rs1, b.constant(imm));
    Temp value = b.get_reg(d.rs2());
    if (bytes < 4) value = b.un(ExprOp::kExtract, value, bytes * 8 - 1, 0);
    b.store(bytes, addr, value);
  };
  /// MULH family: widen both operands to 64 bits, multiply, take [63:32].
  auto lift_mulh = [&](bool sext1, bool sext2) {
    Temp rs1 = b.get_reg(d.rs1());
    Temp rs2 = b.get_reg(d.rs2());
    Temp w1 = b.un(sext1 ? ExprOp::kSExt : ExprOp::kZExt, rs1, 64);
    Temp w2 = b.un(sext2 ? ExprOp::kSExt : ExprOp::kZExt, rs2, 64);
    Temp product = b.bin(ExprOp::kMul, w1, w2);
    b.put_reg(d.rd(), b.un(ExprOp::kExtract, product, 63, 32));
  };
  /// Division: branch-free ite encoding of the /0 special cases (unlike the
  /// formal spec, which forks via runIfElse — a real modelling difference
  /// between lifter-based engines and BinSym).
  auto lift_div = [&](ExprOp op, uint64_t on_zero, bool zero_gives_rs1) {
    Temp rs1 = b.get_reg(d.rs1());
    Temp rs2 = b.get_reg(d.rs2());
    Temp is_zero = b.bin(ExprOp::kEq, rs2, b.constant(0));
    Temp result = b.bin(op, rs1, rs2);
    Temp special = zero_gives_rs1 ? rs1 : b.constant(on_zero);
    b.put_reg(d.rd(), b.ite(is_zero, special, result));
  };

  switch (d.id()) {
    case isa::kLUI:
      b.put_reg(d.rd(), b.constant(imm));
      break;
    case isa::kAUIPC: {
      Temp pc_t = b.get_pc();
      b.put_reg(d.rd(), b.bin(ExprOp::kAdd, pc_t, b.constant(imm)));
      break;
    }
    case isa::kJAL:
      b.put_reg(d.rd(), b.constant(pc + d.size));  // link: next sequential pc
      b.put_pc(b.constant(pc + imm));
      break;
    case isa::kJALR: {
      Temp rs1 = b.get_reg(d.rs1());
      Temp target = b.bin(ExprOp::kAdd, rs1, b.constant(imm));
      target = b.bin(ExprOp::kAnd, target, b.constant(0xfffffffe));
      b.put_reg(d.rd(), b.constant(pc + d.size));
      b.put_pc(target);
      break;
    }

    case isa::kBEQ:  lift_branch(ExprOp::kEq, false); break;
    case isa::kBNE:  lift_branch(ExprOp::kEq, true); break;
    case isa::kBLT:  lift_branch(slt_op, false); break;
    case isa::kBGE:  lift_branch(sge_op_neg, true); break;
    case isa::kBLTU: lift_branch(ExprOp::kUlt, false); break;
    case isa::kBGEU: lift_branch(ExprOp::kUlt, true); break;

    case isa::kLB:  lift_load(1, true); break;
    case isa::kLH:  lift_load(2, true); break;
    case isa::kLW:  lift_load(4, true); break;
    case isa::kLBU: lift_load(1, false); break;
    case isa::kLHU: lift_load(2, false); break;
    case isa::kSB:  lift_store(1); break;
    case isa::kSH:  lift_store(2); break;
    case isa::kSW:  lift_store(4); break;

    case isa::kADDI: lift_alu_i(ExprOp::kAdd); break;
    case isa::kXORI: lift_alu_i(ExprOp::kXor); break;
    case isa::kORI:  lift_alu_i(ExprOp::kOr); break;
    case isa::kANDI: lift_alu_i(ExprOp::kAnd); break;
    case isa::kSLTI: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), bool_to_reg(b.bin(slt_op, rs1, b.constant(imm))));
      break;
    }
    case isa::kSLTIU: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(),
                bool_to_reg(b.bin(ExprOp::kUlt, rs1, b.constant(imm))));
      break;
    }

    case isa::kSLLI: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), b.bin(ExprOp::kShl, rs1, itype_shift_amount()));
      break;
    }
    case isa::kSRLI: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), b.bin(ExprOp::kLShr, rs1, itype_shift_amount()));
      break;
    }
    case isa::kSRAI: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), b.bin(sra_op, rs1, itype_shift_amount()));
      break;
    }

    case isa::kADD: lift_alu_r(ExprOp::kAdd); break;
    case isa::kSUB: lift_alu_r(ExprOp::kSub); break;
    case isa::kXOR: lift_alu_r(ExprOp::kXor); break;
    case isa::kOR:  lift_alu_r(ExprOp::kOr); break;
    case isa::kAND: lift_alu_r(ExprOp::kAnd); break;
    case isa::kSLT: {
      Temp rs1 = b.get_reg(d.rs1());
      Temp rs2 = b.get_reg(d.rs2());
      b.put_reg(d.rd(), bool_to_reg(b.bin(slt_op, rs1, rs2)));
      break;
    }
    case isa::kSLTU: {
      Temp rs1 = b.get_reg(d.rs1());
      Temp rs2 = b.get_reg(d.rs2());
      b.put_reg(d.rd(), bool_to_reg(b.bin(ExprOp::kUlt, rs1, rs2)));
      break;
    }
    case isa::kSLL: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), b.bin(ExprOp::kShl, rs1, rtype_shift_amount()));
      break;
    }
    case isa::kSRL: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), b.bin(ExprOp::kLShr, rs1, rtype_shift_amount()));
      break;
    }
    case isa::kSRA: {
      Temp rs1 = b.get_reg(d.rs1());
      b.put_reg(d.rd(), b.bin(sra_op, rs1, rtype_shift_amount()));
      break;
    }

    case isa::kMUL: lift_alu_r(ExprOp::kMul); break;
    case isa::kMULH:   lift_mulh(true, true); break;
    case isa::kMULHSU: lift_mulh(true, false); break;
    case isa::kMULHU:  lift_mulh(false, false); break;
    case isa::kDIV:  lift_div(ExprOp::kSDiv, 0xffffffff, false); break;
    case isa::kDIVU: lift_div(ExprOp::kUDiv, 0xffffffff, false); break;
    case isa::kREM:  lift_div(ExprOp::kSRem, 0, true); break;
    case isa::kREMU: lift_div(ExprOp::kURem, 0, true); break;

    case isa::kFENCE: b.simple(IrStmt::Op::kFence); break;
    case isa::kECALL: b.simple(IrStmt::Op::kEcall); break;
    case isa::kEBREAK: b.simple(IrStmt::Op::kEbreak); break;
    case isa::kMRET:
    case isa::kWFI:
      break;  // no-ops at this abstraction level

    default:
      // CSR family and custom instructions: outside this lifter's coverage
      // (real binary lifters lag the ISA — the paper's extensibility point).
      return std::nullopt;
  }
  IrBlock block = b.take();
  block.instr_size = d.size;
  return block;
}

}  // namespace binsym::baseline
