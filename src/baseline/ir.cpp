#include "baseline/ir.hpp"

#include "support/format.hpp"

namespace binsym::baseline {

std::string dump(const IrBlock& block) {
  std::string out;
  for (const IrStmt& s : block.stmts) {
    switch (s.op) {
      case IrStmt::Op::kConst:
        out += strprintf("t%u = 0x%llx:%u\n", s.dst,
                         static_cast<unsigned long long>(s.imm), s.width);
        break;
      case IrStmt::Op::kGetReg:
        out += strprintf("t%u = GET(x%u)\n", s.dst, s.reg);
        break;
      case IrStmt::Op::kPutReg:
        out += strprintf("PUT(x%u) = t%u\n", s.reg, s.a);
        break;
      case IrStmt::Op::kGetPc:
        out += strprintf("t%u = GET(pc)\n", s.dst);
        break;
      case IrStmt::Op::kPutPc:
        out += strprintf("PUT(pc) = t%u\n", s.a);
        break;
      case IrStmt::Op::kUn:
        out += strprintf("t%u = %s(t%u, %u, %u)\n", s.dst,
                         dsl::expr_op_name(s.eop), s.a, s.aux0, s.aux1);
        break;
      case IrStmt::Op::kBin:
        out += strprintf("t%u = %s(t%u, t%u)\n", s.dst,
                         dsl::expr_op_name(s.eop), s.a, s.b);
        break;
      case IrStmt::Op::kIte:
        out += strprintf("t%u = ITE(t%u, t%u, t%u)\n", s.dst, s.a, s.b, s.c);
        break;
      case IrStmt::Op::kLoad:
        out += strprintf("t%u = LD%u(t%u)\n", s.dst, s.aux0 * 8, s.a);
        break;
      case IrStmt::Op::kStore:
        out += strprintf("ST%u(t%u) = t%u\n", s.aux0 * 8, s.a, s.b);
        break;
      case IrStmt::Op::kBranch:
        out += strprintf("if (t%u) goto 0x%llx\n", s.a,
                         static_cast<unsigned long long>(s.imm));
        break;
      case IrStmt::Op::kEcall:  out += "ecall\n"; break;
      case IrStmt::Op::kEbreak: out += "ebreak\n"; break;
      case IrStmt::Op::kFence:  out += "fence\n"; break;
    }
  }
  return out;
}

}  // namespace binsym::baseline
