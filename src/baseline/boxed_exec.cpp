// The "angr-like" executor: structurally models an interpreted, dynamically
// typed SE engine. Three deliberate cost sources (and nothing else — no
// artificial sleeps):
//
//   1. every executed instruction is decoded and lifted from scratch (no
//      block cache across executions),
//   2. every temporary is a heap-boxed value behind a virtual interface
//      (dynamic dispatch per operand access, allocation per result),
//   3. the statement list is first "prepared" into freshly allocated
//      closures, then run — modelling bytecode-interpreter indirection.
//
// The paper attributes angr's slowness to "symbolic reasoning implemented
// in Python" [35, Sect. 5.4]; this executor reproduces the mechanism
// (interpretation overhead per retired instruction) rather than the
// language.
#include "baseline/ir_exec.hpp"

namespace binsym::baseline {

namespace {

/// Virtual value interface — models a dynamically typed object.
struct AbstractValue {
  virtual ~AbstractValue() = default;
  virtual interp::SymValue get() const = 0;
};

struct BoxedValue final : AbstractValue {
  explicit BoxedValue(interp::SymValue v) : value(v) {}
  interp::SymValue get() const override { return value; }
  interp::SymValue value;
};

using Box = std::unique_ptr<AbstractValue>;

Box box(interp::SymValue value) {
  return std::make_unique<BoxedValue>(value);
}

}  // namespace

BoxedIrExecutor::BoxedIrExecutor(smt::Context& ctx,
                                 const isa::Decoder& decoder,
                                 const Lifter& lifter,
                                 const core::Program& program,
                                 core::MachineConfig config)
    : ctx_(ctx),
      decoder_(decoder),
      lifter_(lifter),
      program_(program),
      config_(config),
      machine_(ctx) {}

void BoxedIrExecutor::run(const smt::Assignment& seed,
                          core::PathTrace& trace) {
  trace.clear();
  machine_.reset(program_.image, program_.entry, config_.stack_top, seed,
                 trace);

  std::vector<Box> temps;

  while (machine_.running()) {
    if (trace.steps >= config_.max_steps) {
      machine_.stop(core::ExitReason::kMaxSteps);
      break;
    }
    if (!machine_.fetch_mapped()) {
      machine_.stop(core::ExitReason::kBadFetch);
      break;
    }
    uint32_t pc = machine_.pc();

    // (1) decode + lift from scratch, every time.
    auto decoded = decoder_.decode(machine_.fetch_word());
    if (!decoded) {
      machine_.stop(core::ExitReason::kIllegalInstr);
      break;
    }
    auto block = lifter_.lift(*decoded, pc);
    if (!block) {
      machine_.stop(core::ExitReason::kIllegalInstr);
      break;
    }

    temps.clear();
    temps.resize(block->num_temps);
    core::SymMachine& m = machine_;

    // (3) prepare per-statement closures, then run them.
    std::vector<std::function<void()>> prepared;
    prepared.reserve(block->stmts.size());
    for (const IrStmt& s : block->stmts) {
      prepared.push_back([&temps, &m, s]() {
        switch (s.op) {
          case IrStmt::Op::kConst:
            temps[s.dst] = box(interp::sval(s.imm, s.width));
            break;
          case IrStmt::Op::kGetReg:
            temps[s.dst] = box(m.read_register(s.reg));
            break;
          case IrStmt::Op::kPutReg:
            m.write_register(s.reg, temps[s.a]->get());
            break;
          case IrStmt::Op::kGetPc:
            temps[s.dst] = box(m.pc_value());
            break;
          case IrStmt::Op::kPutPc:
            m.write_pc(temps[s.a]->get());
            break;
          case IrStmt::Op::kUn:
            temps[s.dst] =
                box(m.apply_un(s.eop, temps[s.a]->get(), s.aux0, s.aux1));
            break;
          case IrStmt::Op::kBin:
            temps[s.dst] =
                box(m.apply_bin(s.eop, temps[s.a]->get(), temps[s.b]->get()));
            break;
          case IrStmt::Op::kIte:
            temps[s.dst] = box(m.apply_ite(
                temps[s.a]->get(), temps[s.b]->get(), temps[s.c]->get()));
            break;
          case IrStmt::Op::kLoad:
            temps[s.dst] = box(m.load(s.aux0, temps[s.a]->get()));
            break;
          case IrStmt::Op::kStore:
            m.store(s.aux0, temps[s.a]->get(), temps[s.b]->get());
            break;
          case IrStmt::Op::kBranch:
            if (m.choose(temps[s.a]->get()))
              m.set_next_pc(static_cast<uint32_t>(s.imm));
            break;
          case IrStmt::Op::kEcall:
            m.ecall();
            break;
          case IrStmt::Op::kEbreak:
            m.ebreak();
            break;
          case IrStmt::Op::kFence:
            m.fence();
            break;
        }
      });
    }

    machine_.set_next_pc(pc + block->instr_size);
    for (auto& step : prepared) step();
    machine_.advance();
    ++trace.steps;
    ++retired_;
  }
}

}  // namespace binsym::baseline
