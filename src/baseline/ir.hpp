// The mini-IR of the indirect (lifter-based) baseline engines.
//
// A deliberately VEX-flavoured, architecture-neutral register-transfer IR:
// flat statement lists over numbered temporaries with explicit GET/PUT
// guest-register accesses. The baseline engines translate binary code
// *twice* (RISC-V -> IR -> SMT), exactly the methodology the paper compares
// against (Fig. 1, "indirect IR-based"); the five angr lifter bugs are
// reproduced as flags on the lifter (lifter.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace binsym::baseline {

/// Temp index inside one lifted block.
using Temp = uint16_t;

struct IrStmt {
  enum class Op : uint8_t {
    kConst,   // dst <- imm:width
    kGetReg,  // dst <- guest register [reg]
    kPutReg,  // guest register [reg] <- a
    kGetPc,   // dst <- guest pc (of this instruction)
    kPutPc,   // guest next-pc <- a (jumps)
    kUn,      // dst <- eop(a) with aux0/aux1
    kBin,     // dst <- eop(a, b)
    kIte,     // dst <- a ? b : c
    kLoad,    // dst <- mem[a], aux0 bytes
    kStore,   // mem[a] <- b, aux0 bytes
    kBranch,  // if (a) guest next-pc <- imm (conditional exit)
    kEcall,
    kEbreak,
    kFence,
  };

  Op op;
  dsl::ExprOp eop = dsl::ExprOp::kAdd;  // kUn/kBin operator
  Temp dst = 0, a = 0, b = 0, c = 0;
  uint32_t reg = 0;      // kGetReg/kPutReg guest register index
  uint32_t aux0 = 0;     // kUn extract-hi / ext width; kLoad/kStore bytes
  uint32_t aux1 = 0;     // kUn extract-lo
  uint64_t imm = 0;      // kConst value; kBranch target address
  uint32_t width = 32;   // kConst width
};

/// One guest instruction lifted at a specific address (targets of jumps and
/// branches are materialized as absolute constants, as VEX does).
struct IrBlock {
  std::vector<IrStmt> stmts;
  Temp num_temps = 0;
  unsigned instr_size = 4;  // encoding size (2 for expanded compressed)
};

/// Debug/bench aid: textual dump of a block.
std::string dump(const IrBlock& block);

}  // namespace binsym::baseline
