// Line-level tokenization for the assembler: comment stripping, label
// extraction and operand splitting (commas at paren depth 0 only; string
// literals kept intact).
#pragma once

#include <string>
#include <vector>

namespace binsym::rvasm {

struct SourceLine {
  int line_no = 0;
  std::vector<std::string> labels;    // "name:" prefixes on this line
  std::string mnemonic;               // instruction or directive (lowercased)
  std::vector<std::string> operands;  // raw operand strings, trimmed
};

/// Split a full source text into logical lines. Blank/comment-only lines are
/// dropped; lines carrying only labels are kept (empty mnemonic).
std::vector<SourceLine> tokenize(const std::string& source);

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s);

}  // namespace binsym::rvasm
