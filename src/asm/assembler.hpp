// RV32IM(+custom) assembler.
//
// Two-pass assembler with GNU-as-flavoured syntax: labels, the common
// directives (.text/.data/.global/.word/.byte/.half/.ascii/.asciz/.space/
// .align/.equ), %hi()/%lo() relocation operators and the standard pseudo
// instructions (li/la/mv/not/neg/j/call/ret/beqz/bgt/...). Real mnemonics
// are encoded *generically from the OpcodeTable by operand format*, so an
// instruction registered at runtime (e.g. the MADD case study) assembles
// with no assembler changes — the whole toolchain extends from the one
// encoding description, as the paper advocates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "elf/elf32.hpp"
#include "isa/opcodes.hpp"

namespace binsym::rvasm {

struct AsmError {
  int line = 0;
  std::string message;
};

struct AsmOptions {
  uint32_t text_base = 0x0000'1000;
  uint32_t data_base = 0x0001'0000;
};

struct AsmResult {
  elf::Image image;  // entry = `_start` if defined, else text base
  std::map<std::string, uint32_t> symbols;
};

/// Assemble `source`; on failure returns nullopt and fills `errors`.
std::optional<AsmResult> assemble(const isa::OpcodeTable& table,
                                  const std::string& source,
                                  std::vector<AsmError>* errors = nullptr,
                                  AsmOptions options = {});

/// Assemble a file from disk.
std::optional<AsmResult> assemble_file(const isa::OpcodeTable& table,
                                       const std::string& path,
                                       std::vector<AsmError>* errors = nullptr,
                                       AsmOptions options = {});

/// Test/bench helper: assemble or abort with a diagnostic.
AsmResult assemble_or_die(const isa::OpcodeTable& table,
                          const std::string& source, AsmOptions options = {});

}  // namespace binsym::rvasm
