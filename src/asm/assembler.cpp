#include "asm/assembler.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "asm/lexer.hpp"
#include "isa/encoding.hpp"
#include "support/bits.hpp"
#include "support/format.hpp"

namespace binsym::rvasm {

namespace {

/// Result of evaluating an immediate expression. `uses_symbol` drives the
/// pass-1 sizing rule for `li` (symbolic operands always take two
/// instructions so both passes agree on layout).
struct ExprValue {
  uint32_t value = 0;
  bool uses_symbol = false;
  bool ok = false;
};

class Assembler {
 public:
  Assembler(const isa::OpcodeTable& table, AsmOptions options)
      : table_(table), options_(options) {}

  std::optional<AsmResult> run(const std::string& source,
                               std::vector<AsmError>* errors) {
    std::vector<SourceLine> lines = tokenize(source);

    for (int pass = 1; pass <= 2; ++pass) {
      pass2_ = pass == 2;
      text_ = Section{options_.text_base, {}};
      data_ = Section{options_.data_base, {}};
      current_ = &text_;
      for (const SourceLine& line : lines) process(line);
      if (!pass2_ && !errors_.empty()) break;  // pass-1 structural errors
    }

    if (!errors_.empty()) {
      if (errors) *errors = errors_;
      return std::nullopt;
    }

    AsmResult result;
    if (!text_.bytes.empty())
      result.image.segments.push_back(
          elf::Segment{text_.base, text_.bytes, elf::kPfR | elf::kPfX});
    if (!data_.bytes.empty())
      result.image.segments.push_back(
          elf::Segment{data_.base, data_.bytes, elf::kPfR | elf::kPfW});
    auto start = symbols_.find("_start");
    result.image.entry =
        start != symbols_.end() ? start->second : options_.text_base;
    result.symbols = symbols_;
    return result;
  }

 private:
  struct Section {
    uint32_t base = 0;
    std::vector<uint8_t> bytes;
  };

  // -- Diagnostics. -----------------------------------------------------------

  // Structural errors surface in pass 1 (which then aborts); diagnostics
  // that need resolved symbols are guarded by `pass2_` at their call sites,
  // so no error is ever reported twice.
  void error(const std::string& message) {
    errors_.push_back(AsmError{line_no_, message});
  }

  // -- Layout helpers. ----------------------------------------------------------

  uint32_t here() const {
    return current_->base + static_cast<uint32_t>(current_->bytes.size());
  }

  void emit8(uint8_t byte) { current_->bytes.push_back(byte); }

  void emit32(uint32_t word) {
    for (int i = 0; i < 4; ++i) emit8(static_cast<uint8_t>(word >> (8 * i)));
  }

  void define(const std::string& name, uint32_t value) {
    if (!pass2_) {
      if (symbols_.count(name) && symbols_[name] != value) {
        error("symbol redefined: " + name);
        return;
      }
    }
    symbols_[name] = value;
  }

  // -- Expression evaluation. -------------------------------------------------------
  //
  // Grammar: expr := term (('+'|'-') term)* ; term := '-' term | number |
  // char | symbol | %hi(expr) | %lo(expr) | '(' expr ')'

  ExprValue eval(const std::string& text) {
    const char* p = text.c_str();
    ExprValue v = eval_sum(p);
    skip_ws(p);
    if (v.ok && *p != '\0') v.ok = false;
    if (!v.ok && pass2_) error("bad expression: '" + text + "'");
    return v;
  }

  static void skip_ws(const char*& p) {
    while (*p == ' ' || *p == '\t') ++p;
  }

  ExprValue eval_sum(const char*& p) {
    ExprValue left = eval_term(p);
    if (!left.ok) return left;
    for (;;) {
      skip_ws(p);
      if (*p != '+' && *p != '-') return left;
      char op = *p++;
      ExprValue right = eval_term(p);
      if (!right.ok) return right;
      left.value = op == '+' ? left.value + right.value
                             : left.value - right.value;
      left.uses_symbol |= right.uses_symbol;
    }
  }

  ExprValue eval_term(const char*& p) {
    skip_ws(p);
    ExprValue out;
    if (*p == '-') {
      ++p;
      ExprValue inner = eval_term(p);
      if (!inner.ok) return inner;
      inner.value = 0u - inner.value;
      return inner;
    }
    if (*p == '(') {
      ++p;
      ExprValue inner = eval_sum(p);
      skip_ws(p);
      if (!inner.ok || *p != ')') { inner.ok = false; return inner; }
      ++p;
      return inner;
    }
    if (*p == '%') {
      ++p;
      std::string fn;
      while (std::isalpha(static_cast<unsigned char>(*p))) fn += *p++;
      skip_ws(p);
      if (*p != '(') return out;
      ++p;
      ExprValue inner = eval_sum(p);
      skip_ws(p);
      if (!inner.ok || *p != ')') return out;
      ++p;
      if (fn == "hi") {
        inner.value = (inner.value + 0x800) >> 12;
      } else if (fn == "lo") {
        inner.value = truncate(sext(inner.value & 0xfff, 12, 32), 32);
      } else {
        return out;
      }
      return inner;
    }
    if (*p == '\'') {
      ++p;
      char c = *p;
      if (c == '\\') {
        ++p;
        switch (*p) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '\'': c = '\''; break;
          default: return out;
        }
      }
      ++p;
      if (*p != '\'') return out;
      ++p;
      out.value = static_cast<uint8_t>(c);
      out.ok = true;
      return out;
    }
    if (std::isdigit(static_cast<unsigned char>(*p))) {
      char* end = nullptr;
      unsigned long value;
      if (p[0] == '0' && (p[1] == 'b' || p[1] == 'B')) {
        value = std::strtoul(p + 2, &end, 2);
      } else {
        value = std::strtoul(p, &end, 0);
      }
      if (end == p) return out;
      p = end;
      out.value = static_cast<uint32_t>(value);
      out.ok = true;
      return out;
    }
    if (std::isalpha(static_cast<unsigned char>(*p)) || *p == '_' ||
        *p == '.') {
      std::string name;
      while (std::isalnum(static_cast<unsigned char>(*p)) || *p == '_' ||
             *p == '.' || *p == '$')
        name += *p++;
      out.uses_symbol = true;
      out.ok = true;
      if (auto it = symbols_.find(name); it != symbols_.end()) {
        out.value = it->second;
      } else if (pass2_) {
        error("undefined symbol: " + name);
        out.ok = false;
      } else {
        out.value = 0;  // forward reference, resolved in pass 2
      }
      return out;
    }
    return out;
  }

  // -- Operand parsing. -------------------------------------------------------------

  int parse_reg(const std::string& text) {
    int reg = isa::parse_reg_name(trim(text));
    if (reg < 0) error("expected register, got '" + text + "'");
    return reg < 0 ? 0 : reg;
  }

  /// "offset(reg)" memory operand; offset may be empty (== 0).
  bool parse_mem(const std::string& text, uint32_t* offset, int* reg) {
    size_t open = text.rfind('(');
    size_t close = text.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      error("expected mem operand 'off(reg)', got '" + text + "'");
      return false;
    }
    std::string off = trim(text.substr(0, open));
    *offset = off.empty() ? 0 : eval(off).value;
    *reg = parse_reg(text.substr(open + 1, close - open - 1));
    return true;
  }

  bool check_signed_range(uint32_t value, unsigned bits,
                          const char* what) {
    // Accept both sign-extended 32-bit forms and small unsigned literals.
    if (truncate(sext(value & mask_bits(bits), bits, 32), 32) == value)
      return true;
    if (pass2_) error(strprintf("%s out of %u-bit range: 0x%x", what, bits, value));
    return false;
  }

  // -- Instruction encoding (generic, by operand format). ------------------------------

  void encode_with_info(const isa::OpcodeInfo& info,
                        const std::vector<std::string>& ops) {
    auto need = [&](size_t n) {
      if (ops.size() != n) {
        error(strprintf("%s expects %zu operands, got %zu", info.name.c_str(),
                        n, ops.size()));
        return false;
      }
      return true;
    };

    switch (info.format) {
      case isa::Format::kR: {
        if (!need(3)) break;
        uint32_t rd = parse_reg(ops[0]), rs1 = parse_reg(ops[1]),
                 rs2 = parse_reg(ops[2]);
        emit32(info.match | (rd << 7) | (rs1 << 15) | (rs2 << 20));
        break;
      }
      case isa::Format::kR4: {
        if (!need(4)) break;
        uint32_t rd = parse_reg(ops[0]), rs1 = parse_reg(ops[1]),
                 rs2 = parse_reg(ops[2]), rs3 = parse_reg(ops[3]);
        emit32(info.match | (rd << 7) | (rs1 << 15) | (rs2 << 20) |
               (rs3 << 27));
        break;
      }
      case isa::Format::kI: {
        uint32_t rd, rs1, imm;
        // Unary I-space instructions (imm fully pinned by the mask) take
        // just rd, rs1 — e.g. Zbb clz/ctz/cpop.
        if ((info.mask & 0xfff00000) == 0xfff00000) {
          if (!need(2)) break;
          rd = parse_reg(ops[0]);
          rs1 = parse_reg(ops[1]);
          emit32(info.match | (rd << 7) | (rs1 << 15));
          break;
        }
        bool is_load = info.id == isa::kLB || info.id == isa::kLH ||
                       info.id == isa::kLW || info.id == isa::kLBU ||
                       info.id == isa::kLHU;
        if (is_load || (ops.size() == 2 && ops[1].find('(') != std::string::npos)) {
          if (!need(2)) break;
          rd = parse_reg(ops[0]);
          int base;
          if (!parse_mem(ops[1], &imm, &base)) break;
          rs1 = static_cast<uint32_t>(base);
        } else {
          if (!need(3)) break;
          rd = parse_reg(ops[0]);
          rs1 = parse_reg(ops[1]);
          imm = eval(ops[2]).value;
        }
        check_signed_range(imm, 12, "immediate");
        emit32(info.match | (rd << 7) | (rs1 << 15) | ((imm & 0xfff) << 20));
        break;
      }
      case isa::Format::kIShift: {
        if (!need(3)) break;
        uint32_t rd = parse_reg(ops[0]), rs1 = parse_reg(ops[1]);
        uint32_t amount = eval(ops[2]).value;
        if (amount > 31) error("shift amount out of range");
        emit32(info.match | (rd << 7) | (rs1 << 15) | ((amount & 0x1f) << 20));
        break;
      }
      case isa::Format::kS: {
        if (!need(2)) break;
        uint32_t rs2 = parse_reg(ops[0]), imm;
        int base;
        if (!parse_mem(ops[1], &imm, &base)) break;
        check_signed_range(imm, 12, "store offset");
        emit32(info.match | ((imm & 0x1f) << 7) | (base << 15) | (rs2 << 20) |
               (((imm >> 5) & 0x7f) << 25));
        break;
      }
      case isa::Format::kB: {
        if (!need(3)) break;
        uint32_t rs1 = parse_reg(ops[0]), rs2 = parse_reg(ops[1]);
        uint32_t target = eval(ops[2]).value;
        uint32_t offset = target - here();
        if (pass2_ && (offset & 1)) error("branch target misaligned");
        check_signed_range(offset, 13, "branch offset");
        emit32(info.match | (isa::encode_b(0, 0, 0, 0, offset)) | (rs1 << 15) |
               (rs2 << 20));
        break;
      }
      case isa::Format::kU: {
        if (!need(2)) break;
        uint32_t rd = parse_reg(ops[0]);
        uint32_t value = eval(ops[1]).value;
        if (value > 0xfffff) error("20-bit immediate out of range");
        emit32(info.match | (rd << 7) | ((value & 0xfffff) << 12));
        break;
      }
      case isa::Format::kJ: {
        uint32_t rd, target;
        if (ops.size() == 1) {
          rd = 1;  // jal target  ==  jal ra, target
          target = eval(ops[0]).value;
        } else if (ops.size() == 2) {
          rd = parse_reg(ops[0]);
          target = eval(ops[1]).value;
        } else {
          error("jal expects 1 or 2 operands");
          break;
        }
        uint32_t offset = target - here();
        if (pass2_ && (offset & 1)) error("jump target misaligned");
        check_signed_range(offset, 21, "jump offset");
        emit32(info.match | (rd << 7) | isa::encode_j(0, 0, offset));
        break;
      }
      case isa::Format::kSystem: {
        if (!ops.empty()) error(info.name + " takes no operands");
        emit32(info.match);
        break;
      }
      case isa::Format::kCsr: {
        if (!need(3)) break;
        uint32_t rd = parse_reg(ops[0]);
        uint32_t csr = eval(ops[1]).value;
        if (csr > 0xfff) error("csr index out of range");
        bool imm_form = info.name.back() == 'i';
        uint32_t field;
        if (imm_form) {
          field = eval(ops[2]).value;
          if (field > 31) error("csr zimm out of range");
        } else {
          field = static_cast<uint32_t>(parse_reg(ops[2]));
        }
        emit32(info.match | (rd << 7) | (field << 15) | (csr << 20));
        break;
      }
    }
  }

  void encode_real(const std::string& mnemonic,
                   const std::vector<std::string>& ops) {
    const isa::OpcodeInfo* info = table_.by_name(mnemonic);
    if (!info) {
      error("unknown instruction '" + mnemonic + "'");
      emit32(0);  // keep layout stable so later errors are accurate
      return;
    }
    encode_with_info(*info, ops);
  }

  /// `li` needs two instructions unless the value is a non-symbolic literal
  /// fitting a 12-bit signed immediate; both passes apply the same rule.
  void encode_li(const std::string& rd, const std::string& expr) {
    ExprValue v = eval(expr);
    bool small = !v.uses_symbol &&
                 truncate(sext(v.value & 0xfff, 12, 32), 32) == v.value;
    if (small) {
      encode_real("addi", {rd, "zero", std::to_string(static_cast<int32_t>(v.value))});
      return;
    }
    uint32_t hi = (v.value + 0x800) >> 12;
    int32_t lo = static_cast<int32_t>(sext(v.value & 0xfff, 12, 32));
    encode_real("lui", {rd, std::to_string(hi & 0xfffff)});
    encode_real("addi", {rd, rd, std::to_string(lo)});
  }

  bool encode_pseudo(const std::string& mnemonic,
                     const std::vector<std::string>& ops) {
    auto need = [&](size_t n) {
      if (ops.size() != n) {
        error(strprintf("%s expects %zu operands", mnemonic.c_str(), n));
        return false;
      }
      return true;
    };

    if (mnemonic == "nop") { encode_real("addi", {"zero", "zero", "0"}); return true; }
    if (mnemonic == "li") { if (need(2)) encode_li(ops[0], ops[1]); return true; }
    if (mnemonic == "la") {
      if (!need(2)) return true;
      // Absolute addressing (no PIC): lui %hi / addi %lo.
      encode_real("lui", {ops[0], "%hi(" + ops[1] + ")"});
      encode_real("addi", {ops[0], ops[0], "%lo(" + ops[1] + ")"});
      return true;
    }
    if (mnemonic == "mv") { if (need(2)) encode_real("addi", {ops[0], ops[1], "0"}); return true; }
    if (mnemonic == "not") { if (need(2)) encode_real("xori", {ops[0], ops[1], "-1"}); return true; }
    if (mnemonic == "neg") { if (need(2)) encode_real("sub", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "seqz") { if (need(2)) encode_real("sltiu", {ops[0], ops[1], "1"}); return true; }
    if (mnemonic == "snez") { if (need(2)) encode_real("sltu", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "sltz") { if (need(2)) encode_real("slt", {ops[0], ops[1], "zero"}); return true; }
    if (mnemonic == "sgtz") { if (need(2)) encode_real("slt", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "beqz") { if (need(2)) encode_real("beq", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "bnez") { if (need(2)) encode_real("bne", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "blez") { if (need(2)) encode_real("bge", {"zero", ops[0], ops[1]}); return true; }
    if (mnemonic == "bgez") { if (need(2)) encode_real("bge", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "bltz") { if (need(2)) encode_real("blt", {ops[0], "zero", ops[1]}); return true; }
    if (mnemonic == "bgtz") { if (need(2)) encode_real("blt", {"zero", ops[0], ops[1]}); return true; }
    if (mnemonic == "bgt") { if (need(3)) encode_real("blt", {ops[1], ops[0], ops[2]}); return true; }
    if (mnemonic == "ble") { if (need(3)) encode_real("bge", {ops[1], ops[0], ops[2]}); return true; }
    if (mnemonic == "bgtu") { if (need(3)) encode_real("bltu", {ops[1], ops[0], ops[2]}); return true; }
    if (mnemonic == "bleu") { if (need(3)) encode_real("bgeu", {ops[1], ops[0], ops[2]}); return true; }
    if (mnemonic == "j") { if (need(1)) encode_real("jal", {"zero", ops[0]}); return true; }
    if (mnemonic == "call") { if (need(1)) encode_real("jal", {"ra", ops[0]}); return true; }
    if (mnemonic == "jr") { if (need(1)) encode_real("jalr", {"zero", ops[0], "0"}); return true; }
    if (mnemonic == "ret") { encode_real("jalr", {"zero", "ra", "0"}); return true; }
    if (mnemonic == "jalr" && ops.size() == 1) {
      encode_real("jalr", {"ra", ops[0], "0"});
      return true;
    }
    if (mnemonic == "jalr" && ops.size() == 2) {
      encode_real("jalr", {ops[0], ops[1], "0"});
      return true;
    }
    if (mnemonic == "csrr") { if (need(2)) encode_real("csrrs", {ops[0], ops[1], "zero"}); return true; }
    if (mnemonic == "csrw") { if (need(2)) encode_real("csrrw", {"zero", ops[0], ops[1]}); return true; }
    return false;
  }

  // -- Directives. ----------------------------------------------------------------------

  bool process_directive(const SourceLine& line) {
    const std::string& d = line.mnemonic;
    const auto& ops = line.operands;
    if (d == ".text") { current_ = &text_; return true; }
    if (d == ".data" || d == ".bss" || d == ".rodata") { current_ = &data_; return true; }
    if (d == ".global" || d == ".globl" || d == ".section" || d == ".option" ||
        d == ".type" || d == ".size" || d == ".file" || d == ".attribute")
      return true;  // accepted, no effect in this flat model
    if (d == ".equ" || d == ".set") {
      if (ops.size() != 2) { error(d + " expects name, value"); return true; }
      define(trim(ops[0]), eval(ops[1]).value);
      return true;
    }
    if (d == ".word" || d == ".long") {
      for (const std::string& op : ops) emit32(eval(op).value);
      return true;
    }
    if (d == ".half" || d == ".short") {
      for (const std::string& op : ops) {
        uint32_t v = eval(op).value;
        emit8(static_cast<uint8_t>(v));
        emit8(static_cast<uint8_t>(v >> 8));
      }
      return true;
    }
    if (d == ".byte") {
      for (const std::string& op : ops)
        emit8(static_cast<uint8_t>(eval(op).value));
      return true;
    }
    if (d == ".ascii" || d == ".asciz" || d == ".string") {
      for (const std::string& op : ops) {
        std::string s = trim(op);
        if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
          error(d + " expects a string literal");
          continue;
        }
        for (size_t i = 1; i + 1 < s.size(); ++i) {
          char c = s[i];
          if (c == '\\' && i + 2 < s.size()) {
            ++i;
            switch (s[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default: c = s[i]; break;
            }
          }
          emit8(static_cast<uint8_t>(c));
        }
        if (d != ".ascii") emit8(0);
      }
      return true;
    }
    if (d == ".space" || d == ".zero" || d == ".skip") {
      if (ops.empty()) { error(d + " expects a size"); return true; }
      uint32_t n = eval(ops[0]).value;
      uint8_t fill = ops.size() > 1
                         ? static_cast<uint8_t>(eval(ops[1]).value)
                         : 0;
      for (uint32_t i = 0; i < n; ++i) emit8(fill);
      return true;
    }
    if (d == ".align" || d == ".balign" || d == ".p2align") {
      if (ops.empty()) { error(d + " expects an amount"); return true; }
      uint32_t amount = eval(ops[0]).value;
      uint32_t alignment =
          d == ".balign" ? amount : (1u << (amount > 16 ? 16 : amount));
      if (alignment == 0) alignment = 1;
      while (here() % alignment) emit8(0);
      return true;
    }
    return false;
  }

  // -- Main statement dispatch. --------------------------------------------------------

  void process(const SourceLine& line) {
    line_no_ = line.line_no;
    for (const std::string& label : line.labels) define(label, here());
    if (line.mnemonic.empty()) return;
    if (line.mnemonic[0] == '.') {
      if (!process_directive(line))
        error("unknown directive '" + line.mnemonic + "'");
      return;
    }
    if (encode_pseudo(line.mnemonic, line.operands)) return;
    encode_real(line.mnemonic, line.operands);
  }

  const isa::OpcodeTable& table_;
  AsmOptions options_;
  Section text_, data_;
  Section* current_ = nullptr;
  std::map<std::string, uint32_t> symbols_;
  std::vector<AsmError> errors_;
  bool pass2_ = false;
  int line_no_ = 0;
};

}  // namespace

std::optional<AsmResult> assemble(const isa::OpcodeTable& table,
                                  const std::string& source,
                                  std::vector<AsmError>* errors,
                                  AsmOptions options) {
  return Assembler(table, options).run(source, errors);
}

std::optional<AsmResult> assemble_file(const isa::OpcodeTable& table,
                                       const std::string& path,
                                       std::vector<AsmError>* errors,
                                       AsmOptions options) {
  std::ifstream file(path);
  if (!file) {
    if (errors) errors->push_back(AsmError{0, "cannot open " + path});
    return std::nullopt;
  }
  std::string source((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
  return assemble(table, source, errors, options);
}

AsmResult assemble_or_die(const isa::OpcodeTable& table,
                          const std::string& source, AsmOptions options) {
  std::vector<AsmError> errors;
  auto result = assemble(table, source, &errors, options);
  if (!result) {
    for (const AsmError& e : errors)
      std::fprintf(stderr, "asm error (line %d): %s\n", e.line,
                   e.message.c_str());
    std::abort();
  }
  return *result;
}

}  // namespace binsym::rvasm
