#include "asm/lexer.hpp"

#include <cctype>
#include <sstream>

namespace binsym::rvasm {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

namespace {

/// Strip `#` and `//` comments, respecting string/char literals.
std::string strip_comment(const std::string& line) {
  bool in_string = false, in_char = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (in_char) {
      if (c == '\\') ++i;
      else if (c == '\'') in_char = false;
      continue;
    }
    if (c == '"') { in_string = true; continue; }
    if (c == '\'') { in_char = true; continue; }
    if (c == '#') return line.substr(0, i);
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
      return line.substr(0, i);
  }
  return line;
}

/// Split operands by commas at paren depth 0, outside literals.
std::vector<std::string> split_operands(const std::string& text) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false, in_char = false;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      current += c;
      if (c == '\\' && i + 1 < text.size()) current += text[++i];
      else if (c == '"') in_string = false;
      continue;
    }
    if (in_char) {
      current += c;
      if (c == '\\' && i + 1 < text.size()) current += text[++i];
      else if (c == '\'') in_char = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; current += c; break;
      case '\'': in_char = true; current += c; break;
      case '(': ++depth; current += c; break;
      case ')': --depth; current += c; break;
      case ',':
        if (depth == 0) {
          out.push_back(trim(current));
          current.clear();
        } else {
          current += c;
        }
        break;
      default: current += c; break;
    }
  }
  if (!trim(current).empty() || !out.empty()) out.push_back(trim(current));
  return out;
}

bool is_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

}  // namespace

std::vector<SourceLine> tokenize(const std::string& source) {
  std::vector<SourceLine> out;
  std::stringstream stream(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string text = trim(strip_comment(raw));
    if (text.empty()) continue;

    SourceLine line;
    line.line_no = line_no;

    // Peel off leading "label:" prefixes.
    for (;;) {
      size_t i = 0;
      while (i < text.size() && is_label_char(text[i])) ++i;
      if (i > 0 && i < text.size() && text[i] == ':') {
        line.labels.push_back(text.substr(0, i));
        text = trim(text.substr(i + 1));
      } else {
        break;
      }
    }

    if (!text.empty()) {
      size_t space = text.find_first_of(" \t");
      std::string mnemonic =
          space == std::string::npos ? text : text.substr(0, space);
      for (char& c : mnemonic)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      line.mnemonic = mnemonic;
      if (space != std::string::npos)
        line.operands = split_operands(trim(text.substr(space + 1)));
    }
    if (!line.labels.empty() || !line.mnemonic.empty()) out.push_back(line);
  }
  return out;
}

}  // namespace binsym::rvasm
