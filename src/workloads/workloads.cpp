#include "workloads/workloads.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "asm/assembler.hpp"
#include "elf/elf32.hpp"

namespace binsym::workloads {

const std::vector<WorkloadInfo>& table1_workloads() {
  static const std::vector<WorkloadInfo> list = {
      {"base64-encode", 4, 6250, 125},
      {"bubble-sort", 6, 720, 720},
      {"clif-parser", 6, 11424, 11424},
      {"insertion-sort", 7, 5040, 5040},
      {"uri-parser", 5, 8240, 8194},
  };
  return list;
}

std::string workloads_dir() {
  if (const char* env = std::getenv("BINSYM_WORKLOADS_DIR")) return env;
  return BINSYM_WORKLOADS_DIR;
}

std::string read_workload_source(const std::string& name) {
  std::string path = workloads_dir() + "/" + name + ".s";
  std::ifstream file(path);
  if (!file) {
    // Name the knob *and* whether it is currently in effect: a stale
    // override is the usual reason the path looks right but isn't.
    const bool overridden = std::getenv("BINSYM_WORKLOADS_DIR") != nullptr;
    throw std::runtime_error(
        "cannot open workload source " + path +
        (overridden
             ? " (corpus location set by the BINSYM_WORKLOADS_DIR "
               "environment override)"
             : " (compile-time default corpus; override the location with "
               "the BINSYM_WORKLOADS_DIR environment variable)"));
  }
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

core::Program load_workload(const isa::OpcodeTable& table,
                            const std::string& name) {
  std::string source =
      read_workload_source("runtime") + "\n" + read_workload_source(name);
  rvasm::AsmResult assembled = rvasm::assemble_or_die(table, source);
  return elf::to_program(assembled.image);
}

core::Program load_workload_or_exit(const isa::OpcodeTable& table,
                                    const std::string& name) {
  try {
    return load_workload(table, name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
}

}  // namespace binsym::workloads
