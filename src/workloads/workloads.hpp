// Workload loading: assembles the shipped .s evaluation programs (with the
// shared runtime prepended) into guest Programs, and carries the metadata
// the benchmark harnesses need (paper-reported path counts for Table I).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "isa/opcodes.hpp"

namespace binsym::workloads {

struct WorkloadInfo {
  std::string name;          // file stem under workloads/
  unsigned input_bytes;      // symbolic input size
  uint64_t paper_paths;      // Table I reference count (0 = not in Table I)
  uint64_t paper_paths_angr; // Table I angr column
};

/// The five Table I programs, in paper order.
const std::vector<WorkloadInfo>& table1_workloads();

/// Directory the .s sources live in (compile-time default, overridable via
/// the BINSYM_WORKLOADS_DIR environment variable).
std::string workloads_dir();

/// Assemble runtime.s + <name>.s into a program. Throws std::runtime_error
/// (with the attempted path) if a source file is missing; aborts with a
/// diagnostic on assembly errors (the shipped workloads must assemble).
core::Program load_workload(const isa::OpcodeTable& table,
                            const std::string& name);

/// Same, but returns the raw source so callers can inspect/modify it.
/// Throws std::runtime_error if the file cannot be opened.
std::string read_workload_source(const std::string& name);

/// Bench/example helper: load_workload, but print the diagnostic and
/// exit(1) on a missing source instead of letting the exception escape
/// main (mirrors rvasm::assemble_or_die).
core::Program load_workload_or_exit(const isa::OpcodeTable& table,
                                    const std::string& name);

}  // namespace binsym::workloads
