// Semantics registry: OpcodeId -> formal semantics AST.
//
// Together with isa::OpcodeTable this forms the complete "formal ISA
// specification" artifact: the table says how instructions *look* (Fig. 3),
// the registry says what they *do* (Fig. 4). Both are extensible at runtime;
// registration typechecks the semantics against the instruction's operand
// format so ill-formed specs are rejected before execution.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "dsl/typecheck.hpp"
#include "isa/opcodes.hpp"

namespace binsym::spec {

class Registry {
 public:
  /// Attach semantics to an instruction; fails (returning the type errors)
  /// if the semantics reference operands the format does not provide or are
  /// width-incoherent.
  std::vector<dsl::TypeError> set(const isa::OpcodeTable& table,
                                  isa::OpcodeId id, dsl::Semantics semantics);

  const dsl::Semantics* get(isa::OpcodeId id) const {
    if (id >= entries_.size() || !entries_[id].valid) return nullptr;
    return &entries_[id].semantics;
  }

  size_t size() const {
    size_t n = 0;
    for (const Entry& e : entries_) n += e.valid;
    return n;
  }

 private:
  struct Entry {
    bool valid = false;
    dsl::Semantics semantics;
  };
  std::vector<Entry> entries_;
};

/// Populate `registry` with the full RV32I base semantics.
void install_rv32i(Registry& registry, const isa::OpcodeTable& table);

/// Populate `registry` with the M extension (MUL/DIV family).
void install_rv32m(Registry& registry, const isa::OpcodeTable& table);

/// Populate `registry` with system/Zicsr semantics (ECALL, EBREAK, FENCE,
/// CSR accesses, MRET/WFI as no-ops at this abstraction level).
void install_system(Registry& registry, const isa::OpcodeTable& table);

/// Everything above in one call. Aborts (assert) on any type error, which
/// cannot happen for the shipped spec — covered by tests.
void install_rv32im(Registry& registry, const isa::OpcodeTable& table);

/// The paper's Sect. IV case study: register the custom MADD instruction
/// (encoding via the Fig. 3 description, semantics via Fig. 4) into an
/// existing table + registry. Returns the assigned opcode id.
std::optional<isa::OpcodeId> install_custom_madd(isa::OpcodeTable& table,
                                                 Registry& registry);

/// The 7 lines of Fig. 3, verbatim, as shipped description text.
const char* madd_opcode_description();

/// Register the full RV32 Zbb bit-manipulation extension (18 instructions)
/// at runtime — encodings + semantics only, no engine changes (see
/// spec/zbb.cpp). Returns the assigned ids, or nullopt on collision.
std::optional<std::vector<isa::OpcodeId>> install_zbb(isa::OpcodeTable& table,
                                                      Registry& registry);

}  // namespace binsym::spec
