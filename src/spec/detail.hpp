// Internal helpers shared by the spec translation units. Not part of the
// public API.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "dsl/builder.hpp"
#include "spec/registry.hpp"

namespace binsym::spec::detail {

/// Register a semantics and abort on type errors: the shipped specification
/// must be well-formed by construction (tests verify the same property
/// through the public typecheck API without aborting).
inline void set_checked(Registry& registry, const isa::OpcodeTable& table,
                        isa::OpcodeId id, dsl::Semantics semantics) {
  auto errors = registry.set(table, id, std::move(semantics));
  if (!errors.empty()) {
    std::fprintf(stderr, "spec type error in %s: %s\n",
                 table.by_id(id).name.c_str(), errors.front().message.c_str());
    std::abort();
  }
}

}  // namespace binsym::spec::detail
