// The paper's Sect. IV extensibility case study: a custom MADD instruction
// computing rd = (rs1 * rs2) + rs3.
//
// Encoding: the 7 lines of YAML from Fig. 3, parsed by the riscv-opcodes
// description parser. Semantics: the 7 lines of Haskell from Fig. 4,
// transliterated into the DSL. No engine, interpreter or solver code knows
// about MADD — that is the point of the case study.
#include "dsl/builder.hpp"
#include "isa/opcode_desc.hpp"
#include "spec/detail.hpp"
#include "spec/registry.hpp"

namespace binsym::spec {

const char* madd_opcode_description() {
  return R"(madd:
  encoding: '-----01------------------1000011'
  extension: [rv_zimadd]
  mask: '0x600007f'
  match: '0x2000043'
  variable_fields: [rd, rs1, rs2, rs3]
)";
}

std::optional<isa::OpcodeId> install_custom_madd(isa::OpcodeTable& table,
                                                 Registry& registry) {
  auto ids = isa::register_opcode_descs(table, madd_opcode_description());
  if (!ids || ids->size() != 1) return std::nullopt;
  isa::OpcodeId id = ids->front();

  // instrSemantics MADD = do
  //   (rs1, rs2, rs3, rd) <- decodeAndReadR4Type
  //   let multResult = (sext rs1) `Mul` (sext rs2)
  //       multTrunc  = extract32 0 multResult
  //   WriteRegister rd $ (multTrunc `Add` rs3)          (Fig. 4)
  dsl::Semantics semantics =
      dsl::define_semantics([](dsl::SemBuilder& s) {
        dsl::E mult_result =
            dsl::mul(dsl::sext(s.rs1(), 64), dsl::sext(s.rs2(), 64));
        dsl::E mult_trunc = dsl::extract(mult_result, 31, 0);
        s.write_register(dsl::add(mult_trunc, s.rs3()));
      });

  if (!registry.set(table, id, std::move(semantics)).empty())
    return std::nullopt;
  return id;
}

}  // namespace binsym::spec
