// Formal semantics of the RV32I base instruction set, written in the
// specification DSL. Reference: The RISC-V Instruction Set Manual Volume I,
// v20191213, Chapter 2. Structure intentionally mirrors LibRISCV: one
// `instrSemantics` definition per instruction, in terms of the language
// primitives only.
#include "dsl/builder.hpp"
#include "spec/detail.hpp"
#include "spec/registry.hpp"

namespace binsym::spec {

namespace {

using dsl::E;
using dsl::SemBuilder;
using dsl::Semantics;
using dsl::c32;
using dsl::define_semantics;
using detail::set_checked;

// Shift amounts use the *lower 5 bits* of the source (RISC-V manual
// Sect. 2.4.1) — the masking is explicit in the spec, so the saturating SMT
// shifts below never see an oversized amount.
E shift_amount(E source) { return dsl::and_(source, c32(0x1f)); }

/// Materialize a width-1 condition as a 0/1 register value (SLT family).
E bool_to_reg(E cond) { return dsl::ite(cond, c32(1), c32(0)); }

Semantics arith_r(dsl::ExprOp op) {
  return define_semantics([op](SemBuilder& s) {
    s.write_register(dsl::bin(op, s.rs1(), s.rs2()));
  });
}

Semantics arith_i(dsl::ExprOp op) {
  return define_semantics([op](SemBuilder& s) {
    s.write_register(dsl::bin(op, s.rs1(), s.imm()));
  });
}

/// Conditional branch: `runIfElse cond (WritePC pc+imm) (fallthrough)`.
/// The empty else block leaves the default next-pc (pc+4) in place.
Semantics branch(const std::function<E(SemBuilder&)>& cond) {
  return define_semantics([cond](SemBuilder& s) {
    s.run_if(cond(s), [](SemBuilder& t) {
      t.write_pc(dsl::add(t.pc(), t.imm()));
    });
  });
}

Semantics load(unsigned bytes, bool sign_extend) {
  return define_semantics([bytes, sign_extend](SemBuilder& s) {
    E addr = dsl::add(s.rs1(), s.imm());
    E value = s.load(bytes, addr, sign_extend);
    s.write_register(sign_extend ? dsl::sext(value, 32)
                                 : dsl::zext(value, 32));
  });
}

Semantics store(unsigned bytes) {
  return define_semantics([bytes](SemBuilder& s) {
    E addr = dsl::add(s.rs1(), s.imm());
    E value = bytes == 4 ? s.rs2() : dsl::extract(s.rs2(), bytes * 8 - 1, 0);
    s.store(bytes, addr, value);
  });
}

}  // namespace

void install_rv32i(Registry& registry, const isa::OpcodeTable& table) {
  auto def = [&](isa::OpcodeId id, Semantics semantics) {
    set_checked(registry, table, id, std::move(semantics));
  };

  // -- Upper-immediate / control transfer. ------------------------------------

  def(isa::kLUI, define_semantics([](SemBuilder& s) {
        s.write_register(s.imm());
      }));

  def(isa::kAUIPC, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::add(s.pc(), s.imm()));
      }));

  def(isa::kJAL, define_semantics([](SemBuilder& s) {
        // Link value is the next sequential pc: pc + encoding size (4, or
        // 2 when reached through the compressed c.jal expansion).
        s.write_register(dsl::add(s.pc(), s.instr_size()));
        s.write_pc(dsl::add(s.pc(), s.imm()));
      }));

  def(isa::kJALR, define_semantics([](SemBuilder& s) {
        // Target drops bit 0 (manual Sect. 2.5); link written after the
        // target is computed so JALR rd==rs1 behaves correctly.
        E target = s.let_(dsl::and_(dsl::add(s.rs1(), s.imm()),
                                    c32(0xfffffffe)));
        s.write_register(dsl::add(s.pc(), s.instr_size()));
        s.write_pc(target);
      }));

  // -- Conditional branches. -----------------------------------------------------

  def(isa::kBEQ,  branch([](SemBuilder& s) { return dsl::eq(s.rs1(), s.rs2()); }));
  def(isa::kBNE,  branch([](SemBuilder& s) { return dsl::ne(s.rs1(), s.rs2()); }));
  def(isa::kBLT,  branch([](SemBuilder& s) { return dsl::slt(s.rs1(), s.rs2()); }));
  def(isa::kBGE,  branch([](SemBuilder& s) { return dsl::sge(s.rs1(), s.rs2()); }));
  def(isa::kBLTU, branch([](SemBuilder& s) { return dsl::ult(s.rs1(), s.rs2()); }));
  def(isa::kBGEU, branch([](SemBuilder& s) { return dsl::uge(s.rs1(), s.rs2()); }));

  // -- Loads / stores. -------------------------------------------------------------

  def(isa::kLB,  load(1, /*sign_extend=*/true));
  def(isa::kLH,  load(2, /*sign_extend=*/true));
  def(isa::kLW,  load(4, /*sign_extend=*/true));
  def(isa::kLBU, load(1, /*sign_extend=*/false));
  def(isa::kLHU, load(2, /*sign_extend=*/false));
  def(isa::kSB,  store(1));
  def(isa::kSH,  store(2));
  def(isa::kSW,  store(4));

  // -- Register-immediate ALU. -------------------------------------------------------

  def(isa::kADDI, arith_i(dsl::ExprOp::kAdd));
  def(isa::kXORI, arith_i(dsl::ExprOp::kXor));
  def(isa::kORI,  arith_i(dsl::ExprOp::kOr));
  def(isa::kANDI, arith_i(dsl::ExprOp::kAnd));

  def(isa::kSLTI, define_semantics([](SemBuilder& s) {
        s.write_register(bool_to_reg(dsl::slt(s.rs1(), s.imm())));
      }));
  def(isa::kSLTIU, define_semantics([](SemBuilder& s) {
        s.write_register(bool_to_reg(dsl::ult(s.rs1(), s.imm())));
      }));

  // Immediate shifts: the 5-bit shamt field is an *unsigned* amount —
  // exactly the property angr's lifter got wrong (paper bug #4).
  def(isa::kSLLI, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::shl(s.rs1(), s.shamt()));
      }));
  def(isa::kSRLI, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::lshr(s.rs1(), s.shamt()));
      }));
  def(isa::kSRAI, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::ashr(s.rs1(), s.shamt()));
      }));

  // -- Register-register ALU. ------------------------------------------------------

  def(isa::kADD, arith_r(dsl::ExprOp::kAdd));
  def(isa::kSUB, arith_r(dsl::ExprOp::kSub));
  def(isa::kXOR, arith_r(dsl::ExprOp::kXor));
  def(isa::kOR,  arith_r(dsl::ExprOp::kOr));
  def(isa::kAND, arith_r(dsl::ExprOp::kAnd));

  def(isa::kSLT, define_semantics([](SemBuilder& s) {
        s.write_register(bool_to_reg(dsl::slt(s.rs1(), s.rs2())));
      }));
  def(isa::kSLTU, define_semantics([](SemBuilder& s) {
        s.write_register(bool_to_reg(dsl::ult(s.rs1(), s.rs2())));
      }));

  // Register shifts take the amount from the *value* of rs2 (low 5 bits) —
  // not the rs2 register index (paper bug #2).
  def(isa::kSLL, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::shl(s.rs1(), shift_amount(s.rs2())));
      }));
  def(isa::kSRL, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::lshr(s.rs1(), shift_amount(s.rs2())));
      }));
  def(isa::kSRA, define_semantics([](SemBuilder& s) {
        // Arithmetic, not logical, right shift (paper bug #1).
        s.write_register(dsl::ashr(s.rs1(), shift_amount(s.rs2())));
      }));
}

}  // namespace binsym::spec
