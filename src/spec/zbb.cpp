// The RISC-V Zbb (basic bit-manipulation) extension, expressed entirely in
// existing DSL primitives and registered at runtime — the paper's
// extensibility argument at the scale of a full ratified extension
// ("RISC-V has 41 ratified extensions ... binary analysis tools must catch
// up", Sect. I). Count-leading-zeros and friends need no new primitives:
// they are ite/extract/add networks over the operand bits.
//
// Encodings follow riscv-opcodes (rv32_zbb). Unary instructions live in the
// OP-IMM space with the full imm field pinned by the mask.
#include "dsl/builder.hpp"
#include "spec/detail.hpp"
#include "spec/registry.hpp"

namespace binsym::spec {

namespace {

using dsl::E;
using dsl::SemBuilder;
using dsl::Semantics;
using dsl::c32;
using dsl::define_semantics;

constexpr uint32_t kMaskR = 0xfe00707f;      // funct7 + funct3 + opcode
constexpr uint32_t kMaskUnary = 0xfff0707f;  // + pinned rs2 field

E bit(E x, unsigned i) { return dsl::extract(x, i, i); }

/// clz/ctz as a fold of ites over the operand bits; `from_msb` selects clz.
E count_zeros(E x, bool from_msb) {
  // Scan from the far end toward the near end: the innermost ite wins for
  // the bit closest to the counted end.
  E result = c32(32);
  for (unsigned i = 0; i < 32; ++i) {
    // Ites apply outermost-last, so the final iteration has the highest
    // priority: bit 31 for clz, bit 0 for ctz.
    unsigned bit_index = from_msb ? i : 31 - i;
    unsigned count = from_msb ? 31 - bit_index : bit_index;
    result = dsl::ite(dsl::eq(bit(x, bit_index), dsl::constant(1, 1)),
                      c32(count), result);
  }
  return result;
}

E popcount(E x) {
  E sum = c32(0);
  for (unsigned i = 0; i < 32; ++i)
    sum = dsl::add(sum, dsl::zext(bit(x, i), 32));
  return sum;
}

E rotate_left(E x, E amount) {
  // With saturating SMT shifts, (x << s) | (x >> (32-s)) is correct for
  // s in [0, 31]: s == 0 makes the right shift saturate to 0.
  return dsl::or_(dsl::shl(x, amount), dsl::lshr(x, dsl::sub(c32(32), amount)));
}

E rotate_right(E x, E amount) {
  return dsl::or_(dsl::lshr(x, amount), dsl::shl(x, dsl::sub(c32(32), amount)));
}

}  // namespace

std::optional<std::vector<isa::OpcodeId>> install_zbb(isa::OpcodeTable& table,
                                                      Registry& registry) {
  struct Def {
    const char* name;
    uint32_t mask, match;
    isa::Format format;
    Semantics semantics;
  };

  auto r_amount = [](SemBuilder& s) { return dsl::and_(s.rs2(), c32(0x1f)); };

  std::vector<Def> defs;
  defs.push_back({"andn", kMaskR, 0x40007033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(dsl::and_(s.rs1(), dsl::not_(s.rs2())));
                  })});
  defs.push_back({"orn", kMaskR, 0x40006033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(dsl::or_(s.rs1(), dsl::not_(s.rs2())));
                  })});
  defs.push_back({"xnor", kMaskR, 0x40004033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(dsl::not_(dsl::xor_(s.rs1(), s.rs2())));
                  })});
  defs.push_back({"clz", kMaskUnary, 0x60001013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(count_zeros(s.rs1(), /*from_msb=*/true));
                  })});
  defs.push_back({"ctz", kMaskUnary, 0x60101013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(count_zeros(s.rs1(), /*from_msb=*/false));
                  })});
  defs.push_back({"cpop", kMaskUnary, 0x60201013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(popcount(s.rs1()));
                  })});
  defs.push_back({"sext.b", kMaskUnary, 0x60401013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(dsl::sext(dsl::extract(s.rs1(), 7, 0), 32));
                  })});
  defs.push_back({"sext.h", kMaskUnary, 0x60501013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(dsl::sext(dsl::extract(s.rs1(), 15, 0), 32));
                  })});
  defs.push_back({"zext.h", kMaskUnary, 0x08004033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(dsl::zext(dsl::extract(s.rs1(), 15, 0), 32));
                  })});
  defs.push_back({"min", kMaskR, 0x0a004033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(
                        dsl::ite(dsl::slt(s.rs1(), s.rs2()), s.rs1(), s.rs2()));
                  })});
  defs.push_back({"minu", kMaskR, 0x0a005033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(
                        dsl::ite(dsl::ult(s.rs1(), s.rs2()), s.rs1(), s.rs2()));
                  })});
  defs.push_back({"max", kMaskR, 0x0a006033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(
                        dsl::ite(dsl::sgt(s.rs1(), s.rs2()), s.rs1(), s.rs2()));
                  })});
  defs.push_back({"maxu", kMaskR, 0x0a007033, isa::Format::kR,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(
                        dsl::ite(dsl::ugt(s.rs1(), s.rs2()), s.rs1(), s.rs2()));
                  })});
  defs.push_back({"rol", kMaskR, 0x60001033, isa::Format::kR,
                  define_semantics([r_amount](SemBuilder& s) {
                    s.write_register(rotate_left(s.rs1(), r_amount(s)));
                  })});
  defs.push_back({"ror", kMaskR, 0x60005033, isa::Format::kR,
                  define_semantics([r_amount](SemBuilder& s) {
                    s.write_register(rotate_right(s.rs1(), r_amount(s)));
                  })});
  defs.push_back({"rori", kMaskR, 0x60005013, isa::Format::kIShift,
                  define_semantics([](SemBuilder& s) {
                    s.write_register(rotate_right(s.rs1(), s.shamt()));
                  })});
  defs.push_back({"orc.b", kMaskUnary, 0x28705013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    // Each byte -> 0xff if any bit set, else 0x00.
                    E x = s.rs1();
                    E out = dsl::constant(0, 1);  // placeholder, replaced below
                    for (unsigned b = 0; b < 4; ++b) {
                      E byte = dsl::extract(x, 8 * b + 7, 8 * b);
                      E mask = dsl::ite(dsl::eq(byte, dsl::constant(0, 8)),
                                        dsl::constant(0, 8),
                                        dsl::constant(0xff, 8));
                      out = b == 0 ? mask : dsl::concat(mask, out);
                    }
                    s.write_register(out);
                  })});
  defs.push_back({"rev8", kMaskUnary, 0x69805013, isa::Format::kI,
                  define_semantics([](SemBuilder& s) {
                    E x = s.rs1();
                    E out = dsl::extract(x, 31, 24);  // old MSB -> new LSB
                    for (unsigned b = 1; b < 4; ++b)
                      out = dsl::concat(
                          dsl::extract(x, 8 * (3 - b) + 7, 8 * (3 - b)), out);
                    s.write_register(out);
                  })});

  std::vector<isa::OpcodeId> ids;
  for (Def& def : defs) {
    auto id = table.add(def.name, def.mask, def.match, def.format, "rv_zbb");
    if (!id) return std::nullopt;
    if (!registry.set(table, *id, std::move(def.semantics)).empty())
      return std::nullopt;
    ids.push_back(*id);
  }
  return ids;
}

}  // namespace binsym::spec
