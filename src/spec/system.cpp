// System / Zicsr semantics: environment calls, breakpoints, fences and the
// CSR read-modify-write family. MRET/WFI are modelled as no-ops — at the
// user-level abstraction the SE engine operates on, there is no privileged
// trap state to return from (matching how SymEx-VP-class tools treat
// firmware that never takes interrupts).
#include "dsl/builder.hpp"
#include "spec/detail.hpp"
#include "spec/registry.hpp"

namespace binsym::spec {

namespace {
using dsl::E;
using dsl::SemBuilder;
using dsl::Semantics;
using dsl::c32;
using dsl::define_semantics;
using detail::set_checked;
}  // namespace

void install_system(Registry& registry, const isa::OpcodeTable& table) {
  auto def = [&](isa::OpcodeId id, Semantics semantics) {
    set_checked(registry, table, id, std::move(semantics));
  };

  def(isa::kFENCE, define_semantics([](SemBuilder& s) { s.fence(); }));
  def(isa::kECALL, define_semantics([](SemBuilder& s) { s.ecall(); }));
  def(isa::kEBREAK, define_semantics([](SemBuilder& s) { s.ebreak(); }));
  def(isa::kMRET, define_semantics([](SemBuilder&) {}));
  def(isa::kWFI, define_semantics([](SemBuilder&) {}));

  // CSR instructions read the old value first, then apply the write rule.
  // Write-back to rd of x0 is discarded by the register file itself (x0 is
  // hardwired), so the spec needs no special case.
  def(isa::kCSRRW, define_semantics([](SemBuilder& s) {
        E old = s.let_(s.csr_val());
        s.write_csr(s.rs1());
        s.write_register(old);
      }));
  def(isa::kCSRRS, define_semantics([](SemBuilder& s) {
        E old = s.let_(s.csr_val());
        s.write_csr(dsl::or_(old, s.rs1()));
        s.write_register(old);
      }));
  def(isa::kCSRRC, define_semantics([](SemBuilder& s) {
        E old = s.let_(s.csr_val());
        s.write_csr(dsl::and_(old, dsl::not_(s.rs1())));
        s.write_register(old);
      }));
  // Immediate forms use the 5-bit zimm (the rs1 field), zero-extended —
  // exposed as the CSR format's immediate.
  def(isa::kCSRRWI, define_semantics([](SemBuilder& s) {
        E old = s.let_(s.csr_val());
        s.write_csr(s.imm());
        s.write_register(old);
      }));
  def(isa::kCSRRSI, define_semantics([](SemBuilder& s) {
        E old = s.let_(s.csr_val());
        s.write_csr(dsl::or_(old, s.imm()));
        s.write_register(old);
      }));
  def(isa::kCSRRCI, define_semantics([](SemBuilder& s) {
        E old = s.let_(s.csr_val());
        s.write_csr(dsl::and_(old, dsl::not_(s.imm())));
        s.write_register(old);
      }));
}

}  // namespace binsym::spec
