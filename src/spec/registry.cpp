#include "spec/registry.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace binsym::spec {

std::vector<dsl::TypeError> Registry::set(const isa::OpcodeTable& table,
                                          isa::OpcodeId id,
                                          dsl::Semantics semantics) {
  const isa::OpcodeInfo& info = table.by_id(id);
  std::vector<dsl::TypeError> errors = dsl::typecheck(semantics, info.format);
  if (!errors.empty()) return errors;
  if (entries_.size() <= id) entries_.resize(id + 1);
  entries_[id] = Entry{true, std::move(semantics)};
  return {};
}

void install_rv32im(Registry& registry, const isa::OpcodeTable& table) {
  install_rv32i(registry, table);
  install_rv32m(registry, table);
  install_system(registry, table);
}

}  // namespace binsym::spec
