// Formal semantics of the RV32M multiply/divide extension. Reference:
// RISC-V manual Volume I, v20191213, Chapter 7.
#include "dsl/builder.hpp"
#include "spec/detail.hpp"
#include "spec/registry.hpp"

namespace binsym::spec {

namespace {
using dsl::E;
using dsl::SemBuilder;
using dsl::Semantics;
using dsl::c32;
using dsl::define_semantics;
using detail::set_checked;
}  // namespace

void install_rv32m(Registry& registry, const isa::OpcodeTable& table) {
  auto def = [&](isa::OpcodeId id, Semantics semantics) {
    set_checked(registry, table, id, std::move(semantics));
  };

  def(isa::kMUL, define_semantics([](SemBuilder& s) {
        s.write_register(dsl::mul(s.rs1(), s.rs2()));
      }));

  // The MULH family computes the upper 32 bits of the 64-bit product under
  // the respective signedness interpretation.
  auto mulh = [](bool sext1, bool sext2) {
    return define_semantics([sext1, sext2](SemBuilder& s) {
      E a = sext1 ? dsl::sext(s.rs1(), 64) : dsl::zext(s.rs1(), 64);
      E b = sext2 ? dsl::sext(s.rs2(), 64) : dsl::zext(s.rs2(), 64);
      s.write_register(dsl::extract(dsl::mul(a, b), 63, 32));
    });
  };
  def(isa::kMULH,   mulh(true, true));
  def(isa::kMULHSU, mulh(true, false));
  def(isa::kMULHU,  mulh(false, false));

  // Division handles the divisor-by-zero case with an explicit runIfElse,
  // exactly like the paper's Fig. 2 DIVU description. An SE engine therefore
  // *forks* on a symbolic divisor — the behaviour Sect. III-B describes.
  // The signed-overflow case (INT_MIN / -1 == INT_MIN) needs no extra branch
  // because SMT bvsdiv wraps identically.
  def(isa::kDIV, define_semantics([](SemBuilder& s) {
        s.run_if_else(
            dsl::eq(s.rs2(), c32(0)),
            [](SemBuilder& t) { t.write_register(c32(0xffffffff)); },
            [](SemBuilder& t) { t.write_register(dsl::sdiv(t.rs1(), t.rs2())); });
      }));
  def(isa::kDIVU, define_semantics([](SemBuilder& s) {
        s.run_if_else(
            dsl::eq(s.rs2(), c32(0)),
            [](SemBuilder& t) { t.write_register(c32(0xffffffff)); },
            [](SemBuilder& t) { t.write_register(dsl::udiv(t.rs1(), t.rs2())); });
      }));
  def(isa::kREM, define_semantics([](SemBuilder& s) {
        s.run_if_else(
            dsl::eq(s.rs2(), c32(0)),
            [](SemBuilder& t) { t.write_register(t.rs1()); },
            [](SemBuilder& t) { t.write_register(dsl::srem(t.rs1(), t.rs2())); });
      }));
  def(isa::kREMU, define_semantics([](SemBuilder& s) {
        s.run_if_else(
            dsl::eq(s.rs2(), c32(0)),
            [](SemBuilder& t) { t.write_register(t.rs1()); },
            [](SemBuilder& t) { t.write_register(dsl::urem(t.rs1(), t.rs2())); });
      }));
}

}  // namespace binsym::spec
