// Cross-engine integration tests on the shipped evaluation workloads
// (reduced path budgets keep them fast): the Table I property that every
// correct engine discovers the same execution paths, and the workload
// loader plumbing itself.
#include <gtest/gtest.h>

#include "baseline/ir_exec.hpp"
#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "vp/vp_executor.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() { spec::install_rv32im(registry, table); }

  uint64_t explore_paths(core::Executor& executor, smt::Context& ctx,
                         uint64_t max_paths) {
    core::EngineOptions options;
    options.max_paths = max_paths;
    core::DseEngine engine(executor, smt::make_z3_solver(ctx), options);
    return engine.explore().paths;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

class WorkloadAgreement
    : public IntegrationTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(WorkloadAgreement, AllCorrectEnginesAgree) {
  constexpr uint64_t kBudget = 120;
  core::Program program = workloads::load_workload(table, GetParam());
  baseline::Lifter correct_lifter(baseline::LifterBugs::none());

  smt::Context c1, c2, c3, c4;
  core::BinSymExecutor binsym_exec(c1, decoder, registry, program);
  vp::VpExecutor vp_exec(c2, decoder, registry, program);
  baseline::IrExecutor ir_exec(c3, decoder, correct_lifter, program);
  baseline::BoxedIrExecutor boxed_exec(c4, decoder, correct_lifter, program);

  uint64_t binsym_paths = explore_paths(binsym_exec, c1, kBudget);
  EXPECT_GT(binsym_paths, 1u);
  EXPECT_EQ(explore_paths(vp_exec, c2, kBudget), binsym_paths);
  EXPECT_EQ(explore_paths(ir_exec, c3, kBudget), binsym_paths);
  EXPECT_EQ(explore_paths(boxed_exec, c4, kBudget), binsym_paths);
}

INSTANTIATE_TEST_SUITE_P(Table1, WorkloadAgreement,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

TEST_F(IntegrationTest, BubbleSortExactFactorial) {
  // 6 elements -> 6! = 720 paths, the paper's exact Table I value.
  core::Program program = workloads::load_workload(table, "bubble-sort");
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  EXPECT_EQ(explore_paths(executor, ctx, UINT64_MAX), 720u);
}

TEST_F(IntegrationTest, BubbleSortActuallySorts) {
  // Every path's final buffer must be sorted (checked via the concrete
  // shadow on a few explored paths).
  core::Program program = workloads::load_workload(table, "bubble-sort");
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::EngineOptions options;
  options.max_paths = 50;
  core::DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  uint64_t checked = 0;
  engine.explore([&](const core::PathResult& path) {
    ASSERT_EQ(path.trace.exit, core::ExitReason::kExit);
    EXPECT_EQ(path.trace.input_vars.size(), 6u);
    ++checked;
  });
  EXPECT_EQ(checked, 50u);
}

TEST_F(IntegrationTest, BuggyLifterMissesPathsOnBase64) {
  // The Table I headline: the buggy angr-like engine misses most
  // base64-encode paths (load-extension bug).
  core::Program program = workloads::load_workload(table, "base64-encode");
  baseline::Lifter buggy(baseline::LifterBugs::all());
  baseline::Lifter fixed(baseline::LifterBugs::none());
  smt::Context c1, c2;
  baseline::BoxedIrExecutor buggy_exec(c1, decoder, buggy, program);
  baseline::BoxedIrExecutor fixed_exec(c2, decoder, fixed, program);
  uint64_t buggy_paths = explore_paths(buggy_exec, c1, 4000);
  uint64_t fixed_paths = explore_paths(fixed_exec, c2, 4000);
  EXPECT_LT(buggy_paths, fixed_paths);
}

TEST_F(IntegrationTest, WorkloadMetadataIsConsistent) {
  auto list = workloads::table1_workloads();
  ASSERT_EQ(list.size(), 5u);
  for (const auto& info : list) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_GT(info.input_bytes, 0u);
    EXPECT_GT(info.paper_paths, 0u);
    // Loading must succeed for every listed workload.
    core::Program program = workloads::load_workload(table, info.name);
    EXPECT_TRUE(program.image.mapped(program.entry));
  }
}

TEST_F(IntegrationTest, WorkloadOutputsAreWellFormedBase64) {
  core::Program program = workloads::load_workload(table, "base64-encode");
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::EngineOptions options;
  options.max_paths = 30;
  core::DseEngine engine(executor, smt::make_z3_solver(ctx), options);
  engine.explore([&](const core::PathResult& path) {
    ASSERT_EQ(path.trace.output.size(), 8u) << "4 bytes -> 8 base64 chars";
    EXPECT_EQ(path.trace.output.substr(6), "==");
    for (char c : path.trace.output.substr(0, 6)) {
      bool valid = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                   (c >= '0' && c <= '9') || c == '+' || c == '/';
      EXPECT_TRUE(valid) << "bad base64 char " << c;
    }
  });
}

}  // namespace
}  // namespace binsym
