// Tests for the micro-op block fast path (interp/uop.hpp, block_cache.hpp,
// uop_run.hpp): lowering units, BlockCache store-invalidation/poisoning,
// randomized differential execution (fast path vs spec path vs the golden
// oracle, for both the concrete and the taint interpreter), a pinned
// self-modifying-code guest, and the engine-level bit-identity sweep — the
// fast path may only change cost, never the explored path set or the
// reported findings.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "core/finding.hpp"
#include "core/stats.hpp"
#include "elf/elf32.hpp"
#include "interp/block_cache.hpp"
#include "interp/concrete.hpp"
#include "interp/taint.hpp"
#include "interp/uop.hpp"
#include "isa/decoder.hpp"
#include "isa/encoding.hpp"
#include "oracle/rv32_oracle.hpp"
#include "oracles/manager.hpp"
#include "spec/registry.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

using interp::BlockCache;
using interp::UKind;
using interp::Uop;

class UopTestBase : public ::testing::Test {
 protected:
  UopTestBase() { spec::install_rv32im(registry, table); }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

// -- Lowering units. ---------------------------------------------------------

class UopLowering : public UopTestBase {
 protected:
  /// Lower the block at `image.entry` with a fetch that reads the
  /// assembled segments.
  unsigned lower(const elf::Image& image, uint32_t pc, Uop* out,
                 uint32_t* bytes) {
    std::unordered_map<uint32_t, uint8_t> mem;
    for (const elf::Segment& seg : image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        mem[seg.addr + static_cast<uint32_t>(i)] = seg.bytes[i];
    auto fetch = [&](uint32_t p, uint32_t* word) {
      *word = 0;
      for (unsigned i = 0; i < 4; ++i) {
        auto it = mem.find(p + i);
        if (it == mem.end()) return false;
        *word |= static_cast<uint32_t>(it->second) << (8 * i);
      }
      return true;
    };
    return interp::lower_block(decoder, registry, fetch, pc, out,
                               BlockCache::kMaxBlockUops, bytes);
  }

  elf::Image assemble(const char* source) {
    return rvasm::assemble_or_die(table, source).image;
  }
};

TEST_F(UopLowering, StraightLineRunEndsAtTerminatorWithResolvedOperands) {
  elf::Image image = assemble(R"(
_start:
    addi t1, t1, 3
    slli t2, t1, 4
    xor t3, t2, t1
    beq t1, t2, _start
    addi a0, a0, 1
)");
  Uop uops[BlockCache::kMaxBlockUops];
  uint32_t bytes = 0;
  unsigned count = lower(image, image.entry, uops, &bytes);
  ASSERT_EQ(count, 4u);
  EXPECT_EQ(bytes, 16u);  // the terminator is part of the block

  EXPECT_EQ(uops[0].kind, UKind::kAddi);
  EXPECT_EQ(uops[0].rd, 6u);   // t1
  EXPECT_EQ(uops[0].rs1, 6u);
  EXPECT_EQ(uops[0].imm, 3);
  EXPECT_EQ(uops[0].pc, image.entry);
  EXPECT_EQ(uops[0].size, 4u);

  EXPECT_EQ(uops[1].kind, UKind::kSlli);
  EXPECT_EQ(uops[1].imm, 4);  // shamt, not the raw I-immediate

  EXPECT_EQ(uops[3].kind, UKind::kBeq);
  EXPECT_EQ(uops[3].imm, -12);  // pc-relative offset back to _start
  EXPECT_EQ(uops[3].pc, image.entry + 12);
}

TEST_F(UopLowering, SystemInstructionEndsBlockBeforeItself) {
  elf::Image image = assemble(R"(
_start:
    addi a0, a0, 1
    addi a1, a1, 2
    ecall
    addi a2, a2, 3
)");
  Uop uops[BlockCache::kMaxBlockUops];
  uint32_t bytes = 0;
  unsigned count = lower(image, image.entry, uops, &bytes);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(bytes, 8u);  // the ecall stays on the spec path

  // A leader the fast path does not model lowers to nothing at all.
  count = lower(image, image.entry + 8, uops, &bytes);
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(bytes, 0u);
}

TEST_F(UopLowering, FetchDeclineEndsBlock) {
  elf::Image image = assemble(R"(
_start:
    addi a0, a0, 1
    addi a1, a1, 2
)");
  Uop uops[BlockCache::kMaxBlockUops];
  uint32_t bytes = 0;
  uint32_t limit = image.entry + 4;
  std::unordered_map<uint32_t, uint8_t> mem;
  for (const elf::Segment& seg : image.segments)
    for (size_t i = 0; i < seg.bytes.size(); ++i)
      mem[seg.addr + static_cast<uint32_t>(i)] = seg.bytes[i];
  auto fetch = [&](uint32_t p, uint32_t* word) {
    if (p >= limit) return false;  // e.g. the next page is poisoned
    *word = 0;
    for (unsigned i = 0; i < 4; ++i)
      *word |= static_cast<uint32_t>(mem[p + i]) << (8 * i);
    return true;
  };
  unsigned count = interp::lower_block(decoder, registry, fetch, image.entry,
                                       uops, BlockCache::kMaxBlockUops, &bytes);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(bytes, 4u);
}

// -- BlockCache: invalidation and poisoning. ---------------------------------

Uop nop_uop(uint32_t pc) {
  Uop u;
  u.kind = UKind::kFence;
  u.pc = pc;
  return u;
}

TEST(UopBlockCache, StoreDropsOverlappingBlocksAndPoisonsThePage) {
  BlockCache cache;
  Uop* buf = cache.begin_compile();
  buf[0] = nop_uop(0x1000);
  const BlockCache::Block* block = cache.finish_compile(0x1000, 1, 4);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->count, 1u);
  EXPECT_EQ(cache.lookup(0x1000), block);
  EXPECT_EQ(cache.cache_hits(), 1u);
  EXPECT_EQ(cache.blocks_compiled(), 1u);

  // A store into an unrelated, never-cached page drops nothing...
  EXPECT_FALSE(cache.on_guest_store(0x8000, 4));
  EXPECT_NE(cache.lookup(0x1000), nullptr);
  // ...but a store into the block's page drops it and poisons the page.
  EXPECT_TRUE(cache.on_guest_store(0x1800, 4));
  EXPECT_EQ(cache.lookup(0x1000), nullptr);
  EXPECT_TRUE(cache.page_poisoned(0x1000));
  EXPECT_GE(cache.invalidations(), 1u);
  // Repeated stores into the now-poisoned page are cheap no-ops.
  EXPECT_FALSE(cache.on_guest_store(0x1804, 4));
}

TEST(UopBlockCache, NegativeEntriesCountHitsButCarryNoUops) {
  BlockCache cache;
  cache.begin_compile();
  const BlockCache::Block* block = cache.finish_compile(0x2000, 0, 0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->count, 0u);
  EXPECT_EQ(cache.blocks_compiled(), 0u);  // nothing was lowered
  EXPECT_EQ(cache.lookup(0x2000), block);
  EXPECT_EQ(cache.cache_hits(), 1u);
}

TEST(UopBlockCache, PoisonSurvivesCapacityFlush) {
  BlockCache cache(/*max_blocks=*/2);
  cache.on_guest_store(0x1000, 1);
  ASSERT_TRUE(cache.page_poisoned(0x1000));
  // Overflow the two-entry cache so it flushes wholesale.
  for (uint32_t i = 0; i < 4; ++i) {
    Uop* buf = cache.begin_compile();
    buf[0] = nop_uop(0x5000 + i * 16);
    cache.finish_compile(0x5000 + i * 16, 1, 4);
  }
  // Poisoning is store history, not cache contents: it must survive.
  EXPECT_TRUE(cache.page_poisoned(0x1000));
}

// -- Randomized differential execution. --------------------------------------
//
// Random RV32IM instruction streams (memory operands disciplined onto a
// shared buffer through x8, every eighth slot a branch/jal skipping one
// slot) executed three ways: micro-op fast path, per-instruction spec
// path, and the independent golden oracle. Registers, pc and every touched
// memory byte must agree — the same methodology as test_spec_oracle.cpp,
// but across block boundaries, budget limits and both branch outcomes.

constexpr uint32_t kCodeBase = 0x4000;
constexpr uint32_t kBufBase = 0x1000;
constexpr uint32_t kBufSize = 256;
constexpr unsigned kSlots = 512;
constexpr uint64_t kStepBudget = 200;

class UopDifferential : public UopTestBase,
                        public ::testing::WithParamInterface<uint64_t> {
 protected:
  UopDifferential() {
    for (const isa::OpcodeInfo& info : table.entries()) {
      if (info.format == isa::Format::kCsr ||
          info.format == isa::Format::kSystem)
        continue;
      switch (info.id) {
        case isa::kBEQ: case isa::kBNE: case isa::kBLT: case isa::kBGE:
        case isa::kBLTU: case isa::kBGEU:
          branch_pool_.push_back(&info);
          continue;
        case isa::kJAL:
          jal_ = &info;  // joins the branch slots with a fixed +8 target
          continue;
        case isa::kJALR:
          continue;  // register-relative targets would leave the stream
        default:
          straight_pool_.push_back(&info);
      }
    }
    EXPECT_FALSE(straight_pool_.empty());
    EXPECT_FALSE(branch_pool_.empty());
    EXPECT_NE(jal_, nullptr);
  }

  static bool is_load(isa::OpcodeId id) {
    return id == isa::kLB || id == isa::kLH || id == isa::kLW ||
           id == isa::kLBU || id == isa::kLHU;
  }
  static bool is_store(isa::OpcodeId id) {
    return id == isa::kSB || id == isa::kSH || id == isa::kSW;
  }
  static bool has_rd_field(isa::Format f) {
    return f == isa::Format::kR || f == isa::Format::kI ||
           f == isa::Format::kU || f == isa::Format::kJ;
  }
  static uint32_t set_rd(uint32_t word, uint32_t rd) {
    return (word & ~(0x1fu << 7)) | (rd << 7);
  }
  static uint32_t set_rs1(uint32_t word, uint32_t rs1) {
    return (word & ~(0x1fu << 15)) | (rs1 << 15);
  }

  /// One random non-branching instruction. x8 is the reserved buffer base:
  /// memory ops use it with a small positive offset, and nothing writes it.
  uint32_t random_straight_word(Rng& rng) {
    for (;;) {
      const isa::OpcodeInfo& info =
          *straight_pool_[rng.below(straight_pool_.size())];
      uint32_t word = info.match | (rng.next32() & ~info.mask);
      if (is_load(info.id)) {
        word &= 0x000fffff;  // clear imm, then clamp it to [0, 127]
        word |= (rng.next32() & 0x7f) << 20;
        word |= info.match;
        word = set_rs1(word, 8);
      } else if (is_store(info.id)) {
        word = isa::encode_s(info.match & 0x7f, (info.match >> 12) & 7, 8,
                             static_cast<uint32_t>(rng.below(32)),
                             rng.next32() & 0x7f);
      }
      if (has_rd_field(info.format) && ((word >> 7) & 0x1f) == 8)
        word = set_rd(word, 9);
      auto decoded = decoder.decode(word);
      if (decoded && decoded->id() == info.id) return word;
    }
  }

  /// A branch (any of the six kinds) or jal skipping exactly one slot, so
  /// both outcomes stay inside the stream.
  uint32_t random_branch_word(Rng& rng) {
    if (rng.below(7) == 0) {
      uint32_t rd = static_cast<uint32_t>(rng.below(32));
      if (rd == 8) rd = 9;
      return isa::encode_j(jal_->match & 0x7f, rd, 8);
    }
    const isa::OpcodeInfo& info =
        *branch_pool_[rng.below(branch_pool_.size())];
    return isa::encode_b(info.match & 0x7f, (info.match >> 12) & 7,
                         static_cast<uint32_t>(rng.below(32)),
                         static_cast<uint32_t>(rng.below(32)), 8);
  }

  std::vector<uint32_t> random_stream(Rng& rng) {
    std::vector<uint32_t> slots(kSlots);
    for (unsigned i = 0; i < kSlots; ++i)
      slots[i] = (i % 8 == 7) ? random_branch_word(rng)
                              : random_straight_word(rng);
    return slots;
  }

  /// Random register value with the corner-case bias of the spec-oracle
  /// differential.
  static uint32_t random_reg(Rng& rng) {
    uint32_t value = rng.next32();
    switch (rng.below(8)) {
      case 0: return 0;
      case 1: return 0xffffffffu;
      case 2: return 0x80000000u;
      default: return value;
    }
  }

  std::vector<const isa::OpcodeInfo*> straight_pool_;
  std::vector<const isa::OpcodeInfo*> branch_pool_;
  const isa::OpcodeInfo* jal_ = nullptr;
};

TEST_P(UopDifferential, ConcreteFastPathMatchesSpecPathAndOracle) {
  Rng rng(GetParam());
  uint64_t blocks_compiled = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<uint32_t> slots = random_stream(rng);

    interp::Iss fast(decoder, registry, /*uop_fastpath=*/true);
    interp::Iss slow(decoder, registry, /*uop_fastpath=*/false);
    oracle::OracleState oracle_state;

    for (unsigned r = 1; r < 32; ++r) {
      uint32_t value = random_reg(rng);
      fast.machine().regs_[r] = interp::cval(value, 32);
      slow.machine().regs_[r] = interp::cval(value, 32);
      oracle_state.regs[r] = value;
    }
    const uint32_t base = kBufBase + 64;
    fast.machine().regs_[8] = interp::cval(base, 32);
    slow.machine().regs_[8] = interp::cval(base, 32);
    oracle_state.regs[8] = base;
    for (uint32_t i = 0; i < kBufSize; ++i) {
      uint8_t byte = static_cast<uint8_t>(rng.next());
      fast.machine().memory_.write8(kBufBase + i, byte);
      slow.machine().memory_.write8(kBufBase + i, byte);
    }
    for (unsigned i = 0; i < kSlots; ++i) {
      fast.machine().memory_.write(kCodeBase + 4 * i, 4, slots[i]);
      slow.machine().memory_.write(kCodeBase + 4 * i, 4, slots[i]);
    }
    fast.machine().pc_ = kCodeBase;
    slow.machine().pc_ = kCodeBase;
    oracle_state.pc = kCodeBase;

    // Oracle first: it reads the (still pristine) slow machine's memory.
    std::unordered_map<uint32_t, uint8_t> shadow;
    oracle_state.load8 = [&](uint32_t addr) {
      auto it = shadow.find(addr);
      return it != shadow.end()
                 ? it->second
                 : static_cast<uint8_t>(slow.machine().memory_.read8(addr));
    };
    oracle_state.store8 = [&](uint32_t addr, uint8_t v) { shadow[addr] = v; };
    for (uint64_t step = 0; step < kStepBudget; ++step) {
      uint32_t index = (oracle_state.pc - kCodeBase) / 4;
      ASSERT_LT(index, kSlots) << "oracle left the stream at step " << step;
      auto decoded = decoder.decode(slots[index]);
      ASSERT_TRUE(decoded.has_value());
      ASSERT_TRUE(oracle_step(oracle_state, *decoded));
    }

    uint64_t slow_steps = slow.run(kStepBudget);
    uint64_t fast_steps = fast.run(kStepBudget);
    ASSERT_EQ(slow_steps, kStepBudget) << "round " << round;
    EXPECT_EQ(fast_steps, slow_steps) << "round " << round;

    for (unsigned r = 0; r < 32; ++r) {
      EXPECT_EQ(fast.machine().regs_[r].v, slow.machine().regs_[r].v)
          << "round " << round << " x" << r;
      EXPECT_EQ(slow.machine().regs_[r].v, oracle_state.reg(r))
          << "round " << round << " x" << r;
    }
    EXPECT_EQ(fast.machine().pc_, slow.machine().pc_) << "round " << round;
    EXPECT_EQ(slow.machine().pc_, oracle_state.pc) << "round " << round;
    for (uint32_t i = 0; i < kBufSize; ++i)
      EXPECT_EQ(fast.machine().memory_.read8(kBufBase + i),
                slow.machine().memory_.read8(kBufBase + i))
          << "round " << round << " buf+" << i;
    for (const auto& [addr, value] : shadow)
      EXPECT_EQ(slow.machine().memory_.read8(addr), value)
          << "round " << round << " mem[0x" << std::hex << addr << "]";

    blocks_compiled += fast.uop_counters().blocks_compiled;
    EXPECT_EQ(slow.uop_counters().blocks_compiled, 0u);
  }
  EXPECT_GT(blocks_compiled, 0u);
}

TEST_P(UopDifferential, TaintFastPathMatchesSpecPath) {
  Rng rng(GetParam() + 100);
  uint64_t blocks_compiled = 0;
  for (int round = 0; round < 4; ++round) {
    std::vector<uint32_t> slots = random_stream(rng);

    interp::TaintTracker fast(decoder, registry, /*uop_fastpath=*/true);
    interp::TaintTracker slow(decoder, registry, /*uop_fastpath=*/false);

    for (unsigned r = 1; r < 32; ++r) {
      uint32_t value = random_reg(rng);
      bool tainted = r == 5 || r == 12;  // two taint sources in registers
      fast.machine().regs_[r] = {value, 32, tainted};
      slow.machine().regs_[r] = {value, 32, tainted};
    }
    const uint32_t base = kBufBase + 64;
    fast.machine().regs_[8] = {base, 32, false};
    slow.machine().regs_[8] = {base, 32, false};
    for (uint32_t i = 0; i < kBufSize; ++i) {
      uint8_t byte = static_cast<uint8_t>(rng.next());
      fast.machine().memory_[kBufBase + i] = byte;
      slow.machine().memory_[kBufBase + i] = byte;
    }
    for (uint32_t i = 0; i < 8; ++i) {  // a tainted window inside the buffer
      fast.machine().taint_byte(kBufBase + 100 + i);
      slow.machine().taint_byte(kBufBase + 100 + i);
    }
    for (unsigned i = 0; i < kSlots; ++i)
      for (unsigned b = 0; b < 4; ++b) {
        uint8_t byte = static_cast<uint8_t>(slots[i] >> (8 * b));
        fast.machine().memory_[kCodeBase + 4 * i + b] = byte;
        slow.machine().memory_[kCodeBase + 4 * i + b] = byte;
      }
    fast.machine().pc_ = kCodeBase;
    slow.machine().pc_ = kCodeBase;

    uint64_t slow_steps = slow.run(kStepBudget);
    uint64_t fast_steps = fast.run(kStepBudget);
    ASSERT_EQ(slow_steps, kStepBudget) << "round " << round;
    EXPECT_EQ(fast_steps, slow_steps) << "round " << round;

    for (unsigned r = 0; r < 32; ++r) {
      EXPECT_EQ(fast.machine().regs_[r].v, slow.machine().regs_[r].v)
          << "round " << round << " x" << r;
      EXPECT_EQ(fast.machine().regs_[r].tainted,
                slow.machine().regs_[r].tainted)
          << "round " << round << " x" << r;
    }
    EXPECT_EQ(fast.machine().pc_, slow.machine().pc_) << "round " << round;
    for (uint32_t i = 0; i < kBufSize; ++i) {
      EXPECT_EQ(fast.machine().memory_byte(kBufBase + i),
                slow.machine().memory_byte(kBufBase + i))
          << "round " << round << " buf+" << i;
      EXPECT_EQ(fast.machine().byte_tainted(kBufBase + i),
                slow.machine().byte_tainted(kBufBase + i))
          << "round " << round << " buf+" << i;
    }
    EXPECT_EQ(fast.machine().tainted_branches(),
              slow.machine().tainted_branches())
        << "round " << round;
    EXPECT_EQ(fast.machine().tainted_pc_writes(),
              slow.machine().tainted_pc_writes())
        << "round " << round;

    blocks_compiled += fast.uop_counters().blocks_compiled;
    EXPECT_EQ(slow.uop_counters().blocks_compiled, 0u);
  }
  EXPECT_GT(blocks_compiled, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UopDifferential,
                         ::testing::Range<uint64_t>(1, 5));

// -- Self-modifying code, pinned. --------------------------------------------

class UopSmc : public UopTestBase {};

TEST_F(UopSmc, StoreIntoCachedCodeInvalidatesAndReExecutesCorrectly) {
  // Calls `region` once (compiling its block), overwrites the addi inside
  // it with `addi a0, a0, 7`, calls it again. Exit code 1 + 7 = 8 proves
  // the second call executed the *new* instruction — a stale cached block
  // would produce 2.
  constexpr const char* kSmcGuest = R"(
_start:
    la t0, patch
    li t2, 0x00750513        # addi a0, a0, 7
    jal ra, region
    sw t2, 0(t0)
    jal ra, region
    li a7, 93
    ecall
region:
patch:
    addi a0, a0, 1
    ret
)";
  elf::Image image = rvasm::assemble_or_die(table, kSmcGuest).image;

  auto run = [&](bool uop_fastpath) {
    interp::Iss iss(decoder, registry, uop_fastpath);
    for (const elf::Segment& seg : image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                     seg.bytes[i]);
    iss.machine().pc_ = image.entry;
    iss.run();
    EXPECT_EQ(iss.machine().exit_, core::ExitReason::kExit);
    EXPECT_EQ(iss.machine().exit_code_, 8u);
    return iss.uop_counters();
  };

  interp::UopCounters fast = run(/*uop_fastpath=*/true);
  EXPECT_GE(fast.invalidations, 1u);
  EXPECT_GT(fast.blocks_compiled, 0u);
  interp::UopCounters slow = run(/*uop_fastpath=*/false);
  EXPECT_EQ(slow.invalidations, 0u);
}

// -- Engine level: stats plumbing and the bit-identity sweep. ----------------

class UopEngineTest : public ::testing::Test {
 protected:
  UopEngineTest() {
    spec::install_rv32im(registry, table);
    spec::install_custom_madd(table, registry);
    spec::install_zbb(table, registry);
  }

  core::Program load_asm(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  core::WorkerFactory factory(const core::Program& program,
                              core::MachineConfig mconfig,
                              const std::string& oracles_spec = "") {
    return [this, &program, mconfig, oracles_spec](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      r.executor = std::make_unique<core::BinSymExecutor>(
          *r.ctx, decoder, registry, program, mconfig);
      r.solver = smt::make_z3_solver(*r.ctx);
      if (!oracles_spec.empty()) {
        std::string error;
        auto manager = oracles::OracleManager::make(
            *r.ctx,
            oracles::MemoryMap::for_program(program,
                                            core::MachineConfig{}.stack_top),
            oracles_spec, &error);
        EXPECT_TRUE(manager) << error;
        r.executor->set_observer(manager.get());
        struct Keep {
          std::unique_ptr<oracles::OracleManager> manager;
        };
        auto keep = std::make_shared<Keep>();
        keep->manager = std::move(manager);
        r.keepalive = std::move(keep);
      }
      return r;
    };
  }

  struct Exploration {
    core::EngineStats stats;
    std::set<std::string> path_keys;
    std::multiset<uint32_t> failures;
  };

  Exploration explore(const core::Program& program,
                      core::MachineConfig mconfig,
                      core::EngineOptions options) {
    core::DseEngine dse(factory(program, mconfig), options);
    Exploration result;
    result.stats = dse.explore([&](const core::PathResult& path) {
      std::string key;
      key.reserve(path.trace.branches.size());
      for (const core::BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      result.path_keys.insert(key);
      for (const core::Failure& f : path.trace.failures)
        result.failures.insert(f.id);
    });
    return result;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

constexpr const char* kThreeBranchGuest = R"(
_start:
    la a0, buf
    li a1, 3
    li a7, 2
    ecall
    la s0, buf
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    lbu t2, 2(s0)
    bnez t0, skip1
    nop
skip1:
    bltu t1, t2, skip2
    nop
skip2:
    beqz t2, skip3
    nop
skip3:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 3
)";

TEST_F(UopEngineTest, StatsCollectFastPathCounters) {
  core::Program program = load_asm(kThreeBranchGuest);
  core::MachineConfig on;  // uop_fastpath defaults to true
  Exploration with_uop = explore(program, on, {});
  EXPECT_GT(with_uop.stats.uop_blocks_compiled, 0u);
  EXPECT_GT(with_uop.stats.uop_cache_hits, 0u);
  std::string report = core::engine_stats_report(with_uop.stats);
  EXPECT_NE(report.find("uops:"), std::string::npos) << report;

  core::MachineConfig off;
  off.uop_fastpath = false;
  Exploration without = explore(program, off, {});
  EXPECT_EQ(without.stats.uop_blocks_compiled, 0u);
  EXPECT_EQ(without.stats.uop_cache_hits, 0u);
  EXPECT_EQ(without.stats.uop_guard_bails, 0u);
  EXPECT_EQ(without.stats.uop_invalidations, 0u);
  // The page-granular clean summaries are a memory-layer optimization and
  // stay active either way.
  EXPECT_EQ(without.path_keys, with_uop.path_keys);
}

TEST_F(UopEngineTest, FindingTriplesIdenticalWithFastPathOnAndOff) {
  // Oracles attach an observer, which the fast path defers to — but the
  // (oracle, pc, call-depth) triples must stay bit-identical no matter
  // which uop configuration the worker was built with.
  for (const char* name :
       {"buggy-div", "buggy-overflow", "buggy-unaligned", "buggy-stack-smash"}) {
    core::Program program = workloads::load_workload(table, name);
    auto campaign = [&](bool uop_fastpath) {
      core::MachineConfig mconfig;
      mconfig.uop_fastpath = uop_fastpath;
      core::DseEngine dse(factory(program, mconfig, "all"),
                          core::EngineOptions{});
      dse.explore();
      std::multiset<uint64_t> keys;
      for (const core::Finding& f : dse.findings())
        keys.insert(core::finding_key(f.oracle, f.pc, f.call_depth));
      return keys;
    };
    std::multiset<uint64_t> with_uop = campaign(true);
    EXPECT_FALSE(with_uop.empty()) << name;
    EXPECT_EQ(with_uop, campaign(false)) << name;
  }
}

// Light parallel run (TSan coverage): each worker owns a private BlockCache;
// the debug single-thread ownership assert and the stats delta-merging run
// under 4 workers here.
class UopParallel : public UopEngineTest {};

TEST_F(UopParallel, WorkerPrivateCachesExploreIdenticallyAcrossJobs) {
  core::Program program = load_asm(kThreeBranchGuest);
  core::MachineConfig mconfig;
  core::EngineOptions one;
  one.jobs = 1;
  Exploration sequential = explore(program, mconfig, one);
  EXPECT_GT(sequential.stats.uop_blocks_compiled, 0u);

  core::EngineOptions four;
  four.jobs = 4;
  Exploration parallel = explore(program, mconfig, four);
  EXPECT_EQ(parallel.path_keys, sequential.path_keys);
  EXPECT_GT(parallel.stats.uop_blocks_compiled, 0u);
}

// -- Table I bit-identity sweep. ---------------------------------------------
//
// The fast path may only change cost: across search strategies, worker
// counts and snapshot modes, the discovered path set and failures must be
// bit-identical with the micro-op fast path on and off. This is the
// acceptance bar of the subsystem (and what keeps Table I reproduction
// intact). Excluded from the sanitizer CI jobs like the other
// full-workload determinism sweeps.

class UopWorkloadIdentity : public UopEngineTest,
                            public ::testing::WithParamInterface<const char*> {
};

TEST_P(UopWorkloadIdentity, PathSetInvariantAcrossFastPathStrategiesJobs) {
  core::Program program = workloads::load_workload(table, GetParam());

  core::MachineConfig reference_config;
  reference_config.uop_fastpath = false;
  core::EngineOptions reference_options;
  reference_options.snapshots = false;
  Exploration reference = explore(program, reference_config,
                                  reference_options);
  EXPECT_GT(reference.stats.paths, 100u);
  EXPECT_EQ(reference.stats.paths, reference.path_keys.size());

  bool saw_fast_path_work = false;
  for (bool uop : {true, false}) {
    for (core::SearchKind kind :
         {core::SearchKind::kDepthFirst, core::SearchKind::kCoverageGuided}) {
      for (unsigned jobs : {1u, 4u}) {
        for (bool snapshots : {true, false}) {
          if (!uop && kind == core::SearchKind::kDepthFirst && jobs == 1 &&
              !snapshots)
            continue;  // the reference configuration
          core::MachineConfig mconfig;
          mconfig.uop_fastpath = uop;
          core::EngineOptions options;
          options.search = kind;
          options.jobs = jobs;
          options.snapshots = snapshots;
          Exploration run = explore(program, mconfig, options);
          std::string label = std::string(uop ? "uop" : "spec") + " " +
                              core::search_kind_name(kind) +
                              " jobs=" + std::to_string(jobs) +
                              (snapshots ? " snapshot" : " replay");
          EXPECT_EQ(run.stats.paths, reference.stats.paths) << label;
          EXPECT_EQ(run.path_keys, reference.path_keys) << label;
          EXPECT_EQ(run.failures, reference.failures) << label;
          if (uop) {
            saw_fast_path_work |= run.stats.uop_blocks_compiled > 0;
          } else {
            EXPECT_EQ(run.stats.uop_blocks_compiled, 0u) << label;
          }
        }
      }
    }
  }
  EXPECT_TRUE(saw_fast_path_work);
}

INSTANTIATE_TEST_SUITE_P(Table1, UopWorkloadIdentity,
                         ::testing::Values("base64-encode", "bubble-sort",
                                           "clif-parser", "insertion-sort",
                                           "uri-parser"));

}  // namespace
}  // namespace binsym
