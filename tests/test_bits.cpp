// Unit tests for the bit-manipulation helpers every layer builds on.
#include <gtest/gtest.h>

#include "support/bits.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

namespace binsym {
namespace {

TEST(Bits, MaskBits) {
  EXPECT_EQ(mask_bits(1), 1u);
  EXPECT_EQ(mask_bits(8), 0xffu);
  EXPECT_EQ(mask_bits(12), 0xfffu);
  EXPECT_EQ(mask_bits(32), 0xffffffffu);
  EXPECT_EQ(mask_bits(64), ~uint64_t{0});
}

TEST(Bits, TruncateAndCanonical) {
  EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
  EXPECT_TRUE(is_canonical(0xff, 8));
  EXPECT_FALSE(is_canonical(0x100, 8));
}

TEST(Bits, SignExtension) {
  EXPECT_EQ(sext(0x80, 8, 32), 0xffffff80u);
  EXPECT_EQ(sext(0x7f, 8, 32), 0x7fu);
  EXPECT_EQ(sext(0xfff, 12, 32), 0xffffffffu);
  EXPECT_EQ(sext(0x800, 12, 32), 0xfffff800u);
  EXPECT_EQ(to_signed(0xffffffff, 32), -1);
  EXPECT_EQ(to_signed(0x7fffffff, 32), 0x7fffffff);
}

TEST(Bits, Extract) {
  EXPECT_EQ(extract_bits(0xdeadbeef, 31, 16), 0xdeadu);
  EXPECT_EQ(extract_bits(0xdeadbeef, 15, 0), 0xbeefu);
  EXPECT_EQ(extract_bits(0xff, 0, 0), 1u);
}

TEST(Bits, SaturatingShifts) {
  EXPECT_EQ(shl_bv(1, 31, 32), 0x80000000u);
  EXPECT_EQ(shl_bv(1, 32, 32), 0u);
  EXPECT_EQ(shl_bv(1, 0xffffffff, 32), 0u);
  EXPECT_EQ(lshr_bv(0x80000000u, 31, 32), 1u);
  EXPECT_EQ(lshr_bv(0x80000000u, 32, 32), 0u);
  EXPECT_EQ(ashr_bv(0x80000000u, 4, 32), 0xf8000000u);
  EXPECT_EQ(ashr_bv(0x80000000u, 100, 32), 0xffffffffu);
  EXPECT_EQ(ashr_bv(0x40000000u, 100, 32), 0u);
}

TEST(Bits, DivisionTotalSemantics) {
  // SMT-LIB: x udiv 0 = all-ones, x urem 0 = x.
  EXPECT_EQ(udiv_bv(7, 0, 32), 0xffffffffu);
  EXPECT_EQ(urem_bv(7, 0, 32), 7u);
  // bvsdiv by zero: -1 for non-negative dividend, +1 for negative.
  EXPECT_EQ(sdiv_bv(7, 0, 32), 0xffffffffu);
  EXPECT_EQ(sdiv_bv(0xfffffff9u, 0, 32), 1u);
  // Signed overflow wraps.
  EXPECT_EQ(sdiv_bv(0x80000000u, 0xffffffffu, 32), 0x80000000u);
  EXPECT_EQ(srem_bv(0x80000000u, 0xffffffffu, 32), 0u);
  // Remainder sign follows the dividend.
  EXPECT_EQ(srem_bv(static_cast<uint32_t>(-7), 3, 32),
            static_cast<uint32_t>(-1));
  EXPECT_EQ(srem_bv(7, static_cast<uint32_t>(-3), 32), 1u);
}

TEST(Bits, NarrowWidths) {
  EXPECT_EQ(sdiv_bv(0x8, 0xf, 4), 0x8u);  // -8 / -1 wraps at width 4
  EXPECT_EQ(shl_bv(1, 4, 4), 0u);
  EXPECT_EQ(ashr_bv(0x8, 1, 4), 0xcu);
}

TEST(Format, Hex) {
  EXPECT_EQ(hex32(0xdeadbeef), "0xdeadbeef");
  EXPECT_EQ(hex_bv(0xab, 8), "ab");
  EXPECT_EQ(hex_bv(0x5, 12), "005");
  EXPECT_EQ(bin_bv(0b101, 5), "00101");
}

TEST(Format, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

}  // namespace
}  // namespace binsym
