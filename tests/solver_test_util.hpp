// Shared scripted solver backends for the solver-stack tests.
//
// StubSolver stands in for a backend with a known, controllable behavior:
// a fixed verdict, an always-unknown backend (deadline stand-in), a
// crashing backend, optionally with artificial latency — during which it
// polls the cooperative cancel flag like a real backend, so races and
// cancellation can be tested deterministically without timing luck.
// Used by the failover tests (test_solver.cpp) and the portfolio race
// tests (test_portfolio.cpp).
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "smt/solver.hpp"

namespace binsym::smt {

class StubSolver final : public Solver {
 public:
  enum class Mode { kUnknown, kThrow, kSat, kUnsat };

  explicit StubSolver(Mode mode, std::chrono::milliseconds delay = {},
                      std::string label = "stub")
      : mode_(mode), delay_(delay), label_(std::move(label)) {}

  CheckResult check(std::span<const ExprRef> assertions,
                    Assignment* model) override {
    ++stats_.queries;
    if (mode_ == Mode::kThrow) throw std::runtime_error("stub backend crash");
    // Simulated solve time, polling the cancel flag like a real backend's
    // search loop does.
    const auto end = std::chrono::steady_clock::now() + delay_;
    for (;;) {
      if (cancel_requested()) {
        ++cancelled_checks_;
        ++stats_.unknown;
        return CheckResult::kUnknown;
      }
      if (std::chrono::steady_clock::now() >= end) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    switch (mode_) {
      case Mode::kSat:
        ++stats_.sat;
        // A stub has no theory: it assigns `model_value_` to every query
        // variable. Callers that need *valid* models use a real backend.
        if (model)
          for (uint32_t var : collect_vars(
                   std::vector<ExprRef>(assertions.begin(), assertions.end())))
            model->set(var, model_value_);
        return CheckResult::kSat;
      case Mode::kUnsat:
        ++stats_.unsat;
        return CheckResult::kUnsat;
      default:
        ++stats_.unknown;
        return CheckResult::kUnknown;
    }
  }

  std::string name() const override { return label_; }

  /// Checks that bailed out on an observed cancel request.
  uint64_t cancelled_checks() const { return cancelled_checks_; }
  void set_model_value(uint64_t value) { model_value_ = value; }

 private:
  Mode mode_;
  std::chrono::milliseconds delay_;
  std::string label_;
  uint64_t model_value_ = 0;
  uint64_t cancelled_checks_ = 0;
};

}  // namespace binsym::smt
