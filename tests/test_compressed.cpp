// RV32C tests: golden expansion pairs (cross-checked against the manual's
// Table 16.5-16.7 expansions and GNU tooling), reserved-encoding
// rejection, decoder integration (size 2), link-value semantics through
// the spec's instr-size operand, and end-to-end execution of compressed
// guests on the concrete ISS and the symbolic engine.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "interp/concrete.hpp"
#include "isa/compressed.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "spec/registry.hpp"
#include "support/format.hpp"

namespace binsym::isa {
namespace {

struct GoldenPair {
  uint16_t compressed;
  const char* expansion;  // canonical disassembly of the expansion
};

class CompressedTest : public ::testing::Test {
 protected:
  CompressedTest() { spec::install_rv32im(registry, table); }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_F(CompressedTest, GoldenExpansions) {
  // Encodings produced with riscv-gnu as + objdump.
  const GoldenPair cases[] = {
      {0x0001, "addi zero, zero, 0"},    // c.nop
      {0x4705, "addi a4, zero, 1"},      // c.li a4, 1
      {0x05c1, "addi a1, a1, 16"},       // c.addi a1, 16
      {0x15fd, "addi a1, a1, -1"},       // c.addi a1, -1
      {0x00c8, "addi a0, sp, 68"},       // c.addi4spn a0, sp, 68
      {0x1141, "addi sp, sp, -16"},      // c.addi16sp sp, -16
      {0x0141, "addi sp, sp, 16"},       // c.addi16sp sp, 16
      {0x6589, "lui a1, 0x2"},           // c.lui a1, 2
      {0x75fd, "lui a1, 0xfffff"},       // c.lui a1, -1
      {0x4108, "lw a0, 0(a0)"},          // c.lw
      {0x45d0, "lw a2, 12(a1)"},         // c.lw a2, 12(a1)
      {0xc14c, "sw a1, 4(a0)"},          // c.sw
      {0x4502, "lw a0, 0(sp)"},          // c.lwsp
      {0x4532, "lw a0, 12(sp)"},         // c.lwsp a0, 12(sp)
      {0xc02a, "sw a0, 0(sp)"},          // c.swsp
      {0xc62e, "sw a1, 12(sp)"},         // c.swsp a1, 12(sp)
      {0x852e, "add a0, zero, a1"},      // c.mv a0, a1
      {0x95b2, "add a1, a1, a2"},        // c.add a1, a2
      {0x8d89, "sub a1, a1, a0"},        // c.sub a1, a0
      {0x8da9, "xor a1, a1, a0"},        // c.xor a1, a0
      {0x8dc9, "or a1, a1, a0"},         // c.or a1, a0
      {0x8de9, "and a1, a1, a0"},        // c.and a1, a0
      {0x8985, "andi a1, a1, 1"},        // c.andi a1, 1
      {0x0586, "slli a1, a1, 1"},        // c.slli a1, 1
      {0x8185, "srli a1, a1, 1"},        // c.srli a1, 1
      {0x8585, "srai a1, a1, 1"},        // c.srai a1, 1
      {0x8082, "jalr zero, ra, 0"},      // c.jr ra (== ret)
      {0x9582, "jalr ra, a1, 0"},        // c.jalr a1
      {0x9002, "ebreak"},                // c.ebreak
  };
  for (const GoldenPair& g : cases) {
    auto expanded = expand_compressed(g.compressed);
    ASSERT_TRUE(expanded.has_value()) << std::hex << g.compressed;
    auto decoded = decoder.decode(g.compressed);
    ASSERT_TRUE(decoded.has_value()) << std::hex << g.compressed;
    EXPECT_EQ(decoded->size, 2u);
    EXPECT_EQ(disassemble(*decoded, 0), g.expansion)
        << "c-word 0x" << std::hex << g.compressed;
  }
}

// Independent transcriptions of the CJ/CB immediate scrambles (manual
// Table 16.2) used to cross-check the decompressor's descrambling.
uint16_t encode_cj(uint32_t funct3, int32_t offset) {
  uint32_t i = static_cast<uint32_t>(offset);
  return static_cast<uint16_t>(
      (funct3 << 13) | 0b01 | (((i >> 11) & 1) << 12) | (((i >> 4) & 1) << 11) |
      (((i >> 8) & 3) << 9) | (((i >> 10) & 1) << 8) | (((i >> 6) & 1) << 7) |
      (((i >> 7) & 1) << 6) | (((i >> 1) & 7) << 3) | (((i >> 5) & 1) << 2));
}

uint16_t encode_cb(uint32_t funct3, uint32_t rs1p, int32_t offset) {
  uint32_t i = static_cast<uint32_t>(offset);
  return static_cast<uint16_t>(
      (funct3 << 13) | 0b01 | (((i >> 8) & 1) << 12) | (((i >> 3) & 3) << 10) |
      (rs1p << 7) | (((i >> 6) & 3) << 5) | (((i >> 1) & 3) << 3) |
      (((i >> 5) & 1) << 2));
}

TEST_F(CompressedTest, JumpAndBranchOffsetsRoundTrip) {
  for (int32_t offset = -2048; offset < 2048; offset += 38) {
    auto decoded = decoder.decode(encode_cj(0b101, offset));  // c.j
    ASSERT_TRUE(decoded.has_value()) << offset;
    EXPECT_EQ(decoded->id(), kJAL);
    EXPECT_EQ(decoded->rd(), 0u);
    EXPECT_EQ(static_cast<int32_t>(decoded->immediate()), offset) << offset;
    decoded = decoder.decode(encode_cj(0b001, offset));  // c.jal
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->rd(), 1u);
    EXPECT_EQ(static_cast<int32_t>(decoded->immediate()), offset) << offset;
  }
  for (int32_t offset = -256; offset < 256; offset += 14) {
    auto decoded = decoder.decode(encode_cb(0b110, 2, offset));  // c.beqz a0
    ASSERT_TRUE(decoded.has_value()) << offset;
    EXPECT_EQ(decoded->id(), kBEQ);
    EXPECT_EQ(decoded->rs1(), 10u);
    EXPECT_EQ(decoded->rs2(), 0u);
    EXPECT_EQ(static_cast<int32_t>(decoded->immediate()), offset) << offset;
  }
}

TEST_F(CompressedTest, ReservedEncodingsRejected) {
  EXPECT_FALSE(expand_compressed(0x0000).has_value());  // all-zero illegal
  // c.addi4spn with zero immediate.
  EXPECT_FALSE(expand_compressed(0x0008).has_value());
  // c.lwsp with rd == 0.
  EXPECT_FALSE(expand_compressed(0x4002).has_value());
  // c.jr with rs1 == 0.
  EXPECT_FALSE(expand_compressed(0x8002).has_value());
  // RV32: shamt[5] set on c.slli is reserved (would be RV64).
  EXPECT_FALSE(expand_compressed(0x1586).has_value());
  // RV64 c.subw (bit 12 set in the register-register group).
  EXPECT_FALSE(expand_compressed(0x9d89).has_value());
  // Uncompressed words are not expanded.
  EXPECT_FALSE(expand_compressed(0x0013).has_value() &&
               is_compressed(0x0013));
}

TEST_F(CompressedTest, FullWordsStillDecodeAsSizeFour) {
  auto decoded = decoder.decode(0x00a28293);  // addi t0, t0, 10
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size, 4u);
}

TEST_F(CompressedTest, ConcreteExecutionOfCompressedGuest) {
  // Mixed 16/32-bit code emitted via .half: computes 5+6 into a0 with
  // compressed ALU ops, then exits via the standard ecall sequence.
  rvasm::AsmResult assembled = rvasm::assemble_or_die(table, R"(
_start:
    .half 0x4515             # c.li a0, 5
    .half 0x4599             # c.li a1, 6
    .half 0x952e             # c.add a0, a1
    li a7, 93
    ecall
)");
  interp::Iss iss(decoder, registry);
  for (const elf::Segment& seg : assembled.image.segments)
    for (size_t i = 0; i < seg.bytes.size(); ++i)
      iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                   seg.bytes[i]);
  iss.machine().pc_ = assembled.image.entry;
  iss.run();
  EXPECT_EQ(iss.machine().exit_, core::ExitReason::kExit);
  EXPECT_EQ(iss.machine().exit_code_, 11u);
}

TEST_F(CompressedTest, CompressedLinkValueIsPcPlusTwo) {
  // c.jal saves pc+2, not pc+4 — the instr-size operand at work.
  // Layout: the c.jal halfword (2 bytes) + 4 nops (16 bytes) = target .+18.
  std::string source = strprintf(R"(
_start:
    .half 0x%04x             # c.jal .+18 -> target
    nop
    nop
    nop
    nop
target:
    mv a0, ra
    li a7, 93
    ecall
)", encode_cj(0b001, 18));
  rvasm::AsmResult assembled = rvasm::assemble_or_die(table, source);
  interp::Iss iss(decoder, registry);
  for (const elf::Segment& seg : assembled.image.segments)
    for (size_t i = 0; i < seg.bytes.size(); ++i)
      iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                   seg.bytes[i]);
  iss.machine().pc_ = assembled.image.entry;
  iss.run();
  EXPECT_EQ(iss.machine().exit_, core::ExitReason::kExit);
  EXPECT_EQ(iss.machine().exit_code_, assembled.image.entry + 2);
}

TEST_F(CompressedTest, SymbolicExecutionThroughCompressedBranch) {
  // c.beqz on a symbolic byte forks exactly like its expansion.
  std::string source = strprintf(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu a0, 0(t0)
    .half 0x%04x             # c.beqz a0, .+6 -> skip the addi
    addi a0, a0, 1
    li a7, 93
    ecall
.data
buf: .space 1
)", encode_cb(0b110, 2, 6));
  rvasm::AsmResult assembled = rvasm::assemble_or_die(table, source);
  core::Program program = elf::to_program(assembled.image);
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));
  core::EngineStats stats = engine.explore();
  EXPECT_EQ(stats.paths, 2u);
  EXPECT_EQ(stats.divergences, 0u);
}

}  // namespace
}  // namespace binsym::isa
