// DIFT interpreter tests: taint introduction via sym_input, propagation
// through ALU/memory, sanitization by constant overwrite, and
// tainted-control detection — the third modular interpreter over the very
// same specification AST.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "elf/elf32.hpp"
#include "interp/taint.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym::interp {
namespace {

class TaintTest : public ::testing::Test {
 protected:
  TaintTest() { spec::install_rv32im(registry, table); }

  TaintTracker make_tracker(const std::string& source) {
    rvasm::AsmResult assembled = rvasm::assemble_or_die(table, source);
    TaintTracker tracker(decoder, registry);
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        tracker.machine().memory_[seg.addr + static_cast<uint32_t>(i)] =
            seg.bytes[i];
    tracker.machine().pc_ = assembled.image.entry;
    return tracker;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_F(TaintTest, InputBytesAreTaintSources) {
  TaintTracker t = make_tracker(R"(
_start:
    la a0, buf
    li a1, 2
    li a7, 2
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 2
)");
  t.run();
  EXPECT_EQ(t.machine().exit_, core::ExitReason::kExit);
  EXPECT_TRUE(t.machine().byte_tainted(0x10000));
  EXPECT_TRUE(t.machine().byte_tainted(0x10001));
  EXPECT_FALSE(t.machine().byte_tainted(0x10002));
}

TEST_F(TaintTest, TaintFlowsThroughAluAndRegisters) {
  TaintTracker t = make_tracker(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)            # t1 tainted
    li t2, 41
    add t3, t1, t2           # t3 tainted (mixed)
    xor t4, t2, t2           # t4 clean
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)");
  t.machine().input_provider_ = [](unsigned) { return uint8_t{1}; };
  t.run();
  EXPECT_TRUE(t.machine().register_tainted(6));    // t1
  EXPECT_TRUE(t.machine().register_tainted(28));   // t3
  EXPECT_FALSE(t.machine().register_tainted(7));   // t2
  EXPECT_FALSE(t.machine().register_tainted(29));  // t4
  EXPECT_EQ(t.machine().regs_[28].v, 42u);         // concrete still right
}

TEST_F(TaintTest, StoresPropagateAndSanitize) {
  TaintTracker t = make_tracker(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    sb t1, 4(t0)             # taints buf+4
    li t2, 0
    sb t2, 0(t0)             # constant store sanitizes buf+0
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 8
)");
  t.run();
  EXPECT_TRUE(t.machine().byte_tainted(0x10004));
  EXPECT_FALSE(t.machine().byte_tainted(0x10000));
}

TEST_F(TaintTest, TaintedBranchesAreRecorded) {
  TaintTracker t = make_tracker(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    beqz t1, zero_case       # control depends on tainted data
zero_case:
    li t3, 1
    beqz t3, never           # clean branch
never:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)");
  t.run();
  ASSERT_EQ(t.machine().tainted_branches().size(), 1u);
}

TEST_F(TaintTest, CleanProgramStaysClean) {
  TaintTracker t = make_tracker(R"(
_start:
    li t0, 10
    li t1, 20
    add t2, t0, t1
    la t3, buf
    sw t2, 0(t3)
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 4
)");
  t.run();
  for (unsigned r = 0; r < 32; ++r) EXPECT_FALSE(t.machine().register_tainted(r));
  EXPECT_TRUE(t.machine().tainted_branches().empty());
  EXPECT_EQ(t.machine().memory_byte(0x10000), 30u);
}

TEST_F(TaintTest, ImplicitFlowThroughDivuSelection) {
  // DIVU's runIfElse on a tainted divisor is a tainted control decision.
  TaintTracker t = make_tracker(R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    li t2, 100
    divu t3, t2, t1          # divisor tainted -> spec's runIfElse records it
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)");
  // Non-zero divisor: the else arm computes udiv(clean, tainted).
  t.machine().input_provider_ = [](unsigned) { return uint8_t{2}; };
  t.run();
  EXPECT_FALSE(t.machine().tainted_branches().empty());
  EXPECT_TRUE(t.machine().register_tainted(28));  // t3 result tainted
}

}  // namespace
}  // namespace binsym::interp
