// The Sect. IV case study as a test: registering the custom MADD
// instruction (7 lines of encoding description + the Fig. 4 semantics)
// makes it work in the decoder, disassembler, assembler, concrete
// interpreter and the symbolic engine — with zero engine changes.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "dsl/pretty.hpp"
#include "elf/elf32.hpp"
#include "interp/concrete.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

class MaddTest : public ::testing::Test {
 protected:
  MaddTest() {
    spec::install_rv32im(registry, table);
    madd_id = spec::install_custom_madd(table, registry);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
  std::optional<isa::OpcodeId> madd_id;
};

TEST_F(MaddTest, RegistersWithFig3Encoding) {
  ASSERT_TRUE(madd_id.has_value());
  const isa::OpcodeInfo& info = table.by_id(*madd_id);
  EXPECT_EQ(info.name, "madd");
  EXPECT_EQ(info.mask, 0x600007fu);
  EXPECT_EQ(info.match, 0x2000043u);
  EXPECT_EQ(info.format, isa::Format::kR4);
  EXPECT_EQ(info.extension, "rv_zimadd");
}

TEST_F(MaddTest, SemanticsTypecheckAndPrettyPrint) {
  const dsl::Semantics* semantics = registry.get(*madd_id);
  ASSERT_NE(semantics, nullptr);
  EXPECT_TRUE(dsl::well_formed(*semantics, isa::Format::kR4));
  std::string text = dsl::pretty_semantics("MADD", *semantics);
  // Fig. 4 structure: sext, Mul, extract, Add.
  EXPECT_NE(text.find("Mul"), std::string::npos);
  EXPECT_NE(text.find("sext64"), std::string::npos);
  EXPECT_NE(text.find("extract31_0"), std::string::npos);
  EXPECT_NE(text.find("Add"), std::string::npos);
}

TEST_F(MaddTest, ConcreteSemantics) {
  // madd a0, a1, a2, a3: a0 = a1*a2 + a3, with 64-bit intermediate.
  interp::Iss iss(decoder, registry);
  auto run_madd = [&](uint32_t x, uint32_t y, uint32_t z) {
    uint32_t word = 0x2000043 | (10u << 7) | (11u << 15) | (12u << 20) |
                    (13u << 27);
    auto decoded = decoder.decode(word);
    EXPECT_TRUE(decoded.has_value());
    iss.machine().regs_[11] = interp::cval(x, 32);
    iss.machine().regs_[12] = interp::cval(y, 32);
    iss.machine().regs_[13] = interp::cval(z, 32);
    iss.execute_one(*decoded);
    return static_cast<uint32_t>(iss.machine().regs_[10].v);
  };
  EXPECT_EQ(run_madd(3, 4, 5), 17u);
  EXPECT_EQ(run_madd(0, 9, 7), 7u);
  // Negative operands: sign-extended multiply, truncated to 32 bits.
  EXPECT_EQ(run_madd(0xffffffff, 2, 10), 8u);  // -1*2 + 10
  // Wrap-around.
  EXPECT_EQ(run_madd(0x10000, 0x10000, 1), 1u);
}

TEST_F(MaddTest, SymbolicExecutionFindsTheMagicInput) {
  // The madd-kernel workload branches on x*x + x == 30; only x == 5 (for
  // single bytes with x*x+x < 256... the engine must find it).
  core::Program program = workloads::load_workload(table, "madd-kernel");
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));

  bool found_magic = false;
  core::EngineStats stats = engine.explore([&](const core::PathResult& path) {
    if (path.trace.output == "!") {
      found_magic = true;
      EXPECT_EQ(path.seed.get(path.trace.input_vars[0]), 5u);
    }
  });
  EXPECT_TRUE(found_magic) << "engine failed to solve x*x + x == 30";
  EXPECT_EQ(stats.paths, 2u);
}

TEST_F(MaddTest, WithoutRegistrationTheKernelIsIllegal) {
  // Sanity: MADD really is a *custom* instruction — a plain RV32IM setup
  // rejects the kernel.
  isa::OpcodeTable plain_table;
  isa::Decoder plain_decoder(plain_table);
  spec::Registry plain_registry;
  spec::install_rv32im(plain_registry, plain_table);
  // Assemble with the extended table (the source uses the madd mnemonic),
  // but execute with the plain registry/decoder.
  core::Program program = workloads::load_workload(table, "madd-kernel");
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, plain_decoder, plain_registry, program);
  core::PathTrace trace;
  executor.run(smt::Assignment{}, trace);
  EXPECT_EQ(trace.exit, core::ExitReason::kIllegalInstr);
}

TEST_F(MaddTest, DisassemblesAndReassembles) {
  uint32_t word = 0x2000043 | (5u << 7) | (6u << 15) | (7u << 20) | (28u << 27);
  EXPECT_EQ(isa::disassemble_word(decoder, word, 0), "madd t0, t1, t2, t3");
  auto assembled = rvasm::assemble(table, "madd t0, t1, t2, t3");
  ASSERT_TRUE(assembled.has_value());
  const auto& bytes = assembled->image.segments.front().bytes;
  uint32_t reassembled = bytes[0] | (bytes[1] << 8) | (bytes[2] << 16) |
                         (static_cast<uint32_t>(bytes[3]) << 24);
  EXPECT_EQ(reassembled, word);
}

}  // namespace
}  // namespace binsym
