// Tests for the static analysis layer (src/analysis) and its engine
// consumers — the ISSUE's acceptance pins:
//
//   (a) soundness, differentially: on every Table I and detection-campaign
//       workload, explore with the pre-prover in differential mode (every
//       statically-proven candidate still goes to the solver) and require
//       zero proven-yet-sat mismatches;
//   (b) behavior invariance: path sets and (oracle, pc, call-depth)
//       finding triples are bit-identical with pruning on vs off, under
//       dfs and coverage search and under 1 and 4 workers;
//   (c) the optimization exists: on the memory-safety detection workloads
//       the pre-prover strictly reduces the candidates that reach the
//       solver.
//
// Plus directed pins for CFG recovery, the jal/ret classification, the
// stack-window precision that resolves `ret`, per-rule lint findings and
// the proves_safe rule table.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "../bench/engines.hpp"
#include "analysis/analysis.hpp"
#include "asm/assembler.hpp"
#include "elf/elf32.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

const char* kBuggyWorkloads[] = {
    "buggy-assert",      "buggy-div",       "buggy-jump-table",
    "buggy-overflow",    "buggy-stack-smash", "buggy-unaligned",
    "buggy-uri-parser",
};

using FindingTriple = std::tuple<uint8_t, uint32_t, uint32_t>;

struct Exploration {
  std::set<std::string> path_keys;     // branch-decision strings
  std::set<FindingTriple> findings;    // (oracle, pc, call_depth)
  core::EngineStats stats;
};

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() { spec::install_rv32im(registry, table); }

  core::Program load_source(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  analysis::StaticAnalysis analyze(const bench::EngineSetup& setup) {
    return analysis::StaticAnalysis::run(
        setup.program, decoder, bench::make_memory_map("binsym", setup));
  }

  Exploration explore(const bench::EngineSetup& setup,
                      const analysis::StaticAnalysis& sa,
                      bool prune, core::SearchKind search, unsigned jobs,
                      uint64_t max_paths, bool differential = false) {
    core::EngineOptions options;
    options.search = search;
    options.jobs = jobs;
    options.max_paths = max_paths;
    options.static_differential = differential;
    if (prune || differential) options.candidate_prune = sa.make_prune();
    // Hints are wired independently of pruning (as in explore.cpp), so the
    // coverage schedule is identical in both arms by construction.
    options.cfg_hints = sa.make_hints();
    core::DseEngine dse(bench::make_worker_factory("binsym", setup, "all"),
                        options);
    Exploration result;
    result.stats = dse.explore([&](const core::PathResult& path) {
      std::string key;
      key.reserve(path.trace.branches.size());
      for (const core::BranchRecord& b : path.trace.branches)
        key += b.taken ? '1' : '0';
      result.path_keys.insert(std::move(key));
    });
    for (const core::Finding& f : dse.findings())
      result.findings.insert({static_cast<uint8_t>(f.oracle), f.pc,
                              f.call_depth});
    return result;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

// -- (a) Differential soundness over the whole workload suite. ---------------

TEST_F(AnalysisTest, NoStaticallyProvenCandidateIsEverSat) {
  std::vector<std::string> names;
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads())
    names.push_back(info.name);
  for (const char* name : kBuggyWorkloads) names.push_back(name);

  for (const std::string& name : names) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};
    analysis::StaticAnalysis sa = analyze(setup);

    Exploration e = explore(setup, sa, /*prune=*/true,
                            core::SearchKind::kDepthFirst, /*jobs=*/1,
                            /*max_paths=*/100, /*differential=*/true);
    // The one-line soundness contract: a statically-proven candidate must
    // be unsat under every path condition the solver ever sees.
    EXPECT_EQ(e.stats.static_mismatches, 0u) << name;
    // Differential mode solves everything, so the accounting is exact.
    EXPECT_EQ(e.stats.static_proved + e.stats.static_unknown,
              e.stats.candidates_checked)
        << name;
    // An incomplete fixpoint proves nothing, ever.
    if (!sa.absint.complete) {
      EXPECT_EQ(e.stats.static_proved, 0u) << name;
    }
  }
}

// -- (b) Behavior invariance of pruning across search x workers. -------------

TEST_F(AnalysisTest, PruningPreservesPathsAndFindingsAcrossSearchAndJobs) {
  // The detection workloads are small enough to explore exhaustively, which
  // makes the path set an invariant of the program, not of the schedule.
  for (const char* name : kBuggyWorkloads) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};
    analysis::StaticAnalysis sa = analyze(setup);

    Exploration reference =
        explore(setup, sa, false, core::SearchKind::kDepthFirst, 1,
                UINT64_MAX);
    for (core::SearchKind search :
         {core::SearchKind::kDepthFirst, core::SearchKind::kCoverageGuided}) {
      for (unsigned jobs : {1u, 4u}) {
        for (bool prune : {false, true}) {
          Exploration e =
              explore(setup, sa, prune, search, jobs, UINT64_MAX);
          EXPECT_EQ(e.path_keys, reference.path_keys)
              << name << " search=" << static_cast<int>(search)
              << " jobs=" << jobs << " prune=" << prune;
          EXPECT_EQ(e.findings, reference.findings)
              << name << " search=" << static_cast<int>(search)
              << " jobs=" << jobs << " prune=" << prune;
        }
      }
    }
  }
}

TEST_F(AnalysisTest, PruningPreservesCappedSequentialExploration) {
  // Table I workloads are too big to exhaust here; under a path cap the
  // explored subset is schedule-defined, so compare prune on/off within
  // each fixed sequential schedule.
  for (const workloads::WorkloadInfo& info : workloads::table1_workloads()) {
    core::Program program =
        workloads::load_workload_or_exit(table, info.name);
    bench::EngineSetup setup{decoder, registry, program};
    analysis::StaticAnalysis sa = analyze(setup);

    for (core::SearchKind search :
         {core::SearchKind::kDepthFirst, core::SearchKind::kCoverageGuided}) {
      Exploration off = explore(setup, sa, false, search, 1, 60);
      Exploration on = explore(setup, sa, true, search, 1, 60);
      EXPECT_EQ(on.path_keys, off.path_keys) << info.name;
      EXPECT_EQ(on.findings, off.findings) << info.name;
      EXPECT_EQ(on.stats.paths, off.stats.paths) << info.name;
    }
  }
}

// -- (c) The pre-prover actually removes solver work. ------------------------

TEST_F(AnalysisTest, PruningStrictlyReducesSolverCandidates) {
  for (const char* name : {"buggy-unaligned", "buggy-uri-parser"}) {
    core::Program program = workloads::load_workload_or_exit(table, name);
    bench::EngineSetup setup{decoder, registry, program};
    analysis::StaticAnalysis sa = analyze(setup);
    ASSERT_TRUE(sa.absint.complete) << name;

    Exploration off = explore(setup, sa, false,
                              core::SearchKind::kDepthFirst, 1, UINT64_MAX);
    Exploration on = explore(setup, sa, true,
                             core::SearchKind::kDepthFirst, 1, UINT64_MAX);
    EXPECT_GT(on.stats.static_proved, 0u) << name;
    EXPECT_LT(on.stats.candidates_checked, off.stats.candidates_checked)
        << name;
    // The bugs themselves must survive the pruning untouched.
    EXPECT_EQ(on.findings, off.findings) << name;
    EXPECT_FALSE(on.findings.empty()) << name;
  }
}

// -- CFG recovery. -----------------------------------------------------------

constexpr const char* kDiamondWithCall = R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t3, buf
    lbu t0, 0(t3)
    beqz t0, then
    li t1, 1
    j join
then:
    li t1, 2
join:
    jal ra, helper
    li a0, 0
    li a7, 93
    ecall
helper:
    ret
.data
buf: .space 1
)";

TEST_F(AnalysisTest, CfgRecoversDiamondAndCallGraph) {
  core::Program program = load_source(kDiamondWithCall);
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  ASSERT_TRUE(sa.absint.complete) << sa.absint.incomplete_reason;

  // Locate the interesting pcs from the decoded fixpoint.
  uint32_t branch_pc = 0, jal_pc = 0, ret_pc = 0;
  for (const auto& [pc, d] : sa.absint.code) {
    if (d.id() == isa::kBEQ) branch_pc = pc;
    if (d.id() == isa::kJAL && d.rd() == 1) jal_pc = pc;
    if (d.id() == isa::kJALR && d.rd() == 0) ret_pc = pc;
  }
  ASSERT_NE(branch_pc, 0u);
  ASSERT_NE(jal_pc, 0u);
  ASSERT_NE(ret_pc, 0u);
  EXPECT_TRUE(sa.absint.call_sites.count(jal_pc));
  EXPECT_TRUE(sa.absint.ret_sites.count(ret_pc));

  const analysis::Cfg& cfg = sa.cfg;
  ASSERT_GE(cfg.blocks.size(), 5u);  // entry, two arms, join, helper
  // The program entry and the called helper are the two functions.
  EXPECT_EQ(cfg.function_entries.size(), 2u);
  EXPECT_TRUE(cfg.function_entries.count(program.entry));

  uint32_t branch_block = cfg.block_of_pc.at(branch_pc);
  uint32_t join_block = cfg.block_of_pc.at(jal_pc);
  ASSERT_EQ(cfg.succs[branch_block].size(), 2u);  // the diamond forks
  uint32_t arm0 = cfg.succs[branch_block][0];
  uint32_t arm1 = cfg.succs[branch_block][1];
  EXPECT_NE(arm0, arm1);

  // Dominators: the fork dominates both arms and the join; neither arm
  // dominates the join.
  EXPECT_TRUE(cfg.dominates(cfg.entry_block, join_block));
  EXPECT_TRUE(cfg.dominates(branch_block, arm0));
  EXPECT_TRUE(cfg.dominates(branch_block, arm1));
  EXPECT_TRUE(cfg.dominates(branch_block, join_block));
  EXPECT_FALSE(cfg.dominates(arm0, join_block));
  EXPECT_FALSE(cfg.dominates(arm1, join_block));
  EXPECT_EQ(cfg.idom[join_block], branch_block);

  // The call edge main -> helper is recorded.
  uint32_t helper_entry = 0;
  for (uint32_t entry : cfg.function_entries)
    if (entry != program.entry) helper_entry = entry;
  ASSERT_NE(helper_entry, 0u);
  auto edges = cfg.call_edges.find(program.entry);
  ASSERT_NE(edges, cfg.call_edges.end());
  EXPECT_EQ(edges->second.size(), 1u);
  EXPECT_EQ(edges->second[0], helper_entry);

  // Distance/reachability queries: the fork is one block from either arm,
  // and the helper has no static path to the join's *predecessors*.
  std::vector<uint32_t> d = cfg.distances_to({arm0});
  EXPECT_EQ(d[arm0], 0u);
  EXPECT_EQ(d[branch_block], 1u);
  std::vector<uint32_t> back = cfg.reverse_reachable(arm0);
  std::set<uint32_t> back_set(back.begin(), back.end());
  EXPECT_TRUE(back_set.count(cfg.entry_block));
  EXPECT_TRUE(back_set.count(branch_block));
  EXPECT_FALSE(back_set.count(cfg.block_of_pc.at(helper_entry)));

  // And the DOT rendering mentions every block.
  std::string dot = cfg_to_dot(cfg, sa.absint);
  for (size_t i = 0; i < cfg.blocks.size(); ++i)
    EXPECT_NE(dot.find("b" + std::to_string(i)), std::string::npos);
}

// -- Lint rules, one directed program each. ----------------------------------

TEST_F(AnalysisTest, LintFlagsUnreachableBlockAndUnreachableReach) {
  core::Program program = load_source(R"(
_start:
    li a0, 0
    li a7, 93
    ecall
dead:
    li a7, 5
    ecall
)");
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  ASSERT_TRUE(sa.absint.complete);
  std::vector<core::Finding> lints = sa.lint(program, decoder);

  bool unreachable = false, no_path = false;
  for (const core::Finding& f : lints) {
    EXPECT_EQ(f.origin, core::FindingOrigin::kStatic);
    if (f.rule == "unreachable-block") unreachable = true;
    if (f.rule == "no-path-to-reach") {
      no_path = true;
      EXPECT_EQ(f.oracle, core::OracleKind::kReach);
    }
  }
  EXPECT_TRUE(unreachable);
  EXPECT_TRUE(no_path);
}

TEST_F(AnalysisTest, LintFlagsStackImbalance) {
  core::Program program = load_source(R"(
_start:
    jal ra, broken
    li a0, 0
    li a7, 93
    ecall
broken:
    addi sp, sp, -16
    addi sp, sp, 8
    ret
)");
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  ASSERT_TRUE(sa.absint.complete) << sa.absint.incomplete_reason;
  std::vector<core::Finding> lints = sa.lint(program, decoder);
  bool imbalance = false;
  for (const core::Finding& f : lints)
    if (f.rule == "stack-imbalance") {
      imbalance = true;
      EXPECT_EQ(f.oracle, core::OracleKind::kStackSmash);
    }
  EXPECT_TRUE(imbalance);
}

TEST_F(AnalysisTest, LintFlagsAlwaysTrueAssert) {
  core::Program program = load_source(R"(
_start:
    li a0, 1
    li a7, 4
    ecall
    li a0, 0
    li a7, 93
    ecall
)");
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  ASSERT_TRUE(sa.absint.complete);
  std::vector<core::Finding> lints = sa.lint(program, decoder);
  bool always_true = false;
  for (const core::Finding& f : lints)
    if (f.rule == "always-true-assert") {
      always_true = true;
      EXPECT_EQ(f.oracle, core::OracleKind::kAssertFail);
    }
  EXPECT_TRUE(always_true);
}

TEST_F(AnalysisTest, LintStaysQuietOnBalancedCode) {
  core::Program program = load_source(R"(
_start:
    jal ra, fine
    li a0, 0
    li a7, 93
    ecall
fine:
    addi sp, sp, -16
    sw ra, 12(sp)
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
)");
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  ASSERT_TRUE(sa.absint.complete) << sa.absint.incomplete_reason;
  EXPECT_TRUE(sa.lint(program, decoder).empty());
}

// -- proves_safe rule table. -------------------------------------------------

TEST_F(AnalysisTest, ProvesSafeRespectsPerOracleRules) {
  // A store at a constant, aligned, in-bounds address: provable for the
  // oob/unaligned families; never provable for the families the static
  // model cannot discharge.
  core::Program program = load_source(R"(
_start:
    la t0, buf
    li t1, 7
    sw t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 8
)");
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  ASSERT_TRUE(sa.absint.complete);

  uint32_t store_pc = 0;
  for (const auto& [pc, d] : sa.absint.code)
    if (d.id() == isa::kSW) store_pc = pc;
  ASSERT_NE(store_pc, 0u);

  EXPECT_TRUE(sa.facts.proves_safe(core::OracleKind::kOobStore, store_pc));
  EXPECT_TRUE(sa.facts.proves_safe(core::OracleKind::kUnaligned, store_pc));
  // A load oracle candidate cannot exist at a store site — and the prover
  // must not claim stores safe for it either way (direction must match).
  EXPECT_FALSE(sa.facts.proves_safe(core::OracleKind::kOobLoad, store_pc));
  // kStackSmash / kBadJump / kReach are never statically proven.
  EXPECT_FALSE(sa.facts.proves_safe(core::OracleKind::kStackSmash, store_pc));
  EXPECT_FALSE(sa.facts.proves_safe(core::OracleKind::kBadJump, store_pc));
  EXPECT_FALSE(sa.facts.proves_safe(core::OracleKind::kReach, store_pc));

  // An incomplete analysis proves nothing at the same sites.
  analysis::StaticFacts gated = sa.facts;
  gated.complete = false;
  EXPECT_FALSE(gated.proves_safe(core::OracleKind::kOobStore, store_pc));
  EXPECT_FALSE(gated.proves_safe(core::OracleKind::kUnaligned, store_pc));
}

// -- Stack-window precision: ret resolves through saved/restored ra. ---------

TEST_F(AnalysisTest, SavedLinkRegisterSurvivesTheStackWindow) {
  // helper spills ra, clobbers it, reloads it and returns: only the
  // flow-sensitive stack bytes make the final `ret` resolvable.
  core::Program program = load_source(R"(
_start:
    jal ra, helper
    li a0, 0
    li a7, 93
    ecall
helper:
    addi sp, sp, -16
    sw ra, 12(sp)
    li ra, 0
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
)");
  bench::EngineSetup setup{decoder, registry, program};
  analysis::StaticAnalysis sa = analyze(setup);
  EXPECT_TRUE(sa.absint.complete) << sa.absint.incomplete_reason;
  // The instruction after the call is reached — the return resolved.
  EXPECT_TRUE(sa.absint.reached(program.entry + 4));
}

}  // namespace
}  // namespace binsym
