// Differential validation of the baseline lifter.
//
// (a) With no bug flags, lifter + IR execution must agree with the golden
//     oracle on every RV32IM instruction over random states — i.e. our
//     re-implementation of the *fixed* angr lifter is actually correct.
// (b) With each single bug flag enabled, the same sweep must DETECT a
//     mismatch on the instructions that bug affects, and only there —
//     reproducing how the paper's authors localized the five angr defects.
#include <gtest/gtest.h>

#include <set>

#include "baseline/ir_exec.hpp"
#include "oracle/rv32_oracle.hpp"
#include "support/rng.hpp"

namespace binsym {
namespace {

constexpr uint32_t kPc = 0x4000;
constexpr uint32_t kBufBase = 0x1000;

/// Execute `word` through lift + IR interpretation on a concrete-valued
/// SymMachine, and through the oracle; returns the set of divergences.
class LifterHarness {
 public:
  LifterHarness() : machine_(ctx_) {}

  /// Returns a human-readable divergence description, or "" on agreement.
  std::string compare_one(const baseline::Lifter& lifter,
                          const isa::Decoded& decoded, Rng& rng) {
    // Shared random start state.
    uint32_t regs[32] = {0};
    for (unsigned r = 1; r < 32; ++r) {
      regs[r] = rng.next32();
      if (rng.below(8) == 0) regs[r] = 0x80000000u;
      if (rng.below(8) == 0) regs[r] = 31;  // interesting shift amounts
    }
    bool mem_op = decoded.format() == isa::Format::kS ||
                  (decoded.id() >= isa::kLB && decoded.id() <= isa::kLHU);
    if (mem_op) regs[decoded.rs1()] = kBufBase + 64 + (rng.next32() & 63);

    core::ConcreteMemory image;
    for (uint32_t i = 0; i < 256; ++i)
      image.write8(kBufBase + i, static_cast<uint8_t>(rng.next()));

    // IR side.
    smt::Assignment seed;
    core::PathTrace trace;
    machine_.reset(image, kPc, 0, seed, trace);
    for (unsigned r = 1; r < 32; ++r)
      machine_.write_register(r, interp::sval(regs[r], 32));
    auto block = lifter.lift(decoded, kPc);
    if (!block) return "unliftable";
    machine_.set_next_pc(kPc + 4);
    baseline::execute_block(*block, machine_, temps_);
    machine_.advance();

    // Oracle side.
    oracle::OracleState oracle_state;
    for (unsigned r = 1; r < 32; ++r) oracle_state.regs[r] = regs[r];
    oracle_state.pc = kPc;
    std::unordered_map<uint32_t, uint8_t> shadow;
    oracle_state.load8 = [&](uint32_t addr) {
      auto it = shadow.find(addr);
      return it != shadow.end() ? it->second : image.read8(addr);
    };
    oracle_state.store8 = [&](uint32_t addr, uint8_t v) { shadow[addr] = v; };
    if (!oracle_step(oracle_state, decoded)) return "no oracle";

    for (unsigned r = 0; r < 32; ++r) {
      if (machine_.read_register(r).conc != oracle_state.reg(r))
        return "x" + std::to_string(r) + " differs";
    }
    if (machine_.pc() != oracle_state.pc) return "pc differs";
    for (const auto& [addr, value] : shadow) {
      if (machine_.memory().read_concrete(addr, 1) != value)
        return "memory differs";
    }
    return "";
  }

  /// Sweep all RV32IM instructions; returns the names that diverged.
  std::set<std::string> sweep(const isa::OpcodeTable& table,
                              const isa::Decoder& decoder,
                              const baseline::Lifter& lifter, uint64_t seed) {
    Rng rng(seed);
    std::set<std::string> diverged;
    for (const isa::OpcodeInfo& info : table.entries()) {
      if (info.format == isa::Format::kCsr || info.id == isa::kECALL ||
          info.id == isa::kEBREAK || info.id == isa::kMRET ||
          info.id == isa::kWFI || info.id == isa::kFENCE)
        continue;
      for (int i = 0; i < 40; ++i) {
        uint32_t word = info.match | (rng.next32() & ~info.mask);
        if (info.format == isa::Format::kS || info.format == isa::Format::kI)
          word = (word & 0x000fffff) | ((rng.next32() & 0x7f) << 20) |
                 info.match;
        auto decoded = decoder.decode(word);
        if (!decoded || decoded->info->id != info.id) continue;
        if (!compare_one(lifter, *decoded, rng).empty())
          diverged.insert(info.name);
      }
    }
    return diverged;
  }

 private:
  smt::Context ctx_;
  core::SymMachine machine_;
  std::vector<interp::SymValue> temps_;
};

class LifterTest : public ::testing::Test {
 protected:
  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  LifterHarness harness;
};

TEST_F(LifterTest, CorrectLifterMatchesOracle) {
  baseline::Lifter lifter(baseline::LifterBugs::none());
  auto diverged = harness.sweep(table, decoder, lifter, 0xc0ffee);
  EXPECT_TRUE(diverged.empty())
      << "lifter diverges from the golden model on: "
      << (diverged.empty() ? "" : *diverged.begin());
}

TEST_F(LifterTest, Bug1DetectedOnArithmeticShifts) {
  baseline::LifterBugs bugs;
  bugs.sra_as_logical = true;
  auto diverged = harness.sweep(table, decoder, baseline::Lifter(bugs), 1);
  EXPECT_TRUE(diverged.count("sra"));
  EXPECT_TRUE(diverged.count("srai"));
  EXPECT_FALSE(diverged.count("srl"));
  EXPECT_FALSE(diverged.count("add"));
}

TEST_F(LifterTest, Bug2DetectedOnRegisterShifts) {
  baseline::LifterBugs bugs;
  bugs.rtype_shift_uses_index = true;
  auto diverged = harness.sweep(table, decoder, baseline::Lifter(bugs), 2);
  EXPECT_TRUE(diverged.count("sll"));
  EXPECT_TRUE(diverged.count("srl"));
  EXPECT_TRUE(diverged.count("sra"));
  EXPECT_FALSE(diverged.count("slli"));
}

TEST_F(LifterTest, Bug3DetectedOnLoads) {
  baseline::LifterBugs bugs;
  bugs.load_wrong_extension = true;
  auto diverged = harness.sweep(table, decoder, baseline::Lifter(bugs), 3);
  EXPECT_TRUE(diverged.count("lb"));
  EXPECT_TRUE(diverged.count("lh"));
  EXPECT_TRUE(diverged.count("lbu"));
  EXPECT_TRUE(diverged.count("lhu"));
  EXPECT_FALSE(diverged.count("lw"));  // full-width load has no extension
  EXPECT_FALSE(diverged.count("sb"));
}

TEST_F(LifterTest, Bug4DetectedOnImmediateShifts) {
  baseline::LifterBugs bugs;
  bugs.itype_shamt_signed = true;
  auto diverged = harness.sweep(table, decoder, baseline::Lifter(bugs), 4);
  EXPECT_TRUE(diverged.count("slli"));
  EXPECT_TRUE(diverged.count("srli"));
  EXPECT_TRUE(diverged.count("srai"));
  EXPECT_FALSE(diverged.count("sll"));
}

TEST_F(LifterTest, Bug5DetectedOnSignedCompares) {
  baseline::LifterBugs bugs;
  bugs.signed_cmp_as_unsigned = true;
  auto diverged = harness.sweep(table, decoder, baseline::Lifter(bugs), 5);
  EXPECT_TRUE(diverged.count("slt"));
  EXPECT_TRUE(diverged.count("slti"));
  EXPECT_TRUE(diverged.count("blt"));
  EXPECT_TRUE(diverged.count("bge"));
  EXPECT_FALSE(diverged.count("sltu"));
  EXPECT_FALSE(diverged.count("bltu"));
}

TEST_F(LifterTest, LifterRejectsOutsideCoverage) {
  baseline::Lifter lifter;
  // CSRRW is outside the lifter's coverage (real lifters lag the ISA).
  auto decoded = decoder.decode(0x34029073);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(lifter.lift(*decoded, 0).has_value());
}

TEST_F(LifterTest, IrDumpIsReadable) {
  baseline::Lifter lifter;
  auto decoded = decoder.decode(0x00628233);  // add tp, t0, t1
  ASSERT_TRUE(decoded.has_value());
  auto block = lifter.lift(*decoded, 0x1000);
  ASSERT_TRUE(block.has_value());
  std::string text = baseline::dump(*block);
  EXPECT_NE(text.find("GET(x5)"), std::string::npos);
  EXPECT_NE(text.find("Add"), std::string::npos);
  EXPECT_NE(text.find("PUT(x4)"), std::string::npos);
}

}  // namespace
}  // namespace binsym
