// Property: disassemble -> assemble is the identity on encodings.
//
// For every instruction in the table (builtins + MADD + Zbb), random
// operand fields are generated, the word is disassembled to canonical text
// and re-assembled; the resulting word must be bit-identical. This pins
// the decoder, the disassembler's operand formatting and the assembler's
// generic by-format encoder against each other.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "spec/registry.hpp"
#include "support/rng.hpp"

namespace binsym {
namespace {

class AsmRoundTrip : public ::testing::TestWithParam<uint64_t> {
 protected:
  AsmRoundTrip() {
    spec::install_rv32im(registry, table);
    spec::install_custom_madd(table, registry);
    spec::install_zbb(table, registry);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_P(AsmRoundTrip, DisassembleAssembleIdentity) {
  Rng rng(GetParam());
  // Both text and data cursors start at the pc used for rendering, so
  // branch/jump targets resolve to in-range absolute addresses.
  rvasm::AsmOptions options;
  options.text_base = 0x1000;

  // Bits that are real operand fields per format; encodings may have
  // further don't-care bits (e.g. MADD's unused rounding-mode field) that
  // canonical disassembly cannot preserve, so randomization stays inside
  // the fields the text syntax round-trips.
  auto operand_field_mask = [](isa::Format format) -> uint32_t {
    constexpr uint32_t kRd = 0x1fu << 7, kRs1 = 0x1fu << 15,
                       kRs2 = 0x1fu << 20, kRs3 = 0x1fu << 27,
                       kImmI = 0xfffu << 20, kShamt = 0x1fu << 20,
                       kImmU = 0xfffffu << 12,
                       kImmSB = (0x7fu << 25) | (0x1fu << 7);
    switch (format) {
      case isa::Format::kR:      return kRd | kRs1 | kRs2;
      case isa::Format::kR4:     return kRd | kRs1 | kRs2 | kRs3;
      case isa::Format::kI:      return kRd | kRs1 | kImmI;
      case isa::Format::kIShift: return kRd | kRs1 | kShamt;
      case isa::Format::kS:
      case isa::Format::kB:      return kRs1 | kRs2 | kImmSB;
      case isa::Format::kU:
      case isa::Format::kJ:      return kRd | kImmU;
      case isa::Format::kCsr:    return kRd | kRs1 | kImmI;
      case isa::Format::kSystem: return 0;
    }
    return 0;
  };

  for (const isa::OpcodeInfo& info : table.entries()) {
    // FENCE's operand fields (pred/succ/fm) are not modelled by the
    // disassembler; its rendering is intentionally lossy.
    if (info.format == isa::Format::kSystem && info.mask != 0xffffffffu)
      continue;
    uint32_t fields = operand_field_mask(info.format) & ~info.mask;
    for (int round = 0; round < 25; ++round) {
      uint32_t word = info.match | (rng.next32() & fields);

      // Branch/jump immediates must be even and in range of the render pc;
      // regenerate the immediate field deterministically.
      if (info.format == isa::Format::kB) {
        int32_t offset =
            (static_cast<int32_t>(rng.below(1024)) - 512) * 2;  // +-1 KiB
        word = (word & 0x01fff07f) |
               isa::encode_b(0, 0, 0, 0, static_cast<uint32_t>(offset));
        word = (word & ~0x7fu) | info.match;
      }
      if (info.format == isa::Format::kJ) {
        int32_t offset = (static_cast<int32_t>(rng.below(2048)) - 1024) * 2;
        word = (word & 0x00000fff) |
               isa::encode_j(0, 0, static_cast<uint32_t>(offset));
        word = (word & ~0x7fu) | info.match;
      }

      auto decoded = decoder.decode(word);
      ASSERT_TRUE(decoded.has_value()) << info.name;
      if (decoded->info->id != info.id) continue;  // random bits hit another

      uint32_t render_pc = options.text_base;
      std::string text = isa::disassemble(*decoded, render_pc);

      std::vector<rvasm::AsmError> errors;
      auto assembled = rvasm::assemble(table, text, &errors, options);
      ASSERT_TRUE(assembled.has_value())
          << info.name << ": '" << text << "' — "
          << (errors.empty() ? "?" : errors[0].message);
      const auto& bytes = assembled->image.segments.front().bytes;
      ASSERT_EQ(bytes.size(), 4u) << text;
      uint32_t reassembled = bytes[0] | (bytes[1] << 8) | (bytes[2] << 16) |
                             (static_cast<uint32_t>(bytes[3]) << 24);
      EXPECT_EQ(reassembled, word)
          << info.name << ": '" << text << "' " << std::hex << word << " -> "
          << reassembled;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsmRoundTrip, ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace binsym
