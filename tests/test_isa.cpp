// ISA layer tests: golden instruction encodings (words produced by the
// GNU assembler), field extraction, decoder specificity and the
// disassembler's canonical output.
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/opcodes.hpp"

namespace binsym::isa {
namespace {

class IsaTest : public ::testing::Test {
 protected:
  OpcodeTable table;
  Decoder decoder{table};

  Decoded decode(uint32_t word) {
    auto result = decoder.decode(word);
    EXPECT_TRUE(result.has_value()) << "word " << std::hex << word;
    return result.value_or(Decoded{});
  }
};

// Golden encodings cross-checked against riscv64-unknown-elf-as output.
struct Golden {
  uint32_t word;
  OpcodeId id;
  const char* disasm;
};

TEST_F(IsaTest, GoldenEncodings) {
  const Golden cases[] = {
      {0x00000013, kADDI, "addi zero, zero, 0"},      // nop
      {0x00a28293, kADDI, "addi t0, t0, 10"},
      {0x00532023, kSW,   "sw t0, 0(t1)"},
      {0x0002a303, kLW,   "lw t1, 0(t0)"},
      {0xfff2c293, kXORI, "xori t0, t0, -1"},
      {0x00229293, kSLLI, "slli t0, t0, 2"},
      {0x4022d293, kSRAI, "srai t0, t0, 2"},
      {0x0022d293, kSRLI, "srli t0, t0, 2"},
      {0x40628233, kSUB,  "sub tp, t0, t1"},
      {0x00628233, kADD,  "add tp, t0, t1"},
      {0x0062f233, kAND,  "and tp, t0, t1"},
      {0x0062e233, kOR,   "or tp, t0, t1"},
      {0x0062c233, kXOR,  "xor tp, t0, t1"},
      {0x00629233, kSLL,  "sll tp, t0, t1"},
      {0x0062d233, kSRL,  "srl tp, t0, t1"},
      {0x4062d233, kSRA,  "sra tp, t0, t1"},
      {0x0062a233, kSLT,  "slt tp, t0, t1"},
      {0x0062b233, kSLTU, "sltu tp, t0, t1"},
      {0x02628233, kMUL,  "mul tp, t0, t1"},
      {0x02629233, kMULH, "mulh tp, t0, t1"},
      {0x0262d233, kDIVU, "divu tp, t0, t1"},
      {0x0262c233, kDIV,  "div tp, t0, t1"},
      {0x0262f233, kREMU, "remu tp, t0, t1"},
      {0x000012b7, kLUI,  "lui t0, 0x1"},
      {0x00001297, kAUIPC, "auipc t0, 0x1"},
      {0x00000073, kECALL, "ecall"},
      {0x00100073, kEBREAK, "ebreak"},
      {0x30200073, kMRET, "mret"},
      {0x10500073, kWFI,  "wfi"},
      {0x0000000f, kFENCE, "fence"},
      {0x34029073, kCSRRW, "csrrw zero, 0x340, t0"},
  };
  for (const Golden& g : cases) {
    Decoded d = decode(g.word);
    EXPECT_EQ(d.id(), g.id) << "word " << std::hex << g.word;
    EXPECT_EQ(disassemble(d, 0), g.disasm);
  }
}

TEST_F(IsaTest, BranchAndJumpImmediates) {
  // beq t0, t1, .+8  ->  0x00628463
  Decoded beq = decode(0x00628463);
  EXPECT_EQ(beq.id(), kBEQ);
  EXPECT_EQ(beq.immediate(), 8u);
  // backward branch: bne t0, t1, .-4
  Decoded bne = decode(0xfe629ee3);
  EXPECT_EQ(bne.id(), kBNE);
  EXPECT_EQ(static_cast<int32_t>(bne.immediate()), -4);
  // jal ra, .+16
  Decoded jal = decode(0x010000ef);
  EXPECT_EQ(jal.id(), kJAL);
  EXPECT_EQ(jal.immediate(), 16u);
  // jal zero, .-8
  Decoded jal_back = decode(0xff9ff06f);
  EXPECT_EQ(jal_back.id(), kJAL);
  EXPECT_EQ(static_cast<int32_t>(jal_back.immediate()), -8);
}

TEST_F(IsaTest, LoadStoreImmediates) {
  // lw t1, -4(sp)
  Decoded lw = decode(0xffc12303);
  EXPECT_EQ(lw.id(), kLW);
  EXPECT_EQ(static_cast<int32_t>(lw.immediate()), -4);
  EXPECT_EQ(lw.rs1(), 2u);
  // sw t1, -8(sp)
  Decoded sw = decode(0xfe612c23);
  EXPECT_EQ(sw.id(), kSW);
  EXPECT_EQ(static_cast<int32_t>(sw.immediate()), -8);
}

TEST_F(IsaTest, UndefinedWordsRejected) {
  EXPECT_FALSE(decoder.decode(0x00000000).has_value());
  EXPECT_FALSE(decoder.decode(0xffffffff).has_value());
  // funct3 == 011 in the load opcode space (ld) is not RV32.
  EXPECT_FALSE(decoder.decode(0x0002b303).has_value());
}

TEST_F(IsaTest, MostSpecificMatchWins) {
  // ECALL and CSRRW share the SYSTEM major opcode; the exact-match ECALL
  // must win over any format-level pattern.
  EXPECT_EQ(decode(0x00000073).id(), kECALL);
  EXPECT_EQ(decode(0x34029073).id(), kCSRRW);
}

TEST_F(IsaTest, TableRegistrationRules) {
  // Mask must pin the major opcode.
  EXPECT_FALSE(table.add("bad", 0x70, 0x40, Format::kR, "x").has_value());
  // Match bits outside the mask are rejected.
  EXPECT_FALSE(table.add("bad2", 0x7f, 0xff, Format::kR, "x").has_value());
  // Colliding encodings are rejected (same as an existing ADD).
  EXPECT_FALSE(
      table.add("addclone", 0xfe00707f, 0x00000033, Format::kR, "x").has_value());
  // Duplicate names are rejected.
  EXPECT_FALSE(table.add("add", 0x7f, 0x0b, Format::kR, "x").has_value());
  // A fresh custom opcode space works.
  auto id = table.add("custom0", 0x7f, 0x0b, Format::kR, "x");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(table.by_id(*id).name, "custom0");
  EXPECT_EQ(decode(0x0000000b).id(), *id);
}

TEST_F(IsaTest, RegisterNames) {
  EXPECT_STREQ(abi_reg_name(0), "zero");
  EXPECT_STREQ(abi_reg_name(1), "ra");
  EXPECT_STREQ(abi_reg_name(2), "sp");
  EXPECT_STREQ(abi_reg_name(10), "a0");
  EXPECT_STREQ(abi_reg_name(31), "t6");
  EXPECT_EQ(parse_reg_name("x0"), 0);
  EXPECT_EQ(parse_reg_name("x31"), 31);
  EXPECT_EQ(parse_reg_name("sp"), 2);
  EXPECT_EQ(parse_reg_name("fp"), 8);
  EXPECT_EQ(parse_reg_name("s0"), 8);
  EXPECT_EQ(parse_reg_name("x32"), -1);
  EXPECT_EQ(parse_reg_name("bogus"), -1);
}

TEST_F(IsaTest, ImmediateEncodersRoundTrip) {
  // encode_b/encode_j invert imm_b/imm_j for every even offset in range.
  for (int32_t offset = -4096; offset < 4096; offset += 2) {
    uint32_t word = encode_b(0x63, 0, 0, 0, static_cast<uint32_t>(offset));
    EXPECT_EQ(static_cast<int32_t>(imm_b(word)), offset);
  }
  for (int32_t offset = -1048576; offset < 1048576; offset += 4098) {
    uint32_t word = encode_j(0x6f, 0, static_cast<uint32_t>(offset));
    EXPECT_EQ(static_cast<int32_t>(imm_j(word)), offset) << offset;
  }
}

}  // namespace
}  // namespace binsym::isa
