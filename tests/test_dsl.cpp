// Tests for the specification DSL: builder width propagation, the
// typechecker's rejection rules and the pretty printer.
#include <gtest/gtest.h>

#include "dsl/builder.hpp"
#include "dsl/pretty.hpp"
#include "dsl/typecheck.hpp"
#include "spec/registry.hpp"

namespace binsym::dsl {
namespace {

TEST(DslBuilder, WidthPropagation) {
  E a = c32(1), b = c32(2);
  EXPECT_EQ(add(a, b).node->width, 32u);
  EXPECT_EQ(eq(a, b).node->width, 1u);
  EXPECT_EQ(concat(a, b).node->width, 64u);
  EXPECT_EQ(extract(a, 15, 8).node->width, 8u);
  EXPECT_EQ(sext(extract(a, 7, 0), 32).node->width, 32u);
  EXPECT_EQ(constant(0x1ff, 8).node->constant, 0xffu);  // canonicalized
}

TEST(DslBuilder, LetNumbering) {
  Semantics s = define_semantics([](SemBuilder& b) {
    E v0 = b.let_(b.rs1());
    E v1 = b.let_(add(v0, c32(1)));
    b.run_if_else(
        eq(v1, c32(0)), [&](SemBuilder& t) { t.let_(t.rs2()); },
        [&](SemBuilder& t) { t.let_(t.rs2()); });
  });
  EXPECT_EQ(s.num_lets, 4u);  // indices fresh across nested blocks
}

TEST(DslTypecheck, ShippedSpecIsWellFormed) {
  // Every builtin semantics must typecheck against its operand format —
  // the "independently verifiable artifact" property.
  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  for (const isa::OpcodeInfo& info : table.entries()) {
    const Semantics* semantics = registry.get(info.id);
    ASSERT_NE(semantics, nullptr) << info.name << " has no semantics";
    auto errors = typecheck(*semantics, info.format);
    EXPECT_TRUE(errors.empty())
        << info.name << ": " << (errors.empty() ? "" : errors[0].message);
  }
  EXPECT_EQ(registry.size(), static_cast<size_t>(isa::kNumBuiltinOps));
}

TEST(DslTypecheck, RejectsWidthMismatch) {
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.write_register(add(s.rs1(), constant(1, 8)));  // 32 vs 8
  });
  auto errors = typecheck(bad, isa::Format::kR);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("widths differ"), std::string::npos);
}

TEST(DslTypecheck, RejectsUnavailableOperand) {
  // rs2 does not exist in the I format.
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.write_register(s.rs2());
  });
  EXPECT_FALSE(well_formed(bad, isa::Format::kI));
  EXPECT_TRUE(well_formed(bad, isa::Format::kR));
}

TEST(DslTypecheck, RejectsNarrowRegisterWrite) {
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.write_register(extract(s.rs1(), 7, 0));  // 8-bit value into a register
  });
  EXPECT_FALSE(well_formed(bad, isa::Format::kR));
}

TEST(DslTypecheck, RejectsWriteToFormatWithoutRd) {
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.write_register(s.rs1());
  });
  EXPECT_FALSE(well_formed(bad, isa::Format::kB));
  EXPECT_FALSE(well_formed(bad, isa::Format::kS));
}

TEST(DslTypecheck, RejectsNonBooleanCondition) {
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.run_if(s.rs1(), [](SemBuilder&) {});  // 32-bit condition
  });
  EXPECT_FALSE(well_formed(bad, isa::Format::kR));
}

TEST(DslTypecheck, RejectsBadExtract) {
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.write_register(zext(extract(s.rs1(), 40, 0), 32));  // hi out of range
  });
  EXPECT_FALSE(well_formed(bad, isa::Format::kR));
}

TEST(DslTypecheck, RejectsShrinkingExtension) {
  Expr raw;
  raw.op = ExprOp::kZExt;
  raw.width = 8;
  raw.aux0 = 8;
  raw.a = operand(Operand::kRs1Val).node;
  Semantics bad;
  Stmt stmt;
  stmt.op = StmtOp::kWritePC;
  stmt.value = std::make_shared<const Expr>(raw);
  bad.body.push_back(std::make_shared<const Stmt>(stmt));
  EXPECT_FALSE(well_formed(bad, isa::Format::kR));
}

TEST(DslTypecheck, StoreSizeRules) {
  Semantics good = define_semantics([](SemBuilder& s) {
    s.store(2, s.rs1(), extract(s.rs2(), 15, 0));
  });
  EXPECT_TRUE(well_formed(good, isa::Format::kS));
  Semantics bad = define_semantics([](SemBuilder& s) {
    s.store(2, s.rs1(), s.rs2());  // 32-bit value, 2-byte store
  });
  EXPECT_FALSE(well_formed(bad, isa::Format::kS));
}

TEST(DslPretty, DivuRendersLikeThePaper) {
  // Fig. 2's DIVU semantics, as shipped.
  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  std::string text =
      pretty_semantics("DIVU", *registry.get(isa::kDIVU));
  EXPECT_NE(text.find("instrSemantics DIVU = do"), std::string::npos);
  EXPECT_NE(text.find("runIfElse (rs2-val `EqInt` 0x0)"), std::string::npos);
  EXPECT_NE(text.find("WriteRegister rd 0xffffffff"), std::string::npos);
  EXPECT_NE(text.find("UDiv"), std::string::npos);
}

TEST(DslPretty, LoadsAndStores) {
  isa::OpcodeTable table;
  spec::Registry registry;
  spec::install_rv32im(registry, table);
  std::string lb = pretty_semantics("LB", *registry.get(isa::kLB));
  EXPECT_NE(lb.find("Load8"), std::string::npos);
  EXPECT_NE(lb.find("sext32"), std::string::npos);
  std::string sh = pretty_semantics("SH", *registry.get(isa::kSH));
  EXPECT_NE(sh.find("Store16"), std::string::npos);
}

}  // namespace
}  // namespace binsym::dsl
