// Differential validation of the abstract domain (src/analysis/domain.hpp)
// against the independent RV32 golden model (tests/oracle/rv32_oracle.hpp),
// over randomized abstractions and concretizations.
//
// The property under test is the one every static proof reduces to: for
// all concrete x in gamma(a), y in gamma(b), the concrete result of the
// operation — as the *oracle* computes it, not our own interpreter — is in
// gamma(abs_op(a, b)). The same containment discipline covers join, meet,
// widen, comparison decisions and branch refinement.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/domain.hpp"
#include "isa/decoder.hpp"
#include "oracle/rv32_oracle.hpp"
#include "support/rng.hpp"

namespace binsym::analysis {
namespace {

using AbsFn = AbsValue (*)(const AbsValue&, const AbsValue&);

/// The R-format ALU/M operations the abstract interpreter dispatches on,
/// paired with their transfer functions. Shift-immediates ride along via
/// a constant right operand (exactly how absint models them).
AbsFn abs_fn_for(isa::OpcodeId id) {
  switch (id) {
    case isa::kADD:    return abs_add;
    case isa::kSUB:    return abs_sub;
    case isa::kSLL:    return abs_sll;
    case isa::kSLT:    return abs_slt;
    case isa::kSLTU:   return abs_sltu;
    case isa::kXOR:    return abs_xor;
    case isa::kSRL:    return abs_srl;
    case isa::kSRA:    return abs_sra;
    case isa::kOR:     return abs_or;
    case isa::kAND:    return abs_and;
    case isa::kMUL:    return abs_mul;
    case isa::kMULH:   return abs_mulh;
    case isa::kMULHSU: return abs_mulhsu;
    case isa::kMULHU:  return abs_mulhu;
    case isa::kDIV:    return abs_div;
    case isa::kDIVU:   return abs_divu;
    case isa::kREM:    return abs_rem;
    case isa::kREMU:   return abs_remu;
    default:           return nullptr;
  }
}

/// A small concrete sample set with the usual corner values over-weighted.
std::vector<uint32_t> random_samples(Rng& rng) {
  std::vector<uint32_t> s(1 + rng.below(6));
  for (uint32_t& x : s) {
    x = rng.next32();
    switch (rng.below(8)) {
      case 0: x = 0; break;
      case 1: x = 0xffffffffu; break;
      case 2: x = 0x80000000u; break;
      case 3: x = 0x7fffffffu; break;
      case 4: x &= 0xff; break;  // small values: the common loop/index case
      default: break;
    }
  }
  return s;
}

/// Build some abstraction of `samples` — every constructor in the domain
/// must produce a gamma that covers its inputs, so the test may pick any.
AbsValue abstraction_of(const std::vector<uint32_t>& samples, Rng& rng) {
  switch (rng.below(4)) {
    case 0:
      return AbsValue::from_values(samples);
    case 1:
      return AbsValue::range(*std::min_element(samples.begin(), samples.end()),
                             *std::max_element(samples.begin(), samples.end()));
    case 2: {
      AbsValue v = AbsValue::bottom();
      for (uint32_t x : samples) v = abs_join(v, AbsValue::constant(x));
      return v;
    }
    default: {
      AbsValue v = AbsValue::constant(samples.front());
      for (uint32_t x : samples)
        v = abs_widen(v, abs_join(v, AbsValue::constant(x)));
      return v;
    }
  }
}

bool concrete_cmp(CmpOp op, uint32_t x, uint32_t y) {
  switch (op) {
    case CmpOp::kEq:  return x == y;
    case CmpOp::kNe:  return x != y;
    case CmpOp::kLt:  return static_cast<int32_t>(x) < static_cast<int32_t>(y);
    case CmpOp::kGe:  return static_cast<int32_t>(x) >= static_cast<int32_t>(y);
    case CmpOp::kLtu: return x < y;
    case CmpOp::kGeu: return x >= y;
  }
  return false;
}

constexpr CmpOp kAllCmps[] = {CmpOp::kEq,  CmpOp::kNe,  CmpOp::kLt,
                              CmpOp::kGe,  CmpOp::kLtu, CmpOp::kGeu};

class AnalysisDomainTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  isa::OpcodeTable table;
  isa::Decoder decoder{table};
};

TEST_P(AnalysisDomainTest, TransferFunctionsOverapproximateOracle) {
  Rng rng(GetParam());
  for (const isa::OpcodeInfo& info : table.entries()) {
    AbsFn fn = abs_fn_for(info.id);
    if (!fn || info.format != isa::Format::kR) continue;
    // rd = x3, rs1 = x1, rs2 = x2.
    auto d = decoder.decode(info.match | (3u << 7) | (1u << 15) | (2u << 20));
    ASSERT_TRUE(d.has_value()) << info.name;

    for (int round = 0; round < 40; ++round) {
      std::vector<uint32_t> xs = random_samples(rng);
      std::vector<uint32_t> ys = random_samples(rng);
      AbsValue a = abstraction_of(xs, rng);
      AbsValue b = abstraction_of(ys, rng);
      AbsValue r = fn(a, b);
      for (uint32_t x : xs)
        for (uint32_t y : ys) {
          oracle::OracleState s;
          s.regs[1] = x;
          s.regs[2] = y;
          ASSERT_TRUE(oracle::oracle_step(s, *d)) << info.name;
          EXPECT_TRUE(r.contains(s.regs[3]))
              << info.name << " of " << x << ", " << y << " = " << s.regs[3]
              << " not in " << abs_to_string(r) << " (a=" << abs_to_string(a)
              << " b=" << abs_to_string(b) << ")";
        }
    }
  }
}

TEST_P(AnalysisDomainTest, ShiftImmediatesOverapproximateOracle) {
  Rng rng(GetParam() ^ 0x5157u);
  for (const isa::OpcodeInfo& info : table.entries()) {
    AbsFn fn = info.id == isa::kSLLI   ? abs_sll
               : info.id == isa::kSRLI ? abs_srl
               : info.id == isa::kSRAI ? abs_sra
                                       : nullptr;
    if (!fn) continue;
    for (int round = 0; round < 40; ++round) {
      uint32_t shamt = rng.below(32);
      auto d = decoder.decode(info.match | (3u << 7) | (1u << 15) |
                              (shamt << 20));
      ASSERT_TRUE(d.has_value()) << info.name;
      ASSERT_EQ(d->info->id, info.id);
      std::vector<uint32_t> xs = random_samples(rng);
      AbsValue a = abstraction_of(xs, rng);
      AbsValue r = fn(a, AbsValue::constant(shamt));
      for (uint32_t x : xs) {
        oracle::OracleState s;
        s.regs[1] = x;
        ASSERT_TRUE(oracle::oracle_step(s, *d)) << info.name;
        EXPECT_TRUE(r.contains(s.regs[3]))
            << info.name << " of " << x << " >> " << shamt;
      }
    }
  }
}

TEST_P(AnalysisDomainTest, JoinMeetWidenContainment) {
  Rng rng(GetParam() ^ 0x1019u);
  for (int round = 0; round < 400; ++round) {
    std::vector<uint32_t> xs = random_samples(rng);
    std::vector<uint32_t> ys = random_samples(rng);
    AbsValue a = abstraction_of(xs, rng);
    AbsValue b = abstraction_of(ys, rng);

    AbsValue j = abs_join(a, b);
    AbsValue w = abs_widen(a, j);
    for (uint32_t x : xs) {
      EXPECT_TRUE(j.contains(x)) << "join lost a left member";
      EXPECT_TRUE(w.contains(x)) << "widen lost a left member";
    }
    for (uint32_t y : ys) {
      EXPECT_TRUE(j.contains(y)) << "join lost a right member";
      EXPECT_TRUE(w.contains(y)) << "widen lost a right member";
    }

    // Meet must keep everything both sides contain.
    AbsValue m = abs_meet(a, b);
    for (uint32_t x : xs)
      if (a.contains(x) && b.contains(x)) {
        EXPECT_TRUE(m.contains(x)) << "meet lost a common member";
      }
  }
}

TEST_P(AnalysisDomainTest, CompareDecisionsMatchConcrete) {
  Rng rng(GetParam() ^ 0xc3a7u);
  for (int round = 0; round < 400; ++round) {
    std::vector<uint32_t> xs = random_samples(rng);
    std::vector<uint32_t> ys = random_samples(rng);
    AbsValue a = abstraction_of(xs, rng);
    AbsValue b = abstraction_of(ys, rng);
    for (CmpOp op : kAllCmps) {
      std::optional<bool> decided = abs_compare(op, a, b);
      if (!decided) continue;
      for (uint32_t x : xs)
        for (uint32_t y : ys)
          EXPECT_EQ(*decided, concrete_cmp(op, x, y))
              << "decided comparison contradicts a concretization";
    }
  }
}

TEST_P(AnalysisDomainTest, RefinementKeepsSatisfyingValues) {
  Rng rng(GetParam() ^ 0xbeefu);
  for (int round = 0; round < 400; ++round) {
    std::vector<uint32_t> xs = random_samples(rng);
    std::vector<uint32_t> ys = random_samples(rng);
    AbsValue v = abstraction_of(xs, rng);
    AbsValue rhs = abstraction_of(ys, rng);
    uint32_t c = ys.front();
    bool taken = rng.below(2) == 0;
    for (CmpOp op : kAllCmps) {
      // Constant refinement: every sample that satisfies the assumption
      // must survive it.
      AbsValue rc = abs_refine(v, op, c, taken);
      for (uint32_t x : xs)
        if (concrete_cmp(op, x, c) == taken) {
          EXPECT_TRUE(rc.contains(x))
              << "constant refinement lost x=" << x << " c=" << c;
        }

      // Abstract-rhs refinement, left operand.
      AbsValue ra = abs_refine(v, op, rhs, taken);
      for (uint32_t x : xs)
        for (uint32_t y : ys)
          if (concrete_cmp(op, x, y) == taken) {
            EXPECT_TRUE(ra.contains(x))
                << "lhs refinement lost x=" << x << " y=" << y;
          }

      // Abstract-lhs refinement, right operand.
      AbsValue rb = abs_refine_rhs(rhs, op, v, taken);
      for (uint32_t x : xs)
        for (uint32_t y : ys)
          if (concrete_cmp(op, y, x) == taken) {
            EXPECT_TRUE(rb.contains(x))
                << "rhs refinement lost x=" << x << " lhs y=" << y;
          }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisDomainTest,
                         ::testing::Values(1u, 2u, 3u, 0xdeadbeefu));

}  // namespace
}  // namespace binsym::analysis
