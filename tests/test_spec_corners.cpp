// Corner-case battery for the formal RV32IM semantics: the precise edge
// behaviours the RISC-V manual calls out, checked one by one against the
// spec interpreter. Complements the randomized oracle sweep with the known
// hard cases (many of which are exactly where the real angr bugs lived).
#include <gtest/gtest.h>

#include "interp/concrete.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym {
namespace {

class SpecCorners : public ::testing::Test {
 protected:
  SpecCorners() : iss(decoder, registry) {
    spec::install_rv32im(registry, table);
  }

  /// Execute one instruction word with given rs1/rs2 values; returns rd.
  uint32_t exec_r(uint32_t word, uint32_t rs1, uint32_t rs2,
                  uint32_t pc = 0x1000) {
    auto decoded = decoder.decode(word);
    EXPECT_TRUE(decoded.has_value());
    iss.machine().regs_[decoded->rs1()] = interp::cval(rs1, 32);
    if (decoded->rs2() != decoded->rs1())
      iss.machine().regs_[decoded->rs2()] = interp::cval(rs2, 32);
    iss.machine().pc_ = pc;
    iss.execute_one(*decoded);
    return static_cast<uint32_t>(iss.machine().regs_[decoded->rd()].v);
  }

  uint32_t next_pc() { return iss.machine().pc_; }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
  interp::Iss iss;
};

// add tp, t0, t1 with custom funct variations built via encode_r.
constexpr uint32_t r_word(uint32_t f3, uint32_t f7) {
  return isa::encode_r(0b0110011, f3, f7, 4, 5, 6);
}

TEST_F(SpecCorners, ShiftAmountsUseLowFiveBitsOfRs2) {
  // Paper bug #2 territory: SLL with rs2 == 0xffffffe1 shifts by 1.
  EXPECT_EQ(exec_r(r_word(0b001, 0), 1, 0xffffffe1), 2u);
  // SRL with rs2 == 32 shifts by 0 (not to zero!).
  EXPECT_EQ(exec_r(r_word(0b101, 0), 0xdeadbeef, 32), 0xdeadbeefu);
  // SRA keeps the sign (paper bug #1 territory).
  EXPECT_EQ(exec_r(r_word(0b101, 0b0100000), 0x80000000, 31), 0xffffffffu);
  // Amount 63 masks to 31, NOT a saturating shift (the masking is the spec's).
  EXPECT_EQ(exec_r(r_word(0b101, 0b0100000), 0x80000000, 63), 0xffffffffu);
  EXPECT_EQ(exec_r(r_word(0b101, 0b0100000), 0x40000000, 62), 0x40000000u >> 30);
}

TEST_F(SpecCorners, ImmediateShiftBoundaries) {
  // slli x7, x5, 31 — shamt 31 is unsigned (paper bug #4 territory).
  uint32_t slli31 = isa::encode_i(0b0010011, 0b001, 7, 5, 31);
  iss.machine().regs_[5] = interp::cval(1, 32);
  auto decoded = decoder.decode(slli31);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().regs_[7].v, 0x80000000u);
  // srai x7, x5, 0 is the identity.
  uint32_t srai0 = isa::encode_i(0b0010011, 0b101, 7, 5, 0) | (0b0100000 << 25);
  iss.machine().regs_[5] = interp::cval(0xcafebabe, 32);
  decoded = decoder.decode(srai0);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().regs_[7].v, 0xcafebabeu);
}

TEST_F(SpecCorners, SignedVsUnsignedComparisons) {
  // Paper bug #5 territory: -1 < 1 signed, but 0xffffffff > 1 unsigned.
  uint32_t slt = r_word(0b010, 0);
  uint32_t sltu = r_word(0b011, 0);
  EXPECT_EQ(exec_r(slt, 0xffffffff, 1), 1u);
  EXPECT_EQ(exec_r(sltu, 0xffffffff, 1), 0u);
  EXPECT_EQ(exec_r(slt, 1, 0xffffffff), 0u);
  EXPECT_EQ(exec_r(sltu, 1, 0xffffffff), 1u);
  // INT_MIN is smaller than everything signed, bigger than half unsigned.
  EXPECT_EQ(exec_r(slt, 0x80000000, 0), 1u);
  EXPECT_EQ(exec_r(sltu, 0x80000000, 0), 0u);
}

TEST_F(SpecCorners, LoadExtensions) {
  // Paper bug #3 territory, all four cases.
  iss.machine().memory_.write(0x2000, 4, 0x8081fe7f);
  auto run_load = [&](uint32_t f3, uint32_t offset) {
    uint32_t word = isa::encode_i(0b0000011, f3, 7, 5, offset);
    iss.machine().regs_[5] = interp::cval(0x2000, 32);
    auto decoded = decoder.decode(word);
    EXPECT_TRUE(decoded.has_value());
    iss.execute_one(*decoded);
    return static_cast<uint32_t>(iss.machine().regs_[7].v);
  };
  EXPECT_EQ(run_load(0b000, 3), 0xffffff80u);  // lb of 0x80 sign-extends
  EXPECT_EQ(run_load(0b100, 3), 0x00000080u);  // lbu zero-extends
  EXPECT_EQ(run_load(0b000, 0), 0x0000007fu);  // lb of 0x7f stays positive
  EXPECT_EQ(run_load(0b001, 2), 0xffff8081u);  // lh of 0x8081 sign-extends
  EXPECT_EQ(run_load(0b101, 2), 0x00008081u);  // lhu zero-extends
}

TEST_F(SpecCorners, SubWordStoresTouchOnlyTheirBytes) {
  iss.machine().memory_.write(0x3000, 4, 0xffffffff);
  // sb x6, 1(x5) with x6 = 0x12345678 writes only 0x78 at 0x3001.
  uint32_t word = isa::encode_s(0b0100011, 0b000, 5, 6, 1);
  iss.machine().regs_[5] = interp::cval(0x3000, 32);
  iss.machine().regs_[6] = interp::cval(0x12345678, 32);
  auto decoded = decoder.decode(word);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().memory_.read(0x3000, 4), 0xffff78ffu);
}

TEST_F(SpecCorners, JalrClearsBitZeroAndHandlesRdEqRs1) {
  // jalr x5, x5, 7 — link written after the target is computed.
  uint32_t word = isa::encode_i(0b1100111, 0, 5, 5, 7);
  iss.machine().regs_[5] = interp::cval(0x4000, 32);
  iss.machine().pc_ = 0x1000;
  auto decoded = decoder.decode(word);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().pc_, 0x4006u);          // (0x4000+7) & ~1
  EXPECT_EQ(iss.machine().regs_[5].v, 0x1004u);   // link value
}

TEST_F(SpecCorners, JalLinksAndJumps) {
  uint32_t word = isa::encode_j(0b1101111, 1, 0x20);  // jal ra, .+0x20
  iss.machine().pc_ = 0x1000;
  auto decoded = decoder.decode(word);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().pc_, 0x1020u);
  EXPECT_EQ(iss.machine().regs_[1].v, 0x1004u);
}

TEST_F(SpecCorners, BranchTakenAndNotTaken) {
  uint32_t beq = isa::encode_b(0b1100011, 0b000, 0, 0, 0x10) | (5u << 15) |
                 (6u << 20);
  iss.machine().regs_[5] = interp::cval(1, 32);
  iss.machine().regs_[6] = interp::cval(1, 32);
  iss.machine().pc_ = 0x1000;
  auto decoded = decoder.decode(beq);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().pc_, 0x1010u);  // taken

  iss.machine().regs_[6] = interp::cval(2, 32);
  iss.machine().pc_ = 0x1000;
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().pc_, 0x1004u);  // fallthrough
}

TEST_F(SpecCorners, DivisionTable71) {
  // The RISC-V manual's Table 7.1 of special cases, verbatim.
  uint32_t div = r_word(0b100, 1), divu = r_word(0b101, 1);
  uint32_t rem = r_word(0b110, 1), remu = r_word(0b111, 1);
  // Division by zero.
  EXPECT_EQ(exec_r(div, 17, 0), 0xffffffffu);
  EXPECT_EQ(exec_r(divu, 17, 0), 0xffffffffu);
  EXPECT_EQ(exec_r(rem, 17, 0), 17u);
  EXPECT_EQ(exec_r(remu, 17, 0), 17u);
  // Signed overflow.
  EXPECT_EQ(exec_r(div, 0x80000000, 0xffffffff), 0x80000000u);
  EXPECT_EQ(exec_r(rem, 0x80000000, 0xffffffff), 0u);
  // Ordinary signed cases, rounding toward zero.
  EXPECT_EQ(exec_r(div, static_cast<uint32_t>(-7), 2),
            static_cast<uint32_t>(-3));
  EXPECT_EQ(exec_r(rem, static_cast<uint32_t>(-7), 2),
            static_cast<uint32_t>(-1));
}

TEST_F(SpecCorners, MulhCornerValues) {
  uint32_t mulh = r_word(0b001, 1), mulhu = r_word(0b011, 1),
           mulhsu = r_word(0b010, 1);
  EXPECT_EQ(exec_r(mulh, 0x80000000, 0x80000000), 0x40000000u);
  EXPECT_EQ(exec_r(mulhu, 0x80000000, 0x80000000), 0x40000000u);
  EXPECT_EQ(exec_r(mulhu, 0xffffffff, 0xffffffff), 0xfffffffeu);
  EXPECT_EQ(exec_r(mulh, 0xffffffff, 0xffffffff), 0u);  // (-1)*(-1)=1
  // mulhsu: rs1 signed, rs2 unsigned: -1 * 0xffffffff = -0xffffffff.
  EXPECT_EQ(exec_r(mulhsu, 0xffffffff, 0xffffffff), 0xffffffffu);
}

TEST_F(SpecCorners, WritesToX0AreDiscarded) {
  uint32_t word = isa::encode_r(0b0110011, 0, 0, 0, 5, 6);  // add x0, t0, t1
  exec_r(word, 11, 22);
  EXPECT_EQ(iss.machine().regs_[0].v, 0u);
}

TEST_F(SpecCorners, LuiAuipcUpperImmediates) {
  uint32_t lui = isa::encode_u(0b0110111, 7, 0xfffff000);
  auto decoded = decoder.decode(lui);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().regs_[7].v, 0xfffff000u);

  uint32_t auipc = isa::encode_u(0b0010111, 7, 0x1000);
  iss.machine().pc_ = 0x1234;
  decoded = decoder.decode(auipc);
  ASSERT_TRUE(decoded.has_value());
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().regs_[7].v, 0x1000u + 0x1234u);
}

}  // namespace
}  // namespace binsym
