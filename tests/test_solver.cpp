// Tests for the solver stack: Z3 backend, model extraction, the query
// cache and the validating wrapper.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "smt/cache.hpp"
#include "smt/eval.hpp"
#include "smt/solver.hpp"
#include "solver_test_util.hpp"

namespace binsym::smt {
namespace {

TEST(Z3Solver, TrivialSatUnsat) {
  Context ctx;
  auto solver = make_z3_solver(ctx);
  ExprRef x = ctx.var("x", 32);

  std::vector<ExprRef> sat_query = {ctx.eq(x, ctx.constant(42, 32))};
  EXPECT_EQ(solver->check(sat_query, nullptr), CheckResult::kSat);

  std::vector<ExprRef> unsat_query = {ctx.eq(x, ctx.constant(1, 32)),
                                      ctx.eq(x, ctx.constant(2, 32))};
  EXPECT_EQ(solver->check(unsat_query, nullptr), CheckResult::kUnsat);
  EXPECT_EQ(solver->stats().queries, 2u);
  EXPECT_EQ(solver->stats().sat, 1u);
  EXPECT_EQ(solver->stats().unsat, 1u);
}

TEST(Z3Solver, ModelSatisfiesQuery) {
  Context ctx;
  auto solver = make_z3_solver(ctx);
  ExprRef x = ctx.var("x", 32);
  ExprRef y = ctx.var("y", 32);
  // x * 3 == y + 7 and y > 100
  std::vector<ExprRef> query = {
      ctx.eq(ctx.mul(x, ctx.constant(3, 32)), ctx.add(y, ctx.constant(7, 32))),
      ctx.ugt(y, ctx.constant(100, 32))};
  Assignment model;
  ASSERT_EQ(solver->check(query, &model), CheckResult::kSat);
  for (ExprRef assertion : query)
    EXPECT_EQ(evaluate(assertion, model), 1u);
}

TEST(Z3Solver, DivisionEdgeCases) {
  Context ctx;
  auto solver = make_z3_solver(ctx);
  ExprRef x = ctx.var("x", 32);
  // The Fig. 2 insight: x udiv 0 == all-ones is satisfiable (it's the
  // *definition*), so "z > x" after DIVU is reachable with divisor 0.
  std::vector<ExprRef> query = {
      ctx.eq(ctx.udiv(x, ctx.constant(0, 32)), ctx.constant(0xffffffff, 32))};
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kSat);
}

TEST(Z3Solver, WideWidths) {
  Context ctx;
  auto solver = make_z3_solver(ctx);
  ExprRef a = ctx.var("a", 64);
  std::vector<ExprRef> query = {
      ctx.eq(ctx.mul(a, a), ctx.constant(0x8e45445c9b6f9b39ull, 64))};
  Assignment model;
  // Some 64-bit square; solver decides — just ensure no crash and a valid
  // model on sat.
  CheckResult result = solver->check(query, &model);
  if (result == CheckResult::kSat) {
    EXPECT_EQ(evaluate(query[0], model), 1u);
  }
}

TEST(CachingSolver, HitsOnRepeatedQueries) {
  Context ctx;
  CachingSolver cache(make_z3_solver(ctx));
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.ult(x, ctx.constant(10, 8))};

  Assignment m1, m2;
  EXPECT_EQ(cache.check(query, &m1), CheckResult::kSat);
  EXPECT_EQ(cache.stats().cache_hits, 0u);
  EXPECT_EQ(cache.check(query, &m2), CheckResult::kSat);
  EXPECT_EQ(cache.stats().cache_hits, 1u);
  EXPECT_EQ(m1.get(x->var_id), m2.get(x->var_id));  // cached model replayed
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CachingSolver, KeyIgnoresOrderDuplicatesAndTrueAssertions) {
  Context ctx;
  CachingSolver cache(make_z3_solver(ctx));
  ExprRef x = ctx.var("x", 8);
  ExprRef a = ctx.ult(x, ctx.constant(10, 8));
  ExprRef b = ctx.ugt(x, ctx.constant(3, 8));

  std::vector<ExprRef> q1 = {a, b};
  std::vector<ExprRef> q2 = {b, a, a, ctx.bool_const(true)};
  EXPECT_EQ(cache.check(q1, nullptr), CheckResult::kSat);
  EXPECT_EQ(cache.check(q2, nullptr), CheckResult::kSat);
  EXPECT_EQ(cache.stats().cache_hits, 1u);
}

TEST(ValidatingSolver, PassesThroughCorrectModels) {
  Context ctx;
  ValidatingSolver validating(make_z3_solver(ctx));
  ExprRef x = ctx.var("x", 16);
  std::vector<ExprRef> query = {
      ctx.eq(ctx.add(x, ctx.constant(1, 16)), ctx.constant(0, 16))};
  Assignment model;
  EXPECT_EQ(validating.check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 0xffffu);
}

TEST(QueryCache, RepeatedPrefixQuerySequenceHits) {
  // The engine's characteristic query stream: growing prefixes re-checked
  // across sibling flips. Pin the exact hit/miss accounting.
  Context ctx;
  CachingSolver cache(make_z3_solver(ctx));
  ExprRef x = ctx.var("x", 8);
  ExprRef a = ctx.ult(x, ctx.constant(100, 8));
  ExprRef b = ctx.ugt(x, ctx.constant(10, 8));
  ExprRef c = ctx.eq(x, ctx.constant(50, 8));

  std::vector<std::vector<ExprRef>> stream = {
      {a}, {a, b}, {a, b, c},  // first descent: three misses
      {a, b},                  // sibling flip re-check: hit
      {a},                     // back at the root: hit
      {a, b, c},               // deepest prefix again: hit
  };
  for (const auto& query : stream)
    EXPECT_EQ(cache.check(query, nullptr), CheckResult::kSat);

  EXPECT_EQ(cache.stats().cache_hits, 3u);
  EXPECT_EQ(cache.stats().cache_misses, 3u);
  EXPECT_EQ(cache.stats().queries, 6u);
  EXPECT_EQ(cache.cache().hits(), 3u);
  EXPECT_EQ(cache.cache().misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  // The inner backend only ever saw the misses.
  EXPECT_EQ(cache.inner().stats().queries, 3u);
}

TEST(QueryCache, SharedAcrossSolversOverOneContext) {
  Context ctx;
  auto shared = std::make_shared<QueryCache>(/*shards=*/4);
  CachingSolver first(make_z3_solver(ctx), shared);
  CachingSolver second(make_z3_solver(ctx), shared);
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.ult(x, ctx.constant(10, 8))};

  Assignment m1, m2;
  EXPECT_EQ(first.check(query, &m1), CheckResult::kSat);
  EXPECT_EQ(second.check(query, &m2), CheckResult::kSat);
  // The second solver answered from the first solver's work.
  EXPECT_EQ(second.stats().cache_hits, 1u);
  EXPECT_EQ(second.inner().stats().queries, 0u);
  EXPECT_EQ(m1.get(x->var_id), m2.get(x->var_id));
  EXPECT_EQ(shared->hits(), 1u);
  EXPECT_EQ(shared->misses(), 1u);
}

TEST(QueryCache, ConcurrentLookupsAndInsertsAreConsistent) {
  QueryCache cache(/*shards=*/8);
  constexpr int kThreads = 4;
  constexpr uint32_t kKeys = 64;
  constexpr int kRounds = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache] {
      for (int round = 0; round < kRounds; ++round) {
        for (uint32_t k = 0; k < kKeys; ++k) {
          QueryCache::Key key = {k, k + 1000};
          QueryCache::Entry entry;
          if (!cache.lookup(key, &entry)) {
            entry.result = CheckResult::kSat;
            entry.model.set(k, k);
            cache.insert(key, entry);
          } else {
            EXPECT_EQ(entry.result, CheckResult::kSat);
            EXPECT_EQ(entry.model.get(k), k);
          }
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(cache.size(), kKeys);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kRounds * kKeys);
  EXPECT_GE(cache.misses(), kKeys);  // at least one miss per distinct key
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// -- Scoped (incremental) API: native Z3, adapter-backed bitblast, and the
// -- wrappers, all against the same script. ----------------------------------

using SolverFactory = std::unique_ptr<Solver> (*)(Context&);

class ScopedSolverApi : public ::testing::TestWithParam<SolverFactory> {};

TEST_P(ScopedSolverApi, PrefixAssertedOnceAnswersEveryAssumption) {
  Context ctx;
  auto solver = GetParam()(ctx);
  ExprRef x = ctx.var("x", 8);
  ExprRef y = ctx.var("y", 8);

  solver->push();
  solver->assert_(ctx.ult(x, ctx.constant(10, 8)));   // x < 10
  solver->assert_(ctx.eq(y, ctx.add(x, ctx.constant(1, 8))));  // y == x + 1
  EXPECT_EQ(solver->scoped_assertions().size(), 2u);

  // Assumption consistent with the prefix.
  Assignment model;
  std::vector<ExprRef> sat_assumption = {ctx.eq(y, ctx.constant(5, 8))};
  ASSERT_EQ(solver->check_assuming(sat_assumption, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 4u);
  EXPECT_EQ(model.get(y->var_id), 5u);

  // Assumption contradicting the prefix; the prefix itself stays sat.
  std::vector<ExprRef> unsat_assumption = {ctx.eq(x, ctx.constant(200, 8))};
  EXPECT_EQ(solver->check_assuming(unsat_assumption, nullptr),
            CheckResult::kUnsat);
  EXPECT_EQ(solver->check_assuming({}, nullptr), CheckResult::kSat);
  EXPECT_GE(solver->stats().incremental_checks, 3u);
  EXPECT_GE(solver->stats().reused_assertions, 6u);  // 2 live per check

  solver->pop();
  EXPECT_EQ(solver->scoped_assertions().size(), 0u);
  // After the pop the prefix is gone: x == 200 is satisfiable again.
  EXPECT_EQ(solver->check_assuming(unsat_assumption, nullptr),
            CheckResult::kSat);
}

TEST_P(ScopedSolverApi, NestedScopesUnwindIndependently) {
  Context ctx;
  auto solver = GetParam()(ctx);
  ExprRef x = ctx.var("x", 8);

  solver->push();
  solver->assert_(ctx.ult(x, ctx.constant(100, 8)));
  solver->push();
  solver->assert_(ctx.ugt(x, ctx.constant(50, 8)));
  EXPECT_EQ(solver->num_scopes(), 2u);
  EXPECT_EQ(solver->scoped_assertions().size(), 2u);

  std::vector<ExprRef> probe = {ctx.eq(x, ctx.constant(10, 8))};
  EXPECT_EQ(solver->check_assuming(probe, nullptr), CheckResult::kUnsat);
  solver->pop();  // drops x > 50
  EXPECT_EQ(solver->check_assuming(probe, nullptr), CheckResult::kSat);
  solver->pop();
  EXPECT_EQ(solver->num_scopes(), 0u);
}

TEST_P(ScopedSolverApi, PopWithoutPushThrows) {
  Context ctx;
  auto solver = GetParam()(ctx);
  EXPECT_THROW(solver->pop(), std::logic_error);
}

namespace factories {
std::unique_ptr<Solver> z3(Context& ctx) { return make_z3_solver(ctx); }
std::unique_ptr<Solver> bitblast(Context& ctx) {
  return make_bitblast_solver(ctx);  // exercises the base-class adapter
}
std::unique_ptr<Solver> validating_z3(Context& ctx) {
  return std::make_unique<ValidatingSolver>(make_z3_solver(ctx));
}
std::unique_ptr<Solver> caching_z3(Context& ctx) {
  return std::make_unique<CachingSolver>(make_z3_solver(ctx));
}
}  // namespace factories

INSTANTIATE_TEST_SUITE_P(Backends, ScopedSolverApi,
                         ::testing::Values(&factories::z3, &factories::bitblast,
                                           &factories::validating_z3,
                                           &factories::caching_z3));

TEST(CachingSolver, IncrementalChecksShareKeysWithStatelessChecks) {
  // The canonical key of scoped ∧ assumptions equals the stateless key of
  // the same conjunction, so entries are shared between both styles.
  Context ctx;
  auto cache = std::make_shared<QueryCache>(/*shards=*/2);
  CachingSolver incremental(make_z3_solver(ctx), cache);
  CachingSolver stateless(make_z3_solver(ctx), cache);
  ExprRef x = ctx.var("x", 8);
  ExprRef a = ctx.ult(x, ctx.constant(10, 8));
  ExprRef b = ctx.ugt(x, ctx.constant(3, 8));

  incremental.push();
  incremental.assert_(a);
  std::vector<ExprRef> assumption = {b};
  EXPECT_EQ(incremental.check_assuming(assumption, nullptr), CheckResult::kSat);
  incremental.pop();

  std::vector<ExprRef> conjunction = {a, b};
  EXPECT_EQ(stateless.check(conjunction, nullptr), CheckResult::kSat);
  EXPECT_EQ(stateless.stats().cache_hits, 1u);
  EXPECT_EQ(stateless.inner().stats().queries, 0u);
}

TEST(ValidatingSolver, ValidatesScopedAssertionsToo) {
  Context ctx;
  ValidatingSolver validating(make_z3_solver(ctx));
  ExprRef x = ctx.var("x", 16);
  validating.push();
  validating.assert_(ctx.ugt(x, ctx.constant(100, 16)));
  Assignment model;
  std::vector<ExprRef> assumption = {ctx.ult(x, ctx.constant(200, 16))};
  EXPECT_EQ(validating.check_assuming(assumption, &model), CheckResult::kSat);
  EXPECT_GT(model.get(x->var_id), 100u);
  EXPECT_LT(model.get(x->var_id), 200u);
  validating.pop();
}

TEST(Assignment, DefaultsToZero) {
  Assignment a;
  EXPECT_EQ(a.get(123), 0u);
  a.set(123, 7);
  EXPECT_EQ(a.get(123), 7u);
}

// -- Robustness: unknown verdicts, deadlines, and backend failover. ----------

// StubSolver (solver_test_util.hpp) stands in for a backend that gives up
// (deadline hit) or crashes outright. check_assuming() goes through the
// base-class adapter, so it funnels into check() there.

TEST(CachingSolver, UnknownVerdictsAreNeverCached) {
  // A deadline-induced unknown must not poison the cache: the same query
  // re-asked later (more time, another backend) must reach a backend again.
  Context ctx;
  CachingSolver cache(std::make_unique<StubSolver>(StubSolver::Mode::kUnknown));
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.ult(x, ctx.constant(10, 8))};

  EXPECT_EQ(cache.check(query, nullptr), CheckResult::kUnknown);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.check(query, nullptr), CheckResult::kUnknown);
  EXPECT_EQ(cache.stats().cache_hits, 0u);
  EXPECT_EQ(cache.stats().cache_misses, 2u);
  EXPECT_EQ(cache.inner().stats().queries, 2u);  // both reached the backend
}

TEST(FailoverSolver, SecondaryRescuesUnknownPrimary) {
  Context ctx;
  FailoverSolver solver(
      std::make_unique<StubSolver>(StubSolver::Mode::kUnknown),
      [&ctx] { return make_z3_solver(ctx); });
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.eq(x, ctx.constant(42, 8))};
  Assignment model;
  EXPECT_EQ(solver.check(query, &model), CheckResult::kSat);
  EXPECT_EQ(model.get(x->var_id), 42u);
  // One *logical* query, classified by the final (rescued) verdict.
  EXPECT_EQ(solver.stats().queries, 1u);
  EXPECT_EQ(solver.stats().sat, 1u);
  EXPECT_EQ(solver.stats().failover_rescues, 1u);
  EXPECT_EQ(solver.name(), "stub+failover");
}

TEST(FailoverSolver, ThrowingPrimaryIsRescuedToo) {
  Context ctx;
  FailoverSolver solver(std::make_unique<StubSolver>(StubSolver::Mode::kThrow),
                        [&ctx] { return make_z3_solver(ctx); });
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.eq(x, ctx.constant(1, 8)),
                                ctx.eq(x, ctx.constant(2, 8))};
  EXPECT_EQ(solver.check(query, nullptr), CheckResult::kUnsat);
  EXPECT_EQ(solver.stats().unsat, 1u);
  EXPECT_EQ(solver.stats().failover_rescues, 1u);
}

TEST(FailoverSolver, UnknownWhenBothBackendsGiveUp) {
  Context ctx;
  FailoverSolver solver(
      std::make_unique<StubSolver>(StubSolver::Mode::kUnknown),
      [] {
        return std::unique_ptr<Solver>(
            new StubSolver(StubSolver::Mode::kThrow));
      });
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.ult(x, ctx.constant(10, 8))};
  EXPECT_EQ(solver.check(query, nullptr), CheckResult::kUnknown);
  EXPECT_EQ(solver.stats().unknown, 1u);
  EXPECT_EQ(solver.stats().failover_rescues, 0u);  // nothing was rescued
}

TEST(FailoverSolver, RescueSeesScopedAssertions) {
  // The secondary has no scope state of its own; the wrapper must hand it
  // the client-side scoped conjunction alongside the assumptions.
  Context ctx;
  FailoverSolver solver(
      std::make_unique<StubSolver>(StubSolver::Mode::kUnknown),
      [&ctx] { return make_z3_solver(ctx); });
  ExprRef x = ctx.var("x", 8);
  solver.push();
  solver.assert_(ctx.ult(x, ctx.constant(10, 8)));
  Assignment model;
  std::vector<ExprRef> assumption = {ctx.ugt(x, ctx.constant(3, 8))};
  ASSERT_EQ(solver.check_assuming(assumption, &model), CheckResult::kSat);
  EXPECT_GT(model.get(x->var_id), 3u);
  EXPECT_LT(model.get(x->var_id), 10u);
  solver.pop();
  EXPECT_EQ(solver.stats().failover_rescues, 1u);
}

TEST(SolverDeadline, BitblastHonorsExpiredDeadline) {
  // A deadline already in the past forces the CDCL loop's periodic probe
  // to give up on the first batch of conflicts — the check must come back
  // kUnknown, never a wrong verdict and never a hang.
  Context ctx;
  auto solver = make_bitblast_solver(ctx);
  solver->set_deadline_ms(1);
  // A multiply chain is hard enough that the search cannot finish within
  // a millisecond-scale budget (and certainly not before the first probe).
  ExprRef x = ctx.var("x", 32);
  ExprRef y = ctx.var("y", 32);
  ExprRef product = ctx.mul(ctx.mul(x, y), ctx.mul(y, x));
  std::vector<ExprRef> query = {
      ctx.eq(product, ctx.constant(0xdeadbeef, 32)),
      ctx.ugt(x, ctx.constant(2, 32)), ctx.ugt(y, ctx.constant(2, 32))};
  CheckResult result = solver->check(query, nullptr);
  if (result == CheckResult::kUnknown) {
    EXPECT_EQ(solver->stats().unknown, 1u);
  }
  // Either verdict must be reached quickly; the deadline machinery makes
  // this test terminate rather than proving which side wins on fast CI.
}

TEST(SolverDeadline, Z3AcceptsAndClearsDeadline) {
  Context ctx;
  auto solver = make_z3_solver(ctx);
  solver->set_deadline_ms(10'000);
  EXPECT_EQ(solver->deadline_ms(), 10'000u);
  ExprRef x = ctx.var("x", 8);
  std::vector<ExprRef> query = {ctx.eq(x, ctx.constant(7, 8))};
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kSat);
  solver->set_deadline_ms(0);  // back to unlimited
  EXPECT_EQ(solver->check(query, nullptr), CheckResult::kSat);
}

}  // namespace
}  // namespace binsym::smt
