// Zbb extension tests: semantics against a local C++ reference, assembler/
// disassembler round-trips, and symbolic execution over clz — all through
// runtime registration (the extensibility claim at full-extension scale).
#include <gtest/gtest.h>

#include <bit>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "interp/concrete.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "support/rng.hpp"

namespace binsym {
namespace {

class ZbbTest : public ::testing::Test {
 protected:
  ZbbTest() : iss(decoder, registry) {
    spec::install_rv32im(registry, table);
    ids = spec::install_zbb(table, registry);
  }

  uint32_t exec(const std::string& name, uint32_t rs1, uint32_t rs2 = 0) {
    const isa::OpcodeInfo* info = table.by_name(name);
    EXPECT_NE(info, nullptr) << name;
    uint32_t word = info->match | (7u << 7) | (5u << 15);
    // rs2 is an operand only when the mask leaves its field free (unary
    // Zbb instructions pin it).
    if ((info->mask & (0x1fu << 20)) == 0) word |= 6u << 20;
    auto decoded = decoder.decode(word);
    EXPECT_TRUE(decoded.has_value()) << name;
    EXPECT_EQ(decoded->info->name, name);
    iss.machine().regs_[5] = interp::cval(rs1, 32);
    iss.machine().regs_[6] = interp::cval(rs2, 32);
    iss.execute_one(*decoded);
    return static_cast<uint32_t>(iss.machine().regs_[7].v);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
  interp::Iss iss;
  std::optional<std::vector<isa::OpcodeId>> ids;
};

TEST_F(ZbbTest, RegistersAllEighteen) {
  ASSERT_TRUE(ids.has_value());
  EXPECT_EQ(ids->size(), 18u);
  EXPECT_NE(table.by_name("clz"), nullptr);
  EXPECT_EQ(table.by_name("clz")->extension, "rv_zbb");
}

TEST_F(ZbbTest, LogicWithNegate) {
  EXPECT_EQ(exec("andn", 0xff00ff00, 0x0f0f0f0f), 0xf000f000u);
  EXPECT_EQ(exec("orn", 0x000000ff, 0x0000ffff), 0xffff00ffu);
  EXPECT_EQ(exec("xnor", 0xaaaaaaaa, 0x55555555), 0u);
  EXPECT_EQ(exec("xnor", 0x12345678, 0x12345678), 0xffffffffu);
}

TEST_F(ZbbTest, CountInstructionsMatchStdBit) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    uint32_t x = rng.next32();
    if (i == 0) x = 0;
    if (i == 1) x = 0xffffffff;
    if (i == 2) x = 1;
    if (i == 3) x = 0x80000000;
    EXPECT_EQ(exec("clz", x), static_cast<uint32_t>(std::countl_zero(x))) << x;
    EXPECT_EQ(exec("ctz", x), static_cast<uint32_t>(std::countr_zero(x))) << x;
    EXPECT_EQ(exec("cpop", x), static_cast<uint32_t>(std::popcount(x))) << x;
  }
}

TEST_F(ZbbTest, MinMax) {
  EXPECT_EQ(exec("min", 0xffffffff, 1), 0xffffffffu);  // -1 < 1 signed
  EXPECT_EQ(exec("minu", 0xffffffff, 1), 1u);
  EXPECT_EQ(exec("max", 0xffffffff, 1), 1u);
  EXPECT_EQ(exec("maxu", 0xffffffff, 1), 0xffffffffu);
  EXPECT_EQ(exec("min", 5, 5), 5u);
}

TEST_F(ZbbTest, SignZeroExtension) {
  EXPECT_EQ(exec("sext.b", 0x180), 0xffffff80u);
  EXPECT_EQ(exec("sext.b", 0x17f), 0x7fu);
  EXPECT_EQ(exec("sext.h", 0x18000), 0xffff8000u);
  EXPECT_EQ(exec("zext.h", 0xdeadbeef), 0xbeefu);
}

TEST_F(ZbbTest, RotatesMatchStdRotl) {
  Rng rng(78);
  for (int i = 0; i < 200; ++i) {
    uint32_t x = rng.next32();
    uint32_t s = rng.next32();
    EXPECT_EQ(exec("rol", x, s), std::rotl(x, static_cast<int>(s & 31)));
    EXPECT_EQ(exec("ror", x, s), std::rotr(x, static_cast<int>(s & 31)));
  }
  // rori via the shamt field.
  const isa::OpcodeInfo* rori = table.by_name("rori");
  ASSERT_NE(rori, nullptr);
  uint32_t word = rori->match | (7u << 7) | (5u << 15) | (12u << 20);
  auto decoded = decoder.decode(word);
  ASSERT_TRUE(decoded.has_value());
  iss.machine().regs_[5] = interp::cval(0xdeadbeef, 32);
  iss.execute_one(*decoded);
  EXPECT_EQ(iss.machine().regs_[7].v, std::rotr(0xdeadbeefu, 12));
}

TEST_F(ZbbTest, OrcAndRev8) {
  EXPECT_EQ(exec("orc.b", 0x00120034), 0x00ff00ffu);
  EXPECT_EQ(exec("orc.b", 0), 0u);
  EXPECT_EQ(exec("orc.b", 0x01010101), 0xffffffffu);
  EXPECT_EQ(exec("rev8", 0x12345678), 0x78563412u);
  EXPECT_EQ(exec("rev8", 0x000000ff), 0xff000000u);
}

TEST_F(ZbbTest, AssemblesAndDisassembles) {
  auto assembled = rvasm::assemble(table, R"(
    clz a0, a1
    cpop t0, t1
    andn a2, a3, a4
    rori s0, s1, 7
    rev8 a0, a0
)");
  ASSERT_TRUE(assembled.has_value());
  const auto& bytes = assembled->image.segments.front().bytes;
  ASSERT_EQ(bytes.size(), 20u);
  auto word_at = [&](size_t i) {
    return static_cast<uint32_t>(bytes[4 * i]) | (bytes[4 * i + 1] << 8) |
           (bytes[4 * i + 2] << 16) |
           (static_cast<uint32_t>(bytes[4 * i + 3]) << 24);
  };
  EXPECT_EQ(isa::disassemble_word(decoder, word_at(0)), "clz a0, a1");
  EXPECT_EQ(isa::disassemble_word(decoder, word_at(1)), "cpop t0, t1");
  EXPECT_EQ(isa::disassemble_word(decoder, word_at(2)), "andn a2, a3, a4");
  EXPECT_EQ(isa::disassemble_word(decoder, word_at(3)), "rori s0, s1, 7");
  EXPECT_EQ(isa::disassemble_word(decoder, word_at(4)), "rev8 a0, a0");
}

TEST_F(ZbbTest, SymbolicExecutionThroughClz) {
  // Branch on clz(x) == 24 over a symbolic byte: satisfied iff the byte's
  // top bit pattern gives exactly 24 leading zeros, i.e. x in [0x80, 0xff].
  core::Program program = elf::to_program(rvasm::assemble_or_die(table, R"(
_start:
    la a0, buf
    li a1, 1
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    clz t2, t1
    li t3, 24
    bne t2, t3, other
    li a0, 'H'
    li a7, 1
    ecall
    j out
other:
    li a0, '.'
    li a7, 1
    ecall
out:
    li a0, 0
    li a7, 93
    ecall
.data
buf: .space 1
)").image);
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));
  bool found_high = false;
  core::EngineStats stats = engine.explore([&](const core::PathResult& path) {
    if (path.trace.output == "H") {
      found_high = true;
      uint64_t x = path.seed.get(path.trace.input_vars[0]);
      EXPECT_GE(x, 0x80u);
    }
  });
  EXPECT_EQ(stats.paths, 2u);
  EXPECT_TRUE(found_high) << "engine failed to invert clz";
}

TEST_F(ZbbTest, PlainTableDoesNotDecodeZbb) {
  isa::OpcodeTable plain;
  isa::Decoder plain_decoder(plain);
  const isa::OpcodeInfo* clz = table.by_name("clz");
  ASSERT_NE(clz, nullptr);
  EXPECT_FALSE(plain_decoder.decode(clz->match | (7u << 7) | (5u << 15))
                   .has_value());
}

}  // namespace
}  // namespace binsym
