// Path-count oracle: for small guests over one or two input bytes, the
// number of paths the SE engine discovers must equal the number of
// distinct execution signatures observed by brute-force concrete execution
// over the ENTIRE input space. Guests emit a unique character per basic
// block, so the output string identifies the path exactly.
//
// This is the strongest completeness/soundness check in the suite: a
// missing path (unsound pruning), a duplicated path (broken DFS bounds) or
// a wrong branch translation all change one of the two numbers.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "interp/concrete.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"

namespace binsym {
namespace {

struct Guest {
  const char* name;
  unsigned input_bytes;  // 1 or 2
  const char* body;      // after sym_input; buffer pointer in s0
};

const Guest kGuests[] = {
    {"byte-classifier", 1, R"(
    lbu t1, 0(s0)
    li t2, 'a'
    bltu t1, t2, low
    li t2, 'z'+1
    bgeu t1, t2, high
    li a0, 'M'
    call putchar
    j fin
low:
    li a0, 'L'
    call putchar
    j fin
high:
    li a0, 'H'
    call putchar
fin:
)"},
    {"two-byte-compare", 2, R"(
    lbu t1, 0(s0)
    lbu t2, 1(s0)
    bltu t1, t2, less
    beq t1, t2, same
    li a0, 'G'
    call putchar
    j fin
less:
    li a0, 'L'
    call putchar
    j fin
same:
    li a0, 'E'
    call putchar
fin:
)"},
    {"arith-guard", 1, R"(
    lbu t1, 0(s0)
    slli t2, t1, 1
    addi t2, t2, 10
    li t3, 200
    bltu t2, t3, small
    li a0, 'B'
    call putchar
    j next
small:
    li a0, 's'
    call putchar
next:
    andi t4, t1, 7
    li t5, 3
    bne t4, t5, fin
    li a0, '3'
    call putchar
fin:
)"},
    {"division-fork", 1, R"(
    lbu t1, 0(s0)
    li t2, 100
    divu t3, t2, t1          # spec forks on divisor == 0
    li t4, 10
    bltu t3, t4, smallq
    li a0, 'Q'
    call putchar
    j fin
smallq:
    li a0, 'q'
    call putchar
fin:
)"},
    {"nested-masks", 2, R"(
    lbu t1, 0(s0)
    lbu t2, 1(s0)
    andi t3, t1, 0xf0
    beqz t3, lownib
    xor t4, t1, t2
    beqz t4, equal
    li a0, 'X'
    call putchar
    j fin
equal:
    li a0, 'E'
    call putchar
    j fin
lownib:
    li t5, 8
    bltu t2, t5, tiny
    li a0, 'N'
    call putchar
    j fin
tiny:
    li a0, 't'
    call putchar
fin:
)"},
};

class PathOracle : public ::testing::TestWithParam<Guest> {
 protected:
  PathOracle() { spec::install_rv32im(registry, table); }

  std::string full_source(const Guest& guest) {
    return std::string(R"(
_start:
    call main
    li a7, 93
    ecall
putchar:
    li a7, 1
    ecall
    ret
main:
    addi sp, sp, -4
    sw ra, 0(sp)
    la a0, buf
    li a1, )") +
           std::to_string(guest.input_bytes) + R"(
    li a7, 2
    ecall
    la s0, buf
)" + guest.body + R"(
    li a0, 0
    lw ra, 0(sp)
    addi sp, sp, 4
    ret
.data
buf: .space 4
)";
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_P(PathOracle, EngineCountEqualsBruteForceSignatureCount) {
  const Guest& guest = GetParam();
  rvasm::AsmResult assembled =
      rvasm::assemble_or_die(table, full_source(guest));
  core::Program program = elf::to_program(assembled.image);

  // Brute force: run every input concretely, collect output signatures.
  std::set<std::string> signatures;
  uint32_t space = guest.input_bytes == 1 ? 256 : 65536;
  for (uint32_t input = 0; input < space; ++input) {
    interp::Iss iss(decoder, registry);
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                     seg.bytes[i]);
    iss.machine().pc_ = assembled.image.entry;
    iss.machine().regs_[2] = interp::cval(0x100000, 32);
    iss.machine().input_provider_ = [input](unsigned index) {
      return static_cast<uint8_t>(input >> (8 * index));
    };
    iss.run(100000);
    ASSERT_EQ(iss.machine().exit_, core::ExitReason::kExit);
    signatures.insert(iss.machine().output_);
  }

  // Engine: explore symbolically, verify signature set identity.
  smt::Context ctx;
  core::BinSymExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));
  std::multiset<std::string> explored_outputs;
  core::EngineStats stats = engine.explore([&](const core::PathResult& path) {
    explored_outputs.insert(path.trace.output);
  });

  // Every signature reachable, and signature multiplicity equals the number
  // of distinct branch-paths producing it. At minimum the signature SETS
  // must be identical; and since guests emit one unique char per block, the
  // engine path count equals the signature count exactly, except where
  // distinct branch histories produce the same output (division-fork:
  // divisor==0 merges into a signature also produced by other inputs).
  std::set<std::string> explored_set(explored_outputs.begin(),
                                     explored_outputs.end());
  EXPECT_EQ(explored_set, signatures) << guest.name;
  EXPECT_GE(stats.paths, signatures.size()) << guest.name;
  EXPECT_EQ(stats.divergences, 0u) << guest.name;
}

INSTANTIATE_TEST_SUITE_P(
    Guests, PathOracle, ::testing::ValuesIn(kGuests),
    [](const ::testing::TestParamInfo<Guest>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace binsym
