// Concrete ISS tests: whole guest programs (assembled in-test) executing
// on the formal-spec interpreter, checking architectural results and the
// syscall interface.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "elf/elf32.hpp"
#include "interp/concrete.hpp"
#include "isa/decoder.hpp"

namespace binsym {
namespace {

class IssTest : public ::testing::Test {
 protected:
  IssTest() { spec::install_rv32im(registry, table); }

  /// Assemble + run to exit; returns the exit code (a0 at SYS_exit).
  uint32_t run(const std::string& source, std::string* output = nullptr,
               uint64_t max_steps = 100000) {
    rvasm::AsmResult assembled = rvasm::assemble_or_die(table, source);
    core::Program program = elf::to_program(assembled.image);
    interp::Iss iss(decoder, registry);
    // Load the image into the ISS memory.
    for (const elf::Segment& seg : assembled.image.segments)
      for (size_t i = 0; i < seg.bytes.size(); ++i)
        iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                     seg.bytes[i]);
    iss.machine().pc_ = program.entry;
    iss.machine().regs_[2] = interp::cval(0x100000, 32);  // sp
    iss.run(max_steps);
    EXPECT_EQ(iss.machine().exit_, core::ExitReason::kExit);
    if (output) *output = iss.machine().output_;
    return iss.machine().exit_code_;
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_F(IssTest, Fibonacci) {
  // fib(10) == 55, computed iteratively.
  EXPECT_EQ(run(R"(
_start:
    li t0, 10
    li t1, 0
    li t2, 1
loop:
    beqz t0, done
    add t3, t1, t2
    mv t1, t2
    mv t2, t3
    addi t0, t0, -1
    j loop
done:
    mv a0, t1
    li a7, 93
    ecall
)"), 55u);
}

TEST_F(IssTest, MemoryCopyLoop) {
  EXPECT_EQ(run(R"(
_start:
    la t0, src
    la t1, dst
    li t2, 5
copy:
    beqz t2, check
    lbu t3, 0(t0)
    sb t3, 0(t1)
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, -1
    j copy
check:
    la t1, dst
    lbu a0, 4(t1)
    li a7, 93
    ecall
.data
src: .byte 10, 20, 30, 40, 50
dst: .space 5
)"), 50u);
}

TEST_F(IssTest, DivisionEdgeCases) {
  // DIVU by zero returns all-ones (Fig. 2's edge case), DIV overflow wraps.
  EXPECT_EQ(run(R"(
_start:
    li t0, 7
    li t1, 0
    divu t2, t0, t1          # 0xffffffff
    li t3, 0x80000000
    li t4, -1
    div t5, t3, t4           # INT_MIN
    xor a0, t2, t5           # 0xffffffff ^ 0x80000000 = 0x7fffffff
    srli a0, a0, 24          # 0x7f
    li a7, 93
    ecall
)"), 0x7fu);
}

TEST_F(IssTest, MulhVariants) {
  EXPECT_EQ(run(R"(
_start:
    li t0, -2
    li t1, 3
    mulh t2, t0, t1          # floor(-6 / 2^32) = -1 -> 0xffffffff
    mulhu t3, t0, t1         # ((2^32-2)*3) >> 32 = 2
    add a0, t2, t3           # 0xffffffff + 2 = 1
    li a7, 93
    ecall
)"), 1u);
}

TEST_F(IssTest, JalrLinkAndReturn) {
  std::string output;
  EXPECT_EQ(run(R"(
_start:
    call emit
    call emit
    li a0, 0
    li a7, 93
    ecall
emit:
    li a0, 'x'
    li a7, 1
    ecall
    ret
)", &output), 0u);
  EXPECT_EQ(output, "xx");
}

TEST_F(IssTest, CsrReadWrite) {
  EXPECT_EQ(run(R"(
_start:
    li t0, 0x123
    csrw 0x340, t0           # mscratch
    csrr a0, 0x340
    li a7, 93
    ecall
)"), 0x123u);
}

TEST_F(IssTest, SymInputProviderFeedsBytes) {
  rvasm::AsmResult assembled = rvasm::assemble_or_die(table, R"(
_start:
    la a0, buf
    li a1, 2
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    add a0, t1, t2
    li a7, 93
    ecall
.data
buf: .space 2
)");
  interp::Iss iss(decoder, registry);
  for (const elf::Segment& seg : assembled.image.segments)
    for (size_t i = 0; i < seg.bytes.size(); ++i)
      iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                   seg.bytes[i]);
  iss.machine().pc_ = assembled.image.entry;
  iss.machine().input_provider_ = [](unsigned index) {
    return static_cast<uint8_t>(10 * (index + 1));
  };
  iss.run();
  EXPECT_EQ(iss.machine().exit_code_, 30u);
}

TEST_F(IssTest, StopsOnIllegalInstruction) {
  rvasm::AsmResult assembled =
      rvasm::assemble_or_die(table, "_start: .word 0xffffffff");
  interp::Iss iss(decoder, registry);
  for (const elf::Segment& seg : assembled.image.segments)
    for (size_t i = 0; i < seg.bytes.size(); ++i)
      iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                   seg.bytes[i]);
  iss.machine().pc_ = assembled.image.entry;
  iss.run();
  EXPECT_EQ(iss.machine().exit_, core::ExitReason::kIllegalInstr);
}

TEST_F(IssTest, StopsOnBadFetch) {
  interp::Iss iss(decoder, registry);
  iss.machine().pc_ = 0x9999000;
  iss.run();
  EXPECT_EQ(iss.machine().exit_, core::ExitReason::kBadFetch);
}

TEST_F(IssTest, MaxStepsGuard) {
  rvasm::AsmResult assembled =
      rvasm::assemble_or_die(table, "_start: j _start");
  interp::Iss iss(decoder, registry);
  for (const elf::Segment& seg : assembled.image.segments)
    for (size_t i = 0; i < seg.bytes.size(); ++i)
      iss.machine().memory_.write8(seg.addr + static_cast<uint32_t>(i),
                                   seg.bytes[i]);
  iss.machine().pc_ = assembled.image.entry;
  EXPECT_EQ(iss.run(100), 100u);
  EXPECT_EQ(iss.machine().exit_, core::ExitReason::kMaxSteps);
}

}  // namespace
}  // namespace binsym
