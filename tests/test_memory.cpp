// Guest memory tests: paged concrete store and the concolic symbolic
// shadow (byte reassembly, store scattering, constant-collapse).
#include <gtest/gtest.h>

#include "core/memory.hpp"
#include "smt/eval.hpp"

namespace binsym::core {
namespace {

TEST(ConcreteMemory, DefaultsToZero) {
  ConcreteMemory mem;
  EXPECT_EQ(mem.read8(0x1234), 0);
  EXPECT_EQ(mem.read(0xdeadbeef, 4), 0u);
  EXPECT_FALSE(mem.mapped(0x1234));
}

TEST(ConcreteMemory, LittleEndianMultiByte) {
  ConcreteMemory mem;
  mem.write(0x100, 4, 0x11223344);
  EXPECT_EQ(mem.read8(0x100), 0x44);
  EXPECT_EQ(mem.read8(0x103), 0x11);
  EXPECT_EQ(mem.read(0x100, 4), 0x11223344u);
  EXPECT_EQ(mem.read(0x102, 2), 0x1122u);
}

TEST(ConcreteMemory, CrossPageAccess) {
  ConcreteMemory mem;
  uint32_t addr = ConcreteMemory::kPageSize - 2;
  mem.write(addr, 4, 0xaabbccdd);
  EXPECT_EQ(mem.read(addr, 4), 0xaabbccddu);
  EXPECT_EQ(mem.num_pages(), 2u);
}

TEST(ConcreteMemory, ValueSemanticsCopy) {
  ConcreteMemory a;
  a.write8(0x10, 7);
  ConcreteMemory b = a;
  b.write8(0x10, 9);
  EXPECT_EQ(a.read8(0x10), 7);
  EXPECT_EQ(b.read8(0x10), 9);
}

class ConcolicMemoryTest : public ::testing::Test {
 protected:
  smt::Context ctx;
  ConcolicMemory mem{ctx};
};

TEST_F(ConcolicMemoryTest, PureConcreteLoads) {
  ConcreteMemory image;
  image.write(0x100, 4, 0xcafebabe);
  mem.reset(image);
  interp::SymValue v = mem.load(0x100, 4);
  EXPECT_FALSE(v.symbolic());
  EXPECT_EQ(v.conc, 0xcafebabeu);
  EXPECT_EQ(v.width, 32);
}

TEST_F(ConcolicMemoryTest, SymbolicByteReassembly) {
  mem.reset(ConcreteMemory{});
  smt::ExprRef b1 = ctx.var("b1", 8);
  mem.poke_symbolic(0x201, b1, 0x5a);

  // 4-byte load covering one symbolic byte at offset 1.
  interp::SymValue v = mem.load(0x200, 4);
  ASSERT_TRUE(v.symbolic());
  EXPECT_EQ(v.conc, 0x5a00u * 0x100 / 0x100);  // byte 1 -> bits [15:8]
  EXPECT_EQ(v.conc, 0x00005a00u);

  // Evaluating the expression under b1=0x7f reproduces the layout.
  smt::Assignment a;
  a.set(b1->var_id, 0x7f);
  EXPECT_EQ(smt::evaluate(v.sym, a), 0x00007f00u);
}

TEST_F(ConcolicMemoryTest, StoreScattersSymbolicBytes) {
  mem.reset(ConcreteMemory{});
  smt::ExprRef w = ctx.var("w", 32);
  smt::Assignment a;
  a.set(w->var_id, 0x11223344);
  mem.store(0x300, 4, interp::sval_expr(w, 0x11223344));
  EXPECT_EQ(mem.num_symbolic_bytes(), 4u);
  EXPECT_EQ(mem.read_concrete(0x300, 4), 0x11223344u);

  // Reading back a sub-word gives the matching extract.
  interp::SymValue lo = mem.load(0x300, 2);
  ASSERT_TRUE(lo.symbolic());
  EXPECT_EQ(lo.conc, 0x3344u);
  EXPECT_EQ(smt::evaluate(lo.sym, a), 0x3344u);
}

TEST_F(ConcolicMemoryTest, ConcreteStoreClearsShadow) {
  mem.reset(ConcreteMemory{});
  mem.poke_symbolic(0x400, ctx.var("x", 8), 1);
  EXPECT_EQ(mem.num_symbolic_bytes(), 1u);
  mem.store(0x400, 1, interp::sval(0xab, 8));
  EXPECT_EQ(mem.num_symbolic_bytes(), 0u);
  EXPECT_FALSE(mem.load(0x400, 1).symbolic());
}

TEST_F(ConcolicMemoryTest, ResetClearsShadow) {
  mem.reset(ConcreteMemory{});
  mem.poke_symbolic(0x500, ctx.var("y", 8), 1);
  mem.reset(ConcreteMemory{});
  EXPECT_EQ(mem.num_symbolic_bytes(), 0u);
  EXPECT_EQ(mem.read_concrete(0x500, 1), 0u);
}

}  // namespace
}  // namespace binsym::core
