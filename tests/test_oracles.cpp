// The bug-finding oracle subsystem (src/oracles + core/finding.hpp):
//
//   * units — MemoryMap bounds, FindingLog dedup, oracle-name round-trip,
//     --oracles spec parsing;
//   * the detection campaign — every workloads/buggy-*.s known bug set is
//     found *exactly* (no dupes, no misses) across {dfs, coverage} x
//     jobs {1, 4} x snapshot {on, off}, with identical (oracle, pc,
//     call-depth) triples in every configuration;
//   * witness replay — every emitted witness input, run concretely,
//     reproduces its finding as an observed hit at the same site;
//   * non-interference — attaching oracles changes no explored path set,
//     and a bug-free workload yields zero findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "isa/decoder.hpp"
#include "oracles/detectors.hpp"
#include "oracles/manager.hpp"
#include "oracles/report.hpp"
#include "smt/solver.hpp"
#include "spec/registry.hpp"
#include "support/format.hpp"
#include "workloads/workloads.hpp"

namespace binsym {
namespace {

using core::OracleKind;

// (oracle, pc, call_depth): the dedup identity of a finding.
using Key = std::tuple<OracleKind, uint32_t, uint32_t>;

Key key_of(const core::Finding& f) {
  return Key{f.oracle, f.pc, f.call_depth};
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() {
    spec::install_rv32im(registry, table);
    spec::install_custom_madd(table, registry);
    spec::install_zbb(table, registry);
  }

  core::Program load(const std::string& name) {
    return workloads::load_workload(table, name);
  }

  /// Worker factory mirroring the explore CLI's binsym setup, optionally
  /// with the full oracle set attached (the manager joins the keepalive).
  core::WorkerFactory factory(const core::Program& program,
                              bool with_oracles) {
    return [this, &program, with_oracles](unsigned) {
      core::WorkerResources r;
      r.ctx = std::make_unique<smt::Context>();
      r.executor = std::make_unique<core::BinSymExecutor>(
          *r.ctx, decoder, registry, program);
      r.solver = smt::make_z3_solver(*r.ctx);
      if (with_oracles) {
        std::string error;
        auto manager = oracles::OracleManager::make(
            *r.ctx,
            oracles::MemoryMap::for_program(program,
                                            core::MachineConfig{}.stack_top),
            "all", &error);
        EXPECT_TRUE(manager) << error;
        r.executor->set_observer(manager.get());
        struct Keep {
          std::unique_ptr<oracles::OracleManager> manager;
        };
        auto keep = std::make_shared<Keep>();
        keep->manager = std::move(manager);
        r.keepalive = std::move(keep);
      }
      return r;
    };
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

// -- Units. ------------------------------------------------------------------

TEST(OracleNames, RoundTripAndDocContract) {
  for (uint8_t k = 0; k < static_cast<uint8_t>(OracleKind::kNumOracleKinds);
       ++k) {
    OracleKind kind = static_cast<OracleKind>(k);
    const std::string name = core::oracle_kind_name(kind);
    EXPECT_NE(name, "?");
    EXPECT_EQ(core::oracle_kind_from_name(name), kind);
    // Every kind has a constructible detector reporting that kind.
    auto oracle = oracles::make_oracle(kind);
    ASSERT_TRUE(oracle);
    EXPECT_EQ(oracle->kind(), kind);
  }
  EXPECT_EQ(core::oracle_kind_from_name("no-such-oracle"),
            OracleKind::kNumOracleKinds);
}

TEST(OracleSpec, ParsesAllAndLists) {
  std::vector<OracleKind> kinds;
  std::string error;
  EXPECT_TRUE(oracles::OracleManager::parse_spec("all", &kinds, &error));
  EXPECT_EQ(kinds.size(),
            static_cast<size_t>(OracleKind::kNumOracleKinds));
  EXPECT_TRUE(oracles::OracleManager::parse_spec("oob-load,reach", &kinds,
                                                 &error));
  EXPECT_EQ(kinds, (std::vector<OracleKind>{OracleKind::kOobLoad,
                                            OracleKind::kReach}));
  EXPECT_FALSE(oracles::OracleManager::parse_spec("oob-load,bogus", &kinds,
                                                  &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(oracles::OracleManager::parse_spec("", &kinds, &error));
}

TEST(MemoryMapTest, ConcreteContainment) {
  core::Program program;
  program.load_bytes(0x1000, std::vector<uint8_t>(0x40, 0));
  oracles::MemoryMap map =
      oracles::MemoryMap::for_program(program, /*stack_top=*/0x10000,
                                      /*stack_reserve=*/0x100);
  EXPECT_TRUE(map.contains(0x1000, 1));
  EXPECT_TRUE(map.contains(0x103c, 4));
  EXPECT_FALSE(map.contains(0x103d, 4));  // straddles the segment end
  EXPECT_FALSE(map.contains(0x0fff, 1));
  EXPECT_FALSE(map.contains(0x1040, 1));
  EXPECT_TRUE(map.contains(0xff00, 4));   // stack region
  EXPECT_TRUE(map.contains(0xfffc, 4));
  EXPECT_FALSE(map.contains(0xfffd, 4));  // crosses stack_top
  EXPECT_FALSE(map.contains(0x10000, 1));
}

TEST(MemoryMapTest, SymbolicOutOfBoundsMatchesConcrete) {
  core::Program program;
  program.load_bytes(0x1000, std::vector<uint8_t>(0x40, 0));
  oracles::MemoryMap map =
      oracles::MemoryMap::for_program(program, 0x10000, 0x100);
  smt::Context ctx;
  smt::ExprRef addr = ctx.var("a", 32);
  smt::ExprRef oob = map.out_of_bounds(ctx, addr, 4);
  for (uint32_t probe : {0x0u, 0xfffu, 0x1000u, 0x103cu, 0x103du, 0x1040u,
                         0xff00u, 0xfffcu, 0xfffdu, 0xffffffffu}) {
    smt::Assignment assignment;
    assignment.set(addr->var_id, probe);
    EXPECT_EQ(smt::evaluate(oob, assignment) == 1, !map.contains(probe, 4))
        << "probe " << probe;
  }
}

TEST(FindingLogTest, DedupByOraclePcDepth) {
  core::FindingLog log;
  core::Finding f;
  f.oracle = OracleKind::kOobLoad;
  f.pc = 0x1234;
  f.call_depth = 1;
  EXPECT_TRUE(log.insert(f));
  EXPECT_FALSE(log.insert(f));  // duplicate key
  EXPECT_TRUE(log.contains(OracleKind::kOobLoad, 0x1234, 1));
  EXPECT_FALSE(log.contains(OracleKind::kOobStore, 0x1234, 1));
  f.oracle = OracleKind::kOobStore;
  EXPECT_TRUE(log.insert(f));  // other oracle, same site
  f.call_depth = 2;
  EXPECT_TRUE(log.insert(f));  // other depth
  EXPECT_EQ(log.size(), 3u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

// -- The detection campaign. -------------------------------------------------

struct KnownBugs {
  const char* workload;
  // Expected (oracle, call_depth) pairs — pcs are layout-dependent, so the
  // sweep instead pins exact cross-configuration pc agreement.
  std::vector<std::pair<OracleKind, uint32_t>> bugs;
};

const std::vector<KnownBugs>& known_bugs() {
  static const std::vector<KnownBugs> list = {
      {"buggy-uri-parser",
       {{OracleKind::kOobLoad, 1}, {OracleKind::kOobStore, 1}}},
      {"buggy-div", {{OracleKind::kDivByZero, 1}}},
      {"buggy-overflow", {{OracleKind::kOverflow, 1}}},
      {"buggy-jump-table", {{OracleKind::kBadJump, 1}}},
      {"buggy-unaligned", {{OracleKind::kUnaligned, 1}}},
      {"buggy-stack-smash", {{OracleKind::kStackSmash, 1}}},
      {"buggy-assert",
       {{OracleKind::kAssertFail, 2}, {OracleKind::kReach, 2}}},
  };
  return list;
}

TEST_F(OracleTest, CampaignFindsEveryKnownBugSetExactly) {
  for (const KnownBugs& expected : known_bugs()) {
    SCOPED_TRACE(expected.workload);
    core::Program program = load(expected.workload);

    std::set<Key> reference;
    bool have_reference = false;
    for (core::SearchKind search :
         {core::SearchKind::kDepthFirst, core::SearchKind::kCoverageGuided}) {
      for (unsigned jobs : {1u, 4u}) {
        for (bool snapshots : {true, false}) {
          SCOPED_TRACE(strprintf("search=%s jobs=%u snapshots=%d",
                                 core::search_kind_name(search), jobs,
                                 snapshots));
          core::EngineOptions options;
          options.search = search;
          options.jobs = jobs;
          options.snapshots = snapshots;
          options.snapshot_interval = 1;  // stress resume with oracle state
          core::DseEngine engine(factory(program, /*with_oracles=*/true),
                                 options);
          core::EngineStats stats = engine.explore();
          std::vector<core::Finding> findings = engine.findings();

          // No dupes in the log itself, and the stats agree with it.
          std::set<Key> keys;
          for (const core::Finding& f : findings) keys.insert(key_of(f));
          EXPECT_EQ(keys.size(), findings.size());
          EXPECT_EQ(stats.findings, findings.size());

          // Exactly the known bug set, as (oracle, depth) pairs.
          std::multiset<std::pair<OracleKind, uint32_t>> got, want;
          for (const core::Finding& f : findings)
            got.insert({f.oracle, f.call_depth});
          for (const auto& bug : expected.bugs) want.insert(bug);
          EXPECT_EQ(got, want);

          // Bit-identical (oracle, pc, depth) triples across every
          // configuration.
          if (!have_reference) {
            reference = keys;
            have_reference = true;
          } else {
            EXPECT_EQ(keys, reference);
          }

          // Every witness replays concretely to the same finding.
          for (const core::Finding& f : findings) {
            smt::Context replay_ctx;
            core::BinSymExecutor executor(replay_ctx, decoder, registry,
                                          program);
            std::string error;
            auto manager = oracles::OracleManager::make(
                replay_ctx,
                oracles::MemoryMap::for_program(
                    program, core::MachineConfig{}.stack_top),
                "all", &error);
            ASSERT_TRUE(manager) << error;
            executor.set_observer(manager.get());
            core::PathTrace trace;
            executor.run(oracles::witness_seed(replay_ctx, f.input), trace);
            bool reproduced = false;
            for (const core::OracleHit& hit : trace.oracle_hits)
              reproduced |= hit.oracle == f.oracle && hit.pc == f.pc &&
                            hit.call_depth == f.call_depth;
            EXPECT_TRUE(reproduced)
                << "witness does not replay to "
                << core::oracle_kind_name(f.oracle) << " at pc " << f.pc;
          }
        }
      }
    }
  }
}

TEST_F(OracleTest, ObserversDoNotChangeExploredPathSets) {
  for (const char* name : {"buggy-stack-smash", "buggy-assert"}) {
    SCOPED_TRACE(name);
    core::Program program = load(name);
    auto path_set = [&](bool with_oracles) {
      core::DseEngine engine(factory(program, with_oracles),
                             core::EngineOptions{});
      std::set<std::string> keys;
      engine.explore([&](const core::PathResult& path) {
        std::string key;
        for (const core::BranchRecord& b : path.trace.branches)
          key += b.taken ? '1' : '0';
        keys.insert(key);
      });
      return keys;
    };
    EXPECT_EQ(path_set(false), path_set(true));
  }
}

TEST_F(OracleTest, CleanWorkloadYieldsNoFindings) {
  core::Program program = load("uri-parser");
  core::EngineOptions options;
  options.max_paths = 200;
  core::DseEngine engine(factory(program, /*with_oracles=*/true), options);
  core::EngineStats stats = engine.explore();
  EXPECT_EQ(stats.findings, 0u);
  EXPECT_EQ(stats.candidates_feasible, 0u);
  EXPECT_TRUE(engine.findings().empty());
  EXPECT_GT(stats.candidates_checked, 0u);  // the oracles did look
}

TEST_F(OracleTest, WitnessSeedAssignsBytesInCreationOrder) {
  smt::Context ctx;
  std::vector<uint8_t> bytes{0xaa, 0xbb, 0xcc};
  smt::Assignment seed = oracles::witness_seed(ctx, bytes);
  EXPECT_EQ(seed.get(ctx.var("in_0", 8)->var_id), 0xaau);
  EXPECT_EQ(seed.get(ctx.var("in_1", 8)->var_id), 0xbbu);
  EXPECT_EQ(seed.get(ctx.var("in_2", 8)->var_id), 0xccu);
}

}  // namespace
}  // namespace binsym
