// Virtual-prototype tests: bus routing, peripherals, quantum keeper, and
// functional equivalence of the VP executor with the direct engine.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "core/engine.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "spec/registry.hpp"
#include "vp/vp_executor.hpp"

namespace binsym::vp {
namespace {

TEST(Bus, RoutesByAddressRange) {
  smt::Context ctx;
  core::ConcolicMemory memory(ctx);
  memory.reset(core::ConcreteMemory{});
  MemoryDevice ram(memory);
  Bus bus;
  bus.map(0x0, 0x1000, &ram);

  Transaction write;
  write.command = Transaction::Command::kWrite;
  write.address = 0x10;
  write.bytes = 4;
  write.data = interp::sval(0xfeedface, 32);
  EXPECT_TRUE(bus.transport(write));

  Transaction read;
  read.command = Transaction::Command::kRead;
  read.address = 0x10;
  read.bytes = 4;
  EXPECT_TRUE(bus.transport(read));
  EXPECT_EQ(read.data.conc, 0xfeedfaceu);

  // Outside every mapping: no target claims it.
  Transaction miss;
  miss.address = 0x2000;
  miss.bytes = 1;
  EXPECT_FALSE(bus.transport(miss));
}

TEST(Bus, DeviceSeesLocalAddresses) {
  smt::Context ctx;
  core::ConcolicMemory memory(ctx);
  memory.reset(core::ConcreteMemory{});
  MemoryDevice ram(memory);
  Bus bus;
  bus.map(0x8000, 0x1000, &ram);

  Transaction write;
  write.command = Transaction::Command::kWrite;
  write.address = 0x8004;  // global
  write.bytes = 1;
  write.data = interp::sval(0x5a, 8);
  ASSERT_TRUE(bus.transport(write));
  // The backing memory stores at the device-relative offset.
  EXPECT_EQ(memory.read_concrete(0x4, 1), 0x5au);
}

TEST(Uart, CollectsBytes) {
  UartDevice uart;
  std::string sink;
  uart.set_sink(&sink);
  for (char c : std::string("hi")) {
    Transaction txn;
    txn.command = Transaction::Command::kWrite;
    txn.address = 0;
    txn.bytes = 1;
    txn.data = interp::sval(static_cast<uint8_t>(c), 8);
    uart.transport(txn);
    EXPECT_TRUE(txn.response_ok);
  }
  EXPECT_EQ(sink, "hi");
  // Reads are not supported.
  Transaction read;
  read.command = Transaction::Command::kRead;
  read.address = 0;
  read.bytes = 1;
  uart.transport(read);
  EXPECT_FALSE(read.response_ok);
}

TEST(Timer, ReturnsCycleCount) {
  QuantumKeeper keeper;
  keeper.advance(1234);
  TimerDevice timer(keeper);
  Transaction read;
  read.command = Transaction::Command::kRead;
  read.address = 0;
  read.bytes = 4;
  timer.transport(read);
  EXPECT_TRUE(read.response_ok);
  EXPECT_EQ(read.data.conc, 1234u);
}

TEST(QuantumKeeper, SyncsAtQuantumBoundaries) {
  QuantumKeeper keeper(/*quantum_cycles=*/10);
  keeper.advance(5);
  EXPECT_FALSE(keeper.maybe_sync());
  keeper.advance(5);
  EXPECT_TRUE(keeper.maybe_sync());
  EXPECT_EQ(keeper.syncs(), 1u);
  EXPECT_FALSE(keeper.maybe_sync());  // same quantum
}

class VpIntegration : public ::testing::Test {
 protected:
  VpIntegration() { spec::install_rv32im(registry, table); }

  core::Program load(const std::string& source) {
    return elf::to_program(rvasm::assemble_or_die(table, source).image);
  }

  isa::OpcodeTable table;
  isa::Decoder decoder{table};
  spec::Registry registry;
};

TEST_F(VpIntegration, MmioUartOutput) {
  // Store bytes to the UART window; they appear in the path output.
  core::Program program = load(R"(
.equ UART, 0x50000000
_start:
    li t0, UART
    li t1, 'V'
    sb t1, 0(t0)
    li t1, 'P'
    sb t1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
)");
  smt::Context ctx;
  VpExecutor executor(ctx, decoder, registry, program);
  core::PathTrace trace;
  executor.run(smt::Assignment{}, trace);
  EXPECT_EQ(trace.exit, core::ExitReason::kExit);
  EXPECT_EQ(trace.output, "VP");
  EXPECT_GT(executor.quantum_keeper().cycles(), 0u);
}

TEST_F(VpIntegration, MmioSymbolicInputForksPaths) {
  // Firmware style: read symbolic data from the input peripheral instead
  // of a syscall, then branch on it — SymEx-VP's mechanism.
  core::Program program = load(R"(
.equ SYMIO, 0x50002000
_start:
    li t0, SYMIO
    lbu t1, 0(t0)            # fresh symbolic byte via the bus
    li t2, 0x42
    bne t1, t2, other
    li a0, 1
    li a7, 93
    ecall
other:
    li a0, 0
    li a7, 93
    ecall
)");
  smt::Context ctx;
  VpExecutor executor(ctx, decoder, registry, program);
  core::DseEngine engine(executor, smt::make_z3_solver(ctx));
  std::set<uint32_t> exit_codes;
  core::EngineStats stats = engine.explore([&](const core::PathResult& path) {
    exit_codes.insert(path.trace.exit_code);
    EXPECT_EQ(path.trace.input_vars.size(), 1u);
  });
  EXPECT_EQ(stats.paths, 2u);
  EXPECT_EQ(exit_codes, (std::set<uint32_t>{0, 1}));
}

TEST_F(VpIntegration, SameExplorationAsDirectEngine) {
  core::Program program = load(R"(
_start:
    la a0, buf
    li a1, 2
    li a7, 2
    ecall
    la t0, buf
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    bltu t1, t2, a
a:  li t3, 9
    bltu t2, t3, b
b:  li a0, 0
    li a7, 93
    ecall
.data
buf: .space 2
)");
  smt::Context ctx_vp, ctx_direct;
  VpExecutor vp_exec(ctx_vp, decoder, registry, program);
  core::BinSymExecutor direct(ctx_direct, decoder, registry, program);
  core::DseEngine vp_engine(vp_exec, smt::make_z3_solver(ctx_vp));
  core::DseEngine direct_engine(direct, smt::make_z3_solver(ctx_direct));
  EXPECT_EQ(vp_engine.explore().paths, direct_engine.explore().paths);
}

}  // namespace
}  // namespace binsym::vp
